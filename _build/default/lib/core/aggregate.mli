(** Self-stabilizing global aggregation by hop-bounded propagation.

    Each node publishes a local {e base} value; the aggregate field
    stabilizes, at every node, to the network-wide best base value. The
    pair [(value, hops)] is maintained with the distance-vector fixpoint
    rule

    [agg(v) = best( (base v, 0), { (value u, hops u + 1) | u ∈ N(v), hops u + 1 < n } )]

    Stale values cannot survive: a value no longer backed by any base
    strictly increases its hop count around any supporting cycle, reaches
    the TTL [n], and dies (the same count-to-bound argument that kills
    fake roots in leader election). From any initial state the field
    converges in O(n) rounds, and it is silent once the bases are.

    The builders use one aggregate per decision: electing the root
    (min id), agreeing on the current improvement candidate, computing
    the tree degree Δ, etc. The ordering is supplied by the caller;
    [None] means "no value" and loses to everything. *)

type 'v t = { value : 'v; hops : int }

(** [target ~compare ~n ~base ~nbrs] is the value the field should hold
    given the node's base and its neighbors' current fields: the
    [compare]-smallest candidate, preferring smaller hop counts among
    equal values. [base = None] contributes nothing. *)
val target : compare:('v -> 'v -> int) -> n:int -> base:'v option -> nbrs:'v t option list -> 'v t option

(** [step ~compare ~n ~base ~self ~nbrs] — [Some fresh] when the field
    must change, [None] when it is already the fixpoint value. *)
val step :
  compare:('v -> 'v -> int) ->
  n:int ->
  base:'v option ->
  self:'v t option ->
  nbrs:'v t option list ->
  'v t option option

(** [equal eq a b]. *)
val equal : ('v -> 'v -> bool) -> 'v t option -> 'v t option -> bool
