lib/core/bfs_builder.mli: Repro_graph Repro_runtime St_layer
