lib/core/mdst_builder.ml: Aggregate Array Format List Printf Random Repro_graph Repro_labels Repro_runtime St_layer
