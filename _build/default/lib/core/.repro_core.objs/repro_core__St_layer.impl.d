lib/core/st_layer.ml: Array Format Random Repro_graph Repro_runtime
