lib/core/mst_builder.mli: Aggregate Repro_graph Repro_labels Repro_runtime St_layer
