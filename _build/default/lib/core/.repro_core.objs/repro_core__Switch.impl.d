lib/core/switch.ml: Array Fun List Repro_graph Repro_labels
