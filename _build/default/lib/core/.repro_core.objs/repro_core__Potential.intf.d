lib/core/potential.mli: Repro_graph
