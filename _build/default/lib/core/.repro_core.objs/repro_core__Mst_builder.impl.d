lib/core/mst_builder.ml: Aggregate Array Format List Random Repro_graph Repro_labels Repro_runtime St_layer
