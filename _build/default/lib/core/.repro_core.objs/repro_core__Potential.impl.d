lib/core/potential.ml: Hashtbl List Option Printf Repro_graph
