lib/core/st_layer.mli: Format Random Repro_graph Repro_runtime
