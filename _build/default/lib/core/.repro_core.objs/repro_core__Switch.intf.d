lib/core/switch.mli: Repro_graph Repro_labels
