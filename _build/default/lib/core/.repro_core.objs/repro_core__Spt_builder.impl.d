lib/core/spt_builder.ml: Array Format Random Repro_graph Repro_runtime Set
