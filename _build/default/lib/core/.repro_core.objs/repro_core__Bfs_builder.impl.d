lib/core/bfs_builder.ml: Array Fun Repro_graph Repro_runtime St_layer
