lib/core/spt_builder.mli: Repro_graph Repro_runtime
