lib/core/aggregate.mli:
