lib/core/aggregate.ml: List Option
