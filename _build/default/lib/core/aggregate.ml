type 'v t = { value : 'v; hops : int }

let better compare a b =
  (* Smaller value first; smaller hops among equal values. *)
  let c = compare a.value b.value in
  if c <> 0 then c < 0 else a.hops < b.hops

let target ~compare ~n ~base ~nbrs =
  let best = ref (Option.map (fun v -> { value = v; hops = 0 }) base) in
  List.iter
    (fun nbr ->
      match nbr with
      | Some { value; hops } when hops + 1 < n -> (
          let cand = { value; hops = hops + 1 } in
          match !best with
          | None -> best := Some cand
          | Some cur -> if better compare cand cur then best := Some cand)
      | _ -> ())
    nbrs;
  !best

let equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x.value y.value && x.hops = y.hops
  | _ -> false

let step ~compare ~n ~base ~self ~nbrs =
  let fresh = target ~compare ~n ~base ~nbrs in
  if equal (fun a b -> compare a b = 0) fresh self then None else Some fresh
