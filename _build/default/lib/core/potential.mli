(** Potential functions and the PLS-guided local search of Section III
    (Algorithm 1) and Section VII (Algorithm 3), in their sequential
    form.

    A family [F] of spanning trees is handled through a potential [φ]
    with (1) [φ(T) ≥ 0], (2) [φ(T) = 0 ⟺ T ∈ F], and (3) a
    {e cyclical-decreasing} step: while [φ(T) > 0] there are edges
    [e ∉ T] and [f] on the fundamental cycle of [T + e] with
    [φ(T + e − f) < φ(T)] — or, for {e nest-decreasing} families
    (Section VII), a well-nested sequence of such swaps.

    The distributed, silent, self-stabilizing implementations live in
    [Bfs_builder], [Mst_builder] and [Mdst_builder]; this module provides
    the potential interface they share, the sequential reference engines
    (used to validate the potentials and count improvement steps against
    [φmax]), and well-nestedness checking. *)

type swap = { add : int * int; remove : int * int }

module type CYCLICAL = sig
  (** Name for reports. *)
  val name : string

  (** The potential [φ]. *)
  val phi : Repro_graph.Graph.t -> Repro_graph.Tree.t -> int

  (** An upper bound on [φ] (the paper's [φmax]); improvement counts are
      checked against it. *)
  val phi_max : Repro_graph.Graph.t -> int

  (** [improve g t] — when [φ(T) > 0], a swap with [φ(T+e−f) < φ(T)];
      [None] iff [φ(T) = 0]. *)
  val improve : Repro_graph.Graph.t -> Repro_graph.Tree.t -> swap option

  (** Membership in [F] (the task's legality), for validation. *)
  val in_family : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
end

module type NESTED = sig
  val name : string
  val phi : Repro_graph.Graph.t -> Repro_graph.Tree.t -> int
  val phi_max : Repro_graph.Graph.t -> int

  (** A well-nested sequence of swaps decreasing [φ]; [None] iff
      [φ(T) = 0]. *)
  val improve : Repro_graph.Graph.t -> Repro_graph.Tree.t -> swap list option

  val in_family : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
end

type 'a run = {
  result : Repro_graph.Tree.t;
  improvements : int;
  phi_trace : int list;  (** φ after each improvement, starting value first *)
}

(** [run_cyclical (module P) g ~init] — Algorithm 1: repeatedly apply
    [P.improve] until [φ = 0]. Raises [Failure] if an improvement fails
    to decrease [φ] or the step count exceeds [φmax] (the potential is
    then not cyclical-decreasing — a bug). *)
val run_cyclical :
  (module CYCLICAL) -> Repro_graph.Graph.t -> init:Repro_graph.Tree.t -> unit run

(** [run_nested (module P) g ~init] — Algorithm 3 with well-nested swap
    sequences; each sequence is validated with {!well_nested} before
    application. *)
val run_nested :
  (module NESTED) -> Repro_graph.Graph.t -> init:Repro_graph.Tree.t -> unit run

(** [apply g t swaps] applies the swaps in order.
    @raise Invalid_argument if some swap is inapplicable. *)
val apply : Repro_graph.Tree.t -> swap list -> Repro_graph.Tree.t

(** [well_nested t swaps] — the Section VII condition: each [(e_i, f_i)]
    has [e_i ∉ T_i], [f_i] on the fundamental cycle of [T_i + e_i]
    (checked on the running tree [T_i]), and for [j > i] the pair [e_j]
    connects nodes within a single subtree of the forest obtained from
    [T] by removing the edges of all earlier fundamental cycles. *)
val well_nested : Repro_graph.Tree.t -> swap list -> bool
