(** Silent loop-free edge switching (Section IV, Figure 1).

    [T ← T + e − f] is performed as a chain of {e local} switches along
    the reversed tree path (Figure 1a): writing the part of the
    fundamental cycle of [e = {x,y}] between the child endpoint of
    [f = {a,b}] and the endpoint of [e] inside the detached subtree as
    [u_1, …, u_k = c] (so [f = {u_1, p(u_1)}]), first [c] re-parents onto
    the other endpoint of [e], then each [u_i] re-parents onto its former
    child [u_{i+1}]. Each hop is a local switch between two neighbors, so
    the structure is a spanning tree after {e every} atomic step — the
    construction is loop-free.

    Each local switch runs the three phases of Figure 1b on the
    {e redundant} labeling, keeping the malleable verifier of Lemma 4.1
    accepting throughout:

    + {e pruning}: labels on the root→w and root→w' paths drop their size
      entry (top-down, preserving C1), and the strict descendants of [v]
      drop their distance entry (C2 holds because [v] keeps its label);
    + {e switching}: once [w], [w'] are pruned and [v]'s children carry
      no distance entry, [v] atomically sets [parent := w'] and
      [dist := dist(w') + 1];
    + {e relabeling}: sizes are recomputed bottom-up along both paths,
      then distances top-down inside [v]'s subtree, restoring the full
      redundant labeling of the new tree.

    The returned micro-step trace exposes every intermediate
    configuration so tests and experiment E3 can assert that no verifier
    ever rejects and that every configuration is a spanning tree. *)

type label = Repro_labels.Redundant_pls.label
type phase = Prune | Flip | Relabel

type micro = {
  phase : phase;
  actor : int;  (** the node whose register changed *)
  tree : Repro_graph.Tree.t;  (** the structure after the step *)
  labels : label array;  (** redundant labels after the step *)
}

(** [local_switch g t ~labels ~v ~w'] replaces the tree edge [{v, p(v)}]
    by the graph edge [{v, w'}] ([w'] a neighbor of [v] outside [v]'s
    subtree), returning the micro-step trace and the final tree/labels.
    @raise Invalid_argument if preconditions fail. *)
val local_switch :
  Repro_graph.Graph.t ->
  Repro_graph.Tree.t ->
  labels:label array ->
  v:int ->
  w':int ->
  micro list * Repro_graph.Tree.t * label array

(** [execute g t ~add ~remove] performs [T + add − remove] as the full
    chain of local switches, starting from the prover's labels of [t].
    Returns the complete micro-step trace and the final tree. The final
    labels equal the prover's labels on the final tree. *)
val execute :
  Repro_graph.Graph.t ->
  Repro_graph.Tree.t ->
  add:int * int ->
  remove:int * int ->
  micro list * Repro_graph.Tree.t
