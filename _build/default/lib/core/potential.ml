module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module Union_find = Repro_graph.Union_find

type swap = { add : int * int; remove : int * int }

module type CYCLICAL = sig
  val name : string
  val phi : Graph.t -> Tree.t -> int
  val phi_max : Graph.t -> int
  val improve : Graph.t -> Tree.t -> swap option
  val in_family : Graph.t -> Tree.t -> bool
end

module type NESTED = sig
  val name : string
  val phi : Graph.t -> Tree.t -> int
  val phi_max : Graph.t -> int
  val improve : Graph.t -> Tree.t -> swap list option
  val in_family : Graph.t -> Tree.t -> bool
end

type 'a run = { result : Tree.t; improvements : int; phi_trace : int list }

let apply t swaps =
  List.fold_left (fun t { add; remove } -> Tree.swap t ~add ~remove) t swaps

let well_nested t swaps =
  (* All three conditions of Section VII are stated against the original
     tree [T]: (a) e_i ∉ T; (b) f_i lies on the fundamental cycle of
     T + e_i; (c) each later pair connects nodes of a single subtree of
     the forest obtained from T by removing the edges of all earlier
     fundamental cycles. *)
  let ok = ref true in
  let cut = Hashtbl.create 16 (* tree edges removed by earlier cycles *) in
  let same_component x y =
    let uf = Union_find.create (Tree.n t) in
    for v = 0 to Tree.n t - 1 do
      let p = Tree.parent t v in
      if p <> -1 && not (Hashtbl.mem cut (min v p, max v p)) then
        ignore (Union_find.union uf v p)
    done;
    Union_find.same uf x y
  in
  List.iteri
    (fun i { add = x, y; remove = a, b } ->
      if !ok then begin
        if Tree.mem_edge t x y || x = y then ok := false
        else begin
          let cycle = Tree.fundamental_cycle t ~e:(x, y) in
          let rec pairs = function
            | p :: q :: rest -> (p, q) :: pairs (q :: rest)
            | _ -> []
          in
          let cyc_pairs = pairs cycle in
          if
            not
              (List.exists (fun (p, q) -> (p = a && q = b) || (p = b && q = a)) cyc_pairs)
          then ok := false
          else if i > 0 && not (same_component x y && same_component a b) then ok := false
          else
            List.iter
              (fun (p, q) -> Hashtbl.replace cut (min p q, max p q) ())
              cyc_pairs
        end
      end)
    swaps;
  !ok

let run_generic ~name ~phi ~phi_max ~in_family ~next g ~init =
  let t = ref init in
  let improvements = ref 0 in
  let trace = ref [ phi g !t ] in
  let budget = phi_max g + 1 in
  let continue_ = ref true in
  while !continue_ do
    match next g !t with
    | None ->
        if phi g !t <> 0 then
          failwith (name ^ ": improve = None but phi <> 0");
        continue_ := false
    | Some swaps ->
        let before = phi g !t in
        let t' = apply !t swaps in
        let after = phi g t' in
        if after >= before then
          failwith
            (Printf.sprintf "%s: phi did not decrease (%d -> %d)" name before after);
        t := t';
        incr improvements;
        trace := after :: !trace;
        if !improvements > budget then failwith (name ^ ": exceeded phi_max improvements")
  done;
  if not (in_family g !t) then failwith (name ^ ": terminated outside the family");
  { result = !t; improvements = !improvements; phi_trace = List.rev !trace }

let run_cyclical (module P : CYCLICAL) g ~init =
  run_generic ~name:P.name ~phi:P.phi ~phi_max:P.phi_max ~in_family:P.in_family
    ~next:(fun g t -> Option.map (fun s -> [ s ]) (P.improve g t))
    g ~init

let run_nested (module P : NESTED) g ~init =
  run_generic ~name:P.name ~phi:P.phi ~phi_max:P.phi_max ~in_family:P.in_family
    ~next:(fun g t ->
      match P.improve g t with
      | None -> None
      | Some swaps ->
          if not (well_nested t swaps) then failwith (P.name ^ ": sequence not well nested");
          Some swaps)
    g ~init
