module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module R = Repro_labels.Redundant_pls

type label = R.label
type phase = Prune | Flip | Relabel

type micro = { phase : phase; actor : int; tree : Tree.t; labels : label array }

let local_switch g t ~labels ~v ~w' =
  if v = Tree.root t then invalid_arg "Switch.local_switch: v is the root";
  let w = Tree.parent t v in
  if not (Graph.has_edge g v w') then invalid_arg "Switch.local_switch: {v,w'} not an edge";
  if Tree.is_ancestor t v w' then invalid_arg "Switch.local_switch: w' inside subtree(v)";
  if w' = w then invalid_arg "Switch.local_switch: w' is already the parent";
  let labels = Array.copy labels in
  let steps = ref [] in
  let emit phase actor tree = steps := { phase; actor; tree; labels = Array.copy labels } :: !steps in
  (* Phase 1: prune (top-down along both root paths, then v's strict
     descendants in any order — we use preorder). *)
  let prune_path target =
    List.iter
      (fun x ->
        if labels.(x).R.size <> None then begin
          labels.(x) <- R.prune_dist labels.(x);
          emit Prune x t
        end)
      (List.rev (Tree.path_to_root t target))
  in
  prune_path w;
  prune_path w';
  let order = Array.init (Tree.n t) Fun.id in
  Array.sort (fun a b -> compare (Tree.pre t a) (Tree.pre t b)) order;
  Array.iter
    (fun x ->
      if x <> v && Tree.is_ancestor t v x && labels.(x).R.dist <> None then begin
        labels.(x) <- R.prune_size labels.(x);
        emit Prune x t
      end)
    order;
  (* Phase 2: the atomic flip — v re-parents and refreshes its own
     distance in the same register write. *)
  let parents = Tree.parents t in
  parents.(v) <- w';
  let t' = Tree.of_parents ~root:(Tree.root t) parents in
  labels.(v) <-
    {
      labels.(v) with
      R.dist =
        (match labels.(w').R.dist with
        | Some d -> Some (d + 1)
        | None -> invalid_arg "Switch.local_switch: w' distance was pruned");
    };
  emit Flip v t';
  (* Phase 3: relabel. Sizes are restored bottom-up (deepest first,
     across both pruned root paths together): a node regains its size
     only after all its pruned children have, so its own size check —
     and, once the root is reached, the root's — sees every child entry
     present. *)
  let pruned =
    List.filter (fun x -> labels.(x).R.size = None) (List.init (Tree.n t') Fun.id)
  in
  let by_depth_desc = List.sort (fun a b -> compare (Tree.depth t' b) (Tree.depth t' a)) pruned in
  List.iter
    (fun x ->
      labels.(x) <- { labels.(x) with R.size = Some (Tree.size t' x) };
      emit Relabel x t')
    by_depth_desc;
  let order' = Array.init (Tree.n t') Fun.id in
  Array.sort (fun a b -> compare (Tree.pre t' a) (Tree.pre t' b)) order';
  Array.iter
    (fun x ->
      if x <> v && Tree.is_ancestor t' v x && labels.(x).R.dist = None then begin
        labels.(x) <- { labels.(x) with R.dist = Some (Tree.depth t' x) };
        emit Relabel x t'
      end)
    order';
  (List.rev !steps, t', labels)

let execute g t ~add:(x, y) ~remove:(a, b) =
  if not (Tree.mem_edge t a b) then invalid_arg "Switch.execute: remove not a tree edge";
  if Tree.mem_edge t x y then invalid_arg "Switch.execute: add already a tree edge";
  let child = if Tree.parent t a = b then a else b in
  let in_detached z = Tree.is_ancestor t child z in
  let c, outside =
    match (in_detached x, in_detached y) with
    | true, false -> (x, y)
    | false, true -> (y, x)
    | _ -> invalid_arg "Switch.execute: add does not cross the cut of remove"
  in
  (* The chain: path from c up to child (inclusive); each node re-parents
     onto its predecessor, c onto [outside]. *)
  let rec chain z acc = if z = child then List.rev (z :: acc) else chain (Tree.parent t z) (z :: acc) in
  let path = chain c [] (* c, ..., child *) in
  let labels = ref (R.prover t) in
  let tree = ref t in
  let steps = ref [] in
  let rec go targets nodes =
    match (nodes, targets) with
    | [], _ -> ()
    | v :: rest, target :: _ ->
        let s, t', l' = local_switch g !tree ~labels:!labels ~v ~w':target in
        steps := !steps @ s;
        tree := t';
        labels := l';
        go (v :: targets) rest
    | _ -> assert false
  in
  go [ outside ] path;
  (!steps, !tree)
