(** Rooted spanning trees, encoded as the paper encodes them: every node
    [v] other than the root stores the identity [p(v)] of its parent, and
    the root stores [p(root) = -1] (the paper's ⊥).

    A value of this type is immutable; {!swap} returns a new tree. *)

type t

(** {1 Construction} *)

(** [of_parents ~root parent] validates that [parent] (with
    [parent.(root) = -1]) encodes a tree spanning all of [0..n-1] rooted at
    [root], i.e. that the 1-factor [{(v, p(v))}] is a spanning tree.
    @raise Invalid_argument otherwise. *)
val of_parents : root:int -> int array -> t

(** [of_graph_bfs g ~root] is the BFS spanning tree of [g] from [root].
    @raise Invalid_argument if [g] is disconnected. *)
val of_graph_bfs : Graph.t -> root:int -> t

(** [check_parents ~root parent] is [true] iff {!of_parents} would
    succeed. This is the global legality predicate for the (unconstrained)
    spanning-tree task of Section II-A. *)
val check_parents : root:int -> int array -> bool

(** {1 Accessors} *)

val n : t -> int
val root : t -> int

(** [parent t v] is [p(v)], or [-1] for the root. *)
val parent : t -> int -> int

(** The full parent array (a fresh copy). *)
val parents : t -> int array

(** [children t v] — shared array, do not mutate; sorted increasing. *)
val children : t -> int -> int array

(** [depth t v] is the hop distance from [v] to the root along the tree. *)
val depth : t -> int -> int

(** [size t v] is the number of nodes in the subtree rooted at [v]. *)
val size : t -> int -> int

(** [degree t v] is the degree of [v] in the tree (children + parent). *)
val degree : t -> int -> int

(** Maximum {!degree} over all nodes — the paper's [deg(T)]. *)
val max_degree : t -> int

(** [tree_edges t g] are the edges of [t] with weights looked up in [g].
    @raise Not_found if some tree edge is absent from [g]. *)
val tree_edges : t -> Graph.t -> Graph.Edge.t list

(** Total weight of the tree's edges in [g]. *)
val weight : t -> Graph.t -> int

(** [mem_edge t u v] is [true] iff [{u,v}] is a tree edge. *)
val mem_edge : t -> int -> int -> bool

(** [is_ancestor t a v] is [true] iff [a] is an ancestor of [v]
    (reflexively: [is_ancestor t v v = true]). O(1) after preprocessing. *)
val is_ancestor : t -> int -> int -> bool

(** [nca t u v] is the nearest common ancestor of [u] and [v]. *)
val nca : t -> int -> int -> int

(** [path_to_root t v] is [v; p(v); ...; root]. *)
val path_to_root : t -> int -> int list

(** [tree_path t u v] is the unique tree path from [u] to [v], inclusive. *)
val tree_path : t -> int -> int -> int list

(** [pre t v] and [post t v]: DFS pre/post numbers of the tree (children
    visited in increasing order), used by interval ancestry labels. *)
val pre : t -> int -> int

val post : t -> int -> int

(** {1 Fundamental cycles and swaps} *)

(** [fundamental_cycle t ~e:(x,y)] for a non-tree pair [{x,y}] is the list
    of nodes on the tree path from [x] to [y] (the cycle [T + e] minus the
    edge [e] itself).
    @raise Invalid_argument if [{x,y}] is a tree edge or [x = y]. *)
val fundamental_cycle : t -> e:(int * int) -> int list

(** [swap t ~add:(x,y) ~remove:(a,b)] is the spanning tree
    [T + {x,y} - {a,b}]: [{a,b}] must be a tree edge, [{x,y}] must not be,
    and [{a,b}] must lie on the fundamental cycle of [{x,y}] (equivalently,
    [x] and [y] must be separated by removing [{a,b}]). The root is
    preserved.
    @raise Invalid_argument if the preconditions fail. *)
val swap : t -> add:(int * int) -> remove:(int * int) -> t

(** All spanning trees differ only in their parent encoding; structural
    equality of edge sets. *)
val same_edges : t -> t -> bool

val pp : Format.formatter -> t -> unit
