(** Sequential minimum-degree spanning tree (MDST) algorithms.

    Computing a spanning tree of degree [Δmin(G)] is NP-hard (Section II-B
    of the paper), but Fürer and Raghavachari's local-search algorithm
    (the paper's Algorithm 4) finds a spanning tree of degree at most
    [Δmin(G) + 1] in polynomial time. It stabilizes on an {e FR-tree}
    (Definition 8.1): a tree whose nodes can be marked good/bad such that
    (1) every maximum-degree node is bad, (2) every node of degree
    ≤ deg(T) − 2 is good, and (3) no graph edge joins good nodes of two
    different fragments (components of T minus bad nodes).

    The self-stabilizing MDST builder is validated against this module. *)

type marking = { good : bool array; fragment : int array }
(** A witness marking: [good.(v)] per Definition 8.1, and [fragment.(v)] =
    the minimum node id of [v]'s fragment ([-1] for bad nodes). *)

(** [furer_raghavachari g ~root] runs the paper's Algorithm 4 starting
    from the BFS tree at [root]. Returns the resulting FR-tree together
    with a witness marking and the number of applied improvements. *)
val furer_raghavachari : Graph.t -> root:int -> Tree.t * marking * int

(** [improve_once g t] — one step of the local search: run the marking
    closure and, if some maximum-degree node became good, apply the
    innermost swap of the corresponding well-nested improvement sequence
    (Section VII). [None] iff [t] is already an FR-tree. *)
val improve_once : Graph.t -> Tree.t -> Tree.t option

(** [is_fr_tree g t marking] checks Definition 8.1 against a given
    marking. *)
val is_fr_tree : Graph.t -> Tree.t -> marking -> bool

(** [find_marking g t] searches for a witness marking of [t] by the
    closure process of Algorithm 4 (marking propagation without applying
    improvements). Returns [None] when some maximum-degree node becomes
    good — i.e. [t] is {e not} an FR-tree. *)
val find_marking : Graph.t -> Tree.t -> marking option

(** [exact g] is [Δmin(G)], by branch-and-bound over spanning trees.
    Exponential; intended for [n ≲ 12] in tests. *)
val exact : Graph.t -> int

(** [exists_tree_with_degree g k] — is there a spanning tree of degree
    ≤ [k]? Exponential search with pruning. *)
val exists_tree_with_degree : Graph.t -> int -> bool
