let bfs_with_parents g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-2) in
  let q = Queue.create () in
  dist.(src) <- 0;
  parent.(src) <- -1;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun (v, _w) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  (dist, parent)

let bfs_distances g ~src = fst (bfs_with_parents g ~src)
let bfs_tree g ~src = snd (bfs_with_parents g ~src)

let dfs_order g ~src =
  let n = Graph.n g in
  let pre = Array.make n (-1) and post = Array.make n (-1) in
  let pre_clock = ref 0 and post_clock = ref 0 in
  (* Explicit stack to avoid overflow on long paths. Each frame is a node
     plus the index of the next neighbor to explore. *)
  let stack = Stack.create () in
  pre.(src) <- !pre_clock;
  incr pre_clock;
  Stack.push (src, ref 0) stack;
  while not (Stack.is_empty stack) do
    let u, next = Stack.top stack in
    let nbrs = Graph.neighbors g u in
    if !next >= Array.length nbrs then begin
      ignore (Stack.pop stack);
      post.(u) <- !post_clock;
      incr post_clock
    end
    else begin
      let v, _w = nbrs.(!next) in
      incr next;
      if pre.(v) = -1 then begin
        pre.(v) <- !pre_clock;
        incr pre_clock;
        Stack.push (v, ref 0) stack
      end
    end
  done;
  (pre, post)

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let q = Queue.create () in
      comp.(v) <- !count;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Array.iter
          (fun (x, _) ->
            if comp.(x) = -1 then begin
              comp.(x) <- !count;
              Queue.add x q
            end)
          (Graph.neighbors g u)
      done;
      incr count
    end
  done;
  (!count, comp)

let is_connected g = fst (components g) = 1

let eccentricity g v =
  let dist = bfs_distances g ~src:v in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Traversal.eccentricity: disconnected"
      else max acc d)
    0 dist

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g v)
  done;
  !best
