(** Sequential graph traversals: BFS, DFS, connectivity, diameter.

    These are the reference computations the self-stabilizing algorithms
    are validated against (e.g. the BFS builder of Section III must
    stabilize on the hop distances computed here). *)

(** [bfs_distances g ~src] is the array of hop distances from [src];
    unreachable nodes get [max_int]. *)
val bfs_distances : Graph.t -> src:int -> int array

(** [bfs_tree g ~src] is a parent array of a BFS tree rooted at [src]:
    [parent.(src) = -1]; unreachable nodes get [-2]. *)
val bfs_tree : Graph.t -> src:int -> int array

(** [dfs_order g ~src] is [(pre, post)]: DFS preorder and postorder
    numbers (0-based); unreachable nodes get [-1] in both. *)
val dfs_order : Graph.t -> src:int -> int array * int array

(** [components g] is [(count, comp)] where [comp.(v)] is the component
    index of [v] (indices are [0 .. count-1]). *)
val components : Graph.t -> int * int array

val is_connected : Graph.t -> bool

(** Exact diameter (max eccentricity) by running BFS from every node.
    @raise Invalid_argument if the graph is disconnected. *)
val diameter : Graph.t -> int

(** [eccentricity g v] is the max hop distance from [v].
    @raise Invalid_argument if the graph is disconnected. *)
val eccentricity : Graph.t -> int -> int
