module E = Graph.Edge

type marking = { good : bool array; fragment : int array }

(* The marking-propagation closure of Algorithm 4 (lines 4-9).

   Nodes of degree <= d-2 are good by degree; then, repeatedly, any graph
   edge e between good nodes of two different fragments makes every node of
   the fundamental cycle of T+e good ("witness-good", remembering e and a
   discovery timestamp). Fragments are the components of T restricted to
   good nodes.

   Returns the good flags, the witness/timestamp arrays, and the list of
   maximum-degree nodes that became good (empty iff T is an FR-tree). *)
let closure g t d =
  let n = Graph.n g in
  let good = Array.init n (fun v -> Tree.degree t v <= d - 2) in
  let witness = Array.make n None in
  let stamp = Array.make n max_int in
  let clock = ref 0 in
  let uf = Union_find.create n in
  let union_good_tree_neighbors x =
    let p = Tree.parent t x in
    if p <> -1 && good.(p) then ignore (Union_find.union uf x p);
    Array.iter
      (fun c -> if good.(c) then ignore (Union_find.union uf x c))
      (Tree.children t x)
  in
  for v = 0 to n - 1 do
    if good.(v) then union_good_tree_neighbors v
  done;
  let bad_hubs_marked = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    Graph.iter_edges
      (fun e ->
        if
          good.(e.E.u) && good.(e.E.v)
          && (not (Tree.mem_edge t e.E.u e.E.v))
          && not (Union_find.same uf e.E.u e.E.v)
        then begin
          changed := true;
          incr clock;
          let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
          List.iter
            (fun x ->
              if not good.(x) then begin
                good.(x) <- true;
                witness.(x) <- Some e;
                stamp.(x) <- !clock;
                union_good_tree_neighbors x;
                if Tree.degree t x = d then bad_hubs_marked := x :: !bad_hubs_marked
              end)
            cycle;
          ignore (Union_find.union uf e.E.u e.E.v)
        end)
      g
  done;
  (good, witness, stamp, uf, !bad_hubs_marked)

let marking_of good uf =
  let n = Array.length good in
  let fragment = Array.make n (-1) in
  (* Fragment id = minimum node id in the fragment. *)
  let min_id = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    if good.(v) then begin
      let r = Union_find.find uf v in
      match Hashtbl.find_opt min_id r with
      | Some m when m <= v -> ()
      | _ -> Hashtbl.replace min_id r v
    end
  done;
  for v = 0 to n - 1 do
    if good.(v) then fragment.(v) <- Hashtbl.find min_id (Union_find.find uf v)
  done;
  { good; fragment }

let find_marking g t =
  let d = Tree.max_degree t in
  let good, _w, _s, uf, hubs = closure g t d in
  if hubs <> [] then None else Some (marking_of good uf)

let is_fr_tree g t { good; fragment } =
  let d = Tree.max_degree t in
  let n = Graph.n g in
  let ok = ref true in
  for v = 0 to n - 1 do
    let deg = Tree.degree t v in
    if deg = d && good.(v) then ok := false;
    if deg <= d - 2 && not good.(v) then ok := false
  done;
  (* Fragment ids must be consistent: connected good nodes share an id. *)
  let uf = Union_find.create n in
  for v = 0 to n - 1 do
    if good.(v) then begin
      let p = Tree.parent t v in
      if p <> -1 && good.(p) then ignore (Union_find.union uf v p)
    end
  done;
  for v = 0 to n - 1 do
    if good.(v) then begin
      if fragment.(v) = -1 then ok := false
      else
        for u = 0 to n - 1 do
          if good.(u) && Union_find.same uf u v && fragment.(u) <> fragment.(v)
          then ok := false
        done
    end
  done;
  (* Property (3): no graph edge between good nodes of different
     fragments. *)
  Graph.iter_edges
    (fun e ->
      if
        good.(e.E.u) && good.(e.E.v)
        && not (Union_find.same uf e.E.u e.E.v)
      then ok := false)
    g;
  !ok

exception Abort

let neighbor_on_cycle cycle z =
  let rec go = function
    | a :: b :: rest -> if a = z then b else if b = z then a else go (b :: rest)
    | _ -> raise Abort
  in
  go cycle

(* One improvement = one full well-nested swap sequence (Section VII),
   built from a single closure: starting from the smallest-stamp
   maximum-degree good node, recursively pre-improve any witness endpoint
   whose (planned) degree exceeds d-2 — the recursion follows strictly
   decreasing discovery stamps, so it is well-founded and each node is
   expanded at most once — then shed a cycle edge at the node itself.
   Swaps are collected innermost-first and applied in that order; the
   batch reduces the hub's degree by one while no node reaches degree d,
   so (Δ, N_Δ) strictly decreases per batch and the search terminates.
   (Applying single swaps per closure instead is NOT terminating: pairs
   of degree-(d-1) improvements can ping-pong, e.g. on complete
   graphs.) *)
let improve_once g t =
  let d = Tree.max_degree t in
  let _good, witness, stamp, _uf, hubs = closure g t d in
  if hubs = [] then None
  else begin
    let n = Graph.n g in
    let hub = ref (-1) in
    for v = 0 to n - 1 do
      if witness.(v) <> None && Tree.degree t v = d then
        if !hub = -1 || stamp.(v) < stamp.(!hub) then hub := v
    done;
    if !hub = -1 then None
    else begin
      let delta = Hashtbl.create 16 in
      let eff q = Tree.degree t q + Option.value ~default:0 (Hashtbl.find_opt delta q) in
      let bump q by =
        Hashtbl.replace delta q (by + Option.value ~default:0 (Hashtbl.find_opt delta q))
      in
      let visited = Hashtbl.create 16 in
      let swaps = ref [] in
      let rec expand z =
        if Hashtbl.mem visited z then raise Abort;
        Hashtbl.replace visited z ();
        let e = match witness.(z) with Some e -> e | None -> raise Abort in
        List.iter
          (fun q ->
            if eff q > d - 2 then begin
              expand q;
              if eff q > d - 2 then raise Abort
            end)
          [ e.E.u; e.E.v ];
        let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
        if not (List.mem z cycle) then raise Abort;
        let nb = neighbor_on_cycle cycle z in
        swaps := ((e.E.u, e.E.v), (z, nb)) :: !swaps;
        bump z (-1);
        bump nb (-1);
        bump e.E.u 1;
        bump e.E.v 1
      in
      let attempt () =
        expand !hub;
        (* [swaps] was built by prepending on the way out of the
           recursion, so the hub's (outermost) swap sits first; reverse
           to apply innermost-first. *)
        List.fold_left
          (fun acc (add, remove) -> Tree.swap acc ~add ~remove)
          t (List.rev !swaps)
      in
      match attempt () with
      | t' -> Some t'
      | exception (Abort | Invalid_argument _) -> (
          (* Fall back to the innermost single swap (guaranteed applicable
             by the stamp-minimality argument); progress is then only
             heuristic, but the outer iteration cap keeps us honest. *)
          let z = ref (-1) in
          for v = 0 to n - 1 do
            if witness.(v) <> None && Tree.degree t v >= d - 1 then
              if !z = -1 || stamp.(v) < stamp.(!z) then z := v
          done;
          if !z = -1 then None
          else
            let z = !z in
            match witness.(z) with
            | None -> None
            | Some e -> (
                match Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) with
                | exception Invalid_argument _ -> None
                | cycle when not (List.mem z cycle) -> None
                | cycle -> (
                    match neighbor_on_cycle cycle z with
                    | nb -> Some (Tree.swap t ~add:(e.E.u, e.E.v) ~remove:(z, nb))
                    | exception Abort -> None)))
    end
  end

let furer_raghavachari g ~root =
  let t = ref (Tree.of_graph_bfs g ~root) in
  let improvements = ref 0 in
  let continue_ = ref true in
  (* Generous termination backstop: the degree sequence improves within
     polynomially many swaps; exceeding the cap indicates a bug. *)
  let cap = 100 + (8 * Graph.n g * Graph.m g) in
  while !continue_ do
    if !improvements > cap then failwith "Min_degree.furer_raghavachari: no convergence";
    match improve_once g !t with
    | Some t' ->
        t := t';
        incr improvements
    | None -> continue_ := false
  done;
  let marking =
    match find_marking g !t with
    | Some m -> m
    | None -> assert false (* improve_once returned None => FR-tree *)
  in
  (!t, marking, !improvements)

(* A spanning tree of degree <= 2 is a Hamiltonian path; decide by
   Held-Karp bitmask DP, feasible for n <= 22. *)
let hamiltonian_path g =
  let n = Graph.n g in
  if n > 22 then invalid_arg "Min_degree: hamiltonian check limited to n <= 22";
  if n = 1 then true
  else begin
    let adj = Array.make n 0 in
    Graph.iter_edges
      (fun e ->
        adj.(e.E.u) <- adj.(e.E.u) lor (1 lsl e.E.v);
        adj.(e.E.v) <- adj.(e.E.v) lor (1 lsl e.E.u))
      g;
    (* dp.(mask) = bitset of possible path endpoints covering [mask]. *)
    let dp = Array.make (1 lsl n) 0 in
    for v = 0 to n - 1 do
      dp.(1 lsl v) <- 1 lsl v
    done;
    let full = (1 lsl n) - 1 in
    let found = ref false in
    for mask = 1 to full do
      let ends = dp.(mask) in
      if ends <> 0 then
        if mask = full then found := true
        else
          for v = 0 to n - 1 do
            if ends land (1 lsl v) <> 0 then begin
              let ext = adj.(v) land lnot mask in
              let rec add bits =
                if bits <> 0 then begin
                  let b = bits land -bits in
                  dp.(mask lor b) <- dp.(mask lor b) lor b;
                  add (bits lxor b)
                end
              in
              add ext
            end
          done
    done;
    !found
  end

(* Backtracking over edge subsets with a degree budget, used for k >= 3
   where solutions are plentiful; exponential in the worst case, intended
   for validation on small graphs. Prunes on (a) not enough edges left,
   (b) an isolated vertex with no remaining incident edges. *)
let backtrack_tree_with_degree g k =
  let n = Graph.n g in
  let edges = Graph.edges g in
  let m = Array.length edges in
  let deg = Array.make n 0 in
  (* remaining.(v) = incident edges at position >= idx *)
  let remaining = Array.make n 0 in
  Array.iter
    (fun (e : E.t) ->
      remaining.(e.E.u) <- remaining.(e.E.u) + 1;
      remaining.(e.E.v) <- remaining.(e.E.v) + 1)
    edges;
  let parent = Array.make n (-1) in
  let rec find x = if parent.(x) < 0 then x else find parent.(x) in
  let rec go idx chosen =
    if chosen = n - 1 then true
    else if m - idx < n - 1 - chosen then false
    else begin
      let e = edges.(idx) in
      let ru = find e.E.u and rv = find e.E.v in
      let take () =
        if ru <> rv && deg.(e.E.u) < k && deg.(e.E.v) < k then begin
          parent.(ru) <- rv;
          deg.(e.E.u) <- deg.(e.E.u) + 1;
          deg.(e.E.v) <- deg.(e.E.v) + 1;
          let r = go (idx + 1) (chosen + 1) in
          parent.(ru) <- -1;
          deg.(e.E.u) <- deg.(e.E.u) - 1;
          deg.(e.E.v) <- deg.(e.E.v) - 1;
          r
        end
        else false
      in
      let skip () =
        remaining.(e.E.u) <- remaining.(e.E.u) - 1;
        remaining.(e.E.v) <- remaining.(e.E.v) - 1;
        let isolated v = deg.(v) = 0 && remaining.(v) = 0 in
        let r = (not (isolated e.E.u || isolated e.E.v)) && go (idx + 1) chosen in
        remaining.(e.E.u) <- remaining.(e.E.u) + 1;
        remaining.(e.E.v) <- remaining.(e.E.v) + 1;
        r
      in
      take () || skip ()
    end
  in
  go 0 0

let exists_tree_with_degree g k =
  let n = Graph.n g in
  if n = 1 then true
  else if k < 1 then false
  else if k = 1 then n <= 2
  else if k = 2 then hamiltonian_path g
  else backtrack_tree_with_degree g k

let exact g =
  let n = Graph.n g in
  if n = 1 then 0
  else if n = 2 then 1
  else begin
    (* Start from the Fürer-Raghavachari tree (degree d <= OPT+1) and
       descend while a strictly better tree exists; usually a single
       existence check at d-1 suffices. *)
    let t, _, _ = furer_raghavachari g ~root:0 in
    let rec descend k =
      if k > 2 && exists_tree_with_degree g (k - 1) then descend (k - 1) else k
    in
    descend (Tree.max_degree t)
  end
