module E = Graph.Edge

let kruskal g =
  let edges = Graph.edges g in
  Array.sort E.compare edges;
  let uf = Union_find.create (Graph.n g) in
  let acc = ref [] in
  Array.iter
    (fun (e : E.t) -> if Union_find.union uf e.u e.v then acc := e :: !acc)
    edges;
  if Union_find.count uf <> 1 then invalid_arg "Mst.kruskal: disconnected";
  List.rev !acc

let prim g ~src =
  let n = Graph.n g in
  let in_tree = Array.make n false in
  in_tree.(src) <- true;
  let module S = Set.Make (struct
    type t = E.t * int (* candidate edge, outside endpoint *)

    let compare (a, _) (b, _) = E.compare a b
  end) in
  let frontier = ref S.empty in
  let add_candidates u =
    Array.iter
      (fun (v, w) ->
        if not in_tree.(v) then frontier := S.add (E.make u v w, v) !frontier)
      (Graph.neighbors g u)
  in
  add_candidates src;
  let acc = ref [] in
  let count = ref 1 in
  while !count < n do
    match S.min_elt_opt !frontier with
    | None -> invalid_arg "Mst.prim: disconnected"
    | Some ((e, v) as elt) ->
        frontier := S.remove elt !frontier;
        if not in_tree.(v) then begin
          in_tree.(v) <- true;
          incr count;
          acc := e :: !acc;
          add_candidates v
        end
  done;
  List.rev !acc

let boruvka g =
  let n = Graph.n g in
  let uf = Union_find.create n in
  let acc = ref [] in
  let phases = ref 0 in
  while Union_find.count uf > 1 do
    incr phases;
    if !phases > n then invalid_arg "Mst.boruvka: disconnected";
    (* Lightest outgoing edge per fragment. *)
    let best : (int, E.t) Hashtbl.t = Hashtbl.create 16 in
    Graph.iter_edges
      (fun e ->
        let fu = Union_find.find uf e.E.u and fv = Union_find.find uf e.E.v in
        if fu <> fv then begin
          let update f =
            match Hashtbl.find_opt best f with
            | Some cur when E.compare cur e <= 0 -> ()
            | _ -> Hashtbl.replace best f e
          in
          update fu;
          update fv
        end)
      g;
    if Hashtbl.length best = 0 then invalid_arg "Mst.boruvka: disconnected";
    Hashtbl.iter
      (fun _ e -> if Union_find.union uf e.E.u e.E.v then acc := e :: !acc)
      best
  done;
  (List.sort E.compare !acc, !phases)

let weight_of edges = List.fold_left (fun acc (e : E.t) -> acc + e.w) 0 edges
let mst_weight g = weight_of (kruskal g)

let tree_of g edges ~root =
  let n = Graph.n g in
  let adj = Array.make n [] in
  List.iter
    (fun (e : E.t) ->
      adj.(e.u) <- e.v :: adj.(e.u);
      adj.(e.v) <- e.u :: adj.(e.v))
    edges;
  let parent = Array.make n (-2) in
  parent.(root) <- -1;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          Queue.add v q
        end)
      adj.(u)
  done;
  Tree.of_parents ~root parent

let is_mst g t = Tree.weight t g = mst_weight g
