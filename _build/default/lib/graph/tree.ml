type t = {
  root : int;
  parent : int array;
  children : int array array;
  depth : int array;
  size : int array;
  pre : int array;
  post : int array;
}

let n t = Array.length t.parent
let root t = t.root
let parent t v = t.parent.(v)
let parents t = Array.copy t.parent
let children t v = t.children.(v)
let depth t v = t.depth.(v)
let size t v = t.size.(v)
let pre t v = t.pre.(v)
let post t v = t.post.(v)

let degree t v =
  Array.length t.children.(v) + if t.parent.(v) = -1 then 0 else 1

let max_degree t =
  let best = ref 0 in
  for v = 0 to n t - 1 do
    if degree t v > !best then best := degree t v
  done;
  !best

let check_parents ~root parent =
  let n = Array.length parent in
  root >= 0 && n > 0 && root < n
  && parent.(root) = -1
  &&
  (* Every non-root chain must reach the root without revisiting a node;
     a bounded walk of length n suffices to detect cycles. *)
  let ok = ref true in
  let reached = Array.make n false in
  reached.(root) <- true;
  for v = 0 to n - 1 do
    if !ok && not reached.(v) then begin
      let rec walk x steps visited =
        if reached.(x) then List.iter (fun y -> reached.(y) <- true) visited
        else if steps > n then ok := false
        else
          let p = parent.(x) in
          if p < 0 || p >= n then ok := false
          else walk p (steps + 1) (x :: visited)
      in
      walk v 0 []
    end
  done;
  !ok && Array.for_all (fun b -> b) reached

let build ~root parent =
  let n = Array.length parent in
  let deg = Array.make n 0 in
  Array.iteri (fun v p -> if v <> root then deg.(p) <- deg.(p) + 1) parent;
  let children = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  for v = 0 to n - 1 do
    if v <> root then begin
      let p = parent.(v) in
      children.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  Array.iter (fun a -> Array.sort compare a) children;
  let depth = Array.make n 0
  and size = Array.make n 1
  and pre = Array.make n 0
  and post = Array.make n 0 in
  let pre_clock = ref 0 and post_clock = ref 0 in
  let stack = Stack.create () in
  pre.(root) <- 0;
  incr pre_clock;
  Stack.push (root, ref 0) stack;
  while not (Stack.is_empty stack) do
    let u, next = Stack.top stack in
    if !next >= Array.length children.(u) then begin
      ignore (Stack.pop stack);
      post.(u) <- !post_clock;
      incr post_clock;
      if u <> root then size.(parent.(u)) <- size.(parent.(u)) + size.(u)
    end
    else begin
      let c = children.(u).(!next) in
      incr next;
      depth.(c) <- depth.(u) + 1;
      pre.(c) <- !pre_clock;
      incr pre_clock;
      Stack.push (c, ref 0) stack
    end
  done;
  { root; parent = Array.copy parent; children; depth; size; pre; post }

let of_parents ~root parent =
  if not (check_parents ~root parent) then
    invalid_arg "Tree.of_parents: not a spanning tree";
  build ~root parent

let of_graph_bfs g ~root =
  let parent = Traversal.bfs_tree g ~src:root in
  if Array.exists (fun p -> p = -2) parent then
    invalid_arg "Tree.of_graph_bfs: disconnected graph";
  build ~root parent

let mem_edge t u v = (u <> t.root && t.parent.(u) = v) || (v <> t.root && t.parent.(v) = u)

let is_ancestor t a v = t.pre.(a) <= t.pre.(v) && t.post.(v) <= t.post.(a)

let nca t u v =
  (* Walk the deeper node up until depths match, then walk both. *)
  let rec lift x d target = if d > target then lift t.parent.(x) (d - 1) target else x in
  let du = t.depth.(u) and dv = t.depth.(v) in
  let u = lift u du (min du dv) and v = lift v dv (min du dv) in
  let rec go u v = if u = v then u else go t.parent.(u) t.parent.(v) in
  go u v

let path_to_root t v =
  let rec go x acc = if x = -1 then List.rev acc else go t.parent.(x) (x :: acc) in
  go v []

let tree_path t u v =
  let w = nca t u v in
  let rec up x acc = if x = w then List.rev (x :: acc) else up t.parent.(x) (x :: acc) in
  let u_side = up u [] (* u .. w *) in
  let rec down x acc = if x = w then acc else down t.parent.(x) (x :: acc) in
  u_side @ down v []

let fundamental_cycle t ~e:(x, y) =
  if x = y then invalid_arg "Tree.fundamental_cycle: self-loop";
  if mem_edge t x y then invalid_arg "Tree.fundamental_cycle: tree edge";
  tree_path t x y

let tree_edges t g =
  let acc = ref [] in
  for v = 0 to n t - 1 do
    if v <> t.root then
      acc := Graph.Edge.make v t.parent.(v) (Graph.weight g v t.parent.(v)) :: !acc
  done;
  !acc

let weight t g = List.fold_left (fun acc e -> acc + e.Graph.Edge.w) 0 (tree_edges t g)

let swap t ~add:(x, y) ~remove:(a, b) =
  if not (mem_edge t a b) then invalid_arg "Tree.swap: remove is not a tree edge";
  if mem_edge t x y || x = y then invalid_arg "Tree.swap: add is a tree edge";
  (* [child] is the lower endpoint of the removed edge; its subtree is the
     detached component. *)
  let child = if t.parent.(a) = b then a else b in
  let in_detached v = is_ancestor t child v in
  let c_in, c_out =
    match (in_detached x, in_detached y) with
    | true, false -> (x, y)
    | false, true -> (y, x)
    | _ -> invalid_arg "Tree.swap: added edge does not cross the cut"
  in
  let parent = Array.copy t.parent in
  (* Reverse the parent chain from [c_in] up to [child], then hook [c_in]
     onto [c_out]. *)
  let rec reverse v prev =
    let p = t.parent.(v) in
    parent.(v) <- prev;
    if v <> child then reverse p v
  in
  reverse c_in c_out;
  build ~root:t.root parent

let same_edges t1 t2 =
  n t1 = n t2
  &&
  let ok = ref true in
  for v = 0 to n t1 - 1 do
    if v <> t1.root && not (mem_edge t2 v t1.parent.(v)) then ok := false
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "@[<v>tree root=%d@," t.root;
  Array.iteri
    (fun v p -> if p <> -1 then Format.fprintf ppf "  %d -> %d@," v p)
    t.parent;
  Format.fprintf ppf "@]"
