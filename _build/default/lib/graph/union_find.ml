type t = {
  parent : int array;
  rank : int array;
  sizes : int array;
  mutable sets : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    sizes = Array.make n 1;
    sets = n;
  }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let same t x y = find t x = find t y

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let attach child root =
      t.parent.(child) <- root;
      t.sizes.(root) <- t.sizes.(root) + t.sizes.(child)
    in
    if t.rank.(rx) < t.rank.(ry) then attach rx ry
    else if t.rank.(rx) > t.rank.(ry) then attach ry rx
    else begin
      attach ry rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    t.sets <- t.sets - 1;
    true
  end

let count t = t.sets
let size t x = t.sizes.(find t x)
