(* All generators first build an unweighted edge set, then assign a random
   permutation of [1..m] as weights, so weights are always pairwise
   distinct. *)

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let weigh st pairs =
  let pairs = Array.of_list pairs in
  let m = Array.length pairs in
  let weights = Array.init m (fun i -> i + 1) in
  shuffle st weights;
  Array.to_list (Array.mapi (fun i (u, v) -> (u, v, weights.(i))) pairs)

let of_pairs st n pairs = Graph.of_edges n (weigh st pairs)

(* Stitch disconnected components together with random cross edges so the
   result is connected, as the paper assumes connected networks. *)
let connect st n pairs =
  let present = Hashtbl.create (List.length pairs) in
  List.iter
    (fun (u, v) -> Hashtbl.add present (min u v, max u v) ())
    pairs;
  let uf = Union_find.create n in
  List.iter (fun (u, v) -> ignore (Union_find.union uf u v)) pairs;
  let reps = Array.init n (fun i -> i) in
  shuffle st reps;
  let extra = ref [] in
  Array.iter
    (fun v ->
      if not (Union_find.same uf 0 v) then begin
        (* Link [v]'s component to component of node 0 via a random node
           already connected to 0. *)
        let rec pick () =
          let u = Random.State.int st n in
          if Union_find.same uf 0 u && not (Hashtbl.mem present (min u v, max u v))
          then u
          else pick ()
        in
        let u = pick () in
        Hashtbl.add present (min u v, max u v) ();
        ignore (Union_find.union uf u v);
        extra := (u, v) :: !extra
      end)
    reps;
  pairs @ !extra

let gnp st ~n ~p =
  if n < 1 then invalid_arg "Generators.gnp: n < 1";
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float st 1.0 < p then pairs := (u, v) :: !pairs
    done
  done;
  of_pairs st n (connect st n !pairs)

let prufer_tree st n =
  if n = 1 then []
  else if n = 2 then [ (0, 1) ]
  else begin
    let seq = Array.init (n - 2) (fun _ -> Random.State.int st n) in
    let deg = Array.make n 1 in
    Array.iter (fun x -> deg.(x) <- deg.(x) + 1) seq;
    let edges = ref [] in
    let module H = Set.Make (Int) in
    let leaves = ref H.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := H.add v !leaves
    done;
    Array.iter
      (fun x ->
        let leaf = H.min_elt !leaves in
        leaves := H.remove leaf !leaves;
        edges := (leaf, x) :: !edges;
        deg.(x) <- deg.(x) - 1;
        if deg.(x) = 1 then leaves := H.add x !leaves)
      seq;
    let a = H.min_elt !leaves in
    let b = H.max_elt !leaves in
    (a, b) :: !edges
  end

let random_tree st ~n = of_pairs st n (prufer_tree st n)

let random_connected st ~n ~m =
  let tree = prufer_tree st n in
  let present = Hashtbl.create m in
  List.iter (fun (u, v) -> Hashtbl.add present (min u v, max u v) ()) tree;
  let target = max m (n - 1) in
  let max_edges = n * (n - 1) / 2 in
  let target = min target max_edges in
  let extra = ref [] in
  let count = ref (List.length tree) in
  while !count < target do
    let u = Random.State.int st n and v = Random.State.int st n in
    if u <> v && not (Hashtbl.mem present (min u v, max u v)) then begin
      Hashtbl.add present (min u v, max u v) ();
      extra := (u, v) :: !extra;
      incr count
    end
  done;
  of_pairs st n (tree @ !extra)

let geometric st ~n ~radius =
  let xs = Array.init n (fun _ -> Random.State.float st 1.0) in
  let ys = Array.init n (fun _ -> Random.State.float st 1.0) in
  let r2 = radius *. radius in
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      if (dx *. dx) +. (dy *. dy) <= r2 then pairs := (u, v) :: !pairs
    done
  done;
  of_pairs st n (connect st n !pairs)

let grid st ~rows ~cols =
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let pairs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then pairs := (id r c, id r (c + 1)) :: !pairs;
      if r + 1 < rows then pairs := (id r c, id (r + 1) c) :: !pairs
    done
  done;
  of_pairs st n !pairs

let torus st ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus: needs >= 3x3";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let pairs = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      pairs := (id r c, id r ((c + 1) mod cols)) :: !pairs;
      pairs := (id r c, id ((r + 1) mod rows) c) :: !pairs
    done
  done;
  of_pairs st n !pairs

let ring st ~n =
  if n < 3 then invalid_arg "Generators.ring: n < 3";
  of_pairs st n (List.init n (fun i -> (i, (i + 1) mod n)))

let path st ~n =
  if n < 2 then invalid_arg "Generators.path: n < 2";
  of_pairs st n (List.init (n - 1) (fun i -> (i, i + 1)))

let star st ~n =
  if n < 2 then invalid_arg "Generators.star: n < 2";
  of_pairs st n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete st ~n =
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      pairs := (u, v) :: !pairs
    done
  done;
  of_pairs st n !pairs

let hypercube st ~dim =
  let n = 1 lsl dim in
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then pairs := (u, v) :: !pairs
    done
  done;
  of_pairs st n !pairs

let lollipop st ~clique ~tail =
  if clique < 2 then invalid_arg "Generators.lollipop: clique < 2";
  let n = clique + tail in
  let pairs = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      pairs := (u, v) :: !pairs
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then clique - 1 else clique + i - 1 in
    pairs := (prev, clique + i) :: !pairs
  done;
  of_pairs st n !pairs

let caterpillar st ~spine ~legs =
  if spine < 1 then invalid_arg "Generators.caterpillar: spine < 1";
  let n = spine * (1 + legs) in
  let pairs = ref [] in
  for i = 0 to spine - 2 do
    pairs := (i, i + 1) :: !pairs
  done;
  for i = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      pairs := (i, spine + (i * legs) + l) :: !pairs
    done
  done;
  of_pairs st n !pairs

let barabasi_albert st ~n ~m0 =
  if m0 < 1 then invalid_arg "Generators.barabasi_albert: m0 < 1";
  if n < m0 + 1 then invalid_arg "Generators.barabasi_albert: n too small";
  (* Start from a star on m0+1 nodes; every later node attaches to m0
     distinct targets sampled by degree (via the endpoint-list trick). *)
  let pairs = ref [] in
  let endpoints = ref [] in
  let add u v =
    pairs := (u, v) :: !pairs;
    endpoints := u :: v :: !endpoints
  in
  for v = 1 to m0 do
    add 0 v
  done;
  let endpoint_array () = Array.of_list !endpoints in
  for v = m0 + 1 to n - 1 do
    let eps = endpoint_array () in
    let chosen = Hashtbl.create m0 in
    let guard = ref 0 in
    while Hashtbl.length chosen < m0 && !guard < 100 * m0 do
      incr guard;
      let t = eps.(Random.State.int st (Array.length eps)) in
      if t <> v && not (Hashtbl.mem chosen t) then Hashtbl.add chosen t ()
    done;
    (* Fallback: complete the attachment deterministically if sampling
       stalled (tiny graphs). *)
    let u = ref 0 in
    while Hashtbl.length chosen < m0 do
      if !u <> v && not (Hashtbl.mem chosen !u) then Hashtbl.add chosen !u ();
      incr u
    done;
    Hashtbl.iter (fun t () -> add t v) chosen
  done;
  of_pairs st n !pairs

let isqrt x =
  let r = int_of_float (sqrt (float_of_int x)) in
  if (r + 1) * (r + 1) <= x then r + 1 else r

let by_name = function
  | "gnp" -> Some (fun st ~n -> gnp st ~n ~p:(4.0 /. float_of_int (max n 2)))
  | "dense" -> Some (fun st ~n -> gnp st ~n ~p:0.5)
  | "geometric" ->
      Some
        (fun st ~n ->
          geometric st ~n
            ~radius:(2.0 *. sqrt (log (float_of_int (max n 2)) /. float_of_int n)))
  | "grid" ->
      Some
        (fun st ~n ->
          let r = max 2 (isqrt n) in
          grid st ~rows:r ~cols:(max 2 ((n + r - 1) / r)))
  | "torus" ->
      Some
        (fun st ~n ->
          let r = max 3 (isqrt n) in
          torus st ~rows:r ~cols:(max 3 ((n + r - 1) / r)))
  | "ring" -> Some (fun st ~n -> ring st ~n:(max 3 n))
  | "path" -> Some (fun st ~n -> path st ~n:(max 2 n))
  | "star" -> Some (fun st ~n -> star st ~n:(max 2 n))
  | "complete" -> Some (fun st ~n -> complete st ~n)
  | "hypercube" ->
      Some
        (fun st ~n ->
          let rec dim_of k acc = if 1 lsl acc >= k then acc else dim_of k (acc + 1) in
          hypercube st ~dim:(max 1 (dim_of n 0)))
  | "lollipop" ->
      Some (fun st ~n -> lollipop st ~clique:(max 2 (n / 2)) ~tail:(n - max 2 (n / 2)))
  | "caterpillar" ->
      Some
        (fun st ~n ->
          let spine = max 1 (n / 4) in
          caterpillar st ~spine ~legs:(max 1 ((n / spine) - 1)))
  | "random" -> Some (fun st ~n -> random_connected st ~n ~m:(2 * n))
  | "scale-free" -> Some (fun st ~n -> barabasi_albert st ~n:(max 4 n) ~m0:2)
  | "tree" -> Some (fun st ~n -> random_tree st ~n)
  | _ -> None

let all_names =
  [
    "gnp"; "dense"; "geometric"; "grid"; "torus"; "ring"; "path"; "star";
    "complete"; "hypercube"; "lollipop"; "caterpillar"; "random"; "tree";
    "scale-free";
  ]
