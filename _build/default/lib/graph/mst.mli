(** Sequential reference algorithms for minimum-weight spanning trees.

    Because all edge comparisons use {!Graph.Edge.compare} (distinct
    weights), the MST of every connected graph is unique; the three
    algorithms below must therefore return identical edge sets, which the
    test suite checks. The self-stabilizing MST builder (Algorithm 2 of
    the paper) is validated against {!kruskal}. *)

(** [kruskal g] is the MST edge set. @raise Invalid_argument if [g] is
    disconnected. *)
val kruskal : Graph.t -> Graph.Edge.t list

(** [prim g ~src] — same tree, Jarník–Prim order. *)
val prim : Graph.t -> src:int -> Graph.Edge.t list

(** [boruvka g] — same tree, Borůvka fragment-merging order (the paper's
    Section VI describes the MST labels as a trace of this algorithm).
    Also returns the number of merge phases, which is ≤ ⌈log₂ n⌉. *)
val boruvka : Graph.t -> Graph.Edge.t list * int

(** Total weight of an edge list. *)
val weight_of : Graph.Edge.t list -> int

(** [mst_weight g] is the weight of the (unique) MST. *)
val mst_weight : Graph.t -> int

(** [tree_of g edges ~root] converts an MST edge list into a rooted
    {!Tree.t}. *)
val tree_of : Graph.t -> Graph.Edge.t list -> root:int -> Tree.t

(** [is_mst g t] — true iff the spanning tree [t] is the MST of [g]. *)
val is_mst : Graph.t -> Tree.t -> bool
