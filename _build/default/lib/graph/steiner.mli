(** Minimum-degree Steiner trees — the original setting of Fürer and
    Raghavachari [33], whose spanning-tree specialization is the paper's
    Algorithm 4.

    A Steiner tree for a terminal set [S] is a tree in [G] spanning all
    of [S], possibly passing through non-terminal (Steiner) nodes. This
    module provides:

    - {!metric_mst}: the classic metric-closure construction (an MST over
      the terminals' shortest-path metric, unfolded back to graph paths) —
      the standard 2-approximation for {e weight}, used as the starting
      tree;
    - {!prune}: removal of useless non-terminal leaves;
    - {!min_degree_steiner}: FR-style local search minimizing the maximum
      degree over Steiner trees on the chosen node set (the node set is
      fixed after construction and pruning, which is the restriction we
      document in DESIGN.md — full [33] also migrates Steiner points);
    - {!exact_degree}: brute-force optimum over the same node set, for
      validation on small instances.

    A Steiner tree here is represented as a set of graph edges. *)

type t = {
  nodes : int list;  (** the spanned node set (terminals ∪ Steiner nodes) *)
  edges : Graph.Edge.t list;
}

(** [check g ~terminals st] — [st.edges] forms a tree over exactly
    [st.nodes] and every terminal is spanned. *)
val check : Graph.t -> terminals:int list -> t -> bool

(** Maximum degree of the Steiner tree. *)
val degree : t -> int

(** Total edge weight. *)
val weight : t -> int

(** [metric_mst g ~terminals] — metric-closure 2-approximation.
    @raise Invalid_argument on an empty terminal list or disconnected
    terminals. *)
val metric_mst : Graph.t -> terminals:int list -> t

(** [prune ~terminals st] — repeatedly drop non-terminal leaves. *)
val prune : terminals:int list -> t -> t

(** [min_degree_steiner g ~terminals] — build ({!metric_mst} + {!prune}),
    then reduce the maximum degree by FR-style swaps over the fixed node
    set (each swap exchanges a tree edge at a maximum-degree node for a
    graph edge between two nodes of the tree, both of degree at most
    [deg − 2], lying in different components of the tree minus its
    high-degree nodes). Returns the tree and the number of improvements. *)
val min_degree_steiner : Graph.t -> terminals:int list -> t * int

(** [exact_degree g ~nodes ~terminals] — minimum possible maximum degree
    of a tree spanning exactly [nodes] (checked by branch and bound over
    the induced subgraph; exponential, small inputs only). *)
val exact_degree : Graph.t -> nodes:int list -> int
