lib/graph/mst.ml: Array Graph Hashtbl List Queue Set Tree Union_find
