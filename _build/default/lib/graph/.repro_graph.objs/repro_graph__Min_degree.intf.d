lib/graph/min_degree.mli: Graph Tree
