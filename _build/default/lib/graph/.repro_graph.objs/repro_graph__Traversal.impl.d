lib/graph/traversal.ml: Array Graph Queue Stack
