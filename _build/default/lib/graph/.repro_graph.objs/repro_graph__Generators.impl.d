lib/graph/generators.ml: Array Graph Hashtbl Int List Random Set Union_find
