lib/graph/steiner.ml: Array Graph Hashtbl List Min_degree Option Printf Queue Set Union_find
