lib/graph/min_degree.ml: Array Graph Hashtbl List Option Tree Union_find
