lib/graph/steiner.mli: Graph
