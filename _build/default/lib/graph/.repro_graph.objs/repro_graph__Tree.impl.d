lib/graph/tree.ml: Array Format Graph List Stack Traversal
