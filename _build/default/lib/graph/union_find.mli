(** Disjoint-set forest (union–find) with path compression and union by
    rank.

    Used by the sequential Kruskal and Borůvka reference algorithms, by the
    spanning-tree validity checks, and by the Fürer–Raghavachari fragment
    bookkeeping. *)

type t

(** [create n] is a fresh structure over elements [0 .. n-1], each in its
    own singleton set. *)
val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]. Returns [true] iff the
    two sets were distinct (i.e. a merge actually happened). *)
val union : t -> int -> int -> bool

(** [same t x y] is [true] iff [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int

(** [size t x] is the number of elements in [x]'s set. *)
val size : t -> int -> int
