(** Deterministic pseudo-random and structured graph generators.

    All generators produce simple connected graphs with pairwise-distinct
    edge weights (a random permutation of [1..m] unless stated otherwise),
    matching the paper's model assumptions. Randomized generators are
    driven by an explicit [Random.State.t] so every experiment is
    reproducible from its seed. *)

(** [gnp st ~n ~p] is an Erdős–Rényi graph conditioned on connectivity:
    edges are kept with probability [p], then any disconnected components
    are stitched with uniformly random cross edges. *)
val gnp : Random.State.t -> n:int -> p:float -> Graph.t

(** [random_connected st ~n ~m] has exactly [max m (n-1)] edges: a uniform
    random spanning tree first, then random extra edges. *)
val random_connected : Random.State.t -> n:int -> m:int -> Graph.t

(** [geometric st ~n ~radius] is a random geometric graph on the unit
    square (the sensor-network topology of the paper's MDST motivation),
    stitched to connectivity like {!gnp}. *)
val geometric : Random.State.t -> n:int -> radius:float -> Graph.t

(** [grid st ~rows ~cols] is the [rows × cols] grid. *)
val grid : Random.State.t -> rows:int -> cols:int -> Graph.t

(** [torus st ~rows ~cols] is the grid with wraparound edges;
    requires [rows >= 3] and [cols >= 3] to stay simple. *)
val torus : Random.State.t -> rows:int -> cols:int -> Graph.t

(** [ring st ~n] is the cycle on [n >= 3] nodes. *)
val ring : Random.State.t -> n:int -> Graph.t

(** [path st ~n] is the path on [n] nodes. *)
val path : Random.State.t -> n:int -> Graph.t

(** [star st ~n] is the star with center [0]. *)
val star : Random.State.t -> n:int -> Graph.t

(** [complete st ~n] is K_n. *)
val complete : Random.State.t -> n:int -> Graph.t

(** [hypercube st ~dim] is the [dim]-dimensional hypercube (2^dim nodes). *)
val hypercube : Random.State.t -> dim:int -> Graph.t

(** [lollipop st ~clique ~tail] is K_[clique] with a path of [tail] nodes
    attached — a classic hard case for tree-degree heuristics. *)
val lollipop : Random.State.t -> clique:int -> tail:int -> Graph.t

(** [caterpillar st ~spine ~legs] is a spine path where every spine node
    carries [legs] pendant leaves — worst-case degree spread for MDST. *)
val caterpillar : Random.State.t -> spine:int -> legs:int -> Graph.t

(** [random_tree st ~n] is a uniform random labeled tree (Prüfer). *)
val random_tree : Random.State.t -> n:int -> Graph.t

(** [barabasi_albert st ~n ~m0] — preferential attachment: each new node
    attaches to [m0] existing nodes sampled proportionally to degree.
    Produces the hub-heavy topologies that stress minimum-degree
    spanning-tree constructions. *)
val barabasi_albert : Random.State.t -> n:int -> m0:int -> Graph.t

(** Named generator lookup for the CLI and benches:
    ["gnp"; "geometric"; "grid"; "ring"; "complete"; "hypercube";
    "lollipop"; "caterpillar"; "random"; "tree"; "path"; "star"; "torus"].
    The parameter is interpreted per family (e.g. [p] for gnp). *)
val by_name : string -> (Random.State.t -> n:int -> Graph.t) option

val all_names : string list
