module E = Graph.Edge

type t = { nodes : int list; edges : E.t list }

let degree st =
  let tbl = Hashtbl.create 16 in
  let bump v = Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)) in
  List.iter
    (fun (e : E.t) ->
      bump e.u;
      bump e.v)
    st.edges;
  Hashtbl.fold (fun _ d acc -> max acc d) tbl 0

let weight st = List.fold_left (fun acc (e : E.t) -> acc + e.E.w) 0 st.edges

let degrees_of st =
  let tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace tbl v 0) st.nodes;
  List.iter
    (fun (e : E.t) ->
      Hashtbl.replace tbl e.u (1 + Hashtbl.find tbl e.u);
      Hashtbl.replace tbl e.v (1 + Hashtbl.find tbl e.v))
    st.edges;
  tbl

let check g ~terminals st =
  let nodes = List.sort_uniq compare st.nodes in
  List.length st.edges = List.length nodes - 1
  && List.for_all (fun t -> List.mem t nodes) terminals
  && List.for_all
       (fun (e : E.t) ->
         Graph.has_edge g e.u e.v && List.mem e.u nodes && List.mem e.v nodes)
       st.edges
  &&
  (* connectivity over the node set *)
  let uf = Union_find.create (Graph.n g) in
  List.iter (fun (e : E.t) -> ignore (Union_find.union uf e.u e.v)) st.edges;
  match nodes with
  | [] -> false
  | first :: rest -> List.for_all (fun v -> Union_find.same uf first v) rest

(* Shortest paths (weighted) from [src], with predecessor tracking. *)
let dijkstra_paths g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let pred = Array.make n (-1) in
  let module Q = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let q = ref (Q.singleton (0, src)) in
  dist.(src) <- 0;
  while not (Q.is_empty !q) do
    let ((d, u) as elt) = Q.min_elt !q in
    q := Q.remove elt !q;
    if d = dist.(u) then
      Array.iter
        (fun (v, w) ->
          if d + w < dist.(v) then begin
            dist.(v) <- d + w;
            pred.(v) <- u;
            q := Q.add (d + w, v) !q
          end)
        (Graph.neighbors g u)
  done;
  (dist, pred)

let metric_mst g ~terminals =
  let terminals = List.sort_uniq compare terminals in
  if terminals = [] then invalid_arg "Steiner.metric_mst: no terminals";
  match terminals with
  | [ t ] -> { nodes = [ t ]; edges = [] }
  | _ ->
      let paths = List.map (fun t -> (t, dijkstra_paths g ~src:t)) terminals in
      List.iter
        (fun (t, (dist, _)) ->
          List.iter
            (fun t' ->
              if dist.(t') = max_int then
                invalid_arg
                  (Printf.sprintf "Steiner.metric_mst: terminals %d and %d disconnected" t t'))
            terminals)
        paths;
      (* Kruskal over the terminal metric closure. *)
      let closure =
        List.concat_map
          (fun (t, (dist, _)) ->
            List.filter_map
              (fun t' -> if t < t' then Some (dist.(t'), t, t') else None)
              terminals)
          paths
      in
      let closure = List.sort compare closure in
      let uf = Union_find.create (Graph.n g) in
      let edge_set = Hashtbl.create 32 in
      let node_set = Hashtbl.create 32 in
      List.iter (fun t -> Hashtbl.replace node_set t ()) terminals;
      List.iter
        (fun (_, a, b) ->
          if Union_find.union uf a b then begin
            (* Unfold the metric edge into the real shortest path a..b. *)
            let _, pred = List.assoc a paths in
            let rec walk v =
              Hashtbl.replace node_set v ();
              if v <> a then begin
                let p = pred.(v) in
                let w = Graph.weight g v p in
                let e = E.make v p w in
                Hashtbl.replace edge_set (e.E.u, e.E.v) e;
                walk p
              end
            in
            walk b
          end)
        closure;
      (* The union of shortest paths can contain cycles; keep a spanning
         forest of it via Kruskal and the involved nodes. *)
      let edges = Hashtbl.fold (fun _ e acc -> e :: acc) edge_set [] in
      let edges = List.sort E.compare edges in
      let uf2 = Union_find.create (Graph.n g) in
      let kept =
        List.filter (fun (e : E.t) -> Union_find.union uf2 e.u e.v) edges
      in
      { nodes = Hashtbl.fold (fun v () acc -> v :: acc) node_set []; edges = kept }

let prune ~terminals st =
  let is_terminal = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace is_terminal t ()) terminals;
  let rec go st =
    let deg = degrees_of st in
    let drop =
      List.filter
        (fun v -> (not (Hashtbl.mem is_terminal v)) && Hashtbl.find deg v <= 1)
        st.nodes
    in
    if drop = [] then st
    else begin
      let dropped = Hashtbl.create 8 in
      List.iter (fun v -> Hashtbl.replace dropped v ()) drop;
      go
        {
          nodes = List.filter (fun v -> not (Hashtbl.mem dropped v)) st.nodes;
          edges =
            List.filter
              (fun (e : E.t) ->
                not (Hashtbl.mem dropped e.u || Hashtbl.mem dropped e.v))
              st.edges;
        }
    end
  in
  go st

(* One FR-style degree improvement on the fixed node set: find a graph
   edge e between two tree nodes of degree <= d-2 lying in different
   components of (tree minus nodes of degree >= d-1) whose tree cycle
   passes through a degree-d node z; swap e for a cycle edge at z. This
   is the closure of Algorithm 4 with degree-good marks only, iterated to
   a fixpoint by [min_degree_steiner]. *)
let improve_once g st =
  let nodes = st.nodes in
  let deg = degrees_of st in
  let d = degree st in
  if d <= 2 then None
  else begin
    (* adjacency of the Steiner tree *)
    let adj = Hashtbl.create 32 in
    let add a b =
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a))
    in
    List.iter
      (fun (e : E.t) ->
        add e.u e.v;
        add e.v e.u)
      st.edges;
    let path u v =
      (* BFS in the tree from u to v *)
      let prev = Hashtbl.create 32 in
      let q = Queue.create () in
      Hashtbl.replace prev u u;
      Queue.add u q;
      while not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun y ->
            if not (Hashtbl.mem prev y) then begin
              Hashtbl.replace prev y x;
              Queue.add y q
            end)
          (Option.value ~default:[] (Hashtbl.find_opt adj x))
      done;
      let rec back v acc = if v = u then u :: acc else back (Hashtbl.find prev v) (v :: acc) in
      if Hashtbl.mem prev v then Some (back v []) else None
    in
    (* fragments: components of good (degree <= d-2) nodes *)
    let uf = Union_find.create (Graph.n g) in
    let good v = Hashtbl.find deg v <= d - 2 in
    List.iter
      (fun (e : E.t) -> if good e.u && good e.v then ignore (Union_find.union uf e.u e.v))
      st.edges;
    let in_tree = Hashtbl.create 32 in
    List.iter (fun v -> Hashtbl.replace in_tree v ()) nodes;
    let tree_edge = Hashtbl.create 32 in
    List.iter (fun (e : E.t) -> Hashtbl.replace tree_edge (e.u, e.v) ()) st.edges;
    let result = ref None in
    Graph.iter_edges
      (fun e ->
        if !result = None then
          if
            Hashtbl.mem in_tree e.E.u && Hashtbl.mem in_tree e.E.v
            && good e.E.u && good e.E.v
            && (not (Hashtbl.mem tree_edge (e.E.u, e.E.v)))
            && not (Union_find.same uf e.E.u e.E.v)
          then begin
            match path e.E.u e.E.v with
            | None -> ()
            | Some cycle ->
                (* a maximum-degree node on the cycle, with its cycle
                   neighbor *)
                let rec find = function
                  | a :: b :: rest ->
                      if Hashtbl.find deg a = d then Some (a, b)
                      else if Hashtbl.find deg b = d then Some (b, a)
                      else find (b :: rest)
                  | _ -> None
                in
                (match find cycle with
                | Some (z, nb) ->
                    let w = Graph.weight g z nb in
                    let f = E.make z nb w in
                    result :=
                      Some
                        {
                          st with
                          edges = e :: List.filter (fun x -> not (E.equal x f)) st.edges;
                        }
                | None -> ())
          end)
      g;
    !result
  end

let min_degree_steiner g ~terminals =
  let st = ref (prune ~terminals (metric_mst g ~terminals)) in
  let improvements = ref 0 in
  let cap = 100 + (4 * Graph.n g * Graph.m g) in
  let continue_ = ref true in
  while !continue_ do
    if !improvements > cap then failwith "Steiner.min_degree_steiner: no convergence";
    match improve_once g !st with
    | Some st' ->
        st := prune ~terminals st';
        incr improvements
    | None -> continue_ := false
  done;
  (!st, !improvements)

let exact_degree g ~nodes =
  let nodes = List.sort_uniq compare nodes in
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) nodes;
  let k = List.length nodes in
  if k <= 1 then 0
  else begin
    (* Induced subgraph, re-labeled 0..k-1. *)
    let edges =
      Graph.fold_edges
        (fun e acc ->
          match (Hashtbl.find_opt index e.E.u, Hashtbl.find_opt index e.E.v) with
          | Some a, Some b -> (a, b, e.E.w) :: acc
          | _ -> acc)
        [] g
    in
    let sub = Graph.of_edges k edges in
    Min_degree.exact sub
  end
