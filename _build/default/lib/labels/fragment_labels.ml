module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space
module E = Graph.Edge

type entry = { frag : int; fdist : int; out : E.t option; odist : int }
type label = entry array

let equal (a : label) b = a = b

let pp ppf (l : label) =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i e ->
      Format.fprintf ppf "L%d: frag=%d fdist=%d odist=%d out=%a@," (i + 1) e.frag e.fdist
        e.odist
        (fun ppf -> function Some e -> E.pp ppf e | None -> Format.fprintf ppf "⊥")
        e.out)
    l;
  Format.fprintf ppf "@]"

let size_bits n (l : label) =
  let entry_bits e =
    Space.id_bits n + (2 * Space.dist_bits n)
    + Space.opt (fun _ -> Space.edge_bits n) e.out
  in
  Array.fold_left (fun acc e -> acc + entry_bits e) 0 l

let levels (l : label) = Array.length l

(* BFS distances within the current fragment partition: sources is a list
   of nodes, edges are tree edges between same-[frag] nodes. *)
let fragment_bfs t frag sources =
  let n = Tree.n t in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  List.iter
    (fun s ->
      dist.(s) <- 0;
      Queue.add s q)
    sources;
  let visit u v =
    if frag.(v) = frag.(u) && dist.(v) = max_int then begin
      dist.(v) <- dist.(u) + 1;
      Queue.add v q
    end
  in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let p = Tree.parent t u in
    if p <> -1 then visit u p;
    Array.iter (fun c -> visit u c) (Tree.children t u)
  done;
  dist

let prover g t =
  let n = Graph.n g in
  let tree_edges = Tree.tree_edges t g in
  let frag = Array.init n (fun v -> v) in
  let prev_frag = Array.make n (-1) in
  (* prev_frag.(v) = v's fragment id at the previous level; for level 1
     the "previous fragment" is v itself, anchoring fdist = 0 at v. *)
  Array.iteri (fun v _ -> prev_frag.(v) <- v) prev_frag;
  let acc = ref [] in
  let finished = ref false in
  while not !finished do
    (* Selected (minimum outgoing) tree edge per fragment. *)
    let best : (int, E.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (e : E.t) ->
        if frag.(e.u) <> frag.(e.v) then begin
          let update f =
            match Hashtbl.find_opt best f with
            | Some cur when E.compare cur e <= 0 -> ()
            | _ -> Hashtbl.replace best f e
          in
          update frag.(e.u);
          update frag.(e.v)
        end)
      tree_edges;
    (* Anchors: nodes whose previous-level fragment id survived. *)
    let anchors =
      List.init n Fun.id |> List.filter (fun v -> prev_frag.(v) = frag.(v))
    in
    let fdist = fragment_bfs t frag anchors in
    if Hashtbl.length best = 0 then begin
      (* Single fragment spanning the tree: top level. *)
      acc :=
        Array.init n (fun v -> { frag = frag.(v); fdist = fdist.(v); out = None; odist = 0 })
        :: !acc;
      finished := true
    end
    else begin
      let odist = Array.make n 0 in
      (* Distance to the inside endpoint of the fragment's selected edge;
         computed per fragment via a multi-source BFS from all inside
         endpoints (each fragment has exactly one). *)
      let inside_endpoints =
        Hashtbl.fold
          (fun f (e : E.t) l ->
            let inside = if frag.(e.u) = f then e.u else e.v in
            inside :: l)
          best []
      in
      let od = fragment_bfs t frag inside_endpoints in
      Array.iteri (fun v _ -> odist.(v) <- od.(v)) odist;
      acc :=
        Array.init n (fun v ->
            {
              frag = frag.(v);
              fdist = fdist.(v);
              out = Hashtbl.find_opt best frag.(v);
              odist = odist.(v);
            })
        :: !acc;
      (* Merge along selected edges. *)
      let uf = Repro_graph.Union_find.create n in
      for v = 0 to n - 1 do
        let p = Tree.parent t v in
        if p <> -1 && frag.(p) = frag.(v) then ignore (Repro_graph.Union_find.union uf v p)
      done;
      Hashtbl.iter (fun _ (e : E.t) -> ignore (Repro_graph.Union_find.union uf e.u e.v)) best;
      let min_id = Hashtbl.create 16 in
      for v = 0 to n - 1 do
        let r = Repro_graph.Union_find.find uf v in
        match Hashtbl.find_opt min_id r with
        | Some m when m <= v -> ()
        | _ -> Hashtbl.replace min_id r v
      done;
      for v = 0 to n - 1 do
        prev_frag.(v) <- frag.(v);
        frag.(v) <- Hashtbl.find min_id (Repro_graph.Union_find.find uf v)
      done
    end
  done;
  let per_level = Array.of_list (List.rev !acc) in
  let k = Array.length per_level in
  Array.init n (fun v -> Array.init k (fun i -> per_level.(i).(v)))

let fragments_at labels ~level =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun v (l : label) ->
      let f = l.(level).frag in
      Hashtbl.replace tbl f (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl f))))
    labels;
  Hashtbl.fold (fun f vs acc -> (f, List.sort compare vs) :: acc) tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Local verification *)

type nbr = { nid : int; nweight : int; ntree : bool; nlabel : label }

let neighbors_of (ctx : label Pls.ctx) =
  Array.to_list
    (Array.init (Array.length ctx.nbr_ids) (fun i ->
         {
           nid = ctx.nbr_ids.(i);
           nweight = ctx.nbr_weights.(i);
           ntree = ctx.nbr_parents.(i) = ctx.id || ctx.parent = ctx.nbr_ids.(i);
           nlabel = ctx.nbr_labels.(i);
         }))

let verify_gen ~check_graph_minimality (ctx : label Pls.ctx) =
  let l = ctx.label in
  let k = Array.length l in
  let nbrs = neighbors_of ctx in
  let tree_nbrs = List.filter (fun nb -> nb.ntree) nbrs in
  let incident_tree_edges =
    List.map (fun nb -> (nb, E.make ctx.id nb.nid nb.nweight)) tree_nbrs
  in
  let ok = ref (k >= 1 && k <= Space.log2_ceil (max 2 ctx.n) + 1) in
  (* Level-count agreement with every neighbor. *)
  List.iter (fun nb -> if Array.length nb.nlabel <> k then ok := false) nbrs;
  if !ok then begin
    (* Level 1 (index 0): singleton fragments. *)
    let e0 = l.(0) in
    if e0.frag <> ctx.id || e0.fdist <> 0 then ok := false;
    (match e0.out with
    | None -> if k <> 1 || incident_tree_edges <> [] then ok := false
    | Some e ->
        if e0.odist <> 0 then ok := false;
        let mine =
          List.fold_left
            (fun best (_, ie) ->
              match best with
              | None -> Some ie
              | Some b -> if E.compare ie b < 0 then Some ie else best)
            None incident_tree_edges
        in
        (match mine with
        | Some m when E.equal m e -> ()
        | _ -> ok := false));
    for i = 0 to k - 1 do
      if !ok then begin
        let ei = l.(i) in
        (* frag ids shrink as fragments merge and never exceed own id. *)
        if ei.frag < 0 || ei.frag > ctx.id then ok := false;
        if i > 0 && ei.frag > l.(i - 1).frag then ok := false;
        if ei.fdist < 0 || ei.fdist > ctx.n || ei.odist < 0 || ei.odist > ctx.n then
          ok := false;
        (* fdist anchoring: 0 ⇒ previous-level id survived; >0 ⇒ some
           fragment-mate tree neighbor is one hop closer. *)
        let prev_frag = if i = 0 then ctx.id else l.(i - 1).frag in
        if ei.fdist = 0 then begin
          if ei.frag <> prev_frag then ok := false
        end
        else if
          not
            (List.exists
               (fun nb ->
                 let ne = nb.nlabel.(i) in
                 ne.frag = ei.frag && ne.fdist = ei.fdist - 1)
               tree_nbrs)
        then ok := false;
        (* Fragment-mate tree neighbors agree on [out]; merge rule across
           fragment boundaries. *)
        List.iter
          (fun (nb, ie) ->
            let ne = nb.nlabel.(i) in
            if ne.frag = ei.frag then begin
              if ne.out <> ei.out then ok := false;
              if i + 1 < k && nb.nlabel.(i + 1).frag <> l.(i + 1).frag then ok := false
            end
            else begin
              (* Unique tree edge between adjacent fragments: merged at
                 the next level iff this very edge is selected by one
                 side. *)
              let selected =
                (match ei.out with Some e -> E.equal e ie | None -> false)
                || (match ne.out with Some e -> E.equal e ie | None -> false)
              in
              if i + 1 < k then begin
                let same_next = nb.nlabel.(i + 1).frag = l.(i + 1).frag in
                if same_next <> selected then ok := false
              end
              else if i + 1 = k then
                (* Top level: no outgoing tree edges may remain. *)
                ok := false
            end)
          incident_tree_edges;
        (match ei.out with
        | None ->
            (* Only the top level may have no outgoing edge. *)
            if i <> k - 1 then ok := false
        | Some e ->
            if i = k - 1 then ok := false
            else begin
              (* odist chain toward the inside endpoint. *)
              if ei.odist = 0 then begin
                if not (E.mem e ctx.id) then ok := false
                else begin
                  (* The selected edge leaves my fragment through me: it
                     must be one of my real tree edges, and its other
                     endpoint must be in a different fragment. *)
                  match
                    List.find_opt (fun (nb, ie) -> E.equal ie e && nb.nid = E.other e ctx.id)
                      incident_tree_edges
                  with
                  | None -> ok := false
                  | Some (nb, _) -> if nb.nlabel.(i).frag = ei.frag then ok := false
                end
              end
              else if
                not
                  (List.exists
                     (fun nb ->
                       let ne = nb.nlabel.(i) in
                       ne.frag = ei.frag && ne.odist = ei.odist - 1
                       && ne.out = ei.out)
                     tree_nbrs)
              then ok := false;
              (* Minimality among my own outgoing tree edges. *)
              List.iter
                (fun (nb, ie) ->
                  if nb.nlabel.(i).frag <> ei.frag && E.compare ie e < 0 then ok := false)
                incident_tree_edges;
              (* Cut rule against all incident graph edges (MST facet). *)
              if check_graph_minimality then
                List.iter
                  (fun nb ->
                    if nb.nlabel.(i).frag <> ei.frag then begin
                      let ge = E.make ctx.id nb.nid nb.nweight in
                      if E.compare ge e < 0 then ok := false
                    end)
                  nbrs
            end)
      end
    done
  end;
  !ok

let verify ctx = verify_gen ~check_graph_minimality:true ctx
let verify_trace ctx = verify_gen ~check_graph_minimality:false ctx

(* ------------------------------------------------------------------ *)
(* Global helpers (potential, candidates) *)

let min_outgoing g labels ~level ~frag =
  Graph.fold_edges
    (fun e best ->
      let fu = labels.(e.E.u).(level).frag and fv = labels.(e.E.v).(level).frag in
      if (fu = frag || fv = frag) && fu <> fv then
        match best with
        | Some b when E.compare b e <= 0 -> best
        | _ -> Some e
      else best)
    None g

let potential g _t labels =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let k = Array.length labels.(0) in
    (* φ_x = deepest level prefix whose outgoing edges are G-minimal;
       G-minimality is a per-fragment fact, so compute it per level per
       fragment. *)
    let level_ok = Array.make_matrix k n true in
    for i = 0 to k - 1 do
      let checked = Hashtbl.create 16 in
      for x = 0 to n - 1 do
        let e = labels.(x).(i) in
        let okf =
          match Hashtbl.find_opt checked e.frag with
          | Some b -> b
          | None ->
              let b =
                match e.out with
                | None -> true
                | Some out -> (
                    match min_outgoing g labels ~level:i ~frag:e.frag with
                    | Some m -> E.equal m out
                    | None -> false)
              in
              Hashtbl.replace checked e.frag b;
              b
        in
        level_ok.(i).(x) <- okf
      done
    done;
    let phi_x x =
      let rec go i = if i < k && level_ok.(i).(x) then go (i + 1) else i in
      go 0
    in
    let sum = ref 0 in
    for x = 0 to n - 1 do
      sum := !sum + phi_x x
    done;
    (k * n) - !sum
  end

let violation_level g labels =
  let n = Array.length labels in
  if n = 0 then None
  else begin
    let k = Array.length labels.(0) in
    let result = ref None in
    for i = k - 1 downto 0 do
      let seen = Hashtbl.create 16 in
      for x = 0 to n - 1 do
        let e = labels.(x).(i) in
        if not (Hashtbl.mem seen e.frag) then begin
          Hashtbl.add seen e.frag ();
          match e.out with
          | None -> ()
          | Some out -> (
              match min_outgoing g labels ~level:i ~frag:e.frag with
              | Some m when not (E.equal m out) -> result := Some i
              | _ -> ())
        end
      done
    done;
    !result
  end

let accepts_tree g t = Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover g t) verify
