module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = { root_id : int; dist : int }

let equal (a : label) b = a = b
let pp ppf l = Format.fprintf ppf "(r=%d,d=%d)" l.root_id l.dist
let size_bits n _ = Space.id_bits n + Space.dist_bits n

let prover t =
  Array.init (Tree.n t) (fun v -> { root_id = Tree.root t; dist = Tree.depth t v })

(* The distance facet (spanning tree) plus the BFS facet (no neighbor
   more than one hop closer). *)
let tree_facet (ctx : label Pls.ctx) =
  Array.for_all (fun l -> l.root_id = ctx.label.root_id) ctx.nbr_labels
  &&
  match Pls.parent_label ctx with
  | `Root -> ctx.label.dist = 0 && ctx.label.root_id = ctx.id
  | `Label pl -> ctx.label.dist = pl.dist + 1 && ctx.label.dist <= ctx.n
  | `Broken -> false

let bfs_facet (ctx : label Pls.ctx) =
  Array.for_all (fun l -> l.dist >= ctx.label.dist - 1) ctx.nbr_labels

let verify ctx = tree_facet ctx && bfs_facet ctx

let violation (ctx : label Pls.ctx) =
  if verify ctx || ctx.parent = -1 then None
  else begin
    let closer = ref None in
    Array.iteri
      (fun i l ->
        match !closer with
        | None when l.dist < ctx.label.dist - 1 -> closer := Some ctx.nbr_ids.(i)
        | _ -> ())
      ctx.nbr_labels;
    Option.map (fun u -> (u, ctx.parent)) !closer
  end

let accepts_tree g t = Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover t) verify
