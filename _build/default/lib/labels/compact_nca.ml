module Tree = Repro_graph.Tree

(* A label is a bitstring, stored as a bool array (the measured size in
   bits is what matters, not the in-memory packing). Structure:

     γ(pos₁+1) γ(rank₁) γ(pos₂+1) γ(rank₂) … γ(pos_k+1)

   one (position, light-rank) group per heavy path crossed; the final
   path contributes only its position. Elias-γ codes are self-delimiting,
   so two labels can be parsed in lockstep without side tables. *)

type label = bool array

let equal (a : label) b = a = b
let bits = Array.length

let pp ppf (l : label) =
  Format.pp_print_string ppf "⟨";
  Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) l;
  Format.pp_print_string ppf "⟩"

(* Elias gamma: for x >= 1, floor(log2 x) zeros, then x in binary. *)
let gamma x =
  if x < 1 then invalid_arg "Compact_nca.gamma";
  let nbits =
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
    go x 0
  in
  Array.init ((2 * nbits) - 1) (fun i ->
      if i < nbits - 1 then false else x land (1 lsl (nbits - 1 - (i - (nbits - 1)))) <> 0)

(* Decode one gamma code starting at offset [i]; returns (value, next). *)
let degamma (l : label) i =
  let n = Array.length l in
  let rec zeros j = if j < n && not l.(j) then zeros (j + 1) else j in
  let z = zeros i in
  let nbits = z - i + 1 in
  if z + nbits - 1 > n then raise Exit;
  let v = ref 0 in
  for j = z to z + nbits - 1 do
    v := (!v lsl 1) lor if l.(j) then 1 else 0
  done;
  (!v, z + nbits)

(* Parse into (pos, rank option) groups; rank = None on the final group. *)
let parse (l : label) =
  let n = Array.length l in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let pos1, j = degamma l i in
      if j >= n then List.rev ((pos1 - 1, None) :: acc)
      else
        let rank, k = degamma l j in
        go k ((pos1 - 1, Some rank) :: acc)
  in
  go 0 []

let render groups =
  Array.concat
    (List.concat_map
       (fun (pos, rank) ->
         gamma (pos + 1) :: (match rank with Some r -> [ gamma r ] | None -> []))
       groups)

let prover t =
  let hp = Heavy_path.compute t in
  let n = Tree.n t in
  (* Rank of each light child among its siblings' light children,
     ordered by decreasing subtree size (ties by id). *)
  let light_rank = Array.make n 0 in
  for v = 0 to n - 1 do
    let lights =
      Array.to_list (Tree.children t v)
      |> List.filter (fun c -> Heavy_path.heavy_child hp v <> c)
      |> List.sort (fun a b -> compare (-Tree.size t a, a) (-Tree.size t b, b))
    in
    List.iteri (fun i c -> light_rank.(c) <- i + 1) lights
  done;
  (* Groups along root→v, built top-down over the pre-order. *)
  let groups : (int * int option) list array = Array.make n [] in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (Tree.pre t a) (Tree.pre t b)) order;
  Array.iter
    (fun v ->
      if v = Tree.root t then groups.(v) <- [ (0, None) ]
      else begin
        let p = Tree.parent t v in
        if Heavy_path.heavy_child hp p = v then begin
          (* extend the last group's position *)
          match List.rev groups.(p) with
          | (pos, None) :: rest -> groups.(v) <- List.rev ((pos + 1, None) :: rest)
          | _ -> assert false
        end
        else begin
          (* seal the parent's path at its exit position, start a new
             path at position 0 *)
          match List.rev groups.(p) with
          | (pos, None) :: rest ->
              groups.(v) <- List.rev ((0, None) :: (pos, Some light_rank.(v)) :: rest)
          | _ -> assert false
        end
      end)
    order;
  Array.map render groups

let nca (a : label) b =
  let ga = parse a and gb = parse b in
  let rec go ga gb acc =
    match (ga, gb) with
    | (pa, ra) :: resta, (pb, rb) :: restb -> (
        match (ra, rb) with
        | Some x, Some y when x = y && pa = pb -> go resta restb ((pa, ra) :: acc)
        | _ ->
            (* First divergence: the NCA sits on this common heavy path
               at the smaller position. *)
            List.rev ((min pa pb, None) :: acc)
        )
    | [], _ | _, [] -> List.rev acc (* ill-formed input; be defensive *)
  in
  render (go ga gb [])

let is_ancestor a v = equal (nca a v) a

let on_cycle ~x ~u ~v =
  let w = nca u v in
  (equal (nca x u) x && equal (nca x v) w) || (equal (nca x u) w && equal (nca x v) x)

let resolve t l =
  let labels = prover t in
  let rec go v =
    if v >= Tree.n t then raise Not_found else if equal labels.(v) l then v else go (v + 1)
  in
  go 0
