(** Compressed NCA labels — the O(log n)-{e bit} encoding of the
    Alstrup–Gavoille–Kaplan–Rauhe scheme that the paper invokes for
    Lemma 5.1 (where [Nca_labels] stores the heavy-path sequence as raw
    (head, position) integer pairs, costing O(log² n) bits).

    The label of [v] is a single self-delimiting bitstring: for each
    heavy path on the root→v walk, the Elias-γ code of (position + 1) —
    the exit position for traversed paths, [v]'s own position for the
    last — followed, for every traversed path, by the Elias-γ code of
    the taken light child's {e rank} among its siblings' light children
    ordered by decreasing subtree size (ties by id). Ranks substitute for
    node ids: the i-th largest light child has subtree size ≤ s(parent)/i,
    so γ(rank) ≤ 2·log(s(parent)/s(child)) + 1 bits, and the per-label
    total telescopes to O(log n) bits.

    The γ codes make the stream parsable without any side tables, so two
    labels can be compared in lockstep: {!nca} computes the label of the
    nearest common ancestor from two labels alone, exactly like
    [Nca_labels.nca], and {!on_cycle} implements the paper's
    fundamental-cycle membership test. Experiment E4 reports the measured
    bit sizes of both encodings side by side. *)

type label

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit

(** Exact size of this label in bits. *)
val bits : label -> int

(** [prover t] computes all labels for the tree. *)
val prover : Repro_graph.Tree.t -> label array

(** [nca a b] — label of the nearest common ancestor. *)
val nca : label -> label -> label

(** [is_ancestor a v] — reflexive ancestry from labels alone. *)
val is_ancestor : label -> label -> bool

(** The paper's cycle membership test for a non-tree edge [{u,v}]. *)
val on_cycle : x:label -> u:label -> v:label -> bool

(** [resolve t l] — the node carrying [l] (test helper).
    @raise Not_found if absent. *)
val resolve : Repro_graph.Tree.t -> label -> int
