module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = { root_id : int; dist : int }

let equal a b = a.root_id = b.root_id && a.dist = b.dist
let pp ppf l = Format.fprintf ppf "(r=%d,d=%d)" l.root_id l.dist
let size_bits n _ = Space.id_bits n + Space.dist_bits n

let prover t =
  Array.init (Tree.n t) (fun v -> { root_id = Tree.root t; dist = Tree.depth t v })

let verify (ctx : label Pls.ctx) =
  let same_root = Array.for_all (fun l -> l.root_id = ctx.label.root_id) ctx.nbr_labels in
  let dist_ok =
    match Pls.parent_label ctx with
    | `Root -> ctx.label.dist = 0 && ctx.label.root_id = ctx.id
    | `Label pl -> ctx.label.dist = pl.dist + 1 && ctx.label.dist <= ctx.n
    | `Broken -> false
  in
  same_root && dist_ok

let accepts_tree g t =
  Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover t) verify
