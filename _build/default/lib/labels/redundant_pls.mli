(** The redundant — and {e malleable} — proof-labeling scheme for spanning
    trees (Section IV, Definition 4.1 and Lemma 4.1).

    The label of [v] is a triple [(ID(root), d, s)] combining the
    distance-based and size-based schemes. The scheme is malleable with
    respect to the transformation [T ← T + e − f]: a legal labeling may be
    {e pruned} — some [d] or [s] entries replaced by ⊥ — without any node
    rejecting, provided

    {ul
    {- no label becomes [(⊥,⊥)],}
    {- (C1) if [v] is pruned to [(d,⊥)] then so is its parent, and}
    {- (C2) if [v] is pruned to [(⊥,s)] then its parent keeps its [s].}}

    The verifier implements the decision table of Lemma 4.1 ("distance"
    = check [d(v) = d(p(v)) + 1]; "size" = check
    [s(v) = 1 + Σ s(child)]):

    {v
                      parent (d',s')   parent (d',⊥)   parent (⊥,s')
      v = (d,s)       distance+size    distance        size
      v = (d,⊥)       no               distance        no
      v = (⊥,s)       size             no              size
    v}

    Lemma 4.1 guarantees: (1) every pruning of a legal labeling of a
    spanning tree is accepted everywhere; (2) every labeling of a
    non-tree is rejected somewhere. The edge-switch protocol of
    [Repro_core.Switch] keeps every intermediate configuration inside the
    accepted set, which is how the construction stays loop-free. *)

type label = { root_id : int; dist : int option; size : int option }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int

(** [prover t] — the full (unpruned) redundant labeling of [t]. *)
val prover : Repro_graph.Tree.t -> label array

(** [well_formed l] — the label is not [(⊥,⊥)]. *)
val well_formed : label -> bool

(** The Lemma 4.1 verifier. *)
val verify : label Pls.ctx -> bool

(** [valid_pruning t labels] — [labels] is a pruning of the legal
    redundant labeling of [t] satisfying C1, C2 and well-formedness
    (global check, used by tests and the switch protocol's assertions). *)
val valid_pruning : Repro_graph.Tree.t -> label array -> bool

(** [prune_dist l] = [(root, d, ⊥)]; [prune_size l] = [(root, ⊥, s)].
    @raise Invalid_argument if the result would be [(⊥,⊥)]. *)
val prune_dist : label -> label

val prune_size : label -> label
val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
