lib/labels/distance_pls.mli: Format Pls Repro_graph
