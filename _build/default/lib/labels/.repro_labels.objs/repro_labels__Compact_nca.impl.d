lib/labels/compact_nca.ml: Array Format Heavy_path List Repro_graph
