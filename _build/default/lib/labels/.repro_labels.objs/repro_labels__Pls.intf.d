lib/labels/pls.mli: Repro_graph
