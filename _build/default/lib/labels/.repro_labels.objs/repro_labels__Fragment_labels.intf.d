lib/labels/fragment_labels.mli: Format Pls Repro_graph
