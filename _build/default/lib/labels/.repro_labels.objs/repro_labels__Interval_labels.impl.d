lib/labels/interval_labels.ml: Array Format List Pls Repro_graph Repro_runtime
