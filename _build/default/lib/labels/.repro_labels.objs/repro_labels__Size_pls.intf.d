lib/labels/size_pls.mli: Format Pls Repro_graph
