lib/labels/heavy_path.mli: Repro_graph
