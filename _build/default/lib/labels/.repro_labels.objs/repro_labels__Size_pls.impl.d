lib/labels/size_pls.ml: Array Format List Pls Repro_graph Repro_runtime
