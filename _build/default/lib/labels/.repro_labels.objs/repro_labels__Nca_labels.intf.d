lib/labels/nca_labels.mli: Format Repro_graph
