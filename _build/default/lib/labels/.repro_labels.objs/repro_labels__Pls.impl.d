lib/labels/pls.ml: Array Repro_graph
