lib/labels/redundant_pls.mli: Format Pls Repro_graph
