lib/labels/redundant_pls.ml: Array Format Pls Repro_graph Repro_runtime
