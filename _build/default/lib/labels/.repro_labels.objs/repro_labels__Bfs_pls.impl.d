lib/labels/bfs_pls.ml: Array Format Option Pls Repro_graph Repro_runtime
