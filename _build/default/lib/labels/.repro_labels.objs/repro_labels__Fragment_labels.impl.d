lib/labels/fragment_labels.ml: Array Format Fun Hashtbl List Option Pls Queue Repro_graph Repro_runtime
