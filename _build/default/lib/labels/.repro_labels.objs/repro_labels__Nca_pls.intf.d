lib/labels/nca_pls.mli: Format Nca_labels Pls Repro_graph
