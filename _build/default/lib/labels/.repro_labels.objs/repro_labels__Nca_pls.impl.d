lib/labels/nca_pls.ml: Array Format List Nca_labels Pls Repro_graph Repro_runtime
