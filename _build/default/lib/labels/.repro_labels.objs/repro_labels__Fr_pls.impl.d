lib/labels/fr_pls.ml: Array Format Fun List Pls Queue Repro_graph Repro_runtime
