lib/labels/fr_pls.mli: Format Pls Repro_graph
