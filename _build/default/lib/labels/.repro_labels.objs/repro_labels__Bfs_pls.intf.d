lib/labels/bfs_pls.mli: Format Pls Repro_graph
