lib/labels/heavy_path.ml: Array Repro_graph
