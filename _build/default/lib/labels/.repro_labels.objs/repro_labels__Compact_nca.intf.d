lib/labels/compact_nca.mli: Format Repro_graph
