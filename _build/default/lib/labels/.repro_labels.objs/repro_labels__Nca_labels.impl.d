lib/labels/nca_labels.ml: Array Format Heavy_path Repro_graph Repro_runtime Stdlib
