lib/labels/interval_labels.mli: Format Pls Repro_graph
