(** Borůvka-trace fragment labels and the MST proof-labeling scheme
    (Section VI; Korman–Kutten style, O(log² n) bits — space-optimal for
    silent MST).

    Each node [x] stores, for every level [i = 1..k] of a virtual
    execution of Borůvka's algorithm {e on the current tree T}:

    - [frag_i(x)]: the identity of [x]'s level-[i] fragment (the smallest
      node id in the fragment);
    - [out_i(x)]: the lightest tree edge leaving the fragment — the edge
      along which the fragment merges at this level ([None] only at the
      top level, where the single fragment spans [T]).

    Since fragments at least halve in number per level, [k ≤ ⌈log₂ n⌉],
    and each entry costs O(log n) bits.

    [T] is the (unique) MST iff each [out_i(x)] is additionally the
    lightest edge leaving [frag_i(x)] {e in the whole graph G} (the cut
    rule). The per-node, per-level defect is the potential of Section VI:
    [φ(T) = k·n − Σ_x φ_x(T)], with [φ_x] the deepest level up to which
    [x]'s outgoing edges are G-minimal. [φ(T) = 0 ⟺ T ∈ MST(G)], and a
    red-rule swap on the lightest violating fragment edge decreases [φ]. *)

type entry = {
  frag : int;  (** fragment id = min node id in the fragment *)
  fdist : int;
      (** hops (inside this level's fragment) to an {e anchor} — a node
          whose previous-level fragment id equals [frag]. The decreasing
          chain certifies locally that [frag] really is the minimum of
          the merged fragments' ids (a min claimed without an anchor
          cannot form a 0-terminated chain). *)
  out : Repro_graph.Graph.Edge.t option;  (** the fragment's selected (merge) edge *)
  odist : int;
      (** hops (inside the fragment) to the endpoint of [out] that lies
          inside the fragment; certifies that [out] is genuinely incident
          to the claimed fragment, and that fragment-mates agree on it. *)
}

type label = entry array

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int

(** Number of levels [k]. *)
val levels : label -> int

(** [prover g t] computes the trace labels for tree [t] in graph [g]
    (weights of tree edges are read from [g]). Every node gets the same
    number of levels. *)
val prover : Repro_graph.Graph.t -> Repro_graph.Tree.t -> label array

(** [fragments_at labels ~level] — the partition at a given level (list
    of (fragment id, member list)); test helper. *)
val fragments_at : label array -> level:int -> (int * int list) list

(** The local verifier of trace consistency {e and} G-minimality (the
    full MST PLS): a node checks level count agreement, level-1 facts,
    fragment/merge consistency with tree neighbors, agreement of [out]
    across fragment-mates, that its own incident tree edges leaving the
    fragment are no lighter than [out], and the cut rule against all its
    incident graph edges. *)
val verify : label Pls.ctx -> bool

(** Like {!verify} but without the G-minimality facet: accepts the trace
    of any spanning tree, not only the MST. Used while the tree is still
    being improved. *)
val verify_trace : label Pls.ctx -> bool

(** [potential g t labels] = [k·n − Σ_x φ_x(T)] (Section VI). Assumes
    [labels = prover g t]. Zero iff [t] is the MST. *)
val potential : Repro_graph.Graph.t -> Repro_graph.Tree.t -> label array -> int

(** [first_violation g labels x ~x_edges] — smallest level [i] such that
    [out_i(x)] is not G-minimal for [frag_i(x)], together with a lighter
    incident edge if one touches [x]. Global helper for tests. *)
val violation_level : Repro_graph.Graph.t -> label array -> int option

(** [min_outgoing g labels ~level ~frag] — the lightest G-edge leaving
    fragment [frag] at [level] (the paper's merge candidate e). *)
val min_outgoing :
  Repro_graph.Graph.t -> label array -> level:int -> frag:int -> Repro_graph.Graph.Edge.t option

val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
