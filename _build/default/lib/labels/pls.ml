module Graph = Repro_graph.Graph

type 'label ctx = {
  id : int;
  n : int;
  nbr_ids : int array;
  nbr_weights : int array;
  parent : int;
  label : 'label;
  nbr_parents : int array;
  nbr_labels : 'label array;
}

let ctx_of g ~parent ~labels v =
  let nbrs = Graph.neighbors g v in
  {
    id = v;
    n = Graph.n g;
    nbr_ids = Array.map fst nbrs;
    nbr_weights = Array.map snd nbrs;
    parent = parent.(v);
    label = labels.(v);
    nbr_parents = Array.map (fun (u, _) -> parent.(u)) nbrs;
    nbr_labels = Array.map (fun (u, _) -> labels.(u)) nbrs;
  }

let rejections g ~parent ~labels verify =
  let acc = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not (verify (ctx_of g ~parent ~labels v)) then acc := v :: !acc
  done;
  !acc

let accepts g ~parent ~labels verify = rejections g ~parent ~labels verify = []

let children ctx =
  let acc = ref [] in
  for i = Array.length ctx.nbr_ids - 1 downto 0 do
    if ctx.nbr_parents.(i) = ctx.id then acc := ctx.nbr_ids.(i) :: !acc
  done;
  !acc

let parent_label ctx =
  if ctx.parent = -1 then `Root
  else
    let rec go i =
      if i >= Array.length ctx.nbr_ids then `Broken
      else if ctx.nbr_ids.(i) = ctx.parent then `Label ctx.nbr_labels.(i)
      else go (i + 1)
    in
    go 0
