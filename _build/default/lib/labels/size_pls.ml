module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = { root_id : int; size : int }

let equal a b = a.root_id = b.root_id && a.size = b.size
let pp ppf l = Format.fprintf ppf "(r=%d,s=%d)" l.root_id l.size
let size_bits n _ = Space.id_bits n + Space.dist_bits n

let prover t =
  Array.init (Tree.n t) (fun v -> { root_id = Tree.root t; size = Tree.size t v })

let verify (ctx : label Pls.ctx) =
  let same_root = Array.for_all (fun l -> l.root_id = ctx.label.root_id) ctx.nbr_labels in
  let sum_children =
    Array.to_list ctx.nbr_labels
    |> List.combine (Array.to_list ctx.nbr_parents)
    |> List.fold_left (fun acc (p, l) -> if p = ctx.id then acc + l.size else acc) 1
  in
  let size_ok =
    ctx.label.size = sum_children
    && ctx.label.size >= 1
    && ctx.label.size <= ctx.n
    && (match Pls.parent_label ctx with
       | `Root -> ctx.label.root_id = ctx.id && ctx.label.size = ctx.n
       | `Label _ -> true
       | `Broken -> false)
  in
  same_root && size_ok

let accepts_tree g t =
  Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover t) verify
