(** Heavy-path decomposition of a rooted tree.

    The child of [v] with the largest subtree (ties broken by smallest
    id) is {e heavy}; all other children are {e light}. Maximal chains of
    heavy edges form {e heavy paths}. Every root-to-leaf path crosses at
    most ⌈log₂ n⌉ light edges, which is what bounds the NCA-label length
    in [Nca_labels] (Section V / Alstrup et al.). *)

type t

val compute : Repro_graph.Tree.t -> t

(** [heavy_child t v] is [v]'s heavy child, or [-1] for a leaf. *)
val heavy_child : t -> int -> int

(** [head t v] is the topmost node of [v]'s heavy path. *)
val head : t -> int -> int

(** [pos t v] is [v]'s position (depth) along its heavy path;
    [pos (head v) = 0]. *)
val pos : t -> int -> int

(** [light_depth t v] — number of light edges on the root→v path. *)
val light_depth : t -> int -> int

(** Maximum {!light_depth}; ≤ ⌈log₂ n⌉. *)
val max_light_depth : t -> int
