(** The classic distance-based proof-labeling scheme for spanning trees
    (Section II-C): the label of [v] is the pair [(ID(root), d)] where [d]
    is [v]'s hop distance to the root in the tree. Every node checks that
    all its graph neighbors agree on the root identity and that its
    parent's distance is one less than its own. O(log n)-bit labels. *)

type label = { root_id : int; dist : int }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit

(** Bits for a label in an [n]-node network. *)
val size_bits : int -> label -> int

(** [prover t] labels every node of the spanning tree [t]. *)
val prover : Repro_graph.Tree.t -> label array

(** The local verifier. *)
val verify : label Pls.ctx -> bool

(** [accepts g t] — completeness shortcut: prover's labels on [t] are
    accepted everywhere. *)
val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
