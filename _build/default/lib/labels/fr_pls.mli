(** Proof-labeling scheme for FR-trees (Lemma 8.1), with O(log n)-bit
    labels.

    There is no poly-time PLS for arbitrary degree-(OPT+1) spanning trees
    unless NP = co-NP (Proposition 8.1), which is exactly why the paper —
    and this library — stabilizes on the {e FR-tree} subclass
    (Definition 8.1) instead.

    The label of [v] certifies the witness marking:

    - [k]: the claimed tree degree, agreed with all neighbors; every node
      checks its own tree degree is ≤ [k];
    - [wdist]: hop distance in the tree to a witness node of degree [k]
      ([wdist = 0 ⇒ deg(v) = k], else a tree neighbor is one hop
      closer) — certifying that [k] really is the maximum degree;
    - [good]: the marking bit; degree-[k] nodes must be bad, degree
      ≤ [k−2] nodes must be good;
    - [frag]/[fdist] (good nodes only): the fragment id — the id of a
      node inside the fragment, reached by the decreasing [fdist] chain —
      constant across good tree neighbors, hence constant per fragment
      and distinct across fragments;
    - property (3): any graph edge between good nodes with different
      [frag] triggers rejection. *)

type label = { k : int; wdist : int; good : bool; frag : int; fdist : int }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int

(** [prover g t marking] builds labels from a witness marking (as
    produced by [Repro_graph.Min_degree]). *)
val prover :
  Repro_graph.Graph.t -> Repro_graph.Tree.t -> Repro_graph.Min_degree.marking -> label array

val verify : label Pls.ctx -> bool

(** [accepts_tree g t] — runs {!prover} on the marking found by
    [Min_degree.find_marking]; [None] (not an FR-tree) yields [false]. *)
val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
