module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module Min_degree = Repro_graph.Min_degree
module Space = Repro_runtime.Space

type label = { k : int; wdist : int; good : bool; frag : int; fdist : int }

let equal (a : label) b = a = b

let pp ppf l =
  Format.fprintf ppf "(k=%d,w=%d,%s,frag=%d,fd=%d)" l.k l.wdist
    (if l.good then "good" else "bad")
    l.frag l.fdist

let size_bits n _ = Space.dist_bits n + Space.dist_bits n + 1 + Space.id_bits n + Space.dist_bits n

(* BFS over tree edges from a source set, optionally restricted to a node
   predicate (for intra-fragment distances). *)
let tree_bfs t ~keep sources =
  let n = Tree.n t in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s q
      end)
    sources;
  let visit u v =
    if keep v && dist.(v) = max_int then begin
      dist.(v) <- dist.(u) + 1;
      Queue.add v q
    end
  in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let p = Tree.parent t u in
    if p <> -1 then visit u p;
    Array.iter (visit u) (Tree.children t u)
  done;
  dist

let prover g t (marking : Min_degree.marking) =
  let n = Graph.n g in
  let k = Tree.max_degree t in
  let witnesses = List.filter (fun v -> Tree.degree t v = k) (List.init n Fun.id) in
  let wdist = tree_bfs t ~keep:(fun _ -> true) witnesses in
  (* Intra-fragment distances to the node whose id names the fragment. *)
  let fdist = Array.make n 0 in
  let anchors =
    List.filter (fun v -> marking.good.(v) && marking.fragment.(v) = v) (List.init n Fun.id)
  in
  let fd =
    tree_bfs t
      ~keep:(fun v -> marking.good.(v))
      anchors
  in
  for v = 0 to n - 1 do
    if marking.good.(v) then fdist.(v) <- fd.(v)
  done;
  Array.init n (fun v ->
      {
        k;
        wdist = wdist.(v);
        good = marking.good.(v);
        frag = (if marking.good.(v) then marking.fragment.(v) else -1);
        fdist = fdist.(v);
      })

let verify (ctx : label Pls.ctx) =
  let l = ctx.label in
  (* Tree degree from local pointers: children + parent. *)
  let deg =
    Array.fold_left (fun acc p -> if p = ctx.id then acc + 1 else acc) 0 ctx.nbr_parents
    + if ctx.parent = -1 then 0 else 1
  in
  let tree_nbr i = ctx.nbr_parents.(i) = ctx.id || ctx.parent = ctx.nbr_ids.(i) in
  let parent_exists = ctx.parent = -1 || Array.exists (fun u -> u = ctx.parent) ctx.nbr_ids in
  let same_k = Array.for_all (fun nl -> nl.k = l.k) ctx.nbr_labels in
  let deg_ok = deg <= l.k in
  let wdist_ok =
    l.wdist >= 0 && l.wdist <= ctx.n
    &&
    if l.wdist = 0 then deg = l.k
    else
      Array.exists
        (fun i -> tree_nbr i && ctx.nbr_labels.(i).wdist = l.wdist - 1)
        (Array.init (Array.length ctx.nbr_ids) Fun.id)
  in
  let marking_ok = (not (deg = l.k && l.good)) && not (deg <= l.k - 2 && not l.good) in
  let frag_ok =
    if not l.good then true
    else begin
      l.frag >= 0 && l.frag < ctx.n
      && l.fdist >= 0 && l.fdist <= ctx.n
      && (if l.fdist = 0 then l.frag = ctx.id
          else
            Array.exists
              (fun i ->
                tree_nbr i
                && ctx.nbr_labels.(i).good
                && ctx.nbr_labels.(i).frag = l.frag
                && ctx.nbr_labels.(i).fdist = l.fdist - 1)
              (Array.init (Array.length ctx.nbr_ids) Fun.id))
      (* No graph edge joins good nodes of different fragments
         (Definition 8.1 (3)); in particular good tree neighbors share my
         fragment. *)
      && Array.for_all (fun nl -> (not nl.good) || nl.frag = l.frag) ctx.nbr_labels
    end
  in
  parent_exists && same_k && deg_ok && wdist_ok && marking_ok && frag_ok

let accepts_tree g t =
  match Min_degree.find_marking g t with
  | None -> false
  | Some marking ->
      Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover g t marking) verify
