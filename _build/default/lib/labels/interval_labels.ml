module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = { pre : int; post : int }

let equal a b = a.pre = b.pre && a.post = b.post
let pp ppf l = Format.fprintf ppf "[%d,%d]" l.pre l.post
let size_bits n _ = 2 * Space.dist_bits n

(* Convert (pre, post) orders into nested intervals: a node's interval is
   [pre(v), maxpre(subtree of v)]; we encode it directly from the DFS
   numbers of [Tree]: by construction pre/post come from the same DFS, so
   ancestry is pre(a) <= pre(v) && post(v) <= post(a). *)
let prover t = Array.init (Tree.n t) (fun v -> { pre = Tree.pre t v; post = Tree.post t v })

let is_ancestor a v = a.pre <= v.pre && v.post <= a.post
let is_common_ancestor x ~u ~v = is_ancestor x u && is_ancestor x v

let is_nca x ~u ~v ~children =
  is_common_ancestor x ~u ~v
  && not (List.exists (fun c -> is_common_ancestor c ~u ~v) children)

let on_cycle x ~u ~v ~children =
  let au = is_ancestor x u and av = is_ancestor x v in
  (au && not av) || (av && not au) || (au && av && is_nca x ~u ~v ~children)

let verify (ctx : label Pls.ctx) =
  let l = ctx.label in
  let in_range i = i >= 0 && i < ctx.n in
  in_range l.pre && in_range l.post
  &&
  (* Children nest strictly inside; non-child neighbors are not our
     descendants unless we are theirs (partial local check; the full
     soundness for cycle detection is delegated to the distance PLS that
     always accompanies these labels in the protocol stack). *)
  let ok = ref true in
  Array.iteri
    (fun i p ->
      let cl = ctx.nbr_labels.(i) in
      if p = ctx.id then begin
        if not (is_ancestor l cl) then ok := false;
        if cl.pre <= l.pre then ok := false
      end)
    ctx.nbr_parents;
  (match Pls.parent_label ctx with
  | `Root -> if l.pre <> 0 || l.post <> ctx.n - 1 then ok := false
  | `Label pl -> if not (is_ancestor pl l) then ok := false
  | `Broken -> ok := false);
  !ok

let accepts_tree g t =
  Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover t) verify
