module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = { size : int; seq : Nca_labels.label }

let equal a b = a.size = b.size && Nca_labels.equal a.seq b.seq
let pp ppf l = Format.fprintf ppf "(s=%d,%a)" l.size Nca_labels.pp l.seq
let size_bits n l = Space.dist_bits n + Nca_labels.size_bits n l.seq

let prover t =
  let seqs = Nca_labels.prover t in
  Array.init (Tree.n t) (fun v -> { size = Tree.size t v; seq = seqs.(v) })

let verify (ctx : label Pls.ctx) =
  (* Collect children (id, label) pairs. *)
  let children = ref [] in
  Array.iteri
    (fun i p ->
      if p = ctx.id then children := (ctx.nbr_ids.(i), ctx.nbr_labels.(i)) :: !children)
    ctx.nbr_parents;
  let children = !children in
  let size_ok =
    ctx.label.size = List.fold_left (fun acc (_, l) -> acc + l.size) 1 children
    && ctx.label.size >= 1
    && ctx.label.size <= ctx.n
  in
  let root_ok =
    match Pls.parent_label ctx with
    | `Root ->
        Nca_labels.equal ctx.label.seq (Nca_labels.of_root ctx.id)
        && ctx.label.size = ctx.n
    | `Label _ -> true
    | `Broken -> false
  in
  let heavy =
    List.fold_left
      (fun best (c, l) ->
        match best with
        | None -> Some (c, l)
        | Some (bc, bl) ->
            if l.size > bl.size || (l.size = bl.size && c < bc) then Some (c, l) else best)
      None children
  in
  let children_ok =
    List.for_all
      (fun (c, l) ->
        let expected =
          match heavy with
          | Some (hc, _) when hc = c -> Nca_labels.extend_heavy ctx.label.seq
          | _ -> Nca_labels.extend_light ctx.label.seq ~child:c
        in
        Nca_labels.equal l.seq expected)
      children
  in
  size_ok && root_ok && children_ok

let accepts_tree g t =
  Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover t) verify
