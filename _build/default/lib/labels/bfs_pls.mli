(** The BFS-tree proof-labeling scheme of the Section III example.

    The label of [v] is its hop distance to the root (together with the
    root's id, exactly as in the distance scheme); the BFS facet is the
    extra check that {e no graph neighbor} is more than one hop closer:
    [d(u) ≥ d(v) − 1] for every [{u,v} ∈ E]. A spanning tree whose
    distance labels pass both facets is a BFS tree, and a rejection at
    [v] caused by a closer neighbor [u] identifies the improving swap
    [e = {u,v}], [f = {v, p(v)}] of the paper's example. *)

type label = { root_id : int; dist : int }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int

(** [prover t] — labels for a tree (distances {e in the tree}); they are
    accepted iff the tree is a BFS tree of the graph. *)
val prover : Repro_graph.Tree.t -> label array

val verify : label Pls.ctx -> bool

(** [accepts_tree g t] — completeness/soundness shortcut: true iff [t]'s
    own distances satisfy both facets, i.e. iff [t] is a BFS tree. *)
val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool

(** [violation ctx] — when rejecting, the improving swap the paper's
    example prescribes: [Some (closer_neighbor, parent)]. *)
val violation : label Pls.ctx -> (int * int) option
