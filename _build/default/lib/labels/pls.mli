(** Proof-labeling schemes (Section II-C of the paper).

    A scheme is a prover/verifier pair [(p, v)]: the prover assigns a
    label to every node of a legal configuration; the verifier runs at
    each node and may inspect only that node's registers and its
    neighbors' registers. If the configuration is legal, the prover's
    labels make every node accept; if not, {e every} label assignment
    leaves at least one rejecting node.

    The verified configuration here is always a parent-pointer structure
    plus per-node labels. A {!ctx} packages what one node may legally
    read: its identity, incident edges, its own parent pointer and label,
    and its neighbors' parent pointers and labels. *)

type 'label ctx = {
  id : int;
  n : int;
  nbr_ids : int array;  (** increasing *)
  nbr_weights : int array;
  parent : int;  (** own parent pointer; [-1] encodes ⊥ *)
  label : 'label;
  nbr_parents : int array;  (** aligned with [nbr_ids] *)
  nbr_labels : 'label array;
}

(** [ctx_of g ~parent ~labels v] builds node [v]'s context from a global
    configuration (test/driver side only). *)
val ctx_of : Repro_graph.Graph.t -> parent:int array -> labels:'label array -> int -> 'label ctx

(** [rejections g ~parent ~labels verify] runs the verifier at every node
    and returns the rejecting node ids. *)
val rejections :
  Repro_graph.Graph.t ->
  parent:int array ->
  labels:'label array ->
  ('label ctx -> bool) ->
  int list

(** [accepts g ~parent ~labels verify] — no node rejects. *)
val accepts :
  Repro_graph.Graph.t ->
  parent:int array ->
  labels:'label array ->
  ('label ctx -> bool) ->
  bool

(** [children ctx] — ids of neighbors whose parent pointer names this
    node (this node's children in the encoded structure). *)
val children : 'label ctx -> int list

(** [parent_label ctx] is [Some (label of parent)] when the parent pointer
    names an actual neighbor, [None] when the pointer is [-1]; a parent
    pointer naming a non-neighbor is a detectable inconsistency reported
    as [`Broken]. *)
val parent_label : 'label ctx -> [ `Root | `Label of 'label | `Broken ]
