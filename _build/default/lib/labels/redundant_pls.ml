module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = { root_id : int; dist : int option; size : int option }

let equal a b = a.root_id = b.root_id && a.dist = b.dist && a.size = b.size

let pp ppf l =
  let po ppf = function
    | Some x -> Format.pp_print_int ppf x
    | None -> Format.pp_print_string ppf "⊥"
  in
  Format.fprintf ppf "(r=%d,d=%a,s=%a)" l.root_id po l.dist po l.size

let size_bits n l =
  Space.id_bits n
  + Space.opt (fun _ -> Space.dist_bits n) l.dist
  + Space.opt (fun _ -> Space.dist_bits n) l.size

let prover t =
  Array.init (Tree.n t) (fun v ->
      { root_id = Tree.root t; dist = Some (Tree.depth t v); size = Some (Tree.size t v) })

let well_formed l = not (l.dist = None && l.size = None)

let prune_dist l =
  if l.dist = None then invalid_arg "Redundant_pls.prune_dist: would be (⊥,⊥)"
  else { l with size = None }

let prune_size l =
  if l.size = None then invalid_arg "Redundant_pls.prune_size: would be (⊥,⊥)"
  else { l with dist = None }

(* "size" check of Lemma 4.1: s(v) = 1 + Σ s(child), every child
   contributing a present size entry (a child pruned to (d,⊥) under a
   size-checking parent is a C1 violation, also caught at the child). *)
let check_size (ctx : label Pls.ctx) s =
  let ok = ref true in
  let sum = ref 1 in
  Array.iteri
    (fun i p ->
      if p = ctx.id then
        match ctx.nbr_labels.(i).size with
        | Some sc -> sum := !sum + sc
        | None -> ok := false)
    ctx.nbr_parents;
  !ok && s = !sum && s >= 1 && s <= ctx.n

let check_dist (ctx : label Pls.ctx) d =
  match Pls.parent_label ctx with
  | `Root -> assert false (* callers dispatch on parent presence first *)
  | `Broken -> false
  | `Label pl -> ( match pl.dist with Some d' -> d = d' + 1 && d <= ctx.n | None -> false)

let verify (ctx : label Pls.ctx) =
  well_formed ctx.label
  && Array.for_all (fun l -> l.root_id = ctx.label.root_id) ctx.nbr_labels
  &&
  match Pls.parent_label ctx with
  | `Broken -> false
  | `Root -> (
      ctx.label.root_id = ctx.id
      && (match ctx.label.dist with Some d -> d = 0 | None -> true)
      && match ctx.label.size with Some s -> check_size ctx s | None -> true)
  | `Label pl -> (
      match ((ctx.label.dist, ctx.label.size), (pl.dist, pl.size)) with
      | (Some d, Some s), (Some _, Some _) -> check_dist ctx d && check_size ctx s
      | (Some d, Some _), (Some _, None) -> check_dist ctx d
      | (Some _, Some s), (None, Some _) -> check_size ctx s
      | (Some _, None), (Some _, Some _) -> false
      | (Some d, None), (Some _, None) -> check_dist ctx d
      | (Some _, None), (None, Some _) -> false
      | (None, Some s), (Some _, Some _) -> check_size ctx s
      | (None, Some _), (Some _, None) -> false
      | (None, Some s), (None, Some _) -> check_size ctx s
      | (None, None), _ -> false (* ill-formed self *)
      | _, (None, None) -> false (* ill-formed parent *))

let valid_pruning t labels =
  let n = Tree.n t in
  Array.length labels = n
  &&
  let ok = ref true in
  for v = 0 to n - 1 do
    let l = labels.(v) in
    if not (well_formed l) then ok := false;
    if l.root_id <> Tree.root t then ok := false;
    (match l.dist with Some d when d <> Tree.depth t v -> ok := false | _ -> ());
    (match l.size with Some s when s <> Tree.size t v -> ok := false | _ -> ());
    if v <> Tree.root t then begin
      let p = Tree.parent t v in
      (* C1: (d,⊥) forces parent (d',⊥). *)
      if l.dist <> None && l.size = None && labels.(p).size <> None then ok := false;
      (* C2: (⊥,s) forces parent to keep its size entry. *)
      if l.dist = None && l.size <> None && labels.(p).size = None then ok := false
    end
  done;
  !ok

let accepts_tree g t =
  Pls.accepts g ~parent:(Tree.parents t) ~labels:(prover t) verify
