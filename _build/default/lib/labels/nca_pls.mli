(** A proof-labeling scheme {e for the NCA labeling itself} (Lemma 5.1).

    The paper notes this is "probably the first occurrence of a
    proof-labeling scheme for an informative-labeling scheme": to use NCA
    labels inside a silent algorithm, the labels must be locally
    certifiable. The certificate of [v] is its subtree size plus its NCA
    sequence. Verification at [v]:

    - [size(v) = 1 + Σ size(child)] (size facet, certifying that the
      heavy-child determination below is sound);
    - the root's sequence is [[(root, 0)]];
    - for each child [c]: if [c] is the heavy child — the child of
      maximum certified size, ties to the smallest id — then [seq(c)]
      extends [seq(v)] along the heavy path ([extend_heavy]); otherwise
      [seq(c) = extend_light seq(v) ~child:c].

    Completeness and soundness (given a correct spanning tree, itself
    certified by the distance/redundant PLS of the stack) are exercised
    in the test suite and experiment E4. *)

type label = { size : int; seq : Nca_labels.label }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int
val prover : Repro_graph.Tree.t -> label array
val verify : label Pls.ctx -> bool
val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
