module Tree = Repro_graph.Tree

type t = { heavy : int array; head : int array; pos : int array; light_depth : int array }

let compute tree =
  let n = Tree.n tree in
  let heavy = Array.make n (-1) in
  for v = 0 to n - 1 do
    let best = ref (-1) in
    Array.iter
      (fun c -> if !best = -1 || Tree.size tree c > Tree.size tree !best then best := c)
      (Tree.children tree v);
    heavy.(v) <- !best
  done;
  let head = Array.make n (-1) and pos = Array.make n 0 and light_depth = Array.make n 0 in
  (* Process nodes in increasing depth: parents before children. DFS pre
     order has that property. *)
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> compare (Tree.pre tree a) (Tree.pre tree b)) order;
  Array.iter
    (fun v ->
      if v = Tree.root tree then begin
        head.(v) <- v;
        pos.(v) <- 0;
        light_depth.(v) <- 0
      end
      else begin
        let p = Tree.parent tree v in
        if heavy.(p) = v then begin
          head.(v) <- head.(p);
          pos.(v) <- pos.(p) + 1;
          light_depth.(v) <- light_depth.(p)
        end
        else begin
          head.(v) <- v;
          pos.(v) <- 0;
          light_depth.(v) <- light_depth.(p) + 1
        end
      end)
    order;
  { heavy; head; pos; light_depth }

let heavy_child t v = t.heavy.(v)
let head t v = t.head.(v)
let pos t v = t.pos.(v)
let light_depth t v = t.light_depth.(v)
let max_light_depth t = Array.fold_left max 0 t.light_depth
