(** The size-based proof-labeling scheme for spanning trees (Section IV):
    the label of [v] is [(ID(root), s)] where [s] is the number of nodes
    in [v]'s subtree. Every node checks root agreement and
    [s = 1 + Σ s(child)]. Together with the distance scheme it forms the
    paper's {e redundant} labeling, whose malleability (Lemma 4.1) powers
    loop-free edge switching. *)

type label = { root_id : int; size : int }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int
val prover : Repro_graph.Tree.t -> label array
val verify : label Pls.ctx -> bool
val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
