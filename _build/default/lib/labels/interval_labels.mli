(** DFS-interval ancestry labels.

    The label of [v] is its DFS [(pre, post)] interval in the tree:
    [a] is an ancestor of [v] iff [pre(a) ≤ pre(v)] and
    [post(v) ≤ post(a)]. Θ(log n) bits.

    These labels support the fundamental-cycle membership test of
    Section V: for a non-tree edge [e = {u,v}], node [x] lies on the
    cycle of [T + e] iff [x] is an ancestor of exactly one of [u, v], or
    [x] is their nearest common ancestor. The "is the NCA" part is
    decidable locally: [x] is the NCA iff [x] is a common ancestor and no
    child of [x] is. Used by the switch protocol to decide pruning roles;
    the full NCA-label machinery of [Nca_labels] additionally {e computes}
    the NCA's label from two labels, as in the paper. *)

type label = { pre : int; post : int }

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val size_bits : int -> label -> int
val prover : Repro_graph.Tree.t -> label array

(** [is_ancestor a v] — label-only reflexive ancestry test. *)
val is_ancestor : label -> label -> bool

(** [is_common_ancestor x ~u ~v]. *)
val is_common_ancestor : label -> u:label -> v:label -> bool

(** [is_nca x ~u ~v ~children] where [children] are the labels of [x]'s
    children: [x] is the nearest common ancestor of [u] and [v]. *)
val is_nca : label -> u:label -> v:label -> children:label list -> bool

(** [on_cycle x ~u ~v ~children] — [x] lies on the fundamental cycle of
    the non-tree edge [{u,v}] (i.e. on the tree path between them). *)
val on_cycle : label -> u:label -> v:label -> children:label list -> bool

(** A well-formedness verifier making the labeling a PLS: each node
    checks its interval nests correctly in its parent's and is disjoint
    from its siblings' (we check the parent/child facet locally). *)
val verify : label Pls.ctx -> bool

val accepts_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
