lib/runtime/view.mli:
