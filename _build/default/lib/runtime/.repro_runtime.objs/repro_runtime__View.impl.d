lib/runtime/view.ml: Array
