lib/runtime/fault.ml: Array List Random
