lib/runtime/scheduler.mli: Format
