lib/runtime/protocol.mli: Format Random Repro_graph View
