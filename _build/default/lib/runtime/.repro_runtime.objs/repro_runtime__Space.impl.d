lib/runtime/space.ml:
