lib/runtime/protocol.ml: Format Random Repro_graph View
