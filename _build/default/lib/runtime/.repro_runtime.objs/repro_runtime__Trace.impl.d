lib/runtime/trace.ml: Array Format Hashtbl List Option Queue
