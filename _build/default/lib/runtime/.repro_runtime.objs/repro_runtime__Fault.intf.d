lib/runtime/fault.mli: Random Repro_graph
