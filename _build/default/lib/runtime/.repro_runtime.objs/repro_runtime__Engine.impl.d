lib/runtime/engine.ml: Array Hashtbl List Protocol Random Repro_graph Scheduler View
