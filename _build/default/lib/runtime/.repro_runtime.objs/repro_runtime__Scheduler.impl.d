lib/runtime/scheduler.ml: Format List Printf
