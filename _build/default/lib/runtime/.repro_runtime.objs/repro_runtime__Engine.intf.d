lib/runtime/engine.mli: Protocol Random Repro_graph Scheduler View
