lib/runtime/space.mli:
