let log2_ceil k =
  let rec go acc p = if p >= k then acc else go (acc + 1) (p * 2) in
  if k <= 1 then 0 else go 0 1

let bits_for_range k = max 1 (log2_ceil (max 2 k))
let id_bits n = bits_for_range (n + 2) (* ids 0..n-1 plus ⊥ *)
let dist_bits n = bits_for_range (n + 1)
let weight_bits n = 2 * id_bits n
let edge_bits n = (2 * id_bits n) + weight_bits n
let opt cost = function None -> 1 | Some x -> 1 + cost x
