let corrupt_nodes rng ~random_state g states nodes =
  let states = Array.copy states in
  List.iter (fun v -> states.(v) <- random_state rng g v) nodes;
  states

let corrupt rng ~random_state g states ~k =
  let n = Array.length states in
  let k = min k n in
  (* Reservoir-free selection: shuffle indices, take the first k. *)
  let idx = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  corrupt_nodes rng ~random_state g states (Array.to_list (Array.sub idx 0 k))
