(** Transient-fault injection (Section II-A: a fault corrupts the register
    of one or more nodes; identities and edge weights are incorruptible).

    Used by experiment E8 and the failure-injection tests: starting from a
    legal silent configuration, corrupt [k] registers and measure the
    rounds until the system is silent (and legal) again. *)

(** [corrupt rng ~random_state g states ~k] returns a copy of [states]
    with [k] distinct random nodes' registers replaced by arbitrary
    values. [k] is clamped to [n]. *)
val corrupt :
  Random.State.t ->
  random_state:(Random.State.t -> Repro_graph.Graph.t -> int -> 'state) ->
  Repro_graph.Graph.t ->
  'state array ->
  k:int ->
  'state array

(** [corrupt_nodes rng ~random_state g states nodes] corrupts exactly the
    given nodes. *)
val corrupt_nodes :
  Random.State.t ->
  random_state:(Random.State.t -> Repro_graph.Graph.t -> int -> 'state) ->
  Repro_graph.Graph.t ->
  'state array ->
  int list ->
  'state array
