(** Register-size accounting helpers.

    Protocols report their space usage in bits, the complexity measure the
    paper optimizes. These helpers count the information-theoretic cost of
    common register fields: an identity in [{1..n^c}] costs [O(log n)]
    bits, a distance in [{0..n}] costs [⌈log₂(n+1)⌉] bits, etc. *)

(** [bits_for_range k] is the number of bits to store a value in [0..k-1]
    (at least 1). *)
val bits_for_range : int -> int

(** [id_bits n] — bits for a node identity (or [⊥]) in an [n]-node
    network. *)
val id_bits : int -> int

(** [dist_bits n] — bits for a hop distance in [0..n]. *)
val dist_bits : int -> int

(** [weight_bits] — bits for an edge weight; the paper assumes weights fit
    in O(log n) bits, and our generators use weights ≤ m ≤ n², so we
    charge [2·id_bits n]. *)
val weight_bits : int -> int

(** [edge_bits n] — bits for an edge descriptor [(id, id, weight)], the
    paper's [f_i(x) = (ID(a), ID(b), w(a,b))]. *)
val edge_bits : int -> int

(** [opt cost v] — [cost x] plus one presence bit. *)
val opt : ('a -> int) -> 'a option -> int

(** [log2_ceil k] = ⌈log₂ k⌉ (0 for k ≤ 1). *)
val log2_ceil : int -> int
