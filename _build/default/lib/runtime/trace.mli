(** Structured execution traces.

    A trace records, per register write, the acting node, the step and
    round indices, and a short rendering of the new register — enough to
    replay or audit an execution without storing full configurations.
    Used by the debug drivers and the examples; the engine feeds it
    through its [on_step]/[on_round] callbacks. *)

type event = { step : int; round : int; node : int; state : string }

type t

(** [create ?capacity ()] — a trace keeping the last [capacity] events
    (default 1000; older events are dropped). *)
val create : ?capacity:int -> unit -> t

(** Hook pair to plug into [Engine.run]: [on_step t pp] records writes;
    [on_round t] advances the round counter. *)
val on_step : t -> (Format.formatter -> 's -> unit) -> int -> 's array -> unit

val on_round : t -> int -> 's array -> unit

(** Events in chronological order. *)
val events : t -> event list

(** Number of events recorded (including dropped ones). *)
val total : t -> int

(** [pp] renders the retained window, one event per line. *)
val pp : Format.formatter -> t -> unit

(** [activity t] — per-node write counts over the retained window. *)
val activity : t -> (int * int) list
