type event = { step : int; round : int; node : int; state : string }

type t = {
  capacity : int;
  events : event Queue.t;
  mutable steps : int;
  mutable round : int;
}

let create ?(capacity = 1000) () =
  { capacity; events = Queue.create (); steps = 0; round = 0 }

let on_step t pp node states =
  t.steps <- t.steps + 1;
  if Queue.length t.events >= t.capacity then ignore (Queue.pop t.events);
  Queue.add
    {
      step = t.steps;
      round = t.round;
      node;
      state = Format.asprintf "%a" pp states.(node);
    }
    t.events

let on_round t round _states = t.round <- round
let events t = List.of_seq (Queue.to_seq t.events)
let total t = t.steps

let pp ppf t =
  Queue.iter
    (fun e -> Format.fprintf ppf "step %6d round %5d node %3d: %s@." e.step e.round e.node e.state)
    t.events

let activity t =
  let tbl = Hashtbl.create 16 in
  Queue.iter
    (fun e -> Hashtbl.replace tbl e.node (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.node)))
    t.events;
  Hashtbl.fold (fun node count acc -> (node, count) :: acc) tbl [] |> List.sort compare
