(** Compact non-certified MST baseline.

    A distributed Borůvka with O(log n)-bit registers that stores only
    the {e current} fragment level (id + anchored distance + selected
    minimum outgoing edge), not the full execution trace: fragments merge
    across their minimum outgoing {e graph} edge until one fragment
    spans the network.

    From the designated initial configuration this constructs the MST and
    falls silent in poly(n) rounds — with registers exponentially smaller
    than the Ω(log² n) bits required of {e silent self-stabilizing} MST
    [Korman–Kutten, cited as [50]]. The catch, and the point of the
    experiment (E9): with O(log n) bits the final configuration cannot be
    locally verified, so from adversarial initial configurations the
    protocol can fall silent on a {e non}-MST spanning tree (e.g. any
    spanning tree pre-loaded as "already one fragment" is a silent
    illegal fixpoint). The paper's compact references [17], [51] repair
    this by perpetual re-verification — giving up silence; the paper
    itself instead pays O(log² n) bits for the Borůvka-trace certificate
    and keeps silence. [failure_rate] quantifies the catch. *)

type state = {
  parent : int;  (** parent within the fragment tree; -1 at the fragment root *)
  frag : int;  (** fragment id (claimed min id) *)
  fdist : int;  (** hop distance to the fragment root *)
  moe : (Repro_graph.Graph.Edge.t * int) option;
      (** fragment's minimum outgoing edge + hops to its inside endpoint *)
}

module P : Repro_runtime.Protocol.S with type state = state

module Engine : module type of Repro_runtime.Engine.Make (P)

(** [failure_rate rng g ~trials] — fraction of runs from adversarial
    initial configurations that end silent but {e illegal} (the
    self-stabilization failure the certificates exist to prevent). *)
val failure_rate : Random.State.t -> Repro_graph.Graph.t -> trials:int -> float
