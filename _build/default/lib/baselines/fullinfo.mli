(** The full-information baseline: silent and time-efficient, but with
    enormous registers — the generic approach of [15] (result (2) in the
    paper's related work: every task has a silent self-stabilizing
    solution in O(n) rounds with O(n²)-bit registers).

    Every node convergecasts its subtree's complete topology (node ids
    with their incident weighted edges) toward the elected root; once the
    root sees all [n] nodes it {e locally} computes the desired tree for
    the task (MST by Kruskal, FR-tree by Fürer–Raghavachari — the model
    allows arbitrary local computation) and floods the full parent plan
    back down; every node then re-parents as instructed. Silent and
    correct from any initial configuration, converging in O(n) waves —
    but registers hold Θ(m log n) bits, and the re-parenting is {e not}
    loop-free (transient non-tree configurations occur), in contrast with
    Section IV's switching.

    Experiment E9 runs the two instances ({!Mst_instance},
    {!Mdst_instance}) against the paper's builders to exhibit the space
    separation that motivates Problem 1.1. *)

module type TASK = sig
  val name : string

  (** Compute the target tree (rooted at 0) from the full graph. *)
  val desired : Repro_graph.Graph.t -> Repro_graph.Tree.t

  (** Task-level legality of a stable tree. *)
  val is_legal_tree : Repro_graph.Graph.t -> Repro_graph.Tree.t -> bool
end

type info = (int * (int * int) list) list
(** Collected topology: (node, incident (neighbor, weight) list),
    sorted by node id. *)

type state = { st : Repro_core.St_layer.t; info : info; plan : int array }

module type INSTANCE = sig
  module P : Repro_runtime.Protocol.S with type state = state

  module Engine : sig
    include module type of Repro_runtime.Engine.Make (P)
  end

  val tree_of : Repro_graph.Graph.t -> state array -> Repro_graph.Tree.t option
end

module Make (_ : TASK) : INSTANCE

(** Kruskal at the root. *)
module Mst_instance : INSTANCE

(** Fürer–Raghavachari at the root. *)
module Mdst_instance : INSTANCE
