lib/baselines/adhoc_bfs.mli: Repro_runtime
