lib/baselines/adhoc_bfs.ml: Array Format Random Repro_graph Repro_runtime
