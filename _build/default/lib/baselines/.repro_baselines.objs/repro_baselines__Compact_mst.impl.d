lib/baselines/compact_mst.ml: Array Format Random Repro_graph Repro_runtime
