lib/baselines/compact_mst.mli: Random Repro_graph Repro_runtime
