lib/baselines/fullinfo.ml: Array Format Hashtbl List Random Repro_core Repro_graph Repro_runtime
