lib/baselines/fullinfo.mli: Repro_core Repro_graph Repro_runtime
