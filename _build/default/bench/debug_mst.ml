(* Debug driver for the MST builder: trace what fires per round, and on
   termination diff the stored fragment labels against the true Borůvka
   trace of the stabilized tree.

     dune exec bench/debug_mst.exe -- <i> [adv] [sched]            *)

open Repro_graph
open Repro_runtime
open Repro_labels
open Repro_core
module ME = Mst_builder.Engine
module FL = Fragment_labels

let () =
  let i = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 0 in
  let adv = Array.length Sys.argv > 2 && Sys.argv.(2) = "adv" in
  let sched =
    if Array.length Sys.argv > 3 then Option.get (Scheduler.by_name Sys.argv.(3))
    else Scheduler.Synchronous
  in
  let st = Random.State.make [| 0xC04E; i |] in
  let g = Generators.random_connected st ~n:(8 + (i mod 8)) ~m:(14 + (2 * i)) in
  Format.printf "graph %d: n=%d m=%d adv=%b sched=%a@." i (Graph.n g) (Graph.m g) adv
    Scheduler.pp sched;
  let st2 = Random.State.make [| 0xC04E; 130 + i |] in
  let init = if adv then ME.adversarial st2 g else ME.initial g in
  let trace = Array.length Sys.argv > 4 && Sys.argv.(4) = "trace" in
  let ring = Queue.create () in
  let on_step v states =
    if trace then begin
      if Queue.length ring >= 60 then ignore (Queue.pop ring);
      Queue.add (Format.asprintf "step@%d: %a" v Mst_builder.P.pp_state states.(v)) ring
    end
  in
  let max_steps = if trace then 5_000 else 10_000_000 in
  let last_report = ref (-1000) in
  let r =
    ME.run g sched st2 ~max_rounds:5000 ~max_steps ~init ~on_step
      ~on_round:(fun round states ->
        if round - !last_report >= 200 || round < 15 then begin
          last_report := round;
          let enabled = ME.enabled g states in
          let tree = Mst_builder.tree_of g states in
          let swc =
            Array.fold_left (fun a s -> a + if s.Mst_builder.sw <> None then 1 else 0) 0 states
          in
          Format.printf "round %5d: enabled=%2d tree=%b sw=%d weight=%s@." round
            (List.length enabled)
            (tree <> None) swc
            (match tree with Some t -> string_of_int (Tree.weight t g) | None -> "-")
        end)
  in
  Format.printf "silent=%b legal=%b rounds=%d steps=%d@." r.ME.silent r.ME.legal r.ME.rounds
    r.ME.steps;
  if trace then Queue.iter (fun line -> Format.printf "%s@." line) ring;
  (match Mst_builder.tree_of g r.ME.states with
  | Some t ->
      Format.printf "weight=%d kruskal=%d@." (Tree.weight t g) (Mst.mst_weight g);
      let truth = FL.prover g t in
      Array.iteri
        (fun v (s : Mst_builder.state) ->
          if not (FL.equal s.Mst_builder.frags truth.(v)) then
            Format.printf "node %d frags differ:@.stored: %a@.truth:  %a@." v FL.pp
              s.Mst_builder.frags FL.pp truth.(v))
        r.ME.states;
      (* True violations on the stabilized tree. *)
      (match FL.violation_level g truth with
      | Some lvl -> Format.printf "TRUE violation at level %d (tree is not MST)@." lvl
      | None -> Format.printf "no true violation: tree IS the MST@.")
  | None -> Format.printf "no tree at the end@.");
  if not r.ME.silent then
    List.iter
      (fun v ->
        let view = ME.view g r.ME.states v in
        match Mst_builder.P.step view with
        | Some s' ->
            Format.printf "node %d: %a@.   ->   %a@." v Mst_builder.P.pp_state
              r.ME.states.(v) Mst_builder.P.pp_state s'
        | None -> ())
      (ME.enabled g r.ME.states)
  else begin
    (* Silent: dump aggregate fields to explain why no candidate fires. *)
    Array.iteri
      (fun v (s : Mst_builder.state) ->
        let pp_cand ppf (c : Mst_builder.cand) =
          Format.fprintf ppf "lvl=%d e=%a" c.Mst_builder.lvl Graph.Edge.pp c.Mst_builder.e
        in
        let base =
          (* recompute the candidate base by hand *)
          let view = ME.view g r.ME.states v in
          ignore view;
          ""
        in
        ignore base;
        Format.printf "node %2d: k=%d cand=%s cut=%s sw=%s@." v
          (Array.length s.Mst_builder.frags)
          (match s.Mst_builder.cand_agg with
          | Some a ->
              Format.asprintf "%a@@%d" pp_cand a.Repro_core.Aggregate.value
                a.Repro_core.Aggregate.hops
          | None -> "-")
          (match s.Mst_builder.cut_agg with
          | Some a ->
              Format.asprintf "%a/f=%a child=%d@@%d" pp_cand
                a.Repro_core.Aggregate.value.Mst_builder.cand Graph.Edge.pp
                a.Repro_core.Aggregate.value.Mst_builder.f
                a.Repro_core.Aggregate.value.Mst_builder.f_child
                a.Repro_core.Aggregate.hops
          | None -> "-")
          (match s.Mst_builder.sw with
          | Some sess -> Printf.sprintf "next=%d" sess.Mst_builder.next
          | None -> "-"))
      r.ME.states
  end
