bench/debug_daemon.mli:
