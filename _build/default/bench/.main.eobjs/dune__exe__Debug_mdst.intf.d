bench/debug_mdst.mli:
