bench/main.mli:
