bench/debug_daemon.ml: Array Bfs_builder Format Generators Mst_builder Option Queue Random Repro_core Repro_graph Repro_runtime Scheduler Sys
