bench/debug_mst.mli:
