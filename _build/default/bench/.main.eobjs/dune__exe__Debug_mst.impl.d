bench/debug_mst.ml: Array Format Fragment_labels Generators Graph List Mst Mst_builder Option Printf Queue Random Repro_core Repro_graph Repro_labels Repro_runtime Scheduler Sys Tree
