bench/debug_mdst.ml: Array Format Generators Graph List Mdst_builder Min_degree Random Repro_core Repro_graph Repro_runtime Scheduler Sys Tree
