(* Debug driver for the MDST builder. *)

open Repro_graph
open Repro_runtime
open Repro_core
module DE = Mdst_builder.Engine

let () =
  let i = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 0 in
  let adv = Array.length Sys.argv > 2 && Sys.argv.(2) = "adv" in
  let st = Random.State.make [| 0xC04E; i |] in
  let g = Generators.random_connected st ~n:(8 + (i mod 8)) ~m:(14 + (2 * i)) in
  Format.printf "graph %d: n=%d m=%d@." i (Graph.n g) (Graph.m g);
  let st2 = Random.State.make [| 0xC04E; 160 + i |] in
  let init = if adv then DE.adversarial st2 g else DE.initial g in
  let r = DE.run g Scheduler.Synchronous st2 ~max_rounds:5000 ~init in
  Format.printf "silent=%b legal=%b rounds=%d steps=%d@." r.DE.silent r.DE.legal r.DE.rounds
    r.DE.steps;
  match Mdst_builder.tree_of g r.DE.states with
  | None -> Format.printf "no tree@."
  | Some t ->
      let d = Tree.max_degree t in
      Format.printf "tree degree=%d  FR says %d  exact %s@." d
        (let ft, _, _ = Min_degree.furer_raghavachari g ~root:0 in
         Tree.max_degree ft)
        (if Graph.n g <= 12 then string_of_int (Min_degree.exact g) else "?");
      Format.printf "find_marking: %s@."
        (match Min_degree.find_marking g t with Some _ -> "FR tree" | None -> "NOT FR");
      (* Check the register marking against Definition 8.1 directly. *)
      let m = Mdst_builder.marking_of r.DE.states in
      Format.printf "register marking valid FR witness: %b@." (Min_degree.is_fr_tree g t m);
      Array.iteri
        (fun v (s : Mdst_builder.state) ->
          Format.printf
            "node %2d: deg=%d(real %d) %s frag=%d fdist=%d mark=%s dmax=%s hub=%s imp=%s veto=%s sw=%s@."
            v s.Mdst_builder.deg (Tree.degree t v)
            (if s.Mdst_builder.good then "good" else "bad ")
            s.Mdst_builder.frag s.Mdst_builder.fdist
            (match s.Mdst_builder.mark with
            | Some mk ->
                Format.asprintf "%a r%d" Graph.Edge.pp mk.Mdst_builder.witness
                  mk.Mdst_builder.rank
            | None -> "-")
            (match s.Mdst_builder.dmax with
            | Some a -> string_of_int a.Repro_core.Aggregate.value
            | None -> "-")
            (match s.Mdst_builder.hub_agg with
            | Some a -> string_of_int a.Repro_core.Aggregate.value
            | None -> "-")
            (match s.Mdst_builder.imp_agg with
            | Some a -> Format.asprintf "z%d" a.Repro_core.Aggregate.value.Mdst_builder.z
            | None -> "-")
            (match s.Mdst_builder.veto_agg with
            | Some a ->
                Format.asprintf "z%d%s" a.Repro_core.Aggregate.value.Mdst_builder.vc.Mdst_builder.z
                  (if a.Repro_core.Aggregate.value.Mdst_builder.hard then "!" else "~")
            | None -> "-")
            (match s.Mdst_builder.sw with Some _ -> "sw" | None -> "-"))
        r.DE.states;
      (* What would the fresh closure mark? *)
      (match Min_degree.find_marking g t with
      | None ->
          Format.printf "fresh closure would mark a max-degree node good: improvement missed@."
      | Some _ -> ());
      if not r.DE.silent then
        List.iter
          (fun v ->
            match Mdst_builder.P.step (DE.view g r.DE.states v) with
            | Some s' ->
                Format.printf "enabled %d:@.  %a@.  -> %a@." v Mdst_builder.P.pp_state
                  r.DE.states.(v) Mdst_builder.P.pp_state s'
            | None -> ())
          (DE.enabled g r.DE.states)
