(* Probe: MST under the min-id central daemon (the E7 livelock). *)
open Repro_graph
open Repro_runtime
open Repro_core
module ME = Mst_builder.Engine

let () =
  let sched =
    match Sys.argv with
    | [| _; s |] -> Option.get (Scheduler.by_name s)
    | _ -> Scheduler.Central Scheduler.Min_id
  in
  let rng = Random.State.make [| 0xE57; 700 |] in
  let g = Generators.gnp rng ~n:16 ~p:0.3 in
  let rng = Random.State.make [| 0xE57; 701 |] in
  (* consume the BFS run's rng draws like e7 does *)
  let _ = Bfs_builder.Engine.run g sched rng ~init:(Bfs_builder.Engine.adversarial rng g) in
  let ring = Queue.create () in
  let r =
    ME.run g sched rng ~max_steps:300_000 ~init:(ME.initial g)
      ~on_step:(fun v states ->
        if Queue.length ring >= 16 then ignore (Queue.pop ring);
        Queue.add (Format.asprintf "step@%d: %a" v Mst_builder.P.pp_state states.(v)) ring)
  in
  Format.printf "silent=%b legal=%b rounds=%d steps=%d@." r.ME.silent r.ME.legal r.ME.rounds
    r.ME.steps;
  Queue.iter print_endline ring
