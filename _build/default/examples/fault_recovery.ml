(* Transient-fault recovery — the defining scenario of self-stabilization
   (Section II-A): corrupt some registers of a silent legal configuration
   and watch the system converge back to the MST and fall silent again,
   while the proof labels pinpoint the damage.

     dune exec examples/fault_recovery.exe *)

open Repro_graph
open Repro_runtime
open Repro_core
module ME = Mst_builder.Engine

let () =
  let rng = Random.State.make [| 7 |] in
  let g = Generators.gnp rng ~n:20 ~p:0.25 in
  Format.printf "network: n=%d m=%d@." (Graph.n g) (Graph.m g);

  (* Phase 1: construct and fall silent. *)
  let r = ME.run g Scheduler.Synchronous rng ~init:(ME.initial g) in
  Format.printf "construction: silent=%b legal=%b rounds=%d@." r.ME.silent r.ME.legal
    r.ME.rounds;

  (* Phase 2: corrupt k registers, for growing k. *)
  let stable = r.ME.states in
  List.iter
    (fun k ->
      let corrupted =
        Fault.corrupt rng ~random_state:Mst_builder.P.random_state g stable ~k
      in
      let enabled = ME.enabled g corrupted in
      let r2 = ME.run g (Scheduler.Central Scheduler.Random_daemon) rng ~init:corrupted in
      Format.printf
        "k=%2d faults: %2d nodes initially enabled -> recovered in %5d rounds (silent=%b, MST again=%b)@."
        k (List.length enabled) r2.ME.rounds r2.ME.silent r2.ME.legal)
    [ 1; 2; 4; 8; 16; 20 ];

  (* Phase 3: total corruption = fresh start from arbitrary states, under
     the unfair LIFO daemon. A deterministic starving daemon may freeze
     the switch-token holders in a stall that accumulates no rounds (the
     unfair-daemon caveat in DESIGN.md); any fair continuation completes. *)
  let chaos = ME.adversarial rng g in
  let r3 =
    ME.run ~max_steps:200_000 g (Scheduler.Central Scheduler.Lifo_adversary) rng
      ~init:chaos
  in
  Format.printf "from arbitrary states under the unfair daemon: silent=%b MST=%b rounds=%d@."
    r3.ME.silent r3.ME.legal r3.ME.rounds;
  if not r3.ME.legal then begin
    let r4 = ME.run g (Scheduler.Central Scheduler.Round_robin) rng ~init:r3.ME.states in
    Format.printf
      "  (the daemon starved the token holders in a zero-round stall; a fair@.";
    Format.printf "   continuation completes: silent=%b MST=%b after %d more rounds)@."
      r4.ME.silent r4.ME.legal r4.ME.rounds
  end
