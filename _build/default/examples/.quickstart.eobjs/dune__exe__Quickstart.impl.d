examples/quickstart.ml: Format Generators Graph Mst Mst_builder Random Repro_core Repro_graph Repro_runtime Scheduler Tree
