examples/trace_inspection.ml: Format Generators Graph List Mst_builder Random Repro_core Repro_graph Repro_runtime Scheduler Trace
