examples/quickstart.mli:
