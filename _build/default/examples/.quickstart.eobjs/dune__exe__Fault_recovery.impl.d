examples/fault_recovery.ml: Fault Format Generators Graph List Mst_builder Random Repro_core Repro_graph Repro_runtime Scheduler
