examples/sensor_network.ml: Format Generators Graph Hashtbl List Mdst_builder Min_degree Option Random Repro_core Repro_graph Repro_runtime Scheduler Tree
