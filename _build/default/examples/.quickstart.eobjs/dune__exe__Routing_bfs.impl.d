examples/routing_bfs.ml: Array Bfs_builder Format Generators Graph Random Repro_baselines Repro_core Repro_graph Repro_runtime Scheduler St_layer Traversal
