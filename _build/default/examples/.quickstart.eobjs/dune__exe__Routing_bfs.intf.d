examples/routing_bfs.mli:
