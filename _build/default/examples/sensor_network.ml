(* Sensor network example — the motivation the paper gives for MDST
   (802.15.4 MAC trees, the IRIS project): on a random geometric radio
   network, a low-degree spanning tree balances the beacon-slot load.

   The silent self-stabilizing FR-tree builder (Algorithm 4) brings the
   tree degree within one of the optimum, with O(log n)-bit registers.

     dune exec examples/sensor_network.exe *)

open Repro_graph
open Repro_runtime
open Repro_core
module DE = Mdst_builder.Engine

let degree_histogram t =
  let h = Hashtbl.create 8 in
  for v = 0 to Tree.n t - 1 do
    let d = Tree.degree t v in
    Hashtbl.replace h d (1 + Option.value ~default:0 (Hashtbl.find_opt h d))
  done;
  List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) h [])

let () =
  let rng = Random.State.make [| 2026 |] in
  (* 30 sensors scattered on the unit square; radio range 0.35. *)
  let g = Generators.geometric rng ~n:30 ~radius:0.35 in
  Format.printf "radio network: n=%d m=%d max node degree=%d@." (Graph.n g) (Graph.m g)
    (Graph.max_degree g);

  (* A naive BFS tree concentrates load on hubs. *)
  let bfs = Tree.of_graph_bfs g ~root:0 in
  Format.printf "BFS tree degree: %d@." (Tree.max_degree bfs);

  (* The sequential Fürer-Raghavachari reference. *)
  let fr, _, swaps = Min_degree.furer_raghavachari g ~root:0 in
  Format.printf "sequential FR degree: %d (%d improvements)@." (Tree.max_degree fr) swaps;

  (* The silent self-stabilizing builder. *)
  let r = DE.run g (Scheduler.Central Scheduler.Random_daemon) rng ~init:(DE.initial g) in
  Format.printf "self-stabilizing run: silent=%b rounds=%d max bits=%d@." r.DE.silent
    r.DE.rounds r.DE.max_bits;
  match Mdst_builder.tree_of g r.DE.states with
  | Some t ->
      Format.printf "stabilized FR-tree degree: %d (admits an FR witness: %b)@."
        (Tree.max_degree t)
        (Min_degree.find_marking g t <> None);
      Format.printf "beacon load histogram (degree -> sensors):@.";
      List.iter (fun (d, c) -> Format.printf "  %d -> %d@." d c) (degree_histogram t)
  | None -> Format.printf "ERROR: no tree@."
