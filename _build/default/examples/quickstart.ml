(* Quickstart: build a minimum-weight spanning tree with the silent
   self-stabilizing MST builder (the paper's Algorithm 2), starting from
   the boot configuration, and check it against Kruskal.

     dune exec examples/quickstart.exe *)

open Repro_graph
open Repro_runtime
open Repro_core
module ME = Mst_builder.Engine

let () =
  let rng = Random.State.make [| 42 |] in
  (* A random connected weighted network with 24 nodes. *)
  let g = Generators.random_connected rng ~n:24 ~m:48 in
  Format.printf "network: n=%d m=%d@." (Graph.n g) (Graph.m g);

  (* Run the protocol under the unfair (LIFO-adversarial) central daemon
     until it falls silent. *)
  let r =
    ME.run g (Scheduler.Central Scheduler.Lifo_adversary) rng ~init:(ME.initial g)
  in
  Format.printf "silent: %b  rounds: %d  steps: %d  max register: %d bits@."
    r.ME.silent r.ME.rounds r.ME.steps r.ME.max_bits;

  (* The stable tree must be the unique MST. *)
  (match Mst_builder.tree_of g r.ME.states with
  | Some t ->
      Format.printf "tree weight: %d   kruskal weight: %d   is MST: %b@."
        (Tree.weight t g) (Mst.mst_weight g) (Mst.is_mst g t);
      Format.printf "tree (parent pointers):@.%a@." Tree.pp t
  | None -> Format.printf "ERROR: registers do not encode a tree@.");

  (* Silence is stable: re-running does nothing. *)
  let r2 = ME.run g Scheduler.Synchronous rng ~init:r.ME.states in
  Format.printf "re-run steps (expect 0): %d@." r2.ME.steps
