(* Execution-trace inspection: run the MST builder with the step-level
   monitor attached, then show which nodes did the work and the tail of
   the event log — the raw material for auditing rule activations.

     dune exec examples/trace_inspection.exe *)

open Repro_graph
open Repro_runtime
open Repro_core
module ME = Mst_builder.Engine

let () =
  let rng = Random.State.make [| 17 |] in
  let g = Generators.gnp rng ~n:16 ~p:0.3 in
  Format.printf "network: n=%d m=%d@." (Graph.n g) (Graph.m g);

  let trace = Trace.create ~capacity:2000 () in
  let r =
    ME.run g (Scheduler.Central Scheduler.Round_robin) rng ~init:(ME.initial g)
      ~on_step:(Trace.on_step trace Mst_builder.P.pp_state)
      ~on_round:(Trace.on_round trace)
  in
  Format.printf "silent=%b legal=%b rounds=%d steps=%d (trace recorded %d writes)@."
    r.ME.silent r.ME.legal r.ME.rounds r.ME.steps (Trace.total trace);

  Format.printf "@.write counts per node (retained window):@.";
  List.iter (fun (node, count) -> Format.printf "  node %2d: %4d writes@." node count)
    (Trace.activity trace);

  Format.printf "@.last 10 register writes:@.";
  let events = Trace.events trace in
  let tail =
    let len = List.length events in
    List.filteri (fun i _ -> i >= len - 10) events
  in
  List.iter
    (fun (e : Trace.event) ->
      Format.printf "  step %5d round %4d node %2d: %s@." e.Trace.step e.Trace.round
        e.Trace.node e.Trace.state)
    tail
