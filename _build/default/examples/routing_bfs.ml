(* Shortest-path routing — the Section III worked example: the PLS-guided
   BFS builder elects a root and stabilizes on a BFS tree; the resulting
   parent pointers are next-hop routes toward the root, and the distance
   labels are exactly the proof-labeling scheme certifying them.

     dune exec examples/routing_bfs.exe *)

open Repro_graph
open Repro_runtime
open Repro_core
module BE = Bfs_builder.Engine
module AE = Repro_baselines.Adhoc_bfs.Engine

let () =
  let rng = Random.State.make [| 99 |] in
  let g = Generators.torus rng ~rows:5 ~cols:5 in
  Format.printf "torus 5x5: n=%d m=%d diameter=%d@." (Graph.n g) (Graph.m g)
    (Traversal.diameter g);

  (* PLS-guided BFS (elects the min-id root). *)
  let r = BE.run g (Scheduler.Central Scheduler.Random_daemon) rng ~init:(BE.adversarial rng g) in
  Format.printf "PLS-guided BFS: silent=%b legal=%b rounds=%d bits=%d@." r.BE.silent
    r.BE.legal r.BE.rounds r.BE.max_bits;
  Format.printf "potential phi = %d (0 iff BFS tree)@." (Bfs_builder.potential g r.BE.states);

  (* Routing table: node -> next hop -> distance. *)
  Format.printf "routes to the root:@.";
  Array.iteri
    (fun v (s : St_layer.t) ->
      if v < 8 then
        Format.printf "  node %2d: next hop %2d, %d hops@." v s.St_layer.parent
          s.St_layer.dist)
    r.BE.states;

  (* Against the ad-hoc rooted baseline (root known in advance — an
     easier task, fewer bits). *)
  let a = AE.run g (Scheduler.Central Scheduler.Random_daemon) rng ~init:(AE.adversarial rng g) in
  Format.printf "ad-hoc rooted BFS baseline: silent=%b legal=%b rounds=%d bits=%d@."
    a.AE.silent a.AE.legal a.AE.rounds a.AE.max_bits
