(* Tests for repro_baselines: the ad-hoc rooted BFS, the compact
   uncertified Borůvka (and its self-stabilization failure mode — the
   point of experiment E9), and the full-information silent baseline. *)

open Repro_graph
open Repro_runtime
open Repro_baselines

let seed i = Random.State.make [| 0xBA5E; i |]

let sample_graph i =
  let st = seed i in
  Generators.random_connected st ~n:(8 + (i mod 8)) ~m:(14 + (2 * i))

(* ------------------------------------------------------------------ *)
(* Ad-hoc rooted BFS *)

module AE = Adhoc_bfs.Engine

let test_adhoc_bfs_converges () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (10 + i) in
      List.iter
        (fun sched ->
          let r = AE.run g sched st ~init:(AE.adversarial st g) in
          Alcotest.(check bool) "silent" true r.AE.silent;
          Alcotest.(check bool) "legal" true r.AE.legal)
        [ Scheduler.Synchronous; Scheduler.Central Scheduler.Random_daemon;
          Scheduler.Central Scheduler.Lifo_adversary ])
    [ 0; 1; 2; 3 ]

let test_adhoc_bfs_distances () =
  let st = seed 20 in
  let g = Generators.torus st ~rows:4 ~cols:4 in
  let r = AE.run g Scheduler.Synchronous st ~init:(AE.initial g) in
  let d = Traversal.bfs_distances g ~src:0 in
  Array.iteri
    (fun v (s : Adhoc_bfs.state) ->
      Alcotest.(check int) (Printf.sprintf "d(%d)" v) d.(v) s.Adhoc_bfs.dist)
    r.AE.states

let test_adhoc_bfs_fault_recovery () =
  let g = sample_graph 4 in
  let st = seed 21 in
  let r = AE.run g Scheduler.Synchronous st ~init:(AE.initial g) in
  let corrupted = Fault.corrupt st ~random_state:Adhoc_bfs.P.random_state g r.AE.states ~k:4 in
  let r2 = AE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:corrupted in
  Alcotest.(check bool) "recovers" true (r2.AE.silent && r2.AE.legal)

(* ------------------------------------------------------------------ *)
(* Compact uncertified Borůvka *)

module CE = Compact_mst.Engine

let test_compact_mst_from_clean () =
  (* From the boot configuration the merging is race-free enough to end
     on a silent spanning tree; on most instances it is the MST, but
     without certificates there is no guarantee — we assert the
     structure, not optimality. *)
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (30 + i) in
      let r = CE.run g Scheduler.Synchronous st ~init:(CE.initial g) in
      Alcotest.(check bool) "silent" true r.CE.silent;
      let parent = Array.map (fun (s : Compact_mst.state) -> s.Compact_mst.parent) r.CE.states in
      Alcotest.(check bool) "spanning tree" true (Tree.check_parents ~root:0 parent);
      let t = Tree.of_parents ~root:0 parent in
      Alcotest.(check bool) "weight >= MST" true (Tree.weight t g >= Mst.mst_weight g))
    [ 0; 1; 2; 3; 4; 5 ]

let test_compact_mst_small_bits () =
  let g = sample_graph 2 in
  let st = seed 40 in
  let r = CE.run g Scheduler.Synchronous st ~init:(CE.initial g) in
  (* O(log n) bits: far below the MST builder's O(log^2 n) certificate. *)
  Alcotest.(check bool) "compact registers" true (r.CE.max_bits < 100)

let test_compact_mst_failure_mode () =
  (* The headline: from adversarial configurations the protocol can fall
     silent on an illegal configuration. We only require that the
     failure is *observable* over a batch of trials (rate > 0) — the
     certificates of the paper exist precisely to rule this out. *)
  let st = seed 50 in
  let g = Generators.gnp st ~n:12 ~p:0.4 in
  let rate = Compact_mst.failure_rate st g ~trials:30 in
  Alcotest.(check bool) "silent-but-wrong occurs" true (rate > 0.0)

(* ------------------------------------------------------------------ *)
(* Full-information baseline *)

let test_fullinfo_mst () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (60 + i) in
      let module FE = Fullinfo.Mst_instance.Engine in
      let r = FE.run g Scheduler.Synchronous st ~init:(FE.initial g) in
      Alcotest.(check bool) "silent" true r.FE.silent;
      Alcotest.(check bool) "legal (MST)" true r.FE.legal)
    [ 0; 1; 2 ]

let test_fullinfo_mst_adversarial () =
  let g = sample_graph 1 in
  let st = seed 70 in
  let module FE = Fullinfo.Mst_instance.Engine in
  let r = FE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(FE.adversarial st g) in
  Alcotest.(check bool) "silent" true r.FE.silent;
  Alcotest.(check bool) "legal" true r.FE.legal

let test_fullinfo_mdst () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (80 + i) in
      let module FE = Fullinfo.Mdst_instance.Engine in
      let r = FE.run g Scheduler.Synchronous st ~init:(FE.initial g) in
      Alcotest.(check bool) "silent" true r.FE.silent;
      Alcotest.(check bool) "legal (FR tree)" true r.FE.legal)
    [ 0; 1; 2 ]

let test_fullinfo_registers_are_huge () =
  (* The space separation of E9: full-information registers hold the
     whole topology (Θ(m log n) bits) and outgrow the certificate-based
     ones as the network grows. *)
  let st = seed 90 in
  let g = Generators.random_connected st ~n:32 ~m:96 in
  let module FE = Fullinfo.Mst_instance.Engine in
  let rf = FE.run g Scheduler.Synchronous st ~init:(FE.initial g) in
  let module ME = Repro_core.Mst_builder.Engine in
  let rm = ME.run g Scheduler.Synchronous st ~init:(ME.initial g) in
  Alcotest.(check bool)
    (Printf.sprintf "fullinfo (%d bits) >> pls (%d bits)" rf.FE.max_bits rm.ME.max_bits)
    true
    (rf.FE.max_bits > 2 * rm.ME.max_bits)

let test_fullinfo_plan_follow () =
  (* After stabilization the tree is exactly the desired one. *)
  let g = sample_graph 5 in
  let st = seed 91 in
  let module FE = Fullinfo.Mst_instance.Engine in
  let r = FE.run g Scheduler.Synchronous st ~init:(FE.initial g) in
  match Fullinfo.Mst_instance.tree_of g r.FE.states with
  | Some t -> Alcotest.(check bool) "tree = MST" true (Mst.is_mst g t)
  | None -> Alcotest.fail "no tree"

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop name count gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 4 16 in
    let* extra = int_range 1 n in
    let* s = int_bound 1_000_000 in
    return (s, Generators.random_connected (Random.State.make [| s; 31 |]) ~n ~m:(n - 1 + extra)))

let prop_adhoc_self_stabilizes =
  prop "adhoc BFS self-stabilizes" 30 gen_graph (fun (s, g) ->
      let st = Random.State.make [| s; 32 |] in
      let r = AE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(AE.adversarial st g) in
      r.AE.silent && r.AE.legal)

let prop_compact_silent_tree_from_clean =
  prop "compact Borůvka reaches a silent spanning tree from boot" 30 gen_graph
    (fun (s, g) ->
      let st = Random.State.make [| s; 33 |] in
      let r = CE.run g Scheduler.Synchronous st ~init:(CE.initial g) in
      r.CE.silent
      &&
      let parent = Array.map (fun (x : Compact_mst.state) -> x.Compact_mst.parent) r.CE.states in
      Tree.check_parents ~root:0 parent)

let prop_fullinfo_mst_self_stabilizes =
  prop "fullinfo MST self-stabilizes" 15 gen_graph (fun (s, g) ->
      let st = Random.State.make [| s; 34 |] in
      let module FE = Fullinfo.Mst_instance.Engine in
      let r = FE.run g Scheduler.Synchronous st ~init:(FE.adversarial st g) in
      r.FE.silent && r.FE.legal)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_baselines"
    [
      ( "adhoc_bfs",
        [
          Alcotest.test_case "converges" `Quick test_adhoc_bfs_converges;
          Alcotest.test_case "distances" `Quick test_adhoc_bfs_distances;
          Alcotest.test_case "fault recovery" `Quick test_adhoc_bfs_fault_recovery;
        ] );
      ( "compact_mst",
        [
          Alcotest.test_case "silent tree from clean" `Quick test_compact_mst_from_clean;
          Alcotest.test_case "O(log n) bits" `Quick test_compact_mst_small_bits;
          Alcotest.test_case "silent-but-wrong from garbage" `Quick test_compact_mst_failure_mode;
        ] );
      ( "fullinfo",
        [
          Alcotest.test_case "mst" `Quick test_fullinfo_mst;
          Alcotest.test_case "mst adversarial" `Quick test_fullinfo_mst_adversarial;
          Alcotest.test_case "mdst" `Quick test_fullinfo_mdst;
          Alcotest.test_case "huge registers" `Quick test_fullinfo_registers_are_huge;
          Alcotest.test_case "plan followed" `Quick test_fullinfo_plan_follow;
        ] );
      ( "properties",
        [
          prop_adhoc_self_stabilizes;
          prop_compact_silent_tree_from_clean;
          prop_fullinfo_mst_self_stabilizes;
        ] );
    ]
