test/test_labels.mli:
