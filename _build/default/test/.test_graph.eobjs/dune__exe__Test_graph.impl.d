test/test_graph.ml: Alcotest Array Generators Graph List Min_degree Mst QCheck2 QCheck_alcotest QCheck_base_runner Random Repro_graph Traversal Tree Union_find
