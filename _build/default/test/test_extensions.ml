(* Extension tests: the loop-freedom invariant monitored step-by-step on
   live runs (the Section IV headline property, here checked on the whole
   composed protocol), the shortest-path-tree builder, and the FR-tree /
   near-MDST separation behind Proposition 8.1. *)

open Repro_graph
open Repro_runtime
open Repro_core

let seed i = Random.State.make [| 0xE77; i |]

(* ------------------------------------------------------------------ *)
(* Loop-freedom: once the registers encode a spanning tree, no single
   step may break it (the chain of local switches guarantees this; a
   violation would mean a transient cycle or disconnection). *)

let monitor_loop_freedom (type s) (module P : Protocol.S with type state = s)
    ~(parent_of : s -> int) g sched rng ~init =
  let module En = Engine.Make (P) in
  let was_tree = ref false in
  let breaks = ref 0 in
  let r =
    En.run g sched rng ~init
      ~on_step:(fun _v states ->
        let parent = Array.map parent_of states in
        let now = Tree.check_parents ~root:0 parent in
        if !was_tree && not now then incr breaks;
        was_tree := now)
  in
  (r.En.silent, r.En.legal, !breaks)

let test_mst_loop_free () =
  List.iter
    (fun i ->
      let st = seed i in
      let g = Generators.random_connected st ~n:(8 + i) ~m:(16 + (2 * i)) in
      let module En = Mst_builder.Engine in
      let silent, legal, breaks =
        monitor_loop_freedom
          (module Mst_builder.P)
          ~parent_of:(fun (s : Mst_builder.state) -> s.Mst_builder.st.St_layer.parent)
          g Scheduler.Synchronous st
          ~init:(En.initial g)
      in
      Alcotest.(check bool) "silent+legal" true (silent && legal);
      Alcotest.(check int) "no tree-breaking step" 0 breaks)
    [ 0; 1; 2; 3 ]

let test_mdst_loop_free () =
  List.iter
    (fun i ->
      let st = seed (10 + i) in
      let g = Generators.random_connected st ~n:(8 + i) ~m:(16 + (2 * i)) in
      let module En = Mdst_builder.Engine in
      let silent, legal, breaks =
        monitor_loop_freedom
          (module Mdst_builder.P)
          ~parent_of:(fun (s : Mdst_builder.state) -> s.Mdst_builder.st.St_layer.parent)
          g Scheduler.Synchronous st
          ~init:(En.initial g)
      in
      Alcotest.(check bool) "silent+legal" true (silent && legal);
      Alcotest.(check int) "no tree-breaking step" 0 breaks)
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* SPT builder *)

module SE = Spt_builder.Engine

let test_spt_converges () =
  List.iter
    (fun i ->
      let st = seed (20 + i) in
      let g = Generators.random_connected st ~n:(10 + i) ~m:(20 + (2 * i)) in
      List.iter
        (fun sched ->
          let r = SE.run g sched st ~init:(SE.adversarial st g) in
          Alcotest.(check bool) "silent" true r.SE.silent;
          Alcotest.(check bool) "SPT" true (Spt_builder.is_spt g r.SE.states))
        [ Scheduler.Synchronous; Scheduler.Central Scheduler.Random_daemon;
          Scheduler.Central Scheduler.Lifo_adversary ])
    [ 0; 1; 2; 3 ]

let test_spt_distances_match_dijkstra () =
  let st = seed 30 in
  let g = Generators.gnp st ~n:24 ~p:0.2 in
  let r = SE.run g Scheduler.Synchronous st ~init:(SE.initial g) in
  let d = Spt_builder.dijkstra g ~src:0 in
  Array.iteri
    (fun v (s : Spt_builder.state) ->
      Alcotest.(check int) (Printf.sprintf "wdist(%d)" v) d.(v) s.Spt_builder.wdist)
    r.SE.states;
  Alcotest.(check int) "potential zero" 0 (Spt_builder.potential g r.SE.states)

let test_spt_differs_from_bfs () =
  (* A weighted graph where the SPT differs from the BFS tree: direct
     heavy edge vs light two-hop path. *)
  let g = Graph.of_edges 3 [ (0, 2, 10); (0, 1, 1); (1, 2, 2) ] in
  let st = seed 31 in
  let r = SE.run g Scheduler.Synchronous st ~init:(SE.initial g) in
  Alcotest.(check bool) "silent" true r.SE.silent;
  Alcotest.(check int) "2 routes via 1" 1 r.SE.states.(2).Spt_builder.parent;
  Alcotest.(check int) "wdist(2) = 3" 3 r.SE.states.(2).Spt_builder.wdist

let test_spt_fault_recovery () =
  let st = seed 32 in
  let g = Generators.grid st ~rows:4 ~cols:4 in
  let r = SE.run g Scheduler.Synchronous st ~init:(SE.initial g) in
  let corrupted =
    Fault.corrupt st ~random_state:Spt_builder.P.random_state g r.SE.states ~k:5
  in
  let r2 = SE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:corrupted in
  Alcotest.(check bool) "recovers" true (r2.SE.silent && Spt_builder.is_spt g r2.SE.states)

let test_dijkstra_reference () =
  let g = Graph.of_edges 5 [ (0, 1, 4); (0, 2, 1); (2, 1, 2); (1, 3, 1); (2, 3, 5); (3, 4, 3) ] in
  let d = Spt_builder.dijkstra g ~src:0 in
  Alcotest.(check (array int)) "distances" [| 0; 3; 1; 4; 7 |] d

(* ------------------------------------------------------------------ *)
(* Proposition 8.1 context: FR-trees are a strict subclass of
   degree-(OPT+1) spanning trees — the star of K4 has degree OPT+1 = 3
   yet admits no FR witness marking (every leaf pair's edge marks the
   hub good), which is exactly why the paper certifies FR-trees instead
   of near-MDST. *)

let test_fr_strict_subclass () =
  let st = seed 40 in
  let g = Generators.complete st ~n:4 in
  let star = Tree.of_parents ~root:0 [| -1; 0; 0; 0 |] in
  Alcotest.(check int) "OPT of K4" 2 (Min_degree.exact g);
  Alcotest.(check int) "star degree = OPT+1" 3 (Tree.max_degree star);
  Alcotest.(check bool) "star is NOT an FR tree" true (Min_degree.find_marking g star = None);
  (* The FR algorithm's own output on the same graph IS an FR tree of no
     larger degree. *)
  let t, m, _ = Min_degree.furer_raghavachari g ~root:0 in
  Alcotest.(check bool) "FR output is FR" true (Min_degree.is_fr_tree g t m);
  Alcotest.(check bool) "FR degree <= 3" true (Tree.max_degree t <= 3)

(* ------------------------------------------------------------------ *)
(* BFS PLS (the Section III scheme as a standalone prover/verifier) *)

module Bp = Repro_labels.Bfs_pls
module Pls = Repro_labels.Pls

let test_bfs_pls_accepts_bfs_trees () =
  List.iter
    (fun i ->
      let st = seed (130 + i) in
      let g = Generators.random_connected st ~n:(10 + i) ~m:(22 + i) in
      let bfs = Tree.of_graph_bfs g ~root:0 in
      Alcotest.(check bool) "BFS tree accepted" true (Bp.accepts_tree g bfs))
    [ 0; 1; 2; 3 ]

let test_bfs_pls_rejects_deep_trees () =
  (* A path-shaped spanning tree of a ring with a chord is not BFS. *)
  let g = Graph.of_edges 5 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (3, 4, 4); (0, 4, 5) ] in
  let path = Tree.of_parents ~root:0 [| -1; 0; 1; 2; 3 |] in
  Alcotest.(check bool) "deep tree rejected" false (Bp.accepts_tree g path);
  (* and the rejection identifies the paper's swap at node 4: e={0,4},
     f={4,3}. *)
  let labels = Bp.prover path in
  let ctx = Pls.ctx_of g ~parent:(Tree.parents path) ~labels 4 in
  Alcotest.(check (option (pair int int))) "swap identified" (Some (0, 3)) (Bp.violation ctx)

let test_bfs_pls_sound_corruption () =
  let st = seed 140 in
  let g = Generators.gnp st ~n:12 ~p:0.4 in
  let bfs = Tree.of_graph_bfs g ~root:0 in
  let labels = Bp.prover bfs in
  labels.(3) <- { labels.(3) with Bp.dist = labels.(3).Bp.dist + 2 };
  Alcotest.(check bool) "corruption rejected" false
    (Pls.accepts g ~parent:(Tree.parents bfs) ~labels Bp.verify)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_writes () =
  let st = seed 120 in
  let g = Generators.ring st ~n:10 in
  let trace = Trace.create ~capacity:50 () in
  let module BE = Bfs_builder.Engine in
  let r =
    BE.run g Scheduler.Synchronous st ~init:(BE.adversarial st g)
      ~on_step:(Trace.on_step trace Bfs_builder.P.pp_state)
      ~on_round:(Trace.on_round trace)
  in
  Alcotest.(check int) "every write recorded" r.BE.steps (Trace.total trace);
  Alcotest.(check bool) "window bounded" true (List.length (Trace.events trace) <= 50);
  let total_activity = List.fold_left (fun a (_, c) -> a + c) 0 (Trace.activity trace) in
  Alcotest.(check int) "activity = window" (List.length (Trace.events trace)) total_activity;
  (* Events are chronological. *)
  let steps = List.map (fun (e : Trace.event) -> e.Trace.step) (Trace.events trace) in
  Alcotest.(check bool) "sorted" true (steps = List.sort compare steps)

(* ------------------------------------------------------------------ *)
(* Minimum-degree Steiner trees (the original Fürer–Raghavachari
   setting, [33]) *)

let test_steiner_metric_mst () =
  List.iter
    (fun i ->
      let st = seed (90 + i) in
      let g = Generators.random_connected st ~n:(12 + i) ~m:(24 + (2 * i)) in
      let terminals = [ 0; 3; 7; (Graph.n g - 1) ] in
      let s = Steiner.metric_mst g ~terminals in
      Alcotest.(check bool) "valid Steiner tree" true (Steiner.check g ~terminals s);
      let pruned = Steiner.prune ~terminals s in
      Alcotest.(check bool) "pruned still valid" true (Steiner.check g ~terminals pruned);
      Alcotest.(check bool) "pruned no smaller weight impossible" true
        (Steiner.weight pruned <= Steiner.weight s))
    [ 0; 1; 2; 3 ]

let test_steiner_single_terminal () =
  let st = seed 95 in
  let g = Generators.ring st ~n:6 in
  let s = Steiner.metric_mst g ~terminals:[ 4 ] in
  Alcotest.(check bool) "singleton" true (Steiner.check g ~terminals:[ 4 ] s);
  Alcotest.(check int) "no edges" 0 (List.length s.Steiner.edges);
  Alcotest.(check int) "degree 0" 0 (Steiner.degree s)

let test_steiner_min_degree () =
  List.iter
    (fun i ->
      let st = seed (100 + i) in
      let g = Generators.gnp st ~n:12 ~p:0.4 in
      let terminals = [ 0; 2; 5; 8; 11 ] in
      let base = Steiner.prune ~terminals (Steiner.metric_mst g ~terminals) in
      let improved, swaps = Steiner.min_degree_steiner g ~terminals in
      Alcotest.(check bool) "still valid" true (Steiner.check g ~terminals improved);
      Alcotest.(check bool) "degree no worse" true
        (Steiner.degree improved <= Steiner.degree base);
      Alcotest.(check bool) "swap count sane" true (swaps >= 0);
      (* Against the exact optimum over the same node set (small). The
         simplified local search (no nested sequences, no Steiner-point
         migration — see DESIGN.md) guarantees monotone improvement;
         empirically it lands within two of the node-set optimum. *)
      if List.length improved.Steiner.nodes <= 10 then begin
        let opt = Steiner.exact_degree g ~nodes:improved.Steiner.nodes in
        Alcotest.(check bool)
          (Printf.sprintf "near the node-set optimum (deg %d vs opt %d)"
             (Steiner.degree improved) opt)
          true
          (Steiner.degree improved <= opt + 2)
      end)
    [ 0; 1; 2; 3; 4 ]

let test_steiner_terminals_on_star () =
  (* Star: terminals = leaves; the Steiner tree must pass through the
     center. *)
  let st = seed 110 in
  let g = Generators.star st ~n:6 in
  let terminals = [ 1; 2; 3 ] in
  let s = Steiner.metric_mst g ~terminals in
  Alcotest.(check bool) "valid" true (Steiner.check g ~terminals s);
  Alcotest.(check bool) "center used" true (List.mem 0 s.Steiner.nodes)

(* ------------------------------------------------------------------ *)
(* Compressed NCA labels (the [6]-style O(log n)-bit encoding) *)

module Cn = Repro_labels.Compact_nca
module Nca = Repro_labels.Nca_labels

let test_compact_nca_matches_tree () =
  List.iter
    (fun i ->
      let st = seed (50 + i) in
      let g = Generators.random_connected st ~n:(10 + (3 * i)) ~m:(20 + (4 * i)) in
      let t = Tree.of_graph_bfs g ~root:0 in
      let labels = Cn.prover t in
      let n = Graph.n g in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let w = Tree.nca t u v in
          Alcotest.(check bool)
            (Printf.sprintf "nca %d %d = %d" u v w)
            true
            (Cn.equal (Cn.nca labels.(u) labels.(v)) labels.(w))
        done
      done)
    [ 0; 1; 2; 3 ]

let test_compact_nca_cycle_membership () =
  let st = seed 60 in
  let g = Generators.random_connected st ~n:14 ~m:28 in
  let t = Tree.of_graph_bfs g ~root:0 in
  let labels = Cn.prover t in
  Graph.iter_edges
    (fun e ->
      let u = e.Graph.Edge.u and v = e.Graph.Edge.v in
      if not (Tree.mem_edge t u v) then begin
        let cycle = Tree.fundamental_cycle t ~e:(u, v) in
        for x = 0 to Graph.n g - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "on_cycle %d {%d,%d}" x u v)
            (List.mem x cycle)
            (Cn.on_cycle ~x:labels.(x) ~u:labels.(u) ~v:labels.(v))
        done
      end)
    g

let test_compact_nca_is_compact () =
  (* The whole point: measured bits grow like c·log n, and beat the
     uncompressed pair encoding by a growing factor. *)
  let prev = ref 0 in
  List.iter
    (fun n ->
      let st = seed (70 + n) in
      let g = Generators.random_connected st ~n ~m:(2 * n) in
      let t = Tree.of_graph_bfs g ~root:0 in
      let compact = Cn.prover t in
      let raw = Nca.prover t in
      let cbits = Array.fold_left (fun a l -> max a (Cn.bits l)) 0 compact in
      let rbits = Array.fold_left (fun a l -> max a (Nca.size_bits n l)) 0 raw in
      let rec log2c k acc = if 1 lsl acc >= k then acc else log2c k (acc + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "compact O(log n) at n=%d (%d bits)" n cbits)
        true
        (cbits <= 14 * log2c n 0);
      if n >= 256 then
        Alcotest.(check bool) "beats the raw encoding" true (cbits < rbits);
      Alcotest.(check bool) "monotone-ish" true (cbits >= !prev / 4);
      prev := cbits)
    [ 32; 128; 512; 2048 ]

let test_compact_nca_resolve_roundtrip () =
  let st = seed 80 in
  let g = Generators.random_connected st ~n:12 ~m:24 in
  let t = Tree.of_graph_bfs g ~root:0 in
  let labels = Cn.prover t in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int) "resolve" v (Cn.resolve t labels.(v))
  done;
  (* Labels are pairwise distinct. *)
  for u = 0 to Graph.n g - 1 do
    for v = u + 1 to Graph.n g - 1 do
      Alcotest.(check bool) "distinct" false (Cn.equal labels.(u) labels.(v))
    done
  done

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop name count gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 4 16 in
    let* extra = int_range 1 n in
    let* s = int_bound 1_000_000 in
    return (s, Generators.random_connected (Random.State.make [| s; 41 |]) ~n ~m:(n - 1 + extra)))

let prop_spt_self_stabilizes =
  prop "SPT self-stabilizes" 30 gen_graph (fun (s, g) ->
      let st = Random.State.make [| s; 42 |] in
      let r = SE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(SE.adversarial st g) in
      r.SE.silent && Spt_builder.is_spt g r.SE.states)

let prop_steiner_valid =
  prop "Steiner pipeline always yields valid trees" 50
    QCheck2.Gen.(
      let* n = int_range 5 20 in
      let* extra = int_range 1 n in
      let* nt = int_range 2 (min 6 n) in
      let* s = int_bound 1_000_000 in
      return (s, n, extra, nt))
    (fun (s, n, extra, nt) ->
      let st = Random.State.make [| s; 51 |] in
      let g = Generators.random_connected st ~n ~m:(n - 1 + extra) in
      let terminals =
        List.sort_uniq compare (List.init nt (fun _ -> Random.State.int st n))
      in
      let base = Steiner.metric_mst g ~terminals in
      let pruned = Steiner.prune ~terminals base in
      let final, _ = Steiner.min_degree_steiner g ~terminals in
      Steiner.check g ~terminals base
      && Steiner.check g ~terminals pruned
      && Steiner.check g ~terminals final
      && Steiner.degree final <= max 1 (Steiner.degree pruned))

let prop_compact_nca_agrees =
  prop "compact and raw NCA labels agree" 50 gen_graph (fun (s, g) ->
      let t = Tree.of_graph_bfs g ~root:0 in
      let raw = Repro_labels.Nca_labels.prover t in
      let compact = Cn.prover t in
      let st = Random.State.make [| s; 52 |] in
      let n = Graph.n g in
      let ok = ref true in
      for _ = 0 to 40 do
        let u = Random.State.int st n and v = Random.State.int st n in
        let w = Tree.nca t u v in
        if not (Cn.equal (Cn.nca compact.(u) compact.(v)) compact.(w)) then ok := false;
        if
          not
            (Repro_labels.Nca_labels.equal
               (Repro_labels.Nca_labels.nca raw.(u) raw.(v))
               raw.(w))
        then ok := false
      done;
      !ok)

let prop_mst_loop_free =
  prop "MST runs never break an established tree" 10 gen_graph (fun (s, g) ->
      let st = Random.State.make [| s; 43 |] in
      let module En = Mst_builder.Engine in
      let _, legal, breaks =
        monitor_loop_freedom
          (module Mst_builder.P)
          ~parent_of:(fun (x : Mst_builder.state) -> x.Mst_builder.st.St_layer.parent)
          g Scheduler.Synchronous st
          ~init:(En.initial g)
      in
      legal && breaks = 0)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_extensions"
    [
      ( "loop_freedom",
        [
          Alcotest.test_case "MST" `Quick test_mst_loop_free;
          Alcotest.test_case "MDST" `Quick test_mdst_loop_free;
        ] );
      ( "spt_builder",
        [
          Alcotest.test_case "converges (all daemons)" `Quick test_spt_converges;
          Alcotest.test_case "distances = dijkstra" `Quick test_spt_distances_match_dijkstra;
          Alcotest.test_case "weighted != BFS" `Quick test_spt_differs_from_bfs;
          Alcotest.test_case "fault recovery" `Quick test_spt_fault_recovery;
          Alcotest.test_case "dijkstra reference" `Quick test_dijkstra_reference;
        ] );
      ( "fr_separation",
        [ Alcotest.test_case "FR strictly inside near-MDST" `Quick test_fr_strict_subclass ] );
      ( "bfs_pls",
        [
          Alcotest.test_case "accepts BFS trees" `Quick test_bfs_pls_accepts_bfs_trees;
          Alcotest.test_case "rejects deep trees" `Quick test_bfs_pls_rejects_deep_trees;
          Alcotest.test_case "sound under corruption" `Quick test_bfs_pls_sound_corruption;
        ] );
      ("trace", [ Alcotest.test_case "records writes" `Quick test_trace_records_writes ]);
      ( "steiner",
        [
          Alcotest.test_case "metric mst + prune" `Quick test_steiner_metric_mst;
          Alcotest.test_case "single terminal" `Quick test_steiner_single_terminal;
          Alcotest.test_case "min degree" `Quick test_steiner_min_degree;
          Alcotest.test_case "terminals on star" `Quick test_steiner_terminals_on_star;
        ] );
      ( "compact_nca",
        [
          Alcotest.test_case "matches tree nca" `Quick test_compact_nca_matches_tree;
          Alcotest.test_case "cycle membership" `Quick test_compact_nca_cycle_membership;
          Alcotest.test_case "O(log n) bits" `Quick test_compact_nca_is_compact;
          Alcotest.test_case "resolve / distinct" `Quick test_compact_nca_resolve_roundtrip;
        ] );
      ( "properties",
        [
          prop_spt_self_stabilizes; prop_steiner_valid; prop_compact_nca_agrees;
          prop_mst_loop_free;
        ] );
    ]
