(* Tests for repro_labels: every proof-labeling scheme's completeness
   (prover's labels accepted on legal configurations) and soundness
   (illegal configurations / corrupted labels rejected somewhere), the
   malleability of the redundant scheme (Lemma 4.1), the NCA labeling and
   its PLS (Lemma 5.1), the Borůvka-trace labels and MST PLS (Section VI,
   Figure 2), and the FR-tree PLS (Lemma 8.1). *)

open Repro_graph
open Repro_labels
module E = Graph.Edge

let seed i = Random.State.make [| 0x5EED; i |]

let sample_graph i =
  let st = seed i in
  Generators.random_connected st ~n:(8 + (i mod 10)) ~m:(16 + i)

let sample_tree g = Tree.of_graph_bfs g ~root:0

(* A parent encoding that is NOT a spanning tree: a 2-cycle between nodes
   a and b plus the rest pointing arbitrarily. *)
let broken_parents g =
  let n = Graph.n g in
  let t = sample_tree g in
  let p = Tree.parents t in
  (* Create a cycle: pick a non-root node b whose parent is a, and set
     a's parent to b. *)
  let b = if Tree.root t = 0 then 1 else 0 in
  let a = Tree.parent t b in
  if a = -1 then p (* can't happen: b is not the root *)
  else begin
    p.(a) <- b;
    ignore n;
    p
  end

(* ------------------------------------------------------------------ *)
(* Distance PLS *)

let test_distance_complete () =
  for i = 0 to 9 do
    let g = sample_graph i in
    Alcotest.(check bool) "accepts" true (Distance_pls.accepts_tree g (sample_tree g))
  done

let test_distance_sound_cycle () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let parent = broken_parents g in
    let labels = Distance_pls.prover t in
    Alcotest.(check bool) "rejects cycle" false
      (Pls.accepts g ~parent ~labels Distance_pls.verify)
  done

let test_distance_sound_corruption () =
  let g = sample_graph 3 in
  let t = sample_tree g in
  let parent = Tree.parents t in
  let labels = Distance_pls.prover t in
  (* Corrupt one non-root node's distance. *)
  let v = if Tree.root t = 2 then 3 else 2 in
  labels.(v) <- { labels.(v) with Distance_pls.dist = labels.(v).Distance_pls.dist + 5 };
  Alcotest.(check bool) "rejects bad dist" false
    (Pls.accepts g ~parent ~labels Distance_pls.verify);
  let labels = Distance_pls.prover t in
  labels.(v) <- { labels.(v) with Distance_pls.root_id = 999 };
  Alcotest.(check bool) "rejects bad root id" false
    (Pls.accepts g ~parent ~labels Distance_pls.verify)

(* ------------------------------------------------------------------ *)
(* Size PLS *)

let test_size_complete () =
  for i = 0 to 9 do
    let g = sample_graph i in
    Alcotest.(check bool) "accepts" true (Size_pls.accepts_tree g (sample_tree g))
  done

let test_size_sound () =
  let g = sample_graph 4 in
  let t = sample_tree g in
  let parent = Tree.parents t in
  let labels = Size_pls.prover t in
  let v = if Tree.root t = 1 then 2 else 1 in
  labels.(v) <- { labels.(v) with Size_pls.size = labels.(v).Size_pls.size + 1 };
  Alcotest.(check bool) "rejects bad size" false
    (Pls.accepts g ~parent ~labels Size_pls.verify);
  Alcotest.(check bool) "rejects cycle" false
    (Pls.accepts g ~parent:(broken_parents g) ~labels:(Size_pls.prover t) Size_pls.verify)

(* ------------------------------------------------------------------ *)
(* Redundant malleable PLS (Lemma 4.1) *)

let test_redundant_complete () =
  for i = 0 to 9 do
    let g = sample_graph i in
    Alcotest.(check bool) "accepts" true (Redundant_pls.accepts_tree g (sample_tree g))
  done

(* Lemma 4.1 (1): any C1/C2-respecting pruning is accepted everywhere. *)
let test_redundant_prunings_accepted () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let parent = Tree.parents t in
    let st = seed (100 + i) in
    (* Random pruning: pick a node w; prune dist of the whole root-to-w
       path to (d,⊥)?  No — (d,⊥) means size pruned. Build the switch
       shape: prune size along two root paths, prune dist in a subtree. *)
    let n = Graph.n g in
    let w1 = Random.State.int st n and w2 = Random.State.int st n in
    let v = Random.State.int st n in
    let labels = Redundant_pls.prover t in
    let prune_path w =
      List.iter
        (fun x -> labels.(x) <- Redundant_pls.prune_dist labels.(x))
        (Tree.path_to_root t w)
    in
    (* prune_dist keeps d, discards s -> (d,⊥): C1 wants ancestors pruned
       too, which path pruning provides. *)
    prune_path w1;
    prune_path w2;
    (* Subtree of v gets (⊥,s) — C2 wants parents to keep s; nodes on the
       pruned root paths inside the subtree would break C2, so only prune
       subtree nodes that are not on those paths; also never produce
       (⊥,⊥). *)
    let on_path x = List.mem x (Tree.path_to_root t w1) || List.mem x (Tree.path_to_root t w2) in
    for x = 0 to n - 1 do
      if Tree.is_ancestor t v x && (not (on_path x)) && x <> Tree.root t
         && not (on_path (Tree.parent t x))
      then
        if labels.(x).Redundant_pls.size <> None then
          labels.(x) <- Redundant_pls.prune_size labels.(x)
    done;
    if Redundant_pls.valid_pruning t labels then
      Alcotest.(check bool) "pruning accepted" true
        (Pls.accepts g ~parent ~labels Redundant_pls.verify)
  done

let test_redundant_rejects_nontree () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let parent = broken_parents g in
    (* Even with pruned labels, a non-tree must be rejected (Lemma 4.1 (2)):
       try several prunings. *)
    let full = Redundant_pls.prover t in
    Alcotest.(check bool) "rejects full" false
      (Pls.accepts g ~parent ~labels:full Redundant_pls.verify);
    let all_dist =
      Array.map (fun l -> { l with Redundant_pls.size = None }) (Redundant_pls.prover t)
    in
    Alcotest.(check bool) "rejects (d,⊥) everywhere" false
      (Pls.accepts g ~parent ~labels:all_dist Redundant_pls.verify);
    let all_size =
      Array.map (fun l -> { l with Redundant_pls.dist = None }) (Redundant_pls.prover t)
    in
    Alcotest.(check bool) "rejects (⊥,s) everywhere" false
      (Pls.accepts g ~parent ~labels:all_size Redundant_pls.verify)
  done

let test_redundant_c1_violation_rejected () =
  let g = sample_graph 5 in
  let t = sample_tree g in
  let parent = Tree.parents t in
  let labels = Redundant_pls.prover t in
  (* Prune a single non-root node to (d,⊥) while its parent keeps (d,s):
     the Lemma 4.1 table row (d,⊥) × column (d',s') says "no". *)
  let v =
    let rec find x = if x <> Tree.root t && Tree.parent t x <> Tree.root t then x else find (x + 1) in
    find 0
  in
  labels.(v) <- Redundant_pls.prune_dist labels.(v);
  Alcotest.(check bool) "C1 violation rejected" false
    (Pls.accepts g ~parent ~labels Redundant_pls.verify)

let test_redundant_ill_formed_rejected () =
  let g = sample_graph 6 in
  let t = sample_tree g in
  let parent = Tree.parents t in
  let labels = Redundant_pls.prover t in
  labels.(1) <- { labels.(1) with Redundant_pls.dist = None; size = None };
  Alcotest.(check bool) "(⊥,⊥) rejected" false
    (Pls.accepts g ~parent ~labels Redundant_pls.verify)

(* ------------------------------------------------------------------ *)
(* Interval labels *)

let test_interval_ancestry () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let labels = Interval_labels.prover t in
    let n = Graph.n g in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "anc %d %d" u v)
          (Tree.is_ancestor t u v)
          (Interval_labels.is_ancestor labels.(u) labels.(v))
      done
    done
  done

let test_interval_cycle_membership () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let labels = Interval_labels.prover t in
    Graph.iter_edges
      (fun e ->
        if not (Tree.mem_edge t e.E.u e.E.v) then begin
          let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
          for x = 0 to Graph.n g - 1 do
            let children = Array.to_list (Array.map (fun c -> labels.(c)) (Tree.children t x)) in
            Alcotest.(check bool)
              (Printf.sprintf "on_cycle %d {%d,%d}" x e.E.u e.E.v)
              (List.mem x cycle)
              (Interval_labels.on_cycle labels.(x) ~u:labels.(e.E.u) ~v:labels.(e.E.v)
                 ~children)
          done
        end)
      g
  done

let test_interval_pls () =
  let g = sample_graph 7 in
  let t = sample_tree g in
  Alcotest.(check bool) "accepts" true (Interval_labels.accepts_tree g t);
  let labels = Interval_labels.prover t in
  labels.(1) <- { Interval_labels.pre = 0; post = Graph.n g - 1 };
  Alcotest.(check bool) "rejects stolen root interval" false
    (Pls.accepts g ~parent:(Tree.parents t) ~labels Interval_labels.verify)

(* ------------------------------------------------------------------ *)
(* Heavy paths and NCA labels *)

let test_heavy_path_basics () =
  (* Path graph: a single heavy path. *)
  let st = seed 8 in
  let g = Generators.path st ~n:10 in
  let t = Tree.of_graph_bfs g ~root:0 in
  let hp = Heavy_path.compute t in
  Alcotest.(check int) "single path: no light edges" 0 (Heavy_path.max_light_depth hp);
  Alcotest.(check int) "head of 9" 0 (Heavy_path.head hp 9);
  Alcotest.(check int) "pos of 9" 9 (Heavy_path.pos hp 9);
  (* Star: every leaf is a light child except the heavy one. *)
  let s = Generators.star st ~n:8 in
  let ts = Tree.of_graph_bfs s ~root:0 in
  let hps = Heavy_path.compute ts in
  Alcotest.(check int) "star light depth" 1 (Heavy_path.max_light_depth hps);
  Alcotest.(check int) "star heavy child" 1 (Heavy_path.heavy_child hps 0)

let test_heavy_path_log_bound () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let hp = Heavy_path.compute t in
    let n = Graph.n g in
    let rec log2c k acc = if 1 lsl acc >= k then acc else log2c k (acc + 1) in
    Alcotest.(check bool) "light depth <= log2 n" true
      (Heavy_path.max_light_depth hp <= log2c n 0)
  done

let test_nca_labels_match_tree () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let labels = Nca_labels.prover t in
    let n = Graph.n g in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        let w = Tree.nca t u v in
        Alcotest.(check bool)
          (Printf.sprintf "nca %d %d = %d" u v w)
          true
          (Nca_labels.equal (Nca_labels.nca labels.(u) labels.(v)) labels.(w))
      done
    done
  done

let test_nca_cycle_membership () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let labels = Nca_labels.prover t in
    Graph.iter_edges
      (fun e ->
        if not (Tree.mem_edge t e.E.u e.E.v) then begin
          let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
          for x = 0 to Graph.n g - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "on_cycle %d {%d,%d}" x e.E.u e.E.v)
              (List.mem x cycle)
              (Nca_labels.on_cycle ~x:labels.(x) ~u:labels.(e.E.u) ~v:labels.(e.E.v))
          done
        end)
      g
  done

let test_nca_label_size () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = sample_tree g in
    let labels = Nca_labels.prover t in
    let n = Graph.n g in
    let rec log2c k acc = if 1 lsl acc >= k then acc else log2c k (acc + 1) in
    Array.iter
      (fun l ->
        Alcotest.(check bool) "length <= log2 n + 1" true
          (Nca_labels.length l <= log2c n 0 + 1))
      labels
  done

let test_nca_resolve () =
  let g = sample_graph 2 in
  let t = sample_tree g in
  let labels = Nca_labels.prover t in
  for v = 0 to Graph.n g - 1 do
    Alcotest.(check int) "resolve" v (Nca_labels.resolve t labels.(v))
  done

(* ------------------------------------------------------------------ *)
(* NCA PLS (Lemma 5.1) *)

let test_nca_pls_complete () =
  for i = 0 to 9 do
    let g = sample_graph i in
    Alcotest.(check bool) "accepts" true (Nca_pls.accepts_tree g (sample_tree g))
  done

let test_nca_pls_sound () =
  let g = sample_graph 9 in
  let t = sample_tree g in
  let parent = Tree.parents t in
  (* Corrupt one node's sequence. *)
  let labels = Nca_pls.prover t in
  let v = if Tree.root t = 1 then 2 else 1 in
  labels.(v) <-
    { labels.(v) with Nca_pls.seq = Nca_labels.extend_light labels.(v).Nca_pls.seq ~child:v };
  Alcotest.(check bool) "rejects bad seq" false
    (Pls.accepts g ~parent ~labels Nca_pls.verify);
  (* Corrupt a size: breaks either the size sum or heavy-child choice. *)
  let labels = Nca_pls.prover t in
  labels.(v) <- { labels.(v) with Nca_pls.size = labels.(v).Nca_pls.size + 3 };
  Alcotest.(check bool) "rejects bad size" false
    (Pls.accepts g ~parent ~labels Nca_pls.verify)

(* ------------------------------------------------------------------ *)
(* Fragment labels (Section VI, Figure 2) *)

let test_fragment_trace_on_mst () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let mst = Mst.tree_of g (Mst.kruskal g) ~root:0 in
    let labels = Fragment_labels.prover g mst in
    let n = Graph.n g in
    let rec log2c k acc = if 1 lsl acc >= k then acc else log2c k (acc + 1) in
    let k = Fragment_labels.levels labels.(0) in
    Alcotest.(check bool) "k <= ceil log2 n + 1" true (k <= log2c n 0 + 1);
    (* Level-1 fragments are singletons. *)
    let frags1 = Fragment_labels.fragments_at labels ~level:0 in
    Alcotest.(check int) "n singletons" n (List.length frags1);
    (* Fragment count at least halves per level (Figure 2's invariant). *)
    let rec check_halving i prev =
      if i < k then begin
        let c = List.length (Fragment_labels.fragments_at labels ~level:i) in
        Alcotest.(check bool) "halving" true (c <= (prev + 1) / 2 || c = 1);
        check_halving (i + 1) c
      end
    in
    check_halving 1 n;
    (* Top level: one fragment. *)
    Alcotest.(check int) "single top fragment" 1
      (List.length (Fragment_labels.fragments_at labels ~level:(k - 1)))
  done

let test_fragment_pls_completeness_on_mst () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let mst = Mst.tree_of g (Mst.kruskal g) ~root:0 in
    Alcotest.(check bool) "MST accepted" true (Fragment_labels.accepts_tree g mst)
  done

let test_fragment_pls_rejects_non_mst () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let mst_edges = Mst.kruskal g in
    let t0 = Tree.of_graph_bfs g ~root:0 in
    if Tree.weight t0 g > Mst.weight_of mst_edges then begin
      (* The BFS tree is not the MST: its own trace labels must be
         rejected by the full verifier... *)
      let labels = Fragment_labels.prover g t0 in
      Alcotest.(check bool) "non-MST rejected" false
        (Pls.accepts g ~parent:(Tree.parents t0) ~labels Fragment_labels.verify);
      (* ...but accepted by the trace-only verifier. *)
      Alcotest.(check bool) "trace accepted" true
        (Pls.accepts g ~parent:(Tree.parents t0) ~labels Fragment_labels.verify_trace)
    end
  done

let test_fragment_potential () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let mst = Mst.tree_of g (Mst.kruskal g) ~root:0 in
    let lm = Fragment_labels.prover g mst in
    Alcotest.(check int) "phi(MST) = 0" 0 (Fragment_labels.potential g mst lm);
    let t0 = Tree.of_graph_bfs g ~root:0 in
    let l0 = Fragment_labels.prover g t0 in
    let phi = Fragment_labels.potential g t0 l0 in
    Alcotest.(check bool) "phi >= 0" true (phi >= 0);
    if not (Mst.is_mst g t0) then begin
      Alcotest.(check bool) "phi > 0 off MST" true (phi > 0);
      Alcotest.(check bool) "violation exists" true
        (Fragment_labels.violation_level g l0 <> None)
    end
  done

(* The red-rule swap guided by the labels strictly decreases phi
   (Section VI, the cyclical-decreasing property). *)
let test_fragment_phi_decreases () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t = ref (Tree.of_graph_bfs g ~root:0) in
    let steps = ref 0 in
    let continue_ = ref true in
    while !continue_ && !steps < 200 do
      let labels = Fragment_labels.prover g !t in
      match Fragment_labels.violation_level g labels with
      | None -> continue_ := false
      | Some lvl ->
          let phi = Fragment_labels.potential g !t labels in
          (* Find a violated fragment at this level and its G-minimal
             outgoing edge e; swap out the heaviest tree edge on the
             fundamental cycle of e (red rule). *)
          let frag =
            let found = ref None in
            Array.iteri
              (fun _x (l : Fragment_labels.label) ->
                if !found = None then begin
                  let e = l.(lvl) in
                  match e.Fragment_labels.out with
                  | Some out -> (
                      match
                        Fragment_labels.min_outgoing g labels ~level:lvl
                          ~frag:e.Fragment_labels.frag
                      with
                      | Some m when not (E.equal m out) ->
                          found := Some (e.Fragment_labels.frag, m)
                      | _ -> ())
                  | None -> ()
                end)
              labels;
            !found
          in
          (match frag with
          | None -> Alcotest.fail "violation level without violating fragment"
          | Some (_f, e) ->
              let cycle = Tree.fundamental_cycle !t ~e:(e.E.u, e.E.v) in
              let rec pairs = function
                | a :: b :: rest -> (a, b) :: pairs (b :: rest)
                | _ -> []
              in
              let heaviest =
                List.fold_left
                  (fun best (a, b) ->
                    let eb = E.make a b (Graph.weight g a b) in
                    match best with
                    | None -> Some eb
                    | Some cur -> if E.compare eb cur > 0 then Some eb else best)
                  None (pairs cycle)
              in
              let f = Option.get heaviest in
              t := Tree.swap !t ~add:(e.E.u, e.E.v) ~remove:(f.E.u, f.E.v);
              let labels' = Fragment_labels.prover g !t in
              let phi' = Fragment_labels.potential g !t labels' in
              Alcotest.(check bool) "phi strictly decreases" true (phi' < phi));
          incr steps
    done;
    Alcotest.(check bool) "reached MST" true (Mst.is_mst g !t)
  done

let test_fragment_pls_sound_corruption () =
  let g = sample_graph 1 in
  let mst = Mst.tree_of g (Mst.kruskal g) ~root:0 in
  let parent = Tree.parents mst in
  let base = Fragment_labels.prover g mst in
  let st = seed 42 in
  (* Semantic corruptions (fragment ids, selected edges) must always be
     caught. The fdist/odist certificate distances are NOT corrupted
     here: bumping them can occasionally produce another valid
     certificate for the same facts (multiple anchors), which is
     harmless by design. *)
  for _trial = 0 to 49 do
    let labels = Array.map Array.copy base in
    let v = Random.State.int st (Graph.n g) in
    let lvl = Random.State.int st (Fragment_labels.levels labels.(v)) in
    let e = labels.(v).(lvl) in
    let e' =
      match Random.State.int st 2 with
      | 0 -> { e with Fragment_labels.frag = (e.Fragment_labels.frag + 1) mod Graph.n g }
      | _ -> { e with Fragment_labels.out = None }
    in
    if e' <> e then begin
      labels.(v).(lvl) <- e';
      Alcotest.(check bool) "corruption caught" false
        (Pls.accepts g ~parent ~labels Fragment_labels.verify)
    end
  done

(* ------------------------------------------------------------------ *)
(* FR PLS (Lemma 8.1) *)

let test_fr_pls_complete () =
  for i = 0 to 9 do
    let g = sample_graph i in
    let t, marking, _ = Min_degree.furer_raghavachari g ~root:0 in
    Alcotest.(check bool) "FR tree accepted" true
      (Pls.accepts g ~parent:(Tree.parents t)
         ~labels:(Fr_pls.prover g t marking)
         Fr_pls.verify);
    Alcotest.(check bool) "accepts_tree" true (Fr_pls.accepts_tree g t)
  done

let test_fr_pls_rejects_non_fr () =
  (* The star spanning tree of a complete graph is not an FR-tree. *)
  let st = seed 11 in
  let g = Generators.complete st ~n:8 in
  let star = Tree.of_graph_bfs g ~root:0 in
  Alcotest.(check bool) "star of K8 rejected" false (Fr_pls.accepts_tree g star);
  (* Even with a forged marking, verification must fail somewhere: mark
     everyone bad except two leaves in "different fragments". *)
  let n = Graph.n g in
  let marking =
    {
      Min_degree.good = Array.init n (fun v -> v = 1 || v = 2);
      fragment = Array.init n (fun v -> if v = 1 || v = 2 then v else -1);
    }
  in
  let labels = Fr_pls.prover g star marking in
  Alcotest.(check bool) "forged marking rejected" false
    (Pls.accepts g ~parent:(Tree.parents star) ~labels Fr_pls.verify)

let test_fr_pls_sound_corruption () =
  let g = sample_graph 5 in
  let t, marking, _ = Min_degree.furer_raghavachari g ~root:0 in
  let parent = Tree.parents t in
  let base = Fr_pls.prover g t marking in
  let st = seed 12 in
  for _trial = 0 to 49 do
    let labels = Array.copy base in
    let v = Random.State.int st (Graph.n g) in
    let l = labels.(v) in
    let l' =
      match Random.State.int st 4 with
      | 0 -> { l with Fr_pls.k = l.Fr_pls.k + 1 }
      | 1 -> { l with Fr_pls.wdist = l.Fr_pls.wdist + 1 }
      | 2 -> { l with Fr_pls.good = not l.Fr_pls.good }
      | _ -> { l with Fr_pls.fdist = l.Fr_pls.fdist + 1 }
    in
    labels.(v) <- l';
    if not (Fr_pls.equal l l') then begin
      (* Some corruptions of [good] on degree-(k-1) nodes can yield
         another valid marking; only require rejection when the label is
         genuinely inconsistent, which we approximate by checking the
         known-safe fields. *)
      match Random.State.int st 1 with
      | _ ->
          if l'.Fr_pls.k <> l.Fr_pls.k || l'.Fr_pls.wdist <> l.Fr_pls.wdist then
            Alcotest.(check bool) "k/wdist corruption caught" false
              (Pls.accepts g ~parent ~labels Fr_pls.verify)
    end
  done

let test_fr_label_bits_logarithmic () =
  let st = seed 13 in
  List.iter
    (fun n ->
      let g = Generators.gnp st ~n ~p:(8.0 /. float_of_int n) in
      let t, marking, _ = Min_degree.furer_raghavachari g ~root:0 in
      let labels = Fr_pls.prover g t marking in
      let bits = Array.fold_left (fun acc l -> max acc (Fr_pls.size_bits n l)) 0 labels in
      (* O(log n): generously, <= 8 * ceil(log2 n) + 8. *)
      let rec log2c k acc = if 1 lsl acc >= k then acc else log2c k (acc + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "bits at n=%d" n)
        true
        (bits <= (8 * log2c n 0) + 8))
    [ 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_gt =
  QCheck2.Gen.(
    let* n = int_range 3 20 in
    let* extra = int_range 0 n in
    let* s = int_bound 1_000_000 in
    let g = Generators.random_connected (Random.State.make [| s; 3 |]) ~n ~m:(n - 1 + extra) in
    let* root = int_range 0 (n - 1) in
    return (g, Tree.of_graph_bfs g ~root))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen f)

let prop_all_schemes_complete =
  prop "all PLS accept their prover on any spanning tree" gen_gt (fun (g, t) ->
      Distance_pls.accepts_tree g t && Size_pls.accepts_tree g t
      && Redundant_pls.accepts_tree g t
      && Interval_labels.accepts_tree g t
      && Nca_pls.accepts_tree g t
      &&
      let labels = Fragment_labels.prover g t in
      Pls.accepts g ~parent:(Tree.parents t) ~labels Fragment_labels.verify_trace)

let prop_nca_equals_tree_nca =
  prop "nca label computation matches Tree.nca" gen_gt (fun (g, t) ->
      let labels = Nca_labels.prover t in
      let n = Graph.n g in
      let st = Random.State.make [| n; 7 |] in
      let ok = ref true in
      for _ = 0 to 30 do
        let u = Random.State.int st n and v = Random.State.int st n in
        if
          not
            (Nca_labels.equal (Nca_labels.nca labels.(u) labels.(v)) labels.(Tree.nca t u v))
        then ok := false
      done;
      !ok)

let prop_fragment_potential_zero_iff_mst =
  prop "phi = 0 iff MST" gen_gt (fun (g, t) ->
      let labels = Fragment_labels.prover g t in
      let phi = Fragment_labels.potential g t labels in
      (phi = 0) = Mst.is_mst g t)

let prop_mst_pls_complete_and_sound =
  prop "MST PLS: accepts MST, rejects non-MST trace" gen_gt (fun (g, t) ->
      let mst = Mst.tree_of g (Mst.kruskal g) ~root:(Tree.root t) in
      let ok_mst = Fragment_labels.accepts_tree g mst in
      let ok_t =
        if Mst.is_mst g t then true
        else
          not
            (Pls.accepts g ~parent:(Tree.parents t) ~labels:(Fragment_labels.prover g t)
               Fragment_labels.verify)
      in
      ok_mst && ok_t)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_labels"
    [
      ( "distance_pls",
        [
          Alcotest.test_case "complete" `Quick test_distance_complete;
          Alcotest.test_case "sound: cycle" `Quick test_distance_sound_cycle;
          Alcotest.test_case "sound: corruption" `Quick test_distance_sound_corruption;
        ] );
      ( "size_pls",
        [
          Alcotest.test_case "complete" `Quick test_size_complete;
          Alcotest.test_case "sound" `Quick test_size_sound;
        ] );
      ( "redundant_pls",
        [
          Alcotest.test_case "complete" `Quick test_redundant_complete;
          Alcotest.test_case "prunings accepted" `Quick test_redundant_prunings_accepted;
          Alcotest.test_case "rejects non-tree" `Quick test_redundant_rejects_nontree;
          Alcotest.test_case "C1 violation rejected" `Quick test_redundant_c1_violation_rejected;
          Alcotest.test_case "(⊥,⊥) rejected" `Quick test_redundant_ill_formed_rejected;
        ] );
      ( "interval_labels",
        [
          Alcotest.test_case "ancestry" `Quick test_interval_ancestry;
          Alcotest.test_case "cycle membership" `Quick test_interval_cycle_membership;
          Alcotest.test_case "pls" `Quick test_interval_pls;
        ] );
      ( "nca",
        [
          Alcotest.test_case "heavy path basics" `Quick test_heavy_path_basics;
          Alcotest.test_case "heavy path log bound" `Quick test_heavy_path_log_bound;
          Alcotest.test_case "labels match tree nca" `Quick test_nca_labels_match_tree;
          Alcotest.test_case "cycle membership" `Quick test_nca_cycle_membership;
          Alcotest.test_case "label size" `Quick test_nca_label_size;
          Alcotest.test_case "resolve" `Quick test_nca_resolve;
          Alcotest.test_case "pls complete" `Quick test_nca_pls_complete;
          Alcotest.test_case "pls sound" `Quick test_nca_pls_sound;
        ] );
      ( "fragment_labels",
        [
          Alcotest.test_case "trace on MST (Figure 2)" `Quick test_fragment_trace_on_mst;
          Alcotest.test_case "pls complete on MST" `Quick test_fragment_pls_completeness_on_mst;
          Alcotest.test_case "pls rejects non-MST" `Quick test_fragment_pls_rejects_non_mst;
          Alcotest.test_case "potential" `Quick test_fragment_potential;
          Alcotest.test_case "phi decreases under red rule" `Quick test_fragment_phi_decreases;
          Alcotest.test_case "sound under corruption" `Quick test_fragment_pls_sound_corruption;
        ] );
      ( "fr_pls",
        [
          Alcotest.test_case "complete" `Quick test_fr_pls_complete;
          Alcotest.test_case "rejects non-FR" `Quick test_fr_pls_rejects_non_fr;
          Alcotest.test_case "sound under corruption" `Quick test_fr_pls_sound_corruption;
          Alcotest.test_case "O(log n) bits" `Quick test_fr_label_bits_logarithmic;
        ] );
      ( "properties",
        [
          prop_all_schemes_complete;
          prop_nca_equals_tree_nca;
          prop_fragment_potential_zero_iff_mst;
          prop_mst_pls_complete_and_sound;
        ] );
    ]
