(* Comparator over BENCH_repro.json / SERVICE_repro.json artifacts —
   the bench-regression gate. Records are matched by (exp, algo, n,
   occurrence); a comparison FAILS when the new artifact regresses
   steps or rounds by more than [steps_tol] (default 10%), wall_ns by
   more than [wall_tol] (default 25%), or — where both records carry a
   qps (the serve-bench tier) — drops throughput by more than [qps_tol]
   (default 30%). steps/rounds are deterministic for a pinned seed, so
   any drift there is a semantic change, not noise; wall_ns and qps are
   wall-clock measurements and the tolerances absorb machine variance
   (the @smoke/@servebench wiring passes much larger ones — see
   PERFORMANCE.md). Improvements never fail.

   Service artifacts load through the same record shape: cells are
   keyed by (trace, algo, n0), carry no wall_ns (0), and the big-tier
   cells carry qps. *)

module Json = Repro_runtime.Metrics.Json

type record = {
  exp : string;
  algo : string;
  n : int;
  rounds : int;
  steps : int;
  max_bits : int;
  wall_ns : int;
  qps : int option;
}

type key = { kexp : string; kalgo : string; kn : int; occurrence : int }

let pp_key ppf k =
  Format.fprintf ppf "%s/%s/n=%d" k.kexp k.kalgo k.kn;
  if k.occurrence > 0 then Format.fprintf ppf "#%d" k.occurrence

(* ------------------------------------------------------------------ *)
(* Loading *)

let record_of_json j =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  match (str "exp", str "algo", int "n", int "rounds", int "steps", int "max_bits",
         int "wall_ns")
  with
  | Some exp, Some algo, Some n, Some rounds, Some steps, Some max_bits, Some wall_ns
    -> Some { exp; algo; n; rounds; steps; max_bits; wall_ns; qps = int "qps" }
  | _ -> None

(* A SERVICE_repro.json cell mapped onto the record shape: the churn
   trace plays the experiment name, n0 the size; there is no per-cell
   wall time (0 = never breaches), and big-tier cells carry qps. *)
let record_of_service_cell j =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  match (str "trace", str "algo", int "n0", int "rounds", int "steps", int "max_bits")
  with
  | Some exp, Some algo, Some n, Some rounds, Some steps, Some max_bits ->
      Some { exp; algo; n; rounds; steps; max_bits; wall_ns = 0; qps = int "qps" }
  | _ -> None

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | None -> Error (path ^ ": not valid JSON")
      | Some j -> (
          match (Json.member "experiments" j, Json.member "cells" j) with
          | Some (Json.List items), _ ->
              let records = List.filter_map record_of_json items in
              if List.length records <> List.length items then
                Error (path ^ ": malformed experiment record")
              else Ok records
          | None, Some (Json.List items) ->
              let records = List.filter_map record_of_service_cell items in
              if List.length records <> List.length items then
                Error (path ^ ": malformed service cell")
              else Ok records
          | _ -> Error (path ^ ": missing \"experiments\" or \"cells\" list")))

(* Records keyed by (exp, algo, n) with a running occurrence index, so
   repeated configurations (E2 runs gnp-16 twice) stay distinguishable
   and positionally matched. *)
let keyed records =
  let seen = Hashtbl.create 16 in
  List.map
    (fun r ->
      let base = (r.exp, r.algo, r.n) in
      let occurrence = try Hashtbl.find seen base with Not_found -> 0 in
      Hashtbl.replace seen base (occurrence + 1);
      ({ kexp = r.exp; kalgo = r.algo; kn = r.n; occurrence }, r))
    records

(* ------------------------------------------------------------------ *)
(* Identity comparison (bench-diff --require-identical): two artifacts
   produced from the same seeds at different [--jobs] must agree in
   every field except wall time. Schema-agnostic — works on
   BENCH_repro.json, CHAOS_repro.json and SERVICE_repro.json alike:
   [wall_ns] and the wall-derived [qps] fields are stripped
   recursively, then the JSON trees must be equal, and the first
   divergence is reported by path. *)

let load_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.of_string contents with
      | None -> Error (path ^ ": not valid JSON")
      | Some j -> Ok j)

let rec strip_wall = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "wall_ns" || k = "qps" then None else Some (k, strip_wall v))
           fields)
  | Json.List items -> Json.List (List.map strip_wall items)
  | j -> j

let first_divergence a b =
  let rec go path a b =
    match (a, b) with
    | Json.Obj fa, Json.Obj fb ->
        if List.map fst fa <> List.map fst fb then
          Some
            (Printf.sprintf "%s: field sets differ ({%s} vs {%s})" path
               (String.concat "," (List.map fst fa))
               (String.concat "," (List.map fst fb)))
        else
          List.find_map
            (fun ((k, va), (_, vb)) -> go (path ^ "." ^ k) va vb)
            (List.combine fa fb)
    | Json.List la, Json.List lb ->
        if List.length la <> List.length lb then
          Some
            (Printf.sprintf "%s: list lengths differ (%d vs %d)" path (List.length la)
               (List.length lb))
        else
          List.find_map
            (fun (i, (va, vb)) -> go (Printf.sprintf "%s[%d]" path i) va vb)
            (List.mapi (fun i p -> (i, p)) (List.combine la lb))
    | _ -> if a = b then None else
          Some
            (Printf.sprintf "%s: %s <> %s" path (Json.to_string a) (Json.to_string b))
  in
  go "$" (strip_wall a) (strip_wall b)

(* ------------------------------------------------------------------ *)
(* Comparison *)

type verdict = Ok_same | Ok_improved | Ok_within_tolerance | Regressed of string list

type comparison = { ckey : key; old_r : record; new_r : record; verdict : verdict }

type report = {
  comparisons : comparison list;
  missing : key list;  (** in the old artifact only — not compared *)
  extra : key list;  (** in the new artifact only — not compared *)
  failures : int;
}

let ratio old_v new_v =
  if old_v = 0 then if new_v = 0 then 1.0 else infinity
  else float_of_int new_v /. float_of_int old_v

let compare_one ~steps_tol ~wall_tol ~qps_tol ckey old_r new_r =
  let breaches = ref [] in
  let check name old_v new_v tol =
    let r = ratio old_v new_v in
    if r > 1.0 +. tol then
      breaches :=
        Printf.sprintf "%s %d -> %d (%+.1f%% > %.0f%% tolerance)" name old_v new_v
          ((r -. 1.0) *. 100.)
          (tol *. 100.)
        :: !breaches
  in
  check "steps" old_r.steps new_r.steps steps_tol;
  check "rounds" old_r.rounds new_r.rounds steps_tol;
  check "wall_ns" old_r.wall_ns new_r.wall_ns wall_tol;
  (* qps is a throughput: a breach is a drop, not a growth. Only
     compared when both records carry it (the serve-bench tier). *)
  (match (old_r.qps, new_r.qps) with
  | Some o, Some nw when o > 0 ->
      let r = float_of_int nw /. float_of_int o in
      if r < 1.0 -. qps_tol then
        breaches :=
          Printf.sprintf "qps %d -> %d (%.1f%% drop > %.0f%% tolerance)" o nw
            ((1.0 -. r) *. 100.)
            (qps_tol *. 100.)
          :: !breaches
  | _ -> ());
  let verdict =
    match List.rev !breaches with
    | _ :: _ as b -> Regressed b
    | [] ->
        if (old_r.steps, old_r.rounds) <> (new_r.steps, new_r.rounds) then
          Ok_within_tolerance
        else if new_r.wall_ns < old_r.wall_ns then Ok_improved
        else Ok_same
  in
  { ckey; old_r; new_r; verdict }

let diff ?(steps_tol = 0.10) ?(wall_tol = 0.25) ?(qps_tol = 0.30) ~old_records
    ~new_records () =
  let old_k = keyed old_records and new_k = keyed new_records in
  let find k l = List.find_opt (fun (k', _) -> k' = k) l in
  let comparisons =
    List.filter_map
      (fun (k, o) ->
        match find k new_k with
        | Some (_, n) -> Some (compare_one ~steps_tol ~wall_tol ~qps_tol k o n)
        | None -> None)
      old_k
  in
  let missing =
    List.filter_map (fun (k, _) -> if find k new_k = None then Some k else None) old_k
  in
  let extra =
    List.filter_map (fun (k, _) -> if find k old_k = None then Some k else None) new_k
  in
  let failures =
    List.length
      (List.filter (fun c -> match c.verdict with Regressed _ -> true | _ -> false)
         comparisons)
  in
  { comparisons; missing; extra; failures }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_report ppf r =
  Format.fprintf ppf "%-22s %20s %16s %22s  %s@." "key" "steps (old->new)"
    "rounds" "wall ms (old->new)" "verdict";
  List.iter
    (fun c ->
      let verdict =
        match c.verdict with
        | Ok_same -> "ok"
        | Ok_improved ->
            Printf.sprintf "ok (wall %.2fx faster)"
              (float_of_int c.old_r.wall_ns /. float_of_int (max 1 c.new_r.wall_ns))
        | Ok_within_tolerance -> "ok (drifted within tolerance)"
        | Regressed breaches -> "REGRESSED: " ^ String.concat "; " breaches
      in
      Format.fprintf ppf "%-22s %9d -> %-9d %7d -> %-7d %10.2f -> %-10.2f %s@."
        (Format.asprintf "%a" pp_key c.ckey)
        c.old_r.steps c.new_r.steps c.old_r.rounds c.new_r.rounds
        (float_of_int c.old_r.wall_ns /. 1e6)
        (float_of_int c.new_r.wall_ns /. 1e6)
        verdict;
      if c.old_r.max_bits <> c.new_r.max_bits then
        Format.fprintf ppf "%-22s   warning: max_bits %d -> %d@." ""
          c.old_r.max_bits c.new_r.max_bits;
      match (c.old_r.qps, c.new_r.qps) with
      | Some o, Some nw -> Format.fprintf ppf "%-22s   qps %d -> %d@." "" o nw
      | _ -> ())
    r.comparisons;
  if r.missing <> [] then
    Format.fprintf ppf "not in new artifact (skipped): %a@."
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_key)
      r.missing;
  if r.extra <> [] then
    Format.fprintf ppf "only in new artifact (no baseline): %a@."
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_key)
      r.extra;
  Format.fprintf ppf "%d compared, %d regressed@." (List.length r.comparisons) r.failures
