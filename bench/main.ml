(* Experiment harness: regenerates every quantitative artifact of the
   paper per the index in DESIGN.md (E1-E10), plus Bechamel
   micro-benchmarks of the core operations.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- E3 E4    # selected experiments

   The paper is a theory paper — its "tables and figures" are theorem
   statements plus Figures 1 and 2 — so each experiment measures the
   quantitative content of one claim; EXPERIMENTS.md records
   paper-vs-measured. *)

open Repro_graph
open Repro_runtime
open Repro_labels
open Repro_core
open Repro_baselines
module E = Graph.Edge

(* [--seed N] replaces the default RNG seed base; [--out FILE] redirects
   the BENCH_repro.json artifact (the smoke gate writes to a declared
   dune target); [--jobs N] sets the worker-domain count for the
   independent experiment cells (default: the machine's recommended
   domain count; 1 = the exact sequential path); [--profile] attaches
   engine profiling counters to every recorded engine run and prints
   them per cell; [--big-nmax N] trims the big-n tier (experiment BIG)
   to cells with n <= N (the @bigbench alias runs the n=10^3 column
   only — see SCALING.md); remaining arguments select experiments. *)
let seed_base, out_path, jobs, profiling, big_nmax, exp_args =
  let rec go seed out jobs prof nmax acc = function
    | [] -> (seed, out, jobs, prof, nmax, List.rev acc)
    | "--seed" :: v :: rest ->
        go (match int_of_string_opt v with Some s -> s | None -> seed) out jobs prof nmax
          acc rest
    | "--out" :: v :: rest -> go seed v jobs prof nmax acc rest
    | "--jobs" :: v :: rest ->
        go seed out
          (match int_of_string_opt v with Some j -> j | None -> jobs)
          prof nmax acc rest
    | "--profile" :: rest -> go seed out jobs true nmax acc rest
    | "--big-nmax" :: v :: rest ->
        go seed out jobs prof
          (match int_of_string_opt v with Some m -> m | None -> nmax)
          acc rest
    | a :: rest -> go seed out jobs prof nmax (a :: acc) rest
  in
  go 0xE57 "BENCH_repro.json" (Pool.default_jobs ()) false max_int []
    (Array.to_list Sys.argv |> List.tl)

let pool = Pool.create ~jobs ()
let rng_of tag = Random.State.make [| seed_base; tag |]
let header id title = Format.printf "@.==== %s: %s ====@." id title

let log2c k =
  let rec go acc p = if p >= k then acc else go (acc + 1) (p * 2) in
  if k <= 1 then 0 else go 0 1

let selected id = exp_args = [] || List.mem id exp_args

(* ------------------------------------------------------------------ *)
(* BENCH_repro.json: every engine run an experiment performs is recorded
   as {exp, algo, n, tier, rounds, steps, max_bits, wall_ns} and the
   collection is written at exit — the machine-readable trajectory perf
   PRs diff against. [tier] is "std" for the classic small-n cells and
   "big" for the BIG experiment's 10^3..10^5 cells (the @bigbench
   gate). wall_ns is wall-clock time measured inside the worker that
   runs the cell: Sys.time would report process CPU time, which
   aggregates across every domain and inflates each record as soon as
   cells run in parallel. *)

let bench_records : Metrics.Json.t list ref = ref []

let record ?(tier = "std") ~exp ~algo ~n ~rounds ~steps ~max_bits ~wall_ns () =
  Metrics.Json.(
    Obj
      [
        ("exp", Str exp); ("algo", Str algo); ("n", Int n); ("tier", Str tier);
        ("rounds", Int rounds); ("steps", Int steps); ("max_bits", Int max_bits);
        ("wall_ns", Int wall_ns);
      ])

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))

(* --profile support: one fresh counter set per engine run, printed as an
   extra line under the cell's table row (buffered with the row, so the
   output stays byte-identical at any --jobs). *)
let new_profile () = if profiling then Some (Profile.create ()) else None

let pp_profile ppf = function
  | Some p -> Format.fprintf ppf "       profile: %a@." Profile.pp p
  | None -> ()

(* The campaign-cell driver: one row per item, farmed out to the domain
   pool. Each row is hermetic (its RNG comes from [rng_of] inside the
   worker), formats its table lines into a private buffer, and returns
   the bench records it produced; rows are then printed and the records
   merged in item order, so stdout and BENCH_repro.json are identical
   at any --jobs. *)
let par_rows items f =
  List.iter
    (fun (row, recs) ->
      Format.printf "%s" row;
      bench_records := List.rev_append recs !bench_records)
    (Pool.map pool
       (fun item ->
         let buf = Buffer.create 256 in
         let ppf = Format.formatter_of_buffer buf in
         let recs = f ppf item in
         Format.pp_print_flush ppf ();
         (Buffer.contents buf, recs))
       items)

let write_bench_repro () =
  let path = out_path in
  let json =
    Metrics.Json.(
      Obj
        [
          ("seed", Int seed_base);
          ("experiments", List (List.rev !bench_records));
        ])
  in
  let oc = open_out path in
  Metrics.Json.to_channel oc json;
  close_out oc;
  Format.printf "%s: %d engine-run records written@." path (List.length !bench_records)

(* ------------------------------------------------------------------ *)
(* E1 — Corollary 6.1: MST rounds and register bits vs n *)

module ME = Mst_builder.Engine

let e1 () =
  header "E1" "MST builder (Corollary 6.1): rounds-to-silence and register bits vs n";
  Format.printf "%6s %6s %8s %10s %8s %10s %8s %6s@." "n" "m" "rounds" "steps" "bits"
    "c*log^2 n" "weight" "MST?";
  par_rows [ 8; 12; 16; 24; 32; 48 ] (fun ppf n ->
      let rng = rng_of (100 + n) in
      let g = Generators.random_connected rng ~n ~m:(2 * n) in
      let profile = new_profile () in
      let r, wall_ns =
        timed (fun () ->
            ME.run ~max_rounds:30_000 ?profile g Scheduler.Synchronous rng
              ~init:(ME.initial g))
      in
      let weight, is_mst =
        match Mst_builder.tree_of g r.ME.states with
        | Some t -> (Tree.weight t g, Mst.is_mst g t)
        | None -> (-1, false)
      in
      Format.fprintf ppf "%6d %6d %8d %10d %8d %10d %8d %6b%s@." n (Graph.m g) r.ME.rounds
        r.ME.steps r.ME.max_bits
        (log2c n * log2c n)
        weight is_mst
        (if r.ME.silent then "" else "  (round budget hit)");
      pp_profile ppf profile;
      [
        record ~exp:"E1" ~algo:"mst" ~n ~rounds:r.ME.rounds ~steps:r.ME.steps
          ~max_bits:r.ME.max_bits ~wall_ns ();
      ]);
  Format.printf
    "shape: rounds polynomial in n; bits within a constant of log^2 n (space-optimal).@."

(* ------------------------------------------------------------------ *)
(* E2 — Corollary 8.1: MDST degree quality and register bits *)

module DE = Mdst_builder.Engine

let e2 () =
  header "E2" "MDST builder (Corollary 8.1): degree vs OPT+1, O(log n) bits";
  Format.printf "%-14s %4s %6s %8s %6s %5s %5s %7s %8s@." "graph" "n" "rounds" "bits"
    "deg" "FR" "OPT" "<=OPT+1" "silent";
  let cases =
    [
      ("complete-8", fun rng -> Generators.complete rng ~n:8);
      ("gnp-12", fun rng -> Generators.gnp rng ~n:12 ~p:0.35);
      ("gnp-16", fun rng -> Generators.gnp rng ~n:16 ~p:0.3);
      ("geometric-16", fun rng -> Generators.geometric rng ~n:16 ~radius:0.45);
      ("lollipop-9", fun rng -> Generators.lollipop rng ~clique:5 ~tail:4);
      ("caterpillar", fun rng -> Generators.caterpillar rng ~spine:3 ~legs:3);
    ]
  in
  par_rows
    (List.mapi (fun i case -> (i, case)) cases)
    (fun ppf (i, (name, gen)) ->
      let rng = rng_of (200 + i) in
      let g = gen rng in
      let n = Graph.n g in
      let profile = new_profile () in
      let r, wall_ns =
        timed (fun () -> DE.run ?profile g Scheduler.Synchronous rng ~init:(DE.initial g))
      in
      let deg =
        match Mdst_builder.tree_of g r.DE.states with
        | Some t -> Tree.max_degree t
        | None -> -1
      in
      let fr, _, _ = Min_degree.furer_raghavachari g ~root:0 in
      let opt = if n <= 12 then Min_degree.exact g else -1 in
      Format.fprintf ppf "%-14s %4d %6d %8d %6d %5d %5s %7b %8b@." name n r.DE.rounds
        r.DE.max_bits deg (Tree.max_degree fr)
        (if opt >= 0 then string_of_int opt else "?")
        (opt < 0 || deg <= opt + 1)
        r.DE.silent;
      pp_profile ppf profile;
      [
        record ~exp:"E2" ~algo:"mdst" ~n ~rounds:r.DE.rounds ~steps:r.DE.steps
          ~max_bits:r.DE.max_bits ~wall_ns ();
      ]);
  Format.printf "shape: stable degree <= OPT+1 (FR-trees); bits O(log n).@."

(* ------------------------------------------------------------------ *)
(* E3 — Lemma 4.1 + Figure 1: loop-free switching, no false alarms *)

let e3 () =
  header "E3" "Switching (Lemma 4.1, Figure 1): loop-free, verifier never rejects";
  Format.printf "%6s %10s %12s %12s %10s@." "n" "chain len" "micro steps" "all trees"
    "all accept";
  par_rows [ 8; 16; 32; 64; 128 ] (fun ppf n ->
      let rng = rng_of (300 + n) in
      let g = Generators.random_connected rng ~n ~m:(2 * n) in
      let t = Tree.of_graph_bfs g ~root:0 in
      (* Candidate sampling is O(1) array indexing — [List.nth] under an
         RNG draw walked O(|E|) (resp. O(n)) links per draw. The RNG
         consumption (one int each) is unchanged. *)
      let non_tree =
        Array.to_list (Graph.edges g)
        |> List.filter (fun (e : E.t) -> not (Tree.mem_edge t e.E.u e.E.v))
        |> Array.of_list
      in
      let e = non_tree.(Random.State.int rng (Array.length non_tree)) in
      let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
      let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
      let ps = Array.of_list (pairs cycle) in
      let a, b = ps.(Random.State.int rng (Array.length ps)) in
      let steps, _ = Switch.execute g t ~add:(e.E.u, e.E.v) ~remove:(a, b) in
      let trees =
        List.for_all
          (fun (m : Switch.micro) ->
            Tree.check_parents ~root:(Tree.root m.Switch.tree) (Tree.parents m.Switch.tree))
          steps
      in
      let accepts =
        List.for_all
          (fun (m : Switch.micro) ->
            Pls.accepts g
              ~parent:(Tree.parents m.Switch.tree)
              ~labels:m.Switch.labels Redundant_pls.verify)
          steps
      in
      Format.fprintf ppf "%6d %10d %12d %12b %10b@." n (List.length cycle)
        (List.length steps) trees accepts;
      []);
  Format.printf "shape: O(n) micro steps per switch; every row must be true/true.@."

(* ------------------------------------------------------------------ *)
(* E4 — Lemma 5.1: NCA labels: size, construction, certification *)

let e4 () =
  header "E4" "NCA labeling (Lemma 5.1): label bits vs n, PLS soundness";
  Format.printf "%6s %10s %10s %12s %12s %12s %14s@." "n" "max pairs" "raw bits"
    "compact bits" "log2 n" "nca correct" "corrupt caught";
  par_rows [ 16; 64; 256; 1024 ] (fun ppf n ->
      let rng = rng_of (400 + n) in
      let g = Generators.random_connected rng ~n ~m:(2 * n) in
      let t = Tree.of_graph_bfs g ~root:0 in
      let labels = Nca_labels.prover t in
      let compact = Compact_nca.prover t in
      let max_pairs = Array.fold_left (fun a l -> max a (Nca_labels.length l)) 0 labels in
      let max_bits =
        Array.fold_left (fun a l -> max a (Nca_labels.size_bits n l)) 0 labels
      in
      let compact_bits = Array.fold_left (fun a l -> max a (Compact_nca.bits l)) 0 compact in
      let ok = ref true in
      for _ = 1 to 200 do
        let u = Random.State.int rng n and v = Random.State.int rng n in
        if
          not
            (Nca_labels.equal
               (Nca_labels.nca labels.(u) labels.(v))
               labels.(Tree.nca t u v))
          || not
               (Compact_nca.equal
                  (Compact_nca.nca compact.(u) compact.(v))
                  compact.(Tree.nca t u v))
        then ok := false
      done;
      let pls = Nca_pls.prover t in
      let accepted = Pls.accepts g ~parent:(Tree.parents t) ~labels:pls Nca_pls.verify in
      let caught = ref 0 in
      let trials = 20 in
      for _ = 1 to trials do
        let v = 1 + Random.State.int rng (n - 1) in
        let bad = Array.copy pls in
        bad.(v) <-
          { bad.(v) with Nca_pls.seq = Nca_labels.extend_heavy bad.(v).Nca_pls.seq };
        if not (Pls.accepts g ~parent:(Tree.parents t) ~labels:bad Nca_pls.verify) then
          incr caught
      done;
      Format.fprintf ppf "%6d %10d %10d %12d %12d %12b %11d/%d%s@." n max_pairs max_bits
        compact_bits (log2c n) !ok !caught trials
        (if accepted then "" else "  (PLS completeness FAILED)");
      []);
  Format.printf
    "shape: pairs <= log2 n + 1; the raw (head,pos) encoding costs O(log^2 n) bits while \
     the alphabetic/γ-coded one ([6], Compact_nca) stays O(log n).@."

(* ------------------------------------------------------------------ *)
(* E5 — Section III example: BFS construction *)

module BE = Bfs_builder.Engine
module AE = Adhoc_bfs.Engine

let e5 () =
  header "E5" "BFS (Section III example): rounds, bits, vs the rooted ad-hoc baseline";
  Format.printf "%6s | %8s %6s %6s | %9s %6s %6s@." "n" "pls-rnd" "bits" "legal"
    "adhoc-rnd" "bits" "legal";
  par_rows [ 16; 32; 64; 128; 256 ] (fun ppf n ->
      let rng = rng_of (500 + n) in
      let g = Generators.gnp rng ~n ~p:(4.0 /. float_of_int n) in
      let profile = new_profile () in
      let r, r_ns =
        timed (fun () ->
            BE.run ?profile g Scheduler.Synchronous rng ~init:(BE.adversarial rng g))
      in
      let a, a_ns =
        timed (fun () -> AE.run g Scheduler.Synchronous rng ~init:(AE.adversarial rng g))
      in
      Format.fprintf ppf "%6d | %8d %6d %6b | %9d %6d %6b@." n r.BE.rounds r.BE.max_bits
        r.BE.legal a.AE.rounds a.AE.max_bits a.AE.legal;
      pp_profile ppf profile;
      [
        record ~exp:"E5" ~algo:"bfs" ~n ~rounds:r.BE.rounds ~steps:r.BE.steps
          ~max_bits:r.BE.max_bits ~wall_ns:r_ns ();
        record ~exp:"E5" ~algo:"adhoc-bfs" ~n ~rounds:a.AE.rounds ~steps:a.AE.steps
          ~max_bits:a.AE.max_bits ~wall_ns:a_ns ();
      ]);
  Format.printf
    "shape: both O(n) rounds and O(log n) bits; the PLS-guided version also elects the \
     root.@."

(* ------------------------------------------------------------------ *)
(* E6 — Figure 2: the Borůvka fragment hierarchy *)

let e6 () =
  header "E6" "Fragment hierarchy (Figure 2): levels k <= ceil(log2 n) + 1, halving";
  Format.printf "%6s %8s %12s %s@." "n" "levels" "ceil log2 n" "fragments per level";
  par_rows [ 8; 16; 32; 64; 128; 256 ] (fun ppf n ->
      let rng = rng_of (600 + n) in
      let g = Generators.random_connected rng ~n ~m:(2 * n) in
      let mst = Mst.tree_of g (Mst.kruskal g) ~root:0 in
      let labels = Fragment_labels.prover g mst in
      let k = Fragment_labels.levels labels.(0) in
      let series =
        List.init k (fun i ->
            string_of_int (List.length (Fragment_labels.fragments_at labels ~level:i)))
      in
      Format.fprintf ppf "%6d %8d %12d %s@." n k (log2c n) (String.concat " -> " series);
      []);
  Format.printf "shape: counts at least halve per level down to 1 (Figure 2's invariant).@."

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 3.1: convergence under every scheduler *)

let e7 () =
  header "E7" "Scheduler robustness (unfair daemon of Theorem 3.1)";
  let rng = rng_of 700 in
  let g = Generators.gnp rng ~n:16 ~p:0.3 in
  Format.printf "%-12s | %12s %6s | %12s %6s %10s@." "scheduler" "BFS rounds" "legal"
    "MST rounds" "legal" "fair-cont";
  List.iter
    (fun (name, sched) ->
      let rng = rng_of 701 in
      let rb = BE.run g sched rng ~init:(BE.adversarial rng g) in
      let rm = ME.run g sched rng ~init:(ME.initial g) in
      (* A deterministic starving daemon may freeze the token holders in a
         zero-round stall (permitted by the paper's round-based statements);
         any fair continuation must complete — measure that directly. *)
      let fair_cont =
        if rm.ME.legal then "-"
        else
          let r2 =
            ME.run g (Scheduler.Central Scheduler.Round_robin) rng ~init:rm.ME.states
          in
          Printf.sprintf "%b" r2.ME.legal
      in
      Format.printf "%-12s | %12d %6b | %12d %6b %10s@." name rb.BE.rounds rb.BE.legal
        rm.ME.rounds rm.ME.legal fair_cont)
    Scheduler.all;
  Format.printf
    "shape: silent and legal under every fair daemon; a deterministic starving daemon@.";
  Format.printf
    "(max-id, min-id, the LIFO adversary) may freeze the token holders in a stall that@.";
  Format.printf
    "accumulates (almost) no rounds -- permitted by the paper's round-based statements --@.";
  Format.printf
    "and the fair-cont column shows every stall completes once scheduling is fair again@.";
  Format.printf "(the unfair-daemon caveat of DESIGN.md).@."

(* ------------------------------------------------------------------ *)
(* E8 — self-stabilization: chaos campaign with recovery accounting *)

let e8 () =
  header "E8"
    "Chaos campaign: fault gap / containment radius per corruption model (n=24)";
  let g = Generators.random_connected (rng_of 800) ~n:24 ~m:48 in
  let mean_gap inj =
    match List.filter_map (fun i -> i.Chaos.gap) inj with
    | [] -> "-"
    | gaps ->
        Printf.sprintf "%.1f"
          (float_of_int (List.fold_left ( + ) 0 gaps) /. float_of_int (List.length gaps))
  in
  let max_radius inj =
    match List.filter_map (fun i -> i.Chaos.radius) inj with
    | [] -> "-"
    | rs -> string_of_int (List.fold_left max 0 rs)
  in
  let touched inj = List.fold_left (fun acc i -> acc + i.Chaos.touched) 0 inj in
  let cell (type s) name (module P : Protocol.S with type state = s) sched plan =
    let module C = Chaos.Make (P) in
    let rng = rng_of (801 + (Hashtbl.hash (name, Fault.Plan.name plan) mod 997)) in
    let e = C.run_episode g sched rng plan in
    Format.printf "%-5s %-30s %4d %8s %7s %8d  %s@." name (Fault.Plan.name plan)
      (List.length e.C.injections) (mean_gap e.C.injections) (max_radius e.C.injections)
      (touched e.C.injections)
      (Watchdog.verdict_name e.C.verdict)
  in
  Format.printf "%-5s %-30s %4s %8s %7s %8s  %s@." "algo" "plan" "inj" "gap" "radius"
    "touched" "verdict";
  let daemon = Scheduler.Central Scheduler.Random_daemon in
  List.iter
    (fun plan ->
      cell "bfs" (module Bfs_builder.P) daemon plan;
      cell "mst" (module Mst_builder.P) daemon plan;
      cell "spt" (module Spt_builder.P) daemon plan)
    Fault.Plan.defaults;
  (* The potential-greedy daemons bracket the recovery cost of one cell:
     greedy-min descends Phi steepest, greedy-max drags recovery out. *)
  Format.printf "-- adversarial daemon drag (spt, random:3 at silence) --@.";
  List.iter
    (fun (label, d) ->
      cell label (module Spt_builder.P) d (Fault.Plan.make (Fault.Plan.Random_nodes 3)))
    [ ("min", Scheduler.Central Scheduler.Greedy_min_phi);
      ("max", Scheduler.Central Scheduler.Greedy_max_phi) ];
  Format.printf
    "shape: every episode converges back to the silent legal tree; the perturbation@.";
  Format.printf
    "stays within a few hops of the injected nodes (containment), and the greedy-max@.";
  Format.printf "daemon pays more steps than steepest descent for the same fault.@."

(* ------------------------------------------------------------------ *)
(* E9 — the comparison table of Section I-D *)

let e9 () =
  header "E9" "Algorithm comparison (Section I-D): silence, space, rounds";
  let rng = rng_of 900 in
  let g = Generators.gnp rng ~n:16 ~p:0.3 in
  Format.printf "graph: n=%d m=%d@." (Graph.n g) (Graph.m g);
  Format.printf "%-16s %8s %8s %8s %8s  %s@." "algorithm" "silent" "legal" "rounds"
    "bits" "notes";
  let row (type s) name (module P : Protocol.S with type state = s) ~adversarial ~notes =
    let module En = Engine.Make (P) in
    let rng = rng_of 901 in
    let init = if adversarial then En.adversarial rng g else En.initial g in
    let r = En.run g Scheduler.Synchronous rng ~init in
    Format.printf "%-16s %8b %8b %8d %8d  %s@." name r.En.silent r.En.legal r.En.rounds
      r.En.max_bits notes
  in
  row "pls-bfs" (module Bfs_builder.P) ~adversarial:true ~notes:"Section III";
  row "adhoc-bfs" (module Adhoc_bfs.P) ~adversarial:true ~notes:"root known a priori";
  row "pls-mst" (module Mst_builder.P) ~adversarial:false ~notes:"Corollary 6.1";
  row "pls-mst(adv)" (module Mst_builder.P) ~adversarial:true ~notes:"from garbage";
  row "compact-mst" (module Compact_mst.P) ~adversarial:false ~notes:"uncertified Boruvka";
  row "fullinfo-mst"
    (module Fullinfo.Mst_instance.P)
    ~adversarial:false ~notes:"[15]-style, huge registers";
  row "pls-mdst" (module Mdst_builder.P) ~adversarial:false ~notes:"Corollary 8.1";
  row "fullinfo-mdst"
    (module Fullinfo.Mdst_instance.P)
    ~adversarial:false ~notes:"[15]-style, huge registers";
  let fr = Compact_mst.failure_rate (rng_of 902) g ~trials:20 in
  Format.printf
    "compact-mst from adversarial starts: silent-but-WRONG in %.0f%% of 20 trials — why \
     silence needs certificates (the Omega(log^2 n) lower bound of [50]).@."
    (100.0 *. fr)

(* ------------------------------------------------------------------ *)
(* E10 — Lemma 3.1/7.1: potential monotonicity *)

let e10 () =
  header "E10" "Potential functions (Lemmas 3.1/7.1): strict decrease per improvement";
  let rng = rng_of 1000 in
  let g = Generators.random_connected rng ~n:20 ~m:44 in
  let t = ref (Tree.of_graph_bfs g ~root:0) in
  let trace = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let labels = Fragment_labels.prover g !t in
    trace := Fragment_labels.potential g !t labels :: !trace;
    match Fragment_labels.violation_level g labels with
    | None -> continue_ := false
    | Some lvl -> (
        let cand = ref None in
        Array.iter
          (fun (l : Fragment_labels.label) ->
            if !cand = None then
              let en = l.(lvl) in
              match en.Fragment_labels.out with
              | Some out -> (
                  match
                    Fragment_labels.min_outgoing g labels ~level:lvl
                      ~frag:en.Fragment_labels.frag
                  with
                  | Some m when not (E.equal m out) -> cand := Some m
                  | _ -> ())
              | None -> ())
          labels;
        match !cand with
        | None -> continue_ := false
        | Some e ->
            let cycle = Tree.fundamental_cycle !t ~e:(e.E.u, e.E.v) in
            let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
            let f =
              List.fold_left
                (fun best (a, b) ->
                  let eb = E.make a b (Graph.weight g a b) in
                  match best with
                  | None -> Some eb
                  | Some c -> if E.compare eb c > 0 then Some eb else best)
                None (pairs cycle)
              |> Option.get
            in
            t := Tree.swap !t ~add:(e.E.u, e.E.v) ~remove:(f.E.u, f.E.v))
  done;
  let tr = List.rev !trace in
  Format.printf "MST phi trace (%d improvements): %s@."
    (List.length tr - 1)
    (String.concat " -> " (List.map string_of_int tr));
  Format.printf
    "(phi is computed against the CURRENT tree's trace depth k, which can grow      mid-run, so the raw values may locally bump; the strictly decreasing      companion is the tree weight, and phi at fixed k decreases per the paper)@.";
  Format.printf "ends at MST: %b@." (Mst.is_mst g !t);
  let g2 = Generators.complete (rng_of 1001) ~n:9 in
  let t2 = ref (Tree.of_graph_bfs g2 ~root:0) in
  let phi t =
    let d = Tree.max_degree t in
    let nd =
      List.length (List.filter (fun v -> Tree.degree t v = d) (List.init 9 Fun.id))
    in
    (9 * d) + nd
  in
  let steps = ref [ phi !t2 ] in
  let rec improve () =
    match Min_degree.improve_once g2 !t2 with
    | Some t' ->
        t2 := t';
        steps := phi !t2 :: !steps;
        improve ()
    | None -> ()
  in
  improve ();
  Format.printf "MDST (n*D + N_D) trajectory on K9: %s@."
    (String.concat " -> " (List.map string_of_int (List.rev !steps)));
  Format.printf "final degree: %d (Hamiltonian path = 2)@." (Tree.max_degree !t2)

(* ------------------------------------------------------------------ *)
(* E11 — extension: silent self-stabilizing shortest-path trees *)

module SE = Spt_builder.Engine

let e11 () =
  header "E11" "SPT extension: weighted shortest-path trees (related work [38],[44])";
  Format.printf "%6s %8s %8s %8s %10s@." "n" "rounds" "bits" "legal" "phi(end)";
  par_rows [ 16; 32; 64; 128 ] (fun ppf n ->
      let rng = rng_of (1100 + n) in
      let g = Generators.random_connected rng ~n ~m:(2 * n) in
      let profile = new_profile () in
      let r, wall_ns =
        timed (fun () ->
            SE.run ?profile g Scheduler.Synchronous rng ~init:(SE.adversarial rng g))
      in
      Format.fprintf ppf "%6d %8d %8d %8b %10d@." n r.SE.rounds r.SE.max_bits
        (Spt_builder.is_spt g r.SE.states)
        (Spt_builder.potential g r.SE.states);
      pp_profile ppf profile;
      [
        record ~exp:"E11" ~algo:"spt" ~n ~rounds:r.SE.rounds ~steps:r.SE.steps
          ~max_bits:r.SE.max_bits ~wall_ns ();
      ]);
  Format.printf "shape: silent on the exact Dijkstra distances, O(log n) bits.@."

(* ------------------------------------------------------------------ *)
(* E12 — extension: minimum-degree Steiner trees (the [33] setting) *)

let e12 () =
  header "E12" "Steiner extension: FR-style degree reduction over terminal sets";
  Format.printf "%6s %6s %10s %10s %10s %8s@." "n" "|S|" "metric deg" "final deg"
    "exact(set)" "swaps";
  par_rows [ (12, 4); (16, 5); (24, 6); (32, 8) ] (fun ppf (n, nt) ->
      let rng = rng_of (1200 + n) in
      let g = Generators.gnp rng ~n ~p:0.3 in
      let terminals = List.init nt (fun i -> i * (n / nt)) in
      let base = Steiner.prune ~terminals (Steiner.metric_mst g ~terminals) in
      let final, swaps = Steiner.min_degree_steiner g ~terminals in
      let exact =
        if List.length final.Steiner.nodes <= 10 then
          string_of_int (Steiner.exact_degree g ~nodes:final.Steiner.nodes)
        else "?"
      in
      Format.fprintf ppf "%6d %6d %10d %10d %10s %8d@." n nt (Steiner.degree base)
        (Steiner.degree final) exact swaps;
      []);
  Format.printf
    "shape: the local search never worsens the metric tree's degree and tracks the      node-set optimum within one where the optimum is computable.@."

(* ------------------------------------------------------------------ *)
(* BIG — the big-n tier (SCALING.md): the struct-of-arrays engine on
   sparse graphs at n = 10^3..10^5. The fixed-width builders (bfs, spt)
   run to silence from adversarial registers through Engine_packed; the
   variable-width builders (mst, mdst) run the boxed engine from the
   designated boot configuration under an explicit step budget — their
   convergence cost grows like n^3 steps (see the E1 table), so the
   budget rows record honest partial progress, never silence. Records
   carry tier "big"; the @bigbench alias regenerates the n=10^3 column
   (--big-nmax 1000) and bench-diffs it against the committed
   baseline. *)

module BP = Bfs_builder.Engine_packed
module SP = Spt_builder.Engine_packed

let ebig () =
  header "BIG" "big-n tier (SCALING.md): packed engine, sparse m = 2n";
  Format.printf "%-5s %7s %8s %11s %6s %6s %11s@." "algo" "n" "rounds" "steps" "bits"
    "legal" "wall ms";
  let keep ns = List.filter (fun n -> n <= big_nmax) ns in
  let cells =
    List.map (fun n -> `Bfs n) (keep [ 1_000; 10_000; 100_000 ])
    @ List.map (fun n -> `Spt n) (keep [ 1_000; 10_000; 100_000 ])
    @ List.map (fun n -> `Mst n) (keep [ 1_000; 10_000 ])
    @ List.map (fun n -> `Mdst n) (keep [ 1_000 ])
  in
  par_rows cells (fun ppf cell ->
      let row ~exp ~algo ~n ~rounds ~steps ~max_bits ~legal ~silent ~profile wall_ns =
        Format.fprintf ppf "%-5s %7d %8d %11d %6d %6b %11.1f%s@." algo n rounds steps
          max_bits legal
          (float_of_int wall_ns /. 1e6)
          (if silent then "" else "  (step budget hit)");
        pp_profile ppf profile;
        [ record ~tier:"big" ~exp ~algo ~n ~rounds ~steps ~max_bits ~wall_ns () ]
      in
      match cell with
      | `Bfs n ->
          let rng = rng_of (1300 + n) in
          let g = Generators.random_connected rng ~n ~m:(2 * n) in
          let profile = new_profile () in
          let r, wall_ns =
            timed (fun () ->
                BP.run ?profile g Scheduler.Synchronous rng ~init:(BP.adversarial rng g))
          in
          row ~exp:"E1" ~algo:"bfs" ~n ~rounds:r.BP.rounds ~steps:r.BP.steps
            ~max_bits:r.BP.max_bits
            ~legal:(Bfs_builder.is_bfs_tree g r.BP.states)
            ~silent:r.BP.silent ~profile wall_ns
      | `Spt n ->
          let rng = rng_of (1400 + n) in
          let g = Generators.random_connected rng ~n ~m:(2 * n) in
          let profile = new_profile () in
          let r, wall_ns =
            timed (fun () ->
                SP.run ?profile g Scheduler.Synchronous rng ~init:(SP.adversarial rng g))
          in
          row ~exp:"E2" ~algo:"spt" ~n ~rounds:r.SP.rounds ~steps:r.SP.steps
            ~max_bits:r.SP.max_bits
            ~legal:(Spt_builder.is_spt g r.SP.states)
            ~silent:r.SP.silent ~profile wall_ns
      | `Mst n ->
          let rng = rng_of (1500 + n) in
          let g = Generators.random_connected rng ~n ~m:(2 * n) in
          let profile = new_profile () in
          let r, wall_ns =
            timed (fun () ->
                ME.run ~max_steps:(20 * n) ?profile g Scheduler.Synchronous rng
                  ~init:(ME.initial g))
          in
          row ~exp:"E1" ~algo:"mst" ~n ~rounds:r.ME.rounds ~steps:r.ME.steps
            ~max_bits:r.ME.max_bits ~legal:r.ME.legal ~silent:r.ME.silent ~profile
            wall_ns
      | `Mdst n ->
          let rng = rng_of (1600 + n) in
          let g = Generators.random_connected rng ~n ~m:(2 * n) in
          let profile = new_profile () in
          let r, wall_ns =
            timed (fun () ->
                DE.run ~max_steps:(20 * n) ?profile g Scheduler.Synchronous rng
                  ~init:(DE.initial g))
          in
          row ~exp:"E2" ~algo:"mdst" ~n ~rounds:r.DE.rounds ~steps:r.DE.steps
            ~max_bits:r.DE.max_bits ~legal:r.DE.legal ~silent:r.DE.silent ~profile
            wall_ns);
  Format.printf
    "shape: bfs/spt reach silence in O(diameter) rounds with flat O(n + m) memory; the \
     label-stacked mst/mdst rows record budgeted progress (their step complexity is the \
     object of study at small n, not a scaling target).@."

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel) *)

let micro () =
  header "micro" "Bechamel micro-benchmarks of core operations";
  let open Bechamel in
  let rng = rng_of 1100 in
  let g = Generators.random_connected rng ~n:64 ~m:128 in
  let t = Tree.of_graph_bfs g ~root:0 in
  let nca_labels = Nca_labels.prover t in
  let dist_labels = Distance_pls.prover t in
  let parent = Tree.parents t in
  let mst_states = ME.initial g in
  let tests =
    [
      Test.make ~name:"nca-compute"
        (Staged.stage (fun () -> ignore (Nca_labels.nca nca_labels.(17) nca_labels.(42))));
      Test.make ~name:"distance-pls-verify-node"
        (Staged.stage (fun () ->
             ignore (Distance_pls.verify (Pls.ctx_of g ~parent ~labels:dist_labels 17))));
      Test.make ~name:"fragment-prover-n64"
        (Staged.stage (fun () -> ignore (Fragment_labels.prover g t)));
      Test.make ~name:"mst-step-one-node"
        (Staged.stage (fun () -> ignore (Mst_builder.P.step (ME.view g mst_states 17))));
      Test.make ~name:"kruskal-n64" (Staged.stage (fun () -> ignore (Mst.kruskal g)));
      Test.make ~name:"fr-sequential-n64"
        (Staged.stage (fun () -> ignore (Min_degree.furer_raghavachari g ~root:0)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" [ test ]) in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          instance raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "  %-34s %12.1f ns/op@." name est
          | _ -> Format.printf "  %-34s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let () =
  let all =
    [
      ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
      ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12);
      ("BIG", ebig); ("micro", micro);
    ]
  in
  List.iter (fun (id, f) -> if selected id then f ()) all;
  Pool.shutdown pool;
  write_bench_repro ();
  Format.printf "@.done.@."
