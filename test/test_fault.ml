(* Fault-injection layer: corruption invariants (exactly [min k n]
   registers change, the input is never aliased, pinned seeds are
   deterministic), the explicit-node corruptor's input handling (dedupe,
   out-of-range, empty), the single-bit-flip payload, the fault-plan
   grammar round-trip, and target selection on known topologies. *)

open Repro_graph
open Repro_runtime

let seed i = Random.State.make [| 0xFA17; i |]

(* Integer registers: initial values are small (< 1000), corrupted draws
   land in [1000, 1_001_000), so a corrupted register never equals its
   original value and the changed set is exactly the corrupted set. *)
let random_state rng _g _v = 1000 + Random.State.int rng 1_000_000

let mk_states n = Array.init n (fun v -> v)
let changed a b = Array.to_list (Array.mapi (fun i x -> (i, x <> b.(i)) ) a)
                  |> List.filter snd |> List.map fst

let prop ?(count = 30) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 24 in
    let* extra = int_range 0 n in
    let* sd = int_bound 1_000_000 in
    return (sd, Generators.random_connected (Random.State.make [| sd |]) ~n ~m:(n - 1 + extra)))

(* ------------------------------------------------------------------ *)
(* corrupt *)

let prop_corrupt_count =
  prop "corrupt changes exactly min k n registers"
    QCheck2.Gen.(
      let* (sd, g) = gen_graph in
      let* k = int_range (-2) 30 in
      return (sd, g, k))
    (fun (sd, g, k) ->
      let n = Graph.n g in
      let states = mk_states n in
      let out = Fault.corrupt (seed sd) ~random_state g states ~k in
      List.length (changed states out) = min (max k 0) n && Array.length out = n)

let prop_corrupt_no_alias =
  prop "corrupt never returns the input array"
    QCheck2.Gen.(
      let* (sd, g) = gen_graph in
      let* k = int_range 0 5 in
      return (sd, g, k))
    (fun (sd, g, k) ->
      let states = mk_states (Graph.n g) in
      let out = Fault.corrupt (seed sd) ~random_state g states ~k in
      out != states && Array.for_all (fun v -> v < 1000) states)

let prop_corrupt_deterministic =
  prop "corrupt is deterministic under a pinned seed" gen_graph (fun (sd, g) ->
      let states = mk_states (Graph.n g) in
      let a = Fault.corrupt (seed sd) ~random_state g states ~k:3 in
      let b = Fault.corrupt (seed sd) ~random_state g states ~k:3 in
      a = b)

let test_corrupt_noop_no_draws () =
  (* k <= 0 must not consume randomness: the RNG stream afterwards is
     identical to a fresh one. *)
  let g = Generators.path (seed 1) ~n:6 in
  let states = mk_states 6 in
  let rng = seed 42 in
  let out = Fault.corrupt rng ~random_state g states ~k:0 in
  Alcotest.(check bool) "copy equals input" true (out = states);
  Alcotest.(check bool) "copy is fresh" true (out != states);
  Alcotest.(check int) "no RNG draw happened" (Random.State.bits (seed 42))
    (Random.State.bits rng)

(* ------------------------------------------------------------------ *)
(* corrupt_nodes *)

let test_corrupt_nodes_dedupe () =
  let g = Generators.path (seed 2) ~n:8 in
  let states = mk_states 8 in
  let out = Fault.corrupt_nodes (seed 3) ~random_state g states [ 5; 5; 2; 5; 2 ] in
  Alcotest.(check (list int)) "exactly the listed nodes, once each" [ 2; 5 ]
    (changed states out)

let test_corrupt_nodes_out_of_range () =
  let g = Generators.path (seed 2) ~n:8 in
  let states = mk_states 8 in
  List.iter
    (fun bad ->
      Alcotest.check_raises
        (Printf.sprintf "node %d rejected" bad)
        (Invalid_argument
           (Printf.sprintf "Fault.corrupt_nodes: node id %d out of range [0,8)" bad))
        (fun () -> ignore (Fault.corrupt_nodes (seed 3) ~random_state g states [ 1; bad ])))
    [ -1; 8; 100 ];
  let out = Fault.corrupt_nodes (seed 3) ~random_state g states [] in
  Alcotest.(check (list int)) "empty list is a no-op copy" [] (changed states out)

(* ------------------------------------------------------------------ *)
(* bitflip *)

type reg = { a : int; b : int }

let is_pow2 x = x > 0 && x land (x - 1) = 0

let prop_bitflip_single_bit =
  prop ~count:100 "bitflip flips exactly one low bit of one field"
    QCheck2.Gen.(
      let* sd = int_bound 1_000_000 in
      let* a = int_bound 10_000 in
      let* b = int_bound 10_000 in
      return (sd, a, b))
    (fun (sd, a, b) ->
      let s = { a; b } in
      let s' = Fault.bitflip (seed sd) s in
      let da = s.a lxor s'.a and db = s.b lxor s'.b in
      (is_pow2 da && da < 65536 && db = 0) || (is_pow2 db && db < 65536 && da = 0))

let test_bitflip_deterministic () =
  let s = { a = 12345; b = 678 } in
  let x = Fault.bitflip (seed 9) s in
  let y = Fault.bitflip (seed 9) s in
  Alcotest.(check bool) "same seed, same flip" true (x.a = y.a && x.b = y.b);
  Alcotest.(check bool) "original untouched" true (s.a = 12345 && s.b = 678)

(* ------------------------------------------------------------------ *)
(* Plan grammar *)

let plan = Alcotest.testable Fault.Plan.pp ( = )

let test_plan_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check (result plan string))
        (Fault.Plan.name p) (Ok p)
        (Fault.Plan.of_string (Fault.Plan.name p)))
    (Fault.Plan.defaults
    @ Fault.Plan.
        [
          make (Nodes [ 1; 2; 3 ]) ~payload:Bitflip ~timing:(Periodic 7);
          make Subtree ~payload:(Stale 4) ~timing:(Poisson 0.25);
          make Root;
        ])

let test_plan_parsing () =
  let open Fault.Plan in
  let ok s p = Alcotest.(check (result plan string)) s (Ok p) (of_string s) in
  ok "random:3" (make (Random_nodes 3));
  ok "root/bitflip" (make Root ~payload:Bitflip);
  ok "deepest@periodic:5" (make Deepest ~timing:(Periodic 5));
  ok "nodes:2+0+2/stale:1@silence" (make (Nodes [ 2; 0; 2 ]) ~payload:(Stale 1));
  List.iter
    (fun s ->
      match Fault.Plan.of_string s with
      | Error _ -> ()
      | Ok p -> Alcotest.failf "%S parsed as %s" s (Fault.Plan.name p))
    [ ""; "random"; "random:0"; "root/none"; "root@sometimes"; "root/bitflip@poisson:2" ];
  match parse_list "root, deepest/bitflip" with
  | Ok [ p1; p2 ] ->
      Alcotest.check plan "list head" (make Root) p1;
      Alcotest.check plan "list tail" (make Deepest ~payload:Bitflip) p2
  | _ -> Alcotest.fail "parse_list failed"

(* ------------------------------------------------------------------ *)
(* Target selection *)

let test_select () =
  (* path 0-1-2-...-9: root is 0, the unique deepest node is 9. *)
  let g = Generators.path (seed 5) ~n:10 in
  Alcotest.(check (list int)) "root" [ 0 ] (Fault.select (seed 6) g Fault.Plan.Root);
  Alcotest.(check (list int)) "deepest" [ 9 ] (Fault.select (seed 6) g Fault.Plan.Deepest);
  Alcotest.(check (list int)) "explicit nodes, deduped, sorted" [ 1; 4 ]
    (Fault.select (seed 6) g (Fault.Plan.Nodes [ 4; 1; 4 ]));
  Alcotest.check_raises "explicit out-of-range"
    (Invalid_argument "Fault.corrupt_nodes: node id 10 out of range [0,10)") (fun () ->
      ignore (Fault.select (seed 6) g (Fault.Plan.Nodes [ 10 ])));
  let r = Fault.select (seed 7) g (Fault.Plan.Random_nodes 4) in
  Alcotest.(check int) "random:4 picks 4" 4 (List.length r);
  Alcotest.(check (list int)) "random nodes sorted+deduped" (List.sort_uniq compare r) r;
  (* a subtree of the canonical BFS tree of a path is a suffix i..9 *)
  let s = Fault.select (seed 8) g Fault.Plan.Subtree in
  let lo = List.hd s in
  Alcotest.(check (list int)) "subtree = suffix of the path"
    (List.init (10 - lo) (fun i -> lo + i))
    s

let test_stale_payload () =
  let g = Generators.path (seed 5) ~n:6 in
  let states = mk_states 6 in
  let old = Array.make 6 777 in
  let p = Fault.Plan.make Fault.Plan.Root ~payload:(Fault.Plan.Stale 2) in
  let nodes, out =
    Fault.apply_plan (seed 9) ~random_state ~stale:(fun d -> if d = 2 then Some old else None)
      g states p
  in
  Alcotest.(check (list int)) "root injected" [ 0 ] nodes;
  Alcotest.(check int) "stale register replayed" 777 out.(0);
  (* without history the payload falls back to randomize *)
  let nodes, out = Fault.apply_plan (seed 9) ~random_state g states p in
  Alcotest.(check (list int)) "root injected (fallback)" [ 0 ] nodes;
  Alcotest.(check bool) "fallback randomized" true (out.(0) >= 1000)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_fault"
    [
      ( "corrupt",
        [
          prop_corrupt_count;
          prop_corrupt_no_alias;
          prop_corrupt_deterministic;
          Alcotest.test_case "k<=0 is a no-op copy without draws" `Quick
            test_corrupt_noop_no_draws;
        ] );
      ( "corrupt_nodes",
        [
          Alcotest.test_case "dedupes the node list" `Quick test_corrupt_nodes_dedupe;
          Alcotest.test_case "rejects out-of-range ids" `Quick
            test_corrupt_nodes_out_of_range;
        ] );
      ( "bitflip",
        [
          prop_bitflip_single_bit;
          Alcotest.test_case "deterministic and non-mutating" `Quick
            test_bitflip_deterministic;
        ] );
      ( "plan",
        [
          Alcotest.test_case "grammar round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "parsing" `Quick test_plan_parsing;
        ] );
      ( "select",
        [
          Alcotest.test_case "targets on a path" `Quick test_select;
          Alcotest.test_case "stale payload replay + fallback" `Quick test_stale_payload;
        ] );
    ]
