(* Service mode: the churn grammar parses and round-trips, hand-written
   ops are hardened against invalid edits (Topology.check), canned
   generators only ever produce valid sequences, register migration
   follows the swap-rename contract, and full episodes recover under
   churn, count their degradation-ladder rungs, stay bit-deterministic,
   and attribute recovery moves to churn events in the causal trace. *)

open Repro_graph
open Repro_runtime
open Repro_core
open Repro_service

let seed i = Random.State.make [| 0x5E7C; i |]

(* ------------------------------------------------------------------ *)
(* Grammar *)

let test_grammar_roundtrip () =
  List.iter
    (fun s ->
      match Churn.of_string s with
      | Error msg -> Alcotest.failf "%S failed to parse: %s" s msg
      | Ok t -> Alcotest.(check string) s s (Churn.name t))
    [
      "add:0+3+9@silence";
      "del:2+5@silence";
      "reweight:1+4+77@every:3";
      "join:1+7@silence";
      "join:0+5+3+6@silence";
      "leave:4@silence";
      "add:0+1+2;del:0+1;leave:3@every:10";
      "flash-crowd:3@every:5";
      "regional:2@silence";
      "maintenance:4@silence";
    ]

let test_grammar_default_timing () =
  match Churn.of_string "flash-crowd:2" with
  | Ok t ->
      Alcotest.(check bool) "silence is the default" true (t.Churn.timing = Churn.At_silence);
      Alcotest.(check string) "name spells it out" "flash-crowd:2@silence" (Churn.name t)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_grammar_rejects () =
  List.iter
    (fun s ->
      match Churn.of_string s with
      | Error _ -> ()
      | Ok t -> Alcotest.failf "%S parsed as %s" s (Churn.name t))
    [
      "";
      "add:1+2" (* wrong arity *);
      "del:1+2+3" (* wrong arity *);
      "del:1+x" (* non-numeric *);
      "join:" (* no anchors *);
      "join:1" (* odd anchor list *);
      "join:1+2+3" (* odd anchor list *);
      "leave:" (* missing node *);
      "flash-crowd:0" (* non-positive count *);
      "regional:-1";
      "maintenance:2@every:0" (* non-positive period *);
      "add:1+2+3@sometimes" (* unknown timing *);
      "demolish:4" (* unknown op *);
    ]

let test_parse_list () =
  match Churn.parse_list "flash-crowd:2, del:0+1@every:4" with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first" "flash-crowd:2@silence" (Churn.name a);
      Alcotest.(check string) "second" "del:0+1@every:4" (Churn.name b)
  | Ok l -> Alcotest.failf "expected 2 traces, got %d" (List.length l)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Input hardening: Topology.check *)

(* Path 0-1-2-3-4: every interior edge is a bridge, so disconnection
   cases are easy to stage. *)
let path5 () = Generators.path (seed 1) ~n:5

let expect_reject what g op =
  match Topology.check g op with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected rejection" what

let test_check_rejects_ranges () =
  let g = path5 () in
  expect_reject "add endpoint oob" g (Churn.Add_edge (0, 9, 3));
  expect_reject "add negative endpoint" g (Churn.Add_edge (-1, 2, 3));
  expect_reject "del endpoint oob" g (Churn.Del_edge (5, 0));
  expect_reject "reweight endpoint oob" g (Churn.Reweight (0, 17, 3));
  expect_reject "join anchor oob" g (Churn.Join [ (9, 4) ]);
  expect_reject "leave oob" g (Churn.Leave 5)

let test_check_rejects_edges () =
  let g = path5 () in
  expect_reject "self-loop" g (Churn.Add_edge (2, 2, 3));
  expect_reject "duplicate edge" g (Churn.Add_edge (1, 0, 9));
  expect_reject "del absent edge" g (Churn.Del_edge (0, 2));
  expect_reject "reweight absent edge" g (Churn.Reweight (0, 4, 9))

let test_check_rejects_disconnection () =
  let g = path5 () in
  expect_reject "bridge delete" g (Churn.Del_edge (1, 2));
  expect_reject "cut-vertex leave" g (Churn.Leave 2);
  let lone = Graph.of_edge_list 1 [] in
  expect_reject "last node" lone (Churn.Leave 0)

let test_check_rejects_anchors () =
  let g = path5 () in
  expect_reject "empty anchors" g (Churn.Join []);
  expect_reject "duplicate anchors" g (Churn.Join [ (1, 5); (1, 6) ])

let test_check_accepts_valid () =
  let g = path5 () in
  List.iter
    (fun (what, op) ->
      match Topology.check g op with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: unexpectedly rejected: %s" what msg)
    [
      ("chord add", Churn.Add_edge (0, 4, 999));
      ("reweight existing", Churn.Reweight (0, 1, 999));
      ("join", Churn.Join [ (2, 999); (4, 998) ]);
      ("leaf leave", Churn.Leave 4);
    ];
  (* a delete is fine once a parallel path exists *)
  let g' = Graph.add_edge g 0 4 999 in
  match Topology.check g' (Churn.Del_edge (1, 2)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "cycle delete rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Canned generators and migration *)

let test_expand_valid_sequences () =
  List.iter
    (fun spec ->
      List.iter
        (fun sd ->
          let rng = seed sd in
          let g0 = Generators.random_connected rng ~n:10 ~m:14 in
          let ops = Churn.expand rng g0 spec in
          Alcotest.(check bool) "non-empty" true (ops <> []);
          let g =
            List.fold_left
              (fun g op ->
                (* each op re-parses as a one-op spec… *)
                (match Churn.of_string (Churn.op_name op) with
                | Ok _ -> ()
                | Error msg -> Alcotest.failf "%s does not re-parse: %s" (Churn.op_name op) msg);
                (* …and applies cleanly in sequence (apply re-checks) *)
                fst (Topology.apply g op))
              g0 ops
          in
          Alcotest.(check bool) "still connected" true (Traversal.is_connected g);
          match spec with
          | Churn.Flash_crowd _ ->
              Alcotest.(check int) "flash crowd returns to n0" (Graph.n g0) (Graph.n g)
          | _ -> ())
        [ 2; 3; 4; 5 ])
    [ Churn.Flash_crowd 3; Churn.Regional 2; Churn.Maintenance 3 ]

let test_migrate_swap_and_grow () =
  let g = Generators.random_connected (seed 6) ~n:8 ~m:12 in
  let states = Array.init 8 (fun i -> 100 + i) in
  (* grow: survivors verbatim, the joiner freshly derived *)
  let g1, mig = Topology.apply g (Churn.Join [ (0, 999) ]) in
  Alcotest.(check bool) "grow migration" true (mig = Topology.Grow 8);
  let s1 = Topology.migrate states mig ~fresh:(fun id -> 1000 + id) in
  Alcotest.(check int) "grown length" 9 (Array.length s1);
  Alcotest.(check int) "joiner fresh" 1008 s1.(8);
  Array.iteri (fun i s -> if i < 8 then Alcotest.(check int) "survivor" (100 + i) s) s1;
  (* leave a removable lower node: node 8 is the highest id, so the swap
     must rename 8's register into the hole *)
  let v =
    match
      List.find_opt
        (fun v -> Topology.check g1 (Churn.Leave v) = Ok ())
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    with
    | Some v -> v
    | None -> Alcotest.fail "no removable node below the highest id"
  in
  let g2, mig2 = Topology.apply g1 (Churn.Leave v) in
  ignore g2;
  Alcotest.(check bool) "swap migration" true
    (mig2 = Topology.Swap { removed = v; renamed_from = 8 });
  let s2 = Topology.migrate s1 mig2 ~fresh:(fun id -> 2000 + id) in
  Alcotest.(check int) "shrunk length" 8 (Array.length s2);
  Alcotest.(check int) "highest id renamed into the hole" 1008 s2.(v);
  for i = 0 to 7 do
    if i <> v then Alcotest.(check int) "others untouched" (100 + i) s2.(i)
  done

(* ------------------------------------------------------------------ *)
(* Episodes *)

module Bfs_tree = struct
  include Bfs_builder.P

  let parent_of (s : St_layer.t) = s.St_layer.parent
  let loop_free = false
end

module Mst_tree = struct
  include Mst_builder.P

  let parent_of (s : Mst_builder.state) = s.Mst_builder.st.St_layer.parent
  let loop_free = true
end

module SB = Service.Make (Bfs_tree)
module SM = Service.Make (Mst_tree)

let trace_of s =
  match Churn.of_string s with Ok t -> t | Error m -> Alcotest.failf "bad trace: %s" m

let test_episode_flash_crowd () =
  let g = Generators.random_connected (seed 10) ~n:12 ~m:18 in
  let r =
    SB.run ~watch_phi:true g ~sched:(Central Scheduler.Random_daemon)
      ~fallback:(Distributed 0.5) (seed 11) (trace_of "flash-crowd:2")
  in
  Alcotest.(check bool) "recovered" true r.Service.recovered;
  Alcotest.(check string) "verdict" "converged" (Watchdog.verdict_name r.Service.verdict);
  Alcotest.(check int) "2 joins + 2 leaves" 4 (List.length r.Service.events);
  Alcotest.(check int) "back to n0" 12 r.Service.n_final;
  List.iter
    (fun (e : Service.event_outcome) ->
      Alcotest.(check bool) (e.Service.op ^ " recovered") true e.Service.recovered;
      Alcotest.(check bool) (e.Service.op ^ " gap recorded") true (e.Service.gap <> None))
    r.Service.events;
  Alcotest.(check bool) "reads were served" true
    (List.exists (fun (e : Service.event_outcome) -> e.Service.queries > 0) r.Service.events)

let test_episode_deadline_pressure () =
  (* every:1 gives each first recovery attempt a single round — far too
     little for the MST builder, so the ladder must engage (the episode
     still ends recovered: later rungs get the full retry budget). *)
  let g = Generators.random_connected (seed 12) ~n:12 ~m:18 in
  let r =
    SM.run g ~sched:(Central Scheduler.Random_daemon) ~fallback:(Distributed 0.5)
      (seed 13) (trace_of "maintenance:3@every:1")
  in
  Alcotest.(check bool) "recovered despite the deadline" true r.Service.recovered;
  let retries =
    List.fold_left (fun a (e : Service.event_outcome) -> a + e.Service.retries) 0
      r.Service.events
  in
  Alcotest.(check bool) "ladder engaged" true (retries > 0)

let test_episode_deterministic () =
  let run () =
    let rng = seed 14 in
    let g = Generators.random_connected rng ~n:12 ~m:18 in
    SB.run g ~sched:(Central Scheduler.Random_daemon) ~fallback:(Distributed 0.5) rng
      (trace_of "regional:2")
  in
  Alcotest.(check bool) "same seed, same report" true (run () = run ())

let test_episode_sink_draws_no_rng () =
  let run events =
    let rng = seed 15 in
    let g = Generators.random_connected rng ~n:12 ~m:18 in
    SB.run ?events g ~sched:(Central Scheduler.Random_daemon) ~fallback:(Distributed 0.5)
      rng (trace_of "flash-crowd:2")
  in
  let plain = run None in
  let traced = run (Some (Events.ring ())) in
  Alcotest.(check bool) "traced = untraced" true (plain = traced)

(* Stream a full episode, then re-read it through Explain: churn events
   must be present, pass trace validation (monotone ids, causes
   precede), and anchor causal cones that attribute recovery moves. *)
let test_episode_churn_attribution () =
  let file = Filename.temp_file "service" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let rng = seed 16 in
      let g = Generators.random_connected rng ~n:12 ~m:18 in
      let r =
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let sink = Events.stream ~record_phi:true oc in
            Events.meta sink
              [
                ("algo", Metrics.Json.Str "bfs");
                ( "edges",
                  Metrics.Json.List
                    (Array.to_list (Graph.edges g)
                    |> List.map (fun (e : Graph.Edge.t) ->
                           Metrics.Json.List
                             [
                               Metrics.Json.Int e.u;
                               Metrics.Json.Int e.v;
                               Metrics.Json.Int e.w;
                             ])) );
              ];
            SB.run ~events:sink g ~sched:(Central Scheduler.Random_daemon)
              ~fallback:(Distributed 0.5) rng (trace_of "flash-crowd:2"))
      in
      Alcotest.(check bool) "episode recovered" true r.Service.recovered;
      let contents =
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Schema.validate_trace contents with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace validation failed: %s" msg);
      match Explain.parse contents with
      | Error msg -> Alcotest.failf "trace parse failed: %s" msg
      | Ok t ->
          Alcotest.(check bool) "churn events present" true (t.Explain.churns <> []);
          let report = Explain.analyze t in
          Alcotest.(check int) "report counts them" (List.length t.Explain.churns)
            report.Explain.total_churns;
          Alcotest.(check bool) "churn cones anchored" true (report.Explain.cones <> []);
          Alcotest.(check bool) "recovery moves attributed to the edits" true
            (report.Explain.fault_attributed > 0);
          Alcotest.(check bool) "the text renderer mentions churn" true
            (let txt = Explain.to_text report in
             let re = "churn" in
             let found = ref false in
             String.iteri
               (fun i _ ->
                 if
                   i + String.length re <= String.length txt
                   && String.sub txt i (String.length re) = re
                 then found := true)
               txt;
             !found))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repro_service"
    [
      ( "grammar",
        [
          Alcotest.test_case "traces round-trip through name" `Quick test_grammar_roundtrip;
          Alcotest.test_case "silence is the default timing" `Quick
            test_grammar_default_timing;
          Alcotest.test_case "malformed traces are rejected" `Quick test_grammar_rejects;
          Alcotest.test_case "comma-separated lists parse" `Quick test_parse_list;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "out-of-range endpoints rejected" `Quick
            test_check_rejects_ranges;
          Alcotest.test_case "duplicate/absent edges rejected" `Quick
            test_check_rejects_edges;
          Alcotest.test_case "disconnecting edits rejected" `Quick
            test_check_rejects_disconnection;
          Alcotest.test_case "bad anchor lists rejected" `Quick test_check_rejects_anchors;
          Alcotest.test_case "valid edits pass" `Quick test_check_accepts_valid;
        ] );
      ( "churn",
        [
          Alcotest.test_case "canned generators emit valid sequences" `Quick
            test_expand_valid_sequences;
          Alcotest.test_case "migration: grow appends, leave swap-renames" `Quick
            test_migrate_swap_and_grow;
        ] );
      ( "episodes",
        [
          Alcotest.test_case "flash crowd: recover, serve, return to n0" `Quick
            test_episode_flash_crowd;
          Alcotest.test_case "deadline pressure engages the ladder" `Quick
            test_episode_deadline_pressure;
          Alcotest.test_case "episodes are deterministic" `Quick test_episode_deterministic;
          Alcotest.test_case "event sinks draw no randomness" `Quick
            test_episode_sink_draws_no_rng;
          Alcotest.test_case "churn events anchor causal attribution" `Quick
            test_episode_churn_attribution;
        ] );
    ]
