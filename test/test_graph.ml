(* Tests for the repro_graph substrate: graphs, union-find, traversals,
   rooted trees, generators, reference MST, and reference MDST. *)

open Repro_graph
module E = Graph.Edge

let seed i = Random.State.make [| 0xC0FFEE; i |]

(* A small fixed graph used across cases:

      0 --1-- 1
      | \     |
      7  3    2
      |   \   |
      3 --5-- 2
       \      |
        4     6
         \    |
          4---+          *)
let fixture () =
  Graph.of_edges 5
    [ (0, 1, 1); (1, 2, 2); (0, 2, 3); (3, 4, 4); (2, 3, 5); (2, 4, 6); (0, 3, 7) ]

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_basics () =
  let g = fixture () in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m" 7 (Graph.m g);
  Alcotest.(check int) "deg 0" 3 (Graph.degree g 0);
  Alcotest.(check int) "deg 4" 2 (Graph.degree g 4);
  Alcotest.(check int) "max degree" 4 (Graph.max_degree g);
  Alcotest.(check bool) "has 0-1" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "has 1-0" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "no 1-4" false (Graph.has_edge g 1 4);
  Alcotest.(check int) "weight 2-3" 5 (Graph.weight g 2 3);
  Alcotest.(check int) "weight 3-2" 5 (Graph.weight g 3 2);
  Alcotest.(check int) "total weight" 28 (Graph.total_weight g);
  Alcotest.(check bool) "distinct" true (Graph.distinct_weights g)

let test_graph_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Graph.of_edges 3 [ (0, 0, 1) ]);
  expect_invalid (fun () -> Graph.of_edges 3 [ (0, 3, 1) ]);
  expect_invalid (fun () -> Graph.of_edges 3 [ (0, 1, 1); (1, 0, 2) ]);
  expect_invalid (fun () -> Graph.of_edges 0 [])

let test_edge_ops () =
  let e = E.make 5 2 9 in
  Alcotest.(check int) "normalized u" 2 e.E.u;
  Alcotest.(check int) "normalized v" 5 e.E.v;
  Alcotest.(check int) "other 2" 5 (E.other e 2);
  Alcotest.(check int) "other 5" 2 (E.other e 5);
  Alcotest.(check bool) "mem" true (E.mem e 5);
  Alcotest.(check bool) "not mem" false (E.mem e 9);
  (* Tie-break on equal weights keeps the order total. *)
  let a = E.make 0 1 7 and b = E.make 0 2 7 in
  Alcotest.(check bool) "tie break" true (E.compare a b < 0)

let test_neighbors_sorted () =
  let g = fixture () in
  let ns = Graph.neighbors g 2 |> Array.map fst in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] ns

(* ------------------------------------------------------------------ *)
(* Incremental edits *)

let test_edit_edges () =
  let g = fixture () in
  let g1 = Graph.add_edge g 1 4 9 in
  Alcotest.(check int) "m after add" 8 (Graph.m g1);
  Alcotest.(check int) "new weight" 9 (Graph.weight g1 4 1);
  Alcotest.(check int) "total after add" 37 (Graph.total_weight g1);
  Alcotest.(check int) "original untouched" 7 (Graph.m g);
  let g2 = Graph.remove_edge g1 1 4 in
  Alcotest.(check bool) "removed" false (Graph.has_edge g2 1 4);
  Alcotest.(check int) "total after remove" 28 (Graph.total_weight g2);
  let g3 = Graph.reweight_edge g 2 3 50 in
  Alcotest.(check int) "reweighted" 50 (Graph.weight g3 3 2);
  Alcotest.(check int) "total after reweight" 73 (Graph.total_weight g3)

let test_edit_nodes () =
  let g = fixture () in
  let g1 = Graph.add_node g [ (0, 10); (4, 11) ] in
  Alcotest.(check int) "n after join" 6 (Graph.n g1);
  Alcotest.(check int) "anchor edge" 10 (Graph.weight g1 5 0);
  Alcotest.(check int) "second anchor" 11 (Graph.weight g1 5 4);
  (* Remove node 1: node 4 is swap-renamed to 1. *)
  let g2 = Graph.remove_node g 1 in
  Alcotest.(check int) "n after leave" 4 (Graph.n g2);
  Alcotest.(check bool) "renamed 4's edge {3,4}" true (Graph.has_edge g2 3 1);
  Alcotest.(check bool) "renamed 4's edge {2,4}" true (Graph.has_edge g2 2 1);
  Alcotest.(check bool) "old {0,1} gone" true (Graph.weight g2 0 2 = 3);
  Alcotest.(check int) "edges dropped" 5 (Graph.m g2);
  (* Removing the highest id needs no rename. *)
  let g3 = Graph.remove_node g 4 in
  Alcotest.(check int) "n" 4 (Graph.n g3);
  Alcotest.(check int) "m" 5 (Graph.m g3)

let test_edit_validation () =
  let g = fixture () in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Graph.add_edge g 0 5 1);
  expect_invalid (fun () -> Graph.add_edge g (-1) 2 1);
  expect_invalid (fun () -> Graph.add_edge g 2 2 1);
  expect_invalid (fun () -> Graph.add_edge g 0 1 99);
  expect_invalid (fun () -> Graph.remove_edge g 1 4);
  expect_invalid (fun () -> Graph.remove_edge g 0 9);
  expect_invalid (fun () -> Graph.reweight_edge g 1 4 1);
  expect_invalid (fun () -> Graph.add_node g []);
  expect_invalid (fun () -> Graph.add_node g [ (7, 1) ]);
  expect_invalid (fun () -> Graph.add_node g [ (0, 1); (0, 2) ]);
  expect_invalid (fun () -> Graph.remove_node g 5);
  expect_invalid (fun () -> Graph.remove_node (Graph.of_edges 1 []) 0)

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial count" 6 (Union_find.count uf);
  Alcotest.(check bool) "union 0 1" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union 1 0 again" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same 0 1" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same 0 2" false (Union_find.same uf 0 2);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check int) "count" 3 (Union_find.count uf);
  Alcotest.(check int) "size of 1's set" 4 (Union_find.size uf 1);
  Alcotest.(check int) "size of 4's set" 1 (Union_find.size uf 4)

(* ------------------------------------------------------------------ *)
(* Traversal *)

let test_bfs () =
  let g = fixture () in
  let d = Traversal.bfs_distances g ~src:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 1; 1; 2 |] d;
  let p = Traversal.bfs_tree g ~src:0 in
  Alcotest.(check int) "root parent" (-1) p.(0);
  Alcotest.(check bool) "valid tree" true (Tree.check_parents ~root:0 p)

let test_components () =
  let g = Graph.of_edges 5 [ (0, 1, 1); (2, 3, 2) ] in
  let count, comp = Traversal.components g in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check bool) "0~1" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "2~3" true (comp.(2) = comp.(3));
  Alcotest.(check bool) "0!~2" true (comp.(0) <> comp.(2));
  Alcotest.(check bool) "disconnected" false (Traversal.is_connected g);
  Alcotest.(check bool) "fixture connected" true (Traversal.is_connected (fixture ()))

let test_diameter () =
  let st = seed 1 in
  Alcotest.(check int) "path diameter" 9 (Traversal.diameter (Generators.path st ~n:10));
  Alcotest.(check int) "ring diameter" 5 (Traversal.diameter (Generators.ring st ~n:10));
  Alcotest.(check int) "complete diameter" 1 (Traversal.diameter (Generators.complete st ~n:6));
  Alcotest.(check int) "star diameter" 2 (Traversal.diameter (Generators.star st ~n:8))

let test_dfs_order () =
  let g = fixture () in
  let pre, post = Traversal.dfs_order g ~src:0 in
  Alcotest.(check int) "pre src" 0 pre.(0);
  (* pre and post are permutations of 0..n-1 *)
  let check_perm name a =
    let b = Array.copy a in
    Array.sort compare b;
    Alcotest.(check (array int)) name (Array.init 5 (fun i -> i)) b
  in
  check_perm "pre perm" pre;
  check_perm "post perm" post

(* ------------------------------------------------------------------ *)
(* Tree *)

let star_tree () = Tree.of_parents ~root:0 [| -1; 0; 0; 0; 0 |]
let path_tree () = Tree.of_parents ~root:0 [| -1; 0; 1; 2; 3 |]

let test_tree_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  (* cycle 1 <-> 2 *)
  expect_invalid (fun () -> Tree.of_parents ~root:0 [| -1; 2; 1 |]);
  (* parent out of range *)
  expect_invalid (fun () -> Tree.of_parents ~root:0 [| -1; 7 |]);
  (* root must have -1 *)
  expect_invalid (fun () -> Tree.of_parents ~root:0 [| 1; 0 |]);
  Alcotest.(check bool) "check ok" true (Tree.check_parents ~root:0 [| -1; 0; 1 |]);
  Alcotest.(check bool) "check cycle" false (Tree.check_parents ~root:0 [| -1; 2; 1 |])

let test_tree_accessors () =
  let t = path_tree () in
  Alcotest.(check int) "depth 4" 4 (Tree.depth t 4);
  Alcotest.(check int) "size root" 5 (Tree.size t 0);
  Alcotest.(check int) "size 3" 2 (Tree.size t 3);
  Alcotest.(check int) "degree 0" 1 (Tree.degree t 0);
  Alcotest.(check int) "degree 2" 2 (Tree.degree t 2);
  Alcotest.(check int) "max degree path" 2 (Tree.max_degree t);
  let s = star_tree () in
  Alcotest.(check int) "max degree star" 4 (Tree.max_degree s);
  Alcotest.(check (list int)) "path to root" [ 3; 2; 1; 0 ] (Tree.path_to_root t 3)

let test_tree_ancestry () =
  let t = Tree.of_parents ~root:0 [| -1; 0; 0; 1; 1; 2 |] in
  Alcotest.(check bool) "anc 0 5" true (Tree.is_ancestor t 0 5);
  Alcotest.(check bool) "anc 1 4" true (Tree.is_ancestor t 1 4);
  Alcotest.(check bool) "anc self" true (Tree.is_ancestor t 3 3);
  Alcotest.(check bool) "not anc 1 5" false (Tree.is_ancestor t 1 5);
  Alcotest.(check int) "nca 3 4" 1 (Tree.nca t 3 4);
  Alcotest.(check int) "nca 3 5" 0 (Tree.nca t 3 5);
  Alcotest.(check int) "nca 1 3" 1 (Tree.nca t 1 3);
  Alcotest.(check (list int)) "tree path" [ 3; 1; 0; 2; 5 ] (Tree.tree_path t 3 5)

let test_fundamental_cycle () =
  let t = path_tree () in
  Alcotest.(check (list int)) "cycle 0-4" [ 0; 1; 2; 3; 4 ]
    (Tree.fundamental_cycle t ~e:(0, 4));
  Alcotest.(check (list int)) "cycle 2-4" [ 2; 3; 4 ] (Tree.fundamental_cycle t ~e:(2, 4));
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Tree.fundamental_cycle t ~e:(0, 1))

let test_swap () =
  let t = path_tree () in
  (* 0-1-2-3-4 plus edge {0,4}; remove {2,3}. New tree: 0-1-2, 0-4-3. *)
  let t' = Tree.swap t ~add:(0, 4) ~remove:(2, 3) in
  Alcotest.(check int) "root kept" 0 (Tree.root t');
  Alcotest.(check int) "4's parent" 0 (Tree.parent t' 4);
  Alcotest.(check int) "3's parent" 4 (Tree.parent t' 3);
  Alcotest.(check int) "2's parent" 1 (Tree.parent t' 2);
  Alcotest.(check bool) "still has 0-1" true (Tree.mem_edge t' 0 1);
  Alcotest.(check bool) "no more 2-3" false (Tree.mem_edge t' 2 3);
  (* Swapping back gives the original edge set. *)
  let t'' = Tree.swap t' ~add:(2, 3) ~remove:(0, 4) in
  Alcotest.(check bool) "round trip" true (Tree.same_edges t t'')

let test_swap_validation () =
  let t = path_tree () in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Tree.swap t ~add:(0, 4) ~remove:(0, 4));
  expect_invalid (fun () -> Tree.swap t ~add:(0, 1) ~remove:(2, 3));
  (* {0,2} does not cross the cut of {3,4} *)
  expect_invalid (fun () -> Tree.swap t ~add:(0, 2) ~remove:(3, 4))

(* ------------------------------------------------------------------ *)
(* Generators *)

let check_connected_simple name g =
  Alcotest.(check bool) (name ^ " connected") true (Traversal.is_connected g);
  Alcotest.(check bool) (name ^ " distinct weights") true (Graph.distinct_weights g)

let test_generators () =
  let st = seed 2 in
  check_connected_simple "gnp" (Generators.gnp st ~n:40 ~p:0.05);
  check_connected_simple "gnp dense" (Generators.gnp st ~n:20 ~p:0.8);
  check_connected_simple "random_connected" (Generators.random_connected st ~n:30 ~m:60);
  check_connected_simple "geometric" (Generators.geometric st ~n:30 ~radius:0.2);
  check_connected_simple "grid" (Generators.grid st ~rows:4 ~cols:5);
  check_connected_simple "torus" (Generators.torus st ~rows:3 ~cols:4);
  check_connected_simple "ring" (Generators.ring st ~n:9);
  check_connected_simple "path" (Generators.path st ~n:9);
  check_connected_simple "star" (Generators.star st ~n:9);
  check_connected_simple "complete" (Generators.complete st ~n:8);
  check_connected_simple "hypercube" (Generators.hypercube st ~dim:4);
  check_connected_simple "lollipop" (Generators.lollipop st ~clique:5 ~tail:4);
  check_connected_simple "caterpillar" (Generators.caterpillar st ~spine:4 ~legs:3);
  check_connected_simple "random_tree" (Generators.random_tree st ~n:25)

let test_generator_shapes () =
  let st = seed 3 in
  let g = Generators.grid st ~rows:4 ~cols:5 in
  Alcotest.(check int) "grid nodes" 20 (Graph.n g);
  Alcotest.(check int) "grid edges" 31 (Graph.m g);
  let k = Generators.complete st ~n:7 in
  Alcotest.(check int) "K7 edges" 21 (Graph.m k);
  let h = Generators.hypercube st ~dim:3 in
  Alcotest.(check int) "Q3 nodes" 8 (Graph.n h);
  Alcotest.(check int) "Q3 edges" 12 (Graph.m h);
  Alcotest.(check int) "Q3 regular" 3 (Graph.max_degree h);
  let t = Generators.random_tree st ~n:30 in
  Alcotest.(check int) "tree edges" 29 (Graph.m t);
  let c = Generators.caterpillar st ~spine:3 ~legs:2 in
  Alcotest.(check int) "caterpillar nodes" 9 (Graph.n c);
  let l = Generators.lollipop st ~clique:4 ~tail:3 in
  Alcotest.(check int) "lollipop nodes" 7 (Graph.n l);
  Alcotest.(check int) "lollipop edges" 9 (Graph.m l)

let test_by_name () =
  List.iter
    (fun name ->
      match Generators.by_name name with
      | None -> Alcotest.failf "missing generator %s" name
      | Some f ->
          let g = f (seed 4) ~n:12 in
          Alcotest.(check bool) (name ^ " connected") true (Traversal.is_connected g))
    Generators.all_names;
  Alcotest.(check bool) "unknown" true (Generators.by_name "nope" = None)

(* ------------------------------------------------------------------ *)
(* MST *)

let edge_set es = List.sort E.compare es

let test_mst_small () =
  let g = fixture () in
  let k = Mst.kruskal g in
  Alcotest.(check int) "mst weight" (1 + 2 + 4 + 5) (Mst.weight_of k);
  let p = Mst.prim g ~src:3 in
  Alcotest.(check bool) "prim = kruskal" true (edge_set k = edge_set p);
  let b, phases = Mst.boruvka g in
  Alcotest.(check bool) "boruvka = kruskal" true (edge_set k = edge_set b);
  Alcotest.(check bool) "phase bound" true (phases <= 3)

let test_mst_tree_of () =
  let g = fixture () in
  let t = Mst.tree_of g (Mst.kruskal g) ~root:2 in
  Alcotest.(check int) "rooted at 2" 2 (Tree.root t);
  Alcotest.(check bool) "is mst" true (Mst.is_mst g t);
  let bfs = Tree.of_graph_bfs g ~root:0 in
  Alcotest.(check bool) "bfs not mst here" false (Mst.is_mst g bfs)

let test_mst_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1, 1); (2, 3, 2) ] in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Mst.kruskal g);
  expect_invalid (fun () -> Mst.prim g ~src:0);
  expect_invalid (fun () -> ignore (Mst.boruvka g))

(* ------------------------------------------------------------------ *)
(* Min-degree spanning trees *)

let test_exact_small () =
  let st = seed 5 in
  (* A star forces degree n-1; its unique spanning tree is the star. *)
  Alcotest.(check int) "star" 7 (Min_degree.exact (Generators.star st ~n:8));
  (* A ring admits a Hamiltonian path: degree 2. *)
  Alcotest.(check int) "ring" 2 (Min_degree.exact (Generators.ring st ~n:8));
  Alcotest.(check int) "complete" 2 (Min_degree.exact (Generators.complete st ~n:6));
  Alcotest.(check int) "path" 2 (Min_degree.exact (Generators.path st ~n:6));
  Alcotest.(check int) "single node" 0 (Min_degree.exact (Graph.of_edges 1 []));
  Alcotest.(check int) "single edge" 1
    (Min_degree.exact (Graph.of_edges 2 [ (0, 1, 1) ]))

let test_exists_tree_with_degree () =
  let st = seed 6 in
  let g = Generators.star st ~n:6 in
  Alcotest.(check bool) "star needs 5" false (Min_degree.exists_tree_with_degree g 4);
  Alcotest.(check bool) "star has 5" true (Min_degree.exists_tree_with_degree g 5);
  let k = Generators.complete st ~n:5 in
  Alcotest.(check bool) "K5 hamiltonian" true (Min_degree.exists_tree_with_degree k 2);
  Alcotest.(check bool) "no degree-1 tree" false (Min_degree.exists_tree_with_degree k 1)

let test_fr_small () =
  let st = seed 7 in
  List.iter
    (fun g ->
      let t, marking, _swaps = Min_degree.furer_raghavachari g ~root:0 in
      let opt = Min_degree.exact g in
      Alcotest.(check bool) "within OPT+1" true (Tree.max_degree t <= opt + 1);
      Alcotest.(check bool) "is FR tree" true (Min_degree.is_fr_tree g t marking))
    [
      Generators.complete st ~n:7;
      Generators.ring st ~n:9;
      Generators.star st ~n:7;
      Generators.lollipop st ~clique:4 ~tail:3;
      Generators.gnp st ~n:10 ~p:0.4;
      Generators.gnp st ~n:10 ~p:0.7;
      Generators.caterpillar st ~spine:3 ~legs:2;
    ]

let test_fr_improves () =
  let st = seed 8 in
  (* On a complete graph the BFS tree from 0 is the star (degree n-1);
     FR must bring it down to 2 (Hamiltonian path). *)
  let g = Generators.complete st ~n:8 in
  let t, _, swaps = Min_degree.furer_raghavachari g ~root:0 in
  Alcotest.(check int) "complete -> ham path" 2 (Tree.max_degree t);
  Alcotest.(check bool) "did improve" true (swaps > 0)

let test_find_marking () =
  let st = seed 9 in
  let g = Generators.complete st ~n:6 in
  (* The star spanning tree of K6 is not an FR-tree: its center has max
     degree but any leaf pair-edge marks it good. *)
  let star = Tree.of_graph_bfs g ~root:0 in
  Alcotest.(check bool) "star of K6 rejected" true (Min_degree.find_marking g star = None);
  (* The FR output is accepted. *)
  let t, _, _ = Min_degree.furer_raghavachari g ~root:0 in
  Alcotest.(check bool) "FR output accepted" true (Min_degree.find_marking g t <> None)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 2 24 in
    let* extra = int_range 0 (n * 2) in
    let* s = int_bound 1_000_000 in
    return (Generators.random_connected (Random.State.make [| s |]) ~n ~m:(n - 1 + extra)))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let prop_mst_algorithms_agree =
  prop "kruskal = prim = boruvka" gen_graph (fun g ->
      let k = edge_set (Mst.kruskal g) in
      let p = edge_set (Mst.prim g ~src:(Graph.n g - 1)) in
      let b = edge_set (fst (Mst.boruvka g)) in
      k = p && k = b)

let prop_boruvka_phases =
  prop "boruvka phases <= ceil log2 n" gen_graph (fun g ->
      let _, phases = Mst.boruvka g in
      let rec ceil_log2 k acc = if 1 lsl acc >= k then acc else ceil_log2 k (acc + 1) in
      phases <= max 1 (ceil_log2 (Graph.n g) 0))

let prop_mst_cut_property =
  prop "tree swap never beats MST weight" gen_graph (fun g ->
      let t = Mst.tree_of g (Mst.kruskal g) ~root:0 in
      let w = Tree.weight t g in
      (* For every non-tree edge e and every tree edge f on its cycle, the
         swapped tree is no lighter (uniqueness of the MST). *)
      Array.for_all
        (fun (e : E.t) ->
          Tree.mem_edge t e.u e.v
          ||
          let cycle = Tree.fundamental_cycle t ~e:(e.u, e.v) in
          let rec pairs = function
            | a :: b :: rest -> (a, b) :: pairs (b :: rest)
            | _ -> []
          in
          List.for_all
            (fun (a, b) ->
              let t' = Tree.swap t ~add:(e.u, e.v) ~remove:(a, b) in
              Tree.weight t' g >= w)
            (pairs cycle))
        (Graph.edges g))

let prop_swap_preserves_spanning =
  prop "swap yields spanning trees" gen_graph (fun g ->
      let t = ref (Tree.of_graph_bfs g ~root:0) in
      let st = Random.State.make [| Graph.m g |] in
      let non_tree =
        Array.to_list (Graph.edges g)
        |> List.filter (fun (e : E.t) -> not (Tree.mem_edge !t e.u e.v))
      in
      List.for_all
        (fun (e : E.t) ->
          let cycle = Tree.fundamental_cycle !t ~e:(e.u, e.v) in
          let rec pairs = function
            | a :: b :: rest -> (a, b) :: pairs (b :: rest)
            | _ -> []
          in
          let ps = pairs cycle in
          let a, b = List.nth ps (Random.State.int st (List.length ps)) in
          let t' = Tree.swap !t ~add:(e.u, e.v) ~remove:(a, b) in
          t := t';
          Tree.check_parents ~root:(Tree.root t') (Tree.parents t'))
        (match non_tree with [] -> [] | e :: _ -> [ e ]))

let prop_nca_consistent =
  prop "nca matches ancestor intervals" gen_graph (fun g ->
      let t = Tree.of_graph_bfs g ~root:0 in
      let n = Graph.n g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let w = Tree.nca t u v in
          if not (Tree.is_ancestor t w u && Tree.is_ancestor t w v) then ok := false;
          (* No child of w is a common ancestor. *)
          Array.iter
            (fun c -> if Tree.is_ancestor t c u && Tree.is_ancestor t c v then ok := false)
            (Tree.children t w)
        done
      done;
      !ok)

let prop_tree_path_valid =
  prop "tree_path is a simple tree path" gen_graph (fun g ->
      let t = Tree.of_graph_bfs g ~root:0 in
      let n = Graph.n g in
      let st = Random.State.make [| n |] in
      let u = Random.State.int st n and v = Random.State.int st n in
      let path = Tree.tree_path t u v in
      let rec consecutive = function
        | a :: b :: rest -> Tree.mem_edge t a b && consecutive (b :: rest)
        | _ -> true
      in
      List.hd path = u
      && List.hd (List.rev path) = v
      && consecutive path
      && List.length (List.sort_uniq compare path) = List.length path)

let prop_fr_within_one =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"FR degree <= exact + 1"
       QCheck2.Gen.(
         let* n = int_range 4 9 in
         let* extra = int_range 0 (n * 2) in
         let* s = int_bound 1_000_000 in
         return
           (Generators.random_connected (Random.State.make [| s; 1 |]) ~n
              ~m:(n - 1 + extra)))
       (fun g ->
         let t, marking, _ = Min_degree.furer_raghavachari g ~root:0 in
         Tree.max_degree t <= Min_degree.exact g + 1
         && Min_degree.is_fr_tree g t marking))

(* Satellite: an edited graph is indistinguishable from one built from
   scratch on the same edge set — CSR mirror and total weight byte for
   byte (Marshal equality). Applies a random mix of all five edit ops,
   restricted to choices that keep the graph valid (the service layer's
   Topology.check enforces the same restriction at run time). *)
let prop_edits_match_scratch =
  prop "edits = of_edges from scratch (CSR + total weight)"
    QCheck2.Gen.(
      let* n = int_range 3 16 in
      let* extra = int_range 1 n in
      let* s = int_bound 1_000_000 in
      let* ops = int_range 1 12 in
      return
        ( Generators.random_connected (Random.State.make [| s |]) ~n ~m:(n - 1 + extra),
          s,
          ops ))
    (fun (g0, s, ops) ->
      let st = Random.State.make [| s; 0xED17 |] in
      let g = ref g0 in
      let next_w = ref (1 + Graph.fold_edges (fun e acc -> max acc e.E.w) 0 g0) in
      let fresh_w () =
        incr next_w;
        !next_w
      in
      for _ = 1 to ops do
        let n = Graph.n !g in
        match Random.State.int st 5 with
        | 0 ->
            (* add a random absent edge, if any slot is free *)
            let u = Random.State.int st n and v = Random.State.int st n in
            if u <> v && not (Graph.has_edge !g u v) then
              g := Graph.add_edge !g u v (fresh_w ())
        | 1 ->
            (* remove a random edge whose removal keeps the graph connected *)
            let es = Graph.edges !g in
            let e = es.(Random.State.int st (Array.length es)) in
            let g' = Graph.remove_edge !g e.E.u e.E.v in
            if Traversal.is_connected g' then g := g'
        | 2 ->
            let es = Graph.edges !g in
            let e = es.(Random.State.int st (Array.length es)) in
            g := Graph.reweight_edge !g e.E.u e.E.v (fresh_w ())
        | 3 ->
            let a = Random.State.int st n in
            let b = Random.State.int st n in
            let anchors =
              if b = a then [ (a, fresh_w ()) ]
              else [ (a, fresh_w ()); (b, fresh_w ()) ]
            in
            g := Graph.add_node !g anchors
        | _ ->
            if n > 2 then begin
              let v = Random.State.int st n in
              let g' = Graph.remove_node !g v in
              if Traversal.is_connected g' then g := g'
            end
      done;
      let scratch = Graph.of_edge_list (Graph.n !g) (Array.to_list (Graph.edges !g)) in
      let bytes f x = Marshal.to_string (f x) [] in
      bytes Graph.csr_row !g = bytes Graph.csr_row scratch
      && bytes Graph.csr_col !g = bytes Graph.csr_col scratch
      && bytes Graph.csr_wgt !g = bytes Graph.csr_wgt scratch
      && Graph.total_weight !g = Graph.total_weight scratch
      && Graph.m !g = Graph.m scratch)

let prop_sizes_and_depths =
  prop "tree sizes and depths are consistent" gen_graph (fun g ->
      let t = Tree.of_graph_bfs g ~root:0 in
      let n = Graph.n g in
      let ok = ref (Tree.size t (Tree.root t) = n) in
      for v = 0 to n - 1 do
        let expected =
          1 + Array.fold_left (fun acc c -> acc + Tree.size t c) 0 (Tree.children t v)
        in
        if Tree.size t v <> expected then ok := false;
        if v <> Tree.root t && Tree.depth t v <> Tree.depth t (Tree.parent t v) + 1 then
          ok := false
      done;
      !ok)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "edge ops" `Quick test_edge_ops;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edit edges" `Quick test_edit_edges;
          Alcotest.test_case "edit nodes" `Quick test_edit_nodes;
          Alcotest.test_case "edit validation" `Quick test_edit_validation;
        ] );
      ("union_find", [ Alcotest.test_case "operations" `Quick test_union_find ]);
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "dfs order" `Quick test_dfs_order;
        ] );
      ( "tree",
        [
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "accessors" `Quick test_tree_accessors;
          Alcotest.test_case "ancestry" `Quick test_tree_ancestry;
          Alcotest.test_case "fundamental cycle" `Quick test_fundamental_cycle;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "swap validation" `Quick test_swap_validation;
        ] );
      ( "generators",
        [
          Alcotest.test_case "connected and distinct" `Quick test_generators;
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "mst",
        [
          Alcotest.test_case "small" `Quick test_mst_small;
          Alcotest.test_case "tree_of" `Quick test_mst_tree_of;
          Alcotest.test_case "disconnected" `Quick test_mst_disconnected;
        ] );
      ( "min_degree",
        [
          Alcotest.test_case "exact small" `Quick test_exact_small;
          Alcotest.test_case "exists with degree" `Quick test_exists_tree_with_degree;
          Alcotest.test_case "FR small" `Quick test_fr_small;
          Alcotest.test_case "FR improves" `Quick test_fr_improves;
          Alcotest.test_case "find marking" `Quick test_find_marking;
        ] );
      ( "properties",
        [
          prop_mst_algorithms_agree;
          prop_boruvka_phases;
          prop_mst_cut_property;
          prop_swap_preserves_spanning;
          prop_nca_consistent;
          prop_tree_path_valid;
          prop_fr_within_one;
          prop_edits_match_scratch;
          prop_sizes_and_depths;
        ] );
    ]
