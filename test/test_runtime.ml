(* Tests for the repro_runtime state-model engine: views, schedulers,
   round accounting (Section II-A definition), fault injection, and space
   accounting. Uses two toy self-stabilizing protocols. *)

open Repro_graph
open Repro_runtime

let seed i = Random.State.make [| 0xBEEF; i |]

(* ------------------------------------------------------------------ *)
(* Toy protocol 1: self-stabilizing BFS distances to the fixed node 0.
   Rule: d(0) = 0; d(v) = 1 + min over neighbors, capped at n. The unique
   fixpoint is the true hop distance, so silent <=> legal. *)

module Dist0 = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 0
  let initial _g v = if v = 0 then 0 else 1
  let random_state rng g _v = Random.State.int rng (Graph.n g + 1)

  let target (v : state View.t) =
    if v.View.id = 0 then 0
    else
      let best = View.fold (fun acc _ _ s -> min acc s) max_int v in
      min v.View.n (if best = max_int then v.View.n else best + 1)

  let step v = if v.View.self = target v then None else Some (target v)

  let is_legal g states =
    let d = Traversal.bfs_distances g ~src:0 in
    Array.for_all (fun v -> states.(v) = min d.(v) (Graph.n g)) (Array.init (Graph.n g) Fun.id)

  (* Distance defect — exercised by the telemetry tests. *)
  let potential g states =
    let d = Traversal.bfs_distances g ~src:0 in
    let n = Graph.n g in
    let total = ref 0 in
    Array.iteri (fun v s -> total := !total + abs (min s n - min d.(v) n)) states;
    Some !total
  let classify = None
end

module EDist = Engine.Make (Dist0)

(* ------------------------------------------------------------------ *)
(* Toy protocol 2: greedy proper coloring with colors 0..Δ. A node is
   enabled iff it conflicts with a neighbor and its id is larger than
   every conflicting neighbor's id; it then takes the smallest free
   color. Converges under every daemon, including the synchronous one. *)

module Coloring = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 0
  let initial _ _ = 0
  let random_state rng g _ = Random.State.int rng (Graph.max_degree g + 1)

  let step v =
    let conflicts =
      View.fold (fun acc id _ s -> if s = v.View.self then id :: acc else acc) [] v
    in
    if conflicts = [] || List.exists (fun id -> id > v.View.id) conflicts then None
    else begin
      let used = View.fold (fun acc _ _ s -> s :: acc) [] v in
      let rec smallest c = if List.mem c used then smallest (c + 1) else c in
      Some (smallest 0)
    end

  let is_legal g states =
    Array.for_all
      (fun (e : Graph.Edge.t) -> states.(e.u) <> states.(e.v))
      (Graph.edges g)

  let potential _ _ = None
  let classify = None
end

module EColor = Engine.Make (Coloring)

(* ------------------------------------------------------------------ *)
(* Toy protocol 3: perpetually enabled, always legal. Exercises engine
   limits and the stop_when_legal escape hatch. *)

module Restless = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 1
  let initial _ _ = 0
  let random_state _ _ _ = 0
  let step v = Some (1 - v.View.self)
  let is_legal _ _ = true
  let potential _ _ = None
  let classify = None
end

module ERestless = Engine.Make (Restless)

(* ------------------------------------------------------------------ *)
(* View *)

let test_view () =
  let g = Graph.of_edges 4 [ (0, 1, 5); (0, 2, 7); (1, 2, 3); (2, 3, 9) ] in
  let states = [| 10; 11; 12; 13 |] in
  let v = EDist.view g states 2 in
  Alcotest.(check int) "id" 2 v.View.id;
  Alcotest.(check int) "degree" 3 v.View.degree;
  Alcotest.(check (array int)) "nbr ids" [| 0; 1; 3 |] v.View.nbr_ids;
  Alcotest.(check int) "state of 3" 13 (View.state_of v 3);
  Alcotest.(check int) "weight to 0" 7 (View.weight_to v 0);
  Alcotest.(check int) "weight to 3" 9 (View.weight_to v 3);
  Alcotest.(check bool) "is_neighbor 1" true (View.is_neighbor v 1);
  Alcotest.(check bool) "not neighbor 2" false (View.is_neighbor v 2);
  Alcotest.(check int) "fold sum" (10 + 11 + 13) (View.fold (fun a _ _ s -> a + s) 0 v);
  Alcotest.(check bool) "exists" true (View.exists (fun id _ _ -> id = 3) v);
  Alcotest.(check bool) "for_all" true (View.for_all (fun _ w _ -> w > 0) v);
  (match View.state_of v 2 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

(* ------------------------------------------------------------------ *)
(* Space helpers *)

let test_space () =
  Alcotest.(check int) "log2 1" 0 (Space.log2_ceil 1);
  Alcotest.(check int) "log2 2" 1 (Space.log2_ceil 2);
  Alcotest.(check int) "log2 3" 2 (Space.log2_ceil 3);
  Alcotest.(check int) "log2 1024" 10 (Space.log2_ceil 1024);
  Alcotest.(check int) "log2 1025" 11 (Space.log2_ceil 1025);
  Alcotest.(check bool) "id bits grows" true (Space.id_bits 1000 > Space.id_bits 10);
  Alcotest.(check int) "opt none" 1 (Space.opt (fun _ -> 5) None);
  Alcotest.(check int) "opt some" 6 (Space.opt (fun _ -> 5) (Some ()))

(* ------------------------------------------------------------------ *)
(* Engine: convergence of the toys under all schedulers *)

let all_schedulers = List.map snd Scheduler.all

let test_dist_converges_everywhere () =
  let st = seed 1 in
  let g = Generators.gnp st ~n:25 ~p:0.15 in
  List.iter
    (fun sched ->
      let name = Format.asprintf "%a" Scheduler.pp sched in
      let init = EDist.adversarial st g in
      let r = EDist.run g sched st ~init in
      Alcotest.(check bool) (name ^ " silent") true r.EDist.silent;
      Alcotest.(check bool) (name ^ " legal") true r.EDist.legal;
      Alcotest.(check bool) (name ^ " made steps") true (r.EDist.steps > 0))
    all_schedulers

let test_dist_from_initial () =
  let st = seed 2 in
  let g = Generators.ring st ~n:16 in
  let r = EDist.run g Scheduler.Synchronous st ~init:(EDist.initial g) in
  Alcotest.(check bool) "silent" true r.EDist.silent;
  let d = Traversal.bfs_distances g ~src:0 in
  Array.iteri
    (fun v dv -> Alcotest.(check int) (Printf.sprintf "d(%d)" v) dv r.EDist.states.(v))
    d

let test_dist_single_node () =
  let g = Graph.of_edges 1 [] in
  let st = seed 3 in
  let r = EDist.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:[| 5 |] in
  Alcotest.(check bool) "silent" true r.EDist.silent;
  Alcotest.(check int) "d(0)=0" 0 r.EDist.states.(0)

let test_coloring_converges () =
  let st = seed 4 in
  let g = Generators.gnp st ~n:20 ~p:0.3 in
  List.iter
    (fun sched ->
      let name = Format.asprintf "%a" Scheduler.pp sched in
      let init = EColor.adversarial st g in
      let r = EColor.run g sched st ~init in
      Alcotest.(check bool) (name ^ " silent") true r.EColor.silent;
      Alcotest.(check bool) (name ^ " legal") true r.EColor.legal)
    all_schedulers

(* Rounds: under the synchronous daemon every enabled node steps each
   round, so steps >= rounds and the BFS toy needs at most ~n rounds. *)
let test_round_accounting_synchronous () =
  let st = seed 5 in
  let g = Generators.path st ~n:20 in
  (* Worst case for distance propagation: all registers say 0. *)
  let init = Array.make 20 0 in
  let r = EDist.run g Scheduler.Synchronous st ~init in
  Alcotest.(check bool) "silent" true r.EDist.silent;
  Alcotest.(check bool) "rounds <= 2n" true (r.EDist.rounds <= 40);
  Alcotest.(check bool) "rounds >= diameter-ish" true (r.EDist.rounds >= 10);
  Alcotest.(check bool) "steps >= rounds" true (r.EDist.steps >= r.EDist.rounds)

(* The round count must be scheduler-independent up to polynomial factors;
   under the LIFO adversary the BFS toy still converges in O(n^2) rounds. *)
let test_round_accounting_adversary () =
  let st = seed 6 in
  let g = Generators.path st ~n:12 in
  let init = Array.make 12 0 in
  let r = EDist.run g (Scheduler.Central Scheduler.Lifo_adversary) st ~init in
  Alcotest.(check bool) "silent" true r.EDist.silent;
  Alcotest.(check bool) "rounds bounded" true (r.EDist.rounds <= 12 * 12)

let test_on_round_callback () =
  let st = seed 7 in
  let g = Generators.ring st ~n:10 in
  let boundaries = ref [] in
  let r =
    EDist.run g Scheduler.Synchronous st
      ~on_round:(fun i _ -> boundaries := i :: !boundaries)
      ~init:(EDist.adversarial st g)
  in
  let bs = List.rev !boundaries in
  Alcotest.(check bool) "starts at 0" true (List.hd bs = 0);
  Alcotest.(check int) "all boundaries seen" (r.EDist.rounds + 1) (List.length bs);
  Alcotest.(check bool) "increasing" true (bs = List.sort compare bs)

let test_limits () =
  let st = seed 8 in
  let g = Generators.ring st ~n:6 in
  let r =
    ERestless.run g Scheduler.Synchronous st ~max_rounds:17 ~init:(ERestless.initial g)
  in
  Alcotest.(check bool) "not silent" false r.ERestless.silent;
  Alcotest.(check int) "hit round limit" 17 r.ERestless.rounds;
  let r2 =
    ERestless.run g (Scheduler.Central Scheduler.Random_daemon) st ~max_steps:100
      ~init:(ERestless.initial g)
  in
  Alcotest.(check int) "hit step limit" 100 r2.ERestless.steps

let test_stop_when_legal () =
  let st = seed 9 in
  let g = Generators.ring st ~n:6 in
  let r =
    ERestless.run g Scheduler.Synchronous st ~stop_when_legal:true
      ~init:(ERestless.initial g)
  in
  Alcotest.(check (option int)) "legal at round 0" (Some 0) r.ERestless.first_legal_round;
  Alcotest.(check int) "stopped immediately" 0 r.ERestless.steps

let test_track_legal () =
  let st = seed 10 in
  let g = Generators.path st ~n:8 in
  let init = Array.make 8 0 in
  let r = EDist.run g Scheduler.Synchronous st ~track_legal:true ~init in
  (match r.EDist.first_legal_round with
  | Some k -> Alcotest.(check bool) "legal round recorded" true (k <= r.EDist.rounds)
  | None -> Alcotest.fail "expected legality to be reached")

let test_enabled_and_silent () =
  let st = seed 11 in
  let g = Generators.ring st ~n:8 in
  let init = EDist.initial g in
  Alcotest.(check bool) "initially not silent" false (EDist.silent g init);
  let r = EDist.run g Scheduler.Synchronous st ~init in
  Alcotest.(check bool) "finally silent" true (EDist.silent g r.EDist.states);
  Alcotest.(check (list int)) "no enabled nodes" [] (EDist.enabled g r.EDist.states)

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let test_fault_corrupt_nodes () =
  let st = seed 12 in
  let g = Generators.ring st ~n:10 in
  let r = EDist.run g Scheduler.Synchronous st ~init:(EDist.initial g) in
  let states = r.EDist.states in
  let corrupted =
    Fault.corrupt_nodes st ~random_state:Dist0.random_state g states [ 3; 7 ]
  in
  (* Only nodes 3 and 7 may differ. *)
  Array.iteri
    (fun v s -> if v <> 3 && v <> 7 then Alcotest.(check int) "untouched" states.(v) s)
    corrupted

let test_fault_recovery () =
  let st = seed 13 in
  let g = Generators.gnp st ~n:20 ~p:0.2 in
  let r = EDist.run g Scheduler.Synchronous st ~init:(EDist.initial g) in
  Alcotest.(check bool) "stable" true r.EDist.silent;
  for k = 1 to 5 do
    let corrupted =
      Fault.corrupt st ~random_state:Dist0.random_state g r.EDist.states ~k:(k * 4)
    in
    let r2 = EDist.run g Scheduler.Synchronous st ~init:corrupted in
    Alcotest.(check bool) "recovers" true (r2.EDist.silent && r2.EDist.legal)
  done

let test_fault_k_clamped () =
  let st = seed 14 in
  let g = Generators.ring st ~n:5 in
  let states = Array.make 5 0 in
  let c = Fault.corrupt st ~random_state:Dist0.random_state g states ~k:50 in
  Alcotest.(check int) "length preserved" 5 (Array.length c)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen f)

let gen_net =
  QCheck2.Gen.(
    let* n = int_range 2 20 in
    let* extra = int_range 0 n in
    let* s = int_bound 1_000_000 in
    return (s, Generators.random_connected (Random.State.make [| s |]) ~n ~m:(n - 1 + extra)))

let prop_dist_self_stabilizes =
  prop "Dist0 stabilizes from arbitrary states under random daemon" gen_net
    (fun (s, g) ->
      let st = Random.State.make [| s; 17 |] in
      let init = EDist.adversarial st g in
      let r = EDist.run g (Scheduler.Central Scheduler.Random_daemon) st ~init in
      r.EDist.silent && r.EDist.legal)

let prop_coloring_self_stabilizes =
  prop "Coloring stabilizes from arbitrary states under adversary" gen_net
    (fun (s, g) ->
      let st = Random.State.make [| s; 23 |] in
      let init = EColor.adversarial st g in
      let r = EColor.run g (Scheduler.Central Scheduler.Lifo_adversary) st ~init in
      r.EColor.silent && r.EColor.legal)

let prop_silence_is_stable =
  prop "re-running from a silent configuration does nothing" gen_net (fun (s, g) ->
      let st = Random.State.make [| s; 29 |] in
      let r = EDist.run g Scheduler.Synchronous st ~init:(EDist.adversarial st g) in
      let r2 = EDist.run g Scheduler.Synchronous st ~init:r.EDist.states in
      r2.EDist.steps = 0 && r2.EDist.rounds = 0 && r2.EDist.silent)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_runtime"
    [
      ("view", [ Alcotest.test_case "accessors" `Quick test_view ]);
      ("space", [ Alcotest.test_case "helpers" `Quick test_space ]);
      ( "engine",
        [
          Alcotest.test_case "dist converges (all daemons)" `Quick
            test_dist_converges_everywhere;
          Alcotest.test_case "dist from initial" `Quick test_dist_from_initial;
          Alcotest.test_case "single node" `Quick test_dist_single_node;
          Alcotest.test_case "coloring converges (all daemons)" `Quick
            test_coloring_converges;
          Alcotest.test_case "rounds: synchronous" `Quick test_round_accounting_synchronous;
          Alcotest.test_case "rounds: adversary" `Quick test_round_accounting_adversary;
          Alcotest.test_case "on_round callback" `Quick test_on_round_callback;
          Alcotest.test_case "limits" `Quick test_limits;
          Alcotest.test_case "stop_when_legal" `Quick test_stop_when_legal;
          Alcotest.test_case "track_legal" `Quick test_track_legal;
          Alcotest.test_case "enabled/silent" `Quick test_enabled_and_silent;
        ] );
      ( "fault",
        [
          Alcotest.test_case "corrupt_nodes" `Quick test_fault_corrupt_nodes;
          Alcotest.test_case "recovery" `Quick test_fault_recovery;
          Alcotest.test_case "k clamped" `Quick test_fault_k_clamped;
        ] );
      ( "properties",
        [ prop_dist_self_stabilizes; prop_coloring_self_stabilizes; prop_silence_is_stable ]
      );
    ]
