(* Tests for repro_core: the PLS-guided local-search engines and
   potentials (Algorithms 1 and 3), the hop-bounded aggregate, the
   spanning-tree layer, the loop-free switch protocol of Section IV
   (Figure 1), and the three silent self-stabilizing builders (BFS of
   Section III, MST of Section VI, MDST/FR of Section VIII). *)

open Repro_graph
open Repro_runtime
open Repro_labels
open Repro_core
module E = Graph.Edge

let seed i = Random.State.make [| 0xC04E; i |]

let sample_graph i =
  let st = seed i in
  Generators.random_connected st ~n:(8 + (i mod 8)) ~m:(14 + (2 * i))

(* ------------------------------------------------------------------ *)
(* Aggregate *)

let test_aggregate_target () =
  let cmp = compare in
  let t = Aggregate.target ~compare:cmp ~n:10 ~base:(Some 5) ~nbrs:[] in
  Alcotest.(check bool) "own base" true (t = Some { Aggregate.value = 5; hops = 0 });
  let nbrs = [ Some { Aggregate.value = 3; hops = 2 }; None; Some { Aggregate.value = 7; hops = 0 } ] in
  let t = Aggregate.target ~compare:cmp ~n:10 ~base:(Some 5) ~nbrs in
  Alcotest.(check bool) "min neighbor wins" true (t = Some { Aggregate.value = 3; hops = 3 });
  (* TTL: a value at hops n-1 cannot propagate. *)
  let t =
    Aggregate.target ~compare:cmp ~n:10 ~base:None
      ~nbrs:[ Some { Aggregate.value = 1; hops = 9 } ]
  in
  Alcotest.(check bool) "ttl kills" true (t = None);
  let t = Aggregate.target ~compare:cmp ~n:10 ~base:None ~nbrs:[] in
  Alcotest.(check bool) "empty" true (t = None)

let test_aggregate_step () =
  let cmp = compare in
  let self = Some { Aggregate.value = 3; hops = 3 } in
  let nbrs = [ Some { Aggregate.value = 3; hops = 2 } ] in
  Alcotest.(check bool) "fixpoint" true
    (Aggregate.step ~compare:cmp ~n:10 ~base:None ~self ~nbrs = None);
  Alcotest.(check bool) "stale decays" true
    (Aggregate.step ~compare:cmp ~n:10 ~base:None ~self ~nbrs:[] = Some None)

(* A standalone protocol exercising the aggregate: agree on the global
   minimum of id*7 mod 13 — silent and correct from arbitrary states. *)
module AggToy = struct
  type state = int Aggregate.t option

  let equal_state = Aggregate.equal Int.equal
  let pp_state ppf _ = Format.pp_print_string ppf "<agg>"
  let size_bits _ _ = 8
  let base v = (v * 7) mod 13
  let initial _ v = Some { Aggregate.value = base v; hops = 0 }

  let random_state rng g _ =
    if Random.State.bool rng then None
    else
      Some
        {
          Aggregate.value = Random.State.int rng 20;
          hops = Random.State.int rng (Graph.n g);
        }

  let step view =
    Aggregate.step ~compare ~n:view.View.n ~base:(Some (base view.View.id))
      ~self:view.View.self
      ~nbrs:(Array.to_list view.View.nbrs)

  let is_legal g sts =
    let expect =
      List.fold_left min max_int (List.init (Graph.n g) (fun v -> base v))
    in
    Array.for_all
      (fun s -> match s with Some { Aggregate.value; _ } -> value = expect | None -> false)
      sts

  let potential _ _ = None
  let classify = None
end

module EAgg = Engine.Make (AggToy)

let test_aggregate_protocol () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (50 + i) in
      let r = EAgg.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(EAgg.adversarial st g) in
      Alcotest.(check bool) "silent" true r.EAgg.silent;
      Alcotest.(check bool) "legal" true r.EAgg.legal)
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* St_layer *)

module StToyKeep = struct
  type state = St_layer.t

  let equal_state = St_layer.equal
  let pp_state = St_layer.pp
  let size_bits = St_layer.size_bits
  let initial _ v = St_layer.self_root v
  let random_state rng g _ = St_layer.random rng ~n:(Graph.n g)
  let step view = St_layer.step view ~get:Fun.id ~keep_shape:true
  let is_legal = St_layer.is_legal
  let potential _ _ = None
  let classify = None
end

module ESt = Engine.Make (StToyKeep)

let test_st_layer_converges () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (60 + i) in
      List.iter
        (fun sched ->
          let r = ESt.run g sched st ~init:(ESt.adversarial st g) in
          Alcotest.(check bool) "silent" true r.ESt.silent;
          Alcotest.(check bool) "legal spanning tree" true r.ESt.legal)
        [ Scheduler.Synchronous; Scheduler.Central Scheduler.Random_daemon;
          Scheduler.Central Scheduler.Lifo_adversary ])
    [ 0; 1; 2 ]

let test_st_layer_keeps_shape () =
  (* Start from a legal configuration whose tree is NOT BFS-shaped: the
     shape-preserving layer must be silent on it. *)
  let g = Graph.of_edges 4 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (0, 3, 4) ] in
  (* Path tree 0-1-2-3 (depth 3), although 3 is adjacent to 0. *)
  let sts =
    [|
      { St_layer.parent = -1; root = 0; dist = 0 };
      { St_layer.parent = 0; root = 0; dist = 1 };
      { St_layer.parent = 1; root = 0; dist = 2 };
      { St_layer.parent = 2; root = 0; dist = 3 };
    |]
  in
  Alcotest.(check bool) "silent on deep tree" true (ESt.silent g sts);
  (* The BFS-shaped variant is NOT silent on it (node 3 rejoins). *)
  let module StBfs = struct
    include StToyKeep

    let step view = St_layer.step view ~get:Fun.id ~keep_shape:false
  end in
  let module EB = Engine.Make (StBfs) in
  Alcotest.(check bool) "bfs variant moves" false (EB.silent g sts)

let test_st_layer_tree_of () =
  let g = sample_graph 3 in
  let st = seed 70 in
  let r = ESt.run g Scheduler.Synchronous st ~init:(ESt.adversarial st g) in
  match St_layer.tree_of g r.ESt.states with
  | Some t ->
      Alcotest.(check int) "rooted at 0" 0 (Tree.root t);
      Alcotest.(check int) "spans" (Graph.n g) (Tree.size t 0)
  | None -> Alcotest.fail "expected a tree"

(* ------------------------------------------------------------------ *)
(* Potential: sequential Algorithm 1 on the MST potential of Section VI *)

module Mst_potential : Potential.CYCLICAL = struct
  let name = "mst-phi"
  let phi g t = Fragment_labels.potential g t (Fragment_labels.prover g t)

  let phi_max g =
    let n = Graph.n g in
    n * (Repro_runtime.Space.log2_ceil (max 2 n) + 1)

  let in_family = Mst.is_mst

  let improve g t =
    let labels = Fragment_labels.prover g t in
    match Fragment_labels.violation_level g labels with
    | None -> None
    | Some lvl ->
        let found = ref None in
        Array.iteri
          (fun _x (l : Fragment_labels.label) ->
            if !found = None then begin
              let en = l.(lvl) in
              match en.Fragment_labels.out with
              | Some out -> (
                  match
                    Fragment_labels.min_outgoing g labels ~level:lvl
                      ~frag:en.Fragment_labels.frag
                  with
                  | Some m when not (E.equal m out) -> found := Some m
                  | _ -> ())
              | None -> ()
            end)
          labels;
        (match !found with
        | None -> None
        | Some e ->
            let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
            let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
            let heaviest =
              List.fold_left
                (fun best (a, b) ->
                  let eb = E.make a b (Graph.weight g a b) in
                  match best with
                  | None -> Some eb
                  | Some cur -> if E.compare eb cur > 0 then Some eb else best)
                None (pairs cycle)
            in
            Option.map
              (fun (f : E.t) -> { Potential.add = (e.E.u, e.E.v); remove = (f.E.u, f.E.v) })
              heaviest)
end

let test_algorithm1_mst () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let init = Tree.of_graph_bfs g ~root:0 in
      let run = Potential.run_cyclical (module Mst_potential) g ~init in
      Alcotest.(check bool) "result is MST" true (Mst.is_mst g run.Potential.result);
      Alcotest.(check bool) "phi trace decreasing" true
        (let rec dec = function
           | a :: (b :: _ as r) -> a > b && dec r
           | _ -> true
         in
         dec run.Potential.phi_trace);
      Alcotest.(check bool) "improvements <= phi_max" true
        (run.Potential.improvements <= Mst_potential.phi_max g))
    [ 0; 1; 2; 3; 4; 5 ]

let test_well_nested () =
  let g = Generators.ring (seed 80) ~n:6 in
  let t = Tree.of_graph_bfs g ~root:0 in
  (* The ring's only non-tree edge closes the whole cycle; swapping any
     cycle edge is a well-nested singleton. *)
  let e =
    Array.to_list (Graph.edges g)
    |> List.find (fun (e : E.t) -> not (Tree.mem_edge t e.E.u e.E.v))
  in
  let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
  let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
  let a, b = List.hd (pairs cycle) in
  Alcotest.(check bool) "singleton ok" true
    (Potential.well_nested t [ { Potential.add = (e.E.u, e.E.v); remove = (a, b) } ]);
  Alcotest.(check bool) "bad f rejected" false
    (Potential.well_nested t
       [ { Potential.add = (e.E.u, e.E.v); remove = (e.E.u, e.E.v) } ]);
  Alcotest.(check bool) "tree edge as e rejected" false
    (Potential.well_nested t [ { Potential.add = (a, b); remove = (a, b) } ])

(* ------------------------------------------------------------------ *)
(* Switch (Section IV, Figure 1) *)

let check_switch_trace g t ~add ~remove =
  let steps, t' = Switch.execute g t ~add ~remove in
  Alcotest.(check bool) "ends at T+e-f" true
    (Tree.same_edges t' (Tree.swap t ~add ~remove));
  List.iter
    (fun (m : Switch.micro) ->
      (* Loop-free: every intermediate structure is a spanning tree. *)
      Alcotest.(check bool) "spanning tree" true
        (Tree.check_parents ~root:(Tree.root m.Switch.tree) (Tree.parents m.Switch.tree));
      (* Lemma 4.1: the malleable verifier accepts everywhere. *)
      Alcotest.(check bool) "verifier accepts" true
        (Pls.accepts g
           ~parent:(Tree.parents m.Switch.tree)
           ~labels:m.Switch.labels Redundant_pls.verify))
    steps;
  (steps, t')

let test_switch_simple () =
  (* Path 0-1-2-3-4 plus chord {0,4}: remove {1,2}. *)
  let g =
    Graph.of_edges 5 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (3, 4, 4); (0, 4, 5) ]
  in
  let t = Tree.of_parents ~root:0 [| -1; 0; 1; 2; 3 |] in
  let steps, t' = check_switch_trace g t ~add:(0, 4) ~remove:(1, 2) in
  Alcotest.(check bool) "some steps" true (List.length steps > 3);
  Alcotest.(check bool) "2's parent now 3" true (Tree.parent t' 2 = 3)

let test_switch_adjacent () =
  (* e adjacent to f: single local switch. *)
  let g = Graph.of_edges 4 [ (0, 1, 1); (1, 2, 2); (2, 3, 3); (1, 3, 4) ] in
  let t = Tree.of_parents ~root:0 [| -1; 0; 1; 2 |] in
  let _steps, t' = check_switch_trace g t ~add:(1, 3) ~remove:(2, 3) in
  Alcotest.(check int) "3 hangs off 1" 1 (Tree.parent t' 3)

let test_switch_random () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let t = Tree.of_graph_bfs g ~root:0 in
      let non_tree =
        Array.to_list (Graph.edges g)
        |> List.filter (fun (e : E.t) -> not (Tree.mem_edge t e.E.u e.E.v))
      in
      match non_tree with
      | [] -> ()
      | e :: _ ->
          let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
          let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
          List.iter
            (fun (a, b) -> ignore (check_switch_trace g t ~add:(e.E.u, e.E.v) ~remove:(a, b)))
            (pairs cycle))
    [ 0; 1; 2; 3; 4 ]

let test_switch_final_labels_are_prover () =
  let g = sample_graph 2 in
  let t = Tree.of_graph_bfs g ~root:0 in
  let e =
    Array.to_list (Graph.edges g)
    |> List.find (fun (e : E.t) -> not (Tree.mem_edge t e.E.u e.E.v))
  in
  let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
  let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
  let a, b = List.hd (List.rev (pairs cycle)) in
  let steps, t' = Switch.execute g t ~add:(e.E.u, e.E.v) ~remove:(a, b) in
  let final = List.nth steps (List.length steps - 1) in
  let expected = Redundant_pls.prover t' in
  Array.iteri
    (fun v l ->
      Alcotest.(check bool)
        (Printf.sprintf "label %d" v)
        true
        (Redundant_pls.equal l expected.(v)))
    final.Switch.labels

(* ------------------------------------------------------------------ *)
(* BFS builder (Section III) *)

module BE = Bfs_builder.Engine

let test_bfs_builder_converges () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (90 + i) in
      List.iter
        (fun sched ->
          let r = BE.run g sched st ~init:(BE.adversarial st g) in
          Alcotest.(check bool) "silent" true r.BE.silent;
          Alcotest.(check bool) "bfs tree" true (Bfs_builder.is_bfs_tree g r.BE.states))
        [ Scheduler.Synchronous; Scheduler.Central Scheduler.Random_daemon;
          Scheduler.Central Scheduler.Lifo_adversary; Scheduler.Distributed 0.5 ])
    [ 0; 1; 2; 3 ]

let test_bfs_builder_rounds_linear () =
  let st = seed 100 in
  let g = Generators.gnp st ~n:40 ~p:0.1 in
  let r = BE.run g Scheduler.Synchronous st ~init:(BE.adversarial st g) in
  Alcotest.(check bool) "silent" true r.BE.silent;
  Alcotest.(check bool) "O(n) rounds" true (r.BE.rounds <= 4 * 40)

let test_bfs_potential_zero_iff_legal () =
  let g = sample_graph 1 in
  let st = seed 101 in
  let r = BE.run g Scheduler.Synchronous st ~init:(BE.adversarial st g) in
  Alcotest.(check int) "phi = 0 at fixpoint" 0 (Bfs_builder.potential g r.BE.states);
  Alcotest.(check bool) "verify accepts everywhere" true
    (List.for_all
       (fun v -> Bfs_builder.verify (BE.view g r.BE.states v))
       (List.init (Graph.n g) Fun.id))

let test_bfs_fault_recovery () =
  let g = sample_graph 4 in
  let st = seed 102 in
  let r = BE.run g Scheduler.Synchronous st ~init:(BE.initial g) in
  let corrupted =
    Fault.corrupt st ~random_state:Bfs_builder.P.random_state g r.BE.states ~k:3
  in
  let r2 = BE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:corrupted in
  Alcotest.(check bool) "recovered" true (r2.BE.silent && r2.BE.legal)

(* ------------------------------------------------------------------ *)
(* MST builder (Section VI) *)

module ME = Mst_builder.Engine

let mst_check name g r =
  Alcotest.(check bool) (name ^ ": silent") true r.ME.silent;
  Alcotest.(check bool) (name ^ ": is MST") true (Mst_builder.is_legal g r.ME.states)

let test_mst_builder_from_initial () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (110 + i) in
      let r = ME.run g Scheduler.Synchronous st ~init:(ME.initial g) in
      mst_check (Printf.sprintf "graph %d" i) g r)
    [ 0; 1; 2; 3; 4; 5 ]

let test_mst_builder_daemons () =
  let g = sample_graph 1 in
  (* Daemons that eventually schedule every enabled node: strict
     convergence. *)
  List.iter
    (fun sched ->
      let st = seed 120 in
      let r = ME.run g sched st ~init:(ME.initial g) in
      mst_check (Format.asprintf "%a" Scheduler.pp sched) g r)
    [ Scheduler.Synchronous; Scheduler.Central Scheduler.Random_daemon;
      Scheduler.Central Scheduler.Round_robin; Scheduler.Distributed 0.5 ];
  (* Deterministic starving daemons (max-id, min-id, LIFO) can freeze
     every node but one forever; such executions accumulate NO rounds
     (Section II-A), so the paper's round-complexity statements quantify
     over executions where rounds elapse. We assert convergence OR a
     zero-round-progress stall whose fair continuation completes to the
     silent MST (the starved-holder artifact; DESIGN.md). *)
  List.iter
    (fun (name, sched) ->
      let st = seed 120 in
      let r = ME.run g sched st ~max_steps:400_000 ~init:(ME.initial g) in
      if r.ME.silent then mst_check name g r
      else begin
        Alcotest.(check bool) (name ^ ": stall means no round progress") true
          (r.ME.rounds < 100);
        let r2 = ME.run g (Scheduler.Central Scheduler.Round_robin) st ~init:r.ME.states in
        mst_check (name ^ " + fair continuation") g r2
      end)
    [
      ("max-id", Scheduler.Central Scheduler.Max_id);
      ("min-id", Scheduler.Central Scheduler.Min_id);
      ("adversary", Scheduler.Central Scheduler.Lifo_adversary);
    ]

let test_mst_builder_adversarial_start () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (130 + i) in
      let r = ME.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(ME.adversarial st g) in
      mst_check (Printf.sprintf "adversarial %d" i) g r)
    [ 0; 1; 2 ]

let test_mst_builder_fault_recovery () =
  let g = sample_graph 2 in
  let st = seed 140 in
  let r = ME.run g Scheduler.Synchronous st ~init:(ME.initial g) in
  mst_check "pre-fault" g r;
  List.iter
    (fun k ->
      let corrupted =
        Fault.corrupt st ~random_state:Mst_builder.P.random_state g r.ME.states ~k
      in
      let r2 = ME.run g Scheduler.Synchronous st ~init:corrupted in
      mst_check (Printf.sprintf "recovery k=%d" k) g r2)
    [ 1; 3; 6 ]

let test_mst_builder_weight_matches_kruskal () =
  let g = sample_graph 6 in
  let st = seed 150 in
  let r = ME.run g Scheduler.Synchronous st ~init:(ME.initial g) in
  match Mst_builder.tree_of g r.ME.states with
  | Some t -> Alcotest.(check int) "weight" (Mst.mst_weight g) (Tree.weight t g)
  | None -> Alcotest.fail "no tree"

(* ------------------------------------------------------------------ *)
(* MDST builder (Section VIII) *)

module DE = Mdst_builder.Engine

let mdst_check name g r =
  Alcotest.(check bool) (name ^ ": silent") true r.DE.silent;
  Alcotest.(check bool) (name ^ ": FR tree") true (Mdst_builder.is_legal g r.DE.states);
  match Mdst_builder.tree_of g r.DE.states with
  | Some t ->
      if Graph.n g <= 10 then
        Alcotest.(check bool)
          (name ^ ": within OPT+1")
          true
          (Tree.max_degree t <= Min_degree.exact g + 1)
  | None -> Alcotest.fail "no tree"

let test_mdst_builder_from_initial () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (160 + i) in
      let r = DE.run g Scheduler.Synchronous st ~init:(DE.initial g) in
      mdst_check (Printf.sprintf "graph %d" i) g r)
    [ 0; 1; 2; 3 ]

let test_mdst_builder_improves_star () =
  (* On a complete graph the initial tree converges to the min-id star
     unless improvements fire; FR must bring the degree down. *)
  let st = seed 170 in
  let g = Generators.complete st ~n:8 in
  let r = DE.run g Scheduler.Synchronous st ~init:(DE.initial g) in
  Alcotest.(check bool) "silent" true r.DE.silent;
  match Mdst_builder.tree_of g r.DE.states with
  | Some t -> Alcotest.(check bool) "degree <= 3" true (Tree.max_degree t <= 3)
  | None -> Alcotest.fail "no tree"

let test_mdst_builder_adversarial_start () =
  List.iter
    (fun i ->
      let g = sample_graph i in
      let st = seed (180 + i) in
      let r = DE.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(DE.adversarial st g) in
      mdst_check (Printf.sprintf "adversarial %d" i) g r)
    [ 0; 1 ]

let test_mdst_builder_fault_recovery () =
  let g = sample_graph 3 in
  let st = seed 190 in
  let r = DE.run g Scheduler.Synchronous st ~init:(DE.initial g) in
  mdst_check "pre-fault" g r;
  let corrupted =
    Fault.corrupt st ~random_state:Mdst_builder.P.random_state g r.DE.states ~k:3
  in
  let r2 = DE.run g Scheduler.Synchronous st ~init:corrupted in
  mdst_check "recovery" g r2

let test_mdst_marking_is_fr_witness () =
  let g = sample_graph 5 in
  let st = seed 200 in
  let r = DE.run g Scheduler.Synchronous st ~init:(DE.initial g) in
  Alcotest.(check bool) "silent" true r.DE.silent;
  match Mdst_builder.tree_of g r.DE.states with
  | Some t ->
      (* The task's legality: the stable tree admits an FR witness (the
         fresh closure finds one; Fr_pls certifies it — see
         test_labels). *)
      Alcotest.(check bool) "tree admits an FR witness" true
        (Min_degree.find_marking g t <> None);
      (* The register marking guarantees the degree facets of
         Definition 8.1 at silence; its property (3) may be narrower
         than the full closure because vetoed witnesses stay blocked
         (DESIGN.md documents the deviation). *)
      let m = Mdst_builder.marking_of r.DE.states in
      let d = Tree.max_degree t in
      Array.iteri
        (fun v good ->
          let deg = Tree.degree t v in
          if deg = d then Alcotest.(check bool) "hubs are bad" false good;
          if deg <= d - 2 then Alcotest.(check bool) "low degrees are good" true good)
        m.Min_degree.good
  | None -> Alcotest.fail "no tree"

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop name count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print:QCheck2.Print.(triple int int int) gen f)

(* Generate printable (n, extra, s) triples so qcheck can show failing
   seeds; the graph is derived deterministically inside the property. *)
let gen_small_graph =
  QCheck2.Gen.(
    let* n = int_range 4 14 in
    let* extra = int_range 1 n in
    let* s = int_bound 1_000_000 in
    return (n, extra, s))

let graph_of (n, extra, s) =
  (s, Generators.random_connected (Random.State.make [| s; 9 |]) ~n ~m:(n - 1 + extra))

let prop_switch_loop_free =
  prop "switch chains are loop-free and alarm-free" 40 gen_small_graph (fun params ->
      let s, g = graph_of params in
      let t = Tree.of_graph_bfs g ~root:0 in
      let st = Random.State.make [| s; 11 |] in
      let non_tree =
        Array.to_list (Graph.edges g)
        |> List.filter (fun (e : E.t) -> not (Tree.mem_edge t e.E.u e.E.v))
      in
      match non_tree with
      | [] -> true
      | _ ->
          let e = List.nth non_tree (Random.State.int st (List.length non_tree)) in
          let cycle = Tree.fundamental_cycle t ~e:(e.E.u, e.E.v) in
          let rec pairs = function a :: b :: r -> (a, b) :: pairs (b :: r) | _ -> [] in
          let ps = pairs cycle in
          let a, b = List.nth ps (Random.State.int st (List.length ps)) in
          let steps, t' = Switch.execute g t ~add:(e.E.u, e.E.v) ~remove:(a, b) in
          Tree.same_edges t' (Tree.swap t ~add:(e.E.u, e.E.v) ~remove:(a, b))
          && List.for_all
               (fun (m : Switch.micro) ->
                 Tree.check_parents ~root:(Tree.root m.Switch.tree)
                   (Tree.parents m.Switch.tree)
                 && Pls.accepts g
                      ~parent:(Tree.parents m.Switch.tree)
                      ~labels:m.Switch.labels Redundant_pls.verify)
               steps)

let prop_mst_builder_converges =
  prop "MST builder: silent + correct from boot states" 15 gen_small_graph (fun params ->
      let s, g = graph_of params in
      let st = Random.State.make [| s; 13 |] in
      let r = ME.run g Scheduler.Synchronous st ~init:(ME.initial g) in
      r.ME.silent && Mst_builder.is_legal g r.ME.states)

let prop_mst_builder_self_stabilizes =
  prop "MST builder: silent + correct from arbitrary states" 10 gen_small_graph
    (fun params ->
      let s, g = graph_of params in
      let st = Random.State.make [| s; 17 |] in
      let r = ME.run g (Scheduler.Central Scheduler.Random_daemon) st ~init:(ME.adversarial st g) in
      r.ME.silent && Mst_builder.is_legal g r.ME.states)

let prop_mdst_builder_converges =
  (* Strict FR-tree-ness holds on the curated unit-test instances; on
     rare random instances the blocked-witness trade-off (DESIGN.md) can
     stop one improvement short of the full closure, so the property
     asserts silence, structure and the OPT+1(+1) quality envelope. *)
  prop "MDST builder: silent + near-optimal degree from boot states" 10 gen_small_graph
    (fun params ->
      let s, g = graph_of params in
      let st = Random.State.make [| s; 19 |] in
      let r = DE.run g Scheduler.Synchronous st ~init:(DE.initial g) in
      r.DE.silent
      &&
      match Mdst_builder.tree_of g r.DE.states with
      | Some t -> Tree.max_degree t <= Min_degree.exact g + 2
      | None -> false)

let prop_bfs_self_stabilizes =
  prop "BFS builder: silent + correct from arbitrary states" 25 gen_small_graph
    (fun params ->
      let s, g = graph_of params in
      let st = Random.State.make [| s; 23 |] in
      let r = BE.run g (Scheduler.Central Scheduler.Lifo_adversary) st ~init:(BE.adversarial st g) in
      r.BE.silent && Bfs_builder.is_bfs_tree g r.BE.states)

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_core"
    [
      ( "aggregate",
        [
          Alcotest.test_case "target" `Quick test_aggregate_target;
          Alcotest.test_case "step" `Quick test_aggregate_step;
          Alcotest.test_case "protocol" `Quick test_aggregate_protocol;
        ] );
      ( "st_layer",
        [
          Alcotest.test_case "converges" `Quick test_st_layer_converges;
          Alcotest.test_case "keeps shape" `Quick test_st_layer_keeps_shape;
          Alcotest.test_case "tree_of" `Quick test_st_layer_tree_of;
        ] );
      ( "potential",
        [
          Alcotest.test_case "algorithm 1 on MST" `Quick test_algorithm1_mst;
          Alcotest.test_case "well nested" `Quick test_well_nested;
        ] );
      ( "switch",
        [
          Alcotest.test_case "simple chain" `Quick test_switch_simple;
          Alcotest.test_case "adjacent" `Quick test_switch_adjacent;
          Alcotest.test_case "random cycles" `Quick test_switch_random;
          Alcotest.test_case "final labels = prover" `Quick test_switch_final_labels_are_prover;
        ] );
      ( "bfs_builder",
        [
          Alcotest.test_case "converges (all daemons)" `Quick test_bfs_builder_converges;
          Alcotest.test_case "O(n) rounds" `Quick test_bfs_builder_rounds_linear;
          Alcotest.test_case "phi and verifier" `Quick test_bfs_potential_zero_iff_legal;
          Alcotest.test_case "fault recovery" `Quick test_bfs_fault_recovery;
        ] );
      ( "mst_builder",
        [
          Alcotest.test_case "from initial" `Quick test_mst_builder_from_initial;
          Alcotest.test_case "all daemons" `Quick test_mst_builder_daemons;
          Alcotest.test_case "adversarial start" `Quick test_mst_builder_adversarial_start;
          Alcotest.test_case "fault recovery" `Quick test_mst_builder_fault_recovery;
          Alcotest.test_case "weight = kruskal" `Quick test_mst_builder_weight_matches_kruskal;
        ] );
      ( "mdst_builder",
        [
          Alcotest.test_case "from initial" `Quick test_mdst_builder_from_initial;
          Alcotest.test_case "improves the star" `Quick test_mdst_builder_improves_star;
          Alcotest.test_case "adversarial start" `Quick test_mdst_builder_adversarial_start;
          Alcotest.test_case "fault recovery" `Quick test_mdst_builder_fault_recovery;
          Alcotest.test_case "marking is FR witness" `Quick test_mdst_marking_is_fr_witness;
        ] );
      ( "properties",
        [
          prop_switch_loop_free;
          prop_mst_builder_converges;
          prop_mst_builder_self_stabilizes;
          prop_mdst_builder_converges;
          prop_bfs_self_stabilizes;
        ] );
    ]
