(* The struct-of-arrays stack (ISSUE 7): register codecs must
   round-trip ([unpack (pack s) = s]) for every builder, the packed
   executor (Engine_packed) must be trajectory-identical to the boxed
   reference (Engine.run_reference) across the daemon roster, and the
   steady-state packed loop must not allocate (Gc.minor_words
   differential). See SCALING.md for the layout these tests pin. *)

open Repro_graph
open Repro_runtime
open Repro_core
open Repro_baselines

let seed i = Random.State.make [| 0xCAFE; i |]

let prop ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_graph lo hi =
  QCheck2.Gen.(
    let* n = int_range lo hi in
    let* extra = int_range 0 n in
    let* sd = int_bound 1_000_000 in
    return (sd, Generators.random_connected (Random.State.make [| sd |]) ~n ~m:(n - 1 + extra)))

(* ------------------------------------------------------------------ *)
(* Codec round-trips, over adversarial register draws (random_state
   exercises every option/array variant of the variable-length MST and
   MDST registers). *)

let roundtrip (type s) (module C : Protocol.CODEC with type state = s)
    ~equal ~pp ~(random_state : Random.State.t -> Graph.t -> int -> s) (sd, g) =
  let rng = Random.State.make [| sd; 11 |] in
  let n = Graph.n g in
  for v = 0 to n - 1 do
    let s = random_state rng g v in
    let s' = C.unpack ~n (C.pack ~n s) in
    if not (equal s s') then
      QCheck2.Test.fail_reportf "codec round-trip lost node %d: %a <> %a" v pp s pp s'
  done;
  true

let fixed_width (type s) (module P : Protocol.PACKED with type state = s) (sd, g) =
  let rng = Random.State.make [| sd; 13 |] in
  let n = Graph.n g in
  for v = 0 to n - 1 do
    let s = P.random_state rng g v in
    let w = Array.length (P.pack ~n s) in
    if w <> P.words then
      QCheck2.Test.fail_reportf "pack of node %d has %d words, declared %d" v w P.words
  done;
  true

let codec_props =
  [
    prop "bfs codec: unpack (pack s) = s" (gen_graph 2 24)
      (roundtrip
         (module Bfs_builder.Packed)
         ~equal:Bfs_builder.P.equal_state ~pp:Bfs_builder.P.pp_state
         ~random_state:Bfs_builder.P.random_state);
    prop "spt codec: unpack (pack s) = s" (gen_graph 2 24)
      (roundtrip
         (module Spt_builder.Packed)
         ~equal:Spt_builder.P.equal_state ~pp:Spt_builder.P.pp_state
         ~random_state:Spt_builder.P.random_state);
    prop "adhoc-bfs codec: unpack (pack s) = s" (gen_graph 2 24)
      (roundtrip
         (module Adhoc_bfs.Packed)
         ~equal:Adhoc_bfs.P.equal_state ~pp:Adhoc_bfs.P.pp_state
         ~random_state:Adhoc_bfs.P.random_state);
    prop "mst codec: unpack (pack s) = s" (gen_graph 2 16)
      (roundtrip
         (module Mst_builder.Codec)
         ~equal:Mst_builder.P.equal_state ~pp:Mst_builder.P.pp_state
         ~random_state:Mst_builder.P.random_state);
    prop "mdst codec: unpack (pack s) = s" (gen_graph 2 16)
      (roundtrip
         (module Mdst_builder.Codec)
         ~equal:Mdst_builder.P.equal_state ~pp:Mdst_builder.P.pp_state
         ~random_state:Mdst_builder.P.random_state);
    prop ~count:10 "bfs pack width = words" (gen_graph 2 16)
      (fixed_width (module Bfs_builder.Packed));
    prop ~count:10 "spt pack width = words" (gen_graph 2 16)
      (fixed_width (module Spt_builder.Packed));
    prop ~count:10 "adhoc-bfs pack width = words" (gen_graph 2 16)
      (fixed_width (module Adhoc_bfs.Packed));
  ]

(* The adversarial draws above keep NCA sequences short; a stabilized
   run populates every label layer with real data (deep sequences,
   aggregates mid-flight are gone but label layers are full), so also
   round-trip the states of a converged MST/MDST configuration. *)
let test_codec_on_converged (type s) (module C : Protocol.CODEC with type state = s)
    (module P : Protocol.S with type state = s) name () =
  let module En = Engine.Make (P) in
  let g = Generators.random_connected (seed 21) ~n:10 ~m:16 in
  let n = Graph.n g in
  let r = En.run g Scheduler.Synchronous (seed 22) ~init:(En.initial g) in
  Alcotest.(check bool) (name ^ " stabilized") true r.En.silent;
  Array.iteri
    (fun v s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s converged state %d round-trips" name v)
        true
        (P.equal_state s (C.unpack ~n (C.pack ~n s))))
    r.En.states

(* ------------------------------------------------------------------ *)
(* Trajectory identity: Engine_packed.run vs Engine.run_reference on
   shared seeds. PACKED includes S, so the same module drives both. *)

let equiv_packed (type s) (module B : Protocol.PACKED with type state = s) g sched
    ~init ~sd =
  let module En = Engine.Make (B) in
  let module Ep = Engine_packed.Make (B) in
  let limits f =
    f ~max_steps:20_000 ~max_rounds:2_000 ~track_legal:true g sched
      (Random.State.make [| sd; 31 |])
      ~init
  in
  let a = limits (fun ~max_steps ~max_rounds ~track_legal g sched rng ~init ->
      Ep.run ~max_steps ~max_rounds ~track_legal g sched rng ~init)
  in
  let b = limits (fun ~max_steps ~max_rounds ~track_legal g sched rng ~init ->
      En.run_reference ~max_steps ~max_rounds ~track_legal g sched rng ~init)
  in
  let states_eq =
    Array.length a.Ep.states = Array.length b.En.states
    && Array.for_all2 B.equal_state a.Ep.states b.En.states
  in
  let ok =
    states_eq && a.Ep.steps = b.En.steps && a.Ep.rounds = b.En.rounds
    && a.Ep.silent = b.En.silent && a.Ep.legal = b.En.legal
    && a.Ep.max_bits = b.En.max_bits
    && a.Ep.first_legal_round = b.En.first_legal_round
  in
  if not ok then
    QCheck2.Test.fail_reportf
      "packed/reference divergence under %a: steps %d/%d rounds %d/%d silent \
       %b/%b legal %b/%b max_bits %d/%d first_legal %s/%s states_eq %b"
      Scheduler.pp sched a.Ep.steps b.En.steps a.Ep.rounds b.En.rounds a.Ep.silent
      b.En.silent a.Ep.legal b.En.legal a.Ep.max_bits b.En.max_bits
      (match a.Ep.first_legal_round with Some r -> string_of_int r | None -> "-")
      (match b.En.first_legal_round with Some r -> string_of_int r | None -> "-")
      states_eq;
  true

let equiv_roster (type s) (module B : Protocol.PACKED with type state = s) g ~sd
    ~roster =
  let module Ep = Engine_packed.Make (B) in
  let init = Ep.adversarial (Random.State.make [| sd; 7 |]) g in
  List.for_all (fun sched -> equiv_packed (module B) g sched ~init ~sd) roster

let named_roster = List.map snd Scheduler.all
let full_roster = List.map snd Scheduler.extended

let equiv_props =
  [
    (* bfs gets the extended roster: the greedy-Φ daemons exercise the
       packed engine's unpack-per-pick path. *)
    prop ~count:12 "bfs: packed run = run_reference (extended daemons)"
      (gen_graph 2 16)
      (fun (sd, g) -> equiv_roster (module Bfs_builder.Packed) g ~sd ~roster:full_roster);
    prop ~count:12 "spt: packed run = run_reference (all daemons)" (gen_graph 2 16)
      (fun (sd, g) -> equiv_roster (module Spt_builder.Packed) g ~sd ~roster:named_roster);
    prop ~count:12 "adhoc-bfs: packed run = run_reference (all daemons)"
      (gen_graph 2 16)
      (fun (sd, g) -> equiv_roster (module Adhoc_bfs.Packed) g ~sd ~roster:named_roster);
  ]

(* The packed engine must also agree with the boxed incremental engine
   (Engine.run) — same trajectory through a different cache design. *)
let test_packed_vs_incremental () =
  let module Ep = Engine_packed.Make (Bfs_builder.Packed) in
  let module En = Bfs_builder.Engine in
  let g = Generators.random_connected (seed 41) ~n:40 ~m:80 in
  let init = Ep.adversarial (seed 42) g in
  List.iter
    (fun sched ->
      let a = Ep.run ~track_legal:true g sched (seed 43) ~init in
      let b = En.run ~track_legal:true g sched (seed 43) ~init in
      Alcotest.(check int) "steps" b.En.steps a.Ep.steps;
      Alcotest.(check int) "rounds" b.En.rounds a.Ep.rounds;
      Alcotest.(check int) "max_bits" b.En.max_bits a.Ep.max_bits;
      Alcotest.(check bool) "states" true
        (Array.for_all2 Bfs_builder.P.equal_state a.Ep.states b.En.states))
    full_roster

(* Telemetry series must line up too (rounds, writes, register bits are
   computed from the flat bank without re-boxing). *)
let test_telemetry_identical () =
  let module Ep = Engine_packed.Make (Spt_builder.Packed) in
  let module En = Spt_builder.Engine in
  let g = Generators.random_connected (seed 51) ~n:20 ~m:40 in
  let init = Ep.adversarial (seed 52) g in
  let series run =
    let t = Telemetry.create () in
    run t;
    List.map
      (fun (s : Telemetry.sample) ->
        (s.round, s.enabled, s.writes, s.writes_total, s.max_bits, s.total_bits))
      (Telemetry.samples t)
  in
  let a =
    series (fun t ->
        ignore (Ep.run ~telemetry:t g Scheduler.Synchronous (seed 53) ~init))
  in
  let b =
    series (fun t ->
        ignore (En.run ~telemetry:t g Scheduler.Synchronous (seed 53) ~init))
  in
  Alcotest.(check int) "same number of samples" (List.length b) (List.length a);
  List.iter2
    (fun (r, e, w, wt, mb, tb) (r', e', w', wt', mb', tb') ->
      Alcotest.(check (list int)) "sample" [ r'; e'; w'; wt'; mb'; tb' ]
        [ r; e; w; wt; mb; tb ])
    a b

(* ------------------------------------------------------------------ *)
(* Allocation-freedom: the steady-state packed loop (guard
   re-evaluation, daemon pick, move apply, round accounting — no
   telemetry, no legality tracking, deterministic daemon) must not
   allocate. Measured from inside the run through the [stop_when] poll,
   which fires after every write: the minor-word counter between two
   polls hundreds of steps apart must not move. (Setup and the final
   re-boxed result allocate by design; they sit outside the window.
   The two [Gc.minor_words] reads themselves box one float each, hence
   the few-words tolerance.) *)
let test_allocation_free () =
  let module Ep = Engine_packed.Make (Bfs_builder.Packed) in
  let g = Generators.random_connected (seed 61) ~n:400 ~m:800 in
  let init = Ep.adversarial (seed 62) g in
  let sched = Scheduler.Central Scheduler.Round_robin in
  let polls = ref 0 in
  let at_a = ref 0.0 and at_b = ref 0.0 in
  let a = 100 and b = 600 in
  let stop_when () =
    incr polls;
    if !polls = a then at_a := Gc.minor_words ()
    else if !polls = b then at_b := Gc.minor_words ();
    false
  in
  let r = Ep.run ~stop_when g sched (seed 63) ~init in
  Alcotest.(check bool) "run long enough to cover the window" true (!polls > b);
  Alcotest.(check bool) "run went silent" true r.Ep.silent;
  let delta = !at_b -. !at_a in
  if delta > 16.0 then
    Alcotest.failf "%d packed steps allocated %.0f minor words" (b - a) delta

let () =
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "packed"
    [
      ("codec", codec_props);
      ( "codec-converged",
        [
          Alcotest.test_case "mst" `Quick
            (test_codec_on_converged (module Mst_builder.Codec) (module Mst_builder.P)
               "mst");
          Alcotest.test_case "mdst" `Quick
            (test_codec_on_converged (module Mdst_builder.Codec)
               (module Mdst_builder.P) "mdst");
        ] );
      ("engine-equiv", equiv_props);
      ( "engine-unit",
        [
          Alcotest.test_case "packed vs incremental (bfs, extended roster)" `Quick
            test_packed_vs_incremental;
          Alcotest.test_case "telemetry series identical (spt, sync)" `Quick
            test_telemetry_identical;
          Alcotest.test_case "steady-state loop is allocation-free" `Quick
            test_allocation_free;
        ] );
    ]
