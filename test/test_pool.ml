(* The domain pool's determinism contract (lib/runtime/pool.mli):
   [Pool.map pool f xs = List.map f xs] — same values, same order — for
   self-contained [f], at every jobs count. Exercised three ways: unit
   edge cases (empty, singleton, exceptions, nested use), a qcheck
   property over random lists and jobs counts, and the contract's
   consumer — the trimmed chaos campaign, whose JSON artifact must come
   back byte-identical at jobs 1/2/4. *)

open Repro_graph
open Repro_runtime
open Repro_campaign
module Json = Metrics.Json

let qcheck ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ---------------------------------------------------------------- *)
(* Unit edge cases                                                  *)
(* ---------------------------------------------------------------- *)

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty list" [] (Pool.map pool (fun x -> x * 2) []);
      Alcotest.(check (list int)) "singleton" [ 6 ] (Pool.map pool (fun x -> x * 2) [ 3 ]))

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "jobs < 1 clamps to 1" 1 (Pool.jobs pool);
      Alcotest.(check (list int))
        "jobs=1 map" [ 1; 4; 9 ]
        (Pool.map pool (fun x -> x * x) [ 1; 2; 3 ]))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (* The first failing item in LIST order must win, even though item
         9 (a later index) fails with no sleep while item 2's worker is
         just as eager: both raise, the submitter re-raises index 2's. *)
      let xs = List.init 10 (fun i -> i) in
      (match Pool.map pool (fun x -> if x >= 2 then raise (Boom x) else x) xs with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom k -> Alcotest.(check int) "first failure in list order" 2 k);
      (* The pool must remain usable after a failed batch. *)
      Alcotest.(check (list int))
        "pool usable after exception" [ 0; 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 0; 1; 2 ]))

let test_nested_map_falls_back () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (* A task that re-enters [Pool.map] on the same pool must not
         deadlock on the fixed worker set: the guard routes the inner
         map through sequential List.map. *)
      let rows =
        Pool.map pool
          (fun i -> Pool.map pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int)))
        "nested map = nested List.map"
        (List.map (fun i -> List.map (fun j -> (10 * i) + j) [ 0; 1; 2 ]) [ 1; 2; 3; 4 ])
        rows)

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check (list int)) "map before shutdown" [ 1; 2 ] (Pool.map pool (fun x -> x) [ 1; 2 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map pool (fun x -> x) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "map on a shut-down pool must raise"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* Property: Pool.map = List.map at any jobs count                  *)
(* ---------------------------------------------------------------- *)

let prop_map_matches_sequential =
  qcheck ~count:60 "Pool.map f xs = List.map f xs (order and values)"
    QCheck2.Gen.(pair (1 -- 6) (list_size (0 -- 40) (int_bound 10_000)))
    (fun (jobs, xs) ->
      (* A CPU-visible f: each item hashes through its own tiny seeded
         RNG, so reordering or dropping an item changes the output. *)
      let f x =
        let st = Random.State.make [| 0x500D; x |] in
        (x * 31) + Random.State.int st 1000
      in
      Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs = List.map f xs))

(* ---------------------------------------------------------------- *)
(* The consumer: trimmed chaos campaign, identical across jobs      *)
(* ---------------------------------------------------------------- *)

let trimmed_campaign jobs =
  let gen =
    match Generators.by_name "random" with
    | Some g -> g
    | None -> Alcotest.fail "random generator missing"
  in
  let daemons =
    List.filter_map
      (fun name -> Option.map (fun s -> (name, s)) (Scheduler.by_name name))
      [ "random"; "greedy-max" ]
  in
  Pool.with_pool ~jobs (fun pool ->
      let cells =
        Campaign.run_matrix ~pool ~gen ~n:12 ~seeds:2 ~seed_base:20260805
          ~algos:[ "bfs"; "spt" ]
          ~plans:(List.filteri (fun i _ -> i < 2) Fault.Plan.defaults)
          ~daemons ~max_rounds:4000 ~max_injections:4 ~stall_window:64 ~cycle_repeats:3 ()
      in
      Json.to_string
        (Campaign.campaign_json ~family:"random" ~n:12 ~seeds:2 ~seed_base:20260805
           ~max_rounds:4000 ~max_injections:4 cells))

let test_campaign_identical_across_jobs () =
  let j1 = trimmed_campaign 1 in
  let j2 = trimmed_campaign 2 in
  let j4 = trimmed_campaign 4 in
  Alcotest.(check string) "jobs 2 artifact = jobs 1 artifact" j1 j2;
  Alcotest.(check string) "jobs 4 artifact = jobs 1 artifact" j1 j4;
  (* Belt and braces: the artifact is well-formed JSON with the cells the
     matrix promises (2 algos x 2 plans x 2 daemons x 2 seeds). *)
  match Json.of_string j1 with
  | Some (Json.Obj fields) -> (
      match List.assoc_opt "cells" fields with
      | Some (Json.List cells) -> Alcotest.(check int) "cell count" 16 (List.length cells)
      | _ -> Alcotest.fail "artifact missing cells list")
  | _ -> Alcotest.fail "artifact is not a JSON object"

let () =
  Alcotest.run "repro_pool"
    [
      ( "edges",
        [
          Alcotest.test_case "empty + singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs clamped to >= 1" `Quick test_jobs_clamped;
          Alcotest.test_case "exception: first in list order, pool survives" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested map falls back sequentially" `Quick
            test_nested_map_falls_back;
          Alcotest.test_case "shutdown idempotent, map after raises" `Quick
            test_shutdown_idempotent;
        ] );
      ("property", [ prop_map_matches_sequential ]);
      ( "campaign",
        [
          Alcotest.test_case "trimmed chaos identical at jobs 1/2/4" `Slow
            test_campaign_identical_across_jobs;
        ] );
    ]
