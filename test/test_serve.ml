(* Big-n query serving (ISSUE 10): the committed label snapshot must
   answer every pair query exactly like naive tree walks — on stabilized
   trees and on degraded (arbitrary, possibly cyclic) parent arrays
   alike — service episodes must be report-identical between the boxed
   and the packed struct-of-arrays engines on shared seeds, Make_packed
   must reject loop-free builders (the loop monitor needs the boxed
   engine), and the mdst silent-but-illegal base stabilization from E13
   is minimized and pinned as a known failure. *)

open Repro_graph
open Repro_runtime
open Repro_core
open Repro_baselines
open Repro_service

let prop ?(count = 20) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Naive reference reads over an arbitrary parent array: fuel-bounded
   chases, list-intersection NCA — O(n) per query, obviously correct,
   and total on cycles (the degraded-commit regime). *)

let valid p v =
  let n = Array.length p in
  let q = p.(v) in
  q >= 0 && q < n && q <> v

let naive_depth p v =
  let n = Array.length p in
  let rec go u fuel acc =
    if fuel = 0 then -1 else if valid p u then go p.(u) (fuel - 1) (acc + 1) else acc
  in
  go v n 0

(* The chain [v; parent v; ...; root], or [] when the chase cycles. *)
let naive_chain p v =
  let n = Array.length p in
  let rec go u fuel acc =
    if fuel = 0 then []
    else if valid p u then go p.(u) (fuel - 1) (u :: acc)
    else List.rev (u :: acc)
  in
  go v n []

let naive_ancestor p a v = List.mem a (naive_chain p v)

(* Deepest common node of the two chains: walking up from [v], the
   first node that also sits on [u]'s chain. Chains from different
   trees (or off cycles) never intersect. *)
let naive_nca p u v =
  let cu = naive_chain p u in
  match List.find_opt (fun w -> List.mem w cu) (naive_chain p v) with
  | Some w -> w
  | None -> -1

let naive_answer p ~v ~u =
  let a_parent, a_root, a_degree = Service.answer p v in
  let a_nca = naive_nca p u v in
  let a_route =
    if a_nca < 0 then -1
    else naive_depth p u + naive_depth p v - (2 * naive_depth p a_nca)
  in
  { Snapshot.a_parent; a_root; a_degree; a_ancestor = naive_ancestor p u v; a_nca; a_route }

let check_all_pairs ?(what = "") p =
  let n = Array.length p in
  let snap = Snapshot.create () in
  Snapshot.commit snap p;
  if Snapshot.n snap <> n then
    QCheck2.Test.fail_reportf "%ssnapshot n %d <> %d" what (Snapshot.n snap) n;
  for v = 0 to n - 1 do
    if Snapshot.depth snap v <> naive_depth p v then
      QCheck2.Test.fail_reportf "%sdepth(%d): %d <> naive %d" what v
        (Snapshot.depth snap v) (naive_depth p v);
    for u = 0 to n - 1 do
      let got = Snapshot.answer snap ~v ~u and want = naive_answer p ~v ~u in
      if got <> want then
        QCheck2.Test.fail_reportf
          "%spair (v=%d, u=%d): snapshot (p=%d r=%d d=%d anc=%b nca=%d route=%d) <> \
           naive (p=%d r=%d d=%d anc=%b nca=%d route=%d)"
          what v u got.Snapshot.a_parent got.Snapshot.a_root got.Snapshot.a_degree
          got.Snapshot.a_ancestor got.Snapshot.a_nca got.Snapshot.a_route
          want.Snapshot.a_parent want.Snapshot.a_root want.Snapshot.a_degree
          want.Snapshot.a_ancestor want.Snapshot.a_nca want.Snapshot.a_route
    done
  done;
  true

(* ------------------------------------------------------------------ *)
(* Snapshot vs naive walks on stabilized trees: run each fixed-width
   builder to silence, commit its parent projection, compare every
   pair. *)

let gen_graph lo hi =
  QCheck2.Gen.(
    let* n = int_range lo hi in
    let* extra = int_range 0 n in
    let* sd = int_bound 1_000_000 in
    return (sd, Generators.random_connected (Random.State.make [| sd |]) ~n ~m:(n - 1 + extra)))

let stabilized_parents (type s) (module P : Service.TREE_PROTOCOL with type state = s)
    (sd, g) =
  let module En = Engine.Make (P) in
  let rng = Random.State.make [| sd; 3 |] in
  let init = En.adversarial rng g in
  let r = En.run ~track_legal:true g Scheduler.Synchronous rng ~init in
  if not r.En.silent then QCheck2.Test.fail_report "builder did not stabilize";
  Array.map (fun s -> P.parent_of s) r.En.states

(* ------------------------------------------------------------------ *)
(* The service adapters: fixed-width PACKED protocols with a parent
   projection — one module drives both Service.Make (PACKED includes S)
   and Service.Make_packed. *)

module Bfs_tree = struct
  include Bfs_builder.Packed

  let parent_of (s : St_layer.t) = s.St_layer.parent
  let loop_free = false
end

module Spt_tree = struct
  include Spt_builder.Packed

  let parent_of (s : Spt_builder.state) = s.Spt_builder.parent
  let loop_free = false
end

module Adhoc_tree = struct
  include Adhoc_bfs.Packed

  let parent_of (s : Adhoc_bfs.state) = s.Adhoc_bfs.parent
  let loop_free = false
end

let snapshot_props =
  [
    prop ~count:25 "snapshot = naive walks (stabilized bfs trees)" (gen_graph 2 20)
      (fun sg -> check_all_pairs (stabilized_parents (module Bfs_tree) sg));
    prop ~count:15 "snapshot = naive walks (stabilized spt trees)" (gen_graph 2 16)
      (fun sg -> check_all_pairs (stabilized_parents (module Spt_tree) sg));
    prop ~count:15 "snapshot = naive walks (stabilized adhoc-bfs trees)"
      (gen_graph 2 16)
      (fun sg -> check_all_pairs (stabilized_parents (module Adhoc_tree) sg));
    (* Degraded commits: arbitrary links — out of range, self-loops,
       parent cycles — must answer exactly like the bounded chase. *)
    prop ~count:60 "snapshot = naive walks (arbitrary parent arrays)"
      QCheck2.Gen.(
        let* n = int_range 1 18 in
        list_repeat n (int_range (-2) (n + 1)))
      (fun l -> check_all_pairs (Array.of_list l));
  ]

(* Double-buffering contract: no reads before the first commit; each
   commit replaces the served tree wholesale, including across node
   counts (grow and shrink reuse the same store). *)
let test_commit_replaces () =
  let snap = Snapshot.create () in
  Alcotest.(check bool) "not ready before any commit" false (Snapshot.ready snap);
  let p1 = [| -1; 0; 1; 2 |] in
  Snapshot.commit snap p1;
  Alcotest.(check bool) "ready after commit" true (Snapshot.ready snap);
  Alcotest.(check bool) "serves p1" true (check_all_pairs p1 = true);
  Alcotest.(check int) "p1 depth" 3 (Snapshot.depth snap 3);
  (* grow past the initial capacity, then shrink: n tracks the last
     committed array, answers never mix the two *)
  let p2 = Array.init 40 (fun v -> v - 1) in
  Snapshot.commit snap p2;
  Alcotest.(check int) "n grows" 40 (Snapshot.n snap);
  Alcotest.(check int) "deep chain" 39 (Snapshot.depth snap 39);
  let p3 = [| 1; -1 |] in
  Snapshot.commit snap p3;
  Alcotest.(check int) "n shrinks" 2 (Snapshot.n snap);
  Alcotest.(check int) "root moved" 1 (Snapshot.root snap 0);
  ignore (check_all_pairs p3)

(* ------------------------------------------------------------------ *)
(* Packed-vs-boxed service equivalence: the tentpole pin. The same
   episode (graph, trace, daemons, seed) through Service.Make and
   Service.Make_packed must produce structurally equal reports — every
   event outcome, every ladder counter, every staleness count. *)

let trace_of s =
  match Churn.of_string s with Ok t -> t | Error m -> Alcotest.failf "bad trace: %s" m

let episode_pair (type s)
    (module P : Service.PACKED_TREE_PROTOCOL with type state = s) (sd, g) ~sched
    ~trace =
  let module SB = Service.Make (P) in
  let module SP = Service.Make_packed (P) in
  let boxed =
    SB.run ~retry_budget:500 ~max_retries:1 ~queries_per_round:2 g ~sched
      ~fallback:(Scheduler.Distributed 0.5)
      (Random.State.make [| sd; 17 |])
      trace
  in
  let packed =
    SP.run ~retry_budget:500 ~max_retries:1 ~queries_per_round:2 g ~sched
      ~fallback:(Scheduler.Distributed 0.5)
      (Random.State.make [| sd; 17 |])
      trace
  in
  if boxed <> packed then
    QCheck2.Test.fail_reportf
      "packed/boxed episode divergence under %a on %s: recovered %b/%b rounds %d/%d \
       steps %d/%d events %d/%d"
      Scheduler.pp sched (Churn.name trace) boxed.Service.recovered
      packed.Service.recovered boxed.Service.rounds packed.Service.rounds
      boxed.Service.steps packed.Service.steps
      (List.length boxed.Service.events)
      (List.length packed.Service.events);
  true

let equiv_traces = [ "flash-crowd:2"; "regional:2"; "maintenance:2@every:2" ]

let equiv_scheds =
  [ Scheduler.Synchronous; Scheduler.Central Scheduler.Random_daemon ]

let episode_roster (type s)
    (module P : Service.PACKED_TREE_PROTOCOL with type state = s) sg =
  List.for_all
    (fun t ->
      List.for_all
        (fun sched -> episode_pair (module P) sg ~sched ~trace:(trace_of t))
        equiv_scheds)
    equiv_traces

let equiv_props =
  [
    prop ~count:8 "bfs: packed episode = boxed episode" (gen_graph 4 14)
      (episode_roster (module Bfs_tree));
    prop ~count:6 "spt: packed episode = boxed episode" (gen_graph 4 12)
      (episode_roster (module Spt_tree));
    prop ~count:6 "adhoc-bfs: packed episode = boxed episode" (gen_graph 4 12)
      (episode_roster (module Adhoc_tree));
  ]

let test_packed_rejects_loop_free () =
  let module Bad = struct
    include Bfs_builder.Packed

    let parent_of (s : St_layer.t) = s.St_layer.parent
    let loop_free = true
  end in
  match
    let module M = Service.Make_packed (Bad) in
    ignore M.run;
    `No_raise
  with
  | `No_raise -> Alcotest.fail "Make_packed accepted a loop-free builder"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The E13 mdst known failure, minimized (see EXPERIMENTS.md E13):
   the builder's veto-block — a node remembers a vetoed witness edge
   and refuses to re-adopt it until its own degree changes — breaks
   cross-epoch re-marking livelock, but at silence no degree ever
   changes, so a block held by a bad max-degree node is permanent. The
   builder then settles silent on a valid spanning tree that is NOT an
   FR-tree (the sequential marking closure still finds an applicable
   improvement), failing the is_legal certificate. The paper's degree
   bound itself still holds here: the settled tree has degree
   Δmin + 1. *)

let mdst_silent_illegal rng ~n ~m =
  let module En = Engine.Make (Mdst_builder.P) in
  let g = Generators.random_connected rng ~n ~m in
  let init = En.adversarial rng g in
  let r =
    En.run ~max_steps:2_000_000 ~max_rounds:20_000 ~track_legal:true g
      (Scheduler.Central Scheduler.Random_daemon)
      rng ~init
  in
  (g, r.En.silent, r.En.legal, r.En.states)

let check_known_failure what g silent legal states ~exact_mindeg =
  Alcotest.(check bool) (what ^ ": silent") true silent;
  Alcotest.(check bool) (what ^ ": illegal") false legal;
  let parent = Array.map (fun s -> s.Mdst_builder.st.St_layer.parent) states in
  Alcotest.(check bool) (what ^ ": still a spanning tree rooted at 0") true
    (Tree.check_parents ~root:0 parent);
  let t = Tree.of_parents ~root:0 parent in
  Alcotest.(check bool) (what ^ ": not an FR-tree (no witness marking)") true
    (Min_degree.find_marking g t = None);
  Alcotest.(check bool) (what ^ ": an improvement is still applicable") true
    (Min_degree.improve_once g t <> None);
  Alcotest.(check bool) (what ^ ": a bad node holds a permanent veto-block") true
    (Array.exists
       (fun s -> s.Mdst_builder.blocked <> None && not s.Mdst_builder.good)
       states);
  match exact_mindeg with
  | None -> ()
  | Some d ->
      Alcotest.(check int) (what ^ ": degree bound still met (Δmin + 1)") (d + 1)
        (Tree.max_degree t)

let test_mdst_known_failure_minimized () =
  let rng = Random.State.make [| 0xA11; 6; 1 |] in
  let g, silent, legal, states = mdst_silent_illegal rng ~n:6 ~m:12 in
  check_known_failure "n=6" g silent legal states
    ~exact_mindeg:(Some (Min_degree.exact g))

(* The original E13 cell verbatim: the serve matrix's RNG derivation
   for (mdst, flash-crowd:2@silence, random, seed 2) at n=16 — the cell
   `repro_cli serve --n 16 --seeds 2 --algos mdst` reports as
   silent-but-illegal. Base stabilization only; churn never fires. *)
let test_mdst_known_failure_e13_cell () =
  let rng =
    Random.State.make
      [| 1; Hashtbl.hash ("mdst", "flash-crowd:2@silence", "random"); 16; 2 |]
  in
  let gen = Option.get (Generators.by_name "gnp") in
  let g = gen rng ~n:16 in
  let _ops = Churn.expand rng g (Churn.Flash_crowd 2) in
  let module En = Engine.Make (Mdst_builder.P) in
  let init = En.adversarial rng g in
  let r =
    En.run ~max_steps:2_000_000 ~max_rounds:20_000 ~track_legal:true g
      (Scheduler.Central Scheduler.Random_daemon)
      rng ~init
  in
  check_known_failure "E13 cell" g r.En.silent r.En.legal r.En.states
    ~exact_mindeg:None

(* ------------------------------------------------------------------ *)

let () =
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "serve"
    [
      ("snapshot", snapshot_props);
      ( "snapshot-unit",
        [ Alcotest.test_case "commits replace wholesale" `Quick test_commit_replaces ] );
      ("service-equiv", equiv_props);
      ( "service-unit",
        [
          Alcotest.test_case "Make_packed rejects loop-free builders" `Quick
            test_packed_rejects_loop_free;
        ] );
      ( "mdst-known-failure",
        [
          Alcotest.test_case "minimized: veto-block deadlock at n=6" `Quick
            test_mdst_known_failure_minimized;
          Alcotest.test_case "the E13 cell (n=16, seed 2)" `Quick
            test_mdst_known_failure_e13_cell;
        ] );
    ]
