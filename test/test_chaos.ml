(* Chaos harness: the convergence watchdog classifies deliberately
   non-converging runs (livelock, stalled potential) instead of bare
   limit exhaustion; the engine's [?adversary] hook injects faults that
   count as neither steps nor writes; the potential-greedy daemons keep
   the two executors trajectory-identical; and a full chaos episode
   produces recovery records with plausible gap/radius/touched fields. *)

open Repro_graph
open Repro_runtime
open Repro_core

let seed i = Random.State.make [| 0xC4A0; i |]

(* ------------------------------------------------------------------ *)
(* Toy protocols driving the watchdog *)

(* Ping-pong: every node always flips its bit. Under the synchronous
   daemon the configuration alternates between X and ~X forever — a
   period-2 livelock. *)
module Pingpong = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 1
  let initial _ _ = 0
  let random_state rng _ _ = Random.State.int rng 2
  let step view = Some (1 - view.View.self)
  let is_legal _ _ = false
  let potential _ _ = None
  let classify = None
end

(* Counter: every node increments forever; every configuration is fresh
   (no hash ever repeats) but the declared potential never decreases —
   a stalled run. *)
module Counter = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 8
  let initial _ _ = 0
  let random_state rng _ _ = Random.State.int rng 100
  let step view = Some (view.View.self + 1)
  let is_legal _ _ = false
  let potential _ _ = Some 42
  let classify = None
end

(* Inert: never enabled; used to observe the adversary hook in
   isolation. *)
module Inert = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 4
  let initial _ _ = 0
  let random_state rng _ _ = Random.State.int rng 16
  let step _ = None
  let is_legal _ _ = true
  let potential _ _ = None
  let classify = None
end

let watch (type s) (module P : Protocol.S with type state = s) g sched ~max_rounds
    ~stall_window ~watch_phi =
  let module E = Engine.Make (P) in
  let wd = Watchdog.create ~stall_window () in
  let on_round round states =
    Watchdog.observe_round wd ~round ~hash:(Watchdog.config_hash states)
      ~phi:(if watch_phi then P.potential g states else None)
  in
  let r =
    E.run ~max_rounds ~max_steps:100_000 ~on_round
      ~stop_when:(fun () -> Watchdog.tripped wd <> None)
      g sched (seed 1) ~init:(E.initial g)
  in
  (r.E.silent, r.E.rounds, Watchdog.verdict wd ~silent:r.E.silent)

let test_watchdog_livelock () =
  let g = Generators.path (seed 2) ~n:6 in
  let silent, rounds, verdict =
    watch (module Pingpong) g Scheduler.Synchronous ~max_rounds:5_000 ~stall_window:1_000
      ~watch_phi:false
  in
  Alcotest.(check bool) "not silent" false silent;
  (match verdict with
  | Watchdog.Livelock { period; _ } -> Alcotest.(check int) "period 2" 2 period
  | v -> Alcotest.failf "expected livelock, got %s" (Watchdog.verdict_name v));
  Alcotest.(check bool) "cut short, not exhausted" true (rounds < 5_000)

let test_watchdog_stalled () =
  let g = Generators.path (seed 2) ~n:6 in
  let silent, rounds, verdict =
    watch (module Counter) g Scheduler.Synchronous ~max_rounds:5_000 ~stall_window:16
      ~watch_phi:true
  in
  Alcotest.(check bool) "not silent" false silent;
  (match verdict with
  | Watchdog.Stalled { window; _ } -> Alcotest.(check int) "window" 16 window
  | v -> Alcotest.failf "expected stalled, got %s" (Watchdog.verdict_name v));
  Alcotest.(check bool) "cut short, not exhausted" true (rounds < 5_000)

let test_watchdog_exhausted_without_signal () =
  (* Same counter run with the stall detector effectively disabled and no
     phi feed: nothing trips, the budget exhausts, and the verdict says
     so. *)
  let g = Generators.path (seed 2) ~n:6 in
  let silent, rounds, verdict =
    watch (module Counter) g Scheduler.Synchronous ~max_rounds:50 ~stall_window:1_000
      ~watch_phi:false
  in
  Alcotest.(check bool) "not silent" false silent;
  Alcotest.(check int) "ran to the budget" 50 rounds;
  match verdict with
  | Watchdog.Exhausted _ -> ()
  | v -> Alcotest.failf "expected exhausted, got %s" (Watchdog.verdict_name v)

let test_watchdog_reset () =
  let wd = Watchdog.create ~cycle_repeats:3 () in
  Watchdog.observe_round wd ~round:0 ~hash:7 ~phi:None;
  Watchdog.observe_round wd ~round:1 ~hash:7 ~phi:None;
  Alcotest.(check bool) "not yet" true (Watchdog.tripped wd = None);
  Watchdog.observe_round wd ~round:2 ~hash:7 ~phi:None;
  Alcotest.(check bool) "tripped on third sight" true (Watchdog.tripped wd <> None);
  Watchdog.reset wd;
  Alcotest.(check bool) "reset clears the verdict" true (Watchdog.tripped wd = None);
  Watchdog.observe_round wd ~round:3 ~hash:7 ~phi:None;
  Alcotest.(check bool) "history forgotten too" true (Watchdog.tripped wd = None)

let test_watchdog_collision_not_livelock () =
  (* Distinct configurations that share a hash: without the [snap]
     verifier the recurring hash would be scored as a livelock; with it
     occurrences are counted per serialized configuration, so a chain
     of colliding-but-different configurations never trips. *)
  let wd = Watchdog.create ~cycle_repeats:3 () in
  let configs = [ [| 1 |]; [| 2 |]; [| 3 |]; [| 4 |]; [| 5 |]; [| 6 |] ] in
  List.iteri
    (fun i c ->
      Watchdog.observe_round wd ~round:i ~hash:7 ~phi:None
        ~snap:(fun () -> Marshal.to_string c []))
    configs;
  Alcotest.(check bool) "distinct configs under one hash never trip" true
    (Watchdog.tripped wd = None)

let test_watchdog_collision_true_cycle_still_trips () =
  (* A genuine recurrence with [snap] attached must trip at exactly the
     same occurrence count as the hash-only path (cycle_repeats = 3). *)
  let wd = Watchdog.create ~cycle_repeats:3 () in
  let c = [| 9; 9 |] in
  let snap () = Marshal.to_string c [] in
  Watchdog.observe_round wd ~round:0 ~hash:7 ~phi:None ~snap;
  Watchdog.observe_round wd ~round:1 ~hash:7 ~phi:None ~snap;
  Alcotest.(check bool) "second sight does not trip" true (Watchdog.tripped wd = None);
  Watchdog.observe_round wd ~round:2 ~hash:7 ~phi:None ~snap;
  match Watchdog.tripped wd with
  | Some (Watchdog.Livelock { period; _ }) ->
      Alcotest.(check int) "period from the last gap" 1 period
  | v ->
      Alcotest.failf "expected livelock, got %s"
        (match v with None -> "no verdict" | Some v -> Watchdog.verdict_name v)

let test_watchdog_collision_alternating_cycle () =
  (* Two configurations alternating under one hash is a genuine
     period-2 livelock (both recur); the verifier must still catch it
     and report the period between same-configuration sightings. *)
  let wd = Watchdog.create ~cycle_repeats:3 () in
  let a = [| 1; 2 |] and b = [| 3; 4 |] in
  List.iteri
    (fun round c ->
      Watchdog.observe_round wd ~round ~hash:7 ~phi:None
        ~snap:(fun () -> Marshal.to_string c []))
    [ a; b; a; b; a; b ];
  match Watchdog.tripped wd with
  | Some (Watchdog.Livelock { period; _ }) ->
      Alcotest.(check int) "alternation caught with period 2" 2 period
  | v ->
      Alcotest.failf "expected livelock, got %s"
        (match v with None -> "no verdict" | Some v -> Watchdog.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Engine adversary hook *)

let test_adversary_writes_are_not_steps () =
  let module E = Engine.Make (Inert) in
  let g = Generators.path (seed 3) ~n:5 in
  let injected = ref [] in
  let adversary ~round states =
    if round = 0 then begin
      injected := [ (2, states.(2) + 9) ];
      !injected
    end
    else []
  in
  let r = E.run ~adversary g Scheduler.Synchronous (seed 4) ~init:(E.initial g) in
  Alcotest.(check int) "no protocol steps" 0 r.E.steps;
  Alcotest.(check bool) "still silent (protocol inert)" true r.E.silent;
  Alcotest.(check int) "fault landed" 9 r.E.states.(2);
  Alcotest.(check int) "max_bits saw the fault" 4 r.E.max_bits

let test_adversary_periodic_wakes_protocol () =
  (* BFS builder, stabilized start; one injection at each of the first
     two round boundaries. The engine must pick up the newly enabled
     nodes and re-stabilize. *)
  let module P = Bfs_builder.P in
  let module E = Engine.Make (P) in
  let g = Generators.random_connected (seed 5) ~n:12 ~m:16 in
  let base = E.run g (Central Scheduler.Random_daemon) (seed 6) ~init:(E.adversarial (seed 6) g) in
  Alcotest.(check bool) "base stabilized" true (base.E.silent && base.E.legal);
  let count = ref 0 in
  let adversary ~round _states =
    if !count < 2 then begin
      incr count;
      [ (1, P.random_state (seed (100 + round)) g 1) ]
    end
    else []
  in
  let r =
    E.run ~adversary g (Central Scheduler.Random_daemon) (seed 7) ~init:base.E.states
  in
  Alcotest.(check int) "both injections fired" 2 !count;
  Alcotest.(check bool) "re-stabilized" true (r.E.silent && r.E.legal)

(* ------------------------------------------------------------------ *)
(* Greedy daemons: the two executors stay trajectory-identical *)

let equiv (type s) (module P : Protocol.S with type state = s) g sched ~sd =
  let module En = Engine.Make (P) in
  let go run =
    run ~max_steps:20_000 ~max_rounds:2_000 g sched (Random.State.make [| sd; 31 |])
      ~init:(En.adversarial (Random.State.make [| sd; 7 |]) g)
  in
  let a = go (fun ~max_steps ~max_rounds g sched rng ~init ->
      En.run ~max_steps ~max_rounds g sched rng ~init)
  in
  let b = go (fun ~max_steps ~max_rounds g sched rng ~init ->
      En.run_reference ~max_steps ~max_rounds g sched rng ~init)
  in
  Array.for_all2 P.equal_state a.En.states b.En.states
  && a.En.steps = b.En.steps && a.En.rounds = b.En.rounds && a.En.silent = b.En.silent

let prop_greedy_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:10 ~name:"greedy daemons: run = run_reference"
       QCheck2.Gen.(
         let* n = int_range 2 12 in
         let* extra = int_range 0 n in
         let* sd = int_bound 1_000_000 in
         return (sd, Generators.random_connected (Random.State.make [| sd |]) ~n ~m:(n - 1 + extra)))
       (fun (sd, g) ->
         List.for_all
           (fun sched ->
             equiv (module Bfs_builder.P) g sched ~sd
             && equiv (module Spt_builder.P) g sched ~sd)
           [
             Scheduler.Central Scheduler.Greedy_max_phi;
             Scheduler.Central Scheduler.Greedy_min_phi;
           ]))

let test_greedy_max_drags () =
  (* The adversarial greedy daemon must not be faster than steepest
     descent on the same instance (it maximizes the remaining
     potential at every pick). *)
  let module E = Engine.Make (Spt_builder.P) in
  let g = Generators.random_connected (seed 8) ~n:14 ~m:24 in
  let run sched sd =
    let r = E.run g sched (seed sd) ~init:(E.adversarial (seed sd) g) in
    Alcotest.(check bool) "stabilizes" true (r.E.silent && r.E.legal);
    r.E.steps
  in
  let slow = run (Central Scheduler.Greedy_max_phi) 11 in
  let fast = run (Central Scheduler.Greedy_min_phi) 11 in
  Alcotest.(check bool)
    (Printf.sprintf "greedy-max (%d steps) >= greedy-min (%d steps)" slow fast)
    true (slow >= fast)

(* ------------------------------------------------------------------ *)
(* Full chaos episodes *)

let test_episode_silence_plan () =
  let module C = Chaos.Make (Bfs_builder.P) in
  let g = Generators.random_connected (seed 12) ~n:16 ~m:24 in
  let tel = Telemetry.create ~record_phi:false () in
  let plan = Fault.Plan.make (Fault.Plan.Random_nodes 3) in
  let e =
    C.run_episode ~watch_phi:true ~telemetry:tel g (Central Scheduler.Random_daemon)
      (seed 13) plan
  in
  Alcotest.(check bool) "recovered" true e.C.recovered;
  Alcotest.(check string) "verdict" "converged" (Watchdog.verdict_name e.C.verdict);
  (match e.C.injections with
  | [ i ] ->
      Alcotest.(check int) "injected at fault-phase round 0" 0 i.Chaos.round;
      Alcotest.(check int) "three nodes" 3 (List.length i.Chaos.nodes);
      Alcotest.(check bool) "gap recorded" true (i.Chaos.gap = Some e.C.rounds);
      Alcotest.(check bool) "radius bounded by diameter" true
        (match i.Chaos.radius with
        | None -> i.Chaos.touched = 0
        | Some r -> r >= 0 && r <= Traversal.diameter g)
  | l -> Alcotest.failf "expected 1 injection, got %d" (List.length l));
  Alcotest.(check int) "telemetry mirrors the record" 1
    (List.length (Telemetry.recoveries tel))

let test_episode_periodic_plan () =
  let module C = Chaos.Make (Spt_builder.P) in
  let g = Generators.random_connected (seed 14) ~n:16 ~m:24 in
  let plan =
    Fault.Plan.make (Fault.Plan.Random_nodes 2) ~timing:(Fault.Plan.Periodic 4)
  in
  let e =
    C.run_episode ~max_injections:3 ~watch_phi:true g (Central Scheduler.Random_daemon)
      (seed 15) plan
  in
  Alcotest.(check bool) "recovered" true e.C.recovered;
  Alcotest.(check int) "injection budget spent" 3 (List.length e.C.injections);
  List.iter
    (fun i -> Alcotest.(check bool) "nodes non-empty" true (i.Chaos.nodes <> []))
    e.C.injections;
  (* the last injection always carries a gap when the episode recovered *)
  match List.rev e.C.injections with
  | last :: _ -> Alcotest.(check bool) "final gap present" true (last.Chaos.gap <> None)
  | [] -> assert false

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_chaos"
    [
      ( "watchdog",
        [
          Alcotest.test_case "livelock verdict on a ping-pong run" `Quick
            test_watchdog_livelock;
          Alcotest.test_case "stalled verdict on a constant-phi run" `Quick
            test_watchdog_stalled;
          Alcotest.test_case "exhausted only without a signal" `Quick
            test_watchdog_exhausted_without_signal;
          Alcotest.test_case "reset forgets history" `Quick test_watchdog_reset;
          Alcotest.test_case "hash collision is not a livelock" `Quick
            test_watchdog_collision_not_livelock;
          Alcotest.test_case "true cycle still trips with the verifier" `Quick
            test_watchdog_collision_true_cycle_still_trips;
          Alcotest.test_case "alternating configurations still livelock" `Quick
            test_watchdog_collision_alternating_cycle;
        ] );
      ( "adversary hook",
        [
          Alcotest.test_case "fault writes are not steps" `Quick
            test_adversary_writes_are_not_steps;
          Alcotest.test_case "mid-run injection re-stabilizes" `Quick
            test_adversary_periodic_wakes_protocol;
        ] );
      ( "greedy daemons",
        [
          prop_greedy_equiv;
          Alcotest.test_case "greedy-max is no faster than greedy-min" `Quick
            test_greedy_max_drags;
        ] );
      ( "episodes",
        [
          Alcotest.test_case "silence plan: gap/radius/touched recorded" `Quick
            test_episode_silence_plan;
          Alcotest.test_case "periodic plan: budget spent mid-run" `Quick
            test_episode_periodic_plan;
        ] );
    ]
