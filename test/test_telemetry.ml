(* Tests for the telemetry layer: Metrics histogram bucketing edge cases,
   JSON writer/parser round-trips, Telemetry round accounting, and the
   per-round phi trajectory of a synchronous MST run (non-increasing once
   the configuration is legal, ending at 0). *)

open Repro_graph
open Repro_runtime
open Repro_core
module Json = Metrics.Json

let seed i = Random.State.make [| 0x7E1E; i |]

(* ------------------------------------------------------------------ *)
(* Metrics: histogram bucketing *)

let test_bucket_index () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Metrics.bucket_index 0);
  Alcotest.(check int) "negative -> bucket 0" 0 (Metrics.bucket_index (-5));
  Alcotest.(check int) "min_int -> bucket 0" 0 (Metrics.bucket_index min_int);
  Alcotest.(check int) "1 -> bucket 1" 1 (Metrics.bucket_index 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (Metrics.bucket_index 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Metrics.bucket_index 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (Metrics.bucket_index 4);
  Alcotest.(check int) "max_int -> bucket 62" 62 (Metrics.bucket_index max_int);
  Alcotest.(check int) "lower of bucket 0" 0 (Metrics.bucket_lower 0);
  Alcotest.(check int) "lower of bucket 1" 1 (Metrics.bucket_lower 1);
  Alcotest.(check int) "lower of bucket 62" (1 lsl 61) (Metrics.bucket_lower 62);
  (* Every positive value lands in the bucket [2^(i-1), 2^i - 1]. *)
  List.iter
    (fun v ->
      let lower = Metrics.bucket_lower (Metrics.bucket_index v) in
      Alcotest.(check bool)
        (Printf.sprintf "%d >= its bucket lower bound" v)
        true (v >= lower);
      Alcotest.(check bool)
        (Printf.sprintf "%d/2 < its bucket lower bound" v)
        true (v lsr 1 < lower))
    [ 1; 2; 3; 4; 7; 8; 1000; 65535; 65536; max_int ]

let test_histogram_observe () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "h" in
  Alcotest.(check (option int)) "empty min" None (Metrics.hist_min h);
  Alcotest.(check (option int)) "empty max" None (Metrics.hist_max h);
  List.iter (Metrics.observe h) [ 0; 1; max_int ];
  Alcotest.(check int) "count" 3 (Metrics.hist_count h);
  Alcotest.(check (option int)) "min" (Some 0) (Metrics.hist_min h);
  Alcotest.(check (option int)) "max" (Some max_int) (Metrics.hist_max h);
  Alcotest.(check (list (pair int int)))
    "buckets: one value in each of 0, 1, 2^61"
    [ (0, 1); (1, 1); (1 lsl 61, 1) ]
    (Metrics.buckets h)

let test_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "runs" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "idempotent registration" 5
    (Metrics.counter_value (Metrics.counter reg "runs"));
  let g = Metrics.gauge reg "phi" in
  Alcotest.(check (option int)) "gauge unset" None (Metrics.gauge_value g);
  Metrics.set g 42;
  Alcotest.(check (option int)) "gauge set" (Some 42) (Metrics.gauge_value g);
  Alcotest.check_raises "kind collision" (Invalid_argument
    "Metrics: \"runs\" already registered as a different kind (gauge)") (fun () ->
      ignore (Metrics.gauge reg "runs"));
  match Json.member "counters" (Metrics.to_json reg) with
  | Some (Json.Obj fields) ->
      Alcotest.(check bool) "counter in json" true
        (List.assoc_opt "runs" fields = Some (Json.Int 5))
  | _ -> Alcotest.fail "no counters object"

(* ------------------------------------------------------------------ *)
(* JSON round-trips *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("ints", Json.List [ Json.Int 0; Json.Int (-17); Json.Int max_int ]);
        ("float", Json.Float 0.5);
        ("escaped", Json.Str "a \"quote\", a \\ backslash,\na newline\tand \001 control");
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [ ("x", Json.Int 1) ] ]) ]);
      ]
  in
  match Json.of_string (Json.to_string j) with
  | Some j' -> Alcotest.(check bool) "round-trip equal" true (j = j')
  | None -> Alcotest.fail "round-trip parse failed"

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (Json.of_string s = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

(* The full escape grammar, exercised from both ends: a property over
   the Json AST with strings drawn from arbitrary bytes (every control
   character goes through the writer's escape path), and directed
   \uXXXX decoding cases including surrogate pairs. Floats are excluded
   from the generator: NaN/infinity have no JSON form. *)
let json_gen =
  let open QCheck2.Gen in
  let raw_string n = string_size ~gen:char (int_bound n) in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun s -> Json.Str s) (raw_string 12);
             ]
         in
         if n <= 0 then leaf
         else
           frequency
             [
               (3, leaf);
               (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4) (pair (raw_string 8) (self (n / 2)))) );
             ])

let prop_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500
       ~name:"json writer/parser round-trip over arbitrary byte strings" json_gen (fun j ->
         Json.of_string (Json.to_string j) = Some j))

let test_json_unicode_escapes () =
  List.iter
    (fun (input, expect) ->
      match Json.of_string input with
      | Some (Json.Str s) -> Alcotest.(check string) input expect s
      | _ -> Alcotest.failf "failed to parse %s" input)
    [
      ({|"\u0041"|}, "A");
      ({|"\u00e9"|}, "\xc3\xa9") (* e-acute as two UTF-8 bytes *);
      ({|"\u2713"|}, "\xe2\x9c\x93") (* check mark, three bytes *);
      ({|"\ud83d\ude00"|}, "\xf0\x9f\x98\x80") (* surrogate pair -> U+1F600 *);
      ({|"\b\f"|}, "\b\012");
    ];
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %s" s)
        true
        (Json.of_string s = None))
    [
      {|"\u12g4"|} (* non-hex digit *);
      {|"\u1_23"|} (* underscores are not hex *);
      {|"\u123"|} (* too short *);
      {|"\ud800"|} (* lone high surrogate *);
      {|"\udc00"|} (* lone low surrogate *);
      {|"\ud83dA"|} (* high surrogate not followed by a low one *);
    ]

(* ------------------------------------------------------------------ *)
(* Telemetry accounting on a real run *)

module ME = Mst_builder.Engine

let mst_run () =
  let rng = seed 1 in
  let g = Generators.random_connected rng ~n:12 ~m:24 in
  let telemetry = Telemetry.create () in
  let r =
    ME.run ~track_legal:true g Scheduler.Synchronous rng ~init:(ME.initial g) ~telemetry
  in
  (g, r, telemetry)

let test_telemetry_accounting () =
  let _g, r, tel = mst_run () in
  Alcotest.(check bool) "silent" true r.ME.silent;
  let samples = Telemetry.samples tel in
  Alcotest.(check bool) "one sample per round boundary" true
    (List.length samples = r.ME.rounds + 1);
  let last = Option.get (Telemetry.last tel) in
  Alcotest.(check int) "writes_total = engine steps" r.ME.steps last.Telemetry.writes_total;
  Alcotest.(check int) "no node enabled at the end" 0 last.Telemetry.enabled;
  let sum_writes =
    List.fold_left (fun acc s -> acc + s.Telemetry.writes) 0 samples
  in
  Alcotest.(check int) "per-round writes sum to the total" r.ME.steps sum_writes;
  Alcotest.(check bool) "round-boundary max_bits <= engine max_bits" true
    (List.for_all (fun s -> s.Telemetry.max_bits <= r.ME.max_bits) samples);
  (* CSV: header + one line per sample. *)
  let lines = String.split_on_char '\n' (String.trim (Telemetry.to_csv tel)) in
  Alcotest.(check int) "csv line count" (List.length samples + 1) (List.length lines)

let test_telemetry_json_roundtrip () =
  let _g, _r, tel = mst_run () in
  let j = Telemetry.to_json ~meta:[ ("algo", Json.Str "mst") ] tel in
  match Json.of_string (Json.to_string j) with
  | None -> Alcotest.fail "telemetry json does not parse"
  | Some j' ->
      Alcotest.(check bool) "round-trip equal" true (j = j');
      (match Json.member "summary" j' with
      | Some s ->
          Alcotest.(check bool) "phi_final = 0" true
            (Json.member "phi_final" s = Some (Json.Int 0))
      | None -> Alcotest.fail "no summary");
      (match Json.member "rounds" j' with
      | Some (Json.List l) ->
          Alcotest.(check bool) "per-round series present" true (List.length l > 1)
      | _ -> Alcotest.fail "no rounds series")

let test_phi_non_increasing_after_legal () =
  let _g, r, tel = mst_run () in
  let first_legal =
    match r.ME.first_legal_round with
    | Some x -> x
    | None -> Alcotest.fail "run never became legal"
  in
  let phis = Telemetry.phi_series tel in
  Alcotest.(check bool) "phi defined on some rounds" true (phis <> []);
  let _, final = List.nth phis (List.length phis - 1) in
  Alcotest.(check int) "phi ends at 0" 0 final;
  (* After the last illegitimate round (once the configuration is legal),
     phi never increases again. *)
  let rec check = function
    | (r1, p1) :: ((r2, p2) :: _ as rest) ->
        if r1 >= first_legal && r2 >= first_legal then
          Alcotest.(check bool)
            (Printf.sprintf "phi non-increasing %d->%d (rounds %d->%d)" p1 p2 r1 r2)
            true (p2 <= p1);
        check rest
    | _ -> ()
  in
  check phis

let test_record_phi_opt_out () =
  let rng = seed 2 in
  let g = Generators.random_connected rng ~n:10 ~m:20 in
  let telemetry = Telemetry.create ~record_phi:false () in
  let r = ME.run g Scheduler.Synchronous rng ~init:(ME.initial g) ~telemetry in
  Alcotest.(check bool) "silent" true r.ME.silent;
  Alcotest.(check (list (pair int int))) "no phi recorded" [] (Telemetry.phi_series telemetry)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repro_telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket index edge cases" `Quick test_bucket_index;
          Alcotest.test_case "histogram observe 0/1/max_int" `Quick test_histogram_observe;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          prop_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "round accounting + csv" `Quick test_telemetry_accounting;
          Alcotest.test_case "json round-trip, phi_final = 0" `Quick
            test_telemetry_json_roundtrip;
          Alcotest.test_case "phi non-increasing after legality" `Quick
            test_phi_non_increasing_after_legal;
          Alcotest.test_case "record_phi opt-out" `Quick test_record_phi_opt_out;
        ] );
    ]
