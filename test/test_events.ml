(* Event layer: the activation-DAG invariant (every cause precedes its
   move and is edge-adjacent) across all four builders and daemons;
   tracing is semantically invisible (identical run with and without a
   sink); chaos episodes attribute recovery moves to fault injections;
   ring/stream sink semantics; the Explain report's accounting. *)

open Repro_graph
open Repro_runtime
open Repro_core

let seed i = Random.State.make [| 0xEE17; i |]

(* ------------------------------------------------------------------ *)
(* The activation-DAG invariant *)

(* Replay the ring oldest-first: each Move's causes must name earlier
   Move/Fault events whose writing node is the mover itself or one of
   its graph neighbors. *)
let dag_ok g evs =
  let writer = Hashtbl.create 97 in
  List.for_all
    (fun (ev : Events.event) ->
      let ok =
        match ev.Events.kind with
        | Events.Move { node; causes; _ } ->
            List.for_all
              (fun c ->
                c < ev.Events.id
                &&
                match Hashtbl.find_opt writer c with
                | Some u -> u = node || Graph.has_edge g u node
                | None -> false)
              causes
        | Events.Fault _ | Events.Churn _ | Events.Round _ -> true
      in
      (match ev.Events.kind with
      | Events.Move { node; _ }
      | Events.Fault { node; _ }
      | Events.Churn { node; _ } ->
          Hashtbl.replace writer ev.Events.id node
      | Events.Round _ -> ());
      ok)
    evs

(* Returns (steps, retained events) — the functor's result record can't
   escape the local module. *)
let traced_run (type s) (module P : Protocol.S with type state = s) g sched ~sd =
  let module E = Engine.Make (P) in
  let sink = Events.ring ~capacity:1_000_000 () in
  let r =
    E.run ~max_steps:50_000 ~max_rounds:5_000 ~events:sink g sched
      (Random.State.make [| sd; 3 |])
      ~init:(E.adversarial (Random.State.make [| sd; 5 |]) g)
  in
  (r.E.steps, Events.events sink)

let builders : (string * (module Protocol.S)) list =
  [
    ("bfs", (module Bfs_builder.P));
    ("mst", (module Mst_builder.P));
    ("mdst", (module Mdst_builder.P));
    ("spt", (module Spt_builder.P));
  ]

let prop_activation_dag =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8
       ~name:"activation DAG: causes precede and are edge-adjacent (4 builders x 2 daemons)"
       QCheck2.Gen.(
         let* n = int_range 2 10 in
         let* extra = int_range 0 n in
         let* sd = int_bound 1_000_000 in
         return
           (sd, Generators.random_connected (Random.State.make [| sd |]) ~n ~m:(n - 1 + extra)))
       (fun (sd, g) ->
         List.for_all
           (fun sched ->
             List.for_all
               (fun (_, (module P : Protocol.S)) ->
                 let _, evs = traced_run (module P) g sched ~sd in
                 dag_ok g evs)
               builders)
           [ Scheduler.Central Scheduler.Random_daemon; Scheduler.Distributed 0.5 ]))

let test_moves_are_fully_recorded () =
  (* One move event per engine step, each tagged by classify (all four
     builders implement it, so no "?" rules), ids strictly increasing. *)
  List.iter
    (fun (name, (module P : Protocol.S)) ->
      let g = Generators.random_connected (seed 20) ~n:10 ~m:16 in
      let steps, evs =
        traced_run (module P) g (Scheduler.Central Scheduler.Random_daemon) ~sd:21
      in
      let moves =
        List.filter
          (fun (e : Events.event) ->
            match e.Events.kind with Events.Move _ -> true | _ -> false)
          evs
      in
      Alcotest.(check int) (name ^ ": one event per step") steps (List.length moves);
      List.iter
        (fun (e : Events.event) ->
          match e.Events.kind with
          | Events.Move { rule; _ } ->
              Alcotest.(check bool) (name ^ ": move is rule-tagged") true (rule <> None)
          | _ -> ())
        moves;
      let ids = List.map (fun (e : Events.event) -> e.Events.id) evs in
      Alcotest.(check bool)
        (name ^ ": ids strictly increase")
        true
        (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ids - 1) ids)
           (List.tl ids)))
    builders

(* ------------------------------------------------------------------ *)
(* Tracing must not change semantics *)

let test_tracing_is_semantically_invisible () =
  List.iter
    (fun (name, (module P : Protocol.S)) ->
      let module E = Engine.Make (P) in
      let g = Generators.random_connected (seed 30) ~n:12 ~m:20 in
      let go ~traced =
        let events = if traced then Some (Events.ring ()) else None in
        let profile = if traced then Some (Profile.create ()) else None in
        E.run ?events ?profile ~max_rounds:5_000 g
          (Scheduler.Central Scheduler.Random_daemon)
          (Random.State.make [| 31 |])
          ~init:(E.adversarial (Random.State.make [| 32 |]) g)
      in
      let plain = go ~traced:false and traced = go ~traced:true in
      Alcotest.(check bool)
        (name ^ ": same configuration")
        true
        (Array.for_all2 P.equal_state plain.E.states traced.E.states);
      Alcotest.(check int) (name ^ ": same rounds") plain.E.rounds traced.E.rounds;
      Alcotest.(check int) (name ^ ": same steps") plain.E.steps traced.E.steps;
      Alcotest.(check bool) (name ^ ": same silence") plain.E.silent traced.E.silent)
    builders

(* ------------------------------------------------------------------ *)
(* Chaos attribution *)

(* Taint propagation over the activation DAG: faults are sources, a move
   is tainted when any cause is tainted. *)
let tainted_moves evs =
  let tainted = Hashtbl.create 97 in
  List.filter_map
    (fun (ev : Events.event) ->
      match ev.Events.kind with
      | Events.Fault _ | Events.Churn _ ->
          Hashtbl.replace tainted ev.Events.id ();
          None
      | Events.Move { causes; _ } ->
          if List.exists (Hashtbl.mem tainted) causes then begin
            Hashtbl.replace tainted ev.Events.id ();
            Some ev.Events.id
          end
          else None
      | Events.Round _ -> None)
    evs

let first_fault_id evs =
  List.find_map
    (fun (ev : Events.event) ->
      match ev.Events.kind with Events.Fault _ -> Some ev.Events.id | _ -> None)
    evs

let test_chaos_silence_attribution () =
  (* At-silence plan: the pre-fault configuration is silent, so EVERY
     recovery move must be causally attributed to the injection — none
     may be root-spontaneous. *)
  let module C = Chaos.Make (Bfs_builder.P) in
  let g = Generators.random_connected (seed 40) ~n:16 ~m:24 in
  let sink = Events.ring ~capacity:1_000_000 () in
  let e =
    C.run_episode ~watch_phi:true ~events:sink g (Central Scheduler.Random_daemon)
      (seed 41)
      (Fault.Plan.make (Fault.Plan.Random_nodes 3))
  in
  Alcotest.(check bool) "recovered" true e.C.recovered;
  let evs = Events.events sink in
  Alcotest.(check bool) "DAG invariant holds across the episode" true (dag_ok g evs);
  let fid = match first_fault_id evs with Some i -> i | None -> Alcotest.fail "no fault event" in
  let tainted = tainted_moves evs in
  let recovery_moves =
    List.filter_map
      (fun (ev : Events.event) ->
        match ev.Events.kind with
        | Events.Move _ when ev.Events.id > fid -> Some ev.Events.id
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "recovery happened" true (recovery_moves <> []);
  Alcotest.(check (list int)) "every recovery move is fault-attributed" recovery_moves tainted

let test_chaos_periodic_attribution () =
  (* Periodic plan: phase-1 convergence moves are root-spontaneous;
     anything tainted must postdate the first injection, and at least
     one recovery move is attributed. *)
  let module C = Chaos.Make (Spt_builder.P) in
  let g = Generators.random_connected (seed 42) ~n:16 ~m:24 in
  let sink = Events.ring ~capacity:1_000_000 () in
  let e =
    C.run_episode ~max_injections:3 ~watch_phi:true ~events:sink g
      (Central Scheduler.Random_daemon) (seed 43)
      (Fault.Plan.make (Fault.Plan.Random_nodes 2) ~timing:(Fault.Plan.Periodic 4))
  in
  Alcotest.(check bool) "recovered" true e.C.recovered;
  let evs = Events.events sink in
  Alcotest.(check bool) "DAG invariant holds across the episode" true (dag_ok g evs);
  let fid = match first_fault_id evs with Some i -> i | None -> Alcotest.fail "no fault event" in
  let tainted = tainted_moves evs in
  Alcotest.(check bool) "some recovery move is attributed" true (tainted <> []);
  Alcotest.(check bool)
    "nothing before the first fault is attributed" true
    (List.for_all (fun id -> id > fid) tainted)

(* ------------------------------------------------------------------ *)
(* Sink semantics *)

let test_ring_capacity () =
  let sink = Events.ring ~capacity:4 () in
  for i = 1 to 10 do
    ignore
      (Events.emit_move sink ~node:i ~step:i ~round:0 ~bits_before:1 ~bits_after:1
         ~causes:[] ())
  done;
  Alcotest.(check int) "total counts everything" 10 (Events.total sink);
  Alcotest.(check int) "retained capped" 4 (Events.retained sink);
  let ids = List.map (fun (e : Events.event) -> e.Events.id) (Events.events sink) in
  Alcotest.(check (list int)) "oldest dropped" [ 6; 7; 8; 9 ] ids;
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Events.ring: capacity must be positive") (fun () ->
      ignore (Events.ring ~capacity:0 ()))

let test_stream_roundtrip_explain () =
  (* Stream a traced run to JSONL, re-parse with Explain, and check the
     report's books balance. *)
  let module E = Engine.Make (Bfs_builder.P) in
  let g = Generators.random_connected (seed 50) ~n:14 ~m:22 in
  let path = Filename.temp_file "events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Events.stream ~record_phi:true oc in
      Events.meta sink
        [ ("algo", Metrics.Json.Str "bfs"); ("n", Metrics.Json.Int (Graph.n g)) ];
      let r =
        E.run ~events:sink g (Scheduler.Central Scheduler.Random_daemon) (seed 51)
          ~init:(E.adversarial (seed 52) g)
      in
      close_out oc;
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Explain.parse contents with
      | Error msg -> Alcotest.failf "parse failed: %s" msg
      | Ok t ->
          Alcotest.(check int) "all moves survive the round trip" r.E.steps
            (List.length t.Explain.moves);
          Alcotest.(check bool) "meta header read back" true (t.Explain.meta <> None);
          let report = Explain.analyze t in
          Alcotest.(check int) "report counts the moves" r.E.steps report.Explain.total_moves;
          Alcotest.(check int) "rule breakdown sums to the moves" r.E.steps
            (List.fold_left (fun a (_, c) -> a + c) 0 report.Explain.rule_breakdown);
          Alcotest.(check int) "attribution partitions the moves" r.E.steps
            (report.Explain.root_spontaneous + report.Explain.fault_attributed);
          Alcotest.(check bool) "phi milestones recorded" true
            (report.Explain.phi_milestones <> []);
          Alcotest.(check bool) "no faults, no cones" true (report.Explain.cones = []);
          (* both renderers must produce non-trivial output *)
          Alcotest.(check bool) "text renders" true
            (String.length (Explain.to_text report) > 0);
          let html = Explain.to_html report in
          Alcotest.(check bool) "html is self-contained" true
            (String.length html > 0
            && String.sub html 0 15 = "<!DOCTYPE html>"))

(* ------------------------------------------------------------------ *)
(* Profiling counters *)

let test_profile_counters () =
  let module E = Engine.Make (Mst_builder.P) in
  let g = Generators.random_connected (seed 60) ~n:12 ~m:20 in
  let p = Profile.create () in
  let r =
    E.run ~profile:p g Scheduler.Synchronous (seed 61) ~init:(E.initial g)
  in
  Alcotest.(check int) "moves = engine steps" r.E.steps p.Profile.moves;
  Alcotest.(check int) "every move is rule-classified" r.E.steps
    (List.fold_left (fun a (_, c) -> a + c) 0 (Profile.rule_counts p));
  Alcotest.(check bool) "guards were evaluated" true (p.Profile.guard_evals > 0);
  Alcotest.(check bool) "hit rate in [0,1]" true
    (Profile.hit_rate p >= 0.0 && Profile.hit_rate p <= 1.0);
  let m = Metrics.create () in
  Profile.export p m;
  Alcotest.(check int) "exported into the metrics registry" r.E.steps
    (Metrics.counter_value (Metrics.counter m "engine.moves"))

let () =
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_events"
    [
      ( "activation DAG",
        [
          prop_activation_dag;
          Alcotest.test_case "moves fully recorded and rule-tagged" `Quick
            test_moves_are_fully_recorded;
        ] );
      ( "zero-cost-off",
        [
          Alcotest.test_case "tracing is semantically invisible" `Quick
            test_tracing_is_semantically_invisible;
        ] );
      ( "chaos attribution",
        [
          Alcotest.test_case "at-silence: every recovery move attributed" `Quick
            test_chaos_silence_attribution;
          Alcotest.test_case "periodic: attribution starts at the first fault" `Quick
            test_chaos_periodic_attribution;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "ring drops oldest, counts total" `Quick test_ring_capacity;
          Alcotest.test_case "stream -> Explain round trip" `Quick
            test_stream_roundtrip_explain;
        ] );
      ( "profile",
        [ Alcotest.test_case "counters account for the run" `Quick test_profile_counters ] );
    ]
