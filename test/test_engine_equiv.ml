(* The incremental engine (Engine.run: move cache, reusable scratch
   views, intrusive enabled set, bitset round accounting) must be
   trajectory-identical to the naive executor (Engine.run_reference).
   Property: for random graphs x every scheduler x all four builders,
   both produce the same {states; steps; rounds; silent; legal} (plus
   max_bits and first_legal_round) from the same seed. Unit cases pin
   the move-cache invalidation paths: a neighbor's write re-enables a
   cached-disabled node (touch), and a corrupted configuration rebuilds
   the cache from the faulty registers (fault injection). *)

open Repro_graph
open Repro_runtime
open Repro_core

let seed i = Random.State.make [| 0xF00D; i |]

(* ------------------------------------------------------------------ *)
(* The comparison runner. Both executors get their own RNG built from
   the same seed, so scheduler coin flips line up; limits are kept low
   enough that even a starving daemon's stall stays cheap — equivalence
   must hold whatever the termination reason. *)

let equiv (type s) (module P : Protocol.S with type state = s) g sched ~init ~sd =
  let module En = Engine.Make (P) in
  let limits f =
    f ~max_steps:20_000 ~max_rounds:2_000 ~track_legal:true g sched
      (Random.State.make [| sd; 31 |])
      ~init
  in
  let a = limits (fun ~max_steps ~max_rounds ~track_legal g sched rng ~init ->
      En.run ~max_steps ~max_rounds ~track_legal g sched rng ~init)
  in
  let b = limits (fun ~max_steps ~max_rounds ~track_legal g sched rng ~init ->
      En.run_reference ~max_steps ~max_rounds ~track_legal g sched rng ~init)
  in
  let states_eq =
    Array.length a.En.states = Array.length b.En.states
    && Array.for_all2 P.equal_state a.En.states b.En.states
  in
  let ok =
    states_eq && a.En.steps = b.En.steps && a.En.rounds = b.En.rounds
    && a.En.silent = b.En.silent && a.En.legal = b.En.legal
    && a.En.max_bits = b.En.max_bits
    && a.En.first_legal_round = b.En.first_legal_round
  in
  if not ok then
    QCheck2.Test.fail_reportf
      "divergence under %a: steps %d/%d rounds %d/%d silent %b/%b legal %b/%b \
       max_bits %d/%d first_legal %s/%s states_eq %b"
      Scheduler.pp sched a.En.steps b.En.steps a.En.rounds b.En.rounds a.En.silent
      b.En.silent a.En.legal b.En.legal a.En.max_bits b.En.max_bits
      (match a.En.first_legal_round with Some r -> string_of_int r | None -> "-")
      (match b.En.first_legal_round with Some r -> string_of_int r | None -> "-")
      states_eq;
  true

let all_schedulers = List.map snd Scheduler.all

let equiv_all_schedulers (type s) (module P : Protocol.S with type state = s) g ~sd
    ~adversarial =
  let module En = Engine.Make (P) in
  let init =
    if adversarial then En.adversarial (Random.State.make [| sd; 7 |]) g
    else En.initial g
  in
  List.for_all (fun sched -> equiv (module P) g sched ~init ~sd) all_schedulers

(* ------------------------------------------------------------------ *)
(* Properties: one per builder. MST/MDST start from the designated boot
   configuration (as in E1/E2) and on smaller graphs — their steps are
   expensive; BFS/SPT start adversarially (as in E5/E11). *)

let prop ?(count = 10) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_graph lo hi =
  QCheck2.Gen.(
    let* n = int_range lo hi in
    let* extra = int_range 0 n in
    let* sd = int_bound 1_000_000 in
    return (sd, Generators.random_connected (Random.State.make [| sd |]) ~n ~m:(n - 1 + extra)))

let prop_bfs =
  prop ~count:14 "bfs builder: run = run_reference (all daemons)" (gen_graph 2 16)
    (fun (sd, g) -> equiv_all_schedulers (module Bfs_builder.P) g ~sd ~adversarial:true)

let prop_spt =
  prop ~count:14 "spt builder: run = run_reference (all daemons)" (gen_graph 2 16)
    (fun (sd, g) -> equiv_all_schedulers (module Spt_builder.P) g ~sd ~adversarial:true)

let prop_mst =
  prop ~count:8 "mst builder: run = run_reference (all daemons)" (gen_graph 2 9)
    (fun (sd, g) -> equiv_all_schedulers (module Mst_builder.P) g ~sd ~adversarial:false)

let prop_mdst =
  prop ~count:6 "mdst builder: run = run_reference (all daemons)" (gen_graph 2 8)
    (fun (sd, g) -> equiv_all_schedulers (module Mdst_builder.P) g ~sd ~adversarial:false)

(* ------------------------------------------------------------------ *)
(* Unit: the move cache is invalidated by a neighbor's write (touch).
   Max-propagation: a node is enabled iff some neighbor holds a larger
   value; its move adopts the neighborhood max. On a path driven by the
   min-id daemon, node v+1's cached move is None until node v's write
   re-enables it — a stale cache would declare silence after one step
   and never propagate the max to the far end. *)

module MaxProp = struct
  type state = int

  let equal_state = Int.equal
  let pp_state = Format.pp_print_int
  let size_bits _ _ = 1
  let initial _g v = if v = 0 then 100 else 0
  let random_state rng _g _v = Random.State.int rng 50

  let step v =
    let best = View.fold (fun acc _ _ s -> max acc s) v.View.self v in
    if best > v.View.self then Some best else None

  let is_legal _g states =
    let mx = Array.fold_left max min_int states in
    Array.for_all (fun s -> s = mx) states

  let potential _ _ = None
  let classify = None
end

module EMax = Engine.Make (MaxProp)

let test_touch_invalidates_cache () =
  let st = seed 1 in
  let g = Generators.path st ~n:12 in
  (* Node 0 holds the max; min-id central daemon steps the frontier node
     each time, so every later node starts cache-disabled and is only
     re-enabled by its predecessor's write. *)
  let r =
    EMax.run g (Scheduler.Central Scheduler.Min_id) st ~init:(EMax.initial g)
  in
  Alcotest.(check bool) "silent" true r.EMax.silent;
  Alcotest.(check bool) "max propagated (stale cache would stop early)" true
    (Array.for_all (fun s -> s = 100) r.EMax.states);
  Alcotest.(check int) "one write per non-max node" 11 r.EMax.steps;
  let r2 =
    EMax.run_reference g (Scheduler.Central Scheduler.Min_id) (seed 1)
      ~init:(EMax.initial g)
  in
  Alcotest.(check int) "steps match reference" r2.EMax.steps r.EMax.steps;
  Alcotest.(check int) "rounds match reference" r2.EMax.rounds r.EMax.rounds

(* Unit: fault injection rebuilds the cache from the corrupted
   registers — a fresh run on a corrupted silent configuration must see
   the corruption (not the stale silence), recover, and do so exactly
   as the reference engine does. *)
let test_fault_injection_invalidates_cache () =
  let st = seed 2 in
  let g = Generators.gnp st ~n:16 ~p:0.3 in
  let r = EMax.run g Scheduler.Synchronous st ~init:(EMax.initial g) in
  Alcotest.(check bool) "stabilized" true (r.EMax.silent && r.EMax.legal);
  let corrupted =
    Fault.corrupt st ~random_state:MaxProp.random_state g r.EMax.states ~k:5
  in
  let run_from eng sd =
    eng g Scheduler.Synchronous (seed sd) ~init:corrupted
  in
  let a = run_from (fun g s rng ~init -> EMax.run g s rng ~init) 3 in
  let b = run_from (fun g s rng ~init -> EMax.run_reference g s rng ~init) 3 in
  Alcotest.(check bool) "recovered" true (a.EMax.silent && a.EMax.legal);
  Alcotest.(check int) "steps match reference" b.EMax.steps a.EMax.steps;
  Alcotest.(check int) "rounds match reference" b.EMax.rounds a.EMax.rounds;
  Array.iteri
    (fun v s -> Alcotest.(check int) (Printf.sprintf "state %d" v) b.EMax.states.(v) s)
    a.EMax.states

(* Unit: the two executors report identical per-round telemetry series
   (round boundaries, enabled counts, write counts, register bits). *)
let test_telemetry_series_identical () =
  let g = Generators.gnp (seed 4) ~n:14 ~p:0.3 in
  let series eng =
    let t = Telemetry.create () in
    let init = EMax.adversarial (seed 5) g in
    ignore (eng ~telemetry:t g (Scheduler.Central Scheduler.Round_robin) (seed 6) ~init);
    List.map
      (fun (s : Telemetry.sample) ->
        (s.round, s.enabled, s.writes, s.writes_total, s.max_bits, s.total_bits))
      (Telemetry.samples t)
  in
  let a = series (fun ~telemetry g s rng ~init -> EMax.run ~telemetry g s rng ~init) in
  let b =
    series (fun ~telemetry g s rng ~init -> EMax.run_reference ~telemetry g s rng ~init)
  in
  Alcotest.(check int) "same number of samples" (List.length b) (List.length a);
  List.iter2
    (fun (r, e, w, wt, mb, tb) (r', e', w', wt', mb', tb') ->
      Alcotest.(check (list int)) "sample" [ r'; e'; w'; wt'; mb'; tb' ]
        [ r; e; w; wt; mb; tb ])
    a b

let () =
  (* Deterministic property tests: fix the qcheck master seed. *)
  QCheck_base_runner.set_seed 20260704;
  Alcotest.run "repro_engine_equiv"
    [
      ( "move cache",
        [
          Alcotest.test_case "invalidated by touch" `Quick test_touch_invalidates_cache;
          Alcotest.test_case "invalidated by fault injection" `Quick
            test_fault_injection_invalidates_cache;
          Alcotest.test_case "telemetry series identical" `Quick
            test_telemetry_series_identical;
        ] );
      ("equivalence", [ prop_bfs; prop_spt; prop_mst; prop_mdst ]);
    ]
