(** The packed counterpart of {!View}: what a fixed-width protocol's
    [step_packed] reads (see {!Protocol.PACKED} and SCALING.md).

    Where a {!View.t} hands the guard boxed neighbor states, a [Pview.t]
    hands it the raw struct-of-arrays register bank and the graph's CSR
    adjacency: lane [f] of node [v]'s register is [bank.(f).(v)], and the
    focused node's neighbors are [col.(i)] for
    [i] in [row.(focus) .. row.(focus+1) - 1] (increasing id order, the
    same order {!View.t} presents), with weights aligned in [wgt].

    One [Pview.t] is allocated per run and reused for every guard probe:
    the engine sets [focus] and calls [step_packed], which either returns
    [false] (not enabled) or writes the packed move into [move] and
    returns [true]. Guards must treat everything except [move] as
    read-only and must not retain [move] across calls — the engine
    copies it out immediately. *)

type t = {
  n : int;  (** number of nodes *)
  words : int;  (** register width in lanes ([Protocol.PACKED.words]) *)
  row : int array;  (** CSR row pointers, length [n+1] *)
  col : int array;  (** CSR neighbor ids *)
  wgt : int array;  (** CSR edge weights, aligned with [col] *)
  bank : int array array;  (** [bank.(f).(v)] = lane [f] of node [v] *)
  move : int array;  (** scratch the guard writes its move into *)
  mutable focus : int;  (** the node whose guard is being evaluated *)
}

(** [of_graph g ~bank] wraps the graph's CSR arrays and a register bank
    (one length-n lane per word). @raise Invalid_argument on an empty
    bank or a lane of the wrong length. *)
val of_graph : Repro_graph.Graph.t -> bank:int array array -> t

(** Degree of [v]. *)
val degree : t -> int -> int

(** [index t u] is the CSR index of neighbor [u] of the focused node
    (so [t.col.(index t u) = u]); mirrors {!View.index}.
    @raise Not_found if [u] is not a neighbor of [t.focus]. *)
val index : t -> int -> int
