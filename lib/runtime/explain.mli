(** Convergence narratives from {!Events} traces.

    Parses a JSONL trace (as written by [Engine.run ~events] through a
    {!Events.stream} sink, or re-serialized from a ring) and renders an
    explanation of {e how} the run converged: per-rule move breakdown,
    Φ trajectory milestones, the hottest nodes, the activation DAG's
    shape, and — for chaos traces — one causal-cone summary per fault
    injection (moves transitively caused by the injection, distinct
    nodes reached, measured cone radius in hops).

    Attribution walks the activation DAG: a move belongs to an
    injection's cone when some cause chain leads back to one of its
    [Fault] events; a move whose chains all terminate in moves without
    causes is {e root-spontaneous} (enabled by the initial
    configuration). Fault and churn events at the same round form one
    injection — service-mode topology edits ([Churn]) are DAG sources
    exactly like register corruptions, so recovery moves are attributed
    to the edit that caused them.
    Cone radii need the graph; they are computed when the trace's meta
    header carries an ["edges"] list (the CLI writes one). *)

type move = {
  id : int;
  step : int;
  round : int;
  node : int;
  rule : string option;
  bits_before : int;
  bits_after : int;
  dphi : int option;
  causes : int list;
}

type fault = { id : int; round : int; node : int }

(** A topology edit (service mode); a DAG source like {!fault}. *)
type churn = { id : int; round : int; node : int; op : string }

type round_rec = { round : int; enabled : int; phi : int option }

type trace = {
  meta : (string * Metrics.Json.t) list option;
  moves : move list;  (** chronological *)
  faults : fault list;  (** chronological *)
  churns : churn list;  (** chronological *)
  rounds : round_rec list;  (** chronological *)
}

(** Parse the full contents of a JSONL trace file. [Error] carries the
    1-based line number and what was wrong with it. *)
val parse : string -> (trace, string) result

(** Per-injection causal cone. *)
type cone = {
  injection_round : int;
  injected : int list;  (** corrupted nodes, sorted *)
  attributed_moves : int;
  cone_nodes : int list;  (** distinct movers in the cone, sorted *)
  cone_radius : int option;  (** max hops from the injected set; needs meta edges *)
}

type report = {
  header : (string * Metrics.Json.t) list;
  total_moves : int;
  total_faults : int;
  total_churns : int;
  total_rounds : int;  (** highest round index seen *)
  distinct_movers : int;
  rule_breakdown : (string * int) list;  (** descending count; "?" = untagged *)
  phi_milestones : (int * int) list;  (** (round, Φ) — first, decade crossings, last *)
  hot_nodes : (int * int) list;  (** (node, moves), descending, top-k *)
  cause_edges : int;
  root_spontaneous : int;  (** moves with an empty transitive fault set *)
  fault_attributed : int;
  max_chain : int;  (** longest cause chain (DAG depth), 1 = isolated move *)
  cones : cone list;
}

val analyze : ?top:int -> trace -> report
val pp_text : Format.formatter -> report -> unit
val to_text : report -> string

(** Self-contained single-file HTML (inline CSS/SVG, no external
    assets): the same content as {!to_text} plus a Φ sparkline and
    per-rule bars. *)
val to_html : report -> string
