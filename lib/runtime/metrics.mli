(** Zero-dependency metrics primitives for the telemetry layer.

    A {!t} is a string-keyed registry of counters, gauges, and
    log-scale histograms, rendered to JSON by a hand-rolled writer
    ({!Json}) — no external serialization dependency. The registry is
    what {!Telemetry} aggregates into and what the CLI / bench harness
    serialize next to per-round samples.

    Registration is idempotent: asking twice for the same name returns
    the same instrument, so independent layers can share a registry
    without coordination. Asking for a name already registered as a
    different kind raises [Invalid_argument]. *)

(** Minimal JSON tree with a writer and a strict parser — the parser
    exists so tests (and downstream tooling) can round-trip the writer's
    output without a third-party library. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (** Compact rendering (single line, RFC 8259 string escaping).
      Non-finite floats render as [null]. *)
  val to_string : t -> string

  val to_channel : out_channel -> t -> unit

  (** Strict recursive-descent parser; [None] on any syntax error or
      trailing garbage. Handles everything {!to_string} emits — quotes,
      backslashes and control characters round-trip byte-exactly — plus
      the full [\uXXXX] escape grammar of external producers: exactly
      four hex digits, arbitrary BMP code points (UTF-8 encoded into the
      result), and surrogate pairs for the astral planes; lone
      surrogates and malformed digits are rejected. *)
  val of_string : string -> t option

  (** [member key j] — field lookup when [j] is an [Obj]. *)
  val member : string -> t -> t option
end

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> int -> unit

(** [None] until the first {!set}. *)
val gauge_value : gauge -> int option

val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_min : histogram -> int option
val hist_max : histogram -> int option

(** Non-empty log-scale buckets as [(lower_bound, count)], ascending.
    Bucket 0 ([lower_bound = 0]) holds values [<= 0]; bucket [i >= 1]
    holds values in [[2^(i-1), 2^i - 1]] — so 1 is alone in its bucket
    and [max_int] lands in bucket 62 without overflow. *)
val buckets : histogram -> (int * int) list

(** The bucket a value falls into: [0] for [v <= 0], otherwise the
    number of significant bits of [v]. Exposed for the edge-case
    tests. *)
val bucket_index : int -> int

(** Inclusive lower bound of a bucket: [0] for bucket 0, [2^(i-1)]
    otherwise. *)
val bucket_lower : int -> int

(** Registry snapshot:
    [{"counters": {..}, "gauges": {..}, "histograms": {name: {"count",
    "sum", "min", "max", "buckets": [{"ge", "count"}, ..]}, ..}}].
    Instruments appear in registration order. *)
val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
