(** Convergence watchdog.

    Distinguishes {e why} a run failed to reach silence instead of
    reporting bare limit exhaustion. Two failure signatures are
    recognized online, cheaply enough to keep attached to every chaos
    episode:

    - {b livelock} — the execution revisits a configuration it has
      already been in (detected as a repeated configuration hash, at
      round {e and} at step granularity, so pure-step livelocks under
      starving daemons that never complete a round are caught too);
    - {b stalled potential} — the protocol exposes a potential [Φ]
      ({!Protocol.S.potential}) but no {e new minimum} of [Φ] has been
      observed for [stall_window] consecutive rounds.

    The watchdog is engine-agnostic: feed it through [on_round] /
    [on_step] closures and hand {!tripped} to [Engine.run ~stop_when]
    to abort a doomed run early. After a mid-run fault injection call
    {!reset} — the old hashes and the old [Φ] floor describe a
    configuration the fault just destroyed. *)

type verdict =
  | Converged  (** the run reached silence *)
  | Livelock of { round : int; period : int }
      (** a configuration hash recurred [cycle_repeats] times; [period]
          is the index distance between the last two occurrences *)
  | Stalled of { round : int; window : int }
      (** [Φ] made no new minimum for [window] consecutive rounds *)
  | Exhausted of { rounds : int; steps : int }
      (** limits hit with no recognized pattern *)

val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

type t

(** [create ()] — fresh watchdog. [stall_window] (default 64) is the
    number of rounds without a new [Φ] minimum that counts as a stall;
    [cycle_repeats] (default 3) is how many times a configuration hash
    must be seen before declaring a livelock (3 tolerates one benign
    hash collision). *)
val create : ?stall_window:int -> ?cycle_repeats:int -> unit -> t

(** [observe_round t ~round ~hash ~phi] — feed one round boundary:
    [hash] fingerprints the configuration (see {!config_hash}), [phi]
    is the live potential ([None] when the protocol defines none or it
    is undefined in this configuration — no stall tracking then).

    [snap], when given, is a collision verifier: a thunk serializing
    the {e full} configuration (e.g.
    [fun () -> Marshal.to_string states []]). It is invoked only when
    [hash] has been seen before, and occurrences are then counted per
    distinct serialized configuration — so a hash collision between
    different configurations can no longer accumulate into a false
    [Livelock] verdict, while a genuine recurrence trips exactly as
    without the verifier. Without [snap], hash equality is trusted (the
    historical behavior; [cycle_repeats = 3] then tolerates one benign
    collision). *)
val observe_round :
  ?snap:(unit -> string) -> t -> round:int -> hash:int -> phi:int option -> unit

(** [observe_step t ~hash] — feed one register write. Kept in a table
    separate from the round hashes so a round-boundary configuration is
    not double-counted by the write that produced it. [snap] as in
    {!observe_round}. *)
val observe_step : ?snap:(unit -> string) -> t -> hash:int -> unit

(** [reset t] forgets all hashes and the [Φ] floor; call immediately
    after a fault injection. A previously tripped verdict is cleared. *)
val reset : t -> unit

(** [tripped t] — the verdict detected so far, if any. Suitable as an
    early-abort predicate: [~stop_when:(fun () -> tripped w <> None)]. *)
val tripped : t -> verdict option

(** [verdict t ~silent] — final classification: [Converged] when
    [silent], else the tripped verdict, else [Exhausted]. *)
val verdict : t -> silent:bool -> verdict

(** [config_hash states] — order-sensitive fingerprint of a
    configuration, hashing every register with generous traversal
    limits (the default [Hashtbl.hash] depth cutoff would systematically
    collide deep registers). *)
val config_hash : 'a array -> int
