(* Intrusive doubly-linked list: [next] and [prev] are indexed by node,
   with slot [n] acting as the sentinel. A node is linked iff it is a
   member; membership itself is answered by the bitset mirror, which is
   kept in lockstep so ordered enumeration stays cheap. *)

type t = {
  next : int array;
  prev : int array;
  sentinel : int;
  members : Bitset.t;
}

let create n =
  let s = n in
  let next = Array.make (n + 1) s and prev = Array.make (n + 1) s in
  { next; prev; sentinel = s; members = Bitset.create n }

let mem t v = Bitset.mem t.members v
let cardinal t = Bitset.cardinal t.members
let is_empty t = Bitset.is_empty t.members

let add t v =
  if not (Bitset.mem t.members v) then begin
    Bitset.add t.members v;
    (* Splice in before the sentinel (list tail). *)
    let tail = t.prev.(t.sentinel) in
    t.next.(tail) <- v;
    t.prev.(v) <- tail;
    t.next.(v) <- t.sentinel;
    t.prev.(t.sentinel) <- v
  end

let remove t v =
  if Bitset.mem t.members v then begin
    Bitset.remove t.members v;
    let p = t.prev.(v) and nx = t.next.(v) in
    t.next.(p) <- nx;
    t.prev.(nx) <- p
  end

let iter f t =
  let v = ref t.next.(t.sentinel) in
  while !v <> t.sentinel do
    f !v;
    v := t.next.(!v)
  done

let fold f init t =
  let acc = ref init in
  let v = ref t.next.(t.sentinel) in
  while !v <> t.sentinel do
    acc := f !acc !v;
    v := t.next.(!v)
  done;
  !acc

let sorted t = Bitset.to_list t.members
let nth_sorted t k = Bitset.nth t.members k
let bits t = t.members
let snapshot t dst = Bitset.copy_from ~src:t.members ~dst
