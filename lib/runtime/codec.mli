(** Flat int-array serialization for register codecs.

    Every builder exposes a codec turning its register state into a flat
    [int array] and back (see {!Protocol.CODEC} and SCALING.md). Fixed-
    width codecs (BFS, SPT, the ad-hoc baseline) write their fields
    directly and drive the packed engine; the variable-length MST/MDST
    states serialize through this module. Encodings are self-delimiting —
    options carry a 0/1 tag, arrays a length prefix — so decoding never
    needs out-of-band size information and [unpack (pack s) = s] is a
    structural round-trip (pinned by qcheck in test_packed). *)

(** {1 Writing} *)

(** A growable int buffer. *)
type writer

(** Fresh writer; [capacity] is the initial buffer size (default 16). *)
val writer : ?capacity:int -> unit -> writer

(** Append one word. Amortized O(1). *)
val push : writer -> int -> unit

(** The encoded words, as a fresh exactly-sized array. *)
val contents : writer -> int array

(** {1 Reading} *)

(** A cursor over an encoded array. *)
type reader

val reader : int array -> reader

(** Consume one word. @raise Invalid_argument past the end. *)
val take : reader -> int

val at_end : reader -> bool

(** @raise Invalid_argument if words remain — decoders call this last so
    a codec that silently drops fields fails loudly in tests. *)
val expect_end : reader -> unit

(** {1 Composite encodings} *)

val push_bool : writer -> bool -> unit
val take_bool : reader -> bool

(** [Some x] is [1; encoding of x]; [None] is [0]. *)
val push_opt : writer -> (writer -> 'a -> unit) -> 'a option -> unit

val take_opt : reader -> (reader -> 'a) -> 'a option

(** Length-prefixed element sequence. *)
val push_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit

val take_array : reader -> (reader -> 'a) -> 'a array

val push_pair : writer -> int * int -> unit
val take_pair : reader -> int * int
