(** A work-distributing domain pool for campaign parallelism.

    Every evaluation campaign in this repo — the bench experiments, the
    chaos matrix, the CLI sweeps — is a bag of {e independent seeded
    cells}: each cell derives its own [Random.State] from
    [(seed_base, tag)], builds its own topology, and runs its own
    engine, touching no shared mutable state. A pool runs such a bag on
    a fixed set of worker {!Domain}s and hands the results back {e in
    submission order}, so a campaign's artifact is byte-identical
    regardless of how many workers raced over its cells (the caller
    merges per-cell telemetry; workers never write shared registries).

    Scheduling is work-stealing over an atomic cursor: workers (and the
    submitting domain, which participates) repeatedly claim the next
    unclaimed index, so long cells don't convoy behind a static chunking.

    Determinism contract: [map pool f xs] returns exactly
    [List.map f xs] — same values, same order — provided each [f x] is
    self-contained (its RNG, graphs, and observers are created inside
    the call). Exceptions restore the sequential semantics too: the
    first failing item {e in list order} has its exception re-raised in
    the submitter with its backtrace, even if a later item failed
    earlier in wall time.

    A pool with [jobs = 1] spawns no domains at all; [map] is literally
    [List.map], preserving today's exact sequential path. *)

type t

(** [max 1 (Domain.recommended_domain_count ())] — the default for every
    [--jobs] flag. *)
val default_jobs : unit -> int

(** [create ?jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}; values [< 1] are clamped to 1). The submitting
    domain acts as the final worker during {!map}, so total parallelism
    is [jobs]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [map pool f xs] — parallel [List.map f xs] with the determinism
    contract above.

    Nested use is guarded: calling [map] from inside a task (or on a
    pool whose workers are already busy with another [map] from a
    different domain) falls back to sequential [List.map] instead of
    deadlocking on the fixed worker set. Lists of length [<= 1] never
    touch the workers. Raises [Invalid_argument] on a pool that has
    been {!shutdown}. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Join the worker domains. Idempotent; subsequent {!map} raises. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] — [create], run [f], always [shutdown]. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a
