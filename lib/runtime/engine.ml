module Graph = Repro_graph.Graph

module Make (P : Protocol.S) = struct
  type result = {
    states : P.state array;
    steps : int;
    rounds : int;
    silent : bool;
    legal : bool;
    max_bits : int;
    first_legal_round : int option;
  }

  let initial g = Array.init (Graph.n g) (fun v -> P.initial g v)
  let adversarial rng g = Array.init (Graph.n g) (fun v -> P.random_state rng g v)

  (* Precomputed per-node adjacency, shared by every view of a run. *)
  type net = { g : Graph.t; ids : int array array; weights : int array array }

  let net_of g =
    let n = Graph.n g in
    let ids = Array.init n (fun v -> Array.map fst (Graph.neighbors g v)) in
    let weights = Array.init n (fun v -> Array.map snd (Graph.neighbors g v)) in
    { g; ids; weights }

  let view_net net states v =
    {
      View.id = v;
      n = Graph.n net.g;
      degree = Array.length net.ids.(v);
      nbr_ids = net.ids.(v);
      nbr_weights = net.weights.(v);
      self = states.(v);
      nbrs = Array.map (fun u -> states.(u)) net.ids.(v);
    }

  let view g states v = view_net (net_of g) states v

  let enabled_net net states =
    let acc = ref [] in
    for v = Graph.n net.g - 1 downto 0 do
      if P.step (view_net net states v) <> None then acc := v :: !acc
    done;
    !acc

  let enabled g states = enabled_net (net_of g) states
  let silent g states = enabled g states = []

  let max_bits_of states =
    Array.fold_left (fun acc s -> max acc (P.size_bits (Array.length states) s)) 0 states

  let run ?(max_steps = 10_000_000) ?(max_rounds = 200_000) ?(track_legal = false)
      ?(stop_when_legal = false) ?telemetry ?on_round ?on_step g sched rng ~init =
    let net = net_of g in
    let states = Array.copy init in
    let n = Graph.n g in
    let steps = ref 0 in
    let rounds = ref 0 in
    let max_bits = ref (max_bits_of states) in
    let first_legal = ref None in
    let stop = ref false in
    (* Incrementally maintained activatability: stepping node [v] can only
       change the enabled status of [v] and its neighbors. *)
    let is_enabled = Array.make n false in
    let enabled_count = ref 0 in
    let recompute v =
      let now = P.step (view_net net states v) <> None in
      if now <> is_enabled.(v) then begin
        is_enabled.(v) <- now;
        enabled_count := !enabled_count + if now then 1 else -1
      end
    in
    for v = 0 to n - 1 do
      recompute v
    done;
    let touch v =
      recompute v;
      Array.iter recompute net.ids.(v)
    in
    let enabled_list () =
      let acc = ref [] in
      for v = n - 1 downto 0 do
        if is_enabled.(v) then acc := v :: !acc
      done;
      !acc
    in
    (* Adversary bookkeeping. *)
    let last_step_time = Array.make n (-1) in
    let rr_cursor = ref 0 in
    let apply v s =
      states.(v) <- s;
      incr steps;
      last_step_time.(v) <- !steps;
      let bits = P.size_bits n s in
      max_bits := max !max_bits bits;
      (match telemetry with Some t -> Telemetry.on_write t ~bits | None -> ());
      touch v;
      match on_step with Some f -> f v states | None -> ()
    in
    let round_boundary () =
      (match telemetry with
      | Some t ->
          let mx = ref 0 and total = ref 0 in
          Array.iter
            (fun s ->
              let b = P.size_bits n s in
              if b > !mx then mx := b;
              total := !total + b)
            states;
          let phi = if Telemetry.wants_phi t then P.potential g states else None in
          Telemetry.on_round t ~round:!rounds ~enabled:!enabled_count ~max_bits:!mx
            ~total_bits:!total ~phi
      | None -> ());
      (match on_round with Some f -> f !rounds states | None -> ());
      if (track_legal || stop_when_legal) && !first_legal = None then
        if P.is_legal g states then begin
          first_legal := Some !rounds;
          if stop_when_legal then stop := true
        end
    in
    round_boundary ();
    let pick_central strategy candidates =
      match strategy with
      | Scheduler.Random_daemon ->
          List.nth candidates (Random.State.int rng (List.length candidates))
      | Scheduler.Max_id -> List.fold_left max (List.hd candidates) candidates
      | Scheduler.Min_id -> List.fold_left min (List.hd candidates) candidates
      | Scheduler.Round_robin ->
          let after = List.filter (fun v -> v >= !rr_cursor) candidates in
          let v = match after with v :: _ -> v | [] -> List.hd candidates in
          rr_cursor := v + 1;
          v
      | Scheduler.Lifo_adversary ->
          List.fold_left
            (fun best v ->
              if
                last_step_time.(v) > last_step_time.(best)
                || (last_step_time.(v) = last_step_time.(best) && v > best)
              then v
              else best)
            (List.hd candidates) candidates
    in
    (* [pending] = nodes enabled at the start of the current round that have
       neither stepped nor been observed non-activatable (Section II-A). *)
    let pending = Hashtbl.create 64 in
    let reset_pending () =
      Hashtbl.reset pending;
      for v = 0 to n - 1 do
        if is_enabled.(v) then Hashtbl.replace pending v ()
      done
    in
    reset_pending ();
    let prune_pending () =
      let stale =
        Hashtbl.fold
          (fun v () acc -> if not is_enabled.(v) then v :: acc else acc)
          pending []
      in
      List.iter (fun v -> Hashtbl.remove pending v) stale;
      if Hashtbl.length pending = 0 then begin
        incr rounds;
        round_boundary ();
        if !enabled_count > 0 then reset_pending ()
      end
    in
    while (not !stop) && !enabled_count > 0 && !steps < max_steps && !rounds < max_rounds
    do
      (match sched with
      | Scheduler.Synchronous ->
          let snapshot = Array.copy states in
          let moves =
            List.filter_map
              (fun v ->
                match P.step (view_net net snapshot v) with
                | Some s -> Some (v, s)
                | None -> None)
              (enabled_list ())
          in
          List.iter
            (fun (v, s) ->
              apply v s;
              Hashtbl.remove pending v)
            moves
      | Scheduler.Central strategy ->
          let candidates = enabled_list () in
          let v = pick_central strategy candidates in
          (match P.step (view_net net states v) with
          | Some s -> apply v s
          | None -> () (* cannot happen: flag is fresh *));
          Hashtbl.remove pending v
      | Scheduler.Distributed p ->
          let candidates = enabled_list () in
          let chosen =
            List.filter (fun _ -> Random.State.float rng 1.0 < p) candidates
          in
          let chosen =
            match chosen with
            | [] -> [ List.nth candidates (Random.State.int rng (List.length candidates)) ]
            | l -> l
          in
          (* Nodes act one after another on the live configuration (the
             state model is read/write atomic per node). *)
          List.iter
            (fun v ->
              match P.step (view_net net states v) with
              | Some s ->
                  apply v s;
                  Hashtbl.remove pending v
              | None -> ())
            chosen);
      prune_pending ()
    done;
    let silent = !enabled_count = 0 in
    {
      states;
      steps = !steps;
      rounds = !rounds;
      silent;
      legal = P.is_legal g states;
      max_bits = !max_bits;
      first_legal_round = !first_legal;
    }
end
