module Graph = Repro_graph.Graph

module Make (P : Protocol.S) = struct
  type result = {
    states : P.state array;
    steps : int;
    rounds : int;
    silent : bool;
    legal : bool;
    max_bits : int;
    first_legal_round : int option;
  }

  let initial g = Array.init (Graph.n g) (fun v -> P.initial g v)
  let adversarial rng g = Array.init (Graph.n g) (fun v -> P.random_state rng g v)

  (* Precomputed per-node adjacency, shared by every view of a run. *)
  type net = { g : Graph.t; ids : int array array; weights : int array array }

  let net_of g =
    let n = Graph.n g in
    let ids = Array.init n (fun v -> Array.map fst (Graph.neighbors g v)) in
    let weights = Array.init n (fun v -> Array.map snd (Graph.neighbors g v)) in
    { g; ids; weights }

  let view_net net states v =
    {
      View.id = v;
      n = Graph.n net.g;
      degree = Array.length net.ids.(v);
      nbr_ids = net.ids.(v);
      nbr_weights = net.weights.(v);
      self = states.(v);
      nbrs = Array.map (fun u -> states.(u)) net.ids.(v);
    }

  let view g states v = view_net (net_of g) states v

  let enabled_net net states =
    let acc = ref [] in
    for v = Graph.n net.g - 1 downto 0 do
      if P.step (view_net net states v) <> None then acc := v :: !acc
    done;
    !acc

  let enabled g states = enabled_net (net_of g) states

  (* Short-circuits on the first enabled node instead of materializing
     the full list — [silent] is a pure predicate and gets probed a lot
     by tests and examples. *)
  let silent g states =
    let net = net_of g in
    let n = Graph.n net.g in
    let rec go v = v >= n || (P.step (view_net net states v) = None && go (v + 1)) in
    go 0

  let max_bits_of states =
    Array.fold_left (fun acc s -> max acc (P.size_bits (Array.length states) s)) 0 states

  (* ------------------------------------------------------------------ *)
  (* The naive executor: the semantics oracle. Every guard probe builds
     a fresh view, every write re-evaluates [P.step] once to recompute
     activation flags and once more to obtain the written register, and
     the per-round [pending] set is a Hashtbl. Kept verbatim so the
     incremental [run] below can be property-tested against it
     (test_engine_equiv). *)

  let run_reference ?(max_steps = 10_000_000) ?(max_rounds = 200_000)
      ?(track_legal = false) ?(stop_when_legal = false) ?telemetry ?on_round ?on_step
      ?adversary ?stop_when g sched rng ~init =
    let net = net_of g in
    let states = Array.copy init in
    let n = Graph.n g in
    let steps = ref 0 in
    let rounds = ref 0 in
    let max_bits = ref (max_bits_of states) in
    let first_legal = ref None in
    let stop = ref false in
    let poll_stop () =
      match stop_when with Some f -> if f () then stop := true | None -> ()
    in
    (* Incrementally maintained activatability: stepping node [v] can only
       change the enabled status of [v] and its neighbors. *)
    let is_enabled = Array.make n false in
    let enabled_count = ref 0 in
    let recompute v =
      let now = P.step (view_net net states v) <> None in
      if now <> is_enabled.(v) then begin
        is_enabled.(v) <- now;
        enabled_count := !enabled_count + if now then 1 else -1
      end
    in
    for v = 0 to n - 1 do
      recompute v
    done;
    let touch v =
      recompute v;
      Array.iter recompute net.ids.(v)
    in
    (* Transient faults: adversary writes at a round boundary are not
       protocol steps — no step count, no [on_step], no telemetry write —
       but the corrupted registers are observed for [max_bits] and
       invalidate the activation flags of their closed neighborhoods. *)
    let inject () =
      match adversary with
      | None -> ()
      | Some f ->
          List.iter
            (fun (v, s) ->
              if states.(v) != s then begin
                states.(v) <- s;
                max_bits := max !max_bits (P.size_bits n s);
                touch v
              end)
            (f ~round:!rounds states)
    in
    let enabled_list () =
      let acc = ref [] in
      for v = n - 1 downto 0 do
        if is_enabled.(v) then acc := v :: !acc
      done;
      !acc
    in
    (* Adversary bookkeeping. *)
    let last_step_time = Array.make n (-1) in
    let rr_cursor = ref 0 in
    let apply v s =
      states.(v) <- s;
      incr steps;
      last_step_time.(v) <- !steps;
      let bits = P.size_bits n s in
      max_bits := max !max_bits bits;
      (match telemetry with Some t -> Telemetry.on_write t ~bits | None -> ());
      touch v;
      (match on_step with Some f -> f v states | None -> ());
      poll_stop ()
    in
    let round_boundary () =
      (match telemetry with
      | Some t ->
          let mx = ref 0 and total = ref 0 in
          Array.iter
            (fun s ->
              let b = P.size_bits n s in
              if b > !mx then mx := b;
              total := !total + b)
            states;
          let phi = if Telemetry.wants_phi t then P.potential g states else None in
          Telemetry.on_round t ~round:!rounds ~enabled:!enabled_count ~max_bits:!mx
            ~total_bits:!total ~phi
      | None -> ());
      (match on_round with Some f -> f !rounds states | None -> ());
      (if (track_legal || stop_when_legal) && !first_legal = None then
        if P.is_legal g states then begin
          first_legal := Some !rounds;
          if stop_when_legal then stop := true
        end);
      poll_stop ();
      if not !stop then inject ()
    in
    round_boundary ();
    let pick_central strategy candidates =
      match strategy with
      | Scheduler.Random_daemon ->
          List.nth candidates (Random.State.int rng (List.length candidates))
      | Scheduler.Max_id -> List.fold_left max (List.hd candidates) candidates
      | Scheduler.Min_id -> List.fold_left min (List.hd candidates) candidates
      | Scheduler.Round_robin ->
          let after = List.filter (fun v -> v >= !rr_cursor) candidates in
          let v = match after with v :: _ -> v | [] -> List.hd candidates in
          rr_cursor := v + 1;
          v
      | Scheduler.Lifo_adversary ->
          List.fold_left
            (fun best v ->
              if
                last_step_time.(v) > last_step_time.(best)
                || (last_step_time.(v) = last_step_time.(best) && v > best)
              then v
              else best)
            (List.hd candidates) candidates
      | Scheduler.Greedy_max_phi | Scheduler.Greedy_min_phi ->
          (* Trial-evaluate Φ after each candidate's move (set, measure,
             restore — P.potential reads the configuration directly, so
             the probe is invisible elsewhere). Undefined Φ scores +∞;
             ties go to the smallest id (candidates are increasing). *)
          let maximize = strategy = Scheduler.Greedy_max_phi in
          let score v =
            match P.step (view_net net states v) with
            | None -> None (* cannot happen: flag is fresh *)
            | Some s ->
                let old = states.(v) in
                states.(v) <- s;
                let phi = P.potential g states in
                states.(v) <- old;
                Some (match phi with Some p -> p | None -> max_int)
          in
          let best =
            List.fold_left
              (fun best v ->
                match score v with
                | None -> best
                | Some sc -> (
                    match best with
                    | None -> Some (v, sc)
                    | Some (_, bs) ->
                        if (if maximize then sc > bs else sc < bs) then Some (v, sc)
                        else best))
              None candidates
          in
          fst (Option.get best)
    in
    (* [pending] = nodes enabled at the start of the current round that have
       neither stepped nor been observed non-activatable (Section II-A). *)
    let pending = Hashtbl.create 64 in
    let reset_pending () =
      Hashtbl.reset pending;
      for v = 0 to n - 1 do
        if is_enabled.(v) then Hashtbl.replace pending v ()
      done
    in
    reset_pending ();
    let prune_pending () =
      let stale =
        Hashtbl.fold
          (fun v () acc -> if not is_enabled.(v) then v :: acc else acc)
          pending []
      in
      List.iter (fun v -> Hashtbl.remove pending v) stale;
      if Hashtbl.length pending = 0 then begin
        incr rounds;
        round_boundary ();
        if !enabled_count > 0 then reset_pending ()
      end
    in
    while (not !stop) && !enabled_count > 0 && !steps < max_steps && !rounds < max_rounds
    do
      (match sched with
      | Scheduler.Synchronous ->
          let snapshot = Array.copy states in
          let moves =
            List.filter_map
              (fun v ->
                match P.step (view_net net snapshot v) with
                | Some s -> Some (v, s)
                | None -> None)
              (enabled_list ())
          in
          List.iter
            (fun (v, s) ->
              if not !stop then begin
                apply v s;
                Hashtbl.remove pending v
              end)
            moves
      | Scheduler.Central strategy ->
          let candidates = enabled_list () in
          let v = pick_central strategy candidates in
          (match P.step (view_net net states v) with
          | Some s -> apply v s
          | None -> () (* cannot happen: flag is fresh *));
          Hashtbl.remove pending v
      | Scheduler.Distributed p ->
          let candidates = enabled_list () in
          let chosen =
            List.filter (fun _ -> Random.State.float rng 1.0 < p) candidates
          in
          let chosen =
            match chosen with
            | [] -> [ List.nth candidates (Random.State.int rng (List.length candidates)) ]
            | l -> l
          in
          (* Nodes act one after another on the live configuration (the
             state model is read/write atomic per node). *)
          List.iter
            (fun v ->
              if not !stop then
                match P.step (view_net net states v) with
                | Some s ->
                    apply v s;
                    Hashtbl.remove pending v
                | None -> ())
            chosen);
      prune_pending ()
    done;
    let silent = !enabled_count = 0 in
    {
      states;
      steps = !steps;
      rounds = !rounds;
      silent;
      legal = P.is_legal g states;
      max_bits = !max_bits;
      first_legal_round = !first_legal;
    }

  (* ------------------------------------------------------------------ *)
  (* The incremental executor. Trajectory-identical to [run_reference]
     (the equivalence suite pins this) but allocation-light:

     - Move cache: [moves.(v)] memoizes the [state option] that [P.step]
       returned the last time [v]'s view changed, so a write applies the
       cached register instead of re-running the guard, and activation
       flags come for free ([moves.(v) <> None]).
     - Scratch views: one [View.t] per node for the whole run; [refresh]
       re-points [self] and the [nbrs] slots in place, guarded by a
       per-node version counter bumped by [touch], so guard probes stop
       allocating.
     - Enabled set: an intrusive doubly-linked list + bitset mirror
       ({!Enabled_set}) — O(1) insert/remove, O(Δ) guard probes per
       write, and daemons enumerate only the enabled nodes instead of
       rescanning all n.
     - Round accounting: [pending] is a bitset; pruning it is a
       word-wise AND against the enabled set.

     Under the synchronous daemon the guard re-probes of a whole batch
     of writes are coalesced: marking is O(Δ) per write, and each node
     in the union of the writers' closed neighborhoods is re-evaluated
     once per round rather than once per writing neighbor. The cache is
     only read at round boundaries there, so deferral is unobservable.
     The sequential daemons flush after every write because the next
     guard read happens immediately. *)

  let run ?(max_steps = 10_000_000) ?(max_rounds = 200_000) ?(track_legal = false)
      ?(stop_when_legal = false) ?telemetry ?on_round ?on_step ?adversary ?stop_when
      ?events ?profile ?init_causes ?(round_offset = 0) ?(step_offset = 0) g sched rng
      ~init =
    let net = net_of g in
    let states = Array.copy init in
    let n = Graph.n g in
    let steps = ref 0 in
    let rounds = ref 0 in
    let max_bits = ref (max_bits_of states) in
    let first_legal = ref None in
    let stop = ref false in
    let poll_stop () =
      match stop_when with Some f -> if f () then stop := true | None -> ()
    in
    (* Causal provenance (allocated only when an event sink is attached):
       [cause_buf.(v)] accumulates the ids of the events whose writes
       dirtied [v]'s view since [v]'s guard last consumed them;
       [enablers.(v)] freezes, at the moment [v]'s cached move (re-)
       appears, the ids that woke it — emitted as that move's [causes].
       [cur_eid] is the id of the write being propagated by [touch]. *)
    let tracing = events <> None in
    let cause_buf = if tracing then Array.make n [] else [||] in
    let enablers = if tracing then Array.make n [] else [||] in
    let just_moved = if tracing then Array.make n false else [||] in
    let cur_eid = ref (-1) in
    let move_phi =
      match events with Some e -> Events.wants_move_phi e | None -> false
    in
    let last_phi = ref None in
    (* Reusable scratch views: [data_version.(v)] is bumped whenever a
       register in [v]'s closed neighborhood changes; [view_version.(v)]
       records the version [scratch.(v)] was last refreshed at. *)
    let scratch = Array.init n (fun v -> view_net net states v) in
    let data_version = Array.make n 0 in
    let view_version = Array.make n 0 in
    let refresh v =
      if view_version.(v) <> data_version.(v) then begin
        (match profile with Some p -> Profile.on_refresh p | None -> ());
        let vw = scratch.(v) in
        vw.View.self <- states.(v);
        let ids = net.ids.(v) in
        for i = 0 to Array.length ids - 1 do
          vw.View.nbrs.(i) <- states.(ids.(i))
        done;
        view_version.(v) <- data_version.(v)
      end
    in
    (* The memoized pending move of every node, and the set of nodes
       whose cached move is [Some _]. Invariant outside [flush]:
       [moves.(v) = P.step (view states v)] for every v. *)
    let moves = Array.make n None in
    let enabled = Enabled_set.create n in
    let recompute v =
      refresh v;
      (match profile with Some p -> Profile.on_guard p | None -> ());
      let mv = P.step scratch.(v) in
      let was = moves.(v) <> None in
      let now = mv <> None in
      if tracing then begin
        if now && ((not was) || just_moved.(v)) then enablers.(v) <- List.rev cause_buf.(v)
        else if not now then enablers.(v) <- [];
        just_moved.(v) <- false;
        cause_buf.(v) <- []
      end;
      (match profile with Some p -> if was <> now then Profile.on_churn p | None -> ());
      moves.(v) <- mv;
      match mv with
      | Some _ -> Enabled_set.add enabled v
      | None -> Enabled_set.remove enabled v
    in
    for v = 0 to n - 1 do
      recompute v
    done;
    (* Seed provenance for nodes the *initial configuration* enables:
       the caller knows why they are enabled (e.g. chaos injected faults
       into a silent configuration and emitted the fault events itself).
       Nodes the callback maps to [] stay root-spontaneous. *)
    (match init_causes with
    | Some f when tracing ->
        for v = 0 to n - 1 do
          if moves.(v) <> None then enablers.(v) <- f v
        done
    | _ -> ());
    if move_phi then last_phi := P.potential g states;
    let dirty = Bitset.create n in
    let touch v =
      (match profile with Some p -> Profile.on_touch p | None -> ());
      data_version.(v) <- data_version.(v) + 1;
      Bitset.add dirty v;
      if tracing && !cur_eid >= 0 then cause_buf.(v) <- !cur_eid :: cause_buf.(v);
      Array.iter
        (fun u ->
          data_version.(u) <- data_version.(u) + 1;
          Bitset.add dirty u;
          if tracing && !cur_eid >= 0 then cause_buf.(u) <- !cur_eid :: cause_buf.(u))
        net.ids.(v)
    in
    let flush () =
      if not (Bitset.is_empty dirty) then begin
        (match profile with Some p -> Profile.on_flush p | None -> ());
        Bitset.iter recompute dirty;
        Bitset.clear dirty
      end
    in
    (* Transient faults (see [run_reference]): adversary writes are not
       steps, but they dirty the closed neighborhoods and the caches are
       rebuilt from the corrupted registers before the next pick. *)
    let inject () =
      match adversary with
      | None -> ()
      | Some f ->
          List.iter
            (fun (v, s) ->
              if states.(v) != s then begin
                states.(v) <- s;
                max_bits := max !max_bits (P.size_bits n s);
                (* A mid-run corruption is a DAG source: the fault event
                   becomes the cause of every move it wakes up. *)
                (match events with
                | Some sink ->
                    cur_eid := Events.emit_fault sink ~node:v ~round:(round_offset + !rounds)
                | None -> ());
                touch v;
                cur_eid := -1
              end)
            (f ~round:!rounds states);
          if move_phi then last_phi := P.potential g states;
          flush ()
    in
    (* Adversary bookkeeping. *)
    let last_step_time = Array.make n (-1) in
    let rr_cursor = ref 0 in
    let pending = Bitset.create n in
    let apply ~defer v s =
      let old = states.(v) in
      states.(v) <- s;
      incr steps;
      last_step_time.(v) <- !steps;
      let bits = P.size_bits n s in
      max_bits := max !max_bits bits;
      (match telemetry with Some t -> Telemetry.on_write t ~bits | None -> ());
      let rule =
        if tracing || profile <> None then
          match P.classify with Some f -> Some (f old s) | None -> None
        else None
      in
      (match profile with Some p -> Profile.on_move ?rule p | None -> ());
      (match events with
      | Some sink ->
          let dphi =
            if move_phi then begin
              let np = P.potential g states in
              let d =
                match (!last_phi, np) with Some a, Some b -> Some (b - a) | _ -> None
              in
              last_phi := np;
              d
            end
            else None
          in
          let eid =
            Events.emit_move sink ~node:v ~step:(step_offset + !steps)
              ~round:(round_offset + !rounds) ?rule ~bits_before:(P.size_bits n old)
              ~bits_after:bits ?dphi ~causes:enablers.(v) ()
          in
          enablers.(v) <- [];
          just_moved.(v) <- true;
          cur_eid := eid
      | None -> ());
      (* A physically unchanged register leaves every view — including
         the writer's own — bit-identical, so the caches stay valid. *)
      if old != s then touch v;
      cur_eid := -1;
      if not defer then flush ();
      Bitset.remove pending v;
      (match on_step with Some f -> f v states | None -> ());
      poll_stop ()
    in
    let round_boundary () =
      (match telemetry with
      | Some t ->
          let mx = ref 0 and total = ref 0 in
          Array.iter
            (fun s ->
              let b = P.size_bits n s in
              if b > !mx then mx := b;
              total := !total + b)
            states;
          let phi = if Telemetry.wants_phi t then P.potential g states else None in
          Telemetry.on_round t ~round:!rounds
            ~enabled:(Enabled_set.cardinal enabled)
            ~max_bits:!mx ~total_bits:!total ~phi
      | None -> ());
      (match events with
      | Some sink ->
          let phi = if Events.wants_phi sink then P.potential g states else None in
          Events.emit_round sink
            ~round:(round_offset + !rounds)
            ~enabled:(Enabled_set.cardinal enabled)
            ~phi
      | None -> ());
      (match on_round with Some f -> f !rounds states | None -> ());
      (if (track_legal || stop_when_legal) && !first_legal = None then
         if P.is_legal g states then begin
           first_legal := Some !rounds;
           if stop_when_legal then stop := true
         end);
      poll_stop ();
      if not !stop then inject ()
    in
    round_boundary ();
    (* Daemon picks. The published semantics enumerate candidates in
       increasing node order ([run_reference] builds its list that way),
       so the order-sensitive picks — random's index draw, round-robin's
       cursor scan, the distributed coin flips — go through the sorted
       bitset enumeration; the extremal picks fold the linked list in
       O(cardinal) since their result is order-independent. *)
    let pick_central strategy =
      match strategy with
      | Scheduler.Random_daemon ->
          Enabled_set.nth_sorted enabled
            (Random.State.int rng (Enabled_set.cardinal enabled))
      | Scheduler.Max_id -> Enabled_set.fold (fun best v -> max best v) (-1) enabled
      | Scheduler.Min_id -> Enabled_set.fold (fun best v -> min best v) max_int enabled
      | Scheduler.Round_robin ->
          let cursor = !rr_cursor in
          let best_ge, best_all =
            Enabled_set.fold
              (fun (ge, all) v ->
                ((if v >= cursor && v < ge then v else ge), min all v))
              (max_int, max_int) enabled
          in
          let v = if best_ge < max_int then best_ge else best_all in
          rr_cursor := v + 1;
          v
      | Scheduler.Lifo_adversary ->
          Enabled_set.fold
            (fun best v ->
              if
                best < 0
                || last_step_time.(v) > last_step_time.(best)
                || (last_step_time.(v) = last_step_time.(best) && v > best)
              then v
              else best)
            (-1) enabled
      | Scheduler.Greedy_max_phi | Scheduler.Greedy_min_phi ->
          (* Same trial evaluation as [run_reference], but the candidate's
             move comes from the cache, and the base configuration's Φ is
             computed at most once per pick: a candidate whose cached move
             equals its current register leaves the configuration
             identical, so its score IS the base score — no O(n) potential
             walk. (Enabled-but-unchanged registers are common during
             recovery, which is what made the chaos drag table quadratic
             in enabled-set size.) The probe mutates [states] and restores
             it before anything reads a scratch view, so the version
             counters stay honest. Strict-improvement over the sorted
             enumeration = ties to the smallest id. *)
          let maximize = strategy = Scheduler.Greedy_max_phi in
          let base_phi =
            lazy (match P.potential g states with Some p -> p | None -> max_int)
          in
          let best =
            List.fold_left
              (fun best v ->
                let s = Option.get moves.(v) in
                let old = states.(v) in
                let sc =
                  if s == old || P.equal_state s old then Lazy.force base_phi
                  else begin
                    states.(v) <- s;
                    let phi = P.potential g states in
                    states.(v) <- old;
                    match phi with Some p -> p | None -> max_int
                  end
                in
                match best with
                | None -> Some (v, sc)
                | Some (_, bs) ->
                    if (if maximize then sc > bs else sc < bs) then Some (v, sc) else best)
              None (Enabled_set.sorted enabled)
          in
          fst (Option.get best)
    in
    let reset_pending () = Enabled_set.snapshot enabled pending in
    reset_pending ();
    let prune_pending () =
      (* Drop every pending node no longer activatable; nodes that
         stepped were removed by [apply]. *)
      Bitset.inter_inplace pending (Enabled_set.bits enabled);
      if Bitset.is_empty pending then begin
        incr rounds;
        round_boundary ();
        if not (Enabled_set.is_empty enabled) then reset_pending ()
      end
    in
    while
      (not !stop)
      && (not (Enabled_set.is_empty enabled))
      && !steps < max_steps && !rounds < max_rounds
    do
      (match sched with
      | Scheduler.Synchronous ->
          (* The caches were recomputed against the round-top
             configuration, which is exactly the snapshot the reference
             engine evaluates moves on — apply them directly and
             re-probe the dirtied closed neighborhoods once at the end
             of the batch. *)
          let movers = Enabled_set.sorted enabled in
          List.iter
            (fun v ->
              if not !stop then
                match moves.(v) with
                | Some s -> apply ~defer:true v s
                | None -> () (* unreachable: cache fresh at round top *))
            movers;
          flush ()
      | Scheduler.Central strategy ->
          let v = pick_central strategy in
          apply ~defer:false v (Option.get moves.(v))
      | Scheduler.Distributed p ->
          let candidates = Enabled_set.sorted enabled in
          let chosen =
            List.filter (fun _ -> Random.State.float rng 1.0 < p) candidates
          in
          let chosen =
            match chosen with
            | [] -> [ List.nth candidates (Random.State.int rng (List.length candidates)) ]
            | l -> l
          in
          (* Nodes act one after another on the live configuration; each
             apply flushes, so the next node's cached move is the one
             [P.step] would compute on the live registers. *)
          List.iter
            (fun v ->
              if not !stop then
                match moves.(v) with
                | Some s -> apply ~defer:false v s
                | None -> ())
            chosen);
      prune_pending ()
    done;
    let silent = Enabled_set.is_empty enabled in
    {
      states;
      steps = !steps;
      rounds = !rounds;
      silent;
      legal = P.is_legal g states;
      max_bits = !max_bits;
      first_legal_round = !first_legal;
    }
end
