type 'state t = {
  id : int;
  n : int;
  degree : int;
  nbr_ids : int array;
  nbr_weights : int array;
  mutable self : 'state;
  nbrs : 'state array;
}

let index v u =
  let rec go lo hi =
    if lo >= hi then raise Not_found
    else
      let mid = (lo + hi) / 2 in
      let x = v.nbr_ids.(mid) in
      if x = u then mid else if x < u then go (mid + 1) hi else go lo mid
  in
  go 0 v.degree

let state_of v u = v.nbrs.(index v u)
let weight_to v u = v.nbr_weights.(index v u)
let is_neighbor v u = match index v u with _ -> true | exception Not_found -> false

let fold f init v =
  let acc = ref init in
  for i = 0 to v.degree - 1 do
    acc := f !acc v.nbr_ids.(i) v.nbr_weights.(i) v.nbrs.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.degree && (p v.nbr_ids.(i) v.nbr_weights.(i) v.nbrs.(i) || go (i + 1)) in
  go 0

let for_all p v = not (exists (fun id w s -> not (p id w s)) v)
