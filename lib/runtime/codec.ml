(* Flat int-array serialization helpers shared by the per-builder
   register codecs (see Protocol.CODEC and SCALING.md). The writer is a
   growable int buffer; the reader is a cursor over the encoded array.
   Encodings are self-delimiting: options carry a 0/1 tag, arrays a
   length prefix, so [unpack (pack s) = s] holds structurally. *)

type writer = { mutable buf : int array; mutable len : int }

let writer ?(capacity = 16) () = { buf = Array.make (max 1 capacity) 0; len = 0 }

let push w x =
  if w.len = Array.length w.buf then begin
    let bigger = Array.make (2 * Array.length w.buf) 0 in
    Array.blit w.buf 0 bigger 0 w.len;
    w.buf <- bigger
  end;
  w.buf.(w.len) <- x;
  w.len <- w.len + 1

let contents w = Array.sub w.buf 0 w.len

type reader = { data : int array; mutable pos : int }

let reader data = { data; pos = 0 }

let take r =
  if r.pos >= Array.length r.data then invalid_arg "Codec.take: past end";
  let x = r.data.(r.pos) in
  r.pos <- r.pos + 1;
  x

let at_end r = r.pos = Array.length r.data

let expect_end r =
  if not (at_end r) then invalid_arg "Codec.expect_end: trailing words"

(* Composite encodings. *)

let push_bool w b = push w (if b then 1 else 0)
let take_bool r = take r <> 0

let push_opt w f = function
  | None -> push w 0
  | Some x ->
      push w 1;
      f w x

let take_opt r f = if take r <> 0 then Some (f r) else None

let push_array w f a =
  push w (Array.length a);
  Array.iter (fun x -> f w x) a

let take_array r f =
  let len = take r in
  if len < 0 then invalid_arg "Codec.take_array: negative length";
  Array.init len (fun _ -> f r)

let push_pair w (a, b) =
  push w a;
  push w b

let take_pair r =
  let a = take r in
  let b = take r in
  (a, b)
