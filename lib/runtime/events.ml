module Json = Metrics.Json

type kind =
  | Move of {
      node : int;
      step : int;
      round : int;
      rule : string option;
      bits_before : int;
      bits_after : int;
      dphi : int option;
      causes : int list;
    }
  | Fault of { node : int; round : int }
  | Churn of { node : int; round : int; op : string }
  | Round of { round : int; enabled : int; phi : int option }

type event = { id : int; kind : kind }

type mode = Ring of { capacity : int; q : event Queue.t } | Stream of out_channel

type t = {
  mode : mode;
  record_phi : bool;
  move_phi : bool;
  mutable next_id : int;
  mutable total : int;
  mutable header : (string * Json.t) list option;
}

let ring ?(capacity = 65536) ?(record_phi = false) ?(move_phi = false) () =
  if capacity <= 0 then invalid_arg "Events.ring: capacity must be positive";
  {
    mode = Ring { capacity; q = Queue.create () };
    record_phi;
    move_phi;
    next_id = 0;
    total = 0;
    header = None;
  }

let stream ?(record_phi = false) ?(move_phi = false) oc =
  { mode = Stream oc; record_phi; move_phi; next_id = 0; total = 0; header = None }

let wants_phi t = t.record_phi
let wants_move_phi t = t.move_phi

let event_json { id; kind } =
  match kind with
  | Move { node; step; round; rule; bits_before; bits_after; dphi; causes } ->
      let fields =
        [
          ("ev", Json.Str "move");
          ("id", Json.Int id);
          ("step", Json.Int step);
          ("round", Json.Int round);
          ("node", Json.Int node);
        ]
        @ (match rule with Some r -> [ ("rule", Json.Str r) ] | None -> [])
        @ [ ("bits", Json.List [ Json.Int bits_before; Json.Int bits_after ]) ]
        @ (match dphi with Some d -> [ ("dphi", Json.Int d) ] | None -> [])
        @ [ ("causes", Json.List (List.map (fun c -> Json.Int c) causes)) ]
      in
      Json.Obj fields
  | Fault { node; round } ->
      Json.Obj
        [
          ("ev", Json.Str "fault");
          ("id", Json.Int id);
          ("round", Json.Int round);
          ("node", Json.Int node);
        ]
  | Churn { node; round; op } ->
      Json.Obj
        [
          ("ev", Json.Str "churn");
          ("id", Json.Int id);
          ("round", Json.Int round);
          ("node", Json.Int node);
          ("op", Json.Str op);
        ]
  | Round { round; enabled; phi } ->
      Json.Obj
        ([
           ("ev", Json.Str "round");
           ("id", Json.Int id);
           ("round", Json.Int round);
           ("enabled", Json.Int enabled);
         ]
        @ match phi with Some p -> [ ("phi", Json.Int p) ] | None -> [])

let push t e =
  t.total <- t.total + 1;
  match t.mode with
  | Ring { capacity; q } ->
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q)
  | Stream oc -> Json.to_channel oc (event_json e)

let meta t fields =
  t.header <- Some fields;
  match t.mode with
  | Ring _ -> ()
  | Stream oc -> Json.to_channel oc (Json.Obj (("ev", Json.Str "meta") :: fields))

let emit_move t ~node ~step ~round ?rule ~bits_before ~bits_after ?dphi ~causes () =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { id; kind = Move { node; step; round; rule; bits_before; bits_after; dphi; causes } };
  id

let emit_fault t ~node ~round =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { id; kind = Fault { node; round } };
  id

let emit_churn t ~node ~round ~op =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { id; kind = Churn { node; round; op } };
  id

let emit_round t ~round ~enabled ~phi =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t { id; kind = Round { round; enabled; phi } }

let events t =
  match t.mode with
  | Ring { q; _ } -> List.of_seq (Queue.to_seq q)
  | Stream _ -> []

let meta_fields t = t.header
let total t = t.total

let retained t = match t.mode with Ring { q; _ } -> Queue.length q | Stream _ -> 0
