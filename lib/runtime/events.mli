(** Structured per-move event traces with causal provenance.

    The engine ({!Engine.Make.run}) emits one {!event} per register
    write (kind [Move]), per adversarial corruption (kind [Fault]) and
    per round boundary (kind [Round]) into a {!t} sink. Two sink shapes
    keep big-n runs O(window) in memory:

    - {!ring} — a bounded in-memory window (oldest events dropped);
    - {!stream} — newline-delimited JSON ([JSONL]) written to a channel
      as events happen, nothing retained.

    {b Provenance.} A [Move] event carries [causes]: the ids of the
    events whose writes (re-)enabled this node since it was last
    disabled (or since its own previous move) — the incremental
    executor's wakeup path, surfaced. Causes always precede the event
    and are edge-adjacent (the writing node is the mover itself or a
    graph neighbor), so the events form an activation DAG. A move with
    no causes is {e root-spontaneous}: it was enabled by the initial
    configuration, not by any observed write. [Fault] events are DAG
    sources; recovery moves reached from one through cause edges are
    its measured causal cone (see [Explain] and OBSERVABILITY.md).

    Ids are monotone and owned by the sink, so one sink can span several
    engine runs (as chaos episodes do) without collisions. *)

type kind =
  | Move of {
      node : int;
      step : int;  (** 1-based global step count at this write *)
      round : int;
      rule : string option;  (** {!Protocol.S.classify} tag *)
      bits_before : int;
      bits_after : int;
      dphi : int option;  (** potential delta, when the sink asks for it *)
      causes : int list;  (** ids of the enabling events, oldest first *)
    }
  | Fault of { node : int; round : int }
  | Churn of { node : int; round : int; op : string }
      (** A topology edit touching [node] (one event per affected
          endpoint); [op] is the churn grammar spelling, e.g.
          ["del:2+5"]. Emitted by the service layer; like [Fault], a
          DAG source for recovery attribution. *)
  | Round of { round : int; enabled : int; phi : int option }

type event = { id : int; kind : kind }

type t

(** [ring ()] — bounded in-memory sink. [capacity] (default 65536) is
    the number of retained events; older ones are dropped (the total
    count is still tracked). [record_phi] asks the engine to evaluate
    the protocol potential at every round boundary; [move_phi]
    additionally at every move (expensive: one global [potential] per
    write) — both default to [false]. *)
val ring : ?capacity:int -> ?record_phi:bool -> ?move_phi:bool -> unit -> t

(** [stream oc] — streaming JSONL sink: every event (and the optional
    {!meta} header) is written to [oc] as one compact JSON object per
    line; nothing is retained in memory. The caller owns the channel. *)
val stream : ?record_phi:bool -> ?move_phi:bool -> out_channel -> t

val wants_phi : t -> bool
val wants_move_phi : t -> bool

(** [meta t fields] — record a trace header (kind ["meta"]) carrying
    run identification: algo, graph family, [n], seed… and, for
    [Explain]'s causal-cone radii, the edge list under ["edges"].
    Streamed sinks write it immediately; rings retain the last one. *)
val meta : t -> (string * Metrics.Json.t) list -> unit

val emit_move :
  t ->
  node:int ->
  step:int ->
  round:int ->
  ?rule:string ->
  bits_before:int ->
  bits_after:int ->
  ?dphi:int ->
  causes:int list ->
  unit ->
  int
(** Returns the fresh event's id (to thread into later causes). *)

val emit_fault : t -> node:int -> round:int -> int
val emit_churn : t -> node:int -> round:int -> op:string -> int
val emit_round : t -> round:int -> enabled:int -> phi:int option -> unit

(** Events currently retained, oldest first ([[]] for stream sinks). *)
val events : t -> event list

val meta_fields : t -> (string * Metrics.Json.t) list option
val total : t -> int
val retained : t -> int

(** One event as the JSON object the JSONL stream writes. *)
val event_json : event -> Metrics.Json.t
