(** Struct-of-arrays executor for fixed-width ({!Protocol.PACKED})
    protocols.

    Same trajectory semantics as {!Engine.Make}[.run] and
    [.run_reference] — the equivalence suite pins steps, rounds,
    max_bits, and final configurations byte-identical on shared seeds
    across the whole daemon roster — but the configuration lives in a
    flat int register bank ([P.words] lanes of length n), neighbor scans
    walk the graph's CSR arrays, and all scratch state is preallocated,
    so the steady-state loop performs no allocation (pinned by a
    [Gc.minor_words] test; see SCALING.md for the memory model and the
    measured big-n tables).

    The observability hooks that re-box state stay on the boxed engine:
    there is no [?events], [?adversary], [?on_round] or [?on_step] here.
    [?telemetry] and [?track_legal] are supported but re-box the
    configuration at round boundaries when they need Φ or legality. *)

module Make (P : Protocol.PACKED) : sig
  type result = {
    states : P.state array;  (** final configuration, re-boxed *)
    steps : int;
    rounds : int;
    silent : bool;
    legal : bool;
    max_bits : int;  (** the fixed register width [P.size_bits n _] *)
    first_legal_round : int option;
  }

  (** The designated initial configuration ([P.initial] per node). *)
  val initial : Repro_graph.Graph.t -> P.state array

  (** An adversarial configuration ([P.random_state] per node, same RNG
      draw order as {!Engine.Make.adversarial}). *)
  val adversarial : Random.State.t -> Repro_graph.Graph.t -> P.state array

  (** [run g sched rng ~init] executes until silence or a budget is hit.
      Defaults and parameter meanings match {!Engine.Make.run}:
      [max_steps] 10_000_000, [max_rounds] 200_000; [track_legal]
      records the first round whose configuration is legal;
      [stop_when_legal] additionally stops there; [stop_when] is polled
      after every write; [profile] counts guard evaluations, moves,
      touches, flushes and churn (rule tags are not classified — that
      would re-box every move). *)
  val run :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?track_legal:bool ->
    ?stop_when_legal:bool ->
    ?telemetry:Telemetry.t ->
    ?stop_when:(unit -> bool) ->
    ?profile:Profile.t ->
    Repro_graph.Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    init:P.state array ->
    result
end
