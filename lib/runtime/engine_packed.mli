(** Struct-of-arrays executor for fixed-width ({!Protocol.PACKED})
    protocols.

    Same trajectory semantics as {!Engine.Make}[.run] and
    [.run_reference] — the equivalence suite pins steps, rounds,
    max_bits, and final configurations byte-identical on shared seeds
    across the whole daemon roster — but the configuration lives in a
    flat int register bank ([P.words] lanes of length n), neighbor scans
    walk the graph's CSR arrays, and all scratch state is preallocated,
    so the steady-state loop performs no allocation (pinned by a
    [Gc.minor_words] test; see SCALING.md for the memory model and the
    measured big-n tables).

    The observability hooks that re-box state stay on the boxed engine:
    there is no [?events], [?adversary] or [?on_step] here. [?telemetry],
    [?track_legal] and [?on_round] are supported but re-box the
    configuration at round boundaries when they need Φ, legality or the
    observer callback — service mode's watchdog pays that cost to keep
    its observations byte-identical to the boxed engine's. *)

module Make (P : Protocol.PACKED) : sig
  type result = {
    states : P.state array;  (** final configuration, re-boxed *)
    steps : int;
    rounds : int;
    silent : bool;
    legal : bool;
    max_bits : int;  (** the fixed register width [P.size_bits n _] *)
    first_legal_round : int option;
  }

  (** The designated initial configuration ([P.initial] per node). *)
  val initial : Repro_graph.Graph.t -> P.state array

  (** An adversarial configuration ([P.random_state] per node, same RNG
      draw order as {!Engine.Make.adversarial}). *)
  val adversarial : Random.State.t -> Repro_graph.Graph.t -> P.state array

  (** [pack_bank ~n init] — the register bank encoding [init]: [P.words]
      int lanes of length [n], [bank.(f).(v)] = lane [f] of node [v]'s
      packed register.
      @raise Invalid_argument if [P.pack] returns the wrong width. *)
  val pack_bank : n:int -> P.state array -> int array array

  (** [run g sched rng ~init] executes until silence or a budget is hit.
      Defaults and parameter meanings match {!Engine.Make.run}:
      [max_steps] 10_000_000, [max_rounds] 200_000; [track_legal]
      records the first round whose configuration is legal;
      [stop_when_legal] additionally stops there; [stop_when] is polled
      after every write; [on_round] observes every round boundary
      (including round 0) with the re-boxed configuration, exactly like
      the boxed engine's hook; [profile] counts guard evaluations,
      moves, touches, flushes and churn (rule tags are not classified —
      that would re-box every move). *)
  val run :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?track_legal:bool ->
    ?stop_when_legal:bool ->
    ?telemetry:Telemetry.t ->
    ?on_round:(int -> P.state array -> unit) ->
    ?stop_when:(unit -> bool) ->
    ?profile:Profile.t ->
    Repro_graph.Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    init:P.state array ->
    result

  (** [run_bank g sched rng ~bank] — {!run} on a caller-owned register
      bank (as built by {!pack_bank}), {e mutated in place}: the final
      registers are left in [bank], and [result.states] re-boxes them
      for observers. This is service mode's entry point — registers
      survive between recovery runs in the bank, and churn migration
      copies surviving lanes verbatim instead of round-tripping through
      boxed states.
      @raise Invalid_argument if [bank] is not [P.words] lanes of
      length [n]. *)
  val run_bank :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?track_legal:bool ->
    ?stop_when_legal:bool ->
    ?telemetry:Telemetry.t ->
    ?on_round:(int -> P.state array -> unit) ->
    ?stop_when:(unit -> bool) ->
    ?profile:Profile.t ->
    Repro_graph.Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    bank:int array array ->
    result
end
