module Graph = Repro_graph.Graph
module Traversal = Repro_graph.Traversal

let validate_nodes ~n nodes =
  let nodes = List.sort_uniq compare nodes in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Fault.corrupt_nodes: node id %d out of range [0,%d)" v n))
    nodes;
  nodes

let corrupt_nodes rng ~random_state g states nodes =
  let nodes = validate_nodes ~n:(Array.length states) nodes in
  let states = Array.copy states in
  List.iter (fun v -> states.(v) <- random_state rng g v) nodes;
  states

(* Distinct uniform node ids: shuffle indices, take the first k. *)
let pick_nodes rng ~n ~k =
  let idx = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.to_list (Array.sub idx 0 k) |> List.sort compare

let corrupt rng ~random_state g states ~k =
  let n = Array.length states in
  if k <= 0 then Array.copy states
  else corrupt_nodes rng ~random_state g states (pick_nodes rng ~n ~k:(min k n))

(* ------------------------------------------------------------------ *)
(* Single bit-flip in the encoded register.

   Registers are abstract per protocol, so the flip works on the runtime
   representation: walk the value, collect every immediate (int-like)
   field reachable through ordinary scannable blocks, pick one uniformly,
   and flip one of its low [bits] bits, copying only the blocks along the
   path. Strings, floats, closures and other exotic blocks are left
   alone. This covers every register type in the repository (records of
   ints, options, arrays, nested records) and models the classic
   memory-fault corruption: the result is one bit away from the original
   encoding, not a fresh uniform draw. *)

let bitflip ?(bits = 16) rng (s : 'state) : 'state =
  let scannable o =
    let tag = Obj.tag o in
    tag < Obj.no_scan_tag && tag <> Obj.closure_tag && tag <> Obj.object_tag
    && tag <> Obj.lazy_tag && tag <> Obj.forward_tag && tag <> Obj.infix_tag
  in
  let rec paths acc path o =
    if Obj.is_int o then List.rev path :: acc
    else if scannable o then begin
      let acc = ref acc in
      for i = 0 to Obj.size o - 1 do
        acc := paths !acc (i :: path) (Obj.field o i)
      done;
      !acc
    end
    else acc
  in
  match paths [] [] (Obj.repr s) with
  | [] -> s
  | ps ->
      let path = List.nth ps (Random.State.int rng (List.length ps)) in
      let bit = Random.State.int rng (max 1 bits) in
      let rec flip o = function
        | [] -> Obj.repr ((Obj.obj o : int) lxor (1 lsl bit))
        | i :: rest ->
            let o' = Obj.dup o in
            Obj.set_field o' i (flip (Obj.field o i) rest);
            o'
      in
      Obj.obj (flip (Obj.repr s) path)

(* ------------------------------------------------------------------ *)
(* Structured fault plans. *)

module Plan = struct
  type target =
    | Random_nodes of int
    | Nodes of int list
    | Root
    | Deepest
    | Subtree

  type payload = Randomize | Bitflip | Stale of int
  type timing = At_silence | Periodic of int | Poisson of float

  type t = { target : target; payload : payload; timing : timing }

  let make ?(payload = Randomize) ?(timing = At_silence) target =
    { target; payload; timing }

  let target_name = function
    | Random_nodes k -> Printf.sprintf "random:%d" k
    | Nodes l -> "nodes:" ^ String.concat "+" (List.map string_of_int l)
    | Root -> "root"
    | Deepest -> "deepest"
    | Subtree -> "subtree"

  let payload_name = function
    | Randomize -> "randomize"
    | Bitflip -> "bitflip"
    | Stale d -> Printf.sprintf "stale:%d" d

  let timing_name = function
    | At_silence -> "silence"
    | Periodic r -> Printf.sprintf "periodic:%d" r
    | Poisson rate -> Printf.sprintf "poisson:%g" rate

  let name p =
    Printf.sprintf "%s/%s@%s" (target_name p.target) (payload_name p.payload)
      (timing_name p.timing)

  let pp ppf p = Format.pp_print_string ppf (name p)

  let split_once ch s =
    match String.index_opt s ch with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

  let parse_target s =
    let head, arg = split_once ':' s in
    match (head, arg) with
    | "random", Some k -> (
        match int_of_string_opt k with
        | Some k when k > 0 -> Ok (Random_nodes k)
        | _ -> Error (Printf.sprintf "bad random target %S (want random:K, K > 0)" s))
    | "nodes", Some l -> (
        let ids = String.split_on_char '+' l |> List.map int_of_string_opt in
        if List.for_all Option.is_some ids && ids <> [] then
          Ok (Nodes (List.filter_map Fun.id ids))
        else Error (Printf.sprintf "bad nodes target %S (want nodes:1+2+3)" s))
    | "root", None -> Ok Root
    | "deepest", None -> Ok Deepest
    | "subtree", None -> Ok Subtree
    | _ -> Error (Printf.sprintf "unknown fault target %S" s)

  let parse_payload s =
    let head, arg = split_once ':' s in
    match (head, arg) with
    | "randomize", None -> Ok Randomize
    | "bitflip", None -> Ok Bitflip
    | "stale", Some d -> (
        match int_of_string_opt d with
        | Some d when d > 0 -> Ok (Stale d)
        | _ -> Error (Printf.sprintf "bad stale payload %S (want stale:D, D > 0)" s))
    | _ -> Error (Printf.sprintf "unknown fault payload %S" s)

  let parse_timing s =
    let head, arg = split_once ':' s in
    match (head, arg) with
    | "silence", None -> Ok At_silence
    | "periodic", Some r -> (
        match int_of_string_opt r with
        | Some r when r > 0 -> Ok (Periodic r)
        | _ -> Error (Printf.sprintf "bad periodic timing %S (want periodic:R, R > 0)" s))
    | "poisson", Some rate -> (
        match float_of_string_opt rate with
        | Some rate when rate > 0.0 && rate <= 1.0 -> Ok (Poisson rate)
        | _ ->
            Error
              (Printf.sprintf "bad poisson timing %S (want poisson:RATE in (0,1])" s))
    | _ -> Error (Printf.sprintf "unknown fault timing %S" s)

  let ( let* ) r f = Result.bind r f

  let of_string s =
    let body, timing = split_once '@' s in
    let target, payload = split_once '/' body in
    let* target = parse_target (String.trim target) in
    let* payload =
      match payload with None -> Ok Randomize | Some p -> parse_payload (String.trim p)
    in
    let* timing =
      match timing with None -> Ok At_silence | Some t -> parse_timing (String.trim t)
    in
    Ok { target; payload; timing }

  let parse_list s =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match of_string p with Ok p -> go (p :: acc) rest | Error _ as e -> e)
    in
    go []
      (String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun s -> s <> ""))

  let defaults =
    [
      make (Random_nodes 3);
      make Root ~payload:Bitflip;
      make Deepest ~payload:(Stale 2);
      make Subtree;
      make (Random_nodes 2) ~timing:(Periodic 5);
    ]
end

let select rng g (target : Plan.target) =
  let n = Graph.n g in
  match target with
  | Plan.Random_nodes k -> pick_nodes rng ~n ~k:(max 0 (min k n))
  | Plan.Nodes l -> validate_nodes ~n l
  | Plan.Root -> [ 0 ]
  | Plan.Deepest ->
      let d = Traversal.bfs_distances g ~src:0 in
      let best = ref 0 in
      for v = 1 to n - 1 do
        if d.(v) > d.(!best) then best := v
      done;
      [ !best ]
  | Plan.Subtree ->
      let parent = Traversal.bfs_tree g ~src:0 in
      let v = Random.State.int rng n in
      let descends u =
        let rec walk x steps = x = v || (steps < n && x >= 0 && walk parent.(x) (steps + 1)) in
        walk u 0
      in
      List.filter descends (List.init n Fun.id)

let apply_plan rng ~random_state ?stale g states (plan : Plan.t) =
  let nodes = select rng g plan.Plan.target in
  let states' = Array.copy states in
  let payload_of v =
    match plan.Plan.payload with
    | Plan.Randomize -> random_state rng g v
    | Plan.Bitflip -> bitflip rng states.(v)
    | Plan.Stale d -> (
        match stale with
        | Some history -> (
            match history d with Some old -> old.(v) | None -> random_state rng g v)
        | None -> random_state rng g v)
  in
  List.iter (fun v -> states'.(v) <- payload_of v) nodes;
  (nodes, states')
