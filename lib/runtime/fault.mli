(** Transient-fault injection (Section II-A: a fault corrupts the register
    of one or more nodes; identities and edge weights are incorruptible).

    Two layers:

    - the classic one-shot corruptors {!corrupt} / {!corrupt_nodes}
      (experiment E8's original shape: random registers, injected once);
    - structured {!Plan}s — {e which} nodes ({!Plan.target}), {e what} is
      written ({!Plan.payload}) and {e when} ({!Plan.timing}) — consumed
      by the chaos campaign ({!Chaos}, [repro_cli chaos]) and the
      engine's [?adversary] round-boundary hook for mid-execution
      injection. *)

(** [corrupt rng ~random_state g states ~k] returns a copy of [states]
    with [min k n] distinct random nodes' registers replaced by arbitrary
    values. [k <= 0] is a no-op copy (no RNG draws). *)
val corrupt :
  Random.State.t ->
  random_state:(Random.State.t -> Repro_graph.Graph.t -> int -> 'state) ->
  Repro_graph.Graph.t ->
  'state array ->
  k:int ->
  'state array

(** [pick_nodes rng ~n ~k] — [k] distinct uniform node ids out of
    [0..n-1], sorted. Exactly the draw {!corrupt} performs internally;
    exposed so callers that must {e know} which nodes a random fault
    hit (e.g. to attribute recovery moves in an event trace) can pick
    first and then call {!corrupt_nodes}, consuming the same RNG
    stream. *)
val pick_nodes : Random.State.t -> n:int -> k:int -> int list

(** [corrupt_nodes rng ~random_state g states nodes] corrupts exactly the
    given nodes, deduplicated (each register is re-drawn once however
    often its id is listed).
    @raise Invalid_argument on an out-of-range node id. *)
val corrupt_nodes :
  Random.State.t ->
  random_state:(Random.State.t -> Repro_graph.Graph.t -> int -> 'state) ->
  Repro_graph.Graph.t ->
  'state array ->
  int list ->
  'state array

(** [bitflip rng s] is [s] with a single bit flipped: a uniformly chosen
    immediate (int-like) field reachable in the register's runtime
    representation gets one of its low [bits] (default 16) bits toggled;
    the blocks along the path are copied, the rest is shared. Registers
    made of ints, bools, options, arrays, tuples and records — every
    register type in this repository — are covered; strings, floats and
    closures are skipped (a register consisting solely of those is
    returned unchanged). Unlike {!corrupt}'s uniform re-draw, the result
    is one bit of Hamming distance away from the original encoding — the
    classic memory-fault model. *)
val bitflip : ?bits:int -> Random.State.t -> 'state -> 'state

(** Structured fault campaigns: target x payload x timing, with a
    parseable grammar ["TARGET/PAYLOAD@TIMING"] used by
    [repro_cli chaos --plans]. Payload defaults to [randomize], timing to
    [silence]; e.g. ["random:3"], ["root/bitflip"],
    ["deepest/stale:2@silence"], ["random:2/randomize@periodic:5"]. *)
module Plan : sig
  type target =
    | Random_nodes of int  (** [random:K] — K distinct uniform nodes *)
    | Nodes of int list  (** [nodes:1+2+3] — exactly these nodes *)
    | Root  (** [root] — node 0, the stable root of every builder *)
    | Deepest  (** [deepest] — a node of maximum hop distance from 0 *)
    | Subtree
        (** [subtree] — a uniform node plus all its descendants in the
            canonical BFS tree rooted at 0 *)

  type payload =
    | Randomize  (** [randomize] — [P.random_state], the E8 model *)
    | Bitflip  (** [bitflip] — {!Fault.bitflip} on the current register *)
    | Stale of int
        (** [stale:D] — replay the register the node held D recorded
            rounds earlier (state-replay faults); falls back to
            [Randomize] when no history is available *)

  type timing =
    | At_silence  (** [silence] — inject once, into a silent configuration *)
    | Periodic of int  (** [periodic:R] — inject at every R-th round boundary *)
    | Poisson of float
        (** [poisson:RATE] — at each round boundary, inject with
            probability RATE (plus one forced injection at round 0) *)

  type t = { target : target; payload : payload; timing : timing }

  val make : ?payload:payload -> ?timing:timing -> target -> t

  (** Canonical grammar string, e.g. ["root/bitflip@silence"]. *)
  val name : t -> string

  val pp : Format.formatter -> t -> unit

  (** Parse one plan; inverse of {!name} (modulo defaults). *)
  val of_string : string -> (t, string) result

  (** Parse a comma-separated plan list. *)
  val parse_list : string -> (t list, string) result

  (** The default campaign matrix: one plan per corruption model. *)
  val defaults : t list
end

(** [select rng g target] resolves a target to a sorted, deduplicated
    node list on this topology.
    @raise Invalid_argument on out-of-range ids in {!Plan.Nodes}. *)
val select : Random.State.t -> Repro_graph.Graph.t -> Plan.target -> int list

(** [apply_plan rng ~random_state ?stale g states plan] resolves the
    plan's target and writes its payload, returning the injected nodes
    and the corrupted copy. [stale d] supplies the configuration recorded
    [d] rounds ago for {!Plan.Stale} payloads ([None] = unavailable).
    Timing is the {e caller}'s business: this function injects now. *)
val apply_plan :
  Random.State.t ->
  random_state:(Random.State.t -> Repro_graph.Graph.t -> int -> 'state) ->
  ?stale:(int -> 'state array option) ->
  Repro_graph.Graph.t ->
  'state array ->
  Plan.t ->
  int list * 'state array
