module Json = Metrics.Json
module ISet = Set.Make (Int)

type move = {
  id : int;
  step : int;
  round : int;
  node : int;
  rule : string option;
  bits_before : int;
  bits_after : int;
  dphi : int option;
  causes : int list;
}

type fault = { id : int; round : int; node : int }
type churn = { id : int; round : int; node : int; op : string }
type round_rec = { round : int; enabled : int; phi : int option }

type trace = {
  meta : (string * Json.t) list option;
  moves : move list;
  faults : fault list;
  churns : churn list;
  rounds : round_rec list;
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

let int_field j k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let req_int j k =
  match int_field j k with Some i -> i | None -> failwith (Printf.sprintf "missing %S" k)

let parse_line j =
  match Json.member "ev" j with
  | Some (Json.Str "meta") -> (
      match j with
      | Json.Obj fields -> `Meta (List.filter (fun (k, _) -> k <> "ev") fields)
      | _ -> failwith "meta is not an object")
  | Some (Json.Str "move") ->
      let rule = match Json.member "rule" j with Some (Json.Str r) -> Some r | _ -> None in
      let bits_before, bits_after =
        match Json.member "bits" j with
        | Some (Json.List [ Json.Int b0; Json.Int b1 ]) -> (b0, b1)
        | _ -> failwith "missing bits pair"
      in
      let causes =
        match Json.member "causes" j with
        | Some (Json.List l) ->
            List.map (function Json.Int c -> c | _ -> failwith "non-int cause") l
        | _ -> failwith "missing causes"
      in
      `Move
        {
          id = req_int j "id";
          step = req_int j "step";
          round = req_int j "round";
          node = req_int j "node";
          rule;
          bits_before;
          bits_after;
          dphi = int_field j "dphi";
          causes;
        }
  | Some (Json.Str "fault") ->
      `Fault
        ({ id = req_int j "id"; round = req_int j "round"; node = req_int j "node" }
          : fault)
  | Some (Json.Str "churn") ->
      let op =
        match Json.member "op" j with
        | Some (Json.Str o) -> o
        | _ -> failwith "missing \"op\" field"
      in
      `Churn
        ({ id = req_int j "id"; round = req_int j "round"; node = req_int j "node"; op }
          : churn)
  | Some (Json.Str "round") ->
      `Round
        {
          round = req_int j "round";
          enabled = req_int j "enabled";
          phi = int_field j "phi";
        }
  | Some (Json.Str k) -> failwith (Printf.sprintf "unknown event kind %S" k)
  | _ -> failwith "missing \"ev\" field"

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let meta = ref None in
  let moves = ref [] and faults = ref [] and churns = ref [] and rounds = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        match Json.of_string (String.trim line) with
        | None -> err := Some (Printf.sprintf "line %d: not valid JSON" (i + 1))
        | Some j -> (
            match parse_line j with
            | `Meta f -> meta := Some f
            | `Move m -> moves := m :: !moves
            | `Fault f -> faults := f :: !faults
            | `Churn c -> churns := c :: !churns
            | `Round r -> rounds := r :: !rounds
            | exception Failure msg -> err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      Ok
        {
          meta = !meta;
          moves = List.rev !moves;
          faults = List.rev !faults;
          churns = List.rev !churns;
          rounds = List.rev !rounds;
        }

(* ------------------------------------------------------------------ *)
(* Analysis *)

type cone = {
  injection_round : int;
  injected : int list;
  attributed_moves : int;
  cone_nodes : int list;
  cone_radius : int option;
}

type report = {
  header : (string * Json.t) list;
  total_moves : int;
  total_faults : int;
  total_churns : int;
  total_rounds : int;
  distinct_movers : int;
  rule_breakdown : (string * int) list;
  phi_milestones : (int * int) list;
  hot_nodes : (int * int) list;
  cause_edges : int;
  root_spontaneous : int;
  fault_attributed : int;
  max_chain : int;
  cones : cone list;
}

(* Adjacency from the meta header's ["edges"] list ([[u, v, w], ...]),
   for measured cone radii. *)
let adjacency_of_meta meta =
  match meta with
  | None -> None
  | Some fields -> (
      match List.assoc_opt "edges" fields with
      | Some (Json.List edges) -> (
          try
            let pairs =
              List.map
                (function
                  | Json.List (Json.Int u :: Json.Int v :: _) -> (u, v)
                  | _ -> failwith "bad edge")
                edges
            in
            let n =
              List.fold_left (fun acc (u, v) -> max acc (max u v + 1)) 0 pairs
            in
            let adj = Array.make n [] in
            List.iter
              (fun (u, v) ->
                adj.(u) <- v :: adj.(u);
                adj.(v) <- u :: adj.(v))
              pairs;
            Some adj
          with Failure _ -> None)
      | _ -> None)

let bfs_from adj sources =
  let n = Array.length adj in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if s >= 0 && s < n && dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.push s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
      adj.(u)
  done;
  dist

let analyze ?(top = 10) (t : trace) =
  let total_moves = List.length t.moves in
  let total_faults = List.length t.faults in
  let total_churns = List.length t.churns in
  (* Churn events are DAG sources exactly like faults — same-round
     grouping, same cone accounting — so project them into the fault
     shape and run one source list through the attribution pass. *)
  let sources : fault list =
    List.sort
      (fun (a : fault) (b : fault) -> compare a.id b.id)
      (t.faults
      @ List.map (fun (c : churn) -> { id = c.id; round = c.round; node = c.node }) t.churns
      )
  in
  let total_rounds =
    let m = List.fold_left (fun acc (r : round_rec) -> max acc r.round) 0 t.rounds in
    let m = List.fold_left (fun acc (mv : move) -> max acc mv.round) m t.moves in
    List.fold_left (fun acc (f : fault) -> max acc f.round) m sources
  in
  (* per-node and per-rule counts *)
  let node_counts = Hashtbl.create 64 in
  let rule_counts = Hashtbl.create 16 in
  let bump tbl k =
    match Hashtbl.find_opt tbl k with
    | Some c -> incr c
    | None -> Hashtbl.add tbl k (ref 1)
  in
  List.iter
    (fun (m : move) ->
      bump node_counts m.node;
      bump rule_counts (Option.value m.rule ~default:"?"))
    t.moves;
  let sorted_counts tbl =
    Hashtbl.fold (fun k c acc -> (k, !c) :: acc) tbl []
    |> List.sort (fun (ka, ca) (kb, cb) ->
           match compare cb ca with 0 -> compare ka kb | c -> c)
  in
  let rule_breakdown = sorted_counts rule_counts in
  let hot_nodes =
    let l = sorted_counts node_counts in
    List.filteri (fun i _ -> i < top) l
  in
  let distinct_movers = Hashtbl.length node_counts in
  (* Φ milestones: the first observed value, each crossing of 1/2, 1/4,
     1/10, 1/100 of it, zero, and the last observed value. *)
  let phi_milestones =
    let obs =
      List.filter_map
        (fun (r : round_rec) -> match r.phi with Some p -> Some (r.round, p) | None -> None)
        t.rounds
    in
    match obs with
    | [] -> []
    | (r0, p0) :: rest ->
        let thresholds = ref [ p0 / 2; p0 / 4; p0 / 10; p0 / 100; 0 ] in
        let acc = ref [ (r0, p0) ] in
        List.iter
          (fun (r, p) ->
            let rec cross () =
              match !thresholds with
              | th :: tl when p <= th ->
                  thresholds := tl;
                  if not (List.mem (r, p) !acc) then acc := (r, p) :: !acc;
                  cross ()
              | _ -> ()
            in
            cross ())
          rest;
        (match List.rev rest with
        | (rl, pl) :: _ when not (List.mem (rl, pl) !acc) -> acc := (rl, pl) :: !acc
        | _ -> ());
        List.rev !acc
  in
  (* Activation DAG: per-event transitive fault-injection sets and chain
     depth, one pass in id order (causes always precede). *)
  let inj_round = Hashtbl.create 8 in
  let inj_rounds = ref [] in
  List.iter
    (fun (f : fault) ->
      if not (Hashtbl.mem inj_round f.round) then begin
        Hashtbl.add inj_round f.round (List.length !inj_rounds);
        inj_rounds := f.round :: !inj_rounds
      end)
    sources;
  let inj_rounds = List.rev !inj_rounds in
  let origin = Hashtbl.create 256 in
  (* event id -> ISet of injection indices *)
  let depth = Hashtbl.create 256 in
  let cause_edges = ref 0 in
  let root_spontaneous = ref 0 in
  let fault_attributed = ref 0 in
  let max_chain = ref 0 in
  let tagged =
    List.merge
      (fun a b -> compare (fst a) (fst b))
      (List.map (fun (f : fault) -> (f.id, `F f)) sources)
      (List.map (fun (m : move) -> (m.id, `M m)) t.moves)
  in
  let per_inj_moves = Hashtbl.create 8 in
  (* inj index -> (count ref, node set ref) *)
  List.iter
    (fun (_, e) ->
      match e with
      | `F (f : fault) ->
          Hashtbl.replace origin f.id (ISet.singleton (Hashtbl.find inj_round f.round))
      | `M (m : move) ->
          cause_edges := !cause_edges + List.length m.causes;
          let o =
            List.fold_left
              (fun acc c ->
                match Hashtbl.find_opt origin c with
                | Some s -> ISet.union acc s
                | None -> acc)
              ISet.empty m.causes
          in
          let d =
            1
            + List.fold_left
                (fun acc c ->
                  match Hashtbl.find_opt depth c with Some d -> max acc d | None -> acc)
                0 m.causes
          in
          Hashtbl.replace origin m.id o;
          Hashtbl.replace depth m.id d;
          if d > !max_chain then max_chain := d;
          if ISet.is_empty o then incr root_spontaneous
          else begin
            incr fault_attributed;
            ISet.iter
              (fun i ->
                let c, nodes =
                  match Hashtbl.find_opt per_inj_moves i with
                  | Some x -> x
                  | None ->
                      let x = (ref 0, ref ISet.empty) in
                      Hashtbl.add per_inj_moves i x;
                      x
                in
                incr c;
                nodes := ISet.add m.node !nodes)
              o
          end)
    tagged;
  let adj = adjacency_of_meta t.meta in
  let cones =
    List.mapi
      (fun i r ->
        let injected =
          List.filter_map (fun (f : fault) -> if f.round = r then Some f.node else None) sources
          |> List.sort_uniq compare
        in
        let count, nodes =
          match Hashtbl.find_opt per_inj_moves i with
          | Some (c, ns) -> (!c, ISet.elements !ns)
          | None -> (0, [])
        in
        let cone_radius =
          match (adj, nodes) with
          | Some adj, _ :: _ ->
              let dist = bfs_from adj injected in
              Some
                (List.fold_left
                   (fun acc v ->
                     if v < Array.length dist && dist.(v) >= 0 then max acc dist.(v) else acc)
                   0 nodes)
          | _ -> None
        in
        {
          injection_round = r;
          injected;
          attributed_moves = count;
          cone_nodes = nodes;
          cone_radius;
        })
      inj_rounds
  in
  {
    header = Option.value t.meta ~default:[];
    total_moves;
    total_faults;
    total_churns;
    total_rounds;
    distinct_movers;
    rule_breakdown;
    phi_milestones;
    hot_nodes;
    cause_edges = !cause_edges;
    root_spontaneous = !root_spontaneous;
    fault_attributed = !fault_attributed;
    max_chain = !max_chain;
    cones;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let header_str r =
  let s k = match List.assoc_opt k r.header with Some (Json.Str s) -> Some s | _ -> None in
  let i k =
    match List.assoc_opt k r.header with Some (Json.Int v) -> Some (string_of_int v) | _ -> None
  in
  String.concat " "
    (List.filter_map Fun.id
       [
         s "algo";
         Option.map (fun g -> "on " ^ g) (s "graph");
         Option.map (fun n -> "n=" ^ n) (i "n");
         Option.map (fun sd -> "seed=" ^ sd) (i "seed");
         Option.map (fun sc -> "sched=" ^ sc) (s "sched");
       ])

let pp_text ppf r =
  let pf fmt = Format.fprintf ppf fmt in
  pf "@[<v>";
  let hdr = header_str r in
  if hdr <> "" then pf "trace: %s@," hdr;
  pf "moves: %d over %d rounds by %d nodes; faults: %d%s@," r.total_moves r.total_rounds
    r.distinct_movers r.total_faults
    (if r.total_churns > 0 then Printf.sprintf "; churn events: %d" r.total_churns else "");
  if r.rule_breakdown <> [] then begin
    pf "@,per-rule breakdown:@,";
    List.iter
      (fun (rule, c) ->
        pf "  %-12s %6d  (%.1f%%)@," rule c
          (100. *. float_of_int c /. float_of_int (max 1 r.total_moves)))
      r.rule_breakdown
  end;
  if r.phi_milestones <> [] then begin
    pf "@,potential milestones (round, phi):@,";
    List.iter (fun (round, phi) -> pf "  round %-6d phi=%d@," round phi) r.phi_milestones
  end;
  if r.hot_nodes <> [] then begin
    pf "@,hottest nodes:@,";
    List.iter (fun (v, c) -> pf "  node %-5d %6d moves@," v c) r.hot_nodes
  end;
  pf "@,activation DAG: %d cause edges, longest chain %d@," r.cause_edges r.max_chain;
  pf "attribution: %d fault-attributed, %d root-spontaneous@," r.fault_attributed
    r.root_spontaneous;
  if r.cones <> [] then begin
    pf "@,fault cones:@,";
    List.iter
      (fun c ->
        pf "  round %-6d inject [%s]: %d moves, %d nodes%s@," c.injection_round
          (String.concat "," (List.map string_of_int c.injected))
          c.attributed_moves (List.length c.cone_nodes)
          (match c.cone_radius with
          | Some rr -> Printf.sprintf ", cone radius %d" rr
          | None -> ""))
      r.cones
  end;
  pf "@]"

let to_text r = Format.asprintf "%a" pp_text r

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Φ-by-round sparkline as an inline SVG polyline. *)
let phi_svg r =
  match r.phi_milestones with
  | [] | [ _ ] -> ""
  | pts ->
      let w = 560. and h = 120. and pad = 8. in
      let rmax = List.fold_left (fun a (rr, _) -> max a rr) 1 pts in
      let pmax = List.fold_left (fun a (_, p) -> max a p) 1 pts in
      let coord (rr, p) =
        let x = pad +. (float_of_int rr /. float_of_int (max 1 rmax) *. (w -. (2. *. pad))) in
        let y = h -. pad -. (float_of_int p /. float_of_int pmax *. (h -. (2. *. pad))) in
        Printf.sprintf "%.1f,%.1f" x y
      in
      Printf.sprintf
        "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\"\n\
        \  role=\"img\" aria-label=\"potential trajectory\">\n\
         <polyline fill=\"none\" stroke=\"#27638f\" stroke-width=\"2\" points=\"%s\"/>\n\
         </svg>"
        w h w h
        (String.concat " " (List.map coord pts))

let to_html r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add
    "<!DOCTYPE html>\n\
     <html lang=\"en\"><head><meta charset=\"utf-8\">\n\
     <title>convergence report</title>\n\
     <style>\n\
     body{font:14px/1.5 system-ui,sans-serif;max-width:720px;margin:2rem auto;color:#222}\n\
     h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.6rem}\n\
     table{border-collapse:collapse;margin:.5rem 0}\n\
     td,th{padding:.15rem .6rem;text-align:right;border-bottom:1px solid #ddd}\n\
     th{text-align:left}td:first-child{text-align:left}\n\
     .bar{background:#27638f;height:10px;display:inline-block;vertical-align:middle}\n\
     .muted{color:#777}\n\
     </style></head><body>\n";
  add "<h1>Convergence report</h1>\n";
  let hdr = header_str r in
  if hdr <> "" then add "<p class=\"muted\">%s</p>\n" (html_escape hdr);
  add "<p>%d moves over %d rounds by %d distinct nodes; %d fault events%s.</p>\n" r.total_moves
    r.total_rounds r.distinct_movers r.total_faults
    (if r.total_churns > 0 then Printf.sprintf "; %d churn events" r.total_churns else "");
  if r.rule_breakdown <> [] then begin
    add "<h2>Per-rule breakdown</h2>\n<table><tr><th>rule</th><th>moves</th><th></th></tr>\n";
    let mx = List.fold_left (fun a (_, c) -> max a c) 1 r.rule_breakdown in
    List.iter
      (fun (rule, c) ->
        add "<tr><td>%s</td><td>%d</td><td><span class=\"bar\" style=\"width:%dpx\"></span></td></tr>\n"
          (html_escape rule) c (c * 220 / mx))
      r.rule_breakdown;
    add "</table>\n"
  end;
  if r.phi_milestones <> [] then begin
    add "<h2>Potential trajectory</h2>\n%s\n<table><tr><th>round</th><th>&Phi;</th></tr>\n"
      (phi_svg r);
    List.iter (fun (round, phi) -> add "<tr><td>%d</td><td>%d</td></tr>\n" round phi)
      r.phi_milestones;
    add "</table>\n"
  end;
  if r.hot_nodes <> [] then begin
    add "<h2>Hottest nodes</h2>\n<table><tr><th>node</th><th>moves</th></tr>\n";
    List.iter (fun (v, c) -> add "<tr><td>%d</td><td>%d</td></tr>\n" v c) r.hot_nodes;
    add "</table>\n"
  end;
  add "<h2>Activation DAG</h2>\n<p>%d cause edges; longest chain %d.<br>%d moves fault-attributed, %d root-spontaneous.</p>\n"
    r.cause_edges r.max_chain r.fault_attributed r.root_spontaneous;
  if r.cones <> [] then begin
    add
      "<h2>Fault cones</h2>\n\
       <table><tr><th>injection round</th><th>nodes</th><th>moves</th><th>reached</th><th>radius</th></tr>\n";
    List.iter
      (fun c ->
        add "<tr><td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>\n"
          c.injection_round
          (html_escape (String.concat "," (List.map string_of_int c.injected)))
          c.attributed_moves (List.length c.cone_nodes)
          (match c.cone_radius with Some rr -> string_of_int rr | None -> "&mdash;"))
      r.cones;
    add "</table>\n"
  end;
  add "</body></html>\n";
  Buffer.contents buf
