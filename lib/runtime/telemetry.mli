(** Convergence telemetry: a per-round probe for {!Engine.Make}[.run].

    Passed via the engine's [?telemetry] parameter, a sink records one
    {!sample} at every round boundary (round 0 = the initial
    configuration): how many nodes are enabled, how many register writes
    the round performed, the max/total register bits of the current
    configuration, and — when the protocol defines one — the live value
    of its potential [Φ] ({!Protocol.S.potential}). This is the
    trajectory the paper's quantitative claims are judged on (poly(n)
    rounds, PLS-bounded registers, a potential that decreases to 0), and
    the machine-readable artifact every perf/robustness PR reports
    through.

    The sink also aggregates into a {!Metrics.t} registry
    ([telemetry.writes] counter, [telemetry.writes_per_round] /
    [telemetry.enabled_per_round] / [telemetry.register_bits] histograms,
    [telemetry.phi] / [telemetry.max_bits] / [telemetry.rounds] gauges),
    so histogram summaries ride along with the raw series. *)

type sample = {
  round : int;
  enabled : int;  (** nodes enabled at this round boundary *)
  writes : int;  (** register writes during the preceding round *)
  writes_total : int;  (** cumulative register writes *)
  max_bits : int;  (** max register size over the current configuration *)
  total_bits : int;  (** summed register sizes of the configuration *)
  phi : int option;  (** protocol potential, when defined *)
}

(** One mid-run fault injection and how the protocol absorbed it,
    recorded by the chaos harness ({!Chaos}). *)
type recovery = {
  injection_round : int;  (** round boundary at which the fault landed *)
  injected_nodes : int list;  (** nodes whose registers were corrupted *)
  fault_gap : int option;
      (** rounds from injection back to a silent legal configuration;
          [None] when the run never recovered from this injection *)
  containment_radius : int option;
      (** max over the nodes that wrote during recovery of the hop
          distance to the nearest injected node; [None] when no node
          wrote (the fault was absorbed without any correction) *)
  touched : int;  (** distinct nodes that wrote during recovery *)
}

type t

(** [create ()] — a fresh sink. [~record_phi:false] skips the (possibly
    expensive) per-round potential computation; [~registry] shares an
    existing metrics registry instead of creating one. *)
val create : ?record_phi:bool -> ?registry:Metrics.t -> unit -> t

(** Whether the engine should compute [P.potential] for this sink. *)
val wants_phi : t -> bool

(** Engine-side hooks. [on_write] is called once per register write with
    the written register's size; [on_round] closes a round. *)
val on_write : t -> bits:int -> unit

val on_round :
  t -> round:int -> enabled:int -> max_bits:int -> total_bits:int -> phi:int option -> unit

(** [on_recovery t r] appends a per-injection recovery record (chaos
    harness hook; the engine itself never calls this). *)
val on_recovery : t -> recovery -> unit

(** Recovery records in injection order. *)
val recoveries : t -> recovery list

(** Samples in chronological order. *)
val samples : t -> sample list

val last : t -> sample option

(** The rounds where [Φ] was defined, as [(round, phi)] pairs. *)
val phi_series : t -> (int * int) list

val registry : t -> Metrics.t

(** [{"meta": {..}, "rounds": [..], "summary": {..}, "metrics": {..}}],
    plus a ["recoveries"] array when any recovery record was appended;
    [meta] carries caller-supplied run identification (algo, seed,
    ...). *)
val to_json : ?meta:(string * Metrics.Json.t) list -> t -> Metrics.Json.t

(** One line per sample: [round,enabled,writes,writes_total,max_bits,
    total_bits,phi] (phi empty when undefined). *)
val to_csv : t -> string

val write_json : ?meta:(string * Metrics.Json.t) list -> string -> t -> unit
val write_csv : string -> t -> unit

(** A short human-readable summary (rounds, writes, bits, phi range). *)
val pp : Format.formatter -> t -> unit
