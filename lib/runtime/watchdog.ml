type verdict =
  | Converged
  | Livelock of { round : int; period : int }
  | Stalled of { round : int; window : int }
  | Exhausted of { rounds : int; steps : int }

let verdict_name = function
  | Converged -> "converged"
  | Livelock _ -> "livelock"
  | Stalled _ -> "stalled"
  | Exhausted _ -> "exhausted"

let pp_verdict ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Livelock { round; period } ->
      Format.fprintf ppf "livelock (configuration cycle of period %d at round %d)" period
        round
  | Stalled { round; window } ->
      Format.fprintf ppf "stalled (no new potential minimum for %d rounds at round %d)"
        window round
  | Exhausted { rounds; steps } ->
      Format.fprintf ppf "exhausted (limits hit at %d rounds / %d steps, no pattern)"
        rounds steps

type t = {
  stall_window : int;
  cycle_repeats : int;
  (* hash -> (occurrences, index of last occurrence); separate tables so
     the per-write probe cannot double-count the round-boundary
     configuration (the boundary config IS the config after the round's
     last write). *)
  round_seen : (int, int * int) Hashtbl.t;
  step_seen : (int, int * int) Hashtbl.t;
  mutable step_index : int;
  mutable best_phi : int option;
  mutable best_phi_round : int;
  mutable last_round : int;
  mutable last_steps : int;
  mutable tripped : verdict option;
}

let create ?(stall_window = 64) ?(cycle_repeats = 3) () =
  {
    stall_window;
    cycle_repeats;
    round_seen = Hashtbl.create 256;
    step_seen = Hashtbl.create 1024;
    step_index = 0;
    best_phi = None;
    best_phi_round = 0;
    last_round = 0;
    last_steps = 0;
    tripped = None;
  }

let reset t =
  Hashtbl.reset t.round_seen;
  Hashtbl.reset t.step_seen;
  t.best_phi <- None;
  t.best_phi_round <- t.last_round;
  t.tripped <- None

let trip t v = if t.tripped = None then t.tripped <- Some v

let cycle tbl ~repeats ~index ~hash =
  let count, last = match Hashtbl.find_opt tbl hash with Some c -> c | None -> (0, index) in
  Hashtbl.replace tbl hash (count + 1, index);
  if count + 1 >= repeats then Some (max 1 (index - last)) else None

let observe_round t ~round ~hash ~phi =
  t.last_round <- round;
  (match cycle t.round_seen ~repeats:t.cycle_repeats ~index:round ~hash with
  | Some period -> trip t (Livelock { round; period })
  | None -> ());
  match phi with
  | Some p ->
      (match t.best_phi with
      | None ->
          t.best_phi <- Some p;
          t.best_phi_round <- round
      | Some best when p < best ->
          t.best_phi <- Some p;
          t.best_phi_round <- round
      | Some _ -> ());
      if t.best_phi <> None && round - t.best_phi_round >= t.stall_window then
        trip t (Stalled { round; window = t.stall_window })
  | None -> ()

let observe_step t ~hash =
  t.step_index <- t.step_index + 1;
  t.last_steps <- t.step_index;
  match cycle t.step_seen ~repeats:t.cycle_repeats ~index:t.step_index ~hash with
  | Some period -> trip t (Livelock { round = t.last_round; period })
  | None -> ()

let tripped t = t.tripped

let verdict t ~silent =
  if silent then Converged
  else
    match t.tripped with
    | Some v -> v
    | None -> Exhausted { rounds = t.last_round; steps = t.step_index }

(* A protocol-agnostic configuration fingerprint. [Hashtbl.hash]'s
   default traversal limits would make distinct deep registers collide
   systematically, so every register is hashed with generous limits and
   the per-node hashes are mixed positionally. Collisions only matter at
   [cycle_repeats] simultaneous false positives — acceptable for a
   watchdog. *)
let config_hash states =
  let h = ref 0x9E3779B9 in
  Array.iter
    (fun s -> h := (!h * 31) + Hashtbl.hash_param 64 256 s)
    states;
  !h land max_int
