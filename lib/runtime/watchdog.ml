type verdict =
  | Converged
  | Livelock of { round : int; period : int }
  | Stalled of { round : int; window : int }
  | Exhausted of { rounds : int; steps : int }

let verdict_name = function
  | Converged -> "converged"
  | Livelock _ -> "livelock"
  | Stalled _ -> "stalled"
  | Exhausted _ -> "exhausted"

let pp_verdict ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Livelock { round; period } ->
      Format.fprintf ppf "livelock (configuration cycle of period %d at round %d)" period
        round
  | Stalled { round; window } ->
      Format.fprintf ppf "stalled (no new potential minimum for %d rounds at round %d)"
        window round
  | Exhausted { rounds; steps } ->
      Format.fprintf ppf "exhausted (limits hit at %d rounds / %d steps, no pattern)"
        rounds steps

(* One bucket per distinct configuration observed under a hash. [bsnap]
   is the serialized configuration when a verifier ([?snap]) is in use,
   [None] when counting by hash alone (or for a first occurrence that
   predates verification). *)
type bucket = { mutable bsnap : string option; mutable bcount : int; mutable blast : int }

type t = {
  stall_window : int;
  cycle_repeats : int;
  (* hash -> occurrence buckets; separate tables so
     the per-write probe cannot double-count the round-boundary
     configuration (the boundary config IS the config after the round's
     last write). *)
  round_seen : (int, bucket list) Hashtbl.t;
  step_seen : (int, bucket list) Hashtbl.t;
  mutable step_index : int;
  mutable best_phi : int option;
  mutable best_phi_round : int;
  mutable last_round : int;
  mutable last_steps : int;
  mutable tripped : verdict option;
}

let create ?(stall_window = 64) ?(cycle_repeats = 3) () =
  {
    stall_window;
    cycle_repeats;
    round_seen = Hashtbl.create 256;
    step_seen = Hashtbl.create 1024;
    step_index = 0;
    best_phi = None;
    best_phi_round = 0;
    last_round = 0;
    last_steps = 0;
    tripped = None;
  }

let reset t =
  Hashtbl.reset t.round_seen;
  Hashtbl.reset t.step_seen;
  t.best_phi <- None;
  t.best_phi_round <- t.last_round;
  t.tripped <- None

let trip t v = if t.tripped = None then t.tripped <- Some v

let bump b ~repeats ~index =
  b.bcount <- b.bcount + 1;
  let last = b.blast in
  b.blast <- index;
  if b.bcount >= repeats then Some (max 1 (index - last)) else None

let cycle tbl ~repeats ~index ~hash ~snap =
  match Hashtbl.find_opt tbl hash with
  | None | Some [] ->
      (* First sight of this hash: no snapshot taken — the verifier runs
         only on recurrence, so unique configurations (the common case)
         never pay for serialization. *)
      Hashtbl.replace tbl hash [ { bsnap = None; bcount = 1; blast = index } ];
      None
  | Some buckets -> (
      match snap with
      | None ->
          (* No verifier: hash equality counts as configuration
             equality (single bucket per hash, the pre-verifier
             behavior). *)
          bump (List.hd buckets) ~repeats ~index
      | Some f -> (
          let sn = f () in
          let rec find = function
            | [] -> None
            | b :: rest -> (
                match b.bsnap with
                | Some s when String.equal s sn -> Some b
                | Some _ -> find rest
                | None ->
                    (* The first occurrence predates verification; credit
                       it to this snapshot. At most one benign collision
                       can inflate a bucket by one — within what the
                       default [cycle_repeats = 3] tolerates. *)
                    b.bsnap <- Some sn;
                    Some b)
          in
          match find buckets with
          | Some b -> bump b ~repeats ~index
          | None ->
              Hashtbl.replace tbl hash
                ({ bsnap = Some sn; bcount = 1; blast = index } :: buckets);
              None))

let observe_round ?snap t ~round ~hash ~phi =
  t.last_round <- round;
  (match cycle t.round_seen ~repeats:t.cycle_repeats ~index:round ~hash ~snap with
  | Some period -> trip t (Livelock { round; period })
  | None -> ());
  match phi with
  | Some p ->
      (match t.best_phi with
      | None ->
          t.best_phi <- Some p;
          t.best_phi_round <- round
      | Some best when p < best ->
          t.best_phi <- Some p;
          t.best_phi_round <- round
      | Some _ -> ());
      if t.best_phi <> None && round - t.best_phi_round >= t.stall_window then
        trip t (Stalled { round; window = t.stall_window })
  | None -> ()

let observe_step ?snap t ~hash =
  t.step_index <- t.step_index + 1;
  t.last_steps <- t.step_index;
  match cycle t.step_seen ~repeats:t.cycle_repeats ~index:t.step_index ~hash ~snap with
  | Some period -> trip t (Livelock { round = t.last_round; period })
  | None -> ()

let tripped t = t.tripped

let verdict t ~silent =
  if silent then Converged
  else
    match t.tripped with
    | Some v -> v
    | None -> Exhausted { rounds = t.last_round; steps = t.step_index }

(* A protocol-agnostic configuration fingerprint. [Hashtbl.hash]'s
   default traversal limits would make distinct deep registers collide
   systematically, so every register is hashed with generous limits and
   the per-node hashes are mixed positionally. Collisions only matter at
   [cycle_repeats] simultaneous false positives — acceptable for a
   watchdog. *)
let config_hash states =
  let h = ref 0x9E3779B9 in
  Array.iter
    (fun s -> h := (!h * 31) + Hashtbl.hash_param 64 256 s)
    states;
  !h land max_int
