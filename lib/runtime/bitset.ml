(* 32 bits per word: [v lsr 5] / [v land 31] keep every shift in range
   of OCaml's 63-bit native int on 64-bit platforms. *)

type t = { words : int array; capacity : int; mutable card : int }

let words_for n = (n + 31) lsr 5

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (max 1 (words_for n)) 0; capacity = n; card = 0 }

let capacity t = t.capacity
let cardinal t = t.card
let is_empty t = t.card = 0

let mem t v = t.words.(v lsr 5) land (1 lsl (v land 31)) <> 0

let add t v =
  let w = v lsr 5 and b = 1 lsl (v land 31) in
  let old = t.words.(w) in
  if old land b = 0 then begin
    t.words.(w) <- old lor b;
    t.card <- t.card + 1
  end

let remove t v =
  let w = v lsr 5 and b = 1 lsl (v land 31) in
  let old = t.words.(w) in
  if old land b <> 0 then begin
    t.words.(w) <- old land lnot b;
    t.card <- t.card - 1
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let iter f t =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let bits = ref words.(w) in
    while !bits <> 0 do
      let b = !bits land - !bits in
      (* lowest set bit *)
      let rec log2 i x = if x = 1 then i else log2 (i + 1) (x lsr 1) in
      f ((w lsl 5) lor log2 0 b);
      bits := !bits land lnot b
    done
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let nth t k =
  if k < 0 || k >= t.card then invalid_arg "Bitset.nth";
  let remaining = ref k in
  let result = ref (-1) in
  (try
     iter
       (fun v ->
         if !remaining = 0 then begin
           result := v;
           raise Exit
         end
         else decr remaining)
       t
   with Exit -> ());
  !result

let copy_from ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.copy_from";
  Array.blit src.words 0 dst.words 0 (Array.length src.words);
  dst.card <- src.card

let inter_inplace t other =
  if t.capacity <> other.capacity then invalid_arg "Bitset.inter_inplace";
  let card = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    let x = t.words.(w) land other.words.(w) in
    t.words.(w) <- x;
    card := !card + popcount x
  done;
  t.card <- !card
