module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape_to buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
        else Buffer.add_string buf "null"
    | Str s -> escape_to buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_to buf k;
            Buffer.add_char buf ':';
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  let to_channel oc j =
    output_string oc (to_string j);
    output_char oc '\n'

  exception Bad

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise Bad in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c = if peek () = c then advance () else raise Bad in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char buf '"'; advance ()
            | '\\' -> Buffer.add_char buf '\\'; advance ()
            | '/' -> Buffer.add_char buf '/'; advance ()
            | 'n' -> Buffer.add_char buf '\n'; advance ()
            | 'r' -> Buffer.add_char buf '\r'; advance ()
            | 't' -> Buffer.add_char buf '\t'; advance ()
            | 'b' -> Buffer.add_char buf '\b'; advance ()
            | 'f' -> Buffer.add_char buf '\012'; advance ()
            | 'u' ->
                advance ();
                (* Exactly four hex digits — [int_of_string "0x…"] would
                   also accept underscores. *)
                let hex4 () =
                  if !pos + 4 > n then raise Bad;
                  let v = ref 0 in
                  for i = !pos to !pos + 3 do
                    let d =
                      match s.[i] with
                      | '0' .. '9' as c -> Char.code c - Char.code '0'
                      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                      | _ -> raise Bad
                    in
                    v := (!v * 16) + d
                  done;
                  pos := !pos + 4;
                  !v
                in
                let code = hex4 () in
                let code =
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    (* High surrogate: a low surrogate escape must follow. *)
                    if !pos + 2 > n || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u' then
                      raise Bad;
                    pos := !pos + 2;
                    let low = hex4 () in
                    if low < 0xDC00 || low > 0xDFFF then raise Bad;
                    0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                  end
                  else if code >= 0xDC00 && code <= 0xDFFF then raise Bad
                  else code
                in
                Buffer.add_utf_8_uchar buf (Uchar.of_int code)
            | _ -> raise Bad);
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> raise Bad)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '"' -> Str (parse_string ())
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then begin advance (); List [] end
          else begin
            let acc = ref [ parse_value () ] in
            skip_ws ();
            while peek () = ',' do
              advance ();
              acc := parse_value () :: !acc;
              skip_ws ()
            done;
            expect ']';
            List (List.rev !acc)
          end
      | '{' ->
          advance ();
          skip_ws ();
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          if peek () = '}' then begin advance (); Obj [] end
          else begin
            let acc = ref [ field () ] in
            skip_ws ();
            while peek () = ',' do
              advance ();
              acc := field () :: !acc;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !acc)
          end
      | _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then raise Bad;
      v
    with
    | v -> Some v
    | exception Bad -> None

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)

type counter = { mutable c : int }
type gauge = { mutable g : int; mutable g_set : bool }

(* 64 log-scale buckets: index 0 = values <= 0; index i >= 1 = values
   with exactly i significant bits, i.e. [2^(i-1), 2^i - 1]. max_int has
   62 bits, so no bucket bound ever overflows. *)
type histogram = {
  mutable count : int;
  mutable sum : int;
  mutable mn : int;
  mutable mx : int;
  bkts : int array;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { tbl : (string, instrument) Hashtbl.t; mutable order : string list (* reverse *) }

let create () = { tbl = Hashtbl.create 16; order = [] }

let register t name make wrap unwrap kind =
  match Hashtbl.find_opt t.tbl name with
  | Some inst -> (
      match unwrap inst with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a different kind (%s)" name
               kind))
  | None ->
      let x = make () in
      Hashtbl.replace t.tbl name (wrap x);
      t.order <- name :: t.order;
      x

let counter t name =
  register t name
    (fun () -> { c = 0 })
    (fun c -> C c)
    (function C c -> Some c | _ -> None)
    "counter"

let gauge t name =
  register t name
    (fun () -> { g = 0; g_set = false })
    (fun g -> G g)
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram t name =
  register t name
    (fun () -> { count = 0; sum = 0; mn = 0; mx = 0; bkts = Array.make 64 0 })
    (fun h -> H h)
    (function H h -> Some h | _ -> None)
    "histogram"

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let set g v =
  g.g <- v;
  g.g_set <- true

let gauge_value g = if g.g_set then Some g.g else None

let bucket_index v =
  if v <= 0 then 0
  else begin
    let bits = ref 0 in
    let x = ref v in
    while !x <> 0 do
      bits := !bits + 1;
      x := !x lsr 1
    done;
    !bits
  end

let bucket_lower i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  if h.count = 0 then begin
    h.mn <- v;
    h.mx <- v
  end
  else begin
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v
  end;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  let i = bucket_index v in
  h.bkts.(i) <- h.bkts.(i) + 1

let hist_count h = h.count
let hist_sum h = h.sum
let hist_min h = if h.count = 0 then None else Some h.mn
let hist_max h = if h.count = 0 then None else Some h.mx

let buckets h =
  let acc = ref [] in
  for i = Array.length h.bkts - 1 downto 0 do
    if h.bkts.(i) > 0 then acc := (bucket_lower i, h.bkts.(i)) :: !acc
  done;
  !acc

let fold_instruments t f =
  List.fold_left (fun acc name -> f acc name (Hashtbl.find t.tbl name)) []
    (List.rev t.order)
  |> List.rev

let to_json t =
  let pick f = fold_instruments t (fun acc name i -> match f name i with Some x -> x :: acc | None -> acc) in
  let counters = pick (fun name -> function C c -> Some (name, Json.Int c.c) | _ -> None) in
  let gauges =
    pick (fun name -> function
      | G g -> Some (name, if g.g_set then Json.Int g.g else Json.Null)
      | _ -> None)
  in
  let histograms =
    pick (fun name -> function
      | H h ->
          let bs =
            List.map
              (fun (ge, count) -> Json.Obj [ ("ge", Json.Int ge); ("count", Json.Int count) ])
              (buckets h)
          in
          Some
            ( name,
              Json.Obj
                [
                  ("count", Json.Int h.count);
                  ("sum", Json.Int h.sum);
                  ("min", match hist_min h with Some v -> Json.Int v | None -> Json.Null);
                  ("max", match hist_max h with Some v -> Json.Int v | None -> Json.Null);
                  ("buckets", Json.List bs);
                ] )
      | _ -> None)
  in
  Json.Obj
    [ ("counters", Json.Obj counters); ("gauges", Json.Obj gauges); ("histograms", Json.Obj histograms) ]

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | C c -> Format.fprintf ppf "%s: %d@." name c.c
      | G g ->
          if g.g_set then Format.fprintf ppf "%s: %d@." name g.g
          else Format.fprintf ppf "%s: (unset)@." name
      | H h ->
          Format.fprintf ppf "%s: count=%d sum=%d%s@." name h.count h.sum
            (if h.count = 0 then "" else Printf.sprintf " min=%d max=%d" h.mn h.mx))
    (List.rev t.order)
