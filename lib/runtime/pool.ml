(* Work-distributing domain pool. See pool.mli for the contract.

   One batch at a time: [map] publishes a batch (task array + atomic
   claim cursor + atomic completion count) under a generation counter,
   wakes the workers, and joins in as the last worker itself. Tasks
   write into per-index result slots, so no ordering information ever
   depends on which domain ran what; the submitter reads the slots back
   in index order. A task never lets an exception escape — it parks
   [(exn, backtrace)] in its slot and the submitter re-raises the first
   failure in index order after the whole batch has drained (matching
   what sequential [List.map] would have raised first). *)

type batch = {
  tasks : (unit -> unit) array;  (* task [i] fills result slot [i] *)
  cursor : int Atomic.t;  (* next unclaimed index *)
  left : int Atomic.t;  (* tasks not yet completed *)
}

type t = {
  n_jobs : int;
  lock : Mutex.t;
  work_ready : Condition.t;  (* workers sleep here between batches *)
  batch_done : Condition.t;  (* the submitter sleeps here *)
  mutable generation : int;  (* bumped per published batch *)
  mutable batch : batch option;
  mutable busy : bool;  (* a [map] is in flight *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* The nested-use guard: set while a domain is running pool tasks (the
   workers always; the submitter while it helps drain its own batch), so
   a task that itself calls [map] degrades to sequential [List.map]
   instead of deadlocking the fixed worker set. *)
let inside_pool = Domain.DLS.new_key (fun () -> ref false)
let entered () = Domain.DLS.get inside_pool

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let drain t b =
  let len = Array.length b.tasks in
  let flag = entered () in
  let outer = !flag in
  flag := true;
  let rec go () =
    let i = Atomic.fetch_and_add b.cursor 1 in
    if i < len then begin
      b.tasks.(i) ();
      (* Completion count, not cursor position, decides doneness: a
         claimed-but-running task elsewhere must keep the submitter
         waiting. *)
      if Atomic.fetch_and_add b.left (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast t.batch_done;
        Mutex.unlock t.lock
      end;
      go ()
    end
  in
  go ();
  flag := outer

let rec worker_loop t last_gen =
  Mutex.lock t.lock;
  while (not t.closed) && t.generation = last_gen do
    Condition.wait t.work_ready t.lock
  done;
  if t.closed then Mutex.unlock t.lock
  else begin
    let gen = t.generation in
    let b = t.batch in
    Mutex.unlock t.lock;
    (* [b] may already be drained or even retired ([None]) if this worker
       woke late; [drain] then claims nothing and we just wait for the
       next generation. *)
    (match b with Some b -> drain t b | None -> ());
    worker_loop t gen
  end

let create ?jobs () =
  let n_jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      n_jobs;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      generation = 0;
      batch = None;
      busy = false;
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (n_jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            (entered ()) := true;
            worker_loop t 0));
  t

let jobs t = t.n_jobs

let map (type a b) t (f : a -> b) (xs : a list) : b list =
  let sequential () = List.map f xs in
  match xs with
  | [] | [ _ ] ->
      if t.closed then invalid_arg "Pool.map: pool is shut down";
      sequential ()
  | _ ->
      if t.closed then invalid_arg "Pool.map: pool is shut down";
      if t.n_jobs = 1 || !(entered ()) then sequential ()
      else begin
        let items = Array.of_list xs in
        let n = Array.length items in
        let slots : (b, exn * Printexc.raw_backtrace) result option array =
          Array.make n None
        in
        let tasks =
          Array.init n (fun i () ->
              slots.(i) <-
                Some
                  (match f items.(i) with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ())))
        in
        let b = { tasks; cursor = Atomic.make 0; left = Atomic.make n } in
        Mutex.lock t.lock;
        if t.closed then begin
          Mutex.unlock t.lock;
          invalid_arg "Pool.map: pool is shut down"
        end;
        if t.busy then begin
          (* Another domain's [map] holds the workers; don't interleave
             two batches on one pool — degrade to sequential. *)
          Mutex.unlock t.lock;
          sequential ()
        end
        else begin
          t.busy <- true;
          t.batch <- Some b;
          t.generation <- t.generation + 1;
          Condition.broadcast t.work_ready;
          Mutex.unlock t.lock;
          drain t b;
          Mutex.lock t.lock;
          while Atomic.get b.left > 0 do
            Condition.wait t.batch_done t.lock
          done;
          t.batch <- None;
          t.busy <- false;
          Mutex.unlock t.lock;
          (* First failure in index order wins, as in sequential map. *)
          Array.iter
            (function
              | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
              | Some (Ok _) | None -> ())
            slots;
          List.init n (fun i ->
              match slots.(i) with Some (Ok v) -> v | _ -> assert false)
        end
      end

let shutdown t =
  Mutex.lock t.lock;
  if t.closed then Mutex.unlock t.lock
  else begin
    t.closed <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
