(** A node's local view in the state model (Section II-A of the paper).

    In one atomic step a node reads its own register and the registers of
    its neighbors, computes, and writes its register. A [view] is exactly
    the information available to that computation:

    - the node's own (incorruptible) identity and incident edge weights,
    - the total number of nodes [n] (the standard "known bound on n"
      assumption used to kill fake-root chains; see DESIGN.md),
    - its own register contents, and
    - the register contents of each neighbor.

    Protocols must not reach beyond a view; the engine constructs views and
    never exposes the global configuration to [step].

    The [self] field is mutable (and the [nbrs] array is refreshed in
    place) so the engine can keep one scratch view per node alive for a
    whole run instead of allocating a fresh record and neighbor array on
    every guard probe; protocols must treat a view as read-only and must
    not retain it beyond the [step] call that received it. *)

type 'state t = {
  id : int;  (** this node's identity *)
  n : int;  (** number of nodes in the network (upper bound) *)
  degree : int;  (** number of incident edges *)
  nbr_ids : int array;  (** neighbor identities, increasing *)
  nbr_weights : int array;  (** weight of the edge to each neighbor *)
  mutable self : 'state;  (** own register *)
  nbrs : 'state array;  (** neighbors' registers, aligned with [nbr_ids] *)
}

(** [index v u] is the position of neighbor [u] in [v.nbr_ids].
    @raise Not_found if [u] is not a neighbor. *)
val index : 'state t -> int -> int

(** [state_of v u] is the register of neighbor [u].
    @raise Not_found if [u] is not a neighbor. *)
val state_of : 'state t -> int -> 'state

(** [weight_to v u] is the weight of the edge to neighbor [u].
    @raise Not_found if [u] is not a neighbor. *)
val weight_to : 'state t -> int -> int

(** [is_neighbor v u]. *)
val is_neighbor : 'state t -> int -> bool

(** [fold f init v] folds [f acc nbr_id weight nbr_state] over neighbors. *)
val fold : ('a -> int -> int -> 'state -> 'a) -> 'a -> 'state t -> 'a

(** [exists p v] — does some neighbor (id, weight, state) satisfy [p]? *)
val exists : (int -> int -> 'state -> bool) -> 'state t -> bool

(** [for_all p v]. *)
val for_all : (int -> int -> 'state -> bool) -> 'state t -> bool
