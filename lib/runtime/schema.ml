module Json = Metrics.Json

let ( let* ) = Result.bind

let field obj k =
  match Json.member k obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" k)

let as_int k = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S is not an int" k)

let as_str k = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" k)

let as_bool k = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S is not a bool" k)

let as_list k = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S is not a list" k)

let int_field obj k =
  let* v = field obj k in
  as_int k v

let str_field obj k =
  let* v = field obj k in
  as_str k v

let bool_field obj k =
  let* v = field obj k in
  as_bool k v

let opt_int_field obj k =
  match Json.member k obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S is not an int or null" k)

let opt_str_field obj k =
  match Json.member k obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S is not a string or null" k)

let ints_field obj k =
  let* v = field obj k in
  let* l = as_list k v in
  List.fold_left
    (fun acc x ->
      let* () = acc in
      match x with
      | Json.Int _ -> Ok ()
      | _ -> Error (Printf.sprintf "field %S contains a non-int" k))
    (Ok ()) l

let require_int obj k =
  let* (_ : int) = int_field obj k in
  Ok ()

let require_str obj k =
  let* (_ : string) = str_field obj k in
  Ok ()

let require_bool obj k =
  let* (_ : bool) = bool_field obj k in
  Ok ()

let all checks = List.fold_left (fun acc c -> Result.bind acc (fun () -> c)) (Ok ()) checks

let indexed what l check =
  let rec go i = function
    | [] -> Ok i
    | x :: tl -> (
        match check x with
        | Ok () -> go (i + 1) tl
        | Error e -> Error (Printf.sprintf "%s %d: %s" what i e))
  in
  go 0 l

(* ------------------------------------------------------------------ *)

(* Bench records carry an optional "tier": "std" for the pinned
   repro experiments, "big" for the scaling tier (see SCALING.md).
   Absent means "std" — artifacts from before the tier existed still
   validate. *)
let tiers = [ "std"; "big" ]

let validate_bench j =
  let* () = require_int j "seed" in
  let* exps = field j "experiments" in
  let* exps = as_list "experiments" exps in
  indexed "experiment" exps (fun e ->
      let* () =
        all
          [
            require_str e "exp";
            require_str e "algo";
            require_int e "n";
            require_int e "rounds";
            require_int e "steps";
            require_int e "max_bits";
            require_int e "wall_ns";
          ]
      in
      let* tier = opt_str_field e "tier" in
      match tier with
      | None -> Ok ()
      | Some t ->
          if List.mem t tiers then Ok ()
          else Error (Printf.sprintf "unknown tier %S" t))

let verdicts = [ "converged"; "livelock"; "stalled"; "exhausted" ]

let validate_injection inj =
  all
    [
      require_int inj "round";
      Result.map (fun _ -> ()) (ints_field inj "nodes");
      Result.map (fun _ -> ()) (opt_int_field inj "gap");
      Result.map (fun _ -> ()) (opt_int_field inj "radius");
      require_int inj "touched";
    ]

let validate_cell c =
  let* () =
    all
      [
        require_str c "algo";
        require_str c "plan";
        require_str c "sched";
        require_int c "seed";
        require_int c "n";
        require_int c "m";
        require_int c "base_rounds";
        require_int c "rounds";
        require_int c "steps";
        require_bool c "silent";
        require_bool c "legal";
        require_bool c "recovered";
        require_int c "max_bits";
      ]
  in
  let* v = str_field c "verdict" in
  let* () =
    if List.mem v verdicts then Ok ()
    else Error (Printf.sprintf "unknown verdict %S" v)
  in
  let* injs = field c "injections" in
  let* injs = as_list "injections" injs in
  Result.map (fun _ -> ()) (indexed "injection" injs validate_injection)

let validate_chaos j =
  let* meta = field j "meta" in
  let* () =
    all
      [
        require_str meta "experiment";
        require_str meta "graph";
        require_int meta "n";
        require_int meta "seeds";
        require_int meta "seed_base";
        require_int meta "max_rounds";
        require_int meta "max_injections";
      ]
  in
  let* summary = field j "summary" in
  let* () =
    all
      [ require_int summary "cells"; require_int summary "recovered"; require_int summary "failed" ]
  in
  let* cells = field j "cells" in
  let* cells = as_list "cells" cells in
  indexed "cell" cells validate_cell

(* ------------------------------------------------------------------ *)

(* Service-mode artifact (SERVICE_repro.json): one cell per
   builder x churn trace x daemon x seed, each carrying the per-event
   recovery records and degradation counters. *)

let validate_service_event ev =
  all
    [
      require_str ev "op";
      require_int ev "round";
      Result.map (fun _ -> ()) (opt_int_field ev "gap");
      require_int ev "steps";
      require_int ev "queries";
      require_int ev "stale";
      require_int ev "violations";
      require_int ev "retries";
      require_int ev "escalations";
      require_int ev "restarts";
      require_int ev "crashes";
      require_bool ev "recovered";
    ]

let validate_service_cell c =
  let* () =
    all
      [
        require_str c "algo";
        require_str c "trace";
        require_str c "sched";
        require_str c "fallback";
        require_int c "seed";
        require_int c "n0";
        require_int c "m0";
        require_int c "n_final";
        require_int c "m_final";
        require_int c "base_rounds";
        require_bool c "recovered";
        require_int c "max_bits";
      ]
  in
  (* Serve cells carry the bench "tier" ("std" churn matrix / "big"
     serve bench) and, on the big tier, the measured snapshot-read
     throughput — both optional so pre-tier artifacts still validate. *)
  let* tier = opt_str_field c "tier" in
  let* () =
    match tier with
    | None -> Ok ()
    | Some t ->
        if List.mem t tiers then Ok ()
        else Error (Printf.sprintf "unknown tier %S" t)
  in
  let* (_ : int option) = opt_int_field c "qps" in
  let* v = str_field c "verdict" in
  let* () =
    if List.mem v verdicts then Ok ()
    else Error (Printf.sprintf "unknown verdict %S" v)
  in
  let* totals = field c "totals" in
  let* () =
    all
      [
        require_int totals "queries";
        require_int totals "stale";
        require_int totals "violations";
        require_int totals "retries";
        require_int totals "escalations";
        require_int totals "restarts";
        require_int totals "crashes";
      ]
  in
  let* evs = field c "events" in
  let* evs = as_list "events" evs in
  Result.map (fun _ -> ()) (indexed "event" evs validate_service_event)

let validate_service j =
  let* meta = field j "meta" in
  let* () =
    all
      [
        require_str meta "experiment";
        require_str meta "graph";
        require_int meta "n";
        require_int meta "seeds";
        require_int meta "seed_base";
        require_int meta "retry_budget";
        require_int meta "max_retries";
        require_int meta "queries_per_round";
      ]
  in
  let* traces = field meta "traces" in
  let* traces = as_list "traces" traces in
  let* () =
    List.fold_left
      (fun acc t ->
        let* () = acc in
        match t with
        | Json.Str _ -> Ok ()
        | _ -> Error "field \"traces\" contains a non-string")
      (Ok ()) traces
  in
  let* summary = field j "summary" in
  let* () =
    all
      [
        require_int summary "cells";
        require_int summary "recovered";
        require_int summary "failed";
        require_int summary "events";
        require_int summary "escalations";
        require_int summary "restarts";
      ]
  in
  let* cells = field j "cells" in
  let* cells = as_list "cells" cells in
  indexed "cell" cells validate_service_cell

(* ------------------------------------------------------------------ *)

let validate_trace contents =
  match Explain.parse contents with
  | Error e -> Error e
  | Ok t ->
      (* Re-walk in line (= id) order: ids strictly increase and every
         cause names an already-seen event. *)
      let tagged =
        List.merge
          (fun a b -> compare (fst a) (fst b))
          (List.map (fun (f : Explain.fault) -> (f.id, [])) t.Explain.faults)
          (List.map (fun (m : Explain.move) -> (m.id, m.causes)) t.Explain.moves)
      in
      let rec go last count = function
        | [] -> Ok count
        | (id, causes) :: tl ->
            if id <= last then Error (Printf.sprintf "event id %d not increasing" id)
            else if List.exists (fun c -> c >= id || c < 0) causes then
              Error (Printf.sprintf "event %d has a cause that does not precede it" id)
            else go id (count + 1) tl
      in
      let n_rounds = List.length t.Explain.rounds in
      Result.map (fun c -> c + n_rounds) (go (-1) 0 tagged)

let sniff contents =
  let first_line =
    match String.index_opt contents '\n' with
    | Some i -> String.sub contents 0 i
    | None -> contents
  in
  let categorize j =
    if Json.member "ev" j <> None then Some `Trace
    else if Json.member "experiments" j <> None then Some `Bench
    else if Json.member "cells" j <> None then
      (* Chaos and service artifacts both lead with cells; the service
         meta header is the one that names its churn traces. *)
      match Json.member "meta" j with
      | Some meta when Json.member "traces" meta <> None -> Some `Service
      | _ -> Some `Chaos
    else None
  in
  match Json.of_string (String.trim first_line) with
  | Some j -> categorize j
  | None -> Option.bind (Json.of_string (String.trim contents)) categorize
