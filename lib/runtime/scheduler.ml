type central =
  | Random_daemon
  | Round_robin
  | Max_id
  | Min_id
  | Lifo_adversary
  | Greedy_max_phi
  | Greedy_min_phi

type t = Synchronous | Central of central | Distributed of float

let all =
  [
    ("synchronous", Synchronous);
    ("random", Central Random_daemon);
    ("round-robin", Central Round_robin);
    ("max-id", Central Max_id);
    ("min-id", Central Min_id);
    ("adversary", Central Lifo_adversary);
    ("distributed", Distributed 0.5);
  ]

let extended =
  all
  @ [
      ("greedy-max", Central Greedy_max_phi);
      ("greedy-min", Central Greedy_min_phi);
    ]

let pp ppf t =
  let name =
    match List.find_opt (fun (_, s) -> s = t) extended with
    | Some (n, _) -> n
    | None -> ( match t with Distributed p -> Printf.sprintf "distributed(%.2f)" p | _ -> "?")
  in
  Format.pp_print_string ppf name

let by_name s = List.assoc_opt s extended
