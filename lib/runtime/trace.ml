type event = { step : int; round : int; node : int; state : string }

type t = {
  capacity : int;
  events : event Queue.t;
  mutable steps : int;
  mutable round : int;
}

let create ?(capacity = 1000) () =
  { capacity; events = Queue.create (); steps = 0; round = 0 }

let on_step t pp node states =
  t.steps <- t.steps + 1;
  if Queue.length t.events >= t.capacity then ignore (Queue.pop t.events);
  Queue.add
    {
      step = t.steps;
      round = t.round;
      node;
      state = Format.asprintf "%a" pp states.(node);
    }
    t.events

let on_round t round _states = t.round <- round
let events t = List.of_seq (Queue.to_seq t.events)
let total t = t.steps
let capacity t = t.capacity
let retained t = Queue.length t.events

let pp ppf t =
  let k = retained t in
  if t.steps > k then Format.fprintf ppf "[showing last %d of %d events]@." k t.steps;
  Queue.iter
    (fun e -> Format.fprintf ppf "step %6d round %5d node %3d: %s@." e.step e.round e.node e.state)
    t.events

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "step,round,node,state\n";
  Queue.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s\n" e.step e.round e.node (csv_escape e.state)))
    t.events;
  Buffer.contents buf

let activity t =
  let tbl = Hashtbl.create 16 in
  Queue.iter
    (fun e -> Hashtbl.replace tbl e.node (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.node)))
    t.events;
  Hashtbl.fold (fun node count acc -> (node, count) :: acc) tbl [] |> List.sort compare
