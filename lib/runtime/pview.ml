module Graph = Repro_graph.Graph

type t = {
  n : int;
  words : int;
  row : int array;
  col : int array;
  wgt : int array;
  bank : int array array;
  move : int array;
  mutable focus : int;
}

let of_graph g ~bank =
  let words = Array.length bank in
  if words = 0 then invalid_arg "Pview.of_graph: empty bank";
  let n = Graph.n g in
  Array.iter
    (fun lane ->
      if Array.length lane <> n then invalid_arg "Pview.of_graph: lane length <> n")
    bank;
  {
    n;
    words;
    row = Graph.csr_row g;
    col = Graph.csr_col g;
    wgt = Graph.csr_wgt g;
    bank;
    move = Array.make words 0;
    focus = 0;
  }

let degree t v = t.row.(v + 1) - t.row.(v)

(* Binary search for neighbor [u] in the focused node's CSR segment;
   mirrors View.index. A while loop rather than a local recursive
   function: step implementations call this on the hot path, and a
   local closure would allocate (the packed loop is pinned
   allocation-free). *)
let index t u =
  let lo = ref t.row.(t.focus) and hi = ref t.row.(t.focus + 1) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.col.(mid) in
    if x = u then found := mid else if x < u then lo := mid + 1 else hi := mid
  done;
  if !found < 0 then raise Not_found else !found
