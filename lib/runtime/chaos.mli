(** Chaos episodes: structured mid-run fault campaigns with recovery
    accounting.

    One {e episode} = stabilize a protocol from an adversarial
    configuration, then drive one {!Fault.Plan} against it and measure
    how the protocol absorbs each injection:

    - {b fault gap} — rounds from the injection back to a silent legal
      configuration;
    - {b containment radius} — the farthest (in hops from the injected
      nodes) any node that wrote during the recovery sits, i.e. how far
      the perturbation propagated;
    - {b touched} — how many distinct nodes wrote at all.

    [silence]-timed plans inject once into the stabilized configuration.
    [periodic:R] / [poisson:RATE] plans re-inject {e mid-execution}
    through the engine's [?adversary] round-boundary hook, up to
    [max_injections] total; when the protocol outruns the schedule and
    goes silent in between, the episode re-corrupts the silent
    configuration so the injection budget is always spent. Writes between
    consecutive injections are attributed to the earlier injection; an
    injection whose recovery was cut short by the next one gets
    [gap = None] unless the configuration was already silent and legal
    at that boundary.

    A {!Watchdog} with the given thresholds rides along on every engine
    run (reset at each injection) and aborts livelocked or stalled runs
    early through [?stop_when]; its classification lands in
    [episode.verdict]. *)

type injection = {
  round : int;  (** fault-phase round at which the fault landed *)
  nodes : int list;  (** corrupted nodes, sorted *)
  gap : int option;  (** rounds back to silent+legal; [None] = cut short *)
  radius : int option;
      (** containment radius; [None] when nothing wrote during recovery *)
  touched : int;  (** distinct nodes that wrote during recovery *)
}

val injection_to_recovery : injection -> Telemetry.recovery

module Make (P : Protocol.S) : sig
  module E : module type of Engine.Make (P)

  type episode = {
    plan : Fault.Plan.t;
    base_rounds : int;  (** rounds of the initial stabilization phase *)
    rounds : int;  (** cumulative fault-phase rounds *)
    steps : int;  (** cumulative fault-phase steps *)
    silent : bool;  (** fault phase ended silent *)
    legal : bool;  (** fault phase ended legal *)
    recovered : bool;  (** [silent && legal] after the full campaign *)
    verdict : Watchdog.verdict;
    injections : injection list;  (** chronological *)
    max_bits : int;  (** max register bits over the whole episode *)
  }

  (** [run_episode g sched rng plan] — run one episode. [watch_phi]
      (default [false]) feeds the live [P.potential] to the watchdog's
      stall detector; leave it off for protocols whose potential is
      expensive. A [telemetry] sink, when given, is fed the per-injection
      {!Telemetry.recovery} records. Defaults: [max_steps] = 2_000_000,
      [max_rounds] = 20_000, [stall_window] = 64, [cycle_repeats] = 3,
      [max_injections] = 3 (mid-run timings only; [silence] plans always
      inject exactly once).

      An [events] sink receives the full causal trace of the episode on
      one id-monotone timeline (rounds/steps offset across the engine
      runs a fault phase spans): the stabilization moves, one [Fault]
      event per corrupted register, and every recovery move with its
      enabling causes — silence-timed corruptions happen outside the
      engine, so the harness emits their fault events itself and seeds
      the recovery run's [init_causes] with them (the pre-fault
      configuration being silent makes the attribution exact). Recovery
      moves therefore chain back to the injection that caused them; see
      OBSERVABILITY.md. Neither sink consumes RNG draws: campaign
      results are bit-identical with or without tracing. *)
  val run_episode :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?stall_window:int ->
    ?cycle_repeats:int ->
    ?max_injections:int ->
    ?watch_phi:bool ->
    ?telemetry:Telemetry.t ->
    ?events:Events.t ->
    Repro_graph.Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    Fault.Plan.t ->
    episode
end
