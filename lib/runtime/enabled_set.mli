(** The engine's enabled-node set.

    An intrusive doubly-linked list over two preallocated index arrays
    gives O(1) insertion, removal, membership and cardinality, and
    O(cardinal) iteration without touching the other [n - cardinal]
    nodes — this is what makes the engine's work per register write
    O(Δ) instead of O(n). A {!Bitset.t} mirror of the membership is
    maintained in the same O(1) updates; it serves the daemons whose
    published semantics enumerate candidates in increasing node order
    (the random pick's index, round-robin's cursor scan, and the
    distributed daemon's per-candidate coin flips must all see the same
    ordering the naive engine used), and lets round accounting snapshot
    or intersect the membership word-wise. *)

type t

(** [create n] is an empty set over nodes [0 .. n-1]. *)
val create : int -> t

val mem : t -> int -> bool

(** [add t v] — O(1); a no-op if [v] is present. *)
val add : t -> int -> unit

(** [remove t v] — O(1); a no-op if [v] is absent. *)
val remove : t -> int -> unit

val cardinal : t -> int
val is_empty : t -> bool

(** [iter f t] visits members in {e unspecified} order (insertion order
    of the underlying list) in O(cardinal), allocation-free — the packed
    engine's central picks use it with preallocated scan closures. Use
    {!sorted} when the enumeration order is observable. *)
val iter : (int -> unit) -> t -> unit

(** [fold f init t] folds over members in {e unspecified} order
    (insertion order of the underlying list) in O(cardinal). Use
    {!sorted} when the enumeration order is observable. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Members in increasing node order, O(n/32 + cardinal). *)
val sorted : t -> int list

(** [nth_sorted t k] is the [k]-th smallest member. *)
val nth_sorted : t -> int -> int

(** The bitset mirror of the membership. Callers must treat it as
    read-only; it is exposed so round accounting can intersect against
    it without copying. *)
val bits : t -> Bitset.t

(** [snapshot t dst] overwrites bitset [dst] with the membership. *)
val snapshot : t -> Bitset.t -> unit
