(** Protocols in the state model.

    A protocol is a transition function [δ : S* → S] (Section II-A): given
    a node's {!View.t}, either the node is not enabled ([step] returns
    [None]) or it is enabled and [step] returns the register it would
    write. A protocol is {e silent} on a configuration when no node is
    enabled.

    [size_bits] reports the number of bits a state occupies in a register,
    used by the space-complexity experiments (E1/E2/E9). Implementations
    count the information-theoretic content of their fields (e.g. an id in
    [{1..n^c}] costs [c log n] bits), not the OCaml heap representation. *)

module type S = sig
  type state

  val equal_state : state -> state -> bool
  val pp_state : Format.formatter -> state -> unit

  (** Register size in bits, for space accounting. *)
  val size_bits : int -> state -> int

  (** A canonical "just booted" register; self-stabilization never relies
      on it (tests start from adversarial states too), but experiments
      need a designated start. *)
  val initial : Repro_graph.Graph.t -> int -> state

  (** An arbitrary (adversarial) register for node [id]: used both as a
      worst-case initial configuration and for fault injection. *)
  val random_state : Random.State.t -> Repro_graph.Graph.t -> int -> state

  (** The transition function. [None] = not enabled. Must be a function of
      the view only. *)
  val step : state View.t -> state option

  (** The task's legality predicate on global configurations (the set of
      legal states of Section II-A). Used by tests and experiments, never
      by [step]. *)
  val is_legal : Repro_graph.Graph.t -> state array -> bool

  (** The protocol's global potential [Φ] on a configuration, when it
      defines one (Lemmas 3.1/7.1: [Φ] decreases along legitimate
      executions and is 0 exactly on the stable family). [None] when the
      protocol has no potential or the configuration is outside its
      domain (e.g. the registers do not encode a tree). Observational
      only — consumed by {!Telemetry}, never by [step]. *)
  val potential : Repro_graph.Graph.t -> state array -> int option

  (** [classify old new_] names the rule (or phase) responsible for the
      register transition [old -> new_], e.g. ["reparent"], ["size"],
      ["switch"]. Consumed by the event/profiling layer ({!Events},
      {!Profile}) to break executions down per rule; never by [step].
      The tag is derived from the register {e delta} rather than the
      view so it stays meaningful under the synchronous daemon's
      deferred writes. [None] when the protocol does not classify its
      moves (events are then recorded untagged). *)
  val classify : (state -> state -> string) option
end

(** A register codec: the boxed state as a flat [int array] and back.

    [unpack ~n (pack ~n s)] must equal [s] for every state reachable
    from [initial] or [random_state] on an n-node graph (the round-trip
    is a qcheck property per builder, see test_packed). Variable-length
    states (MST, MDST) use the self-delimiting encodings of {!Codec};
    their codecs ground the bits accounting of PAPER_MAP.md without
    driving an engine. *)
module type CODEC = sig
  type state

  val pack : n:int -> state -> int array
  val unpack : n:int -> int array -> state
end

(** A protocol whose registers fit a {e fixed} number of int lanes, so
    {!Engine_packed} can run it out of a struct-of-arrays bank with zero
    steady-state allocation (see SCALING.md).

    Contract, on top of {!S}:
    - [pack ~n s] always returns exactly [words] ints, and
      [unpack ~n (pack ~n s) = s];
    - [size_bits n s] does not depend on [s] (fixed register width), so
      the packed engine can report [max_bits] without unpacking;
    - [step_packed pv] is extensionally [step]: with the bank holding
      the packed configuration and [pv.focus = v], it returns [false]
      iff [step (view of v)] is [None], and otherwise writes
      [pack (the state step returns)] into [pv.move] and returns [true].
      Like every builder's [step], a returned move is never equal to the
      current register (silence is syntactic). The equivalence suite
      pins [step_packed] against [step] pointwise and whole-run. *)
module type PACKED = sig
  include S

  (** Register width in int lanes. *)
  val words : int

  val pack : n:int -> state -> int array
  val unpack : n:int -> int array -> state
  val step_packed : Pview.t -> bool
end
