(** Protocols in the state model.

    A protocol is a transition function [δ : S* → S] (Section II-A): given
    a node's {!View.t}, either the node is not enabled ([step] returns
    [None]) or it is enabled and [step] returns the register it would
    write. A protocol is {e silent} on a configuration when no node is
    enabled.

    [size_bits] reports the number of bits a state occupies in a register,
    used by the space-complexity experiments (E1/E2/E9). Implementations
    count the information-theoretic content of their fields (e.g. an id in
    [{1..n^c}] costs [c log n] bits), not the OCaml heap representation. *)

module type S = sig
  type state

  val equal_state : state -> state -> bool
  val pp_state : Format.formatter -> state -> unit

  (** Register size in bits, for space accounting. *)
  val size_bits : int -> state -> int

  (** A canonical "just booted" register; self-stabilization never relies
      on it (tests start from adversarial states too), but experiments
      need a designated start. *)
  val initial : Repro_graph.Graph.t -> int -> state

  (** An arbitrary (adversarial) register for node [id]: used both as a
      worst-case initial configuration and for fault injection. *)
  val random_state : Random.State.t -> Repro_graph.Graph.t -> int -> state

  (** The transition function. [None] = not enabled. Must be a function of
      the view only. *)
  val step : state View.t -> state option

  (** The task's legality predicate on global configurations (the set of
      legal states of Section II-A). Used by tests and experiments, never
      by [step]. *)
  val is_legal : Repro_graph.Graph.t -> state array -> bool

  (** The protocol's global potential [Φ] on a configuration, when it
      defines one (Lemmas 3.1/7.1: [Φ] decreases along legitimate
      executions and is 0 exactly on the stable family). [None] when the
      protocol has no potential or the configuration is outside its
      domain (e.g. the registers do not encode a tree). Observational
      only — consumed by {!Telemetry}, never by [step]. *)
  val potential : Repro_graph.Graph.t -> state array -> int option

  (** [classify old new_] names the rule (or phase) responsible for the
      register transition [old -> new_], e.g. ["reparent"], ["size"],
      ["switch"]. Consumed by the event/profiling layer ({!Events},
      {!Profile}) to break executions down per rule; never by [step].
      The tag is derived from the register {e delta} rather than the
      view so it stays meaningful under the synchronous daemon's
      deferred writes. [None] when the protocol does not classify its
      moves (events are then recorded untagged). *)
  val classify : (state -> state -> string) option
end
