module type S = sig
  type state

  val equal_state : state -> state -> bool
  val pp_state : Format.formatter -> state -> unit
  val size_bits : int -> state -> int
  val initial : Repro_graph.Graph.t -> int -> state
  val random_state : Random.State.t -> Repro_graph.Graph.t -> int -> state
  val step : state View.t -> state option
  val is_legal : Repro_graph.Graph.t -> state array -> bool
  val potential : Repro_graph.Graph.t -> state array -> int option
  val classify : (state -> state -> string) option
end

module type CODEC = sig
  type state

  val pack : n:int -> state -> int array
  val unpack : n:int -> int array -> state
end

module type PACKED = sig
  include S

  val words : int
  val pack : n:int -> state -> int array
  val unpack : n:int -> int array -> state
  val step_packed : Pview.t -> bool
end
