(** Execution engine for the state model.

    [Make (P)] runs protocol [P] on a network under a chosen scheduler,
    counting {e steps} (individual register writes) and {e rounds} exactly
    as defined in Section II-A of the paper: a round is the shortest
    execution prefix in which every node that was enabled at the start of
    the prefix has either taken a step or become non-activatable because
    of a neighbor's action.

    Two executors share that semantics. {!Make.run} is the incremental
    hot path: it memoizes each node's pending move (so a write applies
    the cached register instead of re-running the guard), reuses one
    scratch {!View.t} per node (neighbor-state slots refreshed in place
    under a per-node version counter), and maintains the enabled set as
    an intrusive doubly-linked list with a bitset mirror
    ({!Enabled_set}) so a register write costs O(Δ) guard probes and a
    daemon pick touches only the enabled nodes. {!Make.run_reference} is
    the naive executor kept as the semantics oracle — fresh views and a
    full [P.step] per probe — and the two are property-tested to produce
    identical trajectories (see [test/test_engine_equiv.ml] and
    PERFORMANCE.md). *)

module Make (P : Protocol.S) : sig
  type result = {
    states : P.state array;  (** final configuration *)
    steps : int;  (** individual register writes *)
    rounds : int;  (** completed rounds (paper definition) *)
    silent : bool;  (** no node enabled at the end *)
    legal : bool;  (** [P.is_legal] holds at the end *)
    max_bits : int;  (** max register size (bits) ever observed *)
    first_legal_round : int option;
        (** first round boundary at which the configuration was legal; only
            tracked when [run] is called with [~track_legal:true] *)
  }

  (** [initial g] is the designated boot configuration. *)
  val initial : Repro_graph.Graph.t -> P.state array

  (** [adversarial rng g] is a configuration of arbitrary registers — the
      self-stabilization starting point. *)
  val adversarial : Random.State.t -> Repro_graph.Graph.t -> P.state array

  (** [view g states v] is node [v]'s local view of the configuration. *)
  val view : Repro_graph.Graph.t -> P.state array -> int -> P.state View.t

  (** [enabled g states] is the list of enabled (activatable) nodes. *)
  val enabled : Repro_graph.Graph.t -> P.state array -> int list

  (** [silent g states] — no node is enabled. Short-circuits on the
      first enabled node. *)
  val silent : Repro_graph.Graph.t -> P.state array -> bool

  (** [run ?max_steps ?max_rounds ?track_legal ?stop_when_legal ?telemetry
      ?on_round ?on_step g sched rng ~init] executes until silence or a
      limit is hit. [on_round] is called with the round index and the
      current configuration at every round boundary (round 0 = the
      initial configuration); [on_step] is called after {e every}
      individual register write with the acting node and the live
      configuration — used by invariant monitors such as the loop-freedom
      check. A [telemetry] sink additionally receives, at every round
      boundary, the enabled-node count, register-write count, max/total
      register bits, and (unless the sink opts out) the live
      [P.potential] — see {!Telemetry}. If [stop_when_legal] is set,
      execution stops at the first legal round boundary — used for
      non-silent baselines that never terminate on their own. Defaults:
      [max_steps] = 10_000_000, [max_rounds] = 200_000,
      [track_legal] = false.

      Two chaos-harness hooks:

      [adversary] models {e mid-execution transient faults}. It is
      invoked at every round boundary (including round 0) with the round
      index and the live configuration, and returns register overwrites
      [(node, state)] to apply {e as faults}: they count as neither steps
      nor telemetry writes and do not fire [on_step], but they invalidate
      the affected guards, are observed for [max_bits], and the round
      accounting restarts from the resulting enabled set — so recovery is
      measured from live intermediate configurations, not only from
      silent ones. The callback must treat the passed configuration as
      read-only (return writes; do not mutate it) and return only
      in-range node ids.

      [stop_when] is a polling predicate consulted after every register
      write and at every round boundary; when it first returns [true]
      the run aborts where it stands (remaining writes of a synchronous
      or distributed batch are skipped, and no further faults are
      injected). The convergence watchdog ({!Watchdog}) uses it to cut
      livelocked or stalled runs short instead of burning the round
      budget.

      Observability hooks (all off by default; attaching none of them
      leaves the execution bit-identical — none consume RNG draws):

      [events] streams one structured event per write / fault / round
      boundary into an {!Events} sink, with causal provenance: every
      move carries the ids of the writes that (re-)enabled it, read off
      the executor's own wakeup path (see {!Events} and
      OBSERVABILITY.md). [init_causes v] supplies the cause ids for
      nodes the {e initial} configuration enables (chaos uses it to
      attribute recovery to fault events it emitted before the run);
      nodes not covered are root-spontaneous. [round_offset] /
      [step_offset] shift the round/step fields of emitted events only
      (never the semantics) so multi-run episodes share one timeline.

      [profile] counts guard evaluations, view refreshes, wakeups,
      flushes, enabled-set churn and per-rule moves into a {!Profile}
      record.

      These hooks exist on {!run} only: [run_reference] stays the
      uninstrumented oracle. Under the synchronous daemon the incremental
      executor coalesces guard re-probes per batch, so a move's [causes]
      name every adjacent write of the waking batch, where a per-write
      engine would name only the first — the DAG invariant (causes
      precede, edge-adjacent) holds either way. *)
  val run :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?track_legal:bool ->
    ?stop_when_legal:bool ->
    ?telemetry:Telemetry.t ->
    ?on_round:(int -> P.state array -> unit) ->
    ?on_step:(int -> P.state array -> unit) ->
    ?adversary:(round:int -> P.state array -> (int * P.state) list) ->
    ?stop_when:(unit -> bool) ->
    ?events:Events.t ->
    ?profile:Profile.t ->
    ?init_causes:(int -> int list) ->
    ?round_offset:int ->
    ?step_offset:int ->
    Repro_graph.Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    init:P.state array ->
    result

  (** [run_reference] — same signature, same observable behavior, none
      of the incremental machinery: every guard probe allocates a fresh
      view and re-runs [P.step], every write re-evaluates the guard of
      the whole closed neighborhood, and the daemons rescan all n nodes
      per pick. It exists as the oracle the equivalence property suite
      compares {!run} against (identical [states], [steps], [rounds],
      [silent], [legal] on the same seed), and as the fallback to bisect
      against if an engine bug is ever suspected. Use {!run} everywhere
      else. *)
  val run_reference :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?track_legal:bool ->
    ?stop_when_legal:bool ->
    ?telemetry:Telemetry.t ->
    ?on_round:(int -> P.state array -> unit) ->
    ?on_step:(int -> P.state array -> unit) ->
    ?adversary:(round:int -> P.state array -> (int * P.state) list) ->
    ?stop_when:(unit -> bool) ->
    Repro_graph.Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    init:P.state array ->
    result
end
