type t = {
  mutable moves : int;
  mutable guard_evals : int;
  mutable refreshes : int;
  mutable touches : int;
  mutable flushes : int;
  mutable churn : int;
  rules : (string, int ref) Hashtbl.t;
}

let create () =
  {
    moves = 0;
    guard_evals = 0;
    refreshes = 0;
    touches = 0;
    flushes = 0;
    churn = 0;
    rules = Hashtbl.create 16;
  }

let on_move ?rule t =
  t.moves <- t.moves + 1;
  match rule with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt t.rules r with
      | Some c -> incr c
      | None -> Hashtbl.add t.rules r (ref 1))

let on_guard t = t.guard_evals <- t.guard_evals + 1
let on_refresh t = t.refreshes <- t.refreshes + 1
let on_touch t = t.touches <- t.touches + 1
let on_flush t = t.flushes <- t.flushes + 1
let on_churn t = t.churn <- t.churn + 1

let rule_counts t =
  Hashtbl.fold (fun r c acc -> (r, !c) :: acc) t.rules []
  |> List.sort (fun (ra, ca) (rb, cb) ->
         match compare cb ca with 0 -> compare ra rb | c -> c)

let hit_rate t =
  let denom = t.moves + t.guard_evals in
  if denom = 0 then 0. else float_of_int t.moves /. float_of_int denom

let export t m =
  let bump name v = Metrics.incr ~by:v (Metrics.counter m name) in
  bump "engine.moves" t.moves;
  bump "engine.guard_evals" t.guard_evals;
  bump "engine.refreshes" t.refreshes;
  bump "engine.touches" t.touches;
  bump "engine.flushes" t.flushes;
  bump "engine.churn" t.churn;
  List.iter (fun (r, c) -> bump ("engine.rule." ^ r) c) (rule_counts t)

let pp ppf t =
  Format.fprintf ppf
    "@[<h>moves=%d guard_evals=%d hit=%.2f refreshes=%d touches=%d flushes=%d churn=%d%a@]"
    t.moves t.guard_evals (hit_rate t) t.refreshes t.touches t.flushes t.churn
    (fun ppf rules ->
      match rules with
      | [] -> ()
      | rules ->
          Format.pp_print_string ppf " rules:";
          List.iter (fun (r, c) -> Format.fprintf ppf " %s=%d" r c) rules)
    (rule_counts t)
