module Graph = Repro_graph.Graph

module Make (P : Protocol.PACKED) = struct
  type result = {
    states : P.state array;
    steps : int;
    rounds : int;
    silent : bool;
    legal : bool;
    max_bits : int;
    first_legal_round : int option;
  }

  let initial g = Array.init (Graph.n g) (fun v -> P.initial g v)
  let adversarial rng g = Array.init (Graph.n g) (fun v -> P.random_state rng g v)

  (* The struct-of-arrays executor. Trajectory-identical to
     [Engine.Make(P).run] and [run_reference] on the same seeds (the
     equivalence suite pins this): the daemons draw from the RNG in the
     same order, enumerate candidates in the same increasing node order,
     and apply the same moves — only the register representation
     differs. Registers live in a bank of [P.words] int lanes
     ([bank.(f).(v)]), neighbor scans walk the graph's CSR arrays, and
     every scratch structure (move bank, dirty/pending/batch bitsets,
     the one reusable {!Pview.t}) is allocated up front, so the
     steady-state loop allocates nothing (pinned by a [Gc.minor_words]
     test; attaching [telemetry] with a Φ consumer or [track_legal]
     re-boxes the configuration at round boundaries and costs
     allocation there).

     Differences from the boxed [run], by design:
     - no [?events]/[?adversary]/[?on_step] hooks — tracing and chaos
       stay on the boxed engine, which is equivalence-pinned anyway;
       [?on_round] exists (service mode's watchdog needs round-boundary
       observation) but re-boxes the configuration at every boundary,
       so leave it off for allocation-free runs;
     - [max_bits] uses the PACKED contract that [size_bits] is content-
       independent, so it is a constant of [n];
     - moves are cached as packed words: [mv.(f).(v)] holds lane [f] of
       [v]'s pending move, membership in [enabled] says whether it is
       live (exactly the boxed [moves.(v) <> None] invariant). *)

  let run_bank ?(max_steps = 10_000_000) ?(max_rounds = 200_000) ?(track_legal = false)
      ?(stop_when_legal = false) ?telemetry ?on_round ?stop_when ?profile g sched rng
      ~bank =
    let n = Graph.n g in
    let words = P.words in
    let row = Graph.csr_row g and col = Graph.csr_col g in
    if Array.length bank <> words || Array.exists (fun lane -> Array.length lane <> n) bank
    then invalid_arg "Engine_packed.run_bank: bank shape is not words x n";
    let pv = Pview.of_graph g ~bank in
    let steps = ref 0 in
    let rounds = ref 0 in
    let first_legal = ref None in
    let stop = ref false in
    let poll_stop () =
      match stop_when with Some f -> if f () then stop := true | None -> ()
    in
    (* Re-boxing, needed only at observation points (round boundaries
       with a Φ consumer, an [on_round] observer or legality tracking,
       and the final result). *)
    let tmp = Array.make words 0 in
    let unpack_node v =
      for f = 0 to words - 1 do
        tmp.(f) <- bank.(f).(v)
      done;
      P.unpack ~n tmp
    in
    let unpack_all () = Array.init n unpack_node in
    (* Fixed register width (PACKED contract: [size_bits] is content-
       independent): max_bits is a constant of [n]. *)
    let reg_bits = P.size_bits n (unpack_node 0) in
    (* Packed move cache: lane words in [mv], liveness in [enabled]. *)
    let mv = Array.init words (fun _ -> Array.make n 0) in
    let enabled = Enabled_set.create n in
    let recompute v =
      (match profile with Some p -> Profile.on_guard p | None -> ());
      pv.Pview.focus <- v;
      let was = Enabled_set.mem enabled v in
      let now = P.step_packed pv in
      (match profile with Some p -> if was <> now then Profile.on_churn p | None -> ());
      if now then begin
        for f = 0 to words - 1 do
          mv.(f).(v) <- pv.Pview.move.(f)
        done;
        Enabled_set.add enabled v
      end
      else Enabled_set.remove enabled v
    in
    for v = 0 to n - 1 do
      recompute v
    done;
    let dirty = Bitset.create n in
    let touch v =
      (match profile with Some p -> Profile.on_touch p | None -> ());
      Bitset.add dirty v;
      for i = row.(v) to row.(v + 1) - 1 do
        Bitset.add dirty col.(i)
      done
    in
    let flush () =
      if not (Bitset.is_empty dirty) then begin
        (match profile with Some p -> Profile.on_flush p | None -> ());
        Bitset.iter recompute dirty;
        Bitset.clear dirty
      end
    in
    (* Adversary bookkeeping (LIFO daemon). *)
    let last_step_time = Array.make n (-1) in
    let rr_cursor = ref 0 in
    let pending = Bitset.create n in
    let apply ~defer v =
      for f = 0 to words - 1 do
        bank.(f).(v) <- mv.(f).(v)
      done;
      incr steps;
      last_step_time.(v) <- !steps;
      (match telemetry with
      | Some t -> Telemetry.on_write t ~bits:reg_bits
      | None -> ());
      (match profile with Some p -> Profile.on_move p | None -> ());
      (* A packed move always differs from the register it replaces
         (silence is syntactic in every builder), so the closed
         neighborhood is unconditionally dirtied — the boxed engine's
         physical-equality skip never fires for these protocols. *)
      touch v;
      if not defer then flush ();
      Bitset.remove pending v;
      poll_stop ()
    in
    let round_boundary () =
      (match telemetry with
      | Some t ->
          let phi =
            if Telemetry.wants_phi t then P.potential g (unpack_all ()) else None
          in
          Telemetry.on_round t ~round:!rounds
            ~enabled:(Enabled_set.cardinal enabled)
            ~max_bits:reg_bits ~total_bits:(n * reg_bits) ~phi
      | None -> ());
      (match on_round with Some f -> f !rounds (unpack_all ()) | None -> ());
      (if (track_legal || stop_when_legal) && !first_legal = None then
         if P.is_legal g (unpack_all ()) then begin
           first_legal := Some !rounds;
           if stop_when_legal then stop := true
         end);
      poll_stop ()
    in
    round_boundary ();
    (* Daemon picks mirror the boxed engine draw for draw: candidates
       enumerate in increasing node order through the bitset, extremal
       picks scan the intrusive list. The scan closures and their
       accumulator refs are hoisted here so a steady-state pick
       allocates nothing (the extremal picks are order-independent, so
       the unspecified list order is not observable). *)
    let batch = Bitset.create n in
    let scan_best = ref (-1) in
    let max_scan v = if v > !scan_best then scan_best := v in
    let min_scan v = if !scan_best < 0 || v < !scan_best then scan_best := v in
    let rr_ge = ref max_int in
    let rr_scan v =
      if !scan_best < 0 || v < !scan_best then scan_best := v;
      if v >= !rr_cursor && v < !rr_ge then rr_ge := v
    in
    let lifo_scan v =
      let best = !scan_best in
      if
        best < 0
        || last_step_time.(v) > last_step_time.(best)
        || (last_step_time.(v) = last_step_time.(best) && v > best)
      then scan_best := v
    in
    let pick_central strategy =
      match strategy with
      | Scheduler.Random_daemon ->
          Enabled_set.nth_sorted enabled
            (Random.State.int rng (Enabled_set.cardinal enabled))
      | Scheduler.Max_id ->
          scan_best := -1;
          Enabled_set.iter max_scan enabled;
          !scan_best
      | Scheduler.Min_id ->
          scan_best := -1;
          Enabled_set.iter min_scan enabled;
          !scan_best
      | Scheduler.Round_robin ->
          scan_best := -1;
          rr_ge := max_int;
          Enabled_set.iter rr_scan enabled;
          let v = if !rr_ge < max_int then !rr_ge else !scan_best in
          rr_cursor := v + 1;
          v
      | Scheduler.Lifo_adversary ->
          scan_best := -1;
          Enabled_set.iter lifo_scan enabled;
          !scan_best
      | Scheduler.Greedy_max_phi | Scheduler.Greedy_min_phi ->
          (* Same trial evaluation as the boxed engine, via a re-boxed
             configuration — greedy daemons are Φ-global and inherently
             O(n) per pick, so the chaos/adversarial path keeps its
             boxed cost model. Draw-free, so RNG parity is untouched. *)
          let maximize = strategy = Scheduler.Greedy_max_phi in
          let states = unpack_all () in
          let base_phi =
            lazy (match P.potential g states with Some p -> p | None -> max_int)
          in
          let best =
            List.fold_left
              (fun best v ->
                let old = states.(v) in
                for f = 0 to words - 1 do
                  tmp.(f) <- mv.(f).(v)
                done;
                let s = P.unpack ~n tmp in
                let sc =
                  if P.equal_state s old then Lazy.force base_phi
                  else begin
                    states.(v) <- s;
                    let phi = P.potential g states in
                    states.(v) <- old;
                    match phi with Some p -> p | None -> max_int
                  end
                in
                match best with
                | None -> Some (v, sc)
                | Some (_, bs) ->
                    if (if maximize then sc > bs else sc < bs) then Some (v, sc) else best)
              None (Enabled_set.sorted enabled)
          in
          fst (Option.get best)
    in
    let reset_pending () = Enabled_set.snapshot enabled pending in
    reset_pending ();
    let prune_pending () =
      Bitset.inter_inplace pending (Enabled_set.bits enabled);
      if Bitset.is_empty pending then begin
        incr rounds;
        round_boundary ();
        if not (Enabled_set.is_empty enabled) then reset_pending ()
      end
    in
    let apply_deferred v = if not !stop then apply ~defer:true v in
    let apply_live v =
      (* A write earlier in the same distributed batch may have disabled
         this candidate; the boxed engine skips it through its move
         cache ([moves.(v) = None]), membership here. *)
      if (not !stop) && Enabled_set.mem enabled v then apply ~defer:false v
    in
    (* Distributed-daemon scratch, hoisted like the central scans (the
       float draws themselves still box — the coin flips are the one
       unavoidable allocation under [Distributed]). *)
    let dist_p = match sched with Scheduler.Distributed p -> p | _ -> 0.0 in
    let chosen_any = ref false in
    let dist_flip v =
      if Random.State.float rng 1.0 < dist_p then begin
        chosen_any := true;
        apply_live v
      end
    in
    while
      (not !stop)
      && (not (Enabled_set.is_empty enabled))
      && !steps < max_steps && !rounds < max_rounds
    do
      (match sched with
      | Scheduler.Synchronous ->
          (* Freeze the round-top movers; their cached moves were all
             computed against the round-top configuration, which is the
             snapshot semantics. Bitset iteration is increasing order =
             the boxed engine's sorted enumeration. *)
          Enabled_set.snapshot enabled batch;
          Bitset.iter apply_deferred batch;
          flush ()
      | Scheduler.Central strategy ->
          let v = pick_central strategy in
          apply ~defer:false v
      | Scheduler.Distributed _ ->
          Enabled_set.snapshot enabled batch;
          (* Same coin-flip order as the boxed engine: one float per
             candidate in increasing node order, then a fallback index
             draw if none was chosen. *)
          chosen_any := false;
          Bitset.iter dist_flip batch;
          if not !chosen_any then begin
            let k = Random.State.int rng (Bitset.cardinal batch) in
            apply_live (Bitset.nth batch k)
          end);
      prune_pending ()
    done;
    let silent = Enabled_set.is_empty enabled in
    let states = unpack_all () in
    {
      states;
      steps = !steps;
      rounds = !rounds;
      silent;
      legal = P.is_legal g states;
      max_bits = reg_bits;
      first_legal_round = !first_legal;
    }

  let pack_bank ~n init =
    let words = P.words in
    let bank = Array.init words (fun _ -> Array.make n 0) in
    for v = 0 to n - 1 do
      let a = P.pack ~n init.(v) in
      if Array.length a <> words then
        invalid_arg "Engine_packed.pack_bank: pack returned the wrong width";
      for f = 0 to words - 1 do
        bank.(f).(v) <- a.(f)
      done
    done;
    bank

  let run ?max_steps ?max_rounds ?track_legal ?stop_when_legal ?telemetry ?on_round
      ?stop_when ?profile g sched rng ~init =
    run_bank ?max_steps ?max_rounds ?track_legal ?stop_when_legal ?telemetry ?on_round
      ?stop_when ?profile g sched rng
      ~bank:(pack_bank ~n:(Graph.n g) init)
end
