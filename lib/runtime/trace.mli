(** Structured execution traces.

    A trace records, per register write, the acting node, the step and
    round indices, and a short rendering of the new register — enough to
    replay or audit an execution without storing full configurations.
    Used by the debug drivers and the examples; the engine feeds it
    through its [on_step]/[on_round] callbacks. *)

type event = { step : int; round : int; node : int; state : string }

type t

(** [create ?capacity ()] — a trace keeping the last [capacity] events
    (default 1000; older events are dropped). *)
val create : ?capacity:int -> unit -> t

(** Hook pair to plug into [Engine.run]: [on_step t pp] records writes;
    [on_round t] advances the round counter. *)
val on_step : t -> (Format.formatter -> 's -> unit) -> int -> 's array -> unit

val on_round : t -> int -> 's array -> unit

(** Events in chronological order — only the retained window (the last
    {!retained} of {!total} events); older events have been dropped. *)
val events : t -> event list

(** Total number of events ever recorded, {e including} events since
    dropped from the window. [total t - retained t] is the drop count. *)
val total : t -> int

(** The ring-buffer capacity the trace was created with. *)
val capacity : t -> int

(** Number of events currently held (at most {!capacity}). *)
val retained : t -> int

(** [pp] renders the retained window, one event per line, preceded by a
    ["[showing last k of N events]"] header whenever events have been
    dropped. *)
val pp : Format.formatter -> t -> unit

(** [activity t] — per-node write counts over the retained window only. *)
val activity : t -> (int * int) list

(** The retained window as CSV ([step,round,node,state] header; state
    strings are quoted when they contain separators). *)
val to_csv : t -> string
