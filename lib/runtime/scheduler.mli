(** Schedulers (daemons).

    The paper proves convergence under the {e unfair} scheduler: at each
    step the adversary merely picks at least one enabled node. We provide
    the daemons used across the experiment suite (E7):

    - [Synchronous]: every enabled node steps simultaneously (each step
      is exactly one round);
    - [Central Random_daemon]: one uniformly random enabled node;
    - [Central Round_robin]: one enabled node in cyclic id order (a weakly
      fair daemon);
    - [Central Max_id] / [Central Min_id]: deterministic extremal choice;
    - [Central Lifo_adversary]: an unfair strategy that always re-activates
      the most recently stepped node that is still enabled, starving the
      others as long as possible;
    - [Distributed p]: each enabled node steps independently with
      probability [p] (at least one forced);

    plus the two {e potential-greedy} daemons of the chaos harness, a
    practical approximation of the unfair scheduler's worst (resp. best)
    case when the protocol defines a potential [Φ]
    ({!Protocol.S.potential}):

    - [Central Greedy_max_phi]: among the enabled nodes, step the one
      whose move leaves the {e highest} [Φ] — the adversarial variant,
      dragging convergence out as long as the move set allows;
    - [Central Greedy_min_phi]: symmetric, steep{e est}-descent variant.

    Both are evaluated by the engine (the pick needs the live
    configuration and one trial evaluation of [Φ] per enabled node, so
    a pick costs O(enabled x cost(Φ))). A move into a configuration
    where [Φ] is undefined scores [+∞]: the max variant seeks such
    moves, the min variant avoids them; ties go to the smallest id. *)

type central =
  | Random_daemon
  | Round_robin
  | Max_id
  | Min_id
  | Lifo_adversary
  | Greedy_max_phi
  | Greedy_min_phi

type t = Synchronous | Central of central | Distributed of float

(** The schedulers exercised by the equivalence tests and experiment E7,
    with display names. Excludes the potential-greedy daemons, whose
    per-pick [Φ] evaluations are too heavy to sweep through every
    experiment — see {!extended}. *)
val all : (string * t) list

(** {!all} plus the potential-greedy daemons ([greedy-max],
    [greedy-min]); the roster the CLI and chaos campaign select from. *)
val extended : (string * t) list

val pp : Format.formatter -> t -> unit

(** [by_name s] — lookup in {!extended}. *)
val by_name : string -> t option
