(** Schedulers (daemons).

    The paper proves convergence under the {e unfair} scheduler: at each
    step the adversary merely picks at least one enabled node. We provide
    the daemons used across the experiment suite (E7):

    - [Synchronous]: every enabled node steps simultaneously (each step
      is exactly one round);
    - [Central Random_daemon]: one uniformly random enabled node;
    - [Central Round_robin]: one enabled node in cyclic id order (a weakly
      fair daemon);
    - [Central Max_id] / [Central Min_id]: deterministic extremal choice;
    - [Central Lifo_adversary]: an unfair strategy that always re-activates
      the most recently stepped node that is still enabled, starving the
      others as long as possible;
    - [Distributed p]: each enabled node steps independently with
      probability [p] (at least one forced). *)

type central =
  | Random_daemon
  | Round_robin
  | Max_id
  | Min_id
  | Lifo_adversary

type t = Synchronous | Central of central | Distributed of float

(** All schedulers exercised by tests and experiment E7, with display
    names. *)
val all : (string * t) list

val pp : Format.formatter -> t -> unit

(** [by_name s] — lookup in {!all}. *)
val by_name : string -> t option
