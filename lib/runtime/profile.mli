(** Cheap per-run engine profiling counters.

    Answers "where do the constant factors go": how many guard
    evaluations the incremental executor performed versus moves it
    applied straight from its move cache, how many view slots were
    re-pointed, how often the enabled set churned, and a per-rule move
    breakdown (via {!Protocol.S.classify}).

    Pass a fresh {!t} to [Engine.run ~profile]; read it afterwards, or
    {!export} it into a {!Metrics.t} registry next to the telemetry
    counters. Counting is plain mutable-int increments — cheap enough
    for benchmarking, and entirely absent when no profile is attached. *)

type t = {
  mutable moves : int;  (** register writes applied (cached-move hits) *)
  mutable guard_evals : int;  (** [P.step] evaluations (move-cache misses/refills) *)
  mutable refreshes : int;  (** view slots re-pointed to fresh registers *)
  mutable touches : int;  (** wakeups: nodes marked dirty by a write *)
  mutable flushes : int;  (** dirty-set drains *)
  mutable churn : int;  (** enabled-set membership transitions *)
  rules : (string, int ref) Hashtbl.t;  (** per-rule move counts *)
}

val create : unit -> t
val on_move : ?rule:string -> t -> unit
val on_guard : t -> unit
val on_refresh : t -> unit
val on_touch : t -> unit
val on_flush : t -> unit
val on_churn : t -> unit

(** Per-rule move counts, sorted by descending count then name. *)
val rule_counts : t -> (string * int) list

(** [hit_rate t] — [moves / (moves + guard_evals)]: the fraction of
    scheduler picks served by the move cache without re-evaluating the
    guard. [0.] before any activity. *)
val hit_rate : t -> float

(** Register the counters in [m] under ["engine.moves"],
    ["engine.guard_evals"], ["engine.refreshes"], ["engine.touches"],
    ["engine.flushes"], ["engine.churn"] and ["engine.rule.<tag>"],
    adding the profiled values. *)
val export : t -> Metrics.t -> unit

val pp : Format.formatter -> t -> unit
