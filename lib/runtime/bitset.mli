(** Fixed-capacity bitsets over node indices [0 .. capacity-1].

    The engine's hot path replaces its per-round [Hashtbl] bookkeeping
    with these: membership, insertion and removal are O(1) bit
    operations, a full sweep costs [O(capacity/32 + cardinal)], and the
    round-accounting intersection ("drop every pending node that is no
    longer enabled") is a word-wise AND. The cardinal is maintained
    incrementally so emptiness tests are O(1).

    All operations assume indices in range; out-of-range indices raise
    [Invalid_argument] via the underlying array bounds check. *)

type t

(** [create n] is an empty set with capacity [n]. *)
val create : int -> t

val capacity : t -> int
val mem : t -> int -> bool

(** [add t v] inserts [v]; a no-op if already present. *)
val add : t -> int -> unit

(** [remove t v] deletes [v]; a no-op if absent. *)
val remove : t -> int -> unit

(** [clear t] empties the set in [O(capacity/32)]. *)
val clear : t -> unit

val cardinal : t -> int
val is_empty : t -> bool

(** [iter f t] applies [f] to the members in increasing order. [f] must
    not mutate [t]. *)
val iter : (int -> unit) -> t -> unit

(** [fold f init t] folds over the members in increasing order. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Members in increasing order. *)
val to_list : t -> int list

(** [nth t k] is the [k]-th smallest member (0-based).
    @raise Invalid_argument if [k < 0] or [k >= cardinal t]. *)
val nth : t -> int -> int

(** [copy_from ~src ~dst] overwrites [dst] with [src]'s contents.
    @raise Invalid_argument on capacity mismatch. *)
val copy_from : src:t -> dst:t -> unit

(** [inter_inplace t other] removes from [t] every member absent from
    [other] — a word-wise AND.
    @raise Invalid_argument on capacity mismatch. *)
val inter_inplace : t -> t -> unit
