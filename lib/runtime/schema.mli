(** Structural validation of the repository's committed JSON artifacts
    and of {!Events} JSONL traces, against the schemas documented in
    OBSERVABILITY.md / PERFORMANCE.md.

    Backing for [repro_cli validate] and the [@schema] dune alias: a
    schema drift (a renamed field, a type change, a malformed trace)
    fails the smoke gate instead of silently breaking downstream
    consumers of [BENCH_repro.json] / [CHAOS_repro.json] / trace files.

    Each validator returns [Ok count] — the number of records checked —
    or [Error msg] locating the first violation. *)

(** [{"seed": int, "experiments": [{exp, algo, n, rounds, steps,
    max_bits, wall_ns, tier?} ...]}] — the bench regression artifact.
    [tier] is optional ("std" when absent) and must be one of "std"
    (the pinned repro experiments) or "big" (the scaling tier, see
    SCALING.md and the [@bigbench] alias). *)
val validate_bench : Metrics.Json.t -> (int, string) result

(** [{"meta": {...}, "cells": [...], "summary": {...}}] — the chaos
    campaign artifact ({!Campaign}); each cell's identification,
    outcome, verdict and injection records are checked. *)
val validate_chaos : Metrics.Json.t -> (int, string) result

(** [{"meta": {..., "traces": [string...]}, "cells": [...],
    "summary": {...}}] — the service-mode churn artifact
    (SERVICE_repro.json, see EXPERIMENTS.md E13): each cell's
    identification, final topology, verdict, per-churn-event recovery
    records and degradation counters are checked. *)
val validate_service : Metrics.Json.t -> (int, string) result

(** Validate a whole JSONL trace from its file {e contents}: every line
    parses ({!Explain.parse}'s grammar), event ids are strictly
    increasing, and every cause id refers to an earlier event. *)
val validate_trace : string -> (int, string) result

(** Sniff which validator a file's contents call for: a JSONL trace
    (first line has an ["ev"] field), a bench artifact
    (["experiments"]), a service artifact (["cells"] plus a meta
    ["traces"] list) or a chaos artifact (any other ["cells"]). *)
val sniff : string -> [ `Bench | `Chaos | `Service | `Trace ] option
