type sample = {
  round : int;
  enabled : int;
  writes : int;
  writes_total : int;
  max_bits : int;
  total_bits : int;
  phi : int option;
}

type recovery = {
  injection_round : int;
  injected_nodes : int list;
  fault_gap : int option;
  containment_radius : int option;
  touched : int;
}

type t = {
  record_phi : bool;
  reg : Metrics.t;
  mutable rev_samples : sample list;
  mutable rev_recoveries : recovery list;
  mutable writes_total : int;
  mutable writes_at_last_round : int;
  writes_c : Metrics.counter;
  writes_per_round_h : Metrics.histogram;
  enabled_per_round_h : Metrics.histogram;
  register_bits_h : Metrics.histogram;
  phi_g : Metrics.gauge;
  max_bits_g : Metrics.gauge;
  rounds_g : Metrics.gauge;
}

let create ?(record_phi = true) ?registry () =
  let reg = match registry with Some r -> r | None -> Metrics.create () in
  {
    record_phi;
    reg;
    rev_samples = [];
    rev_recoveries = [];
    writes_total = 0;
    writes_at_last_round = 0;
    writes_c = Metrics.counter reg "telemetry.writes";
    writes_per_round_h = Metrics.histogram reg "telemetry.writes_per_round";
    enabled_per_round_h = Metrics.histogram reg "telemetry.enabled_per_round";
    register_bits_h = Metrics.histogram reg "telemetry.register_bits";
    phi_g = Metrics.gauge reg "telemetry.phi";
    max_bits_g = Metrics.gauge reg "telemetry.max_bits";
    rounds_g = Metrics.gauge reg "telemetry.rounds";
  }

let wants_phi t = t.record_phi

let on_write t ~bits =
  t.writes_total <- t.writes_total + 1;
  Metrics.incr t.writes_c;
  Metrics.observe t.register_bits_h bits

let on_round t ~round ~enabled ~max_bits ~total_bits ~phi =
  let writes = t.writes_total - t.writes_at_last_round in
  t.writes_at_last_round <- t.writes_total;
  let s = { round; enabled; writes; writes_total = t.writes_total; max_bits; total_bits; phi } in
  t.rev_samples <- s :: t.rev_samples;
  Metrics.observe t.writes_per_round_h writes;
  Metrics.observe t.enabled_per_round_h enabled;
  Metrics.set t.max_bits_g max_bits;
  Metrics.set t.rounds_g round;
  match phi with Some v -> Metrics.set t.phi_g v | None -> ()

let on_recovery t r = t.rev_recoveries <- r :: t.rev_recoveries
let recoveries t = List.rev t.rev_recoveries

let samples t = List.rev t.rev_samples
let last t = match t.rev_samples with [] -> None | s :: _ -> Some s

let phi_series t =
  List.filter_map (fun s -> Option.map (fun v -> (s.round, v)) s.phi) (samples t)

let registry t = t.reg

let sample_json s =
  Metrics.Json.Obj
    [
      ("round", Metrics.Json.Int s.round);
      ("enabled", Metrics.Json.Int s.enabled);
      ("writes", Metrics.Json.Int s.writes);
      ("writes_total", Metrics.Json.Int s.writes_total);
      ("max_bits", Metrics.Json.Int s.max_bits);
      ("total_bits", Metrics.Json.Int s.total_bits);
      ("phi", match s.phi with Some v -> Metrics.Json.Int v | None -> Metrics.Json.Null);
    ]

let recovery_json r =
  let opt_int = function Some v -> Metrics.Json.Int v | None -> Metrics.Json.Null in
  Metrics.Json.Obj
    [
      ("injection_round", Metrics.Json.Int r.injection_round);
      ( "injected_nodes",
        Metrics.Json.List (List.map (fun v -> Metrics.Json.Int v) r.injected_nodes) );
      ("fault_gap", opt_int r.fault_gap);
      ("containment_radius", opt_int r.containment_radius);
      ("touched", Metrics.Json.Int r.touched);
    ]

let to_json ?(meta = []) t =
  let ss = samples t in
  let max_bits = List.fold_left (fun acc s -> max acc s.max_bits) 0 ss in
  let phis = phi_series t in
  let opt_int = function Some v -> Metrics.Json.Int v | None -> Metrics.Json.Null in
  let summary =
    Metrics.Json.Obj
      [
        ("rounds", Metrics.Json.Int (match last t with Some s -> s.round | None -> 0));
        ("writes_total", Metrics.Json.Int t.writes_total);
        ("max_bits", Metrics.Json.Int max_bits);
        ( "phi_first",
          opt_int (match phis with (_, v) :: _ -> Some v | [] -> None) );
        ( "phi_final",
          opt_int
            (match List.rev phis with (_, v) :: _ -> Some v | [] -> None) );
      ]
  in
  let fields =
    [
      ("meta", Metrics.Json.Obj meta);
      ("rounds", Metrics.Json.List (List.map sample_json ss));
      ("summary", summary);
      ("metrics", Metrics.to_json t.reg);
    ]
  in
  let fields =
    match recoveries t with
    | [] -> fields
    | rs ->
        fields @ [ ("recoveries", Metrics.Json.List (List.map recovery_json rs)) ]
  in
  Metrics.Json.Obj fields

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "round,enabled,writes,writes_total,max_bits,total_bits,phi\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%s\n" s.round s.enabled s.writes s.writes_total
           s.max_bits s.total_bits
           (match s.phi with Some v -> string_of_int v | None -> "")))
    (samples t);
  Buffer.contents buf

let write_json ?meta path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Metrics.Json.to_channel oc (to_json ?meta t))

let write_csv path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let pp ppf t =
  let ss = samples t in
  let max_bits = List.fold_left (fun acc s -> max acc s.max_bits) 0 ss in
  let phis = phi_series t in
  Format.fprintf ppf "rounds=%d writes=%d max_bits=%d"
    (match last t with Some s -> s.round | None -> 0)
    t.writes_total max_bits;
  match (phis, List.rev phis) with
  | (r0, v0) :: _, (r1, v1) :: _ ->
      Format.fprintf ppf " phi: %d (round %d) -> %d (round %d)" v0 r0 v1 r1
  | _ -> Format.fprintf ppf " phi: (undefined)"
