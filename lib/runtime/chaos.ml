module Graph = Repro_graph.Graph
module Traversal = Repro_graph.Traversal

type injection = {
  round : int;
  nodes : int list;
  gap : int option;
  radius : int option;
  touched : int;
}

let injection_to_recovery (i : injection) : Telemetry.recovery =
  {
    Telemetry.injection_round = i.round;
    injected_nodes = i.nodes;
    fault_gap = i.gap;
    containment_radius = i.radius;
    touched = i.touched;
  }

module Make (P : Protocol.S) = struct
  module E = Engine.Make (P)

  type episode = {
    plan : Fault.Plan.t;
    base_rounds : int;
    rounds : int;
    steps : int;
    silent : bool;
    legal : bool;
    recovered : bool;
    verdict : Watchdog.verdict;
    injections : injection list;
    max_bits : int;
  }

  (* min-over-sources hop distance, for the containment radius *)
  let distance_to g sources =
    let dists = List.map (fun s -> Traversal.bfs_distances g ~src:s) sources in
    fun v -> List.fold_left (fun acc d -> min acc d.(v)) max_int dists

  let run_episode ?(max_steps = 2_000_000) ?(max_rounds = 20_000) ?(stall_window = 64)
      ?(cycle_repeats = 3) ?(max_injections = 3) ?(watch_phi = false) ?telemetry ?events
      g sched rng (plan : Fault.Plan.t) =
    let wd = Watchdog.create ~stall_window ~cycle_repeats () in
    let stop_when () = Watchdog.tripped wd <> None in
    (* Config history for stale-replay payloads: most recent boundary
       first, trimmed to the depth the plan can ask for. *)
    let history_depth =
      match plan.Fault.Plan.payload with Fault.Plan.Stale d -> max 1 d | _ -> 0
    in
    let history = ref [] in
    let push_history states =
      if history_depth > 0 then begin
        let rec take k = function
          | x :: tl when k > 0 -> x :: take (k - 1) tl
          | _ -> []
        in
        history := take history_depth (Array.copy states :: !history)
      end
    in
    let stale d = List.nth_opt !history (max 0 (d - 1)) in
    (* Fault-phase bookkeeping. Rounds are cumulative over the whole
       fault phase even though it may span several engine runs (a run
       terminates whenever the configuration goes silent between
       scheduled injections). *)
    let injections = ref [] in
    let inj_count = ref 0 in
    let seg_writers = Hashtbl.create 64 in
    let current = ref None in
    let close_segment ~at_round ~recovered =
      match !current with
      | None -> ()
      | Some (inj_round, nodes) ->
          let dist = distance_to g nodes in
          let radius =
            Hashtbl.fold
              (fun v () acc ->
                let d = dist v in
                match acc with
                | None -> Some d
                | Some r -> Some (max r d))
              seg_writers None
          in
          let record =
            {
              round = inj_round;
              nodes;
              gap = (if recovered then Some (at_round - inj_round) else None);
              radius;
              touched = Hashtbl.length seg_writers;
            }
          in
          injections := record :: !injections;
          (match telemetry with
          | Some t -> Telemetry.on_recovery t (injection_to_recovery record)
          | None -> ());
          Hashtbl.reset seg_writers;
          current := None
    in
    let inject ~at_round states =
      let nodes, corrupted =
        Fault.apply_plan rng ~random_state:P.random_state ~stale g states plan
      in
      incr inj_count;
      current := Some (at_round, nodes);
      Watchdog.reset wd;
      (nodes, corrupted)
    in
    let cap =
      match plan.Fault.Plan.timing with
      | Fault.Plan.At_silence -> 1
      | Fault.Plan.Periodic _ | Fault.Plan.Poisson _ -> max max_injections 1
    in
    let observe round states =
      (* [snap] verifies hash recurrences against the full configuration,
         so a fingerprint collision cannot build up a false Livelock. *)
      Watchdog.observe_round wd ~round ~hash:(Watchdog.config_hash states)
        ~snap:(fun () -> Marshal.to_string states [])
        ~phi:(if watch_phi then P.potential g states else None);
      push_history states
    in
    (* Phase 1: stabilize from an adversarial configuration. *)
    let base = E.run ~max_steps ~max_rounds ~on_round:observe ~stop_when ?events g sched
        rng ~init:(E.adversarial rng g)
    in
    if not (base.E.silent && base.E.legal) then
      {
        plan;
        base_rounds = base.E.rounds;
        rounds = 0;
        steps = base.E.steps;
        silent = base.E.silent;
        legal = base.E.legal;
        recovered = false;
        verdict = Watchdog.verdict wd ~silent:base.E.silent;
        injections = [];
        max_bits = base.E.max_bits;
      }
    else begin
      (* Phase 2: the fault campaign. Each iteration corrupts the current
         silent configuration and runs to recovery; Periodic/Poisson plans
         additionally re-inject mid-run through the engine's [?adversary]
         round-boundary hook. *)
      let states = ref base.E.states in
      let rounds_off = ref 0 in
      let steps_total = ref 0 in
      let max_bits = ref base.E.max_bits in
      let last = ref base in
      while !inj_count < cap && !last.E.silent && !last.E.legal && !rounds_off < max_rounds
      do
        let nodes, corrupted = inject ~at_round:!rounds_off !states in
        let run_base = !rounds_off in
        (* This corruption happens outside the engine (the recovery run
           starts from the corrupted configuration), so emit its fault
           events here and seed the engine's provenance: the pre-fault
           configuration was silent, hence every node the corrupted one
           enables was woken by an injected register in its closed
           neighborhood. Mid-run re-injections below go through the
           [?adversary] hook and get their fault events from the engine. *)
        let init_causes =
          match events with
          | None -> None
          | Some sink ->
              let eids =
                List.map
                  (fun v -> (v, Events.emit_fault sink ~node:v ~round:run_base))
                  nodes
              in
              Some
                (fun v ->
                  List.filter_map
                    (fun (u, e) -> if u = v || Graph.has_edge g u v then Some e else None)
                    eids)
        in
        let fires abs =
          abs > run_base
          &&
          match plan.Fault.Plan.timing with
          | Fault.Plan.At_silence -> false
          | Fault.Plan.Periodic r -> abs mod max 1 r = 0
          | Fault.Plan.Poisson rate -> Random.State.float rng 1.0 < rate
        in
        let adversary ~round sts =
          let abs = run_base + round in
          if !inj_count < cap && fires abs then begin
            close_segment ~at_round:abs ~recovered:(E.silent g sts && P.is_legal g sts);
            let nodes, corrupted = inject ~at_round:abs sts in
            List.map (fun v -> (v, corrupted.(v))) nodes
          end
          else []
        in
        let on_round round sts = observe (run_base + round) sts in
        let on_step v _ = Hashtbl.replace seg_writers v () in
        let r =
          E.run ~max_steps ~max_rounds:(max_rounds - run_base) ~on_round ~on_step
            ~adversary ~stop_when ?events ?init_causes ~round_offset:run_base
            ~step_offset:!steps_total g sched rng ~init:corrupted
        in
        states := r.E.states;
        rounds_off := run_base + r.E.rounds;
        steps_total := !steps_total + r.E.steps;
        max_bits := max !max_bits r.E.max_bits;
        close_segment ~at_round:!rounds_off ~recovered:(r.E.silent && r.E.legal);
        last := r
      done;
      let final = !last in
      let recovered = final.E.silent && final.E.legal in
      {
        plan;
        base_rounds = base.E.rounds;
        rounds = !rounds_off;
        steps = !steps_total;
        silent = final.E.silent;
        legal = final.E.legal;
        recovered;
        verdict = Watchdog.verdict wd ~silent:final.E.silent;
        injections = List.rev !injections;
        max_bits = !max_bits;
      }
    end
end
