module Tree = Repro_graph.Tree
module Space = Repro_runtime.Space

type label = (int * int) array (* (head id, position) pairs, root first *)

let equal (a : label) b = a = b
let compare (a : label) b = compare a b
let length = Array.length

let pp ppf l =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun i (h, p) -> Format.fprintf ppf "%s(%d,%d)" (if i > 0 then ";" else "") h p)
    l;
  Format.fprintf ppf "]@]"

let size_bits n l = Array.length l * (Space.id_bits n + Space.dist_bits n)
let of_root r = [| (r, 0) |]
let of_pairs a = Array.copy a
let to_pairs (l : label) = Array.copy l

let extend_heavy l =
  let l = Array.copy l in
  let h, p = l.(Array.length l - 1) in
  l.(Array.length l - 1) <- (h, p + 1);
  l

let extend_light l ~child = Array.append l [| (child, 0) |]

let prover t =
  let hp = Heavy_path.compute t in
  let n = Tree.n t in
  let labels = Array.make n [||] in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> Stdlib.compare (Tree.pre t a) (Tree.pre t b)) order;
  Array.iter
    (fun v ->
      if v = Tree.root t then labels.(v) <- of_root v
      else
        let p = Tree.parent t v in
        if Heavy_path.heavy_child hp p = v then labels.(v) <- extend_heavy labels.(p)
        else labels.(v) <- extend_light labels.(p) ~child:v)
    order;
  labels

let nca (a : label) (b : label) : label =
  let la = Array.length a and lb = Array.length b in
  let rec first_diff i =
    if i >= la || i >= lb then None
    else if a.(i) = b.(i) then first_diff (i + 1)
    else Some i
  in
  match first_diff 0 with
  | None ->
      (* One sequence is a prefix of the other (entrywise): the shorter
         node is the ancestor. *)
      if la <= lb then a else b
  | Some i ->
      let ha, pa = a.(i) and hb, pb = b.(i) in
      if ha = hb then Array.append (Array.sub a 0 i) [| (ha, min pa pb) |]
      else
        (* Both walks left the previous common heavy path at the same
           position (entry i-1 is equal) into different light children:
           the NCA is that exit node, whose label is the common prefix. *)
        Array.sub a 0 i

let is_ancestor a v = equal (nca a v) a

let on_cycle ~x ~u ~v =
  let w = nca u v in
  (equal (nca x u) x && equal (nca x v) w) || (equal (nca x u) w && equal (nca x v) x)

let resolve t l =
  let labels = prover t in
  let rec go v = if v >= Tree.n t then raise Not_found else if equal labels.(v) l then v else go (v + 1) in
  go 0
