(** Nearest-common-ancestor labels (Section V; Alstrup–Gavoille–Kaplan–
    Rauhe style, heavy-path based).

    The label of [v] is the sequence of [(head, pos)] pairs describing
    the root→v walk through the heavy-path decomposition: one pair per
    heavy path crossed, where [head] is the id of the path's top node and
    [pos] the position at which the walk leaves the path (for the last
    pair: [v]'s own position). Since a root-to-node path crosses at most
    ⌈log₂ n⌉ light edges, labels hold O(log n) pairs — O(log² n) bits in
    this uncompressed form ([6] compresses to O(log n) bits with
    alphabetic codes; we report measured sizes in experiment E4).

    Crucially, [nca] {e computes the label of the nearest common
    ancestor} from two labels alone, which is what the paper uses to let
    every node decide membership in a fundamental cycle locally
    ({!on_cycle}). *)

type label

val equal : label -> label -> bool
val pp : Format.formatter -> label -> unit
val compare : label -> label -> int

(** Number of [(head, pos)] pairs. *)
val length : label -> int

(** Bits for this label in an [n]-node network. *)
val size_bits : int -> label -> int

(** [prover t] computes all labels. *)
val prover : Repro_graph.Tree.t -> label array

(** The root's label: [[(root, 0)]]. *)
val of_root : int -> label

(** [of_pairs a] builds a label from raw [(head, pos)] pairs — intended
    for fault injection and tests (arbitrary register contents), not for
    normal construction. *)
val of_pairs : (int * int) array -> label

(** The raw [(head, pos)] pairs, as a fresh array — the inverse of
    {!of_pairs}, used by the register codecs (see SCALING.md). *)
val to_pairs : label -> (int * int) array

(** [extend_heavy l] — label of the heavy child of a node labeled [l]. *)
val extend_heavy : label -> label

(** [extend_light l ~child] — label of a light child. *)
val extend_light : label -> child:int -> label

(** [nca a b] is the label of the nearest common ancestor of the two
    labeled nodes (both labels must come from the same labeling). *)
val nca : label -> label -> label

(** [is_ancestor a v] — [nca a v = a]. *)
val is_ancestor : label -> label -> bool

(** [on_cycle ~x ~u ~v] implements the paper's membership test for the
    fundamental cycle of a non-tree edge [{u,v}]:
    [x ∈ C] iff [nca(x,u) = x ∧ nca(x,v) = w] or
    [nca(x,u) = w ∧ nca(x,v) = x], where [w = nca(u,v)]. *)
val on_cycle : x:label -> u:label -> v:label -> bool

(** [resolve t l] — the node carrying label [l] in the labeling of [t]
    (test helper). @raise Not_found if absent. *)
val resolve : Repro_graph.Tree.t -> label -> int
