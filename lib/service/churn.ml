module Graph = Repro_graph.Graph
module Traversal = Repro_graph.Traversal

type op =
  | Add_edge of int * int * int
  | Del_edge of int * int
  | Reweight of int * int * int
  | Join of (int * int) list
  | Leave of int

type spec =
  | Ops of op list
  | Flash_crowd of int
  | Regional of int
  | Maintenance of int

type timing = At_silence | Every of int
type t = { spec : spec; timing : timing }

(* ------------------------------------------------------------------ *)
(* Names *)

let op_name = function
  | Add_edge (u, v, w) -> Printf.sprintf "add:%d+%d+%d" u v w
  | Del_edge (u, v) -> Printf.sprintf "del:%d+%d" u v
  | Reweight (u, v, w) -> Printf.sprintf "reweight:%d+%d+%d" u v w
  | Join anchors ->
      "join:"
      ^ String.concat "+"
          (List.concat_map (fun (a, w) -> [ string_of_int a; string_of_int w ]) anchors)
  | Leave v -> Printf.sprintf "leave:%d" v

let spec_name = function
  | Ops ops -> String.concat ";" (List.map op_name ops)
  | Flash_crowd k -> Printf.sprintf "flash-crowd:%d" k
  | Regional k -> Printf.sprintf "regional:%d" k
  | Maintenance k -> Printf.sprintf "maintenance:%d" k

let timing_name = function
  | At_silence -> "silence"
  | Every r -> Printf.sprintf "every:%d" r

let name t = spec_name t.spec ^ "@" ^ timing_name t.timing
let pp ppf t = Format.pp_print_string ppf (name t)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let ( let* ) = Result.bind

let int_of s ctx =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "churn: %S is not an int (in %s)" s ctx)

let ints_of args ctx =
  List.fold_left
    (fun acc s ->
      let* l = acc in
      let* i = int_of s ctx in
      Ok (i :: l))
    (Ok []) args
  |> Result.map List.rev

let op_of_string s =
  let head, args =
    match String.index_opt s ':' with
    | Some i ->
        ( String.sub s 0 i,
          String.split_on_char '+' (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, [])
  in
  let* ints = ints_of args s in
  match (head, ints) with
  | "add", [ u; v; w ] -> Ok (Add_edge (u, v, w))
  | "del", [ u; v ] -> Ok (Del_edge (u, v))
  | "reweight", [ u; v; w ] -> Ok (Reweight (u, v, w))
  | "join", l when l <> [] && List.length l mod 2 = 0 ->
      let rec pairs = function
        | a :: w :: tl -> (a, w) :: pairs tl
        | _ -> []
      in
      Ok (Join (pairs l))
  | "leave", [ v ] -> Ok (Leave v)
  | ("add" | "del" | "reweight" | "join" | "leave"), _ ->
      Error (Printf.sprintf "churn: wrong arity in op %S" s)
  | _ -> Error (Printf.sprintf "churn: unknown op %S" s)

let canned_of_string head arg ctx =
  let* k = int_of arg ctx in
  if k <= 0 then Error (Printf.sprintf "churn: count must be positive in %S" ctx)
  else
    match head with
    | "flash-crowd" -> Ok (Flash_crowd k)
    | "regional" -> Ok (Regional k)
    | "maintenance" -> Ok (Maintenance k)
    | _ -> Error (Printf.sprintf "churn: unknown generator %S" head)

let spec_of_string s =
  let canned =
    match String.index_opt s ':' with
    | Some i when not (String.contains s ';') -> (
        match String.sub s 0 i with
        | ("flash-crowd" | "regional" | "maintenance") as head ->
            Some (head, String.sub s (i + 1) (String.length s - i - 1))
        | _ -> None)
    | _ -> None
  in
  match canned with
  | Some (head, arg) -> canned_of_string head arg s
  | None ->
      let* ops =
        List.fold_left
          (fun acc part ->
            let* l = acc in
            let* op = op_of_string (String.trim part) in
            Ok (op :: l))
          (Ok [])
          (String.split_on_char ';' s)
      in
      Ok (Ops (List.rev ops))

let of_string s =
  let s = String.trim s in
  let spec_str, timing_str =
    match String.index_opt s '@' with
    | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  let* spec = spec_of_string spec_str in
  let* timing =
    match timing_str with
    | None | Some "silence" -> Ok At_silence
    | Some ts -> (
        match String.index_opt ts ':' with
        | Some i when String.sub ts 0 i = "every" ->
            let* r = int_of (String.sub ts (i + 1) (String.length ts - i - 1)) ts in
            if r <= 0 then Error (Printf.sprintf "churn: period must be positive in %S" ts)
            else Ok (Every r)
        | _ -> Error (Printf.sprintf "churn: unknown timing %S" ts))
  in
  Ok { spec; timing }

let parse_list s =
  List.fold_left
    (fun acc part ->
      let* l = acc in
      let part = String.trim part in
      if part = "" then Ok l
      else
        let* t = of_string part in
        Ok (t :: l))
    (Ok [])
    (String.split_on_char ',' s)
  |> Result.map List.rev

let defaults =
  [
    { spec = Flash_crowd 2; timing = At_silence };
    { spec = Regional 2; timing = At_silence };
    { spec = Maintenance 3; timing = Every 4 };
    { spec = Flash_crowd 2; timing = Every 6 };
  ]

(* ------------------------------------------------------------------ *)
(* Canned generators *)

let max_weight g = Graph.fold_edges (fun e acc -> max acc e.Graph.Edge.w) 0 g

(* K joins anchored to uniform existing nodes, then the crowd departs
   in reverse join order — each leave removes the current highest id,
   so no swap-rename happens and connectivity is preserved by
   construction (anchors always point to older nodes). *)
let flash_crowd rng g k =
  let n0 = Graph.n g in
  let next_w = ref (max_weight g) in
  let fresh_w () =
    incr next_w;
    !next_w
  in
  let joins =
    List.init k (fun i ->
        let range = n0 + i in
        let a1 = Random.State.int rng range in
        let a2 = Random.State.int rng range in
        let anchors =
          if a2 = a1 then [ (a1, fresh_w ()) ] else [ (a1, fresh_w ()); (a2, fresh_w ()) ]
        in
        Join anchors)
  in
  let leaves = List.init k (fun i -> Leave (n0 + k - 1 - i)) in
  joins @ leaves

(* Correlated regional failure: up to [k] edge deletions inside the
   closed neighborhood of a random center, simulated sequentially so a
   delete that would disconnect the (already-edited) graph is skipped. *)
let regional rng g k =
  let c = Random.State.int rng (Graph.n g) in
  let in_region v = v = c || Graph.has_edge g c v in
  let candidates =
    Graph.fold_edges
      (fun e acc -> if in_region e.Graph.Edge.u && in_region e.Graph.Edge.v then e :: acc else acc)
      [] g
  in
  (* Deterministic shuffle of the candidate list. *)
  let arr = Array.of_list candidates in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let sim = ref g in
  let ops = ref [] in
  let taken = ref 0 in
  Array.iter
    (fun (e : Graph.Edge.t) ->
      if !taken < k then begin
        let g' = Graph.remove_edge !sim e.u e.v in
        if Traversal.is_connected g' then begin
          sim := g';
          ops := Del_edge (e.u, e.v) :: !ops;
          incr taken
        end
      end)
    arr;
  List.rev !ops

(* Periodic maintenance: K distinct edges re-provisioned with fresh
   (larger, still pairwise-distinct) weights. *)
let maintenance rng g k =
  let edges = Graph.edges g in
  let m = Array.length edges in
  let k = min k m in
  (* Partial Fisher–Yates: the first k slots are a uniform k-subset. *)
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (m - i) in
    let tmp = edges.(i) in
    edges.(i) <- edges.(j);
    edges.(j) <- tmp
  done;
  let base = max_weight g in
  List.init k (fun i ->
      let e = edges.(i) in
      Reweight (e.Graph.Edge.u, e.Graph.Edge.v, base + 1 + i))

let expand rng g = function
  | Ops ops -> ops
  | Flash_crowd k -> flash_crowd rng g k
  | Regional k -> regional rng g k
  | Maintenance k -> maintenance rng g k
