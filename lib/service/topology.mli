(** The mutable-topology wrapper of service mode: validated churn-op
    application over {!Repro_graph.Graph}'s incremental edits, plus
    register migration across the node-set changes.

    {b Hardening.} {!check} is the churn grammar's input gate, in the
    style of [Fault.corrupt_nodes]: out-of-range endpoints, self-loops,
    duplicate edges, absent edges, empty or duplicate anchor lists, and
    — because every protocol in this repository assumes a connected
    network — deletes and leaves that would disconnect the graph are
    all rejected with a descriptive error. {!apply} checks first and
    raises [Invalid_argument] with the same message.

    {b Migration.} Surviving nodes keep their registers verbatim across
    an edit — stale contents (a parent edge that no longer exists, a
    renamed neighbor) are exactly the arbitrary registers
    self-stabilization already tolerates, so no scrubbing is needed;
    the builders treat them as an adversarial starting point. Joined
    nodes get a caller-supplied fresh register
    ([P.random_state] — adversarial boot — in the service driver);
    a leave drops the removed node's register and moves the
    swap-renamed node's register into the vacated slot. *)

type migration =
  | Unchanged  (** edge edit: same node set *)
  | Grow of int  (** a join: the fresh node's id (= old node count) *)
  | Swap of { removed : int; renamed_from : int }
      (** a leave: [renamed_from] (the old highest id) now answers to
          id [removed]; when they coincide the leave was a clean
          truncation. *)

(** [check g op] — validate [op] against topology [g] without applying
    it. [Error msg] carries the op's grammar spelling and what is wrong
    with it. *)
val check : Repro_graph.Graph.t -> Churn.op -> (unit, string) result

(** [apply g op] — validate and apply, returning the edited graph and
    the migration recipe for the node set.
    @raise Invalid_argument with {!check}'s message on an invalid op. *)
val apply : Repro_graph.Graph.t -> Churn.op -> Repro_graph.Graph.t * migration

(** [migrate states mig ~fresh] — carry a register array across a
    migration: survivors verbatim, [fresh id] for a grown node, the
    swap-renamed register moved into the hole for a leave. The result
    is always a fresh array sized to the edited node count. *)
val migrate : 'state array -> migration -> fresh:(int -> 'state) -> 'state array

(** [migrate_bank bank mig ~fresh] — {!migrate} for a packed register
    bank ([words] int lanes of length n, see
    {!Repro_runtime.Engine_packed}): survivors' lane words are copied
    verbatim, [fresh id] supplies the packed register of a grown node
    (the service driver packs one adversarial draw), and a leave moves
    the swap-renamed node's words into the hole, lane by lane. The
    result is a fresh bank sized to the edited node count.
    @raise Invalid_argument if [fresh] returns the wrong width. *)
val migrate_bank :
  int array array -> migration -> fresh:(int -> int array) -> int array array

(** [affected g op mig] — the nodes, named in the {e edited} graph's
    id space, whose local views the edit changed: the endpoints of an
    edge edit, the fresh node and its anchors for a join, the old
    neighbors (post-rename) of the removed node for a leave. [g] is
    the {e pre-edit} graph; the result is sorted and deduplicated.
    These are the churn-event emission sites. *)
val affected : Repro_graph.Graph.t -> Churn.op -> migration -> int list
