module Interval_labels = Repro_labels.Interval_labels

(* One committed buffer: the flattened tree, every facet a preallocated
   int array indexed by node id. [cap] is the array capacity; only the
   first [n] slots are meaningful. The scratch arrays at the bottom are
   reused by every [rebuild] so a commit allocates nothing once the
   buffers have grown to the episode's peak node count. *)
type buf = {
  mutable n : int;
  mutable parent : int array;  (* committed links, verbatim *)
  mutable root : int array;  (* tree root reached from v; -1 = none *)
  mutable depth : int array;  (* hops to that root; -1 when root = -1 *)
  mutable pre : int array;  (* DFS interval (Interval_labels facet) *)
  mutable post : int array;
  mutable deg : int array;  (* tree degree: children + valid parent *)
  mutable head : int array;  (* heavy-path head (Nca_labels facet) *)
  (* rebuild scratch *)
  mutable size : int array;
  mutable heavy : int array;
  mutable child_head : int array;
  mutable child_next : int array;
  mutable stack : int array;
  mutable cursor : int array;
  mutable order : int array;
}

let alloc cap =
  {
    n = 0;
    parent = Array.make cap (-1);
    root = Array.make cap (-1);
    depth = Array.make cap (-1);
    pre = Array.make cap (-1);
    post = Array.make cap (-1);
    deg = Array.make cap 0;
    head = Array.make cap (-1);
    size = Array.make cap 0;
    heavy = Array.make cap (-1);
    child_head = Array.make cap (-1);
    child_next = Array.make cap (-1);
    stack = Array.make cap 0;
    cursor = Array.make cap 0;
    order = Array.make cap 0;
  }

let reserve b n =
  if n > Array.length b.parent then begin
    let cap = ref (max 16 (Array.length b.parent)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let fresh = alloc !cap in
    fresh.n <- b.n;
    b.parent <- fresh.parent;
    b.root <- fresh.root;
    b.depth <- fresh.depth;
    b.pre <- fresh.pre;
    b.post <- fresh.post;
    b.deg <- fresh.deg;
    b.head <- fresh.head;
    b.size <- fresh.size;
    b.heavy <- fresh.heavy;
    b.child_head <- fresh.child_head;
    b.child_next <- fresh.child_next;
    b.stack <- fresh.stack;
    b.cursor <- fresh.cursor;
    b.order <- fresh.order
  end

(* Flatten an arbitrary parent array into [b]. A link is a tree edge
   when it names a distinct in-range node; anything else ([-1], out of
   range, self) marks a root candidate. Nodes whose parent chain never
   reaches a root — members of parent cycles and their hangers-on — get
   [root = depth = pre = post = head = -1], which is exactly the
   bounded-parent-chase semantics the service's reads had before the
   snapshot existed (a chase that cycles answers root = -1). *)
let rebuild b parents =
  let n = Array.length parents in
  reserve b n;
  b.n <- n;
  Array.blit parents 0 b.parent 0 n;
  for v = 0 to n - 1 do
    b.root.(v) <- -1;
    b.depth.(v) <- -1;
    b.pre.(v) <- -1;
    b.post.(v) <- -1;
    b.head.(v) <- -1;
    b.deg.(v) <- 0;
    b.size.(v) <- 1;
    b.heavy.(v) <- -1;
    b.child_head.(v) <- -1
  done;
  let link v =
    let p = parents.(v) in
    p >= 0 && p < n && p <> v
  in
  (* Children lists, built backwards so traversal is increasing order
     (the convention of [Tree.children] and the labels provers). *)
  for v = n - 1 downto 0 do
    if link v then begin
      let p = parents.(v) in
      b.deg.(v) <- b.deg.(v) + 1;
      b.deg.(p) <- b.deg.(p) + 1;
      b.child_next.(v) <- b.child_head.(p);
      b.child_head.(p) <- v
    end
  done;
  (* Iterative DFS from every root candidate: pre/post counters span the
     whole forest (ancestry additionally checks root equality), depth and
   root tags propagate down, sizes and heavy children accumulate on the
   way back up. *)
  let pre_clock = ref 0 and post_clock = ref 0 and sp = ref 0 in
  let push v =
    b.stack.(!sp) <- v;
    b.cursor.(!sp) <- b.child_head.(v);
    incr sp
  in
  for r = 0 to n - 1 do
    if not (link r) then begin
      b.root.(r) <- r;
      b.depth.(r) <- 0;
      b.pre.(r) <- !pre_clock;
      b.order.(!pre_clock) <- r;
      incr pre_clock;
      push r;
      while !sp > 0 do
        let v = b.stack.(!sp - 1) in
        let c = b.cursor.(!sp - 1) in
        if c < 0 then begin
          (* all children done: close the interval, settle heavy child *)
          decr sp;
          b.post.(v) <- !post_clock;
          incr post_clock;
          let ch = ref b.child_head.(v) and best = ref (-1) in
          while !ch >= 0 do
            b.size.(v) <- b.size.(v) + b.size.(!ch);
            if !best < 0 || b.size.(!ch) > b.size.(!best) then best := !ch;
            ch := b.child_next.(!ch)
          done;
          b.heavy.(v) <- !best
        end
        else begin
          b.cursor.(!sp - 1) <- b.child_next.(c);
          b.root.(c) <- r;
          b.depth.(c) <- b.depth.(v) + 1;
          b.pre.(c) <- !pre_clock;
          b.order.(!pre_clock) <- c;
          incr pre_clock;
          push c
        end
      done
    end
  done;
  (* Heavy-path heads in one pre-order sweep: parents settle before
     children, mirroring [Heavy_path.compute]. *)
  for i = 0 to !pre_clock - 1 do
    let v = b.order.(i) in
    if not (link v) then b.head.(v) <- v
    else begin
      let p = b.parent.(v) in
      b.head.(v) <- (if b.heavy.(p) = v then b.head.(p) else v)
    end
  done

(* ------------------------------------------------------------------ *)
(* The double-buffered store: reads always hit [front]; [commit]
   rebuilds [back] from the given parents and swaps, so a reader racing
   a commit keeps seeing the previous committed snapshot until the
   whole rebuild is done. *)

type t = { mutable front : buf; mutable back : buf; mutable ready : bool }

let create ?(cap = 16) () =
  let cap = max 1 cap in
  { front = alloc cap; back = alloc cap; ready = false }

let commit t parents =
  rebuild t.back parents;
  let f = t.front in
  t.front <- t.back;
  t.back <- f;
  t.ready <- true

let ready t = t.ready
let n t = t.front.n

(* O(1) facet reads. *)
let parent t v = t.front.parent.(v)
let root t v = t.front.root.(v)
let degree t v = t.front.deg.(v)
let depth t v = t.front.depth.(v)

(* Ancestry through the interval labels: two integer compares after the
   same-tree guard, the [Interval_labels] test verbatim. *)
let label b v = { Interval_labels.pre = b.pre.(v); post = b.post.(v) }

let is_ancestor t a v =
  let b = t.front in
  b.root.(a) >= 0
  && b.root.(a) = b.root.(v)
  && Interval_labels.is_ancestor (label b a) (label b v)

(* NCA by heavy-path head climbing, the flat form of [Nca_labels.nca]:
   while the two walks sit on different heavy paths, the one whose head
   is deeper retreats above its head; at most one light edge per
   iteration on each side, so O(log n) iterations on a committed tree.
   [-1] when the two nodes live in different trees (or either dangles
   off a parent cycle). *)
let nca t u v =
  let b = t.front in
  if b.root.(u) < 0 || b.root.(u) <> b.root.(v) then -1
  else begin
    let u = ref u and v = ref v in
    while b.head.(!u) <> b.head.(!v) do
      if b.depth.(b.head.(!u)) >= b.depth.(b.head.(!v)) then u := b.parent.(b.head.(!u))
      else v := b.parent.(b.head.(!v))
    done;
    if b.depth.(!u) <= b.depth.(!v) then !u else !v
  end

let route_length t u v =
  let b = t.front in
  let w = nca t u v in
  if w < 0 then -1 else b.depth.(u) + b.depth.(v) - (2 * b.depth.(w))

(* ------------------------------------------------------------------ *)

type answer = {
  a_parent : int;
  a_root : int;
  a_degree : int;
  a_ancestor : bool;
  a_nca : int;
  a_route : int;
}

let answer t ~v ~u =
  {
    a_parent = parent t v;
    a_root = root t v;
    a_degree = degree t v;
    a_ancestor = is_ancestor t u v;
    a_nca = nca t u v;
    a_route = route_length t u v;
  }
