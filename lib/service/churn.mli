(** Churn traces: first-class topology-edit scenarios, the service
    layer's analogue of {!Repro_runtime.Fault.Plan}.

    A {e churn op} is one topology edit; a {e spec} is either an
    explicit op sequence or a canned generator expanded against the
    live graph; a {e trace} pairs a spec with a timing policy:

    {v
    OP     ::= add:U+V+W | del:U+V | reweight:U+V+W
             | join:A1+W1[+A2+W2] | leave:V
    SPEC   ::= OP[;OP...] | flash-crowd:K | regional:K | maintenance:K
    TIMING ::= silence | every:R
    TRACE  ::= SPEC[@TIMING]
    v}

    [join] attaches a fresh node (its id is the current node count, so
    ids stay contiguous) by one or two anchor edges; [leave] removes a
    node, swap-renaming the highest id into the hole (see
    {!Repro_graph.Graph.remove_node}). [silence] (the default) lets
    each edit's recovery run to quiescence under the full degradation
    ladder before the next edit lands; [every:R] imposes an R-round
    deadline on the first recovery attempt — the pacing pressure that
    makes the ladder's retries and escalations measurable.

    The canned generators ({!expand}):
    - [flash-crowd:K] — K nodes join (anchored to uniform existing
      nodes), then all K leave in reverse join order;
    - [regional:K] — up to K correlated edge deletions inside one
      random node's closed neighborhood, skipping any delete that
      would disconnect the graph;
    - [maintenance:K] — K distinct edges get fresh (larger) weights,
      the periodic re-provisioning pattern.

    Expansion only draws from the given RNG and produces ops that are
    valid by construction when applied in sequence; hand-written op
    lists are validated by {!Topology.check} instead. *)

type op =
  | Add_edge of int * int * int  (** [add:U+V+W] *)
  | Del_edge of int * int  (** [del:U+V] *)
  | Reweight of int * int * int  (** [reweight:U+V+W] *)
  | Join of (int * int) list  (** [join:A1+W1+A2+W2...] — anchor edges *)
  | Leave of int  (** [leave:V] *)

type spec =
  | Ops of op list
  | Flash_crowd of int
  | Regional of int
  | Maintenance of int

type timing = At_silence | Every of int
type t = { spec : spec; timing : timing }

(** Canonical grammar spelling of one op, e.g. ["del:2+5"]. *)
val op_name : op -> string

(** Canonical grammar string of a trace, e.g. ["flash-crowd:2@every:6"];
    inverse of {!of_string} (modulo the default timing). *)
val name : t -> string

val pp : Format.formatter -> t -> unit

(** Parse one trace; rejects malformed ops (wrong arity, non-numeric
    fields, odd anchor lists, non-positive counts or periods) with a
    descriptive message. Range/topology validity is {!Topology.check}'s
    business — it needs the live graph. *)
val of_string : string -> (t, string) result

(** Parse a comma-separated trace list. *)
val parse_list : string -> (t list, string) result

(** The default campaign matrix: one trace per churn family, plus
    deadline-pressure variants. *)
val defaults : t list

(** [expand rng g spec] — resolve a spec to the concrete op sequence
    for a service episode starting from topology [g]. [Ops] passes
    through verbatim; canned generators draw from [rng] and simulate
    sequential application so every produced op is valid when applied
    in order. Fresh weights exceed every weight in [g], keeping weights
    pairwise distinct. *)
val expand : Random.State.t -> Repro_graph.Graph.t -> spec -> op list
