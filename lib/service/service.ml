module Graph = Repro_graph.Graph
open Repro_runtime

module type TREE_PROTOCOL = sig
  include Protocol.S

  val parent_of : state -> int
  val loop_free : bool
end

module type PACKED_TREE_PROTOCOL = sig
  include Protocol.PACKED

  val parent_of : state -> int
  val loop_free : bool
end

type event_outcome = {
  op : string;
  apply_round : int;
  gap : int option;
  steps : int;
  queries : int;
  stale : int;
  violations : int;
  retries : int;
  escalations : int;
  restarts : int;
  crashes : int;
  recovered : bool;
}

type report = {
  trace : Churn.t;
  base_rounds : int;
  base_steps : int;
  rounds : int;
  steps : int;
  events : event_outcome list;
  recovered : bool;
  verdict : Watchdog.verdict;
  n_final : int;
  m_final : int;
  max_bits : int;
}

(* The pre-snapshot read path, kept as the benchmark baseline: parent
   link, root by bounded parent-chase (fuel n; -1 = the chase cycled),
   tree degree by a full scan. O(n) per query where the committed
   snapshot answers in O(1). *)
let answer parents v =
  let n = Array.length parents in
  let parent = parents.(v) in
  let root =
    let rec go u fuel =
      if fuel = 0 then -1
      else
        let p = parents.(u) in
        if p < 0 || p >= n || p = u then u else go p (fuel - 1)
    in
    go v n
  in
  let degree = ref (if parent >= 0 && parent < n && parent <> v then 1 else 0) in
  Array.iteri (fun u p -> if u <> v && p = v then incr degree) parents;
  (parent, root, !degree)

(* ------------------------------------------------------------------ *)
(* The episode driver, shared between the boxed and packed engines.
   Everything engine-specific — how registers are stored, booted,
   migrated across churn, projected to parents, and run for one
   watchdog-guarded segment — is behind [BACKEND]; the ladder, the
   watchdog, the committed-snapshot read serving and the staleness
   closure are written once. *)

(* Normalized per-segment result (the engines' result records differ
   only in the configuration field, which stays backend-private). *)
type seg = {
  seg_steps : int;
  seg_rounds : int;
  seg_silent : bool;
  seg_legal : bool;
  seg_bits : int;
}

module type BACKEND = sig
  module P : TREE_PROTOCOL

  type regs

  (** Adversarial boot: one [P.random_state] draw per node, in node
      order (the restart rung and the episode's base phase). *)
  val boot : Random.State.t -> Graph.t -> regs

  (** Carry the registers across a churn migration against the
      {e edited} graph; the joiner draws one [P.random_state]. *)
  val migrate : regs -> Graph.t -> Topology.migration -> Random.State.t -> regs

  (** The parent projection the commits are built from. *)
  val parents : regs -> int array

  (** One engine segment. A raising run must leave [regs] equal to the
      pre-segment registers (crash containment retries from them); the
      events plumbing is boxed-only and ignored elsewhere. *)
  val run :
    max_steps:int ->
    max_rounds:int ->
    on_round:(int -> P.state array -> unit) ->
    on_step:(int -> P.state array -> unit) ->
    stop_when:(unit -> bool) ->
    events:Events.t option ->
    init_causes:(int -> int list) option ->
    round_offset:int ->
    step_offset:int ->
    Graph.t ->
    Scheduler.t ->
    Random.State.t ->
    regs ->
    regs * seg
end

module Driver (B : BACKEND) = struct
  module P = B.P

  let run ?(max_steps = 2_000_000) ?(max_rounds = 20_000) ?(stall_window = 64)
      ?(cycle_repeats = 3) ?(retry_budget = 2_000) ?(max_retries = 2)
      ?(queries_per_round = 2) ?(watch_phi = false) ?snapshot ?events g0 ~sched
      ~fallback rng (trace : Churn.t) =
    (* Canned generators expand against the starting topology, before
       any engine run, so the op list is pinned by the seed alone. *)
    let ops = Churn.expand rng g0 trace.Churn.spec in
    let wd = Watchdog.create ~stall_window ~cycle_repeats () in
    let stop_when () = Watchdog.tripped wd <> None in
    let g = ref g0 in
    let regs = ref (B.boot rng g0) in
    let round_off = ref 0 in
    let steps_total = ref 0 in
    let max_bits = ref 0 in
    let last_silent = ref false in
    let last_ok = ref false in
    (* Committed labels: the double-buffered snapshot reads are served
       from. Until the first commit no reads are served ([ready]). *)
    let snap = match snapshot with Some s -> s | None -> Snapshot.create () in
    let served = ref [] in
    let serving = ref false in
    let seg_crashes = ref 0 in
    let seg_violations = ref 0 in
    let monitor_armed = ref false in
    let observe r sts =
      Watchdog.observe_round wd ~round:r ~hash:(Watchdog.config_hash sts)
        ~snap:(fun () -> Marshal.to_string sts [])
        ~phi:(if watch_phi then P.potential !g sts else None);
      if !serving && Snapshot.ready snap then begin
        let n = Snapshot.n snap in
        for q = 0 to queries_per_round - 1 do
          let v = ((r * 7) + q) mod n in
          let u = ((r * 13) + (5 * q) + 1) mod n in
          served := (v, u, Snapshot.answer snap ~v ~u) :: !served
        done
      end
    in
    (* Loop monitor: after node [v]'s write, chase its new parent chain;
       returning to [v] means the move closed a cycle. A chain that
       dangles or cycles elsewhere is someone else's (adversarial)
       register, not this move's violation. *)
    let on_step v sts =
      if !monitor_armed then begin
        let n = Array.length sts in
        let rec chase u fuel =
          if fuel = 0 then ()
          else
            let p = P.parent_of sts.(u) in
            if p < 0 || p >= n || p = u then ()
            else if p = v then incr seg_violations
            else chase p (fuel - 1)
        in
        chase v n
      end
    in
    (* One watchdog-guarded engine run under [daemon], clamped to the
       episode's global budgets. Raising runs are contained and counted
       as crashes (the machine-level failure mode the ladder exists
       for); only genuinely fatal conditions propagate. *)
    let attempt ~daemon ~budget ?init_causes () =
      let budget = min budget (max_rounds - !round_off) in
      let steps_left = max_steps - !steps_total in
      if budget <= 0 || steps_left <= 0 then begin
        last_silent := false;
        last_ok := false;
        None
      end
      else begin
        Watchdog.reset wd;
        let run_base = !round_off in
        let on_round r sts = observe (run_base + r) sts in
        match
          B.run ~max_steps:steps_left ~max_rounds:budget ~on_round ~on_step
            ~stop_when ~events ~init_causes ~round_offset:run_base
            ~step_offset:!steps_total !g daemon rng !regs
        with
        | regs', s ->
            regs := regs';
            round_off := run_base + s.seg_rounds;
            steps_total := !steps_total + s.seg_steps;
            max_bits := max !max_bits s.seg_bits;
            last_silent := s.seg_silent;
            last_ok := s.seg_silent && s.seg_legal;
            Some s
        | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
        | exception _ ->
            incr seg_crashes;
            last_silent := false;
            last_ok := false;
            None
      end
    in
    let ok = function Some s -> s.seg_silent && s.seg_legal | None -> false in
    (* Phase 1: stabilize from adversarial, full budget, no ladder —
       the same contract as a chaos episode's base phase. *)
    let base = attempt ~daemon:sched ~budget:max_rounds () in
    let base_rounds = !round_off and base_steps = !steps_total in
    let finish events_acc =
      {
        trace;
        base_rounds;
        base_steps;
        rounds = !round_off;
        steps = !steps_total;
        events = List.rev events_acc;
        recovered = !last_ok;
        verdict = Watchdog.verdict wd ~silent:!last_silent;
        n_final = Graph.n !g;
        m_final = Graph.m !g;
        max_bits = !max_bits;
      }
    in
    if not (ok base) then finish []
    else begin
      Snapshot.commit snap (B.parents !regs);
      let first_budget =
        match trace.Churn.timing with
        | Churn.At_silence -> retry_budget
        | Churn.Every r -> r
      in
      let outcomes =
        List.fold_left
          (fun acc op ->
            let apply_round = !round_off in
            let steps_before = !steps_total in
            let retries = ref 0
            and escalations = ref 0
            and restarts = ref 0 in
            seg_crashes := 0;
            seg_violations := 0;
            served := [];
            let g', mig = Topology.apply !g op in
            let affected = Topology.affected !g op mig in
            g := g';
            regs := B.migrate !regs g' mig rng;
            (* The edit happens outside the engine, so emit its churn
               events here and seed the recovery run's provenance: every
               node a changed view enables was woken by the edit. *)
            let init_causes =
              match events with
              | None -> None
              | Some sink ->
                  let op_str = Churn.op_name op in
                  let eids =
                    List.map
                      (fun v ->
                        (v, Events.emit_churn sink ~node:v ~round:apply_round ~op:op_str))
                      affected
                  in
                  Some
                    (fun v ->
                      List.filter_map
                        (fun (u, e) ->
                          if u = v || Graph.has_edge g' u v then Some e else None)
                        eids)
            in
            monitor_armed := P.loop_free;
            serving := true;
            let recovered =
              if ok (attempt ~daemon:sched ~budget:first_budget ?init_causes ()) then
                true
              else begin
                let rec retry k =
                  if k >= max_retries then false
                  else begin
                    incr retries;
                    if ok (attempt ~daemon:sched ~budget:retry_budget ()) then true
                    else retry (k + 1)
                  end
                in
                if retry 0 then true
                else begin
                  incr escalations;
                  if ok (attempt ~daemon:fallback ~budget:retry_budget ()) then true
                  else begin
                    incr restarts;
                    regs := B.boot rng !g;
                    ok (attempt ~daemon:sched ~budget:retry_budget ())
                  end
                end
              end
            in
            monitor_armed := false;
            serving := false;
            (* Close the staleness window: commit the configuration the
               event settled on (legal when recovered, the degraded
               truth otherwise), then re-evaluate every served answer
               against it. Answers that differ, or that name a node
               that left, count as stale. *)
            let truth = B.parents !regs in
            Snapshot.commit snap truth;
            let n' = Array.length truth in
            let stale =
              List.fold_left
                (fun acc (v, u, ans) ->
                  if v >= n' || u >= n' || Snapshot.answer snap ~v ~u <> ans then
                    acc + 1
                  else acc)
                0 !served
            in
            {
              op = Churn.op_name op;
              apply_round;
              gap = (if recovered then Some (!round_off - apply_round) else None);
              steps = !steps_total - steps_before;
              queries = List.length !served;
              stale;
              violations = !seg_violations;
              retries = !retries;
              escalations = !escalations;
              restarts = !restarts;
              crashes = !seg_crashes;
              recovered;
            }
            :: acc)
          [] ops
      in
      finish outcomes
    end
end

(* ------------------------------------------------------------------ *)
(* Boxed backend: the full-featured engine — events, causal provenance,
   the per-write loop monitor. *)

module Make (P : TREE_PROTOCOL) = struct
  module E = Engine.Make (P)

  module D = Driver (struct
    module P = P

    type regs = P.state array

    let boot rng g = E.adversarial rng g

    let migrate regs g' mig rng =
      Topology.migrate regs mig ~fresh:(fun id -> P.random_state rng g' id)

    let parents regs = Array.map P.parent_of regs

    let run ~max_steps ~max_rounds ~on_round ~on_step ~stop_when ~events
        ~init_causes ~round_offset ~step_offset g sched rng regs =
      let r =
        E.run ~max_steps ~max_rounds ~on_round ~on_step ~stop_when ?events
          ?init_causes ~round_offset ~step_offset g sched rng ~init:regs
      in
      ( r.E.states,
        {
          seg_steps = r.E.steps;
          seg_rounds = r.E.rounds;
          seg_silent = r.E.silent;
          seg_legal = r.E.legal;
          seg_bits = r.E.max_bits;
        } )
  end)

  let run = D.run
end

(* ------------------------------------------------------------------ *)
(* Packed backend: registers live in the struct-of-arrays bank for the
   whole episode — engine segments mutate it in place, churn migration
   copies surviving lanes verbatim ([Topology.migrate_bank]), and the
   watchdog observes re-boxed configurations at round boundaries, so an
   episode is draw-for-draw and observation-for-observation identical
   to the boxed [Make] (pinned by test_service's equivalence suite). *)

module Make_packed (P : PACKED_TREE_PROTOCOL) = struct
  module E = Engine_packed.Make (P)

  (* The loop monitor needs the boxed engine's per-write hook; no
     packed builder claims loop-freedom (MST/MDST are variable-width
     and stay boxed), so reject the combination outright rather than
     silently dropping the monitor. *)
  let () =
    if P.loop_free then
      invalid_arg "Service.Make_packed: loop-free builders need the boxed engine"

  module D = Driver (struct
    module P = P

    type regs = int array array

    let boot rng g = E.pack_bank ~n:(Graph.n g) (E.adversarial rng g)

    let migrate bank g' mig rng =
      Topology.migrate_bank bank mig
        ~fresh:(fun id -> P.pack ~n:(Graph.n g') (P.random_state rng g' id))

    let parents bank =
      let n = Array.length bank.(0) in
      let tmp = Array.make P.words 0 in
      Array.init n (fun v ->
          for f = 0 to P.words - 1 do
            tmp.(f) <- bank.(f).(v)
          done;
          P.parent_of (P.unpack ~n tmp))

    let run ~max_steps ~max_rounds ~on_round ~on_step:_ ~stop_when ~events:_
        ~init_causes:_ ~round_offset:_ ~step_offset:_ g sched rng bank =
      (* Crash-containment parity: the boxed engine never mutates its
         [init], so a contained crash retries from the pre-segment
         registers. [run_bank] mutates in place — restore on raise.
         The offsets only shift emitted event fields and there is no
         sink here, so dropping them changes nothing observable. *)
      let saved = Array.map Array.copy bank in
      match
        E.run_bank ~max_steps ~max_rounds ~on_round ~stop_when g sched rng ~bank
      with
      | r ->
          ( bank,
            {
              seg_steps = r.E.steps;
              seg_rounds = r.E.rounds;
              seg_silent = r.E.silent;
              seg_legal = r.E.legal;
              seg_bits = r.E.max_bits;
            } )
      | exception e ->
          Array.iteri (fun f lane -> Array.blit lane 0 bank.(f) 0 (Array.length lane)) saved;
          raise e
  end)

  let run ?max_steps ?max_rounds ?stall_window ?cycle_repeats ?retry_budget
      ?max_retries ?queries_per_round ?watch_phi ?snapshot g0 ~sched ~fallback rng
      trace =
    D.run ?max_steps ?max_rounds ?stall_window ?cycle_repeats ?retry_budget
      ?max_retries ?queries_per_round ?watch_phi ?snapshot g0 ~sched ~fallback rng
      trace
end
