module Graph = Repro_graph.Graph
open Repro_runtime

module type TREE_PROTOCOL = sig
  include Protocol.S

  val parent_of : state -> int
  val loop_free : bool
end

type event_outcome = {
  op : string;
  apply_round : int;
  gap : int option;
  steps : int;
  queries : int;
  stale : int;
  violations : int;
  retries : int;
  escalations : int;
  restarts : int;
  crashes : int;
  recovered : bool;
}

type report = {
  trace : Churn.t;
  base_rounds : int;
  base_steps : int;
  rounds : int;
  steps : int;
  events : event_outcome list;
  recovered : bool;
  verdict : Watchdog.verdict;
  n_final : int;
  m_final : int;
  max_bits : int;
}

(* A read answered from a parents snapshot: parent link, root by
   bounded parent-chase (fuel n; -1 = the chase cycled), tree degree. *)
let answer parents v =
  let n = Array.length parents in
  let parent = parents.(v) in
  let root =
    let rec go u fuel =
      if fuel = 0 then -1
      else
        let p = parents.(u) in
        if p < 0 || p >= n || p = u then u else go p (fuel - 1)
    in
    go v n
  in
  let degree = ref (if parent >= 0 && parent < n && parent <> v then 1 else 0) in
  Array.iteri (fun u p -> if u <> v && p = v then incr degree) parents;
  (parent, root, !degree)

module Make (P : TREE_PROTOCOL) = struct
  module E = Engine.Make (P)

  let run ?(max_steps = 2_000_000) ?(max_rounds = 20_000) ?(stall_window = 64)
      ?(cycle_repeats = 3) ?(retry_budget = 2_000) ?(max_retries = 2)
      ?(queries_per_round = 2) ?(watch_phi = false) ?events g0 ~sched ~fallback rng
      (trace : Churn.t) =
    (* Canned generators expand against the starting topology, before
       any engine run, so the op list is pinned by the seed alone. *)
    let ops = Churn.expand rng g0 trace.Churn.spec in
    let wd = Watchdog.create ~stall_window ~cycle_repeats () in
    let stop_when () = Watchdog.tripped wd <> None in
    let g = ref g0 in
    let states = ref (E.adversarial rng g0) in
    let round_off = ref 0 in
    let steps_total = ref 0 in
    let max_bits = ref 0 in
    let last_silent = ref false in
    let last_ok = ref false in
    (* Committed labels: the parent snapshot reads are served from. *)
    let committed = ref [||] in
    let served = ref [] in
    let serving = ref false in
    let seg_crashes = ref 0 in
    let seg_violations = ref 0 in
    let monitor_armed = ref false in
    let observe r sts =
      Watchdog.observe_round wd ~round:r ~hash:(Watchdog.config_hash sts)
        ~snap:(fun () -> Marshal.to_string sts [])
        ~phi:(if watch_phi then P.potential !g sts else None);
      if !serving && Array.length !committed > 0 then
        for q = 0 to queries_per_round - 1 do
          let v = ((r * 7) + q) mod Array.length !committed in
          served := (v, answer !committed v) :: !served
        done
    in
    (* Loop monitor: after node [v]'s write, chase its new parent chain;
       returning to [v] means the move closed a cycle. A chain that
       dangles or cycles elsewhere is someone else's (adversarial)
       register, not this move's violation. *)
    let on_step v sts =
      if !monitor_armed then begin
        let n = Array.length sts in
        let rec chase u fuel =
          if fuel = 0 then ()
          else
            let p = P.parent_of sts.(u) in
            if p < 0 || p >= n || p = u then ()
            else if p = v then incr seg_violations
            else chase p (fuel - 1)
        in
        chase v n
      end
    in
    (* One watchdog-guarded engine run under [daemon], clamped to the
       episode's global budgets. Raising runs are contained and counted
       as crashes (the machine-level failure mode the ladder exists
       for); only genuinely fatal conditions propagate. *)
    let attempt ~daemon ~budget ?init_causes () =
      let budget = min budget (max_rounds - !round_off) in
      let steps_left = max_steps - !steps_total in
      if budget <= 0 || steps_left <= 0 then begin
        last_silent := false;
        last_ok := false;
        None
      end
      else begin
        Watchdog.reset wd;
        let run_base = !round_off in
        let on_round r sts = observe (run_base + r) sts in
        match
          E.run ~max_steps:steps_left ~max_rounds:budget ~on_round ~on_step ~stop_when
            ?events ?init_causes ~round_offset:run_base ~step_offset:!steps_total !g
            daemon rng ~init:!states
        with
        | r ->
            states := r.E.states;
            round_off := run_base + r.E.rounds;
            steps_total := !steps_total + r.E.steps;
            max_bits := max !max_bits r.E.max_bits;
            last_silent := r.E.silent;
            last_ok := r.E.silent && r.E.legal;
            Some r
        | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
        | exception _ ->
            incr seg_crashes;
            last_silent := false;
            last_ok := false;
            None
      end
    in
    let ok = function Some r -> r.E.silent && r.E.legal | None -> false in
    (* Phase 1: stabilize from adversarial, full budget, no ladder —
       the same contract as a chaos episode's base phase. *)
    let base = attempt ~daemon:sched ~budget:max_rounds () in
    let base_rounds = !round_off and base_steps = !steps_total in
    let finish events_acc =
      {
        trace;
        base_rounds;
        base_steps;
        rounds = !round_off;
        steps = !steps_total;
        events = List.rev events_acc;
        recovered = !last_ok;
        verdict = Watchdog.verdict wd ~silent:!last_silent;
        n_final = Graph.n !g;
        m_final = Graph.m !g;
        max_bits = !max_bits;
      }
    in
    if not (ok base) then finish []
    else begin
      committed := Array.map P.parent_of !states;
      let first_budget =
        match trace.Churn.timing with
        | Churn.At_silence -> retry_budget
        | Churn.Every r -> r
      in
      let outcomes =
        List.fold_left
          (fun acc op ->
            let apply_round = !round_off in
            let steps_before = !steps_total in
            let retries = ref 0
            and escalations = ref 0
            and restarts = ref 0 in
            seg_crashes := 0;
            seg_violations := 0;
            served := [];
            let g', mig = Topology.apply !g op in
            let affected = Topology.affected !g op mig in
            g := g';
            states :=
              Topology.migrate !states mig ~fresh:(fun id -> P.random_state rng g' id);
            (* The edit happens outside the engine, so emit its churn
               events here and seed the recovery run's provenance: every
               node a changed view enables was woken by the edit. *)
            let init_causes =
              match events with
              | None -> None
              | Some sink ->
                  let op_str = Churn.op_name op in
                  let eids =
                    List.map
                      (fun v ->
                        (v, Events.emit_churn sink ~node:v ~round:apply_round ~op:op_str))
                      affected
                  in
                  Some
                    (fun v ->
                      List.filter_map
                        (fun (u, e) ->
                          if u = v || Graph.has_edge g' u v then Some e else None)
                        eids)
            in
            monitor_armed := P.loop_free;
            serving := true;
            let recovered =
              if ok (attempt ~daemon:sched ~budget:first_budget ?init_causes ()) then true
              else begin
                let rec retry k =
                  if k >= max_retries then false
                  else begin
                    incr retries;
                    if ok (attempt ~daemon:sched ~budget:retry_budget ()) then true
                    else retry (k + 1)
                  end
                in
                if retry 0 then true
                else begin
                  incr escalations;
                  if ok (attempt ~daemon:fallback ~budget:retry_budget ()) then true
                  else begin
                    incr restarts;
                    states := E.adversarial rng !g;
                    ok (attempt ~daemon:sched ~budget:retry_budget ())
                  end
                end
              end
            in
            monitor_armed := false;
            serving := false;
            (* Close the staleness window: re-evaluate every served
               answer against the configuration the event settled on
               (legal when recovered, the degraded truth otherwise). *)
            let truth = Array.map P.parent_of !states in
            let stale =
              List.fold_left
                (fun acc (v, ans) ->
                  if v >= Array.length truth || answer truth v <> ans then acc + 1
                  else acc)
                0 !served
            in
            committed := truth;
            {
              op = Churn.op_name op;
              apply_round;
              gap = (if recovered then Some (!round_off - apply_round) else None);
              steps = !steps_total - steps_before;
              queries = List.length !served;
              stale;
              violations = !seg_violations;
              retries = !retries;
              escalations = !escalations;
              restarts = !restarts;
              crashes = !seg_crashes;
              recovered;
            }
            :: acc)
          [] ops
      in
      finish outcomes
    end
end
