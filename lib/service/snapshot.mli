(** The committed label snapshot: service mode's read path.

    At every legal configuration the service driver flattens the
    builder's parent links into preallocated int arrays — parent,
    depth, tree degree, the DFS interval of {!Repro_labels.Interval_labels}
    and the heavy-path head that powers
    {!Repro_labels.Nca_labels}-style NCA computation — so that during
    re-stabilization every read is answered from the last {e committed}
    tree in O(1) ({!parent}, {!root}, {!degree}), two integer compares
    ({!is_ancestor}) or O(log n) ({!nca}, {!route_length}), never by
    chasing live parent pointers.

    {b Double buffering.} A store holds two buffers. Reads always hit
    the front buffer; {!commit} rebuilds the back buffer from the given
    parent array and swaps the two only when the rebuild is complete,
    so reads issued while a commit is in flight are served from the
    previous committed snapshot — the staleness window the service
    layer measures, made safe by construction. Buffers grow by doubling
    and are reused across commits: past the episode's peak node count a
    commit allocates nothing.

    {b Degraded commits.} The service driver also commits the live
    configuration when a recovery fails (the degraded-but-alive
    regime), so {!commit} accepts {e arbitrary} parent arrays: links
    that are out of range, self-loops, or members of parent cycles
    simply mark their nodes unreachable. Such nodes answer
    [root = -1], [is_ancestor = false] and [nca = route_length = -1] —
    the same verdicts the pre-snapshot bounded parent-chase produced. *)

type t

(** [create ()] — an empty store; no query is meaningful before the
    first {!commit}. [cap] preallocates buffer capacity. *)
val create : ?cap:int -> unit -> t

(** [commit t parents] — flatten [parents] into the back buffer and
    swap it to the front. O(n); allocation-free once the buffers have
    grown to [Array.length parents]. *)
val commit : t -> int array -> unit

(** Whether a commit has happened. *)
val ready : t -> bool

(** Node count of the committed snapshot. *)
val n : t -> int

(** Committed parent link of [v], verbatim. O(1). *)
val parent : t -> int -> int

(** Root of the committed tree containing [v]; [-1] if [v]'s parent
    chain cycles instead of reaching a root. O(1). *)
val root : t -> int -> int

(** Tree degree of [v] in the committed links (children + valid
    parent). O(1). *)
val degree : t -> int -> int

(** Hops from [v] to its root; [-1] when [root] is [-1]. O(1). *)
val depth : t -> int -> int

(** [is_ancestor t a v] — [a] lies on the committed tree path from [v]
    to its root (reflexive). Two integer compares on the DFS interval
    after a same-tree guard. *)
val is_ancestor : t -> int -> int -> bool

(** [nca t u v] — nearest common ancestor in the committed tree, or
    [-1] when [u] and [v] sit in different trees (or dangle off a
    cycle). O(log n) heavy-path head climbs. *)
val nca : t -> int -> int -> int

(** [route_length t u v] — length of the committed tree path between
    [u] and [v] ([depth u + depth v - 2 depth (nca u v)]), or [-1] when
    {!nca} is undefined. O(log n). *)
val route_length : t -> int -> int -> int

(** The service read: every facet of one [(v, u)] query, compared
    structurally by the staleness accounting. *)
type answer = {
  a_parent : int;
  a_root : int;
  a_degree : int;
  a_ancestor : bool;  (** is [u] an ancestor of [v]? *)
  a_nca : int;  (** nca of [u] and [v] *)
  a_route : int;  (** tree-path length between [u] and [v] *)
}

val answer : t -> v:int -> u:int -> answer
