(** Service mode: a long-lived tree under topology churn.

    One {e episode} = stabilize a builder from an adversarial
    configuration, then stream a churn trace ({!Churn.t}) against the
    live topology. Each edit goes through {!Topology.apply}; surviving
    nodes keep their registers verbatim, joined nodes boot from
    [P.random_state] (adversarial boot — stabilization owes them
    nothing), and the builder re-stabilizes while reads are served from
    the {e committed} label snapshot ({!Snapshot} — the flattened tree
    taken at the last silent legal configuration).

    {b Degradation ladder.} Every recovery runs under a {!Watchdog}.
    The first attempt gets the timing policy's budget ([every:R] = an
    R-round deadline; [silence] = the full retry budget); when it
    fails — budget exhausted, livelock or stall tripped, or the run
    raised — the ladder engages, all rungs counted per event:
    bounded {e retries} under the same daemon, one {e escalation} to
    the fallback daemon, and a full {e restart} from an adversarial
    configuration as last resort. A run that raises is contained and
    counted as a {e crash}; the episode continues with the ladder.
    When the ladder is exhausted the event is recorded unrecovered and
    the next edit lands on the live (non-silent) configuration — the
    degraded-but-alive regime, not an abort.

    {b Reads.} At every round boundary of a recovery,
    [queries_per_round] deterministic {e pair} queries [(v, u)] are
    answered from the committed snapshot: parent, root, tree degree,
    ancestry, nearest common ancestor, and tree route length (see
    {!Snapshot.answer}). When the event closes, the new configuration
    is committed and each answer is re-evaluated against it; answers
    that differ (or name a node that left) count as {e stale} — the
    staleness window made concrete.

    {b Engines.} {!Make} drives the boxed {!Repro_runtime.Engine}
    (events, provenance, the loop monitor); {!Make_packed} drives the
    struct-of-arrays {!Repro_runtime.Engine_packed} for fixed-width
    builders — registers live in the int bank across the whole episode
    and churn migration copies surviving lanes verbatim. Episodes are
    draw-for-draw identical between the two on shared seeds (pinned by
    the service equivalence suite).

    {b Loop-freedom monitor.} For builders declaring [loop_free], every
    register write during churn recovery is checked: if the writer's
    new parent chain leads back to itself, the move closed a cycle — a
    violation of the paper's malleable-PLS loop-freedom guarantee. It
    is recorded, never fatal. (Boxed engine only; {!Make_packed}
    rejects loop-free builders at functor application.) *)

(** What the service layer needs on top of {!Repro_runtime.Protocol.S}:
    a parent projection for serving reads, and whether the builder
    claims loop-freedom (arms the loop monitor). *)
module type TREE_PROTOCOL = sig
  include Repro_runtime.Protocol.S

  (** The parent link encoded in a register ([-1] or the node itself
      for "no parent"/root; arbitrary values tolerated). *)
  val parent_of : state -> int

  (** Whether the builder's moves are expected to preserve the tree
      invariant between edits (arms the loop monitor). *)
  val loop_free : bool
end

(** The same, over a fixed-width packed protocol (for {!Make_packed}). *)
module type PACKED_TREE_PROTOCOL = sig
  include Repro_runtime.Protocol.PACKED

  val parent_of : state -> int
  val loop_free : bool
end

(** Per-churn-event accounting. *)
type event_outcome = {
  op : string;  (** grammar spelling of the edit *)
  apply_round : int;  (** cumulative round at which the edit landed *)
  gap : int option;  (** rounds from the edit to silent+legal; [None] = never *)
  steps : int;  (** register writes spent on this event's recovery *)
  queries : int;  (** pair reads served from the committed snapshot *)
  stale : int;  (** of those, answers the recovery then contradicted *)
  violations : int;  (** loop-monitor violations (loop-free builders) *)
  retries : int;
  escalations : int;
  restarts : int;
  crashes : int;
  recovered : bool;
}

type report = {
  trace : Churn.t;
  base_rounds : int;  (** initial stabilization, adversarial start *)
  base_steps : int;
  rounds : int;  (** cumulative rounds over the whole episode *)
  steps : int;
  events : event_outcome list;  (** chronological, one per edit *)
  recovered : bool;  (** final configuration silent and legal *)
  verdict : Repro_runtime.Watchdog.verdict;
  n_final : int;
  m_final : int;
  max_bits : int;
}

(** [answer parents v] — the pre-snapshot read path, kept as the
    benchmark baseline: [(parent, root, degree)] with root by bounded
    parent-chase (fuel n; [-1] = the chase cycled) and degree by a full
    scan — O(n) per query where {!Snapshot} answers in O(1). *)
val answer : int array -> int -> int * int * int

module Make (P : TREE_PROTOCOL) : sig
  module E : module type of Repro_runtime.Engine.Make (P)

  (** [run g ~sched ~fallback rng trace] — run one service episode.

      [retry_budget] (default 2000) is the round budget of every
      ladder rung past the first attempt; [max_retries] (default 2)
      caps same-daemon retries; [queries_per_round] (default 2) is the
      read load. [watch_phi] feeds the live potential to the
      watchdog's stall detector (leave off for expensive potentials).
      [max_rounds] / [max_steps] are global episode caps; a ladder
      rung never runs past them.

      [snapshot] supplies the committed-label store to serve reads
      from (so a caller can keep querying the final committed tree
      after the episode — the serve benchmark does); by default a
      private one is allocated.

      An [events] sink receives the full causal trace on one
      id-monotone timeline: base stabilization, one [Churn] event per
      node whose view an edit changed, and every recovery move —
      seeded so moves chain back to the edit that caused them,
      mirroring the chaos harness's fault attribution. Sinks consume
      no RNG draws; episodes are bit-identical with or without one.

      @raise Invalid_argument if an explicit op list in [trace] fails
      {!Topology.check} (canned generators are valid by
      construction). *)
  val run :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?stall_window:int ->
    ?cycle_repeats:int ->
    ?retry_budget:int ->
    ?max_retries:int ->
    ?queries_per_round:int ->
    ?watch_phi:bool ->
    ?snapshot:Snapshot.t ->
    ?events:Repro_runtime.Events.t ->
    Repro_graph.Graph.t ->
    sched:Repro_runtime.Scheduler.t ->
    fallback:Repro_runtime.Scheduler.t ->
    Random.State.t ->
    Churn.t ->
    report
end

(** {!Make} on the struct-of-arrays engine, for fixed-width builders:
    registers stay in the packed int bank for the whole episode —
    engine segments mutate it in place, churn migration copies
    surviving lanes verbatim ({!Topology.migrate_bank}) and boots
    joiners adversarially in-bank — so big-n episodes never round-trip
    the configuration through boxed states. Same episode semantics and
    RNG draw order as {!Make} (the watchdog observes re-boxed
    configurations at the same round boundaries); there is no [?events]
    plumbing — causal tracing stays on the boxed engine.

    Applying the functor to a builder with [loop_free = true] raises
    [Invalid_argument]: the loop monitor needs the boxed engine's
    per-write hook. *)
module Make_packed (P : PACKED_TREE_PROTOCOL) : sig
  module E : module type of Repro_runtime.Engine_packed.Make (P)

  val run :
    ?max_steps:int ->
    ?max_rounds:int ->
    ?stall_window:int ->
    ?cycle_repeats:int ->
    ?retry_budget:int ->
    ?max_retries:int ->
    ?queries_per_round:int ->
    ?watch_phi:bool ->
    ?snapshot:Snapshot.t ->
    Repro_graph.Graph.t ->
    sched:Repro_runtime.Scheduler.t ->
    fallback:Repro_runtime.Scheduler.t ->
    Random.State.t ->
    Churn.t ->
    report
end
