module Graph = Repro_graph.Graph
module Traversal = Repro_graph.Traversal

type migration =
  | Unchanged
  | Grow of int
  | Swap of { removed : int; renamed_from : int }

(* ------------------------------------------------------------------ *)
(* Validation *)

let ( let* ) = Result.bind

let err op fmt =
  Printf.ksprintf (fun msg -> Error (Printf.sprintf "churn op %s: %s" (Churn.op_name op) msg)) fmt

let check_node op g v what =
  if v < 0 || v >= Graph.n g then
    err op "%s %d out of range [0,%d)" what v (Graph.n g)
  else Ok ()

let check_edge_pair op g u v =
  let* () = check_node op g u "endpoint" in
  let* () = check_node op g v "endpoint" in
  if u = v then err op "self-loop on node %d" u else Ok ()

let check g (op : Churn.op) =
  match op with
  | Churn.Add_edge (u, v, _) ->
      let* () = check_edge_pair op g u v in
      if Graph.has_edge g u v then err op "duplicate edge {%d,%d}" u v else Ok ()
  | Churn.Del_edge (u, v) ->
      let* () = check_edge_pair op g u v in
      if not (Graph.has_edge g u v) then err op "edge {%d,%d} absent" u v
      else if not (Traversal.is_connected (Graph.remove_edge g u v)) then
        err op "deleting edge {%d,%d} disconnects the graph" u v
      else Ok ()
  | Churn.Reweight (u, v, _) ->
      let* () = check_edge_pair op g u v in
      if not (Graph.has_edge g u v) then err op "edge {%d,%d} absent" u v else Ok ()
  | Churn.Join anchors ->
      if anchors = [] then err op "a join needs at least one anchor"
      else
        let* () =
          List.fold_left
            (fun acc (a, _) ->
              let* () = acc in
              check_node op g a "anchor")
            (Ok ()) anchors
        in
        let sorted = List.sort compare (List.map fst anchors) in
        let rec dup = function
          | a :: b :: _ when a = b -> Some a
          | _ :: tl -> dup tl
          | [] -> None
        in
        (match dup sorted with
        | Some a -> err op "duplicate anchor %d" a
        | None -> Ok ())
  | Churn.Leave v ->
      let* () = check_node op g v "node" in
      if Graph.n g <= 1 then err op "cannot remove the last node"
      else if not (Traversal.is_connected (Graph.remove_node g v)) then
        err op "removing node %d disconnects the graph" v
      else Ok ()

(* ------------------------------------------------------------------ *)
(* Application *)

let apply g (op : Churn.op) =
  (match check g op with Ok () -> () | Error msg -> invalid_arg msg);
  match op with
  | Churn.Add_edge (u, v, w) -> (Graph.add_edge g u v w, Unchanged)
  | Churn.Del_edge (u, v) -> (Graph.remove_edge g u v, Unchanged)
  | Churn.Reweight (u, v, w) -> (Graph.reweight_edge g u v w, Unchanged)
  | Churn.Join anchors -> (Graph.add_node g anchors, Grow (Graph.n g))
  | Churn.Leave v ->
      (Graph.remove_node g v, Swap { removed = v; renamed_from = Graph.n g - 1 })

let migrate states mig ~fresh =
  match mig with
  | Unchanged -> Array.copy states
  | Grow id -> Array.append states [| fresh id |]
  | Swap { removed; renamed_from } ->
      let n' = Array.length states - 1 in
      let out = Array.sub states 0 n' in
      if removed < n' then out.(removed) <- states.(renamed_from);
      out

(* The packed twin of [migrate]: same recipe, applied per int lane of a
   register bank, so survivors are copied verbatim as flat words and
   never round-trip through boxed states. [fresh id] supplies the
   joiner's packed register (one adversarial draw, packed by the
   caller). *)
let migrate_bank bank mig ~fresh =
  match mig with
  | Unchanged -> Array.map Array.copy bank
  | Grow id ->
      let packed = fresh id in
      if Array.length packed <> Array.length bank then
        invalid_arg "Topology.migrate_bank: fresh register has the wrong width";
      Array.mapi (fun f lane -> Array.append lane [| packed.(f) |]) bank
  | Swap { removed; renamed_from } ->
      Array.map
        (fun lane ->
          let n' = Array.length lane - 1 in
          let out = Array.sub lane 0 n' in
          if removed < n' then out.(removed) <- lane.(renamed_from);
          out)
        bank

let affected g (op : Churn.op) mig =
  let nodes =
    match (op, mig) with
    | (Churn.Add_edge (u, v, _) | Churn.Del_edge (u, v) | Churn.Reweight (u, v, _)), _ ->
        [ u; v ]
    | Churn.Join anchors, Grow id -> id :: List.map fst anchors
    | Churn.Leave v, Swap { removed; renamed_from } ->
        let rename x = if x = renamed_from then removed else x in
        Graph.neighbors g v |> Array.to_list
        |> List.filter_map (fun (u, _) -> if u = v then None else Some (rename u))
    | (Churn.Join _ | Churn.Leave _), _ ->
        invalid_arg "Topology.affected: op/migration mismatch"
  in
  List.sort_uniq compare nodes
