module Edge = struct
  type t = { u : int; v : int; w : int }

  let make u v w =
    if u = v then invalid_arg "Edge.make: self-loop"
    else if u < v then { u; v; w }
    else { u = v; v = u; w }

  let compare a b =
    let c = compare a.w b.w in
    if c <> 0 then c
    else
      let c = compare a.u b.u in
      if c <> 0 then c else compare a.v b.v

  let equal a b = a.u = b.u && a.v = b.v && a.w = b.w
  let mem e x = e.u = x || e.v = x

  let other e x =
    if e.u = x then e.v
    else if e.v = x then e.u
    else invalid_arg "Edge.other: not an endpoint"

  let pp ppf e = Format.fprintf ppf "{%d,%d}/%d" e.u e.v e.w
end

type t = {
  n : int;
  edges : Edge.t array;
  adj : (int * int) array array; (* (neighbor, weight), sorted by neighbor *)
  (* CSR mirror of [adj]: node v's neighbors are col.[row.(v) .. row.(v+1)-1]
     (increasing), weights aligned in wgt. Three flat arrays instead of n
     boxed pair-arrays, so a neighbor scan is one contiguous read. *)
  csr_row : int array;
  csr_col : int array;
  csr_wgt : int array;
  (* Precomputed at construction: [total_weight] is on the per-node
     hot path of spt's adversarial initialization (its infinity bound),
     and summing m edges per query made that O(n·m). *)
  total_w : int;
}

let csr_of_adj n adj =
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + Array.length adj.(v)
  done;
  let m2 = row.(n) in
  let col = Array.make (max 1 m2) 0 and wgt = Array.make (max 1 m2) 0 in
  for v = 0 to n - 1 do
    let base = row.(v) in
    Array.iteri
      (fun i (u, w) ->
        col.(base + i) <- u;
        wgt.(base + i) <- w)
      adj.(v)
  done;
  (row, col, wgt)

let of_edge_list n es =
  if n <= 0 then invalid_arg "Graph.of_edge_list: n must be positive";
  let seen = Hashtbl.create (List.length es) in
  List.iter
    (fun (e : Edge.t) ->
      if e.u < 0 || e.v >= n then
        invalid_arg "Graph.of_edge_list: endpoint out of range";
      if Hashtbl.mem seen (e.u, e.v) then
        invalid_arg "Graph.of_edge_list: duplicate edge";
      Hashtbl.add seen (e.u, e.v) ())
    es;
  let deg = Array.make n 0 in
  List.iter
    (fun (e : Edge.t) ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    es;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  List.iter
    (fun (e : Edge.t) ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.w);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.w);
      fill.(e.v) <- fill.(e.v) + 1)
    es;
  Array.iter (fun a -> Array.sort compare a) adj;
  let csr_row, csr_col, csr_wgt = csr_of_adj n adj in
  let total_w = List.fold_left (fun acc (e : Edge.t) -> acc + e.w) 0 es in
  { n; edges = Array.of_list es; adj; csr_row; csr_col; csr_wgt; total_w }

let of_edges n es =
  of_edge_list n (List.map (fun (u, v, w) -> Edge.make u v w) es)

let n g = g.n
let m g = Array.length g.edges
let csr_row g = g.csr_row
let csr_col g = g.csr_col
let csr_wgt g = g.csr_wgt
let edges g = Array.copy g.edges
let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

(* Binary search in the sorted adjacency row of [u]. *)
let lookup g u v =
  let row = g.adj.(u) in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let x, w = row.(mid) in
      if x = v then Some w else if x < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length row)

let has_edge g u v = lookup g u v <> None

let weight g u v =
  match lookup g u v with Some w -> w | None -> raise Not_found

let find_edge g u v =
  match lookup g u v with Some w -> Some (Edge.make u v w) | None -> None

(* ------------------------------------------------------------------ *)
(* Incremental edits (the service layer's churn path, see
   lib/service/topology.mli). Edge edits patch the adjacency rows of the
   two endpoints and rebuild the flat CSR mirror with one linear pass —
   no re-sorting, no duplicate-detection hash pass — and are pinned
   byte-identical to [of_edges] from scratch on the same edge set by a
   qcheck property (test_graph). Node edits change [n], so they go back
   through [of_edge_list]. *)

let check_endpoint ~what g x =
  if x < 0 || x >= g.n then
    invalid_arg
      (Printf.sprintf "Graph.%s: endpoint %d out of range [0,%d)" what x g.n)

(* Fresh row with [(u, w)] inserted at its sorted (by neighbor) slot. *)
let insert_sorted row u w =
  let len = Array.length row in
  let fresh = Array.make (len + 1) (u, w) in
  let i = ref 0 in
  while !i < len && fst row.(!i) < u do
    fresh.(!i) <- row.(!i);
    incr i
  done;
  Array.blit row !i fresh (!i + 1) (len - !i);
  fresh

(* Fresh row with neighbor [u] dropped. *)
let remove_sorted row u =
  let len = Array.length row in
  let fresh = Array.make (len - 1) (0, 0) in
  let j = ref 0 in
  for i = 0 to len - 1 do
    if fst row.(i) <> u then begin
      fresh.(!j) <- row.(i);
      incr j
    end
  done;
  fresh

let patched g ~adj ~edges ~total_w =
  let csr_row, csr_col, csr_wgt = csr_of_adj g.n adj in
  { n = g.n; edges; adj; csr_row; csr_col; csr_wgt; total_w }

let add_edge g u v w =
  check_endpoint ~what:"add_edge" g u;
  check_endpoint ~what:"add_edge" g v;
  let e = Edge.make u v w in
  if has_edge g e.Edge.u e.Edge.v then
    invalid_arg
      (Printf.sprintf "Graph.add_edge: duplicate edge {%d,%d}" e.Edge.u e.Edge.v);
  let adj = Array.copy g.adj in
  adj.(e.Edge.u) <- insert_sorted adj.(e.Edge.u) e.Edge.v w;
  adj.(e.Edge.v) <- insert_sorted adj.(e.Edge.v) e.Edge.u w;
  patched g ~adj ~edges:(Array.append g.edges [| e |]) ~total_w:(g.total_w + w)

let remove_edge g u v =
  check_endpoint ~what:"remove_edge" g u;
  check_endpoint ~what:"remove_edge" g v;
  match lookup g u v with
  | None -> invalid_arg (Printf.sprintf "Graph.remove_edge: edge {%d,%d} absent" u v)
  | Some w ->
      let e = Edge.make u v w in
      let adj = Array.copy g.adj in
      adj.(e.Edge.u) <- remove_sorted adj.(e.Edge.u) e.Edge.v;
      adj.(e.Edge.v) <- remove_sorted adj.(e.Edge.v) e.Edge.u;
      let edges =
        Array.of_list
          (List.filter (fun x -> not (Edge.equal x e)) (Array.to_list g.edges))
      in
      patched g ~adj ~edges ~total_w:(g.total_w - w)

let reweight_edge g u v w =
  check_endpoint ~what:"reweight_edge" g u;
  check_endpoint ~what:"reweight_edge" g v;
  match lookup g u v with
  | None ->
      invalid_arg (Printf.sprintf "Graph.reweight_edge: edge {%d,%d} absent" u v)
  | Some old_w ->
      let e_old = Edge.make u v old_w and e = Edge.make u v w in
      let replace row x =
        let fresh = Array.copy row in
        Array.iteri (fun i (y, _) -> if y = x then fresh.(i) <- (x, w)) row;
        fresh
      in
      let adj = Array.copy g.adj in
      adj.(e.Edge.u) <- replace adj.(e.Edge.u) e.Edge.v;
      adj.(e.Edge.v) <- replace adj.(e.Edge.v) e.Edge.u;
      let edges = Array.map (fun x -> if Edge.equal x e_old then e else x) g.edges in
      patched g ~adj ~edges ~total_w:(g.total_w - old_w + w)

let add_node g anchors =
  if anchors = [] then
    invalid_arg "Graph.add_node: at least one anchor edge required";
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (a, _) ->
      check_endpoint ~what:"add_node" g a;
      if Hashtbl.mem seen a then
        invalid_arg (Printf.sprintf "Graph.add_node: duplicate anchor %d" a);
      Hashtbl.add seen a ())
    anchors;
  of_edge_list (g.n + 1)
    (Array.to_list g.edges @ List.map (fun (a, w) -> Edge.make a g.n w) anchors)

let remove_node g v =
  check_endpoint ~what:"remove_node" g v;
  if g.n = 1 then invalid_arg "Graph.remove_node: cannot remove the last node";
  (* Swap-remove: the highest id takes the vacated slot, keeping ids
     contiguous; edges incident to [v] disappear with it. *)
  let last = g.n - 1 in
  let rename x = if x = last then v else x in
  let edges =
    Array.to_list g.edges
    |> List.filter_map (fun (e : Edge.t) ->
           if e.u = v || e.v = v then None
           else Some (Edge.make (rename e.u) (rename e.v) e.w))
  in
  of_edge_list (g.n - 1) edges

let fold_edges f init g = Array.fold_left (fun acc e -> f e acc) init g.edges
let iter_edges f g = Array.iter f g.edges
let total_weight g = g.total_w

let distinct_weights g =
  let tbl = Hashtbl.create (m g) in
  try
    iter_edges
      (fun e ->
        if Hashtbl.mem tbl e.Edge.w then raise Exit
        else Hashtbl.add tbl e.Edge.w ())
      g;
    true
  with Exit -> false

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges (fun e -> Format.fprintf ppf "  %a@," Edge.pp e) g;
  Format.fprintf ppf "@]"
