module Edge = struct
  type t = { u : int; v : int; w : int }

  let make u v w =
    if u = v then invalid_arg "Edge.make: self-loop"
    else if u < v then { u; v; w }
    else { u = v; v = u; w }

  let compare a b =
    let c = compare a.w b.w in
    if c <> 0 then c
    else
      let c = compare a.u b.u in
      if c <> 0 then c else compare a.v b.v

  let equal a b = a.u = b.u && a.v = b.v && a.w = b.w
  let mem e x = e.u = x || e.v = x

  let other e x =
    if e.u = x then e.v
    else if e.v = x then e.u
    else invalid_arg "Edge.other: not an endpoint"

  let pp ppf e = Format.fprintf ppf "{%d,%d}/%d" e.u e.v e.w
end

type t = {
  n : int;
  edges : Edge.t array;
  adj : (int * int) array array; (* (neighbor, weight), sorted by neighbor *)
  (* CSR mirror of [adj]: node v's neighbors are col.[row.(v) .. row.(v+1)-1]
     (increasing), weights aligned in wgt. Three flat arrays instead of n
     boxed pair-arrays, so a neighbor scan is one contiguous read. *)
  csr_row : int array;
  csr_col : int array;
  csr_wgt : int array;
  (* Precomputed at construction: [total_weight] is on the per-node
     hot path of spt's adversarial initialization (its infinity bound),
     and summing m edges per query made that O(n·m). *)
  total_w : int;
}

let csr_of_adj n adj =
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + Array.length adj.(v)
  done;
  let m2 = row.(n) in
  let col = Array.make (max 1 m2) 0 and wgt = Array.make (max 1 m2) 0 in
  for v = 0 to n - 1 do
    let base = row.(v) in
    Array.iteri
      (fun i (u, w) ->
        col.(base + i) <- u;
        wgt.(base + i) <- w)
      adj.(v)
  done;
  (row, col, wgt)

let of_edge_list n es =
  if n <= 0 then invalid_arg "Graph.of_edge_list: n must be positive";
  let seen = Hashtbl.create (List.length es) in
  List.iter
    (fun (e : Edge.t) ->
      if e.u < 0 || e.v >= n then
        invalid_arg "Graph.of_edge_list: endpoint out of range";
      if Hashtbl.mem seen (e.u, e.v) then
        invalid_arg "Graph.of_edge_list: duplicate edge";
      Hashtbl.add seen (e.u, e.v) ())
    es;
  let deg = Array.make n 0 in
  List.iter
    (fun (e : Edge.t) ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    es;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  List.iter
    (fun (e : Edge.t) ->
      adj.(e.u).(fill.(e.u)) <- (e.v, e.w);
      fill.(e.u) <- fill.(e.u) + 1;
      adj.(e.v).(fill.(e.v)) <- (e.u, e.w);
      fill.(e.v) <- fill.(e.v) + 1)
    es;
  Array.iter (fun a -> Array.sort compare a) adj;
  let csr_row, csr_col, csr_wgt = csr_of_adj n adj in
  let total_w = List.fold_left (fun acc (e : Edge.t) -> acc + e.w) 0 es in
  { n; edges = Array.of_list es; adj; csr_row; csr_col; csr_wgt; total_w }

let of_edges n es =
  of_edge_list n (List.map (fun (u, v, w) -> Edge.make u v w) es)

let n g = g.n
let m g = Array.length g.edges
let csr_row g = g.csr_row
let csr_col g = g.csr_col
let csr_wgt g = g.csr_wgt
let edges g = Array.copy g.edges
let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

(* Binary search in the sorted adjacency row of [u]. *)
let lookup g u v =
  let row = g.adj.(u) in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let x, w = row.(mid) in
      if x = v then Some w else if x < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length row)

let has_edge g u v = lookup g u v <> None

let weight g u v =
  match lookup g u v with Some w -> w | None -> raise Not_found

let find_edge g u v =
  match lookup g u v with Some w -> Some (Edge.make u v w) | None -> None

let fold_edges f init g = Array.fold_left (fun acc e -> f e acc) init g.edges
let iter_edges f g = Array.iter f g.edges
let total_weight g = g.total_w

let distinct_weights g =
  let tbl = Hashtbl.create (m g) in
  try
    iter_edges
      (fun e ->
        if Hashtbl.mem tbl e.Edge.w then raise Exit
        else Hashtbl.add tbl e.Edge.w ())
      g;
    true
  with Exit -> false

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges (fun e -> Format.fprintf ppf "  %a@," Edge.pp e) g;
  Format.fprintf ppf "@]"
