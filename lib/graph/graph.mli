(** Simple connected undirected edge-weighted graphs.

    This is the network model of the paper (Section II-A): nodes are
    [0 .. n-1]; every node has a distinct, incorruptible identity and knows
    the (distinct, incorruptible) weights of its incident edges.

    Weights are [int]s. The paper assumes pairwise-distinct weights
    (w.l.o.g., citing Gallager–Humblet–Spira); every comparison in this
    repository goes through {!Edge.compare}, which breaks residual ties by
    endpoints, so even graphs built with duplicate raw weights behave as if
    the weights were distinct. *)

module Edge : sig
  (** An undirected weighted edge, normalized so that [u < v]. *)
  type t = private { u : int; v : int; w : int }

  (** [make u v w] builds a normalized edge. @raise Invalid_argument on a
      self-loop. *)
  val make : int -> int -> int -> t

  (** Total order by [(w, u, v)]: weight first, ties broken by endpoints.
      This realizes the paper's "all weights pairwise distinct" assumption. *)
  val compare : t -> t -> int

  val equal : t -> t -> bool

  (** [other e x] is the endpoint of [e] that is not [x].
      @raise Invalid_argument if [x] is not an endpoint. *)
  val other : t -> int -> int

  (** [mem e x] is [true] iff [x] is an endpoint of [e]. *)
  val mem : t -> int -> bool

  val pp : Format.formatter -> t -> unit
end

type t

(** {1 Construction} *)

(** [of_edges n edges] builds a graph on nodes [0..n-1].
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    duplicate (parallel) edges. *)
val of_edges : int -> (int * int * int) list -> t

(** Same as {!of_edges} from already-normalized edges. *)
val of_edge_list : int -> Edge.t list -> t

(** {1 Incremental edits}

    The churn path of service mode (lib/service): each edit returns a
    fresh graph sharing untouched adjacency rows with the old one. The
    result is guaranteed byte-identical — [edges] order, [csr_row] /
    [csr_col] / [csr_wgt], [total_weight] — to {!of_edges} applied from
    scratch to the edited edge set with adds appended last (pinned by a
    qcheck property in test_graph). Edits never check connectivity;
    callers that need a connected result (the service layer does) must
    validate first — see [Topology.check].

    All edits raise [Invalid_argument] with a descriptive message on
    out-of-range endpoints, self-loops, duplicate edges, or absent
    edges. *)

(** [add_edge g u v w] inserts the edge [{u,v}] with weight [w].
    @raise Invalid_argument if the edge already exists. *)
val add_edge : t -> int -> int -> int -> t

(** [remove_edge g u v] deletes the edge [{u,v}].
    @raise Invalid_argument if the edge is absent. *)
val remove_edge : t -> int -> int -> t

(** [reweight_edge g u v w] sets the weight of existing edge [{u,v}] to
    [w]. @raise Invalid_argument if the edge is absent. *)
val reweight_edge : t -> int -> int -> int -> t

(** [add_node g anchors] adds node [n g] (ids stay contiguous) attached
    by one edge [(anchor, weight)] per list element.
    @raise Invalid_argument on an empty anchor list, out-of-range or
    duplicate anchors. *)
val add_node : t -> (int * int) list -> t

(** [remove_node g v] deletes node [v] and its incident edges,
    swap-renaming the highest id [n g - 1] to [v] so ids stay
    contiguous ([v = n g - 1] deletes cleanly with no rename).
    @raise Invalid_argument on the last remaining node. *)
val remove_node : t -> int -> t

(** {1 Accessors} *)

(** Number of nodes. *)
val n : t -> int

(** Number of edges. *)
val m : t -> int

(** All edges, in unspecified but fixed order. The returned array is fresh. *)
val edges : t -> Edge.t array

(** [neighbors g v] is the array of [(neighbor, weight)] pairs of [v], in
    increasing neighbor order. The returned array is shared: do not mutate. *)
val neighbors : t -> int -> (int * int) array

(** [degree g v] is the number of neighbors of [v] in [g]. *)
val degree : t -> int -> int

(** {2 CSR adjacency}

    The same adjacency as {!neighbors}, stored as three flat arrays in
    compressed-sparse-row form: node [v]'s neighbors are
    [csr_col g].(i) for [i] in [(csr_row g).(v) .. (csr_row g).(v+1) - 1],
    in increasing neighbor order, with the edge weight aligned at
    [(csr_wgt g).(i)]. Built once at construction; the flat layout is
    what the packed engine scans (see SCALING.md). The returned arrays
    are shared: do not mutate. *)

(** Row-pointer array of length [n+1]. *)
val csr_row : t -> int array

(** Column (neighbor id) array of length [2m]. *)
val csr_col : t -> int array

(** Weight array aligned with {!csr_col}. *)
val csr_wgt : t -> int array

(** Maximum degree over all nodes. *)
val max_degree : t -> int

(** [has_edge g u v] tests adjacency. *)
val has_edge : t -> int -> int -> bool

(** [weight g u v] is the weight of edge [{u,v}].
    @raise Not_found if the edge is absent. *)
val weight : t -> int -> int -> int

(** [find_edge g u v] is the normalized edge between [u] and [v], if any. *)
val find_edge : t -> int -> int -> Edge.t option

(** [fold_edges f init g] folds over all edges. *)
val fold_edges : (Edge.t -> 'a -> 'a) -> 'a -> t -> 'a

(** [iter_edges f g] iterates over all edges. *)
val iter_edges : (Edge.t -> unit) -> t -> unit

(** Total weight of all edges. Precomputed at construction (O(1)):
    builders query it per node when initializing adversarial states. *)
val total_weight : t -> int

(** [distinct_weights g] is [true] iff all raw weights are pairwise
    distinct. (Not required — see {!Edge.compare} — but generators
    guarantee it.) *)
val distinct_weights : t -> bool

val pp : Format.formatter -> t -> unit
