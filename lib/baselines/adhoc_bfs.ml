module Graph = Repro_graph.Graph
module Traversal = Repro_graph.Traversal
module View = Repro_runtime.View
module Space = Repro_runtime.Space

type state = { parent : int; dist : int }

module P = struct
  type nonrec state = state

  let equal_state (a : state) b = a = b
  let pp_state ppf s = Format.fprintf ppf "(p=%d,d=%d)" s.parent s.dist
  let size_bits n _ = Space.id_bits n + Space.dist_bits n
  let initial _ v = if v = 0 then { parent = -1; dist = 0 } else { parent = -1; dist = 1 }

  let random_state rng g _ =
    let n = Graph.n g in
    { parent = Random.State.int rng (n + 1) - 1; dist = Random.State.int rng (n + 1) }

  let target (view : state View.t) =
    if view.View.id = 0 then { parent = -1; dist = 0 }
    else begin
      let best = ref None in
      for i = 0 to view.View.degree - 1 do
        let u = view.View.nbrs.(i) in
        match !best with
        | None -> best := Some (u.dist, view.View.nbr_ids.(i))
        | Some (d, _) -> if u.dist < d then best := Some (u.dist, view.View.nbr_ids.(i))
      done;
      match !best with
      | Some (d, p) when d + 1 <= view.View.n -> { parent = p; dist = d + 1 }
      | _ -> { parent = -1; dist = view.View.n }
    end

  let step view =
    let fresh = target view in
    (* Keep the current parent if it still certifies the same distance,
       so the protocol is silent once distances are exact. *)
    let s = view.View.self in
    let keep =
      s.dist = fresh.dist
      &&
      if view.View.id = 0 then s.parent = -1
      else
        match View.index view s.parent with
        | i -> view.View.nbrs.(i).dist + 1 = s.dist
        | exception Not_found -> false
    in
    if keep then None else if equal_state s fresh then None else Some fresh

  let is_legal g sts =
    let d = Traversal.bfs_distances g ~src:0 in
    let ok = ref true in
    Array.iteri
      (fun v (s : state) ->
        if s.dist <> d.(v) then ok := false;
        if v <> 0 then
          match s.parent with
          | p when p >= 0 && Graph.has_edge g v p && d.(p) + 1 = d.(v) -> ()
          | _ -> ok := false)
      sts;
    !ok

  (* Same distance-defect potential as the PLS-guided BFS: Σ_v |d(v) −
     dist_G(v, 0)|, capped per node. *)
  let potential g sts =
    let d = Traversal.bfs_distances g ~src:0 in
    let n = Graph.n g in
    let total = ref 0 in
    Array.iteri
      (fun v (s : state) ->
        let dv = if s.dist < 0 then n else min s.dist n in
        total := !total + abs (dv - min d.(v) n))
      sts;
    Some !total

  let classify =
    Some (fun old fresh -> if old.parent <> fresh.parent then "reparent" else "dist")
end

module Engine = Repro_runtime.Engine.Make (P)

module Packed = struct
  include P

  (* Lanes: 0=parent, 1=dist (see SCALING.md). *)
  let words = 2
  let pack ~n:_ (s : state) = [| s.parent; s.dist |]
  let unpack ~n:_ a = { parent = a.(0); dist = a.(1) }

  let step_packed (pv : Repro_runtime.Pview.t) =
    let open Repro_runtime in
    let bank = pv.Pview.bank in
    let par = bank.(0) and dis = bank.(1) in
    let id = pv.Pview.focus in
    let n = pv.Pview.n in
    let row = pv.Pview.row and col = pv.Pview.col in
    let s_parent = par.(id) and s_dist = dis.(id) in
    (* [target]: the root pins (-1, 0); everyone else joins the first
       minimum-distance neighbor in increasing id order (the boxed
       scan's strict-< keeps the earliest minimum). *)
    let fp = ref (-1) and fd = ref 0 in
    if id <> 0 then begin
      let has = ref false in
      let bd = ref 0 and bp = ref 0 in
      for i = row.(id) to row.(id + 1) - 1 do
        let u = col.(i) in
        if not !has then begin
          has := true;
          bd := dis.(u);
          bp := u
        end
        else if dis.(u) < !bd then begin
          bd := dis.(u);
          bp := u
        end
      done;
      if !has && !bd + 1 <= n then begin
        fp := !bp;
        fd := !bd + 1
      end
      else begin
        fp := -1;
        fd := n
      end
    end;
    let keep =
      s_dist = !fd
      &&
      if id = 0 then s_parent = -1
      else
        match Pview.index pv s_parent with
        | i -> dis.(col.(i)) + 1 = s_dist
        | exception Not_found -> false
    in
    if keep then false
    else if s_parent = !fp && s_dist = !fd then false
    else begin
      pv.Pview.move.(0) <- !fp;
      pv.Pview.move.(1) <- !fd;
      true
    end
end

module Engine_packed = Repro_runtime.Engine_packed.Make (Packed)
