module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module Mst = Repro_graph.Mst
module View = Repro_runtime.View
module Space = Repro_runtime.Space
module E = Graph.Edge

type state = { parent : int; frag : int; fdist : int; moe : (E.t * int) option }

module P = struct
  type nonrec state = state

  let equal_state (a : state) b = a = b

  let pp_state ppf s =
    Format.fprintf ppf "(p=%d,frag=%d,fd=%d%s)" s.parent s.frag s.fdist
      (match s.moe with Some (e, d) -> Format.asprintf ",moe=%a@%d" E.pp e d | None -> "")

  let size_bits n s =
    (2 * Space.id_bits n) + Space.dist_bits n
    + Space.opt (fun (_, _) -> Space.edge_bits n + Space.dist_bits n) s.moe

  let singleton v = { parent = -1; frag = v; fdist = 0; moe = None }
  let initial _ v = singleton v

  let random_state rng g _ =
    let n = Graph.n g in
    let random_edge () =
      let a = Random.State.int rng n and b = Random.State.int rng n in
      if a = b then E.make a ((b + 1) mod n) (1 + Random.State.int rng (n * n))
      else E.make a b (1 + Random.State.int rng (n * n))
    in
    {
      parent = Random.State.int rng (n + 1) - 1;
      frag = Random.State.int rng n;
      fdist = Random.State.int rng (n + 1);
      moe =
        (if Random.State.bool rng then None
         else Some (random_edge (), Random.State.int rng n));
    }

  (* Minimum outgoing target over: my own boundary edges (hops 0) and
     same-fragment neighbors' moes (hops+1, TTL n). *)
  let moe_target (view : state View.t) =
    let s = view.View.self in
    let best = ref None in
    let consider e d =
      match !best with
      | Some (b, bd) ->
          if E.compare e b < 0 || (E.equal e b && d < bd) then best := Some (e, d)
      | None -> best := Some (e, d)
    in
    for i = 0 to view.View.degree - 1 do
      let nb = view.View.nbrs.(i) in
      if nb.frag <> s.frag then
        consider (E.make view.View.id view.View.nbr_ids.(i) view.View.nbr_weights.(i)) 0
      else
        match nb.moe with
        | Some (e, d) when d + 1 <= view.View.n -> consider e (d + 1)
        | _ -> ()
    done;
    !best

  let step (view : state View.t) =
    let s = view.View.self in
    let n = view.View.n in
    let id = view.View.id in
    (* 1. Structural sanity of the fragment tree. *)
    let parent_state =
      if s.parent = -1 then None
      else
        match View.index view s.parent with
        | i -> Some view.View.nbrs.(i)
        | exception Not_found -> None
    in
    let valid =
      if s.parent = -1 then s.frag = id && s.fdist = 0
      else
        match parent_state with
        | Some p -> s.frag = p.frag && s.fdist = p.fdist + 1 && s.fdist <= n - 1
        | None -> false
    in
    if not valid then begin
      (* Follow the parent if possible, else reset to a singleton. *)
      match parent_state with
      | Some p when p.fdist + 1 <= n - 1 ->
          Some { s with frag = p.frag; fdist = p.fdist + 1 }
      | _ -> Some (singleton id)
    end
    else begin
      (* 2. Minimum-outgoing-edge fixpoint. *)
      let target = moe_target view in
      if target <> s.moe then Some { s with moe = target }
      else begin
        (* 3. Merge across my own MOE, toward the smaller fragment id,
           once my neighborhood agrees on the edge. *)
        match s.moe with
        | Some (e, 0) when E.mem e id -> (
            let other = E.other e id in
            match View.index view other with
            | exception Not_found -> None
            | i ->
                let onb = view.View.nbrs.(i) in
                let neighborhood_agrees =
                  View.for_all
                    (fun _ _ nb -> nb.frag <> s.frag ||
                       match nb.moe with Some (e', _) -> E.equal e' e | None -> false)
                    view
                in
                if onb.frag < s.frag && neighborhood_agrees && onb.fdist + 1 <= n - 1 then
                  Some { s with parent = other; frag = onb.frag; fdist = onb.fdist + 1 }
                else None)
        | _ -> None
      end
    end

  let is_legal g sts =
    let parent = Array.map (fun s -> s.parent) sts in
    Tree.check_parents ~root:0 parent
    && Mst.is_mst g (Tree.of_parents ~root:0 parent)

  (* Weight gap to the MST — 0 exactly on MSTs, so a silent-but-wrong
     fixpoint (the E9 failure mode) shows as a non-zero final phi. *)
  let potential g sts =
    let parent = Array.map (fun s -> s.parent) sts in
    if Tree.check_parents ~root:0 parent then
      Some (Tree.weight (Tree.of_parents ~root:0 parent) g - Mst.mst_weight g)
    else None

  let classify =
    Some
      (fun old fresh ->
        if old.parent <> fresh.parent then "merge"
        else if old.moe <> fresh.moe then "moe"
        else "frag-repair")
end

module Engine = Repro_runtime.Engine.Make (P)

let failure_rate rng g ~trials =
  let failures = ref 0 in
  for _ = 1 to trials do
    let init = Engine.adversarial rng g in
    let r = Engine.run ~max_rounds:20_000 g Repro_runtime.Scheduler.Synchronous rng ~init in
    if r.Engine.silent && not r.Engine.legal then incr failures
  done;
  float_of_int !failures /. float_of_int trials
