(** Ad-hoc rooted BFS baseline (Huang–Chen style, [42] in the paper).

    Solves the {e easier} task where the root is known (node 0 is aware
    it is the root): every node maintains only a distance and a parent,
    [d(0) = 0], [d(v) = 1 + min] over neighbors, parent = a closest
    neighbor. Silent, O(log n) bits, O(n) rounds — the comparison row for
    the paper's PLS-guided BFS (which additionally elects the root). *)

type state = { parent : int; dist : int }

module P : Repro_runtime.Protocol.S with type state = state

module Engine : module type of Repro_runtime.Engine.Make (P)

(** The same protocol on a 2-lane register bank ([parent], [dist]), for
    the struct-of-arrays engine (see SCALING.md). *)
module Packed : Repro_runtime.Protocol.PACKED with type state = state

module Engine_packed : module type of Repro_runtime.Engine_packed.Make (Packed)
