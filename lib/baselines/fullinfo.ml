module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module View = Repro_runtime.View
module Space = Repro_runtime.Space
module St_layer = Repro_core.St_layer

module type TASK = sig
  val name : string
  val desired : Graph.t -> Tree.t
  val is_legal_tree : Graph.t -> Tree.t -> bool
end

type info = (int * (int * int) list) list
type state = { st : St_layer.t; info : info; plan : int array }

module type INSTANCE = sig
  module P : Repro_runtime.Protocol.S with type state = state

  module Engine : sig
    include module type of Repro_runtime.Engine.Make (P)
  end

  val tree_of : Graph.t -> state array -> Tree.t option
end

let tree_of _g sts =
  let parent = Array.map (fun s -> s.st.St_layer.parent) sts in
  if Tree.check_parents ~root:0 parent then Some (Tree.of_parents ~root:0 parent) else None

module Make (T : TASK) : INSTANCE = struct
  module P = struct
    type nonrec state = state

    let equal_state (a : state) b = a = b

    let pp_state ppf s =
      Format.fprintf ppf "%a info=%d plan=%d" St_layer.pp s.st (List.length s.info)
        (Array.length s.plan)

    let size_bits n s =
      let info_bits =
        List.fold_left
          (fun acc (_, edges) ->
            acc + Space.id_bits n
            + List.fold_left (fun a _ -> a + Space.id_bits n + Space.weight_bits n) 0 edges)
          0 s.info
      in
      St_layer.size_bits n s.st + info_bits + (Array.length s.plan * Space.id_bits n)

    let initial _ v = { st = St_layer.self_root v; info = []; plan = [||] }

    let random_state rng g _v =
      let n = Graph.n g in
      {
        st = St_layer.random rng ~n;
        info =
          (if Random.State.bool rng then []
           else [ (Random.State.int rng n, [ (Random.State.int rng n, 1) ]) ]);
        plan =
          (if Random.State.bool rng then [||]
           else Array.init (Random.State.int rng (n + 1)) (fun _ -> Random.State.int rng n));
      }

    (* My own topology entry. *)
    let own_entry (view : state View.t) =
      ( view.View.id,
        Array.to_list (Array.mapi (fun i u -> (u, view.View.nbr_weights.(i))) view.View.nbr_ids)
      )

    let info_target (view : state View.t) =
      let tbl = Hashtbl.create 32 in
      let add (id, edges) = if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id edges in
      add (own_entry view);
      Array.iteri
        (fun i nb ->
          if nb.st.St_layer.parent = view.View.id then List.iter add nb.info;
          ignore i)
        view.View.nbrs;
      Hashtbl.fold (fun id edges acc -> (id, edges) :: acc) tbl []
      |> List.sort compare

    let plan_target (view : state View.t) =
      let s = view.View.self in
      if s.st.St_layer.parent = -1 then begin
        (* The root: once the collected info covers every node, rebuild
           the graph and compute the desired tree locally. *)
        if List.length s.info = view.View.n then begin
          let edges = Hashtbl.create 64 in
          List.iter
            (fun (u, nbrs) ->
              List.iter
                (fun (v, w) ->
                  if u <> v then Hashtbl.replace edges (min u v, max u v) w)
                nbrs)
            s.info;
          match
            Graph.of_edges view.View.n
              (Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) edges [])
          with
          | exception Invalid_argument _ -> s.plan
          | g -> (
              match T.desired g with
              | t -> Tree.parents t
              | exception _ -> s.plan)
        end
        else s.plan
      end
      else
        match View.index view s.st.St_layer.parent with
        | i -> view.View.nbrs.(i).plan
        | exception Not_found -> s.plan

    let step (view : state View.t) =
      let s = view.View.self in
      (* 1. Follow the plan (highest priority: the plan is authoritative
         once computed). *)
      let n = view.View.n in
      if
        Array.length s.plan = n
        && Tree.check_parents ~root:0 s.plan
        && s.plan.(view.View.id) <> s.st.St_layer.parent
        && (s.plan.(view.View.id) = -1 || View.is_neighbor view s.plan.(view.View.id))
      then begin
        let p = s.plan.(view.View.id) in
        let dist =
          if p = -1 then 0
          else
            match View.index view p with
            | i -> view.View.nbrs.(i).st.St_layer.dist + 1
            | exception Not_found -> 0
        in
        Some { s with st = { St_layer.parent = p; root = 0; dist = min dist (n - 1) } }
      end
      else
        (* 2. Tree layer (shape preserved; the plan owns the shape). *)
        match St_layer.step view ~get:(fun x -> x.st) ~keep_shape:true with
        | Some st -> Some { s with st }
        | None ->
            (* 3. Convergecast the topology. *)
            let info = info_target view in
            if info <> s.info then Some { s with info }
            else
              (* 4. Broadcast / compute the plan. *)
              let plan = plan_target view in
              if plan <> s.plan then Some { s with plan } else None

    let is_legal g sts =
      match tree_of g sts with None -> false | Some t -> T.is_legal_tree g t

    (* Convergence is by info/plan waves, not potential descent. *)
    let potential _g _sts = None

    let classify =
      Some
        (fun old fresh ->
          if not (St_layer.equal old.st fresh.st) then "tree"
          else if old.info <> fresh.info then "info"
          else "plan")
  end

  module Engine = Repro_runtime.Engine.Make (P)

  let tree_of = tree_of
end

module Mst_instance = Make (struct
  let name = "fullinfo-mst"

  let desired g = Repro_graph.Mst.tree_of g (Repro_graph.Mst.kruskal g) ~root:0

  let is_legal_tree g t = Repro_graph.Mst.is_mst g t

  let _ = name
end)

module Mdst_instance = Make (struct
  let name = "fullinfo-mdst"

  let desired g =
    let t, _, _ = Repro_graph.Min_degree.furer_raghavachari g ~root:0 in
    t

  let is_legal_tree g t = Repro_graph.Min_degree.find_marking g t <> None

  let _ = name
end)
