(** The service-mode churn matrix: builders x churn traces x daemons x
    seeds, one {!Repro_service.Service} episode per cell, driven
    through {!Repro_runtime.Pool} exactly like the chaos matrix — the
    cell list is enumerated in canonical order and each cell is pinned
    by its own RNG, so the artifact (SERVICE_repro.json) is
    byte-identical at any [--jobs] count. Backing for
    [repro_cli serve] and the [@service] alias. *)

type cell = {
  algo : string;
  trace_name : string;
  sched_name : string;
  fallback_name : string;
  seed_index : int;
  n0 : int;  (** starting topology *)
  m0 : int;
  tier : string;  (** "std" (the churn matrix) or "big" (serve bench) *)
  qps : int option;  (** big tier only: measured snapshot-read throughput *)
  report : Repro_service.Service.report;
}

(** The builders service mode covers: the tree protocols with a parent
    projection (["bfs"; "mst"; "mdst"; "spt"; "adhoc-bfs"]). *)
val known_algos : string list

(** The fixed-width builders [~packed] runs on the struct-of-arrays
    service engine (["bfs"; "spt"; "adhoc-bfs"]); the variable-width
    MST/MDST registers always stay on the boxed engine. *)
val packed_algos : string list

(** [fallback_for sched_name] — the escalation daemon for a cell: a
    daemon of a {e different} family than the primary (randomized
    central for deterministic/distributed primaries, distributed for
    the randomized central ones), so an escalation actually changes
    the adversary. *)
val fallback_for : string -> string * Repro_runtime.Scheduler.t

(** Run the full matrix over the pool. [gen] produces the starting
    topology from the cell RNG; [packed] runs the {!packed_algos} on
    the struct-of-arrays service engine (episode-equivalent, so the
    artifact is identical modulo wall-derived fields); [trace_dir],
    when given, streams one causal JSONL trace per cell into it (a
    traced cell always runs boxed — tracing needs the boxed engine). *)
val run_matrix :
  pool:Repro_runtime.Pool.t ->
  gen:(Random.State.t -> n:int -> Repro_graph.Graph.t) ->
  n:int ->
  seeds:int ->
  seed_base:int ->
  algos:string list ->
  traces:Repro_service.Churn.t list ->
  daemons:(string * Repro_runtime.Scheduler.t) list ->
  max_rounds:int ->
  retry_budget:int ->
  max_retries:int ->
  queries_per_round:int ->
  stall_window:int ->
  cycle_repeats:int ->
  ?packed:bool ->
  ?trace_dir:string ->
  unit ->
  cell list

(** {2 The big serve-bench tier (serve [--big], the [@servebench] alias)} *)

(** Default sizes and builders of the big tier: n in 1e3/1e4/1e5 (the
    CLI clamps with [--big-nmax]), BFS and SPT. *)
val big_ns : int list

val big_algos : string list

(** [measure_qps pool snap ~queries ~query_jobs ~seed_base] — time
    [queries] random pair lookups ({!Repro_service.Snapshot.answer})
    against a committed snapshot, fanned out over [query_jobs] seeded
    worker streams on the pool; returns [(qps, checksum)]. The
    checksum folds every answer in canonical worker order, so it is
    deterministic for a fixed [query_jobs] at any pool size — only the
    wall-derived qps varies run to run. *)
val measure_qps :
  Repro_runtime.Pool.t ->
  Repro_service.Snapshot.t ->
  queries:int ->
  query_jobs:int ->
  seed_base:int ->
  int * int

(** The same batch against the pre-snapshot read path
    ({!Repro_service.Service.answer} parent-chase over the committed
    parents) — the O(n)-per-query baseline. *)
val measure_chase_qps :
  Repro_runtime.Pool.t ->
  Repro_service.Snapshot.t ->
  queries:int ->
  query_jobs:int ->
  seed_base:int ->
  int * int

(** One baseline comparison row (cells with [n <= baseline_nmax]). *)
type baseline = {
  b_algo : string;
  b_trace : string;
  b_n : int;
  b_snapshot_qps : int;
  b_chase_qps : int;
}

(** [run_bench] — the big tier: one episode per builder x size x trace
    (synchronous daemon, random-connected graphs with m = 2n, one seed
    per cell), each followed by a timed query batch against the final
    committed snapshot; cells carry [tier = "big"] and [qps]. Episodes
    run sequentially on the calling domain — the query batches are
    what fans out over [pool] ([Pool.map] nested inside a pool worker
    would serialize them). *)
val run_bench :
  pool:Repro_runtime.Pool.t ->
  ns:int list ->
  algos:string list ->
  traces:Repro_service.Churn.t list ->
  seed_base:int ->
  queries:int ->
  query_jobs:int ->
  packed:bool ->
  baseline_nmax:int ->
  max_rounds:int ->
  retry_budget:int ->
  max_retries:int ->
  queries_per_round:int ->
  stall_window:int ->
  cycle_repeats:int ->
  unit ->
  cell list * baseline list

val csv_header : string
val csv_row : cell -> string

(** Whether the cell's episode ended silent and legal. *)
val recovered : cell -> bool

(** Cells that did not end silent and legal. *)
val failed : cell list -> int

(** One line naming a failing cell — the full key
    (algo/trace/sched/seed/tier) plus the watchdog verdict and how many
    of its churn events recovered; [repro_cli serve] prints this for
    every failing cell before exiting 1. *)
val failure_line : cell -> string

(** The SERVICE_repro.json artifact (schema:
    {!Repro_runtime.Schema.validate_service}). *)
val campaign_json :
  family:string ->
  n:int ->
  seeds:int ->
  seed_base:int ->
  traces:Repro_service.Churn.t list ->
  retry_budget:int ->
  max_retries:int ->
  queries_per_round:int ->
  cell list ->
  Repro_runtime.Metrics.Json.t
