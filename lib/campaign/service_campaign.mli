(** The service-mode churn matrix: builders x churn traces x daemons x
    seeds, one {!Repro_service.Service} episode per cell, driven
    through {!Repro_runtime.Pool} exactly like the chaos matrix — the
    cell list is enumerated in canonical order and each cell is pinned
    by its own RNG, so the artifact (SERVICE_repro.json) is
    byte-identical at any [--jobs] count. Backing for
    [repro_cli serve] and the [@service] alias. *)

type cell = {
  algo : string;
  trace_name : string;
  sched_name : string;
  fallback_name : string;
  seed_index : int;
  n0 : int;  (** starting topology *)
  m0 : int;
  report : Repro_service.Service.report;
}

(** The builders service mode covers: the four tree protocols with a
    parent projection (["bfs"; "mst"; "mdst"; "spt"]). *)
val known_algos : string list

(** [fallback_for sched_name] — the escalation daemon for a cell: a
    daemon of a {e different} family than the primary (randomized
    central for deterministic/distributed primaries, distributed for
    the randomized central ones), so an escalation actually changes
    the adversary. *)
val fallback_for : string -> string * Repro_runtime.Scheduler.t

(** Run the full matrix over the pool. [gen] produces the starting
    topology from the cell RNG; [trace_dir], when given, streams one
    causal JSONL trace per cell into it. *)
val run_matrix :
  pool:Repro_runtime.Pool.t ->
  gen:(Random.State.t -> n:int -> Repro_graph.Graph.t) ->
  n:int ->
  seeds:int ->
  seed_base:int ->
  algos:string list ->
  traces:Repro_service.Churn.t list ->
  daemons:(string * Repro_runtime.Scheduler.t) list ->
  max_rounds:int ->
  retry_budget:int ->
  max_retries:int ->
  queries_per_round:int ->
  stall_window:int ->
  cycle_repeats:int ->
  ?trace_dir:string ->
  unit ->
  cell list

val csv_header : string
val csv_row : cell -> string

(** Cells that did not end silent and legal. *)
val failed : cell list -> int

(** The SERVICE_repro.json artifact (schema:
    {!Repro_runtime.Schema.validate_service}). *)
val campaign_json :
  family:string ->
  n:int ->
  seeds:int ->
  seed_base:int ->
  traces:Repro_service.Churn.t list ->
  retry_budget:int ->
  max_retries:int ->
  queries_per_round:int ->
  cell list ->
  Repro_runtime.Metrics.Json.t
