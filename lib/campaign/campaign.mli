(** The chaos campaign matrix — builders × fault plans × daemons ×
    seeds — as a library.

    Extracted from the CLI so the same cells can be driven by
    [repro_cli chaos], the [@chaos] smoke alias, and the pool
    determinism tests. Every cell is hermetic: its [Random.State] is
    derived from [(seed_base, algo, plan, daemon, n, seed_index)] and
    pins the topology, the adversarial initial configuration, every
    daemon pick and every fault coin — which is what lets {!run_matrix}
    farm cells out to a {!Repro_runtime.Pool} and still return a
    byte-identical artifact at any [--jobs]. *)

(** One finished cell, in plain data (functor-free). *)
type cell = {
  algo : string;
  plan_name : string;
  sched_name : string;
  seed_index : int;  (** 1-based seed number within the cell's sweep *)
  n : int;
  m : int;
  base_rounds : int;
  rounds : int;
  steps : int;
  silent : bool;
  legal : bool;
  recovered : bool;
  verdict : string;
  max_bits : int;
  injections : Repro_runtime.Chaos.injection list;
}

(** Algorithms the matrix can dispatch ([Protocol.S] implementations):
    the CLI validates both its [run] and [chaos] arguments against
    this list. *)
val known_algos : string list

(** Algorithms with a cheap potential: only their Φ feeds the
    watchdog's stall detector and per-round trace records (shared with
    the service matrix, {!Service_campaign}). *)
val cheap_phi : string list

(** Collapse a cell coordinate to filename-safe characters (plans
    contain ['/'] and ['@'], daemons [':']). *)
val sanitize : string -> string

(** The topology's edge list as [[u; v; w]] JSON triples, for trace
    meta headers. *)
val edges_json : Repro_graph.Graph.t -> Repro_runtime.Metrics.Json.t

(** Run the full matrix on the pool; cells come back in canonical order
    (algorithms, then plans, then daemons, then seed indices, each in
    the order given) regardless of worker interleaving.

    [?trace_dir] streams one {!Repro_runtime.Events} JSONL trace per
    cell into the given (existing) directory, named
    [<algo>__<plan>__<sched>__s<seed>.jsonl] (cell coordinates
    sanitized to filename-safe characters). The sink draws no
    randomness, so traced and untraced campaigns yield byte-identical
    cell lists. Per-round Φ is recorded only for algorithms whose
    potential is cheap (bfs, spt).

    @raise Failure on an algorithm name outside {!known_algos}. *)
val run_matrix :
  pool:Repro_runtime.Pool.t ->
  gen:(Random.State.t -> n:int -> Repro_graph.Graph.t) ->
  n:int ->
  seeds:int ->
  seed_base:int ->
  algos:string list ->
  plans:Repro_runtime.Fault.Plan.t list ->
  daemons:(string * Repro_runtime.Scheduler.t) list ->
  max_rounds:int ->
  max_injections:int ->
  stall_window:int ->
  cycle_repeats:int ->
  ?trace_dir:string ->
  unit ->
  cell list

val failed : cell list -> int

val csv_header : string
val csv_row : cell -> string

(** The CHAOS_repro.json document: [{meta, cells, summary}], field
    order pinned (the smoke gate compares artifacts byte-for-byte
    across [--jobs]). *)
val campaign_json :
  family:string ->
  n:int ->
  seeds:int ->
  seed_base:int ->
  max_rounds:int ->
  max_injections:int ->
  cell list ->
  Repro_runtime.Metrics.Json.t
