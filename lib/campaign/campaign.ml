open Repro_graph
open Repro_runtime
open Repro_core
open Repro_baselines
module Json = Metrics.Json

type cell = {
  algo : string;
  plan_name : string;
  sched_name : string;
  seed_index : int;
  n : int;
  m : int;
  base_rounds : int;
  rounds : int;
  steps : int;
  silent : bool;
  legal : bool;
  recovered : bool;
  verdict : string;
  max_bits : int;
  injections : Chaos.injection list;
}

let known_algos =
  [
    "bfs"; "mst"; "mdst"; "spt"; "adhoc-bfs"; "compact-mst"; "fullinfo-mst";
    "fullinfo-mdst";
  ]

(* Potential tracking (watchdog stall detector, per-round phi in event
   traces) only where the potential is cheap; the MST potential runs the
   certification prover. *)
let cheap_phi = [ "bfs"; "spt" ]

let run_episode algo g sched rng ~plan ~max_rounds ~max_injections ~stall_window
    ~cycle_repeats ?events () =
  let generic (type s) (module P : Protocol.S with type state = s) ~watch_phi =
    let module C = Chaos.Make (P) in
    let e =
      C.run_episode ~max_rounds ~max_injections ~watch_phi ~stall_window ~cycle_repeats
        ?events g sched rng plan
    in
    ( e.C.base_rounds,
      e.C.rounds,
      e.C.steps,
      e.C.silent,
      e.C.legal,
      e.C.recovered,
      Watchdog.verdict_name e.C.verdict,
      e.C.max_bits,
      e.C.injections )
  in
  match algo with
  | "bfs" -> generic (module Bfs_builder.P) ~watch_phi:true
  | "mst" -> generic (module Mst_builder.P) ~watch_phi:false
  | "mdst" -> generic (module Mdst_builder.P) ~watch_phi:false
  | "spt" -> generic (module Spt_builder.P) ~watch_phi:true
  | "adhoc-bfs" -> generic (module Adhoc_bfs.P) ~watch_phi:false
  | "compact-mst" -> generic (module Compact_mst.P) ~watch_phi:false
  | "fullinfo-mst" -> generic (module Fullinfo.Mst_instance.P) ~watch_phi:false
  | "fullinfo-mdst" -> generic (module Fullinfo.Mdst_instance.P) ~watch_phi:false
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

(* Per-cell trace filenames embed the cell coordinates; plan names
   contain '/' and '@', daemon names ':', so anything outside the
   filename-safe alphabet collapses to '-'. *)
let sanitize s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-') as c -> c | _ -> '-')
    s

let edges_json g =
  Json.List
    (Array.to_list (Graph.edges g)
    |> List.map (fun (e : Graph.Edge.t) ->
           Json.List [ Json.Int e.u; Json.Int e.v; Json.Int e.w ]))

let run_matrix ~pool ~gen ~n ~seeds ~seed_base ~algos ~plans ~daemons ~max_rounds
    ~max_injections ~stall_window ~cycle_repeats ?trace_dir () =
  (* The cell list is enumerated sequentially in canonical order; the
     pool maps over it and hands results back in the same order, so
     the artifact is independent of worker interleaving. *)
  let specs =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun plan ->
            let plan_name = Fault.Plan.name plan in
            List.concat_map
              (fun (sched_name, sched) ->
                List.init seeds (fun i -> (algo, plan, plan_name, sched_name, sched, i + 1)))
              daemons)
          plans)
      algos
  in
  Pool.map pool
    (fun (algo, plan, plan_name, sched_name, sched, s) ->
      (* One seed pins the topology, the initial configuration, every
         daemon pick and every fault coin of the cell. *)
      let rng =
        Random.State.make [| seed_base; Hashtbl.hash (algo, plan_name, sched_name); n; s |]
      in
      let g = gen rng ~n in
      (* When tracing, each cell streams to its own JSONL file; the sink
         never consumes RNG, so traced and untraced campaigns produce
         byte-identical artifacts. *)
      let oc, events =
        match trace_dir with
        | None -> (None, None)
        | Some dir ->
            let file =
              Filename.concat dir
                (Printf.sprintf "%s__%s__%s__s%d.jsonl" (sanitize algo)
                   (sanitize plan_name) (sanitize sched_name) s)
            in
            let oc = open_out file in
            let sink =
              Events.stream ~record_phi:(List.mem algo cheap_phi) oc
            in
            Events.meta sink
              [
                ("algo", Json.Str algo);
                ("plan", Json.Str plan_name);
                ("sched", Json.Str sched_name);
                ("seed", Json.Int s);
                ("n", Json.Int (Graph.n g));
                ("m", Json.Int (Graph.m g));
                ("edges", edges_json g);
              ];
            (Some oc, Some sink)
      in
      let ( base_rounds,
            rounds,
            steps,
            silent,
            legal,
            recovered,
            verdict,
            max_bits,
            injections ) =
        Fun.protect
          ~finally:(fun () -> Option.iter close_out oc)
          (fun () ->
            run_episode algo g sched rng ~plan ~max_rounds ~max_injections
              ~stall_window ~cycle_repeats ?events ())
      in
      {
        algo;
        plan_name;
        sched_name;
        seed_index = s;
        n = Graph.n g;
        m = Graph.m g;
        base_rounds;
        rounds;
        steps;
        silent;
        legal;
        recovered;
        verdict;
        max_bits;
        injections;
      })
    specs

let failed cells = List.length (List.filter (fun c -> not c.recovered) cells)

let csv_header = "algo,plan,sched,seed,recovered,verdict,base_rounds,rounds,steps,injections"

let csv_row c =
  Printf.sprintf "%s,%s,%s,%d,%b,%s,%d,%d,%d,%d" c.algo c.plan_name c.sched_name
    c.seed_index c.recovered c.verdict c.base_rounds c.rounds c.steps
    (List.length c.injections)

let injection_json (i : Chaos.injection) =
  let opt_int = function Some v -> Json.Int v | None -> Json.Null in
  Json.Obj
    [
      ("round", Json.Int i.Chaos.round);
      ("nodes", Json.List (List.map (fun v -> Json.Int v) i.Chaos.nodes));
      ("gap", opt_int i.Chaos.gap);
      ("radius", opt_int i.Chaos.radius);
      ("touched", Json.Int i.Chaos.touched);
    ]

let cell_json c =
  Json.Obj
    [
      ("algo", Json.Str c.algo);
      ("plan", Json.Str c.plan_name);
      ("sched", Json.Str c.sched_name);
      ("seed", Json.Int c.seed_index);
      ("n", Json.Int c.n);
      ("m", Json.Int c.m);
      ("base_rounds", Json.Int c.base_rounds);
      ("rounds", Json.Int c.rounds);
      ("steps", Json.Int c.steps);
      ("silent", Json.Bool c.silent);
      ("legal", Json.Bool c.legal);
      ("recovered", Json.Bool c.recovered);
      ("verdict", Json.Str c.verdict);
      ("max_bits", Json.Int c.max_bits);
      ("injections", Json.List (List.map injection_json c.injections));
    ]

let campaign_json ~family ~n ~seeds ~seed_base ~max_rounds ~max_injections cells =
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("experiment", Json.Str "E8-chaos");
            ("graph", Json.Str family);
            ("n", Json.Int n);
            ("seeds", Json.Int seeds);
            ("seed_base", Json.Int seed_base);
            ("max_rounds", Json.Int max_rounds);
            ("max_injections", Json.Int max_injections);
          ] );
      ("cells", Json.List (List.map cell_json cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("recovered", Json.Int (List.length cells - failed cells));
            ("failed", Json.Int (failed cells));
          ] );
    ]
