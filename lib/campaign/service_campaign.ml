open Repro_graph
open Repro_runtime
open Repro_core
open Repro_service
module Adhoc_bfs = Repro_baselines.Adhoc_bfs
module Json = Metrics.Json

type cell = {
  algo : string;
  trace_name : string;
  sched_name : string;
  fallback_name : string;
  seed_index : int;
  n0 : int;
  m0 : int;
  tier : string;
  qps : int option;
  report : Service.report;
}

let known_algos = [ "bfs"; "mst"; "mdst"; "spt"; "adhoc-bfs" ]

(* The fixed-width builders the struct-of-arrays service engine covers;
   [--packed] silently keeps the others (variable-width MST/MDST
   registers) on the boxed engine. *)
let packed_algos = [ "bfs"; "spt"; "adhoc-bfs" ]
let cheap_phi = Campaign.cheap_phi

(* Parent projections over the builders' register layouts. The
   distance layers (BFS/SPT) repair by re-parenting freely and may
   transiently cycle; the PLS layer inside MST/MDST moves one
   loop-free edge swap at a time, so those two arm the monitor. *)
module Bfs_tree = struct
  include Bfs_builder.P

  let parent_of (s : St_layer.t) = s.St_layer.parent
  let loop_free = false
end

module Mst_tree = struct
  include Mst_builder.P

  let parent_of (s : Mst_builder.state) = s.Mst_builder.st.St_layer.parent
  let loop_free = true
end

module Mdst_tree = struct
  include Mdst_builder.P

  let parent_of (s : Mdst_builder.state) = s.Mdst_builder.st.St_layer.parent
  let loop_free = true
end

module Spt_tree = struct
  include Spt_builder.P

  let parent_of (s : Spt_builder.state) = s.Spt_builder.parent
  let loop_free = false
end

module Adhoc_tree = struct
  include Adhoc_bfs.P

  let parent_of (s : Adhoc_bfs.state) = s.Adhoc_bfs.parent
  let loop_free = false
end

(* The packed twins: same parent projections over the fixed-width
   codecs, for [Service.Make_packed]. *)
module Bfs_tree_packed = struct
  include Bfs_builder.Packed

  let parent_of (s : St_layer.t) = s.St_layer.parent
  let loop_free = false
end

module Spt_tree_packed = struct
  include Spt_builder.Packed

  let parent_of (s : Spt_builder.state) = s.Spt_builder.parent
  let loop_free = false
end

module Adhoc_tree_packed = struct
  include Adhoc_bfs.Packed

  let parent_of (s : Adhoc_bfs.state) = s.Adhoc_bfs.parent
  let loop_free = false
end

let fallback_for sched_name =
  if sched_name = "random" then ("distributed", Scheduler.Distributed 0.5)
  else ("random", Scheduler.Central Scheduler.Random_daemon)

let run_episode algo g ~sched ~fallback rng ~trace ~max_rounds ~retry_budget
    ~max_retries ~queries_per_round ~stall_window ~cycle_repeats ?(packed = false)
    ?snapshot ?events () =
  let generic (type s) (module P : Service.TREE_PROTOCOL with type state = s)
      ~watch_phi =
    let module S = Service.Make (P) in
    S.run ~max_rounds ~stall_window ~cycle_repeats ~retry_budget ~max_retries
      ~queries_per_round ~watch_phi ?snapshot ?events g ~sched ~fallback rng trace
  in
  let generic_packed (type s)
      (module P : Service.PACKED_TREE_PROTOCOL with type state = s) ~watch_phi =
    let module S = Service.Make_packed (P) in
    S.run ~max_rounds ~stall_window ~cycle_repeats ~retry_budget ~max_retries
      ~queries_per_round ~watch_phi ?snapshot g ~sched ~fallback rng trace
  in
  (* Causal tracing needs the boxed engine's event plumbing; episodes
     are engine-equivalent anyway (pinned by test_service), so a traced
     cell just runs boxed. *)
  let packed = packed && events = None in
  match algo with
  | "bfs" ->
      if packed then generic_packed (module Bfs_tree_packed) ~watch_phi:true
      else generic (module Bfs_tree) ~watch_phi:true
  | "mst" -> generic (module Mst_tree) ~watch_phi:false
  | "mdst" -> generic (module Mdst_tree) ~watch_phi:false
  | "spt" ->
      if packed then generic_packed (module Spt_tree_packed) ~watch_phi:true
      else generic (module Spt_tree) ~watch_phi:true
  | "adhoc-bfs" ->
      if packed then generic_packed (module Adhoc_tree_packed) ~watch_phi:true
      else generic (module Adhoc_tree) ~watch_phi:true
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

let run_matrix ~pool ~gen ~n ~seeds ~seed_base ~algos ~traces ~daemons ~max_rounds
    ~retry_budget ~max_retries ~queries_per_round ~stall_window ~cycle_repeats
    ?(packed = false) ?trace_dir () =
  (* Canonical enumeration + per-cell RNG, exactly like the chaos
     matrix: Pool.map returns results in spec order, so the artifact is
     independent of --jobs. *)
  let specs =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun trace ->
            let trace_name = Churn.name trace in
            List.concat_map
              (fun (sched_name, sched) ->
                List.init seeds (fun i ->
                    (algo, trace, trace_name, sched_name, sched, i + 1)))
              daemons)
          traces)
      algos
  in
  Pool.map pool
    (fun (algo, trace, trace_name, sched_name, sched, s) ->
      let rng =
        Random.State.make
          [| seed_base; Hashtbl.hash (algo, trace_name, sched_name); n; s |]
      in
      let g = gen rng ~n in
      let fallback_name, fallback = fallback_for sched_name in
      let oc, events =
        match trace_dir with
        | None -> (None, None)
        | Some dir ->
            let file =
              Filename.concat dir
                (Printf.sprintf "%s__%s__%s__s%d.jsonl" (Campaign.sanitize algo)
                   (Campaign.sanitize trace_name) (Campaign.sanitize sched_name) s)
            in
            let oc = open_out file in
            let sink = Events.stream ~record_phi:(List.mem algo cheap_phi) oc in
            Events.meta sink
              [
                ("algo", Json.Str algo);
                ("trace", Json.Str trace_name);
                ("sched", Json.Str sched_name);
                ("fallback", Json.Str fallback_name);
                ("seed", Json.Int s);
                ("n", Json.Int (Graph.n g));
                ("m", Json.Int (Graph.m g));
                ("edges", Campaign.edges_json g);
              ];
            (Some oc, Some sink)
      in
      let report =
        Fun.protect
          ~finally:(fun () -> Option.iter close_out oc)
          (fun () ->
            run_episode algo g ~sched ~fallback rng ~trace ~max_rounds
              ~retry_budget ~max_retries ~queries_per_round ~stall_window
              ~cycle_repeats ~packed ?events ())
      in
      {
        algo;
        trace_name;
        sched_name;
        fallback_name;
        seed_index = s;
        n0 = Graph.n g;
        m0 = Graph.m g;
        tier = "std";
        qps = None;
        report;
      })
    specs

(* ------------------------------------------------------------------ *)
(* The big serve-bench tier (serve --big, the @servebench alias):
   builder x size x churn trace on random-connected graphs under the
   synchronous daemon, one seed per cell like the big bench tier, then
   a timed batch of pair queries against the episode's final committed
   snapshot. Episodes run {e sequentially} — a query batch fans out
   over the pool, and [Pool.map] nested inside a pool worker would
   serialize it. *)

let big_ns = [ 1_000; 10_000; 100_000 ]
let big_algos = [ "bfs"; "spt" ]

let answer_checksum (a : Snapshot.answer) =
  a.Snapshot.a_parent + (3 * a.Snapshot.a_root) + (5 * a.Snapshot.a_degree)
  + (if a.Snapshot.a_ancestor then 7 else 0)
  + (11 * a.Snapshot.a_nca) + (13 * a.Snapshot.a_route)

(* Chunk [queries] across [query_jobs] seeded worker streams and time
   the whole batch. Per-worker results come back in worker order
   (Pool.map's determinism contract), so the folded checksum is stable
   for a fixed [query_jobs] at any pool size — only the wall-derived
   qps varies. *)
let timed_batch pool ~queries ~query_jobs ~seed_base worker =
  let jobs = max 1 query_jobs in
  let per = queries / jobs and rem = queries mod jobs in
  let plan = List.init jobs (fun w -> (w, per + if w < rem then 1 else 0)) in
  let t0 = Unix.gettimeofday () in
  let sums =
    Pool.map pool
      (fun (w, k) -> worker (Random.State.make [| seed_base; 0x9E5; w |]) k)
      plan
  in
  let wall = Unix.gettimeofday () -. t0 in
  let qps = int_of_float (float_of_int queries /. Float.max 1e-9 wall) in
  (qps, List.fold_left ( + ) 0 sums)

let measure_qps pool snap ~queries ~query_jobs ~seed_base =
  let n = Snapshot.n snap in
  timed_batch pool ~queries ~query_jobs ~seed_base (fun rng k ->
      let acc = ref 0 in
      for _ = 1 to k do
        let v = Random.State.int rng n in
        let u = Random.State.int rng n in
        acc := !acc + answer_checksum (Snapshot.answer snap ~v ~u)
      done;
      !acc)

(* The pre-snapshot read path timed the same way — the O(n)-per-query
   parent-chase baseline the PERFORMANCE.md speedup table quotes. *)
let measure_chase_qps pool snap ~queries ~query_jobs ~seed_base =
  let n = Snapshot.n snap in
  let parents = Array.init n (Snapshot.parent snap) in
  timed_batch pool ~queries ~query_jobs ~seed_base (fun rng k ->
      let acc = ref 0 in
      for _ = 1 to k do
        let v = Random.State.int rng n in
        let parent, root, degree = Service.answer parents v in
        acc := !acc + parent + (3 * root) + (5 * degree)
      done;
      !acc)

type baseline = {
  b_algo : string;
  b_trace : string;
  b_n : int;
  b_snapshot_qps : int;
  b_chase_qps : int;
}

let run_bench ~pool ~ns ~algos ~traces ~seed_base ~queries ~query_jobs ~packed
    ~baseline_nmax ~max_rounds ~retry_budget ~max_retries ~queries_per_round
    ~stall_window ~cycle_repeats () =
  let sched_name = "synchronous" and sched = Scheduler.Synchronous in
  let fallback_name, fallback = fallback_for sched_name in
  let specs =
    List.concat_map
      (fun algo ->
        List.concat_map (fun n -> List.map (fun t -> (algo, n, t)) traces) ns)
      algos
  in
  let baselines = ref [] in
  let cells =
    List.map
      (fun (algo, n, trace) ->
        let trace_name = Churn.name trace in
        let rng =
          Random.State.make
            [| seed_base; Hashtbl.hash (algo, trace_name, sched_name); n; 1 |]
        in
        let g = Generators.random_connected rng ~n ~m:(2 * n) in
        let snapshot = Snapshot.create () in
        let report =
          run_episode algo g ~sched ~fallback rng ~trace ~max_rounds ~retry_budget
            ~max_retries ~queries_per_round ~stall_window ~cycle_repeats ~packed
            ~snapshot ()
        in
        let qps, _checksum =
          measure_qps pool snapshot ~queries ~query_jobs ~seed_base
        in
        if n <= baseline_nmax then begin
          let chase, _ =
            measure_chase_qps pool snapshot ~queries ~query_jobs ~seed_base
          in
          baselines :=
            {
              b_algo = algo;
              b_trace = trace_name;
              b_n = n;
              b_snapshot_qps = qps;
              b_chase_qps = chase;
            }
            :: !baselines
        end;
        {
          algo;
          trace_name;
          sched_name;
          fallback_name;
          seed_index = 1;
          n0 = Graph.n g;
          m0 = Graph.m g;
          tier = "big";
          qps = Some qps;
          report;
        })
      specs
  in
  (cells, List.rev !baselines)

let recovered c = c.report.Service.recovered

let failed cells = List.length (List.filter (fun c -> not (recovered c)) cells)

(* The full cell key plus how the watchdog saw the episode die — what
   [repro_cli serve] prints for every failing cell before exiting 1. *)
let failure_line c =
  let r = c.report in
  let done_events =
    List.length (List.filter (fun (e : Service.event_outcome) -> e.Service.recovered)
        r.Service.events)
  in
  Printf.sprintf
    "algo=%s trace=%s sched=%s seed=%d tier=%s: verdict=%s (%d/%d events recovered)"
    c.algo c.trace_name c.sched_name c.seed_index c.tier
    (Watchdog.verdict_name r.Service.verdict)
    done_events
    (List.length r.Service.events)

let csv_header =
  "algo,trace,sched,fallback,seed,recovered,verdict,base_rounds,rounds,steps,\
   events,queries,stale,violations,retries,escalations,restarts,crashes"

let totals (r : Service.report) =
  List.fold_left
    (fun (q, st, vl, re, es, rs, cr) (e : Service.event_outcome) ->
      ( q + e.Service.queries,
        st + e.Service.stale,
        vl + e.Service.violations,
        re + e.Service.retries,
        es + e.Service.escalations,
        rs + e.Service.restarts,
        cr + e.Service.crashes ))
    (0, 0, 0, 0, 0, 0, 0) r.Service.events

let csv_row c =
  let r = c.report in
  let q, st, vl, re, es, rs, cr = totals r in
  Printf.sprintf "%s,%s,%s,%s,%d,%b,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" c.algo
    c.trace_name c.sched_name c.fallback_name c.seed_index r.Service.recovered
    (Watchdog.verdict_name r.Service.verdict)
    r.Service.base_rounds r.Service.rounds r.Service.steps
    (List.length r.Service.events)
    q st vl re es rs cr

let event_json (e : Service.event_outcome) =
  Json.Obj
    [
      ("op", Json.Str e.Service.op);
      ("round", Json.Int e.Service.apply_round);
      ("gap", match e.Service.gap with Some g -> Json.Int g | None -> Json.Null);
      ("steps", Json.Int e.Service.steps);
      ("queries", Json.Int e.Service.queries);
      ("stale", Json.Int e.Service.stale);
      ("violations", Json.Int e.Service.violations);
      ("retries", Json.Int e.Service.retries);
      ("escalations", Json.Int e.Service.escalations);
      ("restarts", Json.Int e.Service.restarts);
      ("crashes", Json.Int e.Service.crashes);
      ("recovered", Json.Bool e.Service.recovered);
    ]

let cell_json c =
  let r = c.report in
  let q, st, vl, re, es, rs, cr = totals r in
  Json.Obj
    ([
       ("algo", Json.Str c.algo);
       ("trace", Json.Str c.trace_name);
       ("sched", Json.Str c.sched_name);
       ("fallback", Json.Str c.fallback_name);
       ("seed", Json.Int c.seed_index);
       ("tier", Json.Str c.tier);
       ("n0", Json.Int c.n0);
       ("m0", Json.Int c.m0);
       ("n_final", Json.Int r.Service.n_final);
       ("m_final", Json.Int r.Service.m_final);
       ("base_rounds", Json.Int r.Service.base_rounds);
       ("rounds", Json.Int r.Service.rounds);
       ("steps", Json.Int r.Service.steps);
       ("recovered", Json.Bool r.Service.recovered);
       ("verdict", Json.Str (Watchdog.verdict_name r.Service.verdict));
       ("max_bits", Json.Int r.Service.max_bits);
     ]
    @ (match c.qps with Some rate -> [ ("qps", Json.Int rate) ] | None -> [])
    @ [
        ( "totals",
          Json.Obj
            [
              ("queries", Json.Int q);
              ("stale", Json.Int st);
              ("violations", Json.Int vl);
              ("retries", Json.Int re);
              ("escalations", Json.Int es);
              ("restarts", Json.Int rs);
              ("crashes", Json.Int cr);
            ] );
        ("events", Json.List (List.map event_json r.Service.events));
      ])

let campaign_json ~family ~n ~seeds ~seed_base ~traces ~retry_budget ~max_retries
    ~queries_per_round cells =
  let sum f =
    List.fold_left (fun acc c -> acc + f c.report) 0 cells
  in
  let n_events = sum (fun r -> List.length r.Service.events) in
  let n_escalations =
    sum (fun r ->
        List.fold_left
          (fun a (e : Service.event_outcome) -> a + e.Service.escalations)
          0 r.Service.events)
  in
  let n_restarts =
    sum (fun r ->
        List.fold_left
          (fun a (e : Service.event_outcome) -> a + e.Service.restarts)
          0 r.Service.events)
  in
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("experiment", Json.Str "E13-service");
            ("graph", Json.Str family);
            ("n", Json.Int n);
            ("seeds", Json.Int seeds);
            ("seed_base", Json.Int seed_base);
            ("retry_budget", Json.Int retry_budget);
            ("max_retries", Json.Int max_retries);
            ("queries_per_round", Json.Int queries_per_round);
            ( "traces",
              Json.List (List.map (fun t -> Json.Str (Churn.name t)) traces) );
          ] );
      ("cells", Json.List (List.map cell_json cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("recovered", Json.Int (List.length cells - failed cells));
            ("failed", Json.Int (failed cells));
            ("events", Json.Int n_events);
            ("escalations", Json.Int n_escalations);
            ("restarts", Json.Int n_restarts);
          ] );
    ]
