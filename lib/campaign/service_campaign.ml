open Repro_graph
open Repro_runtime
open Repro_core
open Repro_service
module Json = Metrics.Json

type cell = {
  algo : string;
  trace_name : string;
  sched_name : string;
  fallback_name : string;
  seed_index : int;
  n0 : int;
  m0 : int;
  report : Service.report;
}

let known_algos = [ "bfs"; "mst"; "mdst"; "spt" ]
let cheap_phi = Campaign.cheap_phi

(* Parent projections over the builders' register layouts. The
   distance layers (BFS/SPT) repair by re-parenting freely and may
   transiently cycle; the PLS layer inside MST/MDST moves one
   loop-free edge swap at a time, so those two arm the monitor. *)
module Bfs_tree = struct
  include Bfs_builder.P

  let parent_of (s : St_layer.t) = s.St_layer.parent
  let loop_free = false
end

module Mst_tree = struct
  include Mst_builder.P

  let parent_of (s : Mst_builder.state) = s.Mst_builder.st.St_layer.parent
  let loop_free = true
end

module Mdst_tree = struct
  include Mdst_builder.P

  let parent_of (s : Mdst_builder.state) = s.Mdst_builder.st.St_layer.parent
  let loop_free = true
end

module Spt_tree = struct
  include Spt_builder.P

  let parent_of (s : Spt_builder.state) = s.Spt_builder.parent
  let loop_free = false
end

let fallback_for sched_name =
  if sched_name = "random" then ("distributed", Scheduler.Distributed 0.5)
  else ("random", Scheduler.Central Scheduler.Random_daemon)

let run_episode algo g ~sched ~fallback rng ~trace ~max_rounds ~retry_budget
    ~max_retries ~queries_per_round ~stall_window ~cycle_repeats ?events () =
  let generic (type s) (module P : Service.TREE_PROTOCOL with type state = s)
      ~watch_phi =
    let module S = Service.Make (P) in
    S.run ~max_rounds ~stall_window ~cycle_repeats ~retry_budget ~max_retries
      ~queries_per_round ~watch_phi ?events g ~sched ~fallback rng trace
  in
  match algo with
  | "bfs" -> generic (module Bfs_tree) ~watch_phi:true
  | "mst" -> generic (module Mst_tree) ~watch_phi:false
  | "mdst" -> generic (module Mdst_tree) ~watch_phi:false
  | "spt" -> generic (module Spt_tree) ~watch_phi:true
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

let run_matrix ~pool ~gen ~n ~seeds ~seed_base ~algos ~traces ~daemons ~max_rounds
    ~retry_budget ~max_retries ~queries_per_round ~stall_window ~cycle_repeats
    ?trace_dir () =
  (* Canonical enumeration + per-cell RNG, exactly like the chaos
     matrix: Pool.map returns results in spec order, so the artifact is
     independent of --jobs. *)
  let specs =
    List.concat_map
      (fun algo ->
        List.concat_map
          (fun trace ->
            let trace_name = Churn.name trace in
            List.concat_map
              (fun (sched_name, sched) ->
                List.init seeds (fun i ->
                    (algo, trace, trace_name, sched_name, sched, i + 1)))
              daemons)
          traces)
      algos
  in
  Pool.map pool
    (fun (algo, trace, trace_name, sched_name, sched, s) ->
      let rng =
        Random.State.make
          [| seed_base; Hashtbl.hash (algo, trace_name, sched_name); n; s |]
      in
      let g = gen rng ~n in
      let fallback_name, fallback = fallback_for sched_name in
      let oc, events =
        match trace_dir with
        | None -> (None, None)
        | Some dir ->
            let file =
              Filename.concat dir
                (Printf.sprintf "%s__%s__%s__s%d.jsonl" (Campaign.sanitize algo)
                   (Campaign.sanitize trace_name) (Campaign.sanitize sched_name) s)
            in
            let oc = open_out file in
            let sink = Events.stream ~record_phi:(List.mem algo cheap_phi) oc in
            Events.meta sink
              [
                ("algo", Json.Str algo);
                ("trace", Json.Str trace_name);
                ("sched", Json.Str sched_name);
                ("fallback", Json.Str fallback_name);
                ("seed", Json.Int s);
                ("n", Json.Int (Graph.n g));
                ("m", Json.Int (Graph.m g));
                ("edges", Campaign.edges_json g);
              ];
            (Some oc, Some sink)
      in
      let report =
        Fun.protect
          ~finally:(fun () -> Option.iter close_out oc)
          (fun () ->
            run_episode algo g ~sched ~fallback rng ~trace ~max_rounds
              ~retry_budget ~max_retries ~queries_per_round ~stall_window
              ~cycle_repeats ?events ())
      in
      {
        algo;
        trace_name;
        sched_name;
        fallback_name;
        seed_index = s;
        n0 = Graph.n g;
        m0 = Graph.m g;
        report;
      })
    specs

let failed cells =
  List.length (List.filter (fun c -> not c.report.Service.recovered) cells)

let csv_header =
  "algo,trace,sched,fallback,seed,recovered,verdict,base_rounds,rounds,steps,\
   events,queries,stale,violations,retries,escalations,restarts,crashes"

let totals (r : Service.report) =
  List.fold_left
    (fun (q, st, vl, re, es, rs, cr) (e : Service.event_outcome) ->
      ( q + e.Service.queries,
        st + e.Service.stale,
        vl + e.Service.violations,
        re + e.Service.retries,
        es + e.Service.escalations,
        rs + e.Service.restarts,
        cr + e.Service.crashes ))
    (0, 0, 0, 0, 0, 0, 0) r.Service.events

let csv_row c =
  let r = c.report in
  let q, st, vl, re, es, rs, cr = totals r in
  Printf.sprintf "%s,%s,%s,%s,%d,%b,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d" c.algo
    c.trace_name c.sched_name c.fallback_name c.seed_index r.Service.recovered
    (Watchdog.verdict_name r.Service.verdict)
    r.Service.base_rounds r.Service.rounds r.Service.steps
    (List.length r.Service.events)
    q st vl re es rs cr

let event_json (e : Service.event_outcome) =
  Json.Obj
    [
      ("op", Json.Str e.Service.op);
      ("round", Json.Int e.Service.apply_round);
      ("gap", match e.Service.gap with Some g -> Json.Int g | None -> Json.Null);
      ("steps", Json.Int e.Service.steps);
      ("queries", Json.Int e.Service.queries);
      ("stale", Json.Int e.Service.stale);
      ("violations", Json.Int e.Service.violations);
      ("retries", Json.Int e.Service.retries);
      ("escalations", Json.Int e.Service.escalations);
      ("restarts", Json.Int e.Service.restarts);
      ("crashes", Json.Int e.Service.crashes);
      ("recovered", Json.Bool e.Service.recovered);
    ]

let cell_json c =
  let r = c.report in
  let q, st, vl, re, es, rs, cr = totals r in
  Json.Obj
    [
      ("algo", Json.Str c.algo);
      ("trace", Json.Str c.trace_name);
      ("sched", Json.Str c.sched_name);
      ("fallback", Json.Str c.fallback_name);
      ("seed", Json.Int c.seed_index);
      ("n0", Json.Int c.n0);
      ("m0", Json.Int c.m0);
      ("n_final", Json.Int r.Service.n_final);
      ("m_final", Json.Int r.Service.m_final);
      ("base_rounds", Json.Int r.Service.base_rounds);
      ("rounds", Json.Int r.Service.rounds);
      ("steps", Json.Int r.Service.steps);
      ("recovered", Json.Bool r.Service.recovered);
      ("verdict", Json.Str (Watchdog.verdict_name r.Service.verdict));
      ("max_bits", Json.Int r.Service.max_bits);
      ( "totals",
        Json.Obj
          [
            ("queries", Json.Int q);
            ("stale", Json.Int st);
            ("violations", Json.Int vl);
            ("retries", Json.Int re);
            ("escalations", Json.Int es);
            ("restarts", Json.Int rs);
            ("crashes", Json.Int cr);
          ] );
      ("events", Json.List (List.map event_json r.Service.events));
    ]

let campaign_json ~family ~n ~seeds ~seed_base ~traces ~retry_budget ~max_retries
    ~queries_per_round cells =
  let sum f =
    List.fold_left (fun acc c -> acc + f c.report) 0 cells
  in
  let n_events = sum (fun r -> List.length r.Service.events) in
  let n_escalations =
    sum (fun r ->
        List.fold_left
          (fun a (e : Service.event_outcome) -> a + e.Service.escalations)
          0 r.Service.events)
  in
  let n_restarts =
    sum (fun r ->
        List.fold_left
          (fun a (e : Service.event_outcome) -> a + e.Service.restarts)
          0 r.Service.events)
  in
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("experiment", Json.Str "E13-service");
            ("graph", Json.Str family);
            ("n", Json.Int n);
            ("seeds", Json.Int seeds);
            ("seed_base", Json.Int seed_base);
            ("retry_budget", Json.Int retry_budget);
            ("max_retries", Json.Int max_retries);
            ("queries_per_round", Json.Int queries_per_round);
            ( "traces",
              Json.List (List.map (fun t -> Json.Str (Churn.name t)) traces) );
          ] );
      ("cells", Json.List (List.map cell_json cells));
      ( "summary",
        Json.Obj
          [
            ("cells", Json.Int (List.length cells));
            ("recovered", Json.Int (List.length cells - failed cells));
            ("failed", Json.Int (failed cells));
            ("events", Json.Int n_events);
            ("escalations", Json.Int n_escalations);
            ("restarts", Json.Int n_restarts);
          ] );
    ]
