(** The rooted-spanning-tree layer: silent self-stabilizing leader
    election + tree maintenance, the "Instruction 1" of Algorithms 1-3
    (the paper points to Datta–Larmore–Vemula for this building block).

    Every node keeps [(parent, root, dist)]. Legal configurations: the
    parent pointers form a spanning tree rooted at the minimum-id node,
    every [root] field names it, and [dist] is the hop distance to it in
    the tree. Convergence from arbitrary states follows the classic
    pattern: syntactically broken states reset to self-root; strictly
    smaller roots are joined; distances repair along parents and
    count-to-[n] kills parent cycles and orphaned root claims.

    The layer comes in two shapes:
    - [keep_shape:false] — additionally joins a same-root neighbor at a
      smaller distance, which makes the stable tree a {e BFS} tree (used
      by [Bfs_builder]);
    - [keep_shape:true] — joins only strictly smaller roots, so the
      stable tree keeps whatever shape upper layers (MST/MDST
      improvement) give it, repairing distances but not edges. *)

type t = { parent : int; root : int; dist : int }

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val size_bits : int -> t -> int

(** Rule tag for a layer transition, for [Protocol.S.classify]:
    ["reset"] (became its own root), ["join-root"] (adopted a new root),
    ["reparent"] (changed parent inside the same root's tree) or
    ["dist"] (distance repair only). *)
val classify : t -> t -> string

(** A node's boot state: its own one-node tree. *)
val self_root : int -> t

val random : Random.State.t -> n:int -> t

(** One layer step. [get] projects the layer's fields out of the full
    protocol state. [None] = the layer is quiescent at this node. *)
val step : 'a Repro_runtime.View.t -> get:('a -> t) -> keep_shape:bool -> t option

(** [valid view ~get] — the layer's local consistency predicate (the
    guard that must hold before higher layers may act at this node). *)
val valid : 'a Repro_runtime.View.t -> get:('a -> t) -> bool

(** {2 Packed representation}

    The layer's register is three int lanes — 0 = [parent], 1 = [root],
    2 = [dist] — shared by every packed protocol that embeds it (see
    SCALING.md). *)

val words : int

val pack : t -> int array
val unpack : int array -> t

(** [step ~get:Fun.id] on the flat bank: same guard, same tie-breaking,
    writing the packed move into [pv.move] (the {!Repro_runtime.Protocol.PACKED}
    convention). Equivalence with {!step} is a qcheck property. *)
val step_packed : Repro_runtime.Pview.t -> keep_shape:bool -> bool

(** [is_legal g sts] — global legality of the layer (spanning tree rooted
    at the min-id node with correct root/dist fields). *)
val is_legal : Repro_graph.Graph.t -> t array -> bool

(** [tree_of g sts] — the encoded tree, when legal. *)
val tree_of : Repro_graph.Graph.t -> t array -> Repro_graph.Tree.t option
