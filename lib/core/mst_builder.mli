(** Silent self-stabilizing MST construction — the paper's Algorithm 2
    (a PLS-guided version of Borůvka's algorithm, Section VI), with the
    space-optimal O(log² n)-bit registers of Corollary 6.1.

    The register of every node stacks the following layers, each a local
    fixpoint rule; a rule may fire only when all lower layers are
    quiescent at the node (collateral composition):

    + {b tree} — [St_layer] with [keep_shape:true]: leader election +
      parent/dist maintenance, never reshaping a consistent tree;
    + {b switch hand-off} — consume a neighbor's switch token: re-parent
      onto it and pass the token toward the edge [f] being removed (the
      chain of local switches of Figure 1a; each hop keeps the structure
      a spanning tree, so the construction is loop-free);
    + {b labels} — subtree size, designated heavy child, NCA sequence
      (Section V), and the Borůvka-trace fragment labels of Section VI
      ([Fragment_labels]' entries recomputed as local fixpoints with the
      fdist/odist certification chains);
    + {b candidate} — every node whose labels are locally quiescent
      publishes its lightest violating incident edge [(level, e)] (an
      incident graph edge leaving its level-[i] fragment and lighter than
      the fragment's selected tree edge); a hop-bounded aggregate
      ([Aggregate]) agrees on the global minimum;
    + {b cut} — nodes on the fundamental cycle of the agreed [e]
      (membership decided from NCA labels, as in Section V) publish their
      parent edge; the aggregate keeps the {e heaviest} (Tarjan's red
      rule), together with its child endpoint and that endpoint's NCA
      label;
    + {b initiation} — the endpoint of [e] inside the detached subtree
      starts the switch chain.

    Safety hardening for arbitrary initial configurations: flips and
    initiations only ever re-parent onto a same-root neighbor within the
    distance TTL (cross-tree moves belong to the election layer);
    initiation additionally checks Tarjan's red-rule inequality
    [w(e) < w(f)] from the carried session data, so every completed
    session replaces a tree edge by a strictly lighter edge — the total
    tree weight strictly decreases, [φ] of Section VI and the tree weight
    both act as potentials, and the system converges to the unique MST
    and falls silent. Token hygiene: a receiver only consumes a token
    whose session its own cut agreement backs (a starved neighbor's stale
    token must not be re-consumed under deterministic daemons); a holder
    discards a token that is consumed or addressed to its own parent, and
    a stale token never blocks a fresh initiation — it is overwritten. *)

module E = Repro_graph.Graph.Edge

type cand = { lvl : int; e : E.t; su : Repro_labels.Nca_labels.label; sv : Repro_labels.Nca_labels.label }

type cut = {
  cand : cand;
  f : E.t;
  f_child : int;
  f_child_seq : Repro_labels.Nca_labels.label;
}

type session = { cut : cut; next : int (* -1 = chain complete *) }

type state = {
  st : St_layer.t;
  size : int;
  heavy : int;  (** designated heavy child (-1 = leaf); lets children learn their heavy/light status *)
  seq : Repro_labels.Nca_labels.label;
  frags : Repro_labels.Fragment_labels.label;
  cand_agg : cand Aggregate.t option;
  cut_agg : cut Aggregate.t option;
  sw : session option;
}

module P : Repro_runtime.Protocol.S with type state = state

module Engine : module type of Repro_runtime.Engine.Make (P)

(** Flat int-array serialization of the (variable-length) MST register:
    [unpack ~n (pack ~n s) = s] is a qcheck property. The register has
    no fixed width — [seq] grows transiently — so the codec grounds the
    bits accounting (PAPER_MAP.md) rather than driving the packed
    engine; see SCALING.md. *)
module Codec : Repro_runtime.Protocol.CODEC with type state = state

(** The tree currently encoded by the registers, if any. *)
val tree_of : Repro_graph.Graph.t -> state array -> Repro_graph.Tree.t option

(** Global legality: the registers encode the (unique) MST with all label
    layers at their fixpoint and no pending session. *)
val is_legal : Repro_graph.Graph.t -> state array -> bool

(** The Section VI potential of the currently encoded tree (via
    [Fragment_labels.potential] on freshly proven labels); [None] when
    the structure is not a tree. *)
val potential : Repro_graph.Graph.t -> state array -> int option
