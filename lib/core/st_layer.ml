module View = Repro_runtime.View
module Space = Repro_runtime.Space
module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree

type t = { parent : int; root : int; dist : int }

let equal (a : t) b = a = b
let pp ppf s = Format.fprintf ppf "(p=%d,r=%d,d=%d)" s.parent s.root s.dist

(* Rule tag for the transition [old -> fresh], shared by every protocol
   that embeds the layer (see Protocol.S.classify). *)
let classify (old : t) (fresh : t) =
  if fresh.parent = -1 && old.parent <> -1 then "reset"
  else if old.root <> fresh.root then "join-root"
  else if old.parent <> fresh.parent then "reparent"
  else "dist"
let size_bits n _ = Space.id_bits n + Space.id_bits n + Space.dist_bits n
let self_root id = { parent = -1; root = id; dist = 0 }

let random rng ~n =
  {
    parent = Random.State.int rng (n + 1) - 1;
    root = Random.State.int rng n;
    dist = Random.State.int rng (n + 1);
  }

(* A neighbor state can serve as a parent if its (root, dist) could be
   extended without blowing the distance TTL. *)
let usable n (u : t) = u.root >= 0 && u.dist >= 0 && u.dist + 1 <= n - 1

let parent_state view ~get s =
  if s.parent = -1 then None
  else
    match View.index view s.parent with
    | i -> Some (get view.View.nbrs.(i))
    | exception Not_found -> None

let valid_state view ~get s =
  let n = view.View.n in
  if s.parent = -1 then s.root = view.View.id && s.dist = 0
  else
    match parent_state view ~get s with
    | Some p -> usable n p && s.root = p.root && s.dist = p.dist + 1
    | None -> false

let valid view ~get = valid_state view ~get (get view.View.self)

(* Best joinable neighbor, lexicographic on (root, dist+1, id). *)
let best_join view ~get =
  let n = view.View.n in
  let best = ref None in
  for i = 0 to view.View.degree - 1 do
    let u = get view.View.nbrs.(i) in
    if usable n u then begin
      let cand = (u.root, u.dist + 1, view.View.nbr_ids.(i)) in
      match !best with
      | None -> best := Some cand
      | Some b -> if cand < b then best := Some cand
    end
  done;
  !best

let step view ~get ~keep_shape =
  let s = get view.View.self in
  let id = view.View.id in
  let n = view.View.n in
  let best = best_join view ~get in
  let valid = valid_state view ~get s in
  let better_exists =
    id < s.root
    ||
    match best with
    | Some (r, d, _) -> if keep_shape then r < s.root else (r, d) < (s.root, s.dist)
    | None -> false
  in
  if valid && not better_exists then None
  else begin
    let r_best = match best with Some (r, _, _) -> min id r | None -> id in
    let fresh =
      if r_best = id then self_root id
      else begin
        (* Prefer keeping the current parent when it offers the best
           root, so upper layers' tree surgery survives dist repair. *)
        match parent_state view ~get s with
        | Some p when keep_shape && usable n p && p.root = r_best ->
            { parent = s.parent; root = r_best; dist = p.dist + 1 }
        | _ -> (
            match best with
            | Some (r, d, u) when r = r_best -> { parent = u; root = r; dist = d }
            | _ -> self_root id)
      end
    in
    if fresh = s then None else Some fresh
  end

(* ------------------------------------------------------------------ *)
(* Packed representation: lanes 0=parent, 1=root, 2=dist. The layer's
   fields are plain small ints, so the codec is the identity on each
   field (see SCALING.md for the bank layout and PAPER_MAP.md for the
   bits accounting). *)

let words = 3
let pack (s : t) = [| s.parent; s.root; s.dist |]
let unpack a = { parent = a.(0); root = a.(1); dist = a.(2) }

(* [step ~get:Fun.id] translated to int lanes: same usable predicate,
   same lexicographic (root, dist+1, id) best-join, same tie-breaking.
   Pinned against the boxed step pointwise and whole-run by
   test_packed. *)
let step_packed (pv : Repro_runtime.Pview.t) ~keep_shape =
  let open Repro_runtime in
  let bank = pv.Pview.bank in
  let par = bank.(0) and roo = bank.(1) and dis = bank.(2) in
  let id = pv.Pview.focus in
  let n = pv.Pview.n in
  let row = pv.Pview.row and col = pv.Pview.col in
  let s_parent = par.(id) and s_root = roo.(id) and s_dist = dis.(id) in
  (* Best joinable neighbor, lexicographic on (root, dist+1, id); the
     CSR segment is in increasing neighbor order like View.nbr_ids. *)
  let has_best = ref false in
  let br = ref 0 and bd = ref 0 and bu = ref 0 in
  for i = row.(id) to row.(id + 1) - 1 do
    let u = col.(i) in
    let ur = roo.(u) and ud = dis.(u) in
    if ur >= 0 && ud >= 0 && ud + 1 <= n - 1 then begin
      let d = ud + 1 in
      if
        (not !has_best)
        || ur < !br
        || (ur = !br && (d < !bd || (d = !bd && u < !bu)))
      then begin
        has_best := true;
        br := ur;
        bd := d;
        bu := u
      end
    end
  done;
  let p_idx =
    if s_parent = -1 then -1
    else match Pview.index pv s_parent with i -> i | exception Not_found -> -1
  in
  let parent_usable =
    p_idx >= 0
    &&
    let p = col.(p_idx) in
    roo.(p) >= 0 && dis.(p) >= 0 && dis.(p) + 1 <= n - 1
  in
  let valid =
    if s_parent = -1 then s_root = id && s_dist = 0
    else
      parent_usable
      &&
      let p = col.(p_idx) in
      s_root = roo.(p) && s_dist = dis.(p) + 1
  in
  let better_exists =
    id < s_root
    || (!has_best
       &&
       if keep_shape then !br < s_root
       else !br < s_root || (!br = s_root && !bd < s_dist))
  in
  if valid && not better_exists then false
  else begin
    let r_best = if !has_best then min id !br else id in
    (* fresh defaults to self_root id; built directly in the move
       scratch (allocation-free — the engine only reads it on [true]). *)
    let mv = pv.Pview.move in
    mv.(0) <- -1;
    mv.(1) <- id;
    mv.(2) <- 0;
    if r_best <> id then
      if keep_shape && parent_usable && roo.(col.(p_idx)) = r_best then begin
        mv.(0) <- s_parent;
        mv.(1) <- r_best;
        mv.(2) <- dis.(col.(p_idx)) + 1
      end
      else if !has_best && !br = r_best then begin
        mv.(0) <- !bu;
        mv.(1) <- !br;
        mv.(2) <- !bd
      end;
    not (mv.(0) = s_parent && mv.(1) = s_root && mv.(2) = s_dist)
  end

let is_legal g sts =
  let n = Graph.n g in
  Array.length sts = n
  &&
  let parent = Array.map (fun s -> s.parent) sts in
  Tree.check_parents ~root:0 parent
  &&
  let t = Tree.of_parents ~root:0 parent in
  let ok = ref true in
  for v = 0 to n - 1 do
    if sts.(v).root <> 0 || sts.(v).dist <> Tree.depth t v then ok := false
  done;
  !ok

let tree_of g sts =
  let parent = Array.map (fun s -> s.parent) sts in
  if Tree.check_parents ~root:0 parent then Some (Tree.of_parents ~root:0 parent)
  else begin
    ignore g;
    None
  end
