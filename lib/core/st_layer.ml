module View = Repro_runtime.View
module Space = Repro_runtime.Space
module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree

type t = { parent : int; root : int; dist : int }

let equal (a : t) b = a = b
let pp ppf s = Format.fprintf ppf "(p=%d,r=%d,d=%d)" s.parent s.root s.dist

(* Rule tag for the transition [old -> fresh], shared by every protocol
   that embeds the layer (see Protocol.S.classify). *)
let classify (old : t) (fresh : t) =
  if fresh.parent = -1 && old.parent <> -1 then "reset"
  else if old.root <> fresh.root then "join-root"
  else if old.parent <> fresh.parent then "reparent"
  else "dist"
let size_bits n _ = Space.id_bits n + Space.id_bits n + Space.dist_bits n
let self_root id = { parent = -1; root = id; dist = 0 }

let random rng ~n =
  {
    parent = Random.State.int rng (n + 1) - 1;
    root = Random.State.int rng n;
    dist = Random.State.int rng (n + 1);
  }

(* A neighbor state can serve as a parent if its (root, dist) could be
   extended without blowing the distance TTL. *)
let usable n (u : t) = u.root >= 0 && u.dist >= 0 && u.dist + 1 <= n - 1

let parent_state view ~get s =
  if s.parent = -1 then None
  else
    match View.index view s.parent with
    | i -> Some (get view.View.nbrs.(i))
    | exception Not_found -> None

let valid_state view ~get s =
  let n = view.View.n in
  if s.parent = -1 then s.root = view.View.id && s.dist = 0
  else
    match parent_state view ~get s with
    | Some p -> usable n p && s.root = p.root && s.dist = p.dist + 1
    | None -> false

let valid view ~get = valid_state view ~get (get view.View.self)

(* Best joinable neighbor, lexicographic on (root, dist+1, id). *)
let best_join view ~get =
  let n = view.View.n in
  let best = ref None in
  for i = 0 to view.View.degree - 1 do
    let u = get view.View.nbrs.(i) in
    if usable n u then begin
      let cand = (u.root, u.dist + 1, view.View.nbr_ids.(i)) in
      match !best with
      | None -> best := Some cand
      | Some b -> if cand < b then best := Some cand
    end
  done;
  !best

let step view ~get ~keep_shape =
  let s = get view.View.self in
  let id = view.View.id in
  let n = view.View.n in
  let best = best_join view ~get in
  let valid = valid_state view ~get s in
  let better_exists =
    id < s.root
    ||
    match best with
    | Some (r, d, _) -> if keep_shape then r < s.root else (r, d) < (s.root, s.dist)
    | None -> false
  in
  if valid && not better_exists then None
  else begin
    let r_best = match best with Some (r, _, _) -> min id r | None -> id in
    let fresh =
      if r_best = id then self_root id
      else begin
        (* Prefer keeping the current parent when it offers the best
           root, so upper layers' tree surgery survives dist repair. *)
        match parent_state view ~get s with
        | Some p when keep_shape && usable n p && p.root = r_best ->
            { parent = s.parent; root = r_best; dist = p.dist + 1 }
        | _ -> (
            match best with
            | Some (r, d, u) when r = r_best -> { parent = u; root = r; dist = d }
            | _ -> self_root id)
      end
    in
    if fresh = s then None else Some fresh
  end

let is_legal g sts =
  let n = Graph.n g in
  Array.length sts = n
  &&
  let parent = Array.map (fun s -> s.parent) sts in
  Tree.check_parents ~root:0 parent
  &&
  let t = Tree.of_parents ~root:0 parent in
  let ok = ref true in
  for v = 0 to n - 1 do
    if sts.(v).root <> 0 || sts.(v).dist <> Tree.depth t v then ok := false
  done;
  !ok

let tree_of g sts =
  let parent = Array.map (fun s -> s.parent) sts in
  if Tree.check_parents ~root:0 parent then Some (Tree.of_parents ~root:0 parent)
  else begin
    ignore g;
    None
  end
