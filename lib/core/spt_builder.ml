module Graph = Repro_graph.Graph
module View = Repro_runtime.View
module Space = Repro_runtime.Space

type state = { parent : int; root : int; wdist : int; hops : int }

let dijkstra g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let module Q = Set.Make (struct
    type t = int * int (* dist, node *)

    let compare = compare
  end) in
  let q = ref (Q.singleton (0, src)) in
  dist.(src) <- 0;
  while not (Q.is_empty !q) do
    let ((d, u) as elt) = Q.min_elt !q in
    q := Q.remove elt !q;
    if d = dist.(u) then
      Array.iter
        (fun (v, w) ->
          if d + w < dist.(v) then begin
            dist.(v) <- d + w;
            q := Q.add (d + w, v) !q
          end)
        (Graph.neighbors g u)
  done;
  dist

(* An upper bound on any simple-path weight: total edge weight + 1 acts
   as infinity; hop counts are TTL-bounded by n as in St_layer. *)
let infinity_of g = Graph.total_weight g + 1

let potential g sts =
  let d = dijkstra g ~src:0 in
  let inf = infinity_of g in
  let total = ref 0 in
  Array.iteri
    (fun v (s : state) ->
      let dv = if s.wdist < 0 then inf else min s.wdist inf in
      total := !total + abs (dv - min d.(v) inf))
    sts;
  !total

module P = struct
  type nonrec state = state

  let equal_state (a : state) b = a = b

  let pp_state ppf s =
    Format.fprintf ppf "(p=%d,r=%d,w=%d,h=%d)" s.parent s.root s.wdist s.hops

  let size_bits n _ =
    Space.id_bits n + Space.id_bits n + Space.weight_bits n + Space.dist_bits n

  let self_root v = { parent = -1; root = v; wdist = 0; hops = 0 }
  let initial _ v = self_root v

  let random_state rng g _ =
    let n = Graph.n g in
    {
      parent = Random.State.int rng (n + 1) - 1;
      root = Random.State.int rng n;
      wdist = Random.State.int rng (infinity_of g);
      hops = Random.State.int rng (n + 1);
    }

  let step (view : state View.t) =
    let s = view.View.self in
    let id = view.View.id in
    let n = view.View.n in
    let usable (u : state) = u.root >= 0 && u.wdist >= 0 && u.hops + 1 <= n - 1 in
    let parent_state =
      if s.parent = -1 then None
      else
        match View.index view s.parent with
        | i -> Some (view.View.nbrs.(i), view.View.nbr_weights.(i))
        | exception Not_found -> None
    in
    let valid =
      if s.parent = -1 then s.root = id && s.wdist = 0 && s.hops = 0
      else
        match parent_state with
        | Some (p, w) ->
            usable p && s.root = p.root && s.wdist = p.wdist + w && s.hops = p.hops + 1
        | None -> false
    in
    (* Best joinable neighbor by (root, weighted distance, hops, id). *)
    let best = ref None in
    for i = 0 to view.View.degree - 1 do
      let u = view.View.nbrs.(i) in
      let w = view.View.nbr_weights.(i) in
      if usable u then begin
        let cand = (u.root, u.wdist + w, u.hops + 1, view.View.nbr_ids.(i)) in
        match !best with
        | None -> best := Some cand
        | Some b -> if cand < b then best := Some cand
      end
    done;
    let better_exists =
      id < s.root
      ||
      match !best with
      | Some (r, wd, _, _) -> (r, wd) < (s.root, s.wdist)
      | None -> false
    in
    if valid && not better_exists then None
    else begin
      let fresh =
        match !best with
        | Some (r, wd, h, u) when r < id -> { parent = u; root = r; wdist = wd; hops = h }
        | _ -> self_root id
      in
      if equal_state fresh s then None else Some fresh
    end

  let is_legal g sts =
    let n = Graph.n g in
    let d = dijkstra g ~src:0 in
    let parent = Array.map (fun s -> s.parent) sts in
    Repro_graph.Tree.check_parents ~root:0 parent
    &&
    let ok = ref true in
    for v = 0 to n - 1 do
      let s = sts.(v) in
      if s.root <> 0 || s.wdist <> d.(v) then ok := false;
      if v <> 0 then begin
        match Graph.find_edge g v s.parent with
        | Some e -> if d.(s.parent) + e.Graph.Edge.w <> d.(v) then ok := false
        | None -> ok := false
      end
    done;
    !ok

  let potential g sts = Some (potential g sts)

  let classify =
    Some
      (fun old fresh ->
        if fresh.parent = -1 && old.parent <> -1 then "reset"
        else if old.root <> fresh.root then "join-root"
        else if old.parent <> fresh.parent then "reparent"
        else if old.wdist <> fresh.wdist then "dist"
        else "hops")
end

module Engine = Repro_runtime.Engine.Make (P)

let is_spt = P.is_legal
