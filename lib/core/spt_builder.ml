module Graph = Repro_graph.Graph
module View = Repro_runtime.View
module Space = Repro_runtime.Space

type state = { parent : int; root : int; wdist : int; hops : int }

let dijkstra g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let module Q = Set.Make (struct
    type t = int * int (* dist, node *)

    let compare = compare
  end) in
  let q = ref (Q.singleton (0, src)) in
  dist.(src) <- 0;
  while not (Q.is_empty !q) do
    let ((d, u) as elt) = Q.min_elt !q in
    q := Q.remove elt !q;
    if d = dist.(u) then
      Array.iter
        (fun (v, w) ->
          if d + w < dist.(v) then begin
            dist.(v) <- d + w;
            q := Q.add (d + w, v) !q
          end)
        (Graph.neighbors g u)
  done;
  dist

(* An upper bound on any simple-path weight: total edge weight + 1 acts
   as infinity; hop counts are TTL-bounded by n as in St_layer. *)
let infinity_of g = Graph.total_weight g + 1

let potential g sts =
  let d = dijkstra g ~src:0 in
  let inf = infinity_of g in
  let total = ref 0 in
  Array.iteri
    (fun v (s : state) ->
      let dv = if s.wdist < 0 then inf else min s.wdist inf in
      total := !total + abs (dv - min d.(v) inf))
    sts;
  !total

module P = struct
  type nonrec state = state

  let equal_state (a : state) b = a = b

  let pp_state ppf s =
    Format.fprintf ppf "(p=%d,r=%d,w=%d,h=%d)" s.parent s.root s.wdist s.hops

  let size_bits n _ =
    Space.id_bits n + Space.id_bits n + Space.weight_bits n + Space.dist_bits n

  let self_root v = { parent = -1; root = v; wdist = 0; hops = 0 }
  let initial _ v = self_root v

  let random_state rng g _ =
    let n = Graph.n g in
    {
      parent = Random.State.int rng (n + 1) - 1;
      root = Random.State.int rng n;
      (* Random.State.int rejects bounds >= 2^30; on big-n graphs (the
         BIG bench tier) the weight sum exceeds it, so clamp — draws on
         every smaller graph are unchanged. *)
      wdist = Random.State.int rng (min (infinity_of g) 0x3FFF_FFFF);
      hops = Random.State.int rng (n + 1);
    }

  let step (view : state View.t) =
    let s = view.View.self in
    let id = view.View.id in
    let n = view.View.n in
    let usable (u : state) = u.root >= 0 && u.wdist >= 0 && u.hops + 1 <= n - 1 in
    let parent_state =
      if s.parent = -1 then None
      else
        match View.index view s.parent with
        | i -> Some (view.View.nbrs.(i), view.View.nbr_weights.(i))
        | exception Not_found -> None
    in
    let valid =
      if s.parent = -1 then s.root = id && s.wdist = 0 && s.hops = 0
      else
        match parent_state with
        | Some (p, w) ->
            usable p && s.root = p.root && s.wdist = p.wdist + w && s.hops = p.hops + 1
        | None -> false
    in
    (* Best joinable neighbor by (root, weighted distance, hops, id). *)
    let best = ref None in
    for i = 0 to view.View.degree - 1 do
      let u = view.View.nbrs.(i) in
      let w = view.View.nbr_weights.(i) in
      if usable u then begin
        let cand = (u.root, u.wdist + w, u.hops + 1, view.View.nbr_ids.(i)) in
        match !best with
        | None -> best := Some cand
        | Some b -> if cand < b then best := Some cand
      end
    done;
    let better_exists =
      id < s.root
      ||
      match !best with
      | Some (r, wd, _, _) -> (r, wd) < (s.root, s.wdist)
      | None -> false
    in
    if valid && not better_exists then None
    else begin
      let fresh =
        match !best with
        | Some (r, wd, h, u) when r < id -> { parent = u; root = r; wdist = wd; hops = h }
        | _ -> self_root id
      in
      if equal_state fresh s then None else Some fresh
    end

  let is_legal g sts =
    let n = Graph.n g in
    let d = dijkstra g ~src:0 in
    let parent = Array.map (fun s -> s.parent) sts in
    Repro_graph.Tree.check_parents ~root:0 parent
    &&
    let ok = ref true in
    for v = 0 to n - 1 do
      let s = sts.(v) in
      if s.root <> 0 || s.wdist <> d.(v) then ok := false;
      if v <> 0 then begin
        match Graph.find_edge g v s.parent with
        | Some e -> if d.(s.parent) + e.Graph.Edge.w <> d.(v) then ok := false
        | None -> ok := false
      end
    done;
    !ok

  let potential g sts = Some (potential g sts)

  let classify =
    Some
      (fun old fresh ->
        if fresh.parent = -1 && old.parent <> -1 then "reset"
        else if old.root <> fresh.root then "join-root"
        else if old.parent <> fresh.parent then "reparent"
        else if old.wdist <> fresh.wdist then "dist"
        else "hops")
end

module Packed = struct
  include P

  (* Lanes: 0=parent, 1=root, 2=wdist, 3=hops (see SCALING.md). *)
  let words = 4
  let pack ~n:_ (s : state) = [| s.parent; s.root; s.wdist; s.hops |]
  let unpack ~n:_ a = { parent = a.(0); root = a.(1); wdist = a.(2); hops = a.(3) }

  (* [P.step] on the flat bank: same usable predicate, same lexicographic
     (root, wdist+w, hops+1, id) best, same tie-breaking. Pinned against
     the boxed step by test_packed. *)
  let step_packed (pv : Repro_runtime.Pview.t) =
    let open Repro_runtime in
    let bank = pv.Pview.bank in
    let par = bank.(0) and roo = bank.(1) and wdi = bank.(2) and hop = bank.(3) in
    let id = pv.Pview.focus in
    let n = pv.Pview.n in
    let row = pv.Pview.row and col = pv.Pview.col and wgt = pv.Pview.wgt in
    let s_parent = par.(id) and s_root = roo.(id) in
    let s_wdist = wdi.(id) and s_hops = hop.(id) in
    (* usable u := roo.(u) >= 0 && wdi.(u) >= 0 && hop.(u) + 1 <= n - 1,
       spelled out at each use — a local predicate closure would
       allocate on the hot path. *)
    let p_idx =
      if s_parent = -1 then -1
      else match Pview.index pv s_parent with i -> i | exception Not_found -> -1
    in
    let valid =
      if s_parent = -1 then s_root = id && s_wdist = 0 && s_hops = 0
      else
        p_idx >= 0
        &&
        let p = col.(p_idx) in
        roo.(p) >= 0
        && wdi.(p) >= 0
        && hop.(p) + 1 <= n - 1
        && s_root = roo.(p)
        && s_wdist = wdi.(p) + wgt.(p_idx)
        && s_hops = hop.(p) + 1
    in
    let has_best = ref false in
    let br = ref 0 and bwd = ref 0 and bh = ref 0 and bu = ref 0 in
    for i = row.(id) to row.(id + 1) - 1 do
      let u = col.(i) in
      if roo.(u) >= 0 && wdi.(u) >= 0 && hop.(u) + 1 <= n - 1 then begin
        let r = roo.(u) and wd = wdi.(u) + wgt.(i) and h = hop.(u) + 1 in
        if
          (not !has_best)
          || r < !br
          || (r = !br
             && (wd < !bwd || (wd = !bwd && (h < !bh || (h = !bh && u < !bu)))))
        then begin
          has_best := true;
          br := r;
          bwd := wd;
          bh := h;
          bu := u
        end
      end
    done;
    let better_exists =
      id < s_root
      || (!has_best && (!br < s_root || (!br = s_root && !bwd < s_wdist)))
    in
    if valid && not better_exists then false
    else begin
      let fp = ref (-1) and fr = ref id and fwd = ref 0 and fh = ref 0 in
      if !has_best && !br < id then begin
        fp := !bu;
        fr := !br;
        fwd := !bwd;
        fh := !bh
      end;
      if !fp = s_parent && !fr = s_root && !fwd = s_wdist && !fh = s_hops then false
      else begin
        pv.Pview.move.(0) <- !fp;
        pv.Pview.move.(1) <- !fr;
        pv.Pview.move.(2) <- !fwd;
        pv.Pview.move.(3) <- !fh;
        true
      end
    end
end

module Engine = Repro_runtime.Engine.Make (P)
module Engine_packed = Repro_runtime.Engine_packed.Make (Packed)

let is_spt = P.is_legal
