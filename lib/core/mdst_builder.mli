(** Silent self-stabilizing minimum-degree spanning tree construction —
    the paper's Algorithm 4 (Fürer–Raghavachari) run as a PLS-guided
    local search with well-nested swap sequences (Sections VII-VIII),
    stabilizing on FR-trees, hence on spanning trees of degree at most
    OPT + 1 (Corollary 8.1), with O(log n)-bit registers.

    Register layers (each a local rule, gated on the lower layers):

    + {b tree} — [St_layer], shape preserving;
    + {b switch hand-off} — the same loop-free chain mechanics as
      [Mst_builder];
    + {b labels} — subtree size, heavy child, NCA sequence (for the
      fundamental-cycle membership tests) and published tree degree;
    + {b Δ} — the tree degree [Δ_T], agreed by a max-aggregate over the
      published degrees;
    + {b marking} — the good/bad marking of Definition 8.1 maintained as
      rules: degree ≤ Δ−2 forces good; a witness-good node stores the
      non-tree edge [e] whose fundamental cycle covered it (Algorithm 4
      line 7) together with the endpoint labels and its own label at
      marking time, and keeps re-validating the mark: the cycle must
      still cover it, its own position must not have moved, the witness
      must not be incident to it nor be one of its tree edges — every
      violated check is a staleness proof that drops the mark; fragment
      ids use anchored distance chains, exactly as in the [Fr_pls]
      certificate;
    + {b closure} — an aggregate agreeing on a non-tree edge joining good
      nodes of two different fragments; every non-good node on its cycle
      marks itself good with that witness (the closure loop of
      Algorithm 4 lines 6-9);
    + {b improvement} — when some degree-Δ node is good (a global fact
      agreed by a hub aggregate), witness-good nodes of degree ≥ Δ−1
      publish improvement candidates, preferring the highest degree. An
      endpoint of the agreed candidate's witness vetoes it when it cannot
      absorb an extra edge (degree > Δ−2) or when the data is provably
      stale (the witness became a tree edge, or a carried endpoint label
      mismatches the endpoint's current label); a veto drops the
      candidate's mark, and the vetoed witness is remembered (with the
      holder's degree) so it is not immediately re-adopted — the closure
      then re-marks from fresh data, and the ready frontier (the
      innermost swaps of Section VII's well-nested sequences) executes
      first through this retry loop. The block expires when the holder's
      degree changes or when no hub remains, letting the closure complete
      into a full FR witness before silence;
    + {b initiation} — the endpoint of the witness edge inside the
      detached subtree checks both endpoint degrees and starts the switch
      chain that removes a tree edge at the candidate node.

    At silence the register marking is exactly an FR witness: every
    degree-Δ node is bad, every degree ≤ Δ−2 node is good, fragments are
    consistently labeled, and no graph edge joins good nodes of different
    fragments — so the stable tree is an FR-tree. *)

module E = Repro_graph.Graph.Edge
module Nca = Repro_labels.Nca_labels

type mark = {
  witness : E.t;
  su : Nca.label;
  sv : Nca.label;
  rank : int;
  zseq : Nca.label;
      (** the holder's own NCA label at marking time: if the holder has
          since moved in the tree the mark self-invalidates *)
}

type icand = {
  z : int;  (** the node whose degree the swap reduces *)
  zdeg : int;
  rank : int;
  e : E.t;  (** its witness edge *)
  su : Nca.label;  (** NCA label of [e]'s smaller endpoint *)
  sv : Nca.label;  (** NCA label of [e]'s larger endpoint *)
  f : E.t;  (** the tree edge shed at [z], computed by [z] itself *)
  f_child : int;
  f_child_seq : Nca.label;
}

type mcand = { me : E.t; msu : Nca.label; msv : Nca.label; mrank : int }

type veto = {
  vc : icand;
  hard : bool;
      (** always [true] in the current design (every veto drops the mark
          and installs a {!state.blocked} entry); kept in the value so
          experiments can distinguish veto causes if re-introduced *)
}

type msession = { icand : icand; next : int (* -1 = chain complete *) }

type state = {
  st : St_layer.t;
  size : int;
  heavy : int;
  seq : Nca.label;
  deg : int;  (** published tree degree *)
  dmax : int Aggregate.t option;  (** Δ_T (max-aggregate) *)
  good : bool;
  mark : mark option;  (** witness data when good by marking *)
  frag : int;  (** fragment id; -1 when bad *)
  fdist : int;
  hub_agg : int Aggregate.t option;  (** min id of a good degree-Δ node *)
  mark_agg : mcand Aggregate.t option;
  imp_agg : icand Aggregate.t option;
  veto_agg : veto Aggregate.t option;
  blocked : (E.t * int) option;
      (** a vetoed witness edge, remembered together with the degree the
          node had when it was vetoed: the node refuses to re-adopt that
          witness until its degree changes, which breaks re-marking
          cycles without unbounded bookkeeping *)
  sw : msession option;
}

module P : Repro_runtime.Protocol.S with type state = state

module Engine : module type of Repro_runtime.Engine.Make (P)

(** Flat int-array serialization of the MDST register (see
    {!Mst_builder.Codec}): round-trip-pinned, grounds the bits
    accounting of PAPER_MAP.md. *)
module Codec : Repro_runtime.Protocol.CODEC with type state = state

val tree_of : Repro_graph.Graph.t -> state array -> Repro_graph.Tree.t option

(** Legality: the encoded structure is a spanning tree that admits an FR
    witness marking ([Min_degree.find_marking]); its degree is then at
    most OPT + 1. *)
val is_legal : Repro_graph.Graph.t -> state array -> bool

(** The marking currently stored in the registers. *)
val marking_of : state array -> Repro_graph.Min_degree.marking
