(** Silent self-stabilizing BFS spanning tree construction — the worked
    example of Section III.

    The family [F] is the BFS trees of [G] rooted at the elected (min-id)
    root. The proof-labeling scheme is the distance labeling itself: a
    node rejects iff some graph neighbor carries a distance smaller than
    its own minus one. The potential is
    [φ(T) = Σ_u |d(u) − dist_G(u, r)|]; a rejection at [u] caused by
    neighbor [v] identifies the swap [e = {u,v}], [f = {u, p(u)}], and
    re-parenting [u] onto [v] strictly decreases [φ] — the layer rule of
    [St_layer] with [keep_shape:false] is exactly this PLS-guided local
    search, executed at every violating node.

    Registers: [(parent, root, dist)] = O(log n) bits — space optimal.
    Rounds: O(n) under the unfair daemon (experiment E5). *)

module P : Repro_runtime.Protocol.S with type state = St_layer.t

module Engine : module type of Repro_runtime.Engine.Make (P)

(** The same protocol with the 3-lane {!St_layer} codec, for the
    struct-of-arrays engine (the big-n bench tier; see SCALING.md). *)
module Packed : Repro_runtime.Protocol.PACKED with type state = St_layer.t

module Engine_packed : module type of Repro_runtime.Engine_packed.Make (Packed)

(** The Section III potential [Σ_u |d(u) − dist_G(u, 0)|], computed from
    the registers (illegal structures contribute the [n]-capped
    defect). *)
val potential : Repro_graph.Graph.t -> St_layer.t array -> int

(** The BFS-ness verifier at one node (the PLS of Section III): no graph
    neighbor may be more than one hop closer to the root. *)
val verify : St_layer.t Repro_runtime.View.t -> bool

(** [is_bfs_tree g sts] — global legality: a spanning tree rooted at the
    min-id node with [dist] equal to the true graph distances. *)
val is_bfs_tree : Repro_graph.Graph.t -> St_layer.t array -> bool
