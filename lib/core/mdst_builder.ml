module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module Min_degree = Repro_graph.Min_degree
module View = Repro_runtime.View
module Space = Repro_runtime.Space
module Nca = Repro_labels.Nca_labels
module E = Graph.Edge

type mark = { witness : E.t; su : Nca.label; sv : Nca.label; rank : int; zseq : Nca.label }

type icand = {
  z : int;
  zdeg : int;
  rank : int;
  e : E.t;
  su : Nca.label;  (** NCA label of e's smaller endpoint *)
  sv : Nca.label;  (** NCA label of e's larger endpoint *)
  f : E.t;  (** the tree edge removed at z *)
  f_child : int;
  f_child_seq : Nca.label;
}

type mcand = { me : E.t; msu : Nca.label; msv : Nca.label; mrank : int }

type veto = {
  vc : icand;
  hard : bool;
      (** hard = a staleness proof (witness became a tree edge, endpoint
          label mismatch): the candidate's mark must be dropped. Soft =
          an endpoint is merely not ready yet (degree > Δ−2): the
          candidate just stops publishing until the endpoint improves. *)
}

type msession = { icand : icand; next : int }

type state = {
  st : St_layer.t;
  size : int;
  heavy : int;
  seq : Nca.label;
  deg : int;
  dmax : int Aggregate.t option;
  good : bool;
  mark : mark option;
  frag : int;
  fdist : int;
  hub_agg : int Aggregate.t option;
  mark_agg : mcand Aggregate.t option;
  imp_agg : icand Aggregate.t option;
  veto_agg : veto Aggregate.t option;
  blocked : (E.t * int) option;
      (* witness edge whose candidacy was vetoed while my degree was the
         recorded value: do not re-adopt it until my degree changes *)
  sw : msession option;
}

let compare_icand (a : icand) b = compare a b

let compare_icand a b =
  let c = compare (-a.zdeg, a.z) (-b.zdeg, b.z) in
  if c <> 0 then c else compare_icand a b

let compare_veto (a : veto) b =
  let c = compare_icand a.vc b.vc in
  if c <> 0 then c else compare a.hard b.hard

let compare_mcand (a : mcand) b =
  let c = compare (a.mrank, E.compare a.me b.me) (b.mrank, 0) in
  if c <> 0 then c else compare a b

let equal_icand (a : icand) b = a = b

(* Δ is a maximum: flip the order. *)
let compare_deg a b = compare b a

(* ------------------------------------------------------------------ *)
(* Structural helpers *)

let children_of (view : state View.t) =
  let acc = ref [] in
  for i = view.degree - 1 downto 0 do
    if view.nbrs.(i).st.St_layer.parent = view.id then
      acc := (view.nbr_ids.(i), view.nbr_weights.(i), view.nbrs.(i)) :: !acc
  done;
  !acc

let parent_entry (view : state View.t) =
  let p = view.self.st.St_layer.parent in
  if p = -1 then None
  else
    match View.index view p with
    | i -> Some (view.nbr_ids.(i), view.nbr_weights.(i), view.nbrs.(i))
    | exception Not_found -> None

let tree_neighbors view =
  (match parent_entry view with Some e -> [ e ] | None -> []) @ children_of view

let deg_target view = List.length (tree_neighbors view)

let size_target view =
  List.fold_left (fun acc (_, _, c) -> acc + c.size) 1 (children_of view)

let heavy_target view =
  List.fold_left
    (fun best (id, _, c) ->
      match best with
      | None -> Some (id, c.size)
      | Some (_, bs) -> if c.size > bs then Some (id, c.size) else best)
    None (children_of view)
  |> function
  | Some (id, _) -> id
  | None -> -1

let seq_target (view : state View.t) =
  let s = view.self in
  if s.st.St_layer.parent = -1 then Nca.of_root view.id
  else
    match View.index view s.st.St_layer.parent with
    | exception Not_found -> s.seq
    | i ->
        let p = view.nbrs.(i) in
        if p.heavy = view.id then Nca.extend_heavy p.seq
        else Nca.extend_light p.seq ~child:view.id

(* ------------------------------------------------------------------ *)
(* Marking layer *)

(* The tree edge a witness-good node z would shed to reduce its degree:
   its parent edge when z is not the NCA of its witness edge, else the
   edge to the cycle child on the [su] side. With fresh labels this is
   always constructible for a node on the witness cycle; failure to
   construct it is a staleness proof and invalidates the mark. *)
let shed_edge (view : state View.t) (m : mark) =
  let s = view.self in
  let w = Nca.nca m.su m.sv in
  if not (Nca.equal s.seq w) then
    match parent_entry view with
    | Some (pid, pw, _) -> Some (E.make view.id pid pw, view.id, s.seq)
    | None -> None
  else
    List.fold_left
      (fun acc (cid, cw, cnb) ->
        match acc with
        | Some _ -> acc
        | None ->
            if Nca.is_ancestor cnb.seq m.su then Some (E.make view.id cid cw, cid, cnb.seq)
            else None)
      None (children_of view)

let delta (view : state View.t) =
  match view.self.dmax with Some { Aggregate.value; _ } -> Some value | None -> None

let rank_of (s : state) = match s.mark with Some m -> m.rank | None -> 0

let marking_target (view : state View.t) =
  let s = view.self in
  match delta view with
  | None -> (false, None)
  | Some d ->
      if s.deg <= d - 2 then (true, None)
      else begin
        let vetoed _witness =
          (* while any veto names me, neither my current mark nor a fresh
             adoption may stand: the closure restarts for me only after
             the veto has decayed, by which time the blocking situation
             has been given a window to change *)
          match s.veto_agg with
          | Some { Aggregate.value = v; _ } -> v.vc.z = view.id
          | None -> false
        in
        let blocked_witness (e : E.t) =
          match s.blocked with
          | Some (b, bdeg) -> E.equal b e && bdeg = s.deg
          | None -> false
        in
        let witness_not_my_tree_edge (e : E.t) =
          (not (E.mem e view.id))
          ||
          let other = E.other e view.id in
          s.st.St_layer.parent <> other
          &&
          match View.index view other with
          | i -> view.nbrs.(i).st.St_layer.parent <> view.id
          | exception Not_found -> true
        in
        match s.mark with
        | Some m
          when (not (E.mem m.witness view.id))
               (* an endpoint is good before its edge is ever usable, so a
                  witness incident to its holder is incoherent *)
               && (not (blocked_witness m.witness))
               && Nca.equal s.seq m.zseq
               && Nca.on_cycle ~x:s.seq ~u:m.su ~v:m.sv
               && m.rank >= 1
               && shed_edge view m <> None
               && witness_not_my_tree_edge m.witness
               && not (vetoed m.witness) ->
            (true, Some m)
        | _ -> (
            (* The closure (Algorithm 4 line 7): adopt the agreed
               marking edge when its fundamental cycle covers me. *)
            match s.mark_agg with
            | Some { Aggregate.value = mc; _ }
              when (not (E.mem mc.me view.id))
                   && (not (blocked_witness mc.me))
                   && Nca.on_cycle ~x:s.seq ~u:mc.msu ~v:mc.msv
                   && mc.mrank >= 1
                   && not (vetoed mc.me) ->
                let m =
                  { witness = mc.me; su = mc.msu; sv = mc.msv; rank = mc.mrank; zseq = s.seq }
                in
                if shed_edge view m <> None then (true, Some m) else (false, None)
            | _ -> (false, None))
      end

let frag_target (view : state View.t) good =
  if not good then (-1, 0)
  else begin
    let n = view.n in
    List.fold_left
      (fun (bf, bd) (_, _, nb) ->
        if nb.good && nb.frag >= 0 && nb.fdist + 1 <= n && (nb.frag, nb.fdist + 1) < (bf, bd)
        then (nb.frag, nb.fdist + 1)
        else (bf, bd))
      (view.id, 0) (tree_neighbors view)
  end

(* ------------------------------------------------------------------ *)
(* Aggregate bases *)

let hub_base (view : state View.t) =
  let s = view.self in
  match delta view with
  | Some d when s.good && s.deg = d && d >= 1 -> Some view.id
  | _ -> None

let mark_base (view : state View.t) =
  let s = view.self in
  if not s.good then None
  else begin
    let tree_ids = List.map (fun (id, _, _) -> id) (tree_neighbors view) in
    let best = ref None in
    Array.iteri
      (fun i y ->
        let nb = view.nbrs.(i) in
        if
          nb.good
          && (not (List.mem y tree_ids))
          && nb.frag >= 0 && s.frag >= 0 && nb.frag <> s.frag
        then begin
          let edge = E.make view.id y view.nbr_weights.(i) in
          let su, sv = if edge.E.u = view.id then (s.seq, nb.seq) else (nb.seq, s.seq) in
          let c =
            (* clamp: the rank is diagnostic nesting depth, never above n *)
            { me = edge; msu = su; msv = sv; mrank = min view.n (1 + max (rank_of s) (rank_of nb)) }
          in
          match !best with
          | Some b when compare_mcand b c <= 0 -> ()
          | _ -> best := Some c
        end)
      view.nbr_ids;
    !best
  end

(* The improvement candidate: z (witness-good, degree >= Δ-1, while some
   degree-Δ node is good) also computes the tree edge f it will shed:
   its parent edge when z is not the NCA of its witness edge, else the
   edge to the cycle child on the su side. *)
let imp_base (view : state View.t) =
  let s = view.self in
  match (delta view, s.mark, s.hub_agg) with
  | Some d, Some m, Some _ when s.good && s.deg >= d - 1 -> (
      let f_data = shed_edge view m in
      let suppressed =
        match s.veto_agg with
        | Some { Aggregate.value = v; _ } -> v.vc.z = view.id && E.equal v.vc.e m.witness
        | None -> false
      in
      match f_data with
      | Some (f, f_child, f_child_seq) when not suppressed ->
          Some
            {
              z = view.id;
              zdeg = s.deg;
              rank = m.rank;
              e = m.witness;
              su = m.su;
              sv = m.sv;
              f;
              f_child;
              f_child_seq;
            }
      | _ -> None)
  | _ -> None

(* Veto: I am an endpoint of the agreed improvement edge but my data is
   inconsistent with the candidate: degree too high without being a
   strictly lower-ranked witness-good node. *)
let veto_base (view : state View.t) =
  let s = view.self in
  match (delta view, s.imp_agg) with
  | Some d, Some { Aggregate.value = c; _ } when E.mem c.e view.id && c.z <> view.id ->
      let other = E.other c.e view.id in
      let e_is_tree_edge =
        s.st.St_layer.parent = other
        ||
        match View.index view other with
        | i -> view.nbrs.(i).st.St_layer.parent = view.id
        | exception Not_found -> false
      in
      (* In a coherent session the carried endpoint labels are the
         endpoints' current NCA labels; a mismatch proves the witness
         predates a tree change and can never initiate. *)
      let my_side = if c.e.E.u = view.id then c.su else c.sv in
      if e_is_tree_edge then Some { vc = c; hard = true }
        (* the witness edge has since been swapped INTO the tree: the
           candidate is stale and can never initiate — flush it *)
      else if not (Nca.equal s.seq my_side) then Some { vc = c; hard = true }
      else if s.deg > d - 2 then Some { vc = c; hard = true }
        (* I am not ready to absorb an extra edge: the candidate's mark is
           dropped and the closure re-marks from fresh data; if I was a
           legitimate pending enabler my own candidate now stands alone
           and executes first — the innermost-first order of Section VII
           emerges from this retry loop rather than from stored ranks *)
      else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Switch chain *)

let incoming_token (view : state View.t) =
  let found = ref None in
  Array.iteri
    (fun i nb ->
      match nb.sw with
      | Some ({ next; _ } as sess) when next = view.id && !found = None ->
          if nb.st.St_layer.parent <> view.id then
            found := Some (view.nbr_ids.(i), view.nbrs.(i), sess)
      | _ -> ())
    view.nbrs;
  !found

let flip_step (view : state View.t) =
  match incoming_token view with
  | None -> None
  | Some (uid, u, sess) ->
      let s = view.self in
      (* Only consume tokens of the session I myself agreed to (see
         Mst_builder.flip_step: starved stale tokens must not be
         re-consumed under deterministic daemons). *)
      let backed =
        match s.imp_agg with
        | Some { Aggregate.value; _ } -> equal_icand value sess.icand
        | None -> false
      in
      if not backed then None
      else if s.st.St_layer.parent = uid then None
      else if u.st.St_layer.root <> s.st.St_layer.root || u.st.St_layer.dist + 1 > view.n - 1
      then None
      else if
        match s.sw with Some { icand = c; _ } -> equal_icand c sess.icand | None -> false
      then None
      else begin
        let next = if view.id = sess.icand.f_child then -1 else s.st.St_layer.parent in
        Some
          {
            s with
            st =
              { St_layer.parent = uid; root = u.st.St_layer.root; dist = u.st.St_layer.dist + 1 };
            sw = Some { sess with next };
            good = false;
            mark = None;
          }
      end

let token_clear_step (view : state View.t) =
  let s = view.self in
  match s.sw with
  | None -> None
  | Some { icand; next } ->
      let consumed =
        next = -1
        ||
        match View.index view next with
        | exception Not_found -> true
        | i -> view.nbrs.(i).st.St_layer.parent = view.id
      in
      (* A legitimately waiting holder always points AT its flip target
         while addressing its OLD parent, so [next = parent] is garbage.
         Unbacked tokens are left in place (the addressee refuses them);
         initiation overwrites a stale one. *)
      ignore icand;
      let garbage = next = s.st.St_layer.parent in
      if consumed || garbage then Some { s with sw = None } else None

let initiate_step (view : state View.t) =
  let s = view.self in
  match (delta view, s.imp_agg) with
  | Some d, Some { Aggregate.value = c; _ }
    when E.mem c.e view.id
         && (match s.sw with
            | Some { icand = c'; _ } -> not (equal_icand c' c)
            | None -> true)
         && s.st.St_layer.parent <> -1 -> (
      let other = E.other c.e view.id in
      match View.index view other with
      | exception Not_found -> None
      | i ->
          let onb = view.nbrs.(i) in
          let not_tree =
            s.st.St_layer.parent <> other && onb.st.St_layer.parent <> view.id
          in
          let vetoed =
            match s.veto_agg with
            | Some { Aggregate.value = v; _ } -> equal_icand v.vc c
            | None -> false
          in
          let inside = Nca.is_ancestor c.f_child_seq s.seq in
          let same_tree =
            onb.st.St_layer.root = s.st.St_layer.root
            && onb.st.St_layer.dist + 1 <= view.n - 1
          in
          let my_side = if c.e.E.u = view.id then c.su else c.sv in
          let fresh_session = Nca.equal s.seq my_side in
          if
            not_tree && (not vetoed) && inside && same_tree && fresh_session
            && s.deg <= d - 2
            && onb.deg <= d - 2
            && s.st.St_layer.parent <> other
          then begin
            let next = if view.id = c.f_child then -1 else s.st.St_layer.parent in
            Some
              {
                s with
                st =
                  {
                    St_layer.parent = other;
                    root = onb.st.St_layer.root;
                    dist = onb.st.St_layer.dist + 1;
                  };
                sw = Some { icand = c; next };
                good = false;
                mark = None;
              }
          end
          else None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The protocol *)

(* Collateral composition: the first enabled rule (in priority order)
   fires. *)
let first_enabled alternatives =
  List.fold_left
    (fun acc rule -> match acc with Some _ -> acc | None -> rule ())
    None alternatives

let rules (view : state View.t) =
  let s = view.self in
  let nbrs f = Array.to_list (Array.map f view.nbrs) in
  first_enabled
    [
      (fun () ->
        match St_layer.step view ~get:(fun x -> x.st) ~keep_shape:true with
        | Some st -> Some { s with st }
        | None -> None);
      (fun () -> flip_step view);
      (fun () -> token_clear_step view);
      (fun () ->
        let deg = deg_target view in
        if deg <> s.deg then Some { s with deg } else None);
      (fun () ->
        let size = size_target view in
        if size <> s.size then Some { s with size } else None);
      (fun () ->
        let heavy = heavy_target view in
        if heavy <> s.heavy then Some { s with heavy } else None);
      (fun () ->
        let seq = seq_target view in
        if not (Nca.equal seq s.seq) then Some { s with seq } else None);
      (fun () ->
        match
          Aggregate.step ~compare:compare_deg ~n:view.n ~base:(Some s.deg) ~self:s.dmax
            ~nbrs:(nbrs (fun nb -> nb.dmax))
        with
        | Some dmax -> Some { s with dmax }
        | None -> None);
      (fun () ->
        let good, mark = marking_target view in
        (* when a veto names me and strips my mark, remember the witness
           (with my current degree) so I do not immediately re-adopt it;
           the block expires as soon as my degree changes *)
        let blocked =
          match (s.mark, mark, s.veto_agg) with
          | Some m, None, Some { Aggregate.value = v; _ }
            when v.vc.z = view.id && E.equal v.vc.e m.witness ->
              Some (m.witness, s.deg)
          | _ -> (
              (* the block expires when my degree changes — the one local
                 event that can make the witness usable again; keeping it
                 through hub-free phases is what breaks cross-epoch
                 re-marking cycles (see DESIGN.md) *)
              match s.blocked with
              | Some (_, bdeg) when bdeg <> s.deg -> None
              | b -> b)
        in
        if good <> s.good || mark <> s.mark || blocked <> s.blocked then
          Some { s with good; mark; blocked }
        else None);
      (fun () ->
        let frag, fdist = frag_target view s.good in
        if frag <> s.frag || fdist <> s.fdist then Some { s with frag; fdist } else None);
      (fun () ->
        match
          Aggregate.step ~compare ~n:view.n ~base:(hub_base view) ~self:s.hub_agg
            ~nbrs:(nbrs (fun nb -> nb.hub_agg))
        with
        | Some hub_agg -> Some { s with hub_agg }
        | None -> None);
      (fun () ->
        match
          Aggregate.step ~compare:compare_mcand ~n:view.n ~base:(mark_base view)
            ~self:s.mark_agg ~nbrs:(nbrs (fun nb -> nb.mark_agg))
        with
        | Some mark_agg -> Some { s with mark_agg }
        | None -> None);
      (fun () ->
        match
          Aggregate.step ~compare:compare_icand ~n:view.n ~base:(imp_base view)
            ~self:s.imp_agg ~nbrs:(nbrs (fun nb -> nb.imp_agg))
        with
        | Some imp_agg -> Some { s with imp_agg }
        | None -> None);
      (fun () ->
        match
          Aggregate.step ~compare:compare_veto ~n:view.n ~base:(veto_base view)
            ~self:s.veto_agg ~nbrs:(nbrs (fun nb -> nb.veto_agg))
        with
        | Some veto_agg -> Some { s with veto_agg }
        | None -> None);
      (fun () -> initiate_step view);
    ]

(* ------------------------------------------------------------------ *)

let tree_of _g sts =

  let parent = Array.map (fun s -> s.st.St_layer.parent) sts in
  if Tree.check_parents ~root:0 parent then Some (Tree.of_parents ~root:0 parent) else None

let is_legal g sts =
  match tree_of g sts with
  | None -> false
  | Some t -> Min_degree.find_marking g t <> None

(* The Section VIII potential of the encoded tree: n·Δ_T + |{v : deg_T(v)
   = Δ_T}| (the lexicographic (Δ, N_Δ) pair of Lemma 7.1 flattened to one
   integer, as in experiment E10). 0 is unreachable — a tree always has a
   max-degree node — so the telemetry convention is phi = n·Δ + N_Δ
   relative to the FR fixpoint: we report the raw value and let the
   trajectory's plateau mark silence. *)
let potential g sts =
  match tree_of g sts with
  | None -> None
  | Some t ->
      let n = Tree.n t in
      let d = Tree.max_degree t in
      let nd = ref 0 in
      for v = 0 to n - 1 do
        if Tree.degree t v = d then incr nd
      done;
      Some ((n * d) + !nd)

let marking_of sts =
  {
    Min_degree.good = Array.map (fun s -> s.good) sts;
    fragment = Array.map (fun s -> s.frag) sts;
  }

module P = struct
  type nonrec state = state

  let equal_state (a : state) b = a = b

  let pp_state ppf s =
    Format.fprintf ppf "@[<h>%a deg=%d %s frag=%d/%d%s%s%s%s%s%s@]" St_layer.pp s.st s.deg
      (if s.good then "good" else "bad")
      s.frag s.fdist
      (match s.mark with
      | Some m -> Format.asprintf " mark=%a r%d" E.pp m.witness m.rank
      | None -> "")
      (match s.dmax with Some a -> Printf.sprintf " d%d" a.Aggregate.value | None -> "")
      (match s.hub_agg with Some a -> Printf.sprintf " hub%d" a.Aggregate.value | None -> "")
      (match s.mark_agg with
      | Some a -> Format.asprintf " mk=%a r%d" E.pp a.Aggregate.value.me a.Aggregate.value.mrank
      | None -> "")
      (match s.imp_agg with
      | Some a -> Format.asprintf " imp=z%d:%a r%d" a.Aggregate.value.z E.pp a.Aggregate.value.e a.Aggregate.value.rank
      | None -> "")
      (match s.veto_agg with
      | Some a ->
          Format.asprintf " veto=z%d%s" a.Aggregate.value.vc.z
            (if a.Aggregate.value.hard then "!" else "~")
      | None -> "")

  let seq_bits n l = Nca.size_bits n l

  let mark_bits n (m : mark) =
    Space.edge_bits n + seq_bits n m.su + seq_bits n m.sv + Space.dist_bits n
    + seq_bits n m.zseq

  let icand_bits n (c : icand) =
    (2 * Space.id_bits n)
    + (2 * Space.dist_bits n)
    + (2 * Space.edge_bits n)
    + seq_bits n c.su + seq_bits n c.sv + seq_bits n c.f_child_seq

  let mcand_bits n (c : mcand) =
    Space.edge_bits n + seq_bits n c.msu + seq_bits n c.msv + Space.dist_bits n

  let size_bits n s =
    St_layer.size_bits n s.st
    + Space.dist_bits n (* size *)
    + Space.id_bits n (* heavy *)
    + seq_bits n s.seq
    + Space.dist_bits n (* deg *)
    + Space.opt (fun (a : int Aggregate.t) -> ignore a; 2 * Space.dist_bits n) s.dmax
    + 1
    + Space.opt (mark_bits n) s.mark
    + Space.id_bits n + Space.dist_bits n (* frag, fdist *)
    + Space.opt (fun (a : int Aggregate.t) -> ignore a; 2 * Space.dist_bits n) s.hub_agg
    + Space.opt (fun (a : mcand Aggregate.t) -> mcand_bits n a.Aggregate.value + Space.dist_bits n) s.mark_agg
    + Space.opt (fun (a : icand Aggregate.t) -> icand_bits n a.Aggregate.value + Space.dist_bits n) s.imp_agg
    + Space.opt
        (fun (a : veto Aggregate.t) -> icand_bits n a.Aggregate.value.vc + 1 + Space.dist_bits n)
        s.veto_agg
    + Space.opt (fun (_, _) -> Space.edge_bits n + Space.dist_bits n) s.blocked
    + Space.opt (fun (sess : msession) -> icand_bits n sess.icand + Space.id_bits n) s.sw

  let initial _g v =
    {
      st = St_layer.self_root v;
      size = 1;
      heavy = -1;
      seq = Nca.of_root v;
      deg = 0;
      dmax = None;
      good = false;
      mark = None;
      frag = -1;
      fdist = 0;
      hub_agg = None;
      mark_agg = None;
      imp_agg = None;
      veto_agg = None;
      blocked = None;
      sw = None;
    }

  let random_state rng g _v =
    let n = Graph.n g in
    let random_seq () =
      Nca.of_pairs @@ Array.init (1 + Random.State.int rng 2) (fun _ ->
          (Random.State.int rng n, Random.State.int rng n))
    in
    let random_edge () =
      let a = Random.State.int rng n and b = Random.State.int rng n in
      if a = b then E.make a ((b + 1) mod n) (1 + Random.State.int rng (n * n))
      else E.make a b (1 + Random.State.int rng (n * n))
    in
    let random_mark () =
      {
        witness = random_edge ();
        su = random_seq ();
        sv = random_seq ();
        rank = Random.State.int rng 4;
        zseq = random_seq ();
      }
    in
    let random_icand () =
      {
        z = Random.State.int rng n;
        zdeg = Random.State.int rng n;
        rank = Random.State.int rng 4;
        e = random_edge ();
        su = random_seq ();
        sv = random_seq ();
        f = random_edge ();
        f_child = Random.State.int rng n;
        f_child_seq = random_seq ();
      }
    in
    {
      st = St_layer.random rng ~n;
      size = Random.State.int rng (n + 1);
      heavy = Random.State.int rng (n + 1) - 1;
      seq = random_seq ();
      deg = Random.State.int rng (n + 1);
      dmax =
        (if Random.State.bool rng then None
         else Some { Aggregate.value = Random.State.int rng n; hops = Random.State.int rng n });
      good = Random.State.bool rng;
      mark = (if Random.State.bool rng then Some (random_mark ()) else None);
      frag = Random.State.int rng (n + 1) - 1;
      fdist = Random.State.int rng (n + 1);
      hub_agg =
        (if Random.State.bool rng then None
         else Some { Aggregate.value = Random.State.int rng n; hops = Random.State.int rng n });
      mark_agg =
        (if Random.State.bool rng then None
         else
           Some
             {
               Aggregate.value =
                 {
                   me = random_edge ();
                   msu = random_seq ();
                   msv = random_seq ();
                   mrank = Random.State.int rng 4;
                 };
               hops = Random.State.int rng n;
             });
      imp_agg =
        (if Random.State.int rng 4 = 0 then
           Some { Aggregate.value = random_icand (); hops = Random.State.int rng n }
         else None);
      veto_agg = None;
      blocked =
        (if Random.State.int rng 4 = 0 then
           Some (random_edge (), Random.State.int rng n)
         else None);
      sw =
        (if Random.State.int rng 8 = 0 then
           Some { icand = random_icand (); next = Random.State.int rng (n + 1) - 1 }
         else None);
    }

  (* Normalize: a rule that reproduces the current register is not an
     enabled move (silence must be syntactic). *)
  let step view =
    match rules view with
    | Some s' when equal_state s' view.View.self -> None
    | r -> r
  let is_legal = is_legal
  let potential = potential

  (* Field-delta rule tag, in the priority order of [rules]. *)
  let classify =
    Some
      (fun old fresh ->
        if not (St_layer.equal old.st fresh.st) then
          if old.sw <> fresh.sw then "switch" else St_layer.classify old.st fresh.st
        else if old.sw <> fresh.sw then
          match fresh.sw with None -> "token-clear" | Some _ -> "token"
        else if old.deg <> fresh.deg then "deg"
        else if old.size <> fresh.size then "size"
        else if old.heavy <> fresh.heavy then "heavy"
        else if not (Nca.equal old.seq fresh.seq) then "seq"
        else if old.dmax <> fresh.dmax then "dmax-agg"
        else if old.good <> fresh.good || old.mark <> fresh.mark || old.blocked <> fresh.blocked
        then "marking"
        else if old.frag <> fresh.frag || old.fdist <> fresh.fdist then "frag"
        else if old.hub_agg <> fresh.hub_agg then "hub-agg"
        else if old.mark_agg <> fresh.mark_agg then "mark-agg"
        else if old.imp_agg <> fresh.imp_agg then "imp-agg"
        else if old.veto_agg <> fresh.veto_agg then "veto-agg"
        else "noop")
end

module Engine = Repro_runtime.Engine.Make (P)

(* Register codec (see Mst_builder.Codec): flat int-array serialization
   of the variable-length MDST state, for bits accounting and the
   round-trip property — not an engine representation. *)
module Codec = struct
  module C = Repro_runtime.Codec

  type nonrec state = state

  let push_edge w (e : E.t) =
    C.push w e.E.u;
    C.push w e.E.v;
    C.push w e.E.w

  let take_edge r =
    let u = C.take r in
    let v = C.take r in
    let w = C.take r in
    E.make u v w

  let push_seq w l = C.push_array w C.push_pair (Nca.to_pairs l)
  let take_seq r = Nca.of_pairs (C.take_array r C.take_pair)

  let push_mark w (m : mark) =
    push_edge w m.witness;
    push_seq w m.su;
    push_seq w m.sv;
    C.push w m.rank;
    push_seq w m.zseq

  let take_mark r =
    let witness = take_edge r in
    let su = take_seq r in
    let sv = take_seq r in
    let rank = C.take r in
    let zseq = take_seq r in
    { witness; su; sv; rank; zseq }

  let push_icand w (c : icand) =
    C.push w c.z;
    C.push w c.zdeg;
    C.push w c.rank;
    push_edge w c.e;
    push_seq w c.su;
    push_seq w c.sv;
    push_edge w c.f;
    C.push w c.f_child;
    push_seq w c.f_child_seq

  let take_icand r =
    let z = C.take r in
    let zdeg = C.take r in
    let rank = C.take r in
    let e = take_edge r in
    let su = take_seq r in
    let sv = take_seq r in
    let f = take_edge r in
    let f_child = C.take r in
    let f_child_seq = take_seq r in
    { z; zdeg; rank; e; su; sv; f; f_child; f_child_seq }

  let push_mcand w (m : mcand) =
    push_edge w m.me;
    push_seq w m.msu;
    push_seq w m.msv;
    C.push w m.mrank

  let take_mcand r =
    let me = take_edge r in
    let msu = take_seq r in
    let msv = take_seq r in
    let mrank = C.take r in
    { me; msu; msv; mrank }

  let push_veto w (v : veto) =
    push_icand w v.vc;
    C.push_bool w v.hard

  let take_veto r =
    let vc = take_icand r in
    let hard = C.take_bool r in
    { vc; hard }

  let push_agg push_v w (a : _ Aggregate.t) =
    push_v w a.Aggregate.value;
    C.push w a.Aggregate.hops

  let take_agg take_v r =
    let value = take_v r in
    let hops = C.take r in
    { Aggregate.value; hops }

  let pack ~n:_ (s : state) =
    let w = C.writer () in
    C.push w s.st.St_layer.parent;
    C.push w s.st.St_layer.root;
    C.push w s.st.St_layer.dist;
    C.push w s.size;
    C.push w s.heavy;
    push_seq w s.seq;
    C.push w s.deg;
    C.push_opt w (push_agg C.push) s.dmax;
    C.push_bool w s.good;
    C.push_opt w push_mark s.mark;
    C.push w s.frag;
    C.push w s.fdist;
    C.push_opt w (push_agg C.push) s.hub_agg;
    C.push_opt w (push_agg push_mcand) s.mark_agg;
    C.push_opt w (push_agg push_icand) s.imp_agg;
    C.push_opt w (push_agg push_veto) s.veto_agg;
    C.push_opt w
      (fun w (e, d) ->
        push_edge w e;
        C.push w d)
      s.blocked;
    C.push_opt w
      (fun w (sess : msession) ->
        push_icand w sess.icand;
        C.push w sess.next)
      s.sw;
    C.contents w

  let unpack ~n:_ a =
    let r = C.reader a in
    let parent = C.take r in
    let root = C.take r in
    let dist = C.take r in
    let size = C.take r in
    let heavy = C.take r in
    let seq = take_seq r in
    let deg = C.take r in
    let dmax = C.take_opt r (take_agg C.take) in
    let good = C.take_bool r in
    let mark = C.take_opt r take_mark in
    let frag = C.take r in
    let fdist = C.take r in
    let hub_agg = C.take_opt r (take_agg C.take) in
    let mark_agg = C.take_opt r (take_agg take_mcand) in
    let imp_agg = C.take_opt r (take_agg take_icand) in
    let veto_agg = C.take_opt r (take_agg take_veto) in
    let blocked =
      C.take_opt r (fun r ->
          let e = take_edge r in
          let d = C.take r in
          (e, d))
    in
    let sw =
      C.take_opt r (fun r ->
          let icand = take_icand r in
          let next = C.take r in
          { icand; next })
    in
    C.expect_end r;
    {
      st = { St_layer.parent; root; dist };
      size;
      heavy;
      seq;
      deg;
      dmax;
      good;
      mark;
      frag;
      fdist;
      hub_agg;
      mark_agg;
      imp_agg;
      veto_agg;
      blocked;
      sw;
    }
end
