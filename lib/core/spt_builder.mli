(** Silent self-stabilizing shortest-path spanning tree (SPT)
    construction — the weighted sibling of the Section III BFS example,
    covering the shortest-path-tree family the paper lists in its related
    work ([38], [44]).

    Every node maintains [(parent, root, wdist)] where [wdist] is the
    weighted distance to the elected (min-id) root. The proof-labeling
    scheme is the weighted distance labeling: a node rejects iff some
    incident edge [(v,u)] has [wdist(u) + w(u,v) < wdist(v)] (the
    Bellman-Ford optimality certificate); the repair rule relaxes to the
    best neighbor, which is simultaneously the PLS-guided swap
    [e = {v,u}], [f = {v, p(v)}]. Fake roots and parent cycles die by a
    count-to-bound on the hop count, carried alongside the weighted
    distance. O(log n)-bit registers (weights are O(log n) bits), O(n·W)
    convergence where W bounds edge weights. *)

type state = { parent : int; root : int; wdist : int; hops : int }

module P : Repro_runtime.Protocol.S with type state = state

module Engine : module type of Repro_runtime.Engine.Make (P)

(** The same protocol on a 4-lane register bank
    ([parent], [root], [wdist], [hops]), for the struct-of-arrays engine
    (the big-n bench tier; see SCALING.md). *)
module Packed : Repro_runtime.Protocol.PACKED with type state = state

module Engine_packed : module type of Repro_runtime.Engine_packed.Make (Packed)

(** Weighted single-source distances (Dijkstra) from node 0 — the legality
    reference. *)
val dijkstra : Repro_graph.Graph.t -> src:int -> int array

(** Global legality: spanning tree rooted at node 0 whose [wdist] fields
    are the exact weighted distances and whose parent edges realize
    them. *)
val is_spt : Repro_graph.Graph.t -> state array -> bool

(** The potential [Σ_v |wdist(v) − dist_w(v)|], capped per node. *)
val potential : Repro_graph.Graph.t -> state array -> int
