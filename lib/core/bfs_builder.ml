module Graph = Repro_graph.Graph
module Traversal = Repro_graph.Traversal
module View = Repro_runtime.View

let is_bfs_tree g sts =
  St_layer.is_legal g sts
  &&
  let d = Traversal.bfs_distances g ~src:0 in
  let ok = ref true in
  Array.iteri (fun v (s : St_layer.t) -> if s.dist <> d.(v) then ok := false) sts;
  !ok

let potential g sts =
  let d = Traversal.bfs_distances g ~src:0 in
  let n = Graph.n g in
  let total = ref 0 in
  Array.iteri
    (fun v (s : St_layer.t) ->
      let dv = if s.St_layer.dist < 0 then n else min s.St_layer.dist n in
      total := !total + abs (dv - min d.(v) n))
    sts;
  !total

module P = struct
  type state = St_layer.t

  let equal_state = St_layer.equal
  let pp_state = St_layer.pp
  let size_bits = St_layer.size_bits
  let initial _g v = St_layer.self_root v
  let random_state rng g _v = St_layer.random rng ~n:(Graph.n g)
  let step view = St_layer.step view ~get:Fun.id ~keep_shape:false
  let is_legal = is_bfs_tree
  let potential g sts = Some (potential g sts)
  let classify = Some St_layer.classify
end

module Engine = Repro_runtime.Engine.Make (P)

module Packed = struct
  include P

  let words = St_layer.words
  let pack ~n:_ s = St_layer.pack s
  let unpack ~n:_ a = St_layer.unpack a
  let step_packed pv = St_layer.step_packed pv ~keep_shape:false
end

module Engine_packed = Repro_runtime.Engine_packed.Make (Packed)

let verify (view : St_layer.t View.t) =
  View.for_all (fun _ _ (u : St_layer.t) -> u.dist >= view.View.self.St_layer.dist - 1) view
