module Graph = Repro_graph.Graph
module Tree = Repro_graph.Tree
module Mst = Repro_graph.Mst
module View = Repro_runtime.View
module Space = Repro_runtime.Space
module Nca = Repro_labels.Nca_labels
module FL = Repro_labels.Fragment_labels
module E = Graph.Edge

type cand = { lvl : int; e : E.t; su : Nca.label; sv : Nca.label }
type cut = { cand : cand; f : E.t; f_child : int; f_child_seq : Nca.label }
type session = { cut : cut; next : int }

type state = {
  st : St_layer.t;
  size : int;
  heavy : int;
  seq : Nca.label;
  frags : FL.label;
  cand_agg : cand Aggregate.t option;
  cut_agg : cut Aggregate.t option;
  sw : session option;
}

let compare_cand a b =
  let c = compare a.lvl b.lvl in
  if c <> 0 then c
  else
    let c = E.compare a.e b.e in
    if c <> 0 then c else compare (a.su, a.sv) (b.su, b.sv)

(* Cuts are ordered by their candidate first; among cuts for the same
   candidate the HEAVIEST f wins (Tarjan's red rule), so f compares
   reversed. *)
let compare_cut a b =
  let c = compare_cand a.cand b.cand in
  if c <> 0 then c
  else
    let c = E.compare b.f a.f in
    if c <> 0 then c else compare (a.f_child, a.f_child_seq) (b.f_child, b.f_child_seq)

let equal_cand a b = compare_cand a b = 0
let equal_cut a b = compare_cut a b = 0

(* ------------------------------------------------------------------ *)
(* Local structural helpers *)

let children_of (view : state View.t) =
  let acc = ref [] in
  for i = view.degree - 1 downto 0 do
    if view.nbrs.(i).st.St_layer.parent = view.id then
      acc := (view.nbr_ids.(i), view.nbr_weights.(i), view.nbrs.(i)) :: !acc
  done;
  !acc

(* Incident tree edges: to the parent and to each child. *)
let incident_tree_edges (view : state View.t) =
  let parent_edge =
    let p = view.self.st.St_layer.parent in
    if p = -1 then []
    else
      match View.index view p with
      | i -> [ (view.nbr_ids.(i), view.nbr_weights.(i), view.nbrs.(i)) ]
      | exception Not_found -> []
  in
  parent_edge @ children_of view

(* ------------------------------------------------------------------ *)
(* Label targets (local fixpoints) *)

let size_target view =
  List.fold_left (fun acc (_, _, c) -> acc + c.size) 1 (children_of view)

let heavy_target view =
  List.fold_left
    (fun best (id, _, c) ->
      match best with
      | None -> Some (id, c.size)
      | Some (_, bs) -> if c.size > bs then Some (id, c.size) else best)
    None (children_of view)
  |> function
  | Some (id, _) -> id
  | None -> -1

let seq_target (view : state View.t) =
  let s = view.self in
  if s.st.St_layer.parent = -1 then Nca.of_root view.id
  else
    match View.index view s.st.St_layer.parent with
    | exception Not_found -> s.seq (* tree layer will fire first *)
    | i ->
        let p = view.nbrs.(i) in
        if p.heavy = view.id then Nca.extend_heavy p.seq
        else Nca.extend_light p.seq ~child:view.id

(* The Borůvka-trace target, computed level by level from the neighbors'
   published arrays (Section VI). Level 0 is purely local; level i+1
   aggregates within the (certified) merged region via fdist/odist
   chains. *)
let frags_target (view : state View.t) : FL.label =
  let n = view.n in
  let cap = Space.log2_ceil (max 2 n) + 1 in
  let tree_nbrs = incident_tree_edges view in
  let entry_of (nb : state) i : FL.entry option =
    if i < Array.length nb.frags then Some nb.frags.(i) else None
  in
  let min_own_out pred =
    List.fold_left
      (fun best (id, w, _) ->
        if pred id then
          let e = E.make view.id id w in
          match best with
          | Some b when E.compare b e <= 0 -> best
          | _ -> Some e
        else best)
      None tree_nbrs
  in
  let out = ref [] in
  let continue_ = ref true in
  let level = ref 0 in
  let prev = ref None in
  while !continue_ && !level < cap do
    let i = !level in
    let entry =
      if i = 0 then begin
        let o = min_own_out (fun _ -> true) in
        { FL.frag = view.id; fdist = 0; out = o; odist = 0 }
      end
      else begin
        let p = match !prev with Some p -> p | None -> assert false in
        match p.FL.out with
        | None -> (* previous level was top; unreachable because we stop *) assert false
        | Some _ ->
            (* Which tree neighbors are merged with me at level i? *)
            let merged (id, w, nb) =
              match entry_of nb (i - 1) with
              | None -> false
              | Some ne ->
                  let edge = E.make view.id id w in
                  ne.FL.frag = p.FL.frag
                  || (match p.FL.out with Some o -> E.equal o edge | None -> false)
                  || match ne.FL.out with Some o -> E.equal o edge | None -> false
            in
            (* frag/fdist: min previous-level id over the merged region. *)
            let frag, fdist =
              List.fold_left
                (fun (bf, bd) (_, _, nb) ->
                  match entry_of nb i with
                  | Some ne when ne.FL.fdist + 1 <= n && (ne.FL.frag, ne.FL.fdist + 1) < (bf, bd)
                    ->
                      (ne.FL.frag, ne.FL.fdist + 1)
                  | _ -> (bf, bd))
                (p.FL.frag, 0)
                (List.filter merged tree_nbrs)
            in
            (* out/odist: min outgoing tree edge over level-i mates. *)
            let own = min_own_out (fun id ->
                match View.index view id with
                | exception Not_found -> false
                | j -> (
                    match entry_of view.nbrs.(j) i with
                    | Some ne -> ne.FL.frag <> frag
                    | None -> false))
            in
            let best_out =
              List.fold_left
                (fun acc (_, _, nb) ->
                  match entry_of nb i with
                  | Some ne when ne.FL.frag = frag -> (
                      match ne.FL.out with
                      | Some o when ne.FL.odist + 1 <= n -> (
                          match acc with
                          | Some (b, bd) ->
                              if
                                E.compare o b < 0
                                || (E.equal o b && ne.FL.odist + 1 < bd)
                              then Some (o, ne.FL.odist + 1)
                              else acc
                          | None -> Some (o, ne.FL.odist + 1))
                      | _ -> acc)
                  | _ -> acc)
                (match own with Some o -> Some (o, 0) | None -> None)
                tree_nbrs
            in
            (match best_out with
            | Some (o, od) -> { FL.frag; fdist; out = Some o; odist = od }
            | None -> { FL.frag; fdist; out = None; odist = 0 })
      end
    in
    out := entry :: !out;
    prev := Some entry;
    if entry.FL.out = None then continue_ := false;
    incr level
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Candidate and cut bases *)

let cand_base (view : state View.t) =
  let s = view.self in
  let best = ref None in
  Array.iteri
    (fun j y ->
      let nb = view.nbrs.(j) in
      let w = view.nbr_weights.(j) in
      let e = E.make view.id y w in
      Array.iteri
        (fun i (en : FL.entry) ->
          match en.FL.out with
          | None -> ()
          | Some out ->
              if i < Array.length nb.frags && nb.frags.(i).FL.frag <> en.FL.frag then
                if E.compare e out < 0 then begin
                  let c = { lvl = i; e; su = s.seq; sv = nb.seq } in
                  match !best with
                  | Some b when compare_cand b c <= 0 -> ()
                  | _ -> best := Some c
                end)
        s.frags)
    view.nbr_ids;
  !best

let cut_base (view : state View.t) =
  let s = view.self in
  match s.cand_agg with
  | None -> None
  | Some { Aggregate.value = c; _ } ->
      if s.st.St_layer.parent = -1 then None
      else begin
        let w = Nca.nca c.su c.sv in
        if Nca.equal s.seq w then None
        else if Nca.on_cycle ~x:s.seq ~u:c.su ~v:c.sv then begin
          match View.index view s.st.St_layer.parent with
          | exception Not_found -> None
          | i ->
              let f = E.make view.id view.nbr_ids.(i) view.nbr_weights.(i) in
              Some { cand = c; f; f_child = view.id; f_child_seq = s.seq }
        end
        else None
      end

(* ------------------------------------------------------------------ *)
(* Switch chain *)

(* A neighbor holds a token addressed to me: consume it. *)
let incoming_token (view : state View.t) =
  let found = ref None in
  Array.iteri
    (fun i nb ->
      match nb.sw with
      | Some { cut; next } when next = view.id && !found = None ->
          (* Sanity: the handing neighbor must have flipped onto its own
             predecessor already (its parent is not me). *)
          if nb.st.St_layer.parent <> view.id then
            found := Some (view.nbr_ids.(i), view.nbrs.(i), cut)
      | _ -> ())
    view.nbrs;
  !found

let flip_step (view : state View.t) =
  match incoming_token view with
  | None -> None
  | Some (uid, u, cut) ->
      let s = view.self in
      (* Only consume tokens of the session I myself agreed to: a starved
         neighbor's stale token (its holder never being scheduled to
         clear it) must not be re-consumed — deterministic daemons can
         otherwise ping-pong a node between two standing tokens. My own
         aggregate is frozen until I flip (flip outranks aggregate
         updates), so for a live chain this always matches. *)
      let backed =
        match s.cut_agg with
        | Some { Aggregate.value; _ } -> equal_cut value cut
        | None -> false
      in
      if not backed then None
      else if s.st.St_layer.parent = uid then None
      else if u.st.St_layer.root <> s.st.St_layer.root || u.st.St_layer.dist + 1 > view.n - 1
      then None
      else if (match s.sw with Some { cut = c; _ } -> equal_cut c cut | None -> false)
      then None
      else begin
        let next = if view.id = cut.f_child then -1 else s.st.St_layer.parent in
        Some
          {
            s with
            st =
              { St_layer.parent = uid; root = u.st.St_layer.root; dist = u.st.St_layer.dist + 1 };
            sw = Some { cut; next };
          }
      end

(* Drop my token once the addressee has taken it (its parent is me),
   when it is garbage (addressee not a neighbor / chain complete), or
   when the session is no longer backed by the live cut agreement —
   the timeout that flushes tokens surviving from arbitrary initial
   configurations. *)
let token_clear_step (view : state View.t) =
  let s = view.self in
  match s.sw with
  | None -> None
  | Some { cut; next } ->
      let consumed =
        next = -1
        ||
        match View.index view next with
        | exception Not_found -> true
        | i -> view.nbrs.(i).st.St_layer.parent = view.id
      in
      (* A legitimately waiting holder always points AT its flip target
         while addressing its OLD parent, so [next = parent] is garbage
         (e.g. a token surviving from an arbitrary initial state whose
         addressee would otherwise ignore it forever). Unbacked-but-
         wellformed tokens are NOT cleared here — the addressee refuses
         them anyway, and clearing them early would abort live chains
         whose holder's aggregates churn first under an unfair daemon;
         instead, initiation simply ignores (and overwrites) a stale
         token. *)
      ignore cut;
      let garbage = next = s.st.St_layer.parent in
      if consumed || garbage then Some { s with sw = None } else None

(* Initiation: I am the endpoint of the agreed candidate edge e inside
   the detached subtree; re-parent across e and send the token upward. *)
let initiate_step (view : state View.t) =
  let s = view.self in
  match (s.cand_agg, s.cut_agg) with
  | Some { Aggregate.value = c; _ }, Some { Aggregate.value = cut; _ }
    when equal_cand c cut.cand && E.mem c.e view.id && s.st.St_layer.parent <> -1 ->
      let other = E.other c.e view.id in
      if s.st.St_layer.parent = other then None
      else if not (Nca.is_ancestor cut.f_child_seq s.seq) then None
      else if
        (* a live token blocks re-initiation; a stale (unbacked) one is
           overwritten *)
        match s.sw with
        | Some { cut = c'; _ } -> equal_cut c' cut
        | None -> false
      then None
      else if E.compare c.e cut.f >= 0 then None
        (* Tarjan's red rule requires f strictly heavier than e; the
           weight guard also makes every completed session strictly
           decrease the tree weight, so bogus transient sessions cannot
           cycle. *)
      else begin
        match View.index view other with
        | exception Not_found -> None
        | i when view.nbrs.(i).st.St_layer.parent = view.id ->
            None (* e is a tree edge through the other endpoint *)
        | i
          when view.nbrs.(i).st.St_layer.root <> s.st.St_layer.root
               || view.nbrs.(i).st.St_layer.dist + 1 > view.n - 1 ->
            None (* never re-parent across trees: the election owns that *)
        | i ->
            let u = view.nbrs.(i) in
            let next = if view.id = cut.f_child then -1 else s.st.St_layer.parent in
            Some
              {
                s with
                st =
                  {
                    St_layer.parent = other;
                    root = u.st.St_layer.root;
                    dist = u.st.St_layer.dist + 1;
                  };
                sw = Some { cut; next };
              }
      end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The protocol *)

(* Collateral composition: the first enabled rule (in priority order)
   fires. *)
let first_enabled alternatives =
  List.fold_left
    (fun acc rule -> match acc with Some _ -> acc | None -> rule ())
    None alternatives

let rules (view : state View.t) =
  let s = view.self in
  let nbrs f = Array.to_list (Array.map f view.nbrs) in
  first_enabled
    [
      (* 1. Tree layer. *)
      (fun () ->
        match St_layer.step view ~get:(fun x -> x.st) ~keep_shape:true with
        | Some st -> Some { s with st }
        | None -> None);
      (* 2. Switch hand-off — outranks label repair so chains complete
         without racing the relabeling. *)
      (fun () -> flip_step view);
      (fun () -> token_clear_step view);
      (* 3. Label layers. *)
      (fun () ->
        let size = size_target view in
        if size <> s.size then Some { s with size } else None);
      (fun () ->
        let heavy = heavy_target view in
        if heavy <> s.heavy then Some { s with heavy } else None);
      (fun () ->
        let seq = seq_target view in
        if not (Nca.equal seq s.seq) then Some { s with seq } else None);
      (fun () ->
        let frags = frags_target view in
        if not (FL.equal frags s.frags) then Some { s with frags } else None);
      (* 4. Aggregates. *)
      (fun () ->
        match
          Aggregate.step ~compare:compare_cand ~n:view.n ~base:(cand_base view)
            ~self:s.cand_agg
            ~nbrs:(nbrs (fun nb -> nb.cand_agg))
        with
        | Some cand_agg -> Some { s with cand_agg }
        | None -> None);
      (fun () ->
        match
          Aggregate.step ~compare:compare_cut ~n:view.n ~base:(cut_base view)
            ~self:s.cut_agg
            ~nbrs:(nbrs (fun nb -> nb.cut_agg))
        with
        | Some cut_agg -> Some { s with cut_agg }
        | None -> None);
      (* 5. Chain initiation. *)
      (fun () -> initiate_step view);
    ]

(* ------------------------------------------------------------------ *)

let tree_of _g sts =
  let parent = Array.map (fun s -> s.st.St_layer.parent) sts in
  if Tree.check_parents ~root:0 parent then Some (Tree.of_parents ~root:0 parent) else None

let is_legal g sts =
  match tree_of g sts with None -> false | Some t -> Mst.is_mst g t

let potential g sts =
  match tree_of g sts with
  | None -> None
  | Some t -> Some (FL.potential g t (FL.prover g t))

module P = struct
  type nonrec state = state

  let equal_state a b =
    St_layer.equal a.st b.st && a.size = b.size && a.heavy = b.heavy
    && Nca.equal a.seq b.seq && FL.equal a.frags b.frags
    && Aggregate.equal equal_cand a.cand_agg b.cand_agg
    && Aggregate.equal equal_cut a.cut_agg b.cut_agg
    && a.sw = b.sw

  let pp_state ppf s =
    Format.fprintf ppf "@[<h>%a size=%d heavy=%d seq=%a k=%d%s%s%s@]" St_layer.pp s.st s.size
      s.heavy Nca.pp s.seq (Array.length s.frags)
      (match s.cand_agg with Some _ -> " cand" | None -> "")
      (match s.cut_agg with Some _ -> " cut" | None -> "")
      (match s.sw with Some _ -> " sw" | None -> "")

  let seq_bits n l = Nca.size_bits n l

  let cand_bits n c = Space.edge_bits n + Space.dist_bits n + seq_bits n c.su + seq_bits n c.sv

  let cut_bits n c =
    cand_bits n c.cand + Space.edge_bits n + Space.id_bits n + seq_bits n c.f_child_seq

  let size_bits n s =
    St_layer.size_bits n s.st + Space.dist_bits n + Space.id_bits n + seq_bits n s.seq
    + FL.size_bits n s.frags
    + Space.opt (fun (a : cand Aggregate.t) -> cand_bits n a.Aggregate.value + Space.dist_bits n) s.cand_agg
    + Space.opt (fun (a : cut Aggregate.t) -> cut_bits n a.Aggregate.value + Space.dist_bits n) s.cut_agg
    + Space.opt (fun (sess : session) -> cut_bits n sess.cut + Space.id_bits n) s.sw

  let initial _g v =
    {
      st = St_layer.self_root v;
      size = 1;
      heavy = -1;
      seq = Nca.of_root v;
      frags = [| { FL.frag = v; fdist = 0; out = None; odist = 0 } |];
      cand_agg = None;
      cut_agg = None;
      sw = None;
    }

  let random_state rng g _v =
    let n = Graph.n g in
    let random_seq () =
      Nca.of_pairs @@ Array.init
        (1 + Random.State.int rng 2)
        (fun _ -> (Random.State.int rng n, Random.State.int rng n))
    in
    let random_edge () =
      let a = Random.State.int rng n and b = Random.State.int rng n in
      if a = b then E.make a ((b + 1) mod n) (1 + Random.State.int rng (n * n))
      else E.make a b (1 + Random.State.int rng (n * n))
    in
    let random_entry () =
      {
        FL.frag = Random.State.int rng n;
        fdist = Random.State.int rng n;
        out = (if Random.State.bool rng then Some (random_edge ()) else None);
        odist = Random.State.int rng n;
      }
    in
    let random_cand () =
      { lvl = Random.State.int rng 3; e = random_edge (); su = random_seq (); sv = random_seq () }
    in
    {
      st = St_layer.random rng ~n;
      size = Random.State.int rng (n + 1);
      heavy = Random.State.int rng (n + 1) - 1;
      seq = random_seq ();
      frags = Array.init (1 + Random.State.int rng 3) (fun _ -> random_entry ());
      cand_agg =
        (if Random.State.bool rng then None
         else Some { Aggregate.value = random_cand (); hops = Random.State.int rng n });
      cut_agg =
        (if Random.State.bool rng then None
         else
           Some
             {
               Aggregate.value =
                 {
                   cand = random_cand ();
                   f = random_edge ();
                   f_child = Random.State.int rng n;
                   f_child_seq = random_seq ();
                 };
               hops = Random.State.int rng n;
             });
      sw =
        (if Random.State.int rng 4 = 0 then
           Some
             {
               cut =
                 {
                   cand = random_cand ();
                   f = random_edge ();
                   f_child = Random.State.int rng n;
                   f_child_seq = random_seq ();
                 };
               next = Random.State.int rng (n + 1) - 1;
             }
         else None);
    }

  (* Normalize: a rule that reproduces the current register is not an
     enabled move (silence must be syntactic). *)
  let step view =
    match rules view with
    | Some s' when equal_state s' view.View.self -> None
    | r -> r
  let is_legal = is_legal
  let potential = potential

  (* Field-delta rule tag, in the priority order of [rules]: a reparent
     with a session write is the switching rule (flip or initiate — the
     delta cannot tell them apart), a session write alone is token
     bookkeeping, then the convergecast layers by first differing
     field. *)
  let classify =
    Some
      (fun old fresh ->
        if not (St_layer.equal old.st fresh.st) then
          if old.sw <> fresh.sw then "switch" else St_layer.classify old.st fresh.st
        else if old.sw <> fresh.sw then
          match fresh.sw with None -> "token-clear" | Some _ -> "token"
        else if old.size <> fresh.size then "size"
        else if old.heavy <> fresh.heavy then "heavy"
        else if not (Nca.equal old.seq fresh.seq) then "seq"
        else if not (FL.equal old.frags fresh.frags) then "frags"
        else if not (Aggregate.equal equal_cand old.cand_agg fresh.cand_agg) then "cand-agg"
        else if not (Aggregate.equal equal_cut old.cut_agg fresh.cut_agg) then "cut-agg"
        else "noop")
end

module Engine = Repro_runtime.Engine.Make (P)

(* Register codec: the nested, variable-length MST state serialized to a
   flat int array through the self-delimiting encodings of
   Repro_runtime.Codec. The MST register has no fixed width — [seq] can
   transiently hold up to tree-depth pairs — so this codec does not
   drive the packed engine; it grounds the bits accounting of
   PAPER_MAP.md and is round-trip-pinned by test_packed. *)
module Codec = struct
  module C = Repro_runtime.Codec

  type nonrec state = state

  let push_edge w (e : E.t) =
    C.push w e.E.u;
    C.push w e.E.v;
    C.push w e.E.w

  let take_edge r =
    let u = C.take r in
    let v = C.take r in
    let w = C.take r in
    E.make u v w

  let push_seq w l = C.push_array w C.push_pair (Nca.to_pairs l)
  let take_seq r = Nca.of_pairs (C.take_array r C.take_pair)

  let push_entry w (en : FL.entry) =
    C.push w en.FL.frag;
    C.push w en.FL.fdist;
    C.push_opt w push_edge en.FL.out;
    C.push w en.FL.odist

  let take_entry r =
    let frag = C.take r in
    let fdist = C.take r in
    let out = C.take_opt r take_edge in
    let odist = C.take r in
    { FL.frag; fdist; out; odist }

  let push_cand w c =
    C.push w c.lvl;
    push_edge w c.e;
    push_seq w c.su;
    push_seq w c.sv

  let take_cand r =
    let lvl = C.take r in
    let e = take_edge r in
    let su = take_seq r in
    let sv = take_seq r in
    { lvl; e; su; sv }

  let push_cut w c =
    push_cand w c.cand;
    push_edge w c.f;
    C.push w c.f_child;
    push_seq w c.f_child_seq

  let take_cut r =
    let cand = take_cand r in
    let f = take_edge r in
    let f_child = C.take r in
    let f_child_seq = take_seq r in
    { cand; f; f_child; f_child_seq }

  let push_agg push_v w (a : _ Aggregate.t) =
    push_v w a.Aggregate.value;
    C.push w a.Aggregate.hops

  let take_agg take_v r =
    let value = take_v r in
    let hops = C.take r in
    { Aggregate.value; hops }

  let pack ~n:_ (s : state) =
    let w = C.writer () in
    C.push w s.st.St_layer.parent;
    C.push w s.st.St_layer.root;
    C.push w s.st.St_layer.dist;
    C.push w s.size;
    C.push w s.heavy;
    push_seq w s.seq;
    C.push_array w push_entry s.frags;
    C.push_opt w (push_agg push_cand) s.cand_agg;
    C.push_opt w (push_agg push_cut) s.cut_agg;
    C.push_opt w
      (fun w (sess : session) ->
        push_cut w sess.cut;
        C.push w sess.next)
      s.sw;
    C.contents w

  let unpack ~n:_ a =
    let r = C.reader a in
    let parent = C.take r in
    let root = C.take r in
    let dist = C.take r in
    let size = C.take r in
    let heavy = C.take r in
    let seq = take_seq r in
    let frags = C.take_array r take_entry in
    let cand_agg = C.take_opt r (take_agg take_cand) in
    let cut_agg = C.take_opt r (take_agg take_cut) in
    let sw =
      C.take_opt r (fun r ->
          let cut = take_cut r in
          let next = C.take r in
          { cut; next })
    in
    C.expect_end r;
    { st = { St_layer.parent; root; dist }; size; heavy; seq; frags; cand_agg; cut_agg; sw }
end
