(* Convergence inspection: run the MST builder with the telemetry sink
   attached and read the per-round phi trajectory — the potential of
   Section VI decreasing to 0 — together with write/bit statistics and
   the per-node activity from the step-level trace.

     dune exec examples/trace_inspection.exe *)

open Repro_graph
open Repro_runtime
open Repro_core
module ME = Mst_builder.Engine

let () =
  let rng = Random.State.make [| 17 |] in
  let g = Generators.gnp rng ~n:16 ~p:0.3 in
  Format.printf "network: n=%d m=%d@." (Graph.n g) (Graph.m g);

  let telemetry = Telemetry.create () in
  let trace = Trace.create ~capacity:2000 () in
  let r =
    ME.run g (Scheduler.Central Scheduler.Round_robin) rng ~init:(ME.initial g) ~telemetry
      ~on_step:(Trace.on_step trace Mst_builder.P.pp_state)
      ~on_round:(Trace.on_round trace)
  in
  Format.printf "silent=%b legal=%b %a@." r.ME.silent r.ME.legal Telemetry.pp telemetry;

  (* The phi trajectory, compressed to its change points: phi is undefined
     until the registers encode a tree, then decreases cyclically to 0
     (Lemma 3.1 / Section VI). *)
  Format.printf "@.phi trajectory (round: phi at each change):@.";
  let last = ref min_int in
  List.iter
    (fun (round, phi) ->
      if phi <> !last then begin
        Format.printf "  round %4d: phi = %d@." round phi;
        last := phi
      end)
    (Telemetry.phi_series telemetry);

  Format.printf "@.write counts per node (retained window of %d):@." (Trace.capacity trace);
  List.iter (fun (node, count) -> Format.printf "  node %2d: %4d writes@." node count)
    (Trace.activity trace);

  Format.printf "@.aggregated metrics:@.%a" Metrics.pp (Telemetry.registry telemetry)
