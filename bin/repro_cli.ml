(* Command-line driver: run any of the self-stabilizing constructions on
   any generated topology and report convergence statistics.

     dune exec bin/repro_cli.exe -- run --algo mst --graph gnp --nodes 30
     dune exec bin/repro_cli.exe -- run --algo mdst --graph geometric \
         --nodes 24 --sched adversary --adversarial
     dune exec bin/repro_cli.exe -- list *)

open Repro_graph
open Repro_runtime
open Repro_core
open Repro_baselines

type outcome = {
  algo : string;
  silent : bool;
  legal : bool;
  rounds : int;
  steps : int;
  max_bits : int;
  note : string;
  verdict : string option;
  failed : bool;
}

let report o =
  Format.printf "algorithm    : %s@." o.algo;
  Format.printf "silent       : %b@." o.silent;
  Format.printf "legal        : %b@." o.legal;
  Format.printf "rounds       : %d@." o.rounds;
  Format.printf "steps        : %d@." o.steps;
  Format.printf "max register : %d bits@." o.max_bits;
  (match o.verdict with Some v -> Format.printf "verdict      : %s@." v | None -> ());
  if o.note <> "" then Format.printf "result       : %s@." o.note

let edges_json g =
  Metrics.Json.List
    (Array.to_list (Graph.edges g)
    |> List.map (fun (e : Graph.Edge.t) ->
           Metrics.Json.(List [ Int e.u; Int e.v; Int e.w ])))

let run_algo algo g sched rng ~adversarial ~faults ~max_rounds ?(meta = []) ?metrics_out
    ?trace_out () =
  let generic (type s) (module P : Protocol.S with type state = s) ~note =
    let module E = Engine.Make (P) in
    (* One JSONL sink spans the whole invocation — initial run, --faults
       injection (as Fault events), recovery run — so recovery moves'
       cause chains reach back to the injection (see OBSERVABILITY.md).
       Per-round Φ only where the potential is cheap. *)
    let trace_oc = Option.map open_out trace_out in
    let events =
      Option.map
        (fun oc ->
          let sink = Events.stream ~record_phi:(List.mem algo [ "bfs"; "spt" ]) oc in
          Events.meta sink (meta @ [ ("edges", edges_json g) ]);
          sink)
        trace_oc
    in
    (* Each run gets fresh telemetry and watchdog, so after fault injection
       the emitted series is the recovery run — the one under study. *)
    let observed ?init_causes ?(round_offset = 0) ?(step_offset = 0) ~init () =
      let telemetry = Option.map (fun _ -> Telemetry.create ()) metrics_out in
      (* Observe-only watchdog: classify a non-silent exit (livelock vs
         bare exhaustion) instead of just reporting the hit limit. *)
      let wd = Watchdog.create () in
      let on_round round states =
        Watchdog.observe_round wd ~round ~hash:(Watchdog.config_hash states) ~phi:None
          ~snap:(fun () -> Marshal.to_string states [])
      in
      let r =
        E.run ~max_rounds ?telemetry ~on_round ?events ?init_causes ~round_offset
          ~step_offset g sched rng ~init
      in
      (r, telemetry, wd)
    in
    let init = if adversarial then E.adversarial rng g else E.initial g in
    let first = observed ~init () in
    let faults_skipped = ref false in
    let r, telemetry, wd =
      let r, _, _ = first in
      if faults > 0 then
        if r.E.silent then begin
          (* Pick first, corrupt second (same RNG stream as Fault.corrupt)
             so the fault events name the nodes actually hit and the
             recovery run's initially-enabled nodes can be attributed. *)
          let picked = Fault.pick_nodes rng ~n:(Graph.n g) ~k:faults in
          let corrupted =
            Fault.corrupt_nodes rng ~random_state:P.random_state g r.E.states picked
          in
          let init_causes =
            Option.map
              (fun sink ->
                let eids =
                  List.map
                    (fun v -> (v, Events.emit_fault sink ~node:v ~round:r.E.rounds))
                    picked
                in
                fun v ->
                  List.filter_map
                    (fun (u, e) -> if u = v || Graph.has_edge g u v then Some e else None)
                    eids)
              events
          in
          Format.printf "(injected %d faults after stabilization)@." faults;
          observed ?init_causes ~round_offset:r.E.rounds ~step_offset:r.E.steps
            ~init:corrupted ()
        end
        else begin
          faults_skipped := true;
          Format.eprintf
            "warning: --faults %d requested but the first run never stabilized (hit \
             its limits while non-silent); fault injection skipped@."
            faults;
          first
        end
      else first
    in
    (match (metrics_out, telemetry) with
    | Some path, Some tel ->
        Telemetry.write_json ~meta path tel;
        Format.printf "metrics      : written to %s (%a)@." path Telemetry.pp tel
    | _ -> ());
    (match (trace_out, events) with
    | Some path, Some sink ->
        Option.iter close_out trace_oc;
        Format.printf "trace        : %d events written to %s@." (Events.total sink) path
    | _ -> ());
    {
      algo;
      silent = r.E.silent;
      legal = r.E.legal;
      rounds = r.E.rounds;
      steps = r.E.steps;
      max_bits = r.E.max_bits;
      note = note r.E.states;
      verdict =
        (if r.E.silent then None
         else
           Some
             (Format.asprintf "%a" Watchdog.pp_verdict
                (Watchdog.verdict wd ~silent:false)));
      failed = !faults_skipped;
    }
  in
  match algo with
  | "bfs" ->
      generic
        (module Bfs_builder.P)
        ~note:(fun sts ->
          Printf.sprintf "phi = %d" (Bfs_builder.potential g sts))
  | "mst" ->
      generic
        (module Mst_builder.P)
        ~note:(fun sts ->
          match Mst_builder.tree_of g sts with
          | Some t ->
              Printf.sprintf "tree weight %d (MST weight %d)" (Tree.weight t g)
                (Mst.mst_weight g)
          | None -> "no tree")
  | "mdst" ->
      generic
        (module Mdst_builder.P)
        ~note:(fun sts ->
          match Mdst_builder.tree_of g sts with
          | Some t ->
              let fr, _, _ = Min_degree.furer_raghavachari g ~root:0 in
              Printf.sprintf "tree degree %d (sequential FR: %d)" (Tree.max_degree t)
                (Tree.max_degree fr)
          | None -> "no tree")
  | "spt" ->
      generic
        (module Spt_builder.P)
        ~note:(fun sts ->
          Printf.sprintf "potential = %d" (Spt_builder.potential g sts))
  | "adhoc-bfs" -> generic (module Adhoc_bfs.P) ~note:(fun _ -> "")
  | "compact-mst" ->
      generic
        (module Compact_mst.P)
        ~note:(fun _ ->
          if adversarial then "uncertified: may be silent yet wrong from garbage" else "")
  | "fullinfo-mst" -> generic (module Fullinfo.Mst_instance.P) ~note:(fun _ -> "")
  | "fullinfo-mdst" -> generic (module Fullinfo.Mdst_instance.P) ~note:(fun _ -> "")
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

(* The flat struct-of-arrays executor (SCALING.md). No event/fault
   hooks by design — the equivalence suite pins it step-identical to
   the boxed engine, so tracing stays on the boxed path — but the
   telemetry series is supported and identical. *)
let packed_algos = [ "bfs"; "spt"; "adhoc-bfs" ]

let run_algo_packed algo g sched rng ~adversarial ~max_rounds ?(meta = []) ?metrics_out
    () =
  let generic (type s) (module B : Protocol.PACKED with type state = s) ~note =
    let module E = Engine_packed.Make (B) in
    let telemetry = Option.map (fun _ -> Telemetry.create ()) metrics_out in
    let init = if adversarial then E.adversarial rng g else E.initial g in
    let r = E.run ~max_rounds ?telemetry g sched rng ~init in
    (match (metrics_out, telemetry) with
    | Some path, Some tel ->
        Telemetry.write_json ~meta path tel;
        Format.printf "metrics      : written to %s (%a)@." path Telemetry.pp tel
    | _ -> ());
    {
      algo;
      silent = r.E.silent;
      legal = r.E.legal;
      rounds = r.E.rounds;
      steps = r.E.steps;
      max_bits = r.E.max_bits;
      note = note r.E.states;
      verdict = None;
      failed = false;
    }
  in
  match algo with
  | "bfs" ->
      generic
        (module Bfs_builder.Packed)
        ~note:(fun sts -> Printf.sprintf "phi = %d" (Bfs_builder.potential g sts))
  | "spt" ->
      generic
        (module Spt_builder.Packed)
        ~note:(fun sts -> Printf.sprintf "potential = %d" (Spt_builder.potential g sts))
  | "adhoc-bfs" -> generic (module Adhoc_bfs.Packed) ~note:(fun _ -> "")
  | other ->
      failwith
        (Printf.sprintf "--packed supports %s (got %S)"
           (String.concat ", " packed_algos)
           other)

let algos = Repro_campaign.Campaign.known_algos

open Cmdliner

let algo_arg =
  let doc = "Algorithm: " ^ String.concat ", " algos ^ "." in
  Arg.(value & opt string "mst" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let graph_arg =
  let doc = "Topology family: " ^ String.concat ", " Generators.all_names ^ "." in
  Arg.(value & opt string "gnp" & info [ "graph"; "g" ] ~docv:"FAMILY" ~doc)

let n_arg =
  Arg.(value & opt int 24 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of nodes.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let sched_arg =
  let doc =
    "Scheduler: " ^ String.concat ", " (List.map fst Scheduler.extended) ^ "."
  in
  Arg.(value & opt string "random" & info [ "sched"; "s" ] ~docv:"SCHED" ~doc)

let adversarial_arg =
  Arg.(value & flag & info [ "adversarial" ] ~doc:"Start from arbitrary register contents.")

let faults_arg =
  Arg.(value & opt int 0 & info [ "faults" ] ~docv:"K" ~doc:"Corrupt K registers after stabilization and re-run.")

let max_rounds_arg =
  Arg.(value & opt int 200_000 & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Attach a telemetry sink and write the per-round convergence series (enabled \
           nodes, writes, register bits, potential phi) plus metric summaries as JSON to \
           $(docv).")

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent campaign cells (default: the recommended \
           domain count of this machine). Artifacts are byte-identical in everything \
           but wall time at any value; $(docv)=1 runs the exact sequential path.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream the structured event trace (one JSON object per line: moves with \
           rule tags and causal provenance, fault injections, round boundaries) to \
           $(docv); consume with $(b,repro-cli explain). Schema in OBSERVABILITY.md. \
           Tracing draws no randomness, so the run's outcome is unchanged.")

let packed_arg =
  Arg.(
    value
    & flag
    & info [ "packed" ]
        ~doc:
          "Execute on the flat struct-of-arrays engine (see SCALING.md) instead of the \
           boxed reference engine. Step-for-step identical on the same seed (pinned by \
           the equivalence suite) but sized for large $(b,--nodes). Supported for bfs, \
           spt and adhoc-bfs; incompatible with $(b,--faults) and $(b,--trace-out), \
           which need the boxed engine's event hooks.")

let run_cmd =
  let run algo family n seed sched adversarial faults max_rounds metrics_out trace_out
      packed =
    (* The single [seed] determines the topology, the initial configuration,
       and every scheduler/fault coin flip, so telemetry runs are exactly
       reproducible; the seed is recorded in the metrics meta block. *)
    let rng = Random.State.make [| seed |] in
    match Generators.by_name family with
    | None -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | Some gen -> (
        match Scheduler.by_name sched with
        | None -> `Error (false, Printf.sprintf "unknown scheduler %S" sched)
        | Some _ when packed && not (List.mem algo packed_algos) ->
            `Error
              ( false,
                Printf.sprintf "--packed supports %s (got %S)"
                  (String.concat ", " packed_algos)
                  algo )
        | Some _ when packed && (faults > 0 || trace_out <> None) ->
            `Error
              ( false,
                "--packed is incompatible with --faults and --trace-out (the packed \
                 engine has no event hooks; drop --packed for fault/trace runs)" )
        | Some scheduler ->
            let g = gen rng ~n in
            Format.printf "graph: %s n=%d m=%d@." family (Graph.n g) (Graph.m g);
            let meta =
              Metrics.Json.
                [
                  ("algo", Str algo); ("graph", Str family); ("n", Int (Graph.n g));
                  ("m", Int (Graph.m g)); ("seed", Int seed); ("sched", Str sched);
                  ("adversarial", Bool adversarial); ("faults", Int faults);
                ]
            in
            let o =
              if packed then
                run_algo_packed algo g scheduler rng ~adversarial ~max_rounds ~meta
                  ?metrics_out ()
              else
                run_algo algo g scheduler rng ~adversarial ~faults ~max_rounds ~meta
                  ?metrics_out ?trace_out ()
            in
            report o;
            if o.failed then exit 1;
            `Ok ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a construction and report statistics.")
    Term.(
      ret
        (const run $ algo_arg $ graph_arg $ n_arg $ seed_arg $ sched_arg $ adversarial_arg
       $ faults_arg $ max_rounds_arg $ metrics_out_arg $ trace_out_arg $ packed_arg))

let sweep_cmd =
  let sweep algo family ns trials seed sched jobs =
    match (Generators.by_name family, Scheduler.by_name sched) with
    | None, _ -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | _, None -> `Error (false, Printf.sprintf "unknown scheduler %S" sched)
    | Some gen, Some sched ->
        let ns =
          String.split_on_char ',' ns
          |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
        in
        (* Each (n, trial) cell derives its own RNG from the seed, so the
           cells are independent and the pool hands the rows back in
           canonical order for printing. *)
        let cells = List.concat_map (fun n -> List.init trials (fun t -> (n, t + 1))) ns in
        let rows =
          Pool.with_pool ~jobs (fun pool ->
              Pool.map pool
                (fun (n, trial) ->
                  let rng = Random.State.make [| seed; n; trial |] in
                  let g = gen rng ~n in
                  let o =
                    run_algo algo g sched rng ~adversarial:false ~faults:0
                      ~max_rounds:200_000 ()
                  in
                  Printf.sprintf "%s,%s,%d,%d,%d,%b,%b,%d,%d,%d" algo family (Graph.n g)
                    (Graph.m g) trial o.silent o.legal o.rounds o.steps o.max_bits)
                cells)
        in
        Format.printf "algo,graph,n,m,trial,silent,legal,rounds,steps,max_bits@.";
        List.iter (Format.printf "%s@.") rows;
        `Ok ()
  in
  let ns_arg =
    Arg.(
      value
      & opt string "8,16,24,32"
      & info [ "n-list" ] ~docv:"N1,N2,.." ~doc:"Comma-separated node counts.")
  in
  let trials_arg =
    Arg.(value & opt int 3 & info [ "trials" ] ~docv:"T" ~doc:"Trials per size.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep an algorithm over sizes; print CSV rows.")
    Term.(
      ret
        (const sweep $ algo_arg $ graph_arg $ ns_arg $ trials_arg $ seed_arg $ sched_arg
       $ jobs_arg))

let bench_diff_cmd =
  let diff old_path new_path steps_tol wall_tol qps_tol require_identical =
    if require_identical then
      (* Schema-agnostic identity gate for parallel-campaign artifacts:
         same seeds at different --jobs must agree in every field except
         wall time. Works on BENCH_repro.json and CHAOS_repro.json. *)
      match
        (Repro_bench.Diff.load_json old_path, Repro_bench.Diff.load_json new_path)
      with
      | Error msg, _ | _, Error msg -> `Error (false, msg)
      | Ok old_json, Ok new_json -> (
          match Repro_bench.Diff.first_divergence old_json new_json with
          | None ->
              Format.printf "bench-diff: IDENTICAL (ignoring wall_ns)@.";
              `Ok ()
          | Some divergence ->
              Format.printf "artifacts differ at %s@." divergence;
              Format.printf "bench-diff: FAIL@.";
              exit 1)
    else
      let pct p = float_of_int p /. 100.0 in
      match (Repro_bench.Diff.load old_path, Repro_bench.Diff.load new_path) with
      | Error msg, _ | _, Error msg -> `Error (false, msg)
      | Ok old_records, Ok new_records ->
          let report =
            Repro_bench.Diff.diff ~steps_tol:(pct steps_tol) ~wall_tol:(pct wall_tol)
              ~qps_tol:(pct qps_tol) ~old_records ~new_records ()
          in
          Format.printf "%a" Repro_bench.Diff.pp_report report;
          if report.Repro_bench.Diff.comparisons = [] then
            `Error (false, "no overlapping records between the two artifacts")
          else if report.Repro_bench.Diff.failures > 0 then begin
            Format.printf "bench-diff: FAIL@.";
            exit 1
          end
          else begin
            Format.printf "bench-diff: OK@.";
            `Ok ()
          end
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline BENCH_repro.json artifact.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate BENCH_repro.json artifact.")
  in
  let steps_tol_arg =
    Arg.(
      value & opt int 10
      & info [ "steps-tol" ] ~docv:"PCT"
          ~doc:
            "Allowed regression in steps and rounds, percent (they are \
             deterministic for a pinned seed, so any growth is a semantic change).")
  in
  let wall_tol_arg =
    Arg.(
      value & opt int 25
      & info [ "wall-tol" ] ~docv:"PCT"
          ~doc:
            "Allowed regression in wall_ns, percent. CPU time is noisy across \
             machines; the smoke gate passes 400 to only catch catastrophic \
             slowdowns deterministically.")
  in
  let qps_tol_arg =
    Arg.(
      value & opt int 30
      & info [ "qps-tol" ] ~docv:"PCT"
          ~doc:
            "Allowed drop in qps (serve-bench throughput), percent. Like wall_ns it \
             is a wall-clock measurement; the @servebench gate passes 400 to only \
             catch catastrophic slowdowns deterministically.")
  in
  let require_identical_arg =
    Arg.(
      value & flag
      & info [ "require-identical" ]
          ~doc:
            "Identity mode: strip every wall_ns and qps field from both artifacts and \
             fail on any other difference (field drift, record order, missing/extra \
             records). Schema-agnostic, so it also gates CHAOS_repro.json and \
             SERVICE_repro.json produced at different --jobs values.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_repro.json or SERVICE_repro.json artifacts; exit 1 on \
          steps/rounds/wall_ns/qps regression beyond tolerance (or, with \
          --require-identical, on any non-wall difference).")
    Term.(
      ret
        (const diff $ old_arg $ new_arg $ steps_tol_arg $ wall_tol_arg $ qps_tol_arg
       $ require_identical_arg))

let chaos_cmd =
  let module Campaign = Repro_campaign.Campaign in
  let chaos family n seeds seed algos_s plans_s daemons_s max_rounds max_injections
      stall_window cycle_repeats out jobs trace_dir =
    let split s =
      String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")
    in
    match Generators.by_name family with
    | None -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | Some gen -> (
        let plans_r =
          if plans_s = "defaults" then Ok Fault.Plan.defaults
          else Fault.Plan.parse_list plans_s
        in
        match plans_r with
        | Error msg -> `Error (false, msg)
        | Ok plans -> (
            let daemons = List.map (fun d -> (d, Scheduler.by_name d)) (split daemons_s) in
            match List.find_opt (fun (_, o) -> o = None) daemons with
            | Some (d, _) -> `Error (false, Printf.sprintf "unknown scheduler %S" d)
            | None -> (
                let daemons = List.map (fun (d, o) -> (d, Option.get o)) daemons in
                let algo_list = split algos_s in
                match List.find_opt (fun a -> not (List.mem a algos)) algo_list with
                | Some a -> `Error (false, Printf.sprintf "unknown algorithm %S" a)
                | None ->
                    (* The matrix is farmed out cell-by-cell; cells come
                       back in canonical order, so the CSV listing and the
                       artifact are byte-identical at any --jobs. *)
                    (match trace_dir with
                    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
                    | _ -> ());
                    let cells =
                      Pool.with_pool ~jobs (fun pool ->
                          Campaign.run_matrix ~pool ~gen ~n ~seeds ~seed_base:seed
                            ~algos:algo_list ~plans ~daemons ~max_rounds ~max_injections
                            ~stall_window ~cycle_repeats ?trace_dir ())
                    in
                    (match trace_dir with
                    | Some dir ->
                        Format.printf "traces: one JSONL file per cell in %s@." dir
                    | None -> ());
                    Format.printf "%s@." Campaign.csv_header;
                    List.iter (fun c -> Format.printf "%s@." (Campaign.csv_row c)) cells;
                    let failures = Campaign.failed cells in
                    let json =
                      Campaign.campaign_json ~family ~n ~seeds ~seed_base:seed ~max_rounds
                        ~max_injections cells
                    in
                    let oc = open_out out in
                    Fun.protect
                      ~finally:(fun () -> close_out oc)
                      (fun () -> Metrics.Json.to_channel oc json);
                    Format.printf "chaos: %d cells, %d recovered, %d failed -> %s@."
                      (List.length cells)
                      (List.length cells - failures)
                      failures out;
                    if failures > 0 then begin
                      Format.printf "chaos: FAIL@.";
                      exit 1
                    end;
                    `Ok ())))
  in
  let seeds_arg =
    Arg.(value & opt int 2 & info [ "seeds" ] ~docv:"S" ~doc:"Seeds per cell.")
  in
  let algos_arg =
    Arg.(
      value & opt string "bfs,mst,spt"
      & info [ "algos" ] ~docv:"A1,A2,.." ~doc:"Comma-separated algorithms.")
  in
  let plans_arg =
    Arg.(
      value & opt string "defaults"
      & info [ "plans" ] ~docv:"P1,P2,.."
          ~doc:
            "Comma-separated fault plans (grammar TARGET/PAYLOAD\\@TIMING; targets \
             random:K, nodes:1+2, root, deepest, subtree; payloads randomize, bitflip, \
             stale:D; timings silence, periodic:R, poisson:RATE), or 'defaults'.")
  in
  let daemons_arg =
    Arg.(
      value & opt string "random,distributed"
      & info [ "daemons" ] ~docv:"D1,D2,.."
          ~doc:
            "Comma-separated schedulers to sweep (greedy-max/greedy-min add the \
             potential-adversarial daemons). The synchronous daemon is deliberately \
             not a default: the MST builder can livelock under it from some \
             adversarial configurations (see EXPERIMENTS.md E8).")
  in
  let max_rounds_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget per episode.")
  in
  let max_injections_arg =
    Arg.(
      value & opt int 3
      & info [ "max-injections" ] ~docv:"K"
          ~doc:"Injection cap per episode for periodic/poisson plans.")
  in
  let stall_window_arg =
    Arg.(
      value & opt int 64
      & info [ "stall-window" ] ~docv:"W"
          ~doc:"Watchdog: rounds without a new potential minimum that count as a stall.")
  in
  let cycle_repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "cycle-repeats" ] ~docv:"C"
          ~doc:
            "Watchdog: occurrences of one configuration hash that count as a livelock.")
  in
  let out_arg =
    Arg.(
      value & opt string "CHAOS_repro.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Campaign artifact path.")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:
            "Stream one JSONL event trace per cell into $(docv) (created if missing), \
             named ALGO__PLAN__SCHED__sSEED.jsonl; every recovery move carries causal \
             provenance back to its fault injection (see OBSERVABILITY.md, \
             $(b,repro-cli explain)). Tracing draws no randomness: the campaign \
             artifact is byte-identical with or without it.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault campaign (algorithms x fault plans x daemons x seeds); \
          write CHAOS_repro.json; exit 1 if any cell fails to recover.")
    Term.(
      ret
        (const chaos $ graph_arg $ n_arg $ seeds_arg $ seed_arg $ algos_arg $ plans_arg
       $ daemons_arg $ max_rounds_arg $ max_injections_arg $ stall_window_arg
       $ cycle_repeats_arg $ out_arg $ jobs_arg $ trace_dir_arg))

let serve_cmd =
  let module Service_campaign = Repro_campaign.Service_campaign in
  let module Churn = Repro_service.Churn in
  let serve family n seeds seed algos_s traces_s daemons_s max_rounds retry_budget
      max_retries queries_per_round stall_window cycle_repeats packed big big_nmax
      queries query_jobs out jobs trace_dir =
    let split s =
      String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")
    in
    match Generators.by_name family with
    | None -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | Some gen -> (
        let traces_r =
          if traces_s = "defaults" then Ok Churn.defaults
          else Churn.parse_list traces_s
        in
        match traces_r with
        | Error msg -> `Error (false, msg)
        | Ok traces -> (
            let daemons = List.map (fun d -> (d, Scheduler.by_name d)) (split daemons_s) in
            match List.find_opt (fun (_, o) -> o = None) daemons with
            | Some (d, _) -> `Error (false, Printf.sprintf "unknown scheduler %S" d)
            | None -> (
                let daemons = List.map (fun (d, o) -> (d, Option.get o)) daemons in
                let algo_list = split algos_s in
                match
                  List.find_opt
                    (fun a -> not (List.mem a Service_campaign.known_algos))
                    algo_list
                with
                | Some a -> `Error (false, Printf.sprintf "unknown algorithm %S" a)
                | None when packed && trace_dir <> None ->
                    `Error
                      ( false,
                        "--packed is incompatible with --trace-out (causal tracing \
                         needs the boxed engine)" )
                | None ->
                    (match trace_dir with
                    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
                    | _ -> ());
                    let query_jobs =
                      if query_jobs > 0 then query_jobs else Pool.default_jobs ()
                    in
                    let cells, baselines =
                      Pool.with_pool ~jobs:(max jobs query_jobs) (fun pool ->
                          let std =
                            Service_campaign.run_matrix ~pool ~gen ~n ~seeds
                              ~seed_base:seed ~algos:algo_list ~traces ~daemons
                              ~max_rounds ~retry_budget ~max_retries
                              ~queries_per_round ~stall_window ~cycle_repeats ~packed
                              ?trace_dir ()
                          in
                          if not big then (std, [])
                          else begin
                            (* The big serve-bench tier: qps vs churn rate
                               (two flash-crowd intensities) at growing n,
                               clamped by --big-nmax like the bench tier. *)
                            let big_traces =
                              [
                                { Churn.spec = Churn.Flash_crowd 2;
                                  timing = Churn.At_silence };
                                { Churn.spec = Churn.Flash_crowd 8;
                                  timing = Churn.At_silence };
                              ]
                            in
                            let ns =
                              List.filter
                                (fun x -> x <= big_nmax)
                                Service_campaign.big_ns
                            in
                            let bench, baselines =
                              Service_campaign.run_bench ~pool ~ns
                                ~algos:Service_campaign.big_algos ~traces:big_traces
                                ~seed_base:seed ~queries ~query_jobs ~packed
                                ~baseline_nmax:1_000 ~max_rounds ~retry_budget
                                ~max_retries ~queries_per_round ~stall_window
                                ~cycle_repeats ()
                            in
                            (std @ bench, baselines)
                          end)
                    in
                    (match trace_dir with
                    | Some dir ->
                        Format.printf "traces: one JSONL file per cell in %s@." dir
                    | None -> ());
                    Format.printf "%s@." Service_campaign.csv_header;
                    List.iter
                      (fun c -> Format.printf "%s@." (Service_campaign.csv_row c))
                      cells;
                    List.iter
                      (fun (b : Service_campaign.baseline) ->
                        Format.printf
                          "serve-bench baseline: algo=%s trace=%s n=%d \
                           snapshot_qps=%d chase_qps=%d speedup=%.1fx@."
                          b.Service_campaign.b_algo b.Service_campaign.b_trace
                          b.Service_campaign.b_n b.Service_campaign.b_snapshot_qps
                          b.Service_campaign.b_chase_qps
                          (float_of_int b.Service_campaign.b_snapshot_qps
                          /. float_of_int (max 1 b.Service_campaign.b_chase_qps)))
                      baselines;
                    let failures = Service_campaign.failed cells in
                    let json =
                      Service_campaign.campaign_json ~family ~n ~seeds ~seed_base:seed
                        ~traces ~retry_budget ~max_retries ~queries_per_round cells
                    in
                    let oc = open_out out in
                    Fun.protect
                      ~finally:(fun () -> close_out oc)
                      (fun () -> Metrics.Json.to_channel oc json);
                    Format.printf "serve: %d cells, %d recovered, %d failed -> %s@."
                      (List.length cells)
                      (List.length cells - failures)
                      failures out;
                    if failures > 0 then begin
                      (* Name every failing cell before the hard exit: the
                         full key identifies the episode to re-run and the
                         watchdog verdict says how it died. *)
                      List.iter
                        (fun c ->
                          if not (Service_campaign.recovered c) then
                            Format.printf "serve: FAILED %s@."
                              (Service_campaign.failure_line c))
                        cells;
                      Format.printf "serve: FAIL@.";
                      exit 1
                    end;
                    `Ok ())))
  in
  let seeds_arg =
    Arg.(value & opt int 2 & info [ "seeds" ] ~docv:"S" ~doc:"Seeds per cell.")
  in
  let algos_arg =
    Arg.(
      value & opt string "bfs,mst,spt"
      & info [ "algos" ] ~docv:"A1,A2,.."
          ~doc:"Comma-separated tree builders (bfs, mst, mdst, spt, adhoc-bfs).")
  in
  let traces_arg =
    Arg.(
      value & opt string "defaults"
      & info [ "traces" ] ~docv:"T1,T2,.."
          ~doc:
            "Comma-separated churn traces (grammar SPEC\\@TIMING; ops add:U+V+W, \
             del:U+V, reweight:U+V+W, join:A+W, leave:V joined by ';'; canned specs \
             flash-crowd:K, regional:K, maintenance:K; timings silence, every:R), or \
             'defaults'.")
  in
  let daemons_arg =
    Arg.(
      value & opt string "random,distributed"
      & info [ "daemons" ] ~docv:"D1,D2,.."
          ~doc:
            "Comma-separated schedulers to sweep. Each cell's escalation rung uses a \
             daemon of the other family (random <-> distributed).")
  in
  let max_rounds_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-rounds" ] ~docv:"R" ~doc:"Global round budget per episode.")
  in
  let retry_budget_arg =
    Arg.(
      value & opt int 2_000
      & info [ "retry-budget" ] ~docv:"R"
          ~doc:
            "Round budget of each degradation-ladder rung past the first attempt (the \
             first attempt gets R from an every:R timing, this budget under silence).")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"K"
          ~doc:"Same-daemon retries before escalating to the fallback daemon.")
  in
  let queries_per_round_arg =
    Arg.(
      value & opt int 2
      & info [ "queries-per-round" ] ~docv:"Q"
          ~doc:
            "Pair reads served from the committed label snapshot at every round \
             boundary of a recovery (parent/root/degree/ancestor/nca/route-length \
             lookups, re-checked for staleness when the event closes).")
  in
  let stall_window_arg =
    Arg.(
      value & opt int 64
      & info [ "stall-window" ] ~docv:"W"
          ~doc:"Watchdog: rounds without a new potential minimum that count as a stall.")
  in
  let cycle_repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "cycle-repeats" ] ~docv:"C"
          ~doc:
            "Watchdog: occurrences of one configuration hash that count as a livelock.")
  in
  let packed_arg =
    Arg.(
      value & flag
      & info [ "packed" ]
          ~doc:
            "Drive fixed-width builders (bfs, spt, adhoc-bfs) with the \
             struct-of-arrays service engine: registers live in the packed int bank \
             across the whole episode, churn migration copies surviving lanes \
             verbatim, joiners boot adversarially in-bank. Episode-equivalent to the \
             boxed engine (same seeds, same artifact modulo wall-derived fields); \
             variable-width builders (mst, mdst) always run boxed. Incompatible with \
             $(b,--trace-out).")
  in
  let big_arg =
    Arg.(
      value & flag
      & info [ "big" ]
          ~doc:
            "Append the big serve-bench tier: bfs/spt x n in {1e3,1e4,1e5} x two \
             flash-crowd intensities under the synchronous daemon, each episode \
             followed by a timed batch of snapshot pair queries; cells carry \
             tier=big and qps. At n=1000 the O(n) parent-chase baseline is measured \
             too and printed for comparison.")
  in
  let big_nmax_arg =
    Arg.(
      value & opt int 100_000
      & info [ "big-nmax" ] ~docv:"N"
          ~doc:"Clamp the big-tier sizes to n <= $(docv) (CI uses 1000).")
  in
  let queries_arg =
    Arg.(
      value & opt int 200_000
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Pair queries per big-tier qps measurement batch.")
  in
  let query_jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "query-jobs" ] ~docv:"W"
          ~doc:
            "Worker streams a big-tier query batch fans out over (0 = the pool \
             default). Each stream draws from its own seeded RNG and results merge \
             in canonical worker order, so everything but the wall-derived qps is \
             independent of $(docv).")
  in
  let out_arg =
    Arg.(
      value & opt string "SERVICE_repro.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Campaign artifact path.")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:
            "Stream one JSONL event trace per cell into $(docv) (created if missing), \
             named ALGO__TRACE__SCHED__sSEED.jsonl; every recovery move carries causal \
             provenance back to the churn event (topology edit) that woke it (see \
             OBSERVABILITY.md, $(b,repro-cli explain)). Tracing draws no randomness: \
             the campaign artifact is byte-identical with or without it.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a service-mode churn campaign (tree builders x churn traces x daemons x \
          seeds): stabilize, stream topology edits against the live graph, serve reads \
          from committed labels while the builder re-stabilizes under a watchdogged \
          degradation ladder; write SERVICE_repro.json; exit 1 if any cell fails to \
          recover.")
    Term.(
      ret
        (const serve $ graph_arg $ n_arg $ seeds_arg $ seed_arg $ algos_arg $ traces_arg
       $ daemons_arg $ max_rounds_arg $ retry_budget_arg $ max_retries_arg
       $ queries_per_round_arg $ stall_window_arg $ cycle_repeats_arg $ packed_arg
       $ big_arg $ big_nmax_arg $ queries_arg $ query_jobs_arg $ out_arg $ jobs_arg
       $ trace_dir_arg))

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let explain_cmd =
  let explain trace_file html top =
    match Explain.parse (slurp trace_file) with
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" trace_file msg)
    | Ok t ->
        let report = Explain.analyze ~top t in
        print_string (Explain.to_text report);
        (match html with
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Explain.to_html report));
            Format.printf "html: written to %s@." path
        | None -> ());
        `Ok ()
  in
  let trace_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL event trace, from $(b,run --trace-out) or $(b,chaos --trace-out).")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:"Also write the report as a self-contained HTML page to $(docv).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"How many hot nodes to list (default 10).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render a convergence narrative from an event trace: per-rule move breakdown, \
          Φ milestones, hot nodes, activation-DAG shape, and one causal-cone summary \
          per fault injection.")
    Term.(ret (const explain $ trace_file_arg $ html_arg $ top_arg))

let validate_cmd =
  let validate file kind =
    let contents = slurp file in
    let kind =
      match kind with
      | `Auto -> (
          match Schema.sniff contents with
          | Some k -> Ok k
          | None ->
              Error
                "cannot sniff the artifact kind (no ev/experiments/cells field); pass \
                 --kind")
      | (`Bench | `Chaos | `Service | `Trace) as k -> Ok k
    in
    match kind with
    | Error msg -> `Error (false, msg)
    | Ok k -> (
        let kind_name =
          match k with
          | `Bench -> "bench"
          | `Chaos -> "chaos"
          | `Service -> "service"
          | `Trace -> "trace"
        in
        let result =
          match k with
          | `Trace -> Schema.validate_trace contents
          | (`Bench | `Chaos | `Service) as k -> (
              match Metrics.Json.of_string contents with
              | None -> Error "not valid JSON"
              | Some j -> (
                  match k with
                  | `Bench -> Schema.validate_bench j
                  | `Chaos -> Schema.validate_chaos j
                  | `Service -> Schema.validate_service j))
        in
        match result with
        | Ok count ->
            Format.printf "validate: OK (%s, %d records)@." kind_name count;
            `Ok ()
        | Error msg ->
            Format.printf "validate: FAIL (%s): %s@." kind_name msg;
            exit 1)
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"BENCH_repro.json, CHAOS_repro.json, SERVICE_repro.json, or a JSONL event trace.")
  in
  let kind_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", `Auto);
               ("bench", `Bench);
               ("chaos", `Chaos);
               ("service", `Service);
               ("trace", `Trace);
             ])
          `Auto
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Artifact kind: $(docv) is auto, bench, chaos, service or trace.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate a committed artifact or event trace against its schema; exit 1 on \
          the first violation.")
    Term.(ret (const validate $ file_arg $ kind_arg))

let list_cmd =
  let list () =
    Format.printf "algorithms: %s@." (String.concat ", " algos);
    Format.printf "graphs:     %s@." (String.concat ", " Generators.all_names);
    Format.printf "schedulers: %s@." (String.concat ", " (List.map fst Scheduler.extended));
    Format.printf "fault plans: %s (grammar: TARGET/PAYLOAD@TIMING)@."
      (String.concat ", " (List.map Fault.Plan.name Fault.Plan.defaults));
    Format.printf "churn traces: %s (grammar: SPEC@TIMING)@."
      (String.concat ", " (List.map Repro_service.Churn.name Repro_service.Churn.defaults))
  in
  Cmd.v (Cmd.info "list" ~doc:"List algorithms, graph families and schedulers.")
    Term.(const list $ const ())

let () =
  let info =
    Cmd.info "repro-cli" ~version:"1.0.0"
      ~doc:
        "Silent self-stabilizing constrained spanning tree constructions (Blin & \
         Fraigniaud, ICDCS 2015)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            sweep_cmd;
            chaos_cmd;
            serve_cmd;
            bench_diff_cmd;
            explain_cmd;
            validate_cmd;
            list_cmd;
          ]))
