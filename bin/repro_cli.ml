(* Command-line driver: run any of the self-stabilizing constructions on
   any generated topology and report convergence statistics.

     dune exec bin/repro_cli.exe -- run --algo mst --graph gnp --nodes 30
     dune exec bin/repro_cli.exe -- run --algo mdst --graph geometric \
         --nodes 24 --sched adversary --adversarial
     dune exec bin/repro_cli.exe -- list *)

open Repro_graph
open Repro_runtime
open Repro_core
open Repro_baselines

type outcome = {
  algo : string;
  silent : bool;
  legal : bool;
  rounds : int;
  steps : int;
  max_bits : int;
  note : string;
  verdict : string option;
  failed : bool;
}

let report o =
  Format.printf "algorithm    : %s@." o.algo;
  Format.printf "silent       : %b@." o.silent;
  Format.printf "legal        : %b@." o.legal;
  Format.printf "rounds       : %d@." o.rounds;
  Format.printf "steps        : %d@." o.steps;
  Format.printf "max register : %d bits@." o.max_bits;
  (match o.verdict with Some v -> Format.printf "verdict      : %s@." v | None -> ());
  if o.note <> "" then Format.printf "result       : %s@." o.note

let run_algo algo g sched rng ~adversarial ~faults ~max_rounds ?(meta = []) ?metrics_out
    ?trace_out () =
  let generic (type s) (module P : Protocol.S with type state = s) ~note =
    let module E = Engine.Make (P) in
    (* Each run gets fresh observers, so after fault injection the emitted
       trajectory is the recovery run — the one under study. *)
    let observed ~init =
      let telemetry = Option.map (fun _ -> Telemetry.create ()) metrics_out in
      let trace = Option.map (fun _ -> Trace.create ~capacity:1_000_000 ()) trace_out in
      (* Observe-only watchdog: classify a non-silent exit (livelock vs
         bare exhaustion) instead of just reporting the hit limit. *)
      let wd = Watchdog.create () in
      let on_round round states =
        (match trace with Some tr -> Trace.on_round tr round states | None -> ());
        Watchdog.observe_round wd ~round ~hash:(Watchdog.config_hash states) ~phi:None
      in
      let r =
        E.run ~max_rounds ?telemetry
          ?on_step:(Option.map (fun tr -> Trace.on_step tr P.pp_state) trace)
          ~on_round g sched rng ~init
      in
      (r, telemetry, trace, wd)
    in
    let init = if adversarial then E.adversarial rng g else E.initial g in
    let first = observed ~init in
    let faults_skipped = ref false in
    let r, telemetry, trace, wd =
      let r, _, _, _ = first in
      if faults > 0 then
        if r.E.silent then begin
          let corrupted =
            Fault.corrupt rng ~random_state:P.random_state g r.E.states ~k:faults
          in
          Format.printf "(injected %d faults after stabilization)@." faults;
          observed ~init:corrupted
        end
        else begin
          faults_skipped := true;
          Format.eprintf
            "warning: --faults %d requested but the first run never stabilized (hit \
             its limits while non-silent); fault injection skipped@."
            faults;
          first
        end
      else first
    in
    (match (metrics_out, telemetry) with
    | Some path, Some tel ->
        Telemetry.write_json ~meta path tel;
        Format.printf "metrics      : written to %s (%a)@." path Telemetry.pp tel
    | _ -> ());
    (match (trace_out, trace) with
    | Some path, Some tr ->
        let oc = open_out path in
        output_string oc (Trace.to_csv tr);
        close_out oc;
        Format.printf "trace        : %d of %d events written to %s@." (Trace.retained tr)
          (Trace.total tr) path
    | _ -> ());
    {
      algo;
      silent = r.E.silent;
      legal = r.E.legal;
      rounds = r.E.rounds;
      steps = r.E.steps;
      max_bits = r.E.max_bits;
      note = note r.E.states;
      verdict =
        (if r.E.silent then None
         else
           Some
             (Format.asprintf "%a" Watchdog.pp_verdict
                (Watchdog.verdict wd ~silent:false)));
      failed = !faults_skipped;
    }
  in
  match algo with
  | "bfs" ->
      generic
        (module Bfs_builder.P)
        ~note:(fun sts ->
          Printf.sprintf "phi = %d" (Bfs_builder.potential g sts))
  | "mst" ->
      generic
        (module Mst_builder.P)
        ~note:(fun sts ->
          match Mst_builder.tree_of g sts with
          | Some t ->
              Printf.sprintf "tree weight %d (MST weight %d)" (Tree.weight t g)
                (Mst.mst_weight g)
          | None -> "no tree")
  | "mdst" ->
      generic
        (module Mdst_builder.P)
        ~note:(fun sts ->
          match Mdst_builder.tree_of g sts with
          | Some t ->
              let fr, _, _ = Min_degree.furer_raghavachari g ~root:0 in
              Printf.sprintf "tree degree %d (sequential FR: %d)" (Tree.max_degree t)
                (Tree.max_degree fr)
          | None -> "no tree")
  | "spt" ->
      generic
        (module Spt_builder.P)
        ~note:(fun sts ->
          Printf.sprintf "potential = %d" (Spt_builder.potential g sts))
  | "adhoc-bfs" -> generic (module Adhoc_bfs.P) ~note:(fun _ -> "")
  | "compact-mst" ->
      generic
        (module Compact_mst.P)
        ~note:(fun _ ->
          if adversarial then "uncertified: may be silent yet wrong from garbage" else "")
  | "fullinfo-mst" -> generic (module Fullinfo.Mst_instance.P) ~note:(fun _ -> "")
  | "fullinfo-mdst" -> generic (module Fullinfo.Mdst_instance.P) ~note:(fun _ -> "")
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

let algos =
  [
    "bfs"; "mst"; "mdst"; "spt"; "adhoc-bfs"; "compact-mst"; "fullinfo-mst";
    "fullinfo-mdst";
  ]

(* One chaos-campaign cell, extracted from the per-protocol episode into
   plain data so the matrix driver and the JSON writer stay functor-free. *)
type chaos_cell = {
  c_base_rounds : int;
  c_rounds : int;
  c_steps : int;
  c_silent : bool;
  c_legal : bool;
  c_recovered : bool;
  c_verdict : string;
  c_max_bits : int;
  c_injections : Chaos.injection list;
}

let chaos_algo algo g sched rng ~plan ~max_rounds ~max_injections ~stall_window
    ~cycle_repeats =
  let generic (type s) (module P : Protocol.S with type state = s) ~watch_phi =
    let module C = Chaos.Make (P) in
    let e =
      C.run_episode ~max_rounds ~max_injections ~watch_phi ~stall_window ~cycle_repeats g
        sched rng plan
    in
    {
      c_base_rounds = e.C.base_rounds;
      c_rounds = e.C.rounds;
      c_steps = e.C.steps;
      c_silent = e.C.silent;
      c_legal = e.C.legal;
      c_recovered = e.C.recovered;
      c_verdict = Watchdog.verdict_name e.C.verdict;
      c_max_bits = e.C.max_bits;
      c_injections = e.C.injections;
    }
  in
  (* [watch_phi] only where the potential is cheap (totals over the
     configuration); the MST potential runs the certification prover. *)
  match algo with
  | "bfs" -> generic (module Bfs_builder.P) ~watch_phi:true
  | "mst" -> generic (module Mst_builder.P) ~watch_phi:false
  | "mdst" -> generic (module Mdst_builder.P) ~watch_phi:false
  | "spt" -> generic (module Spt_builder.P) ~watch_phi:true
  | "adhoc-bfs" -> generic (module Adhoc_bfs.P) ~watch_phi:false
  | "compact-mst" -> generic (module Compact_mst.P) ~watch_phi:false
  | "fullinfo-mst" -> generic (module Fullinfo.Mst_instance.P) ~watch_phi:false
  | "fullinfo-mdst" -> generic (module Fullinfo.Mdst_instance.P) ~watch_phi:false
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

open Cmdliner

let algo_arg =
  let doc = "Algorithm: " ^ String.concat ", " algos ^ "." in
  Arg.(value & opt string "mst" & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let graph_arg =
  let doc = "Topology family: " ^ String.concat ", " Generators.all_names ^ "." in
  Arg.(value & opt string "gnp" & info [ "graph"; "g" ] ~docv:"FAMILY" ~doc)

let n_arg =
  Arg.(value & opt int 24 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of nodes.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let sched_arg =
  let doc =
    "Scheduler: " ^ String.concat ", " (List.map fst Scheduler.extended) ^ "."
  in
  Arg.(value & opt string "random" & info [ "sched"; "s" ] ~docv:"SCHED" ~doc)

let adversarial_arg =
  Arg.(value & flag & info [ "adversarial" ] ~doc:"Start from arbitrary register contents.")

let faults_arg =
  Arg.(value & opt int 0 & info [ "faults" ] ~docv:"K" ~doc:"Corrupt K registers after stabilization and re-run.")

let max_rounds_arg =
  Arg.(value & opt int 200_000 & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Attach a telemetry sink and write the per-round convergence series (enabled \
           nodes, writes, register bits, potential phi) plus metric summaries as JSON to \
           $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Record the per-write execution trace and write it as CSV to $(docv).")

let run_cmd =
  let run algo family n seed sched adversarial faults max_rounds metrics_out trace_out =
    (* The single [seed] determines the topology, the initial configuration,
       and every scheduler/fault coin flip, so telemetry runs are exactly
       reproducible; the seed is recorded in the metrics meta block. *)
    let rng = Random.State.make [| seed |] in
    match Generators.by_name family with
    | None -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | Some gen -> (
        match Scheduler.by_name sched with
        | None -> `Error (false, Printf.sprintf "unknown scheduler %S" sched)
        | Some scheduler ->
            let g = gen rng ~n in
            Format.printf "graph: %s n=%d m=%d@." family (Graph.n g) (Graph.m g);
            let meta =
              Metrics.Json.
                [
                  ("algo", Str algo); ("graph", Str family); ("n", Int (Graph.n g));
                  ("m", Int (Graph.m g)); ("seed", Int seed); ("sched", Str sched);
                  ("adversarial", Bool adversarial); ("faults", Int faults);
                ]
            in
            let o =
              run_algo algo g scheduler rng ~adversarial ~faults ~max_rounds ~meta
                ?metrics_out ?trace_out ()
            in
            report o;
            if o.failed then exit 1;
            `Ok ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a construction and report statistics.")
    Term.(
      ret
        (const run $ algo_arg $ graph_arg $ n_arg $ seed_arg $ sched_arg $ adversarial_arg
       $ faults_arg $ max_rounds_arg $ metrics_out_arg $ trace_out_arg))

let sweep_cmd =
  let sweep algo family ns trials seed sched =
    match (Generators.by_name family, Scheduler.by_name sched) with
    | None, _ -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | _, None -> `Error (false, Printf.sprintf "unknown scheduler %S" sched)
    | Some gen, Some sched ->
        let ns =
          String.split_on_char ',' ns
          |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
        in
        Format.printf "algo,graph,n,m,trial,silent,legal,rounds,steps,max_bits@.";
        List.iter
          (fun n ->
            for trial = 1 to trials do
              let rng = Random.State.make [| seed; n; trial |] in
              let g = gen rng ~n in
              let o =
                run_algo algo g sched rng ~adversarial:false ~faults:0
                  ~max_rounds:200_000 ()
              in
              Format.printf "%s,%s,%d,%d,%d,%b,%b,%d,%d,%d@." algo family (Graph.n g)
                (Graph.m g) trial o.silent o.legal o.rounds o.steps o.max_bits
            done)
          ns;
        `Ok ()
  in
  let ns_arg =
    Arg.(
      value
      & opt string "8,16,24,32"
      & info [ "n-list" ] ~docv:"N1,N2,.." ~doc:"Comma-separated node counts.")
  in
  let trials_arg =
    Arg.(value & opt int 3 & info [ "trials" ] ~docv:"T" ~doc:"Trials per size.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep an algorithm over sizes; print CSV rows.")
    Term.(
      ret (const sweep $ algo_arg $ graph_arg $ ns_arg $ trials_arg $ seed_arg $ sched_arg))

let bench_diff_cmd =
  let diff old_path new_path steps_tol wall_tol =
    let pct p = float_of_int p /. 100.0 in
    match (Repro_bench.Diff.load old_path, Repro_bench.Diff.load new_path) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok old_records, Ok new_records ->
        let report =
          Repro_bench.Diff.diff ~steps_tol:(pct steps_tol) ~wall_tol:(pct wall_tol)
            ~old_records ~new_records ()
        in
        Format.printf "%a" Repro_bench.Diff.pp_report report;
        if report.Repro_bench.Diff.comparisons = [] then
          `Error (false, "no overlapping records between the two artifacts")
        else if report.Repro_bench.Diff.failures > 0 then begin
          Format.printf "bench-diff: FAIL@.";
          exit 1
        end
        else begin
          Format.printf "bench-diff: OK@.";
          `Ok ()
        end
  in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline BENCH_repro.json artifact.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate BENCH_repro.json artifact.")
  in
  let steps_tol_arg =
    Arg.(
      value & opt int 10
      & info [ "steps-tol" ] ~docv:"PCT"
          ~doc:
            "Allowed regression in steps and rounds, percent (they are \
             deterministic for a pinned seed, so any growth is a semantic change).")
  in
  let wall_tol_arg =
    Arg.(
      value & opt int 25
      & info [ "wall-tol" ] ~docv:"PCT"
          ~doc:
            "Allowed regression in wall_ns, percent. CPU time is noisy across \
             machines; the smoke gate passes 400 to only catch catastrophic \
             slowdowns deterministically.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_repro.json artifacts; exit 1 on steps/rounds/wall_ns \
          regression beyond tolerance.")
    Term.(ret (const diff $ old_arg $ new_arg $ steps_tol_arg $ wall_tol_arg))

let chaos_cmd =
  let injection_json (i : Chaos.injection) =
    let opt_int = function Some v -> Metrics.Json.Int v | None -> Metrics.Json.Null in
    Metrics.Json.Obj
      [
        ("round", Metrics.Json.Int i.Chaos.round);
        ("nodes", Metrics.Json.List (List.map (fun v -> Metrics.Json.Int v) i.Chaos.nodes));
        ("gap", opt_int i.Chaos.gap);
        ("radius", opt_int i.Chaos.radius);
        ("touched", Metrics.Json.Int i.Chaos.touched);
      ]
  in
  let cell_json (algo, pname, dname, seed, n, m, c) =
    Metrics.Json.Obj
      [
        ("algo", Metrics.Json.Str algo);
        ("plan", Metrics.Json.Str pname);
        ("sched", Metrics.Json.Str dname);
        ("seed", Metrics.Json.Int seed);
        ("n", Metrics.Json.Int n);
        ("m", Metrics.Json.Int m);
        ("base_rounds", Metrics.Json.Int c.c_base_rounds);
        ("rounds", Metrics.Json.Int c.c_rounds);
        ("steps", Metrics.Json.Int c.c_steps);
        ("silent", Metrics.Json.Bool c.c_silent);
        ("legal", Metrics.Json.Bool c.c_legal);
        ("recovered", Metrics.Json.Bool c.c_recovered);
        ("verdict", Metrics.Json.Str c.c_verdict);
        ("max_bits", Metrics.Json.Int c.c_max_bits);
        ("injections", Metrics.Json.List (List.map injection_json c.c_injections));
      ]
  in
  let chaos family n seeds seed algos_s plans_s daemons_s max_rounds max_injections
      stall_window cycle_repeats out =
    let split s =
      String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")
    in
    match Generators.by_name family with
    | None -> `Error (false, Printf.sprintf "unknown graph family %S" family)
    | Some gen -> (
        let plans_r =
          if plans_s = "defaults" then Ok Fault.Plan.defaults
          else Fault.Plan.parse_list plans_s
        in
        match plans_r with
        | Error msg -> `Error (false, msg)
        | Ok plans -> (
            let daemons = List.map (fun d -> (d, Scheduler.by_name d)) (split daemons_s) in
            match List.find_opt (fun (_, o) -> o = None) daemons with
            | Some (d, _) -> `Error (false, Printf.sprintf "unknown scheduler %S" d)
            | None -> (
                let daemons = List.map (fun (d, o) -> (d, Option.get o)) daemons in
                let algo_list = split algos_s in
                match List.find_opt (fun a -> not (List.mem a algos)) algo_list with
                | Some a -> `Error (false, Printf.sprintf "unknown algorithm %S" a)
                | None ->
                    let cells = ref [] in
                    let failures = ref 0 in
                    Format.printf
                      "algo,plan,sched,seed,recovered,verdict,base_rounds,rounds,steps,injections@.";
                    List.iter
                      (fun algo ->
                        List.iter
                          (fun plan ->
                            let pname = Fault.Plan.name plan in
                            List.iter
                              (fun (dname, sched) ->
                                for s = 1 to seeds do
                                  (* One seed pins the topology, the initial
                                     configuration, every daemon pick and every
                                     fault coin of the cell. *)
                                  let rng =
                                    Random.State.make
                                      [| seed; Hashtbl.hash (algo, pname, dname); n; s |]
                                  in
                                  let g = gen rng ~n in
                                  let c =
                                    chaos_algo algo g sched rng ~plan ~max_rounds
                                      ~max_injections ~stall_window ~cycle_repeats
                                  in
                                  if not c.c_recovered then incr failures;
                                  Format.printf "%s,%s,%s,%d,%b,%s,%d,%d,%d,%d@." algo
                                    pname dname s c.c_recovered c.c_verdict c.c_base_rounds
                                    c.c_rounds c.c_steps (List.length c.c_injections);
                                  cells :=
                                    (algo, pname, dname, s, Graph.n g, Graph.m g, c)
                                    :: !cells
                                done)
                              daemons)
                          plans)
                      algo_list;
                    let cells = List.rev !cells in
                    let json =
                      Metrics.Json.Obj
                        [
                          ( "meta",
                            Metrics.Json.Obj
                              [
                                ("experiment", Metrics.Json.Str "E8-chaos");
                                ("graph", Metrics.Json.Str family);
                                ("n", Metrics.Json.Int n);
                                ("seeds", Metrics.Json.Int seeds);
                                ("seed_base", Metrics.Json.Int seed);
                                ("max_rounds", Metrics.Json.Int max_rounds);
                                ("max_injections", Metrics.Json.Int max_injections);
                              ] );
                          ("cells", Metrics.Json.List (List.map cell_json cells));
                          ( "summary",
                            Metrics.Json.Obj
                              [
                                ("cells", Metrics.Json.Int (List.length cells));
                                ( "recovered",
                                  Metrics.Json.Int (List.length cells - !failures) );
                                ("failed", Metrics.Json.Int !failures);
                              ] );
                        ]
                    in
                    let oc = open_out out in
                    Fun.protect
                      ~finally:(fun () -> close_out oc)
                      (fun () -> Metrics.Json.to_channel oc json);
                    Format.printf "chaos: %d cells, %d recovered, %d failed -> %s@."
                      (List.length cells)
                      (List.length cells - !failures)
                      !failures out;
                    if !failures > 0 then begin
                      Format.printf "chaos: FAIL@.";
                      exit 1
                    end;
                    `Ok ())))
  in
  let seeds_arg =
    Arg.(value & opt int 2 & info [ "seeds" ] ~docv:"S" ~doc:"Seeds per cell.")
  in
  let algos_arg =
    Arg.(
      value & opt string "bfs,mst,spt"
      & info [ "algos" ] ~docv:"A1,A2,.." ~doc:"Comma-separated algorithms.")
  in
  let plans_arg =
    Arg.(
      value & opt string "defaults"
      & info [ "plans" ] ~docv:"P1,P2,.."
          ~doc:
            "Comma-separated fault plans (grammar TARGET/PAYLOAD\\@TIMING; targets \
             random:K, nodes:1+2, root, deepest, subtree; payloads randomize, bitflip, \
             stale:D; timings silence, periodic:R, poisson:RATE), or 'defaults'.")
  in
  let daemons_arg =
    Arg.(
      value & opt string "random,distributed"
      & info [ "daemons" ] ~docv:"D1,D2,.."
          ~doc:
            "Comma-separated schedulers to sweep (greedy-max/greedy-min add the \
             potential-adversarial daemons). The synchronous daemon is deliberately \
             not a default: the MST builder can livelock under it from some \
             adversarial configurations (see EXPERIMENTS.md E8).")
  in
  let max_rounds_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget per episode.")
  in
  let max_injections_arg =
    Arg.(
      value & opt int 3
      & info [ "max-injections" ] ~docv:"K"
          ~doc:"Injection cap per episode for periodic/poisson plans.")
  in
  let stall_window_arg =
    Arg.(
      value & opt int 64
      & info [ "stall-window" ] ~docv:"W"
          ~doc:"Watchdog: rounds without a new potential minimum that count as a stall.")
  in
  let cycle_repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "cycle-repeats" ] ~docv:"C"
          ~doc:
            "Watchdog: occurrences of one configuration hash that count as a livelock.")
  in
  let out_arg =
    Arg.(
      value & opt string "CHAOS_repro.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Campaign artifact path.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault campaign (algorithms x fault plans x daemons x seeds); \
          write CHAOS_repro.json; exit 1 if any cell fails to recover.")
    Term.(
      ret
        (const chaos $ graph_arg $ n_arg $ seeds_arg $ seed_arg $ algos_arg $ plans_arg
       $ daemons_arg $ max_rounds_arg $ max_injections_arg $ stall_window_arg
       $ cycle_repeats_arg $ out_arg))

let list_cmd =
  let list () =
    Format.printf "algorithms: %s@." (String.concat ", " algos);
    Format.printf "graphs:     %s@." (String.concat ", " Generators.all_names);
    Format.printf "schedulers: %s@." (String.concat ", " (List.map fst Scheduler.extended));
    Format.printf "fault plans: %s (grammar: TARGET/PAYLOAD@TIMING)@."
      (String.concat ", " (List.map Fault.Plan.name Fault.Plan.defaults))
  in
  Cmd.v (Cmd.info "list" ~doc:"List algorithms, graph families and schedulers.")
    Term.(const list $ const ())

let () =
  let info =
    Cmd.info "repro-cli" ~version:"1.0.0"
      ~doc:
        "Silent self-stabilizing constrained spanning tree constructions (Blin & \
         Fraigniaud, ICDCS 2015)"
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; sweep_cmd; chaos_cmd; bench_diff_cmd; list_cmd ]))
